package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"time"

	"github.com/pla-go/pla/internal/core"
	"github.com/pla-go/pla/internal/gen"
	"github.com/pla-go/pla/internal/query"
	"github.com/pla-go/pla/internal/tsdb"
)

// rollupBench measures what bound-aware tier selection buys on the
// repo's canonical large-archive shape (the ≥85k-segment single series
// of -server-agg/-extent-bench): a mid-range AGG answered at base
// precision against the same query carrying a BOUND that lands on each
// rollup tier. Per tier it reports the stored segment count, the
// contributing segments the query actually read, the read ratio against
// base, the cold first-query latency (where the saved reads and summary
// builds show) with its speedup over base, and the steady-state
// (window-memoized) latency. Before any number is
// reported, every tiered answer's band must contain the base answer —
// the same differential bar the server tests hold.
func rollupBench(segTarget, rounds int, outPath string) error {
	const eps = 0.25
	ladder := []int{4, 16}
	if segTarget < 1000 || rounds < 1 {
		return fmt.Errorf("rollup-bench needs ≥1000 segments and ≥1 rounds (got %d/%d)", segTarget, rounds)
	}

	// Grow the base series until it holds the target: deterministic
	// random-walk chunks, each Swing-filtered at the ingest ε, appended
	// with continuous time so the rollup sees long connected runs.
	db := tsdb.New()
	db.EnableRollups(ladder)
	sr, err := db.Create("walk", []float64{eps}, false)
	if err != nil {
		return err
	}
	tOff, v, seed := 0.0, 0.0, uint64(1)
	for sr.Len() < segTarget {
		// The workload compresses at ~6 points per segment; overshoot a
		// little so the loop converges in one or two chunks.
		chunk := (segTarget - sr.Len() + 1) * 6
		if chunk > 600_000 {
			chunk = 600_000
		}
		sig := gen.RandomWalk(gen.WalkConfig{N: chunk, P: 0.5, MaxDelta: 0.3, Start: v, Seed: seed})
		for i := range sig {
			sig[i].T += tOff
		}
		f, err := core.NewSwing([]float64{eps})
		if err != nil {
			return err
		}
		segs, err := core.Run(f, sig)
		if err != nil {
			return err
		}
		if err := sr.Append(segs...); err != nil {
			return err
		}
		tOff += float64(chunk)
		v = sig[len(sig)-1].X[0]
		seed++
	}

	start := time.Now()
	stats, err := db.Rollup("walk")
	if err != nil {
		return err
	}
	buildSecs := time.Since(start).Seconds()
	fmt.Printf("rollup archive: %d base segments; built %d tiers (%d coarse segments) in %.3fs\n",
		sr.Len(), stats.Tiers, stats.Segments, buildSecs)

	// The query window: the middle ~60% of the stream, the week-scale
	// range shape of -server-agg.
	t0, t1 := 0.2*tOff, 0.8*tOff
	eng := query.New(db)

	type tierRow struct {
		mult  int
		bound float64
	}
	tiers := []tierRow{{0, 0}}
	for _, m := range ladder {
		tiers = append(tiers, tierRow{m, float64(m) * eps})
	}

	var results []ServerBenchResult
	var base query.AggResult
	for _, tr := range tiers {
		// The cold query: the first AGG after the sweep, paying the
		// segment reads and summary-window builds the tier saves.
		qs := time.Now()
		res, err := eng.AggregateBound("walk", 0, t0, t1, tr.bound)
		if err != nil {
			return err
		}
		cold := time.Since(qs).Seconds()
		if res.Tier != tr.mult {
			return fmt.Errorf("bound %v answered from tier %d, want %d", tr.bound, res.Tier, tr.mult)
		}
		if tr.mult == 0 {
			base = res
		} else {
			// The differential bar: the tiered band must contain the
			// base answer (avg value, band = ε + edge slack composed as
			// the server does).
			avg, bAvg := res.Agg.Sum/res.Agg.Count, base.Agg.Sum/base.Agg.Count
			band := res.Epsilon + res.ValueSlack +
				float64(res.CountSlack)/res.Agg.Count*((res.Agg.Max-res.Agg.Min)/2+res.Epsilon+res.ValueSlack)
			if math.Abs(avg-bAvg) > band+1e-9 {
				return fmt.Errorf("tier %d avg %v outside base band: base %v, band %v", tr.mult, avg, bAvg, band)
			}
		}

		// Steady-state latency: warm once above, best-of-rounds after.
		best := math.Inf(1)
		for r := 0; r < rounds; r++ {
			qs := time.Now()
			if _, err := eng.AggregateBound("walk", 0, t0, t1, tr.bound); err != nil {
				return err
			}
			if s := time.Since(qs).Seconds(); s < best {
				best = s
			}
		}

		stored := int64(sr.Len())
		if tr.mult > 0 {
			tier, ok := db.Tier("walk", tr.mult)
			if !ok {
				return fmt.Errorf("tier %d missing", tr.mult)
			}
			stored = int64(tier.Len())
		}
		row := ServerBenchResult{
			Bench: "RollupTier", Sync: "mem", Shards: 1, Rounds: rounds,
			Segments:       int64(sr.Len()),
			Tier:           tr.mult,
			Bound:          tr.bound,
			TierSegments:   stored,
			SegmentsRead:   int64(res.Agg.Segments),
			ColdAggSeconds: cold,
			AggSeconds:     best,
			Seconds:        buildSecs,
		}
		if tr.mult > 0 {
			row.SegmentsRatio = float64(base.Agg.Segments) / float64(res.Agg.Segments)
			row.Speedup = results[0].ColdAggSeconds / cold
		}
		results = append(results, row)
		fmt.Printf("rollup tier %2d (bound %5.2f): %7d stored segments, %7d read by AGG (%.1fx fewer than base); cold %.6fs (%.1fx), warm %.6fs\n",
			tr.mult, tr.bound, stored, res.Agg.Segments, row.SegmentsRatio, cold, row.Speedup, best)
	}

	if outPath == "" {
		return nil
	}
	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote snapshot to %s\n", outPath)
	return nil
}
