package main

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"time"

	"github.com/pla-go/pla/internal/core"
	"github.com/pla-go/pla/internal/query"
	"github.com/pla-go/pla/internal/tsdb"
	"github.com/pla-go/pla/internal/tsdb/mmapstore"
)

// extentBench measures the PR 8 succinct-extent claims head to head on
// one large single-series archive: the fixed-width v1 format with
// neither compaction nor fence index (the PR 5 shape — one small extent
// per seal, per-extent binary search) against the bit-packed v2 format
// with background compaction and the learned fence index. Both archives
// hold the same ≥segTarget segments sealed in the same chunks; the
// bench records bytes on disk, extent counts, cold-open time, cold
// mid-range SCAN and AGG latency, and sealed-archive lookup cost
// (fence-jump vs per-extent binary search, same data both ways), and
// refuses to report anything until the two stores return
// segment-for-segment identical snapshots.
func extentBench(segTarget, rounds int, outPath string) error {
	const lookupProbes = 200_000
	if segTarget < 1000 || rounds < 1 {
		return fmt.Errorf("extent-bench needs ≥1000 segments and ≥1 rounds (got %d/%d)", segTarget, rounds)
	}
	segs := extentWorkload(segTarget)
	sealEvery := segTarget / 320 // ≥256 extents before compaction
	if sealEvery < 1 {
		sealEvery = 1
	}

	tmp, err := os.MkdirTemp("", "plabench-extent-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(tmp)

	// v1 is the PR 5 shape; v2 the full PR 8 stack (headline size and
	// cold-start rows — compaction typically leaves so few extents the
	// fence is moot); v2-nocompact keeps all ≥256 per-seal extents, the
	// shape the fence index exists for, and is re-measured below with
	// the fence disabled as the per-extent binary-search control.
	configs := []struct {
		format string
		cfg    mmapstore.Config
	}{
		{"v1", mmapstore.Config{WriteV1: true, CompactMinExtents: -1, NoFenceIndex: true}},
		{"v2", mmapstore.Config{}},
		{"v2-nocompact", mmapstore.Config{CompactMinExtents: -1}},
	}
	var results []ServerBenchResult
	var snapshots [][]core.Segment
	for _, c := range configs {
		root := filepath.Join(tmp, c.format)
		build, compactions, err := buildExtentArchive(root, c.cfg, segs, sealEvery)
		if err != nil {
			return fmt.Errorf("%s build: %w", c.format, err)
		}
		row, snap, err := measureExtentArchive(root, c.cfg, segs, rounds, lookupProbes)
		if err != nil {
			return fmt.Errorf("%s measure: %w", c.format, err)
		}
		row.Format = c.format
		row.Seconds = build
		row.Compactions = compactions
		row.Rounds = rounds
		snapshots = append(snapshots, snap)
		results = append(results, row)
		fmt.Printf("extent archive [%s]: %d segments in %d extents, %d B on disk; cold open %.4fs, cold scan %.4fs, cold agg %.4fs, lookup %.0f ns/op (%d compactions)\n",
			c.format, row.Segments, row.Extents, row.ArchiveDiskBytes, row.ColdOpenSeconds,
			row.ColdScanSeconds, row.ColdAggSeconds, row.LookupNsPerOp, compactions)
	}

	// The legacy-lookup control: the many-extent archive reopened with
	// the fence index disabled — same files, same extents, per-extent
	// binary search. The fence's speedup is rows[2].LookupNsPerOp vs
	// this, on a series with ≥256 extents.
	legacyCfg := mmapstore.Config{CompactMinExtents: -1, NoFenceIndex: true}
	legacyRow, _, err := measureExtentArchive(filepath.Join(tmp, "v2-nocompact"), legacyCfg, segs, rounds, lookupProbes)
	if err != nil {
		return fmt.Errorf("legacy-lookup control: %w", err)
	}
	results[2].LookupLegacyNsPerOp = legacyRow.LookupNsPerOp
	fmt.Printf("extent archive [v2-nocompact, fence disabled]: lookup %.0f ns/op — fence index is %.2fx faster across %d extents\n",
		legacyRow.LookupNsPerOp, legacyRow.LookupNsPerOp/results[2].LookupNsPerOp, results[2].Extents)

	for i := 1; i < len(results); i++ {
		if err := compareSegments(snapshots[0], snapshots[i]); err != nil {
			return fmt.Errorf("v1 and %s archives disagree: %w", results[i].Format, err)
		}
	}
	// The size claim is over mapped extent bytes: metas and sketch
	// sidecars are loaded, not mapped, and the v1 baseline's tiny
	// extents never accumulate enough records to earn a sidecar at all.
	shrink := float64(results[0].MappedSegBytes) / float64(results[1].MappedSegBytes)
	fmt.Printf("extent archive: identical answers; v2+compaction maps %.2fx fewer bytes (%d → %d B mapped; %d → %d B total incl. sketch sidecars)\n",
		shrink, results[0].MappedSegBytes, results[1].MappedSegBytes,
		results[0].ArchiveDiskBytes, results[1].ArchiveDiskBytes)

	if outPath == "" {
		return nil
	}
	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote snapshot to %s\n", outPath)
	return nil
}

// extentWorkload generates the deterministic single-series segment set
// both archives ingest: slightly irregular timestamps (so the
// delta-of-delta columns face realistic, not degenerate, input),
// full-mantissa sine-walk values (the XOR columns' realistic case) and
// varying per-segment point counts.
func extentWorkload(n int) []core.Segment {
	segs := make([]core.Segment, n)
	t, v := 0.0, 10.0
	for i := range segs {
		dur := 1.5 + float64(i%3)*0.25 // 1.5, 1.75, 2.0
		v2 := v + 0.8*math.Sin(0.013*float64(i)) + 0.1*math.Cos(0.21*float64(i))
		segs[i] = core.Segment{
			T0: t, T1: t + dur,
			X0: []float64{v}, X1: []float64{v2},
			Points: 6 + i%5,
		}
		t += dur + 0.25 + float64(i%2)*0.25
		v = v2
	}
	return segs
}

// buildExtentArchive seals the workload into root in fixed chunks (one
// extent per seal, the shape a long-running ingest leaves behind) and
// then drives the store's background compaction to quiescence — a no-op
// under a disabled policy. Returns the build wall time and the number
// of extent merges committed.
func buildExtentArchive(root string, cfg mmapstore.Config, segs []core.Segment, sealEvery int) (float64, uint64, error) {
	logf := func(string, ...any) {}
	mm, err := mmapstore.OpenWith(root, cfg, logf)
	if err != nil {
		return 0, 0, err
	}
	defer mm.Close()
	db := tsdb.NewWithNamedStore(mm.Store)
	sr, err := db.Create("ext", []float64{0.25}, false)
	if err != nil {
		return 0, 0, err
	}
	start := time.Now()
	points := 0
	for lo := 0; lo < len(segs); lo += sealEvery {
		hi := lo + sealEvery
		if hi > len(segs) {
			hi = len(segs)
		}
		if err := sr.Append(segs[lo:hi]...); err != nil {
			return 0, 0, err
		}
		for _, s := range segs[lo:hi] {
			points += s.Points
		}
		sr.SetPoints(points)
		if err := sr.Seal(); err != nil {
			return 0, 0, err
		}
	}
	for {
		more, err := sr.CompactStore()
		if err != nil {
			return 0, 0, err
		}
		if !more {
			break
		}
	}
	return time.Since(start).Seconds(), mm.Metrics().Compactions, nil
}

// measureExtentArchive cold-opens the archive and probes it in the
// order a restarted server would feel: map + load, first mid-range SCAN
// (faulting pages in), first AGG (building summary windows from the
// sidecars), then the steady-state sealed-lookup cost over
// uniformly-random probe times (best of rounds).
func measureExtentArchive(root string, cfg mmapstore.Config, segs []core.Segment, rounds, probes int) (ServerBenchResult, []core.Segment, error) {
	var row ServerBenchResult
	logf := func(string, ...any) {}

	start := time.Now()
	mm, err := mmapstore.OpenWith(root, cfg, logf)
	if err != nil {
		return row, nil, err
	}
	defer mm.Close()
	db := tsdb.NewWithNamedStore(mm.Store)
	if _, err := mm.LoadInto(db); err != nil {
		return row, nil, err
	}
	sr, err := db.Get("ext")
	if err != nil {
		return row, nil, err
	}
	row.ColdOpenSeconds = time.Since(start).Seconds()

	diskBytes, mappedBytes, extFiles, err := archiveDiskBytes(root)
	if err != nil {
		return row, nil, err
	}
	row.Bench = "ExtentArchive"
	row.Sync, row.Store, row.Shards = "interval", "mmap", 1
	row.Segments = int64(sr.Len())
	row.Extents = extFiles
	row.ArchiveDiskBytes = diskBytes
	row.MappedSegBytes = mappedBytes
	row.Compactions = mm.Metrics().Compactions

	// Cold mid-range window: ~10% of the archive, far from both ends —
	// the fence index has to land the jump, not ride a boundary case.
	tMin, tMax := segs[0].T0, segs[len(segs)-1].T1
	w0 := tMin + 0.45*(tMax-tMin)
	w1 := tMin + 0.55*(tMax-tMin)
	start = time.Now()
	window, err := sr.Scan(w0, w1)
	if err != nil {
		return row, nil, err
	}
	row.ColdScanSeconds = time.Since(start).Seconds()
	if len(window) == 0 {
		return row, nil, fmt.Errorf("cold scan [%v,%v] returned nothing", w0, w1)
	}

	eng := query.New(db)
	start = time.Now()
	if _, err := eng.Aggregate("ext", 0, w0, w1); err != nil {
		return row, nil, err
	}
	row.ColdAggSeconds = time.Since(start).Seconds()

	ti, ok := mm.Store("ext", sr.Epsilon(), sr.Constant()).(tsdb.TimeIndex)
	if !ok {
		return row, nil, fmt.Errorf("store does not implement TimeIndex")
	}
	rng := rand.New(rand.NewSource(42))
	times := make([]float64, probes)
	for i := range times {
		times[i] = tMin + rng.Float64()*(tMax-tMin)
	}
	best := math.Inf(1)
	sink := 0
	for r := 0; r < rounds; r++ {
		start = time.Now()
		for _, t := range times {
			sink += ti.SearchT0(t)
		}
		if ns := float64(time.Since(start).Nanoseconds()) / float64(probes); ns < best {
			best = ns
		}
	}
	if sink == -1 {
		return row, nil, fmt.Errorf("unreachable") // keep the probe loop live
	}
	row.LookupNsPerOp = best

	return row, sr.Segments(), nil
}

// archiveDiskBytes walks root and reports the total disk footprint,
// the subset held in .seg extent files (the bytes a cold start actually
// memory-maps — metas and sketch sidecars are loaded, not mapped), and
// the extent-file count.
func archiveDiskBytes(root string) (total, mapped int64, extents int, err error) {
	err = filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		info, err := d.Info()
		if err != nil {
			return err
		}
		total += info.Size()
		if strings.HasSuffix(path, ".seg") {
			mapped += info.Size()
			extents++
		}
		return nil
	})
	return total, mapped, extents, err
}

// compareSegments requires two snapshots to agree segment for segment —
// the byte-identical-answers bar every storage change in this repo has
// to clear before its performance numbers count.
func compareSegments(a, b []core.Segment) error {
	if len(a) != len(b) {
		return fmt.Errorf("%d vs %d segments", len(a), len(b))
	}
	for i := range a {
		x, y := a[i], b[i]
		same := x.T0 == y.T0 && x.T1 == y.T1 && x.Connected == y.Connected &&
			x.Points == y.Points && len(x.X0) == len(y.X0) && len(x.X1) == len(y.X1)
		if same {
			for d := range x.X0 {
				if x.X0[d] != y.X0[d] || x.X1[d] != y.X1[d] {
					same = false
					break
				}
			}
		}
		if !same {
			return fmt.Errorf("segment %d: %+v vs %+v", i, x, y)
		}
	}
	return nil
}
