// Command plabench regenerates the figures of the paper's evaluation
// (Section 5, Figures 6–13) and prints each as an aligned text table.
//
// Usage:
//
//	plabench [-experiment all|fig6|fig7|fig8|fig9|fig10|fig11|fig12|fig13]
//	         [-quick] [-seed n] [-dump-sst file.csv]
//	plabench -server-bench [-server-clients 8,64] [-server-points 20000,2500]
//	         [-server-rounds 5] [-server-shards 8]
//	         [-server-sync mem,interval,always]
//	         [-server-transport tcp,udp] [-server-cores 1,2,4,8] [-o BENCH.json]
//	plabench -server-agg [-server-agg-segments 85000] [-o AGG.json]
//	plabench -extent-bench [-extent-segments 85000] [-o BENCH_PR8.json]
//	plabench -rollup-bench [-rollup-segments 85000] [-o BENCH_PR9.json]
//	plabench -pressure-bench [-pressure-clients 8] [-pressure-points 4000]
//	         [-pressure-queue 2] [-o BENCH_PR10.json]
//
// -quick shrinks the synthetic workloads for a fast smoke run; the
// canonical numbers in EXPERIMENTS.md come from the default sizes.
// -server-bench measures the plad network ingest path (concurrent
// clients over loopback TCP into the sharded archive) once per
// (workload × sync mode) — -server-clients/-server-points are parallel
// comma-separated lists, so one run can cover both the few-big-sessions
// and many-small-sessions (fsync-bound, where group commit shows)
// shapes — and, with -o, writes a JSON snapshot for cross-PR perf
// tracking. -server-transport sweeps the ingest wire (loopback TCP vs
// the PLU1 datagram transport) and -server-cores sweeps GOMAXPROCS per
// combination, with as many SO_REUSEPORT datagram listeners as cores —
// the raw-speed scaling picture. -pressure-bench overloads a
// deliberately starved single-shard server and compares the shed
// policies (DropNewest vs Sample, with and without an ε byte budget):
// interval coverage, worst reconstruction error versus the reported
// effective ε, and the degradation counters.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/pla-go/pla/internal/experiments"
)

func main() {
	var (
		experiment = flag.String("experiment", "all", "figure to regenerate (all, fig6 … fig13, ablation)")
		quick      = flag.Bool("quick", false, "shrink workloads for a fast smoke run")
		seed       = flag.Uint64("seed", 0, "seed offset for the synthetic workloads (0 = canonical)")
		dumpSST    = flag.String("dump-sst", "", "write the Figure 6 series as CSV to this file and exit")

		srvBench   = flag.Bool("server-bench", false, "measure the plad network ingest path and exit")
		srvClients = flag.String("server-clients", "8", "comma-separated concurrent-client counts for -server-bench (parallel with -server-points)")
		srvPoints  = flag.String("server-points", "20000", "comma-separated points-per-client counts for -server-bench")
		srvRounds  = flag.Int("server-rounds", 5, "measurement rounds for -server-bench (best is reported)")
		srvShards  = flag.Int("server-shards", 8, "server shard count for -server-bench")
		srvSync    = flag.String("server-sync", "mem,interval,always", "comma-separated durability modes for -server-bench: mem, off, interval, always")
		srvStore   = flag.String("server-store", "mem", "comma-separated store backends for -server-bench: mem, mmap (mmap skips the sync=mem row)")
		srvTrans   = flag.String("server-transport", "tcp", "comma-separated ingest transports for -server-bench: tcp, udp")
		srvCores   = flag.String("server-cores", "", "comma-separated GOMAXPROCS values swept per -server-bench combination (empty = leave as-is)")
		srvLag     = flag.String("server-lag", "", "comma-separated m_max_lag bounds for the lag-bounded -server-bench workload (0 = unbounded; empty disables)")
		srvLagEps  = flag.String("server-lag-eps", "0.1,0.5,2", "comma-separated ε values swept per -server-lag bound")
		srvAgg     = flag.Bool("server-agg", false, "measure the AGG pushdown vs SCAN-and-fold on a week-scale range and exit")
		srvAggSegs = flag.Int("server-agg-segments", 85000, "archive size in segments for -server-agg")
		extBench   = flag.Bool("extent-bench", false, "measure v1 vs v2+compaction extent archives (disk bytes, cold open/SCAN/AGG, fence vs binary-search lookup) and exit")
		extSegs    = flag.Int("extent-segments", 85000, "archive size in segments for -extent-bench")
		rollBench  = flag.Bool("rollup-bench", false, "measure bound-aware tier selection (segments read and AGG latency per rollup tier vs base) and exit")
		rollSegs   = flag.Int("rollup-segments", 85000, "base archive size in segments for -rollup-bench")
		pressBench = flag.Bool("pressure-bench", false, "compare shed policies (DropNewest vs Sample) under queue overload and exit")
		pressCli   = flag.Int("pressure-clients", 8, "concurrent sensors for -pressure-bench")
		pressPts   = flag.Int("pressure-points", 4000, "points per sensor for -pressure-bench")
		pressQ     = flag.Int("pressure-queue", 2, "server queue depth for -pressure-bench (small = overloaded)")
		out        = flag.String("o", "", "write the -server-bench snapshot as JSON to this file")
	)
	flag.Parse()

	if *pressBench {
		if err := pressureBench(*pressCli, *pressPts, *pressQ, *out); err != nil {
			fatal(err)
		}
		return
	}

	if *rollBench {
		if err := rollupBench(*rollSegs, *srvRounds, *out); err != nil {
			fatal(err)
		}
		return
	}

	if *extBench {
		if err := extentBench(*extSegs, *srvRounds, *out); err != nil {
			fatal(err)
		}
		return
	}

	if *srvAgg {
		if err := aggBench(*srvAggSegs, *srvRounds, *srvShards, *out); err != nil {
			fatal(err)
		}
		return
	}

	if *srvBench {
		if err := serverBench(*srvClients, *srvPoints, *srvRounds, *srvShards, *srvSync, *srvStore, *srvTrans, *srvCores, *srvLag, *srvLagEps, *out); err != nil {
			fatal(err)
		}
		return
	}

	if *dumpSST != "" {
		f, err := os.Create(*dumpSST)
		if err != nil {
			fatal(err)
		}
		if err := experiments.DumpSST(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote sea-surface-temperature series to %s\n", *dumpSST)
		return
	}

	cfg := experiments.Config{Quick: *quick, Seed: *seed}
	figs := map[string]func(experiments.Config) (*experiments.Table, error){
		"fig6":     experiments.Fig6,
		"fig7":     experiments.Fig7,
		"fig8":     experiments.Fig8,
		"fig9":     experiments.Fig9,
		"fig10":    experiments.Fig10,
		"fig11":    experiments.Fig11,
		"fig12":    experiments.Fig12,
		"fig13":    experiments.Fig13,
		"ablation": experiments.Ablations,
	}

	switch *experiment {
	case "all":
		tables, err := experiments.All(cfg)
		if err != nil {
			fatal(err)
		}
		for _, t := range tables {
			t.Render(os.Stdout)
		}
	default:
		fn, ok := figs[strings.ToLower(*experiment)]
		if !ok {
			fatal(fmt.Errorf("unknown experiment %q (want all, fig6…fig13, or ablation)", *experiment))
		}
		t, err := fn(cfg)
		if err != nil {
			fatal(err)
		}
		t.Render(os.Stdout)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "plabench:", err)
	os.Exit(1)
}
