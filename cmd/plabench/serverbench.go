package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"github.com/pla-go/pla/internal/core"
	"github.com/pla-go/pla/internal/encode"
	"github.com/pla-go/pla/internal/gen"
	"github.com/pla-go/pla/internal/server"
	"github.com/pla-go/pla/internal/tsdb"
)

// ServerBenchResult is the JSON snapshot of one network-ingest
// measurement, kept across PRs (BENCH_PR1.json, …) as a perf trajectory.
type ServerBenchResult struct {
	Bench       string  `json:"bench"`
	Clients     int     `json:"clients"`
	PointsEach  int     `json:"points_each"`
	Rounds      int     `json:"rounds"`
	Shards      int     `json:"shards"`
	TotalPoints int     `json:"total_points"`
	Segments    int64   `json:"segments"`
	WireBytes   int64   `json:"wire_bytes"`
	RawBytes    int64   `json:"raw_bytes"`
	Seconds     float64 `json:"seconds"`
	PointsPerS  float64 `json:"points_per_s"`
	ByteRatio   float64 `json:"byte_ratio"` // raw sample bytes / wire bytes
}

// serverBench drives rounds × clients concurrent ingest sessions of a
// random-walk workload through a loopback plad server and reports
// aggregate throughput. The best (fastest) round is reported, matching
// the usual benchmark convention.
func serverBench(clients, points, rounds, shards int, outPath string) error {
	if clients < 1 || points < 1 || rounds < 1 || shards < 1 {
		return fmt.Errorf("server-bench needs ≥1 clients, points, rounds, and shards (got %d/%d/%d/%d)",
			clients, points, rounds, shards)
	}
	db := tsdb.New()
	s := server.New(db, server.Config{Shards: shards, QueueDepth: 4096})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go s.Serve(ln)
	addr := ln.Addr().String()

	signals := make([][]core.Point, clients)
	for c := range signals {
		signals[c] = gen.RandomWalk(gen.WalkConfig{N: points, P: 0.5, MaxDelta: 0.4, Seed: uint64(c + 1)})
	}

	best := time.Duration(1<<63 - 1)
	var wireBytes, segments int64
	for r := 0; r < rounds; r++ {
		var (
			wg     sync.WaitGroup
			mu     sync.Mutex
			rBytes int64
			rSegs  int64
			rErr   error
		)
		start := time.Now()
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				f, err := core.NewSwing([]float64{0.5})
				if err == nil {
					var cl *server.Client
					cl, err = server.Dial(addr, fmt.Sprintf("bench-%d-%d", r, c), f)
					if err == nil {
						if err = cl.SendBatch(signals[c]); err == nil {
							var ack server.Ack
							ack, err = cl.Close()
							mu.Lock()
							rBytes += cl.BytesSent()
							rSegs += ack.Applied
							mu.Unlock()
						}
					}
				}
				if err != nil {
					mu.Lock()
					rErr = err
					mu.Unlock()
				}
			}(c)
		}
		wg.Wait()
		elapsed := time.Since(start)
		if rErr != nil {
			return rErr
		}
		if elapsed < best {
			best = elapsed
			wireBytes, segments = rBytes, rSegs
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		return err
	}

	total := clients * points
	raw := encode.RawSize(total, 1)
	res := ServerBenchResult{
		Bench:       "ServerIngest",
		Clients:     clients,
		PointsEach:  points,
		Rounds:      rounds,
		Shards:      shards,
		TotalPoints: total,
		Segments:    segments,
		WireBytes:   wireBytes,
		RawBytes:    raw,
		Seconds:     best.Seconds(),
		PointsPerS:  float64(total) / best.Seconds(),
		ByteRatio:   float64(raw) / float64(wireBytes),
	}
	fmt.Printf("server ingest: %d clients × %d points in %v (%.0f points/s, %.1fx byte compression)\n",
		clients, points, best.Round(time.Microsecond), res.PointsPerS, res.ByteRatio)
	if outPath == "" {
		return nil
	}
	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote snapshot to %s\n", outPath)
	return nil
}
