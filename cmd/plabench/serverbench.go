package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"

	"github.com/pla-go/pla/internal/core"
	"github.com/pla-go/pla/internal/encode"
	"github.com/pla-go/pla/internal/loadgen"
	"github.com/pla-go/pla/internal/query"
	"github.com/pla-go/pla/internal/server"
	"github.com/pla-go/pla/internal/sketch"
	"github.com/pla-go/pla/internal/tsdb"
	"github.com/pla-go/pla/internal/wal"
)

// ServerBenchResult is the JSON snapshot of one network-ingest
// measurement, kept across PRs (BENCH_PR1.json, …) as a perf trajectory.
// Sync records the durability mode: "mem" is the PR 1 in-memory
// baseline; "off", "interval" and "always" run the write-ahead log under
// the corresponding fsync policy.
type ServerBenchResult struct {
	Bench string `json:"bench"`
	Sync  string `json:"sync"`
	// Store is the segment-store backend ("mem" heap slices, "mmap"
	// memory-mapped sealed extents). Empty means "mem" (pre-PR 5 rows).
	Store string `json:"store,omitempty"`
	// Transport is the ingest wire ("tcp" framed streams, "udp" PLU1
	// datagrams). Empty means "tcp" (pre-PR 7 rows).
	Transport string `json:"transport,omitempty"`
	// Cores is the GOMAXPROCS the round ran under; 0 means the process
	// default (no -server-cores sweep). UDP rounds run one SO_REUSEPORT
	// listener per core.
	Cores       int     `json:"cores,omitempty"`
	Clients     int     `json:"clients"`
	PointsEach  int     `json:"points_each"`
	Rounds      int     `json:"rounds"`
	Shards      int     `json:"shards"`
	TotalPoints int     `json:"total_points"`
	Segments    int64   `json:"segments"`
	WireBytes   int64   `json:"wire_bytes"`
	RawBytes    int64   `json:"raw_bytes"`
	Seconds     float64 `json:"seconds"`
	PointsPerS  float64 `json:"points_per_s"`
	ByteRatio   float64 `json:"byte_ratio"` // raw sample bytes / wire bytes

	// Lag-workload fields (Bench "ServerIngestLag"): the ε the sessions
	// filtered with, the m_max_lag bound they advertised (0 =
	// unbounded), and how many provisional receiver updates the bound
	// cost — the compression-vs-freshness trade-off of §3.3/§4.3 on the
	// live server path.
	Epsilon    float64 `json:"epsilon,omitempty"`
	MaxLag     int     `json:"max_lag,omitempty"`
	LagFlushes int64   `json:"lag_flushes,omitempty"`

	// Cold-start fields (durable modes only): how long a fresh server
	// took to recover the drained data directory, and how many segments
	// that recovery brought back. This is where the mmap backend's
	// O(map + replay tail) start shows against the snapshot decode.
	RecoverSeconds    float64 `json:"recover_seconds,omitempty"`
	RecoveredSegments int     `json:"recovered_segments,omitempty"`
	// RecoverSegmentsPerS is RecoveredSegments/RecoverSeconds — the
	// recovery throughput, comparable across backends and data sizes.
	RecoverSegmentsPerS float64 `json:"recover_segments_per_s,omitempty"`

	// Aggregate-pushdown fields (Bench "ServerAgg"): wall time for a
	// week-scale range aggregate answered by the AGG pushdown vs the
	// same answer assembled by SCAN-and-fold, and the speedup between
	// them. Windows counts the summary blocks that covered the range —
	// the O(segments/window + sketch) evidence.
	AggSeconds  float64 `json:"agg_seconds,omitempty"`
	ScanSeconds float64 `json:"scan_seconds,omitempty"`
	Speedup     float64 `json:"speedup,omitempty"`
	Windows     int64   `json:"windows,omitempty"`

	// Succinct-extent fields (PR 8). On cold-start rows,
	// ArchiveDiskBytes is the recovered data directory's disk footprint
	// and ColdScanSeconds/ColdAggSeconds time the first full-range SCAN
	// and AGG against the freshly recovered archive. On "ExtentArchive"
	// rows (-extent-bench), Format tags the extent encoding ("v1"
	// fixed-width, "v2" bit-packed + compaction), Extents counts the
	// mapped files, Compactions the merges committed while building, and
	// LookupNsPerOp/LookupLegacyNsPerOp compare the learned fence index
	// against per-extent binary search on the same extents.
	Format              string  `json:"format,omitempty"`
	Extents             int     `json:"extents,omitempty"`
	ArchiveDiskBytes    int64   `json:"archive_disk_bytes,omitempty"`
	MappedSegBytes      int64   `json:"mapped_seg_bytes,omitempty"`
	Compactions         uint64  `json:"compactions,omitempty"`
	ColdOpenSeconds     float64 `json:"cold_open_seconds,omitempty"`
	ColdScanSeconds     float64 `json:"cold_scan_seconds,omitempty"`
	ColdAggSeconds      float64 `json:"cold_agg_seconds,omitempty"`
	LookupNsPerOp       float64 `json:"lookup_ns_per_op,omitempty"`
	LookupLegacyNsPerOp float64 `json:"lookup_legacy_ns_per_op,omitempty"`

	// Rollup-tier fields (PR 9, Bench "RollupTier", -rollup-bench). Tier
	// is the row's rollup precision multiplier (0 = the base row), Bound
	// the BOUND the AGG queries carried, TierSegments the segments
	// stored at that tier, SegmentsRead the segments contributing to the
	// mid-range AGG, and SegmentsRatio base reads over this row's reads.
	// AggSeconds is the steady-state per-query latency and Speedup its
	// ratio against the base row; Seconds is the one-off tier build.
	Tier          int     `json:"tier,omitempty"`
	Bound         float64 `json:"bound,omitempty"`
	TierSegments  int64   `json:"tier_segments,omitempty"`
	SegmentsRead  int64   `json:"segments_read,omitempty"`
	SegmentsRatio float64 `json:"segments_ratio,omitempty"`
}

// serverBench measures the concurrent network-ingest path (via the shared
// internal/loadgen driver the Go benchmark also uses) once per requested
// (workload × store × sync mode × transport × cores) combination and,
// with outPath, writes the results as a JSON array. clientsList and
// pointsList are parallel comma-separated lists: "8,64" clients with
// "20000,2500" points runs two workloads — the second (many sessions,
// few points each) is the fsync-bound shape where group commit shows.
// transportList sweeps the ingest wire and coresList GOMAXPROCS (empty
// = the process default, recorded as 0).
func serverBench(clientsList, pointsList string, rounds, shards int, syncModes, storeList, transportList, coresList, lagList, lagEpsList, outPath string) error {
	clientCounts, err := atoiList(clientsList)
	if err != nil {
		return fmt.Errorf("bad -server-clients: %w", err)
	}
	pointCounts, err := atoiList(pointsList)
	if err != nil {
		return fmt.Errorf("bad -server-points: %w", err)
	}
	if len(clientCounts) != len(pointCounts) {
		return fmt.Errorf("-server-clients lists %d workloads, -server-points %d", len(clientCounts), len(pointCounts))
	}
	if rounds < 1 || shards < 1 {
		return fmt.Errorf("server-bench needs ≥1 rounds and shards (got %d/%d)", rounds, shards)
	}
	var stores []string
	for _, st := range strings.Split(storeList, ",") {
		if st = strings.TrimSpace(st); st != "" {
			stores = append(stores, st)
		}
	}
	if len(stores) == 0 {
		stores = []string{"mem"}
	}
	var transports []string
	for _, tr := range strings.Split(transportList, ",") {
		if tr = strings.TrimSpace(tr); tr != "" {
			transports = append(transports, tr)
		}
	}
	if len(transports) == 0 {
		transports = []string{"tcp"}
	}
	cores := []int{0} // 0 = leave GOMAXPROCS alone
	if strings.TrimSpace(coresList) != "" {
		if cores, err = atoiList(coresList); err != nil {
			return fmt.Errorf("bad -server-cores: %w", err)
		}
	}
	var results []ServerBenchResult
	for i, clients := range clientCounts {
		points := pointCounts[i]
		for _, store := range stores {
			for _, mode := range strings.Split(syncModes, ",") {
				mode = strings.TrimSpace(mode)
				if mode == "" {
					continue
				}
				if store == "mmap" && mode == "mem" {
					// The extent store needs a data directory; the pure
					// in-memory row only exists for the mem backend.
					continue
				}
				for _, transport := range transports {
					for _, ncores := range cores {
						res, err := serverBenchMode(clients, points, rounds, shards, mode, store, transport, ncores)
						if err != nil {
							return fmt.Errorf("store %s mode %s transport %s cores %d: %w", store, mode, transport, ncores, err)
						}
						cold := ""
						if res.RecoverSeconds > 0 {
							cold = fmt.Sprintf(", cold start %.6fs for %d segments (%.0f segments/s)",
								res.RecoverSeconds, res.RecoveredSegments, res.RecoverSegmentsPerS)
						}
						coreTag := ""
						if ncores > 0 {
							coreTag = fmt.Sprintf("/%d cores", ncores)
						}
						fmt.Printf("server ingest [%s/%s/%s%s]: %d clients × %d points in %.6fs (%.0f points/s, %.1fx byte compression%s)\n",
							store, mode, transport, coreTag, clients, points, res.Seconds, res.PointsPerS, res.ByteRatio, cold)
						results = append(results, res)
					}
				}
			}
		}
	}
	if lagList != "" {
		// The lag sweep multiplies configs (ε × m), so it runs one
		// canonical shape: the first -server-clients/-server-points pair.
		if len(clientCounts) > 1 {
			fmt.Printf("lag workload: using the first shape only (%d clients × %d points)\n",
				clientCounts[0], pointCounts[0])
		}
		lag, err := lagBench(clientCounts[0], pointCounts[0], rounds, shards, lagList, lagEpsList)
		if err != nil {
			return fmt.Errorf("lag workload: %w", err)
		}
		results = append(results, lag...)
	}
	if outPath == "" {
		return nil
	}
	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote snapshot to %s\n", outPath)
	return nil
}

// lagBench measures the §3.3/§4.3 compression-vs-lag trade-off on the
// live server path: an ε sweep at every requested m_max_lag bound (0 =
// unbounded, the ∞ row), lag-bounded swing sessions over loopback TCP
// into an in-memory server. Tighter bounds buy freshness with
// provisional receiver updates, which cost wire bytes; the recorded
// byte ratios and update counts quantify exactly that.
func lagBench(clients, points, rounds, shards int, lagList, lagEpsList string) ([]ServerBenchResult, error) {
	lags, err := atoiList0(lagList)
	if err != nil {
		return nil, fmt.Errorf("bad -server-lag: %w", err)
	}
	epsList, err := atofList(lagEpsList)
	if err != nil {
		return nil, fmt.Errorf("bad -server-lag-eps: %w", err)
	}
	db := tsdb.New()
	s, err := server.New(db, server.Config{Shards: shards, QueueDepth: 4096})
	if err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go s.Serve(ln)
	addr := ln.Addr().String()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()

	signals := loadgen.Walks(clients, points)
	var results []ServerBenchResult
	for _, eps := range epsList {
		for _, m := range lags {
			best := time.Duration(1<<63 - 1)
			var bestRes loadgen.Result
			for r := 0; r < rounds; r++ {
				opt := loadgen.Options{Kind: "swing", Epsilon: eps, MaxLag: m}
				start := time.Now()
				res, err := loadgen.RoundOpts(addr, fmt.Sprintf("lag-e%v-m%d-%d", eps, m, r), signals, opt)
				elapsed := time.Since(start)
				if err != nil {
					return nil, err
				}
				if res.Rejected != 0 || res.Dropped != 0 {
					return nil, fmt.Errorf("lag round %d: %d rejected, %d dropped", r, res.Rejected, res.Dropped)
				}
				if elapsed < best {
					best, bestRes = elapsed, res
				}
			}
			total := clients * points
			raw := encode.RawSize(total, 1)
			label := fmt.Sprintf("m=%d", m)
			if m == 0 {
				label = "m=∞"
			}
			fmt.Printf("server ingest lag [ε=%g %s]: %d clients × %d points in %.6fs (%.0f points/s, %.1fx byte compression, %d lag flushes)\n",
				eps, label, clients, points, best.Seconds(), float64(total)/best.Seconds(),
				float64(raw)/float64(bestRes.WireBytes), bestRes.LagFlushes)
			results = append(results, ServerBenchResult{
				Bench:       "ServerIngestLag",
				Sync:        "mem",
				Clients:     clients,
				PointsEach:  points,
				Rounds:      rounds,
				Shards:      shards,
				TotalPoints: total,
				Segments:    bestRes.Applied,
				WireBytes:   bestRes.WireBytes,
				RawBytes:    raw,
				Seconds:     best.Seconds(),
				PointsPerS:  float64(total) / best.Seconds(),
				ByteRatio:   float64(raw) / float64(bestRes.WireBytes),
				Epsilon:     eps,
				MaxLag:      m,
				LagFlushes:  bestRes.LagFlushes,
			})
		}
	}
	return results, nil
}

// aggBench proves the read-path cost claim on the live server: a
// week-scale range aggregate over an archive of ~segTarget segments is
// answered by the AGG pushdown in O(summary windows + edge segments) —
// one line on the wire — while the SCAN-and-fold baseline ships every
// overlapping segment to the client and folds O(points) reconstruction
// samples. The bench cross-checks the two answers (same count, same
// extrema) before trusting either timing, runs the pushdown once
// un-timed so both sides measure steady state, and reports the speedup.
func aggBench(segTarget, rounds, shards int, outPath string) error {
	const (
		seriesN = 8
		perSeg  = 8    // points per synthetic segment
		segSpan = 56.0 // seconds a segment covers (dt = 8s)
		segStep = 63.0 // segment spacing (7s gaps keep samples distinct)
	)
	if segTarget < seriesN || rounds < 1 || shards < 1 {
		return fmt.Errorf("server-agg needs ≥%d segments, ≥1 rounds and shards", seriesN)
	}
	perSeries := segTarget / seriesN
	db := tsdb.New()
	for si := 0; si < seriesN; si++ {
		sr, err := db.Create(fmt.Sprintf("agg-%d", si), []float64{0.25}, false)
		if err != nil {
			return err
		}
		segs := make([]core.Segment, perSeries)
		v := float64(si)
		for i := range segs {
			t0 := float64(i) * segStep
			v2 := v + 3*math.Sin(0.05*float64(i)+float64(si)) // deterministic drift
			segs[i] = core.Segment{
				T0: t0, T1: t0 + segSpan,
				X0: []float64{v}, X1: []float64{v2},
				Points: perSeg,
			}
			v = v2
		}
		if err := sr.Append(segs...); err != nil {
			return err
		}
		sr.SetPoints(perSeries * perSeg)
	}

	s, err := server.New(db, server.Config{Shards: shards, QueueDepth: 4096})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go s.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()
	q, err := server.DialQuery(ln.Addr().String())
	if err != nil {
		return err
	}
	defer q.Close()

	t0, t1 := 0.0, float64(perSeries)*segStep+1
	warm, err := q.Agg("sum", "*", 0, t0, t1) // builds + memoizes the windows
	if err != nil {
		return err
	}

	// SCAN-and-fold baseline: every segment over the wire, every sample
	// folded — the only way to answer before the pushdown existed.
	var scanBest = time.Duration(1<<63 - 1)
	var foldSum float64
	var foldCount int64
	for r := 0; r < rounds; r++ {
		start := time.Now()
		var sum float64
		var count int64
		for si := 0; si < seriesN; si++ {
			segs, err := q.Scan(fmt.Sprintf("agg-%d", si), t0, t1)
			if err != nil {
				return err
			}
			for _, seg := range segs {
				lo, hi, _, _, ok := sketch.SegRange(seg, 0, t0, t1)
				if !ok {
					continue
				}
				for i := lo; i <= hi; i++ {
					var f float64
					if seg.Points > 1 {
						f = float64(i) / float64(seg.Points-1)
					}
					sum += seg.X0[0] + f*(seg.X1[0]-seg.X0[0])
					count++
				}
			}
		}
		if el := time.Since(start); el < scanBest {
			scanBest, foldSum, foldCount = el, sum, count
		}
	}

	var aggBest = time.Duration(1<<63 - 1)
	var res server.AggValue
	for r := 0; r < rounds; r++ {
		start := time.Now()
		res, err = q.Agg("sum", "*", 0, t0, t1)
		if err != nil {
			return err
		}
		if el := time.Since(start); el < aggBest {
			aggBest = el
		}
	}
	if res.Count != foldCount {
		return fmt.Errorf("pushdown counted %d samples, SCAN-and-fold %d", res.Count, foldCount)
	}
	if diff := math.Abs(res.Value - foldSum); diff > 1e-6*math.Max(1, math.Abs(foldSum)) {
		return fmt.Errorf("pushdown sum %v vs fold %v", res.Value, foldSum)
	}

	total := seriesN * perSeries * perSeg
	speedup := scanBest.Seconds() / aggBest.Seconds()
	fmt.Printf("server agg pushdown: %d segments (%d points, %.1f-day range): AGG %.6fs vs SCAN-and-fold %.6fs — %.0fx (%d summary windows, count %d, warm count %d)\n",
		seriesN*perSeries, total, (t1-t0)/86400, aggBest.Seconds(), scanBest.Seconds(), speedup,
		res.Windows, res.Count, warm.Count)
	if outPath == "" {
		return nil
	}
	row := []ServerBenchResult{{
		Bench:       "ServerAgg",
		Sync:        "mem",
		Store:       "mem",
		Clients:     seriesN,
		PointsEach:  perSeries * perSeg,
		Rounds:      rounds,
		Shards:      shards,
		TotalPoints: total,
		Segments:    int64(seriesN * perSeries),
		Seconds:     aggBest.Seconds(),
		AggSeconds:  aggBest.Seconds(),
		ScanSeconds: scanBest.Seconds(),
		Speedup:     speedup,
		Windows:     int64(res.Windows),
	}}
	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(row); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote snapshot to %s\n", outPath)
	return nil
}

// parseList splits a comma-separated list, parsing each trimmed
// non-empty element with parse (which rejects out-of-range values).
func parseList[T any](s string, parse func(string) (T, error)) ([]T, error) {
	var out []T
	for _, w := range strings.Split(s, ",") {
		w = strings.TrimSpace(w)
		if w == "" {
			continue
		}
		v, err := parse(w)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("empty list")
	}
	return out, nil
}

// atoiList parses a comma-separated list of positive ints.
func atoiList(s string) ([]int, error) {
	return parseList(s, func(w string) (int, error) {
		v, err := strconv.Atoi(w)
		if err != nil || v < 1 {
			return 0, fmt.Errorf("%q is not a positive integer", w)
		}
		return v, nil
	})
}

// atoiList0 parses a comma-separated list of non-negative ints (0 is
// the unbounded lag row).
func atoiList0(s string) ([]int, error) {
	return parseList(s, func(w string) (int, error) {
		v, err := strconv.Atoi(w)
		if err != nil || v < 0 {
			return 0, fmt.Errorf("%q is not a non-negative integer", w)
		}
		return v, nil
	})
}

// atofList parses a comma-separated list of positive floats.
func atofList(s string) ([]float64, error) {
	return parseList(s, func(w string) (float64, error) {
		v, err := strconv.ParseFloat(w, 64)
		if err != nil || v <= 0 {
			return 0, fmt.Errorf("%q is not a positive number", w)
		}
		return v, nil
	})
}

// serverBenchMode runs rounds × clients concurrent ingest sessions of the
// canonical random-walk workload through a loopback plad server in one
// (durability mode × store backend × transport × cores) combination and
// reports the best (fastest) round, matching the usual benchmark
// convention. ncores > 0 pins GOMAXPROCS for the round (restored after)
// and, for the udp transport, starts that many SO_REUSEPORT listeners.
// Durable combinations end with a cold-start measurement: the drained
// data directory is recovered by a fresh server and the recovery wall
// time recorded — the mem backend pays a snapshot decode there, the
// mmap backend a map plus (empty) tail replay.
func serverBenchMode(clients, points, rounds, shards int, mode, store, transport string, ncores int) (ServerBenchResult, error) {
	backend, err := server.ParseStoreBackend(store)
	if err != nil {
		return ServerBenchResult{}, err
	}
	if ncores > 0 {
		defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(ncores))
	}
	cfg := server.Config{Shards: shards, QueueDepth: 4096, StoreBackend: backend}
	if mode != "mem" {
		policy, err := wal.ParseSyncPolicy(mode)
		if err != nil {
			return ServerBenchResult{}, err
		}
		dir, err := os.MkdirTemp("", "plabench-wal-")
		if err != nil {
			return ServerBenchResult{}, err
		}
		defer os.RemoveAll(dir)
		cfg.DataDir, cfg.Sync = dir, policy
	}
	s, err := server.New(nil, cfg)
	if err != nil {
		return ServerBenchResult{}, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return ServerBenchResult{}, err
	}
	go s.Serve(ln)
	addr := ln.Addr().String()
	if transport == "udp" {
		ua, err := s.ListenUDP("127.0.0.1:0", ncores)
		if err != nil {
			return ServerBenchResult{}, err
		}
		addr = ua.String()
	}

	signals := loadgen.Walks(clients, points)
	best := time.Duration(1<<63 - 1)
	var wireBytes, segments int64
	for r := 0; r < rounds; r++ {
		start := time.Now()
		res, err := loadgen.RoundOpts(addr, fmt.Sprintf("bench-%s-%s-%d", mode, transport, r), signals, loadgen.Options{Transport: transport})
		elapsed := time.Since(start)
		if err != nil {
			return ServerBenchResult{}, err
		}
		if res.Rejected != 0 || res.Dropped != 0 {
			return ServerBenchResult{}, fmt.Errorf("round %d: %d rejected, %d dropped", r, res.Rejected, res.Dropped)
		}
		if elapsed < best {
			best = elapsed
			wireBytes, segments = res.WireBytes, res.Applied
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		return ServerBenchResult{}, err
	}

	total := clients * points
	raw := encode.RawSize(total, 1)
	result := ServerBenchResult{
		Bench:       "ServerIngest",
		Sync:        mode,
		Store:       store,
		Transport:   transport,
		Cores:       ncores,
		Clients:     clients,
		PointsEach:  points,
		Rounds:      rounds,
		Shards:      shards,
		TotalPoints: total,
		Segments:    segments,
		WireBytes:   wireBytes,
		RawBytes:    raw,
		Seconds:     best.Seconds(),
		PointsPerS:  float64(total) / best.Seconds(),
		ByteRatio:   float64(raw) / float64(wireBytes),
	}
	if cfg.DataDir != "" {
		start := time.Now()
		s2, err := server.New(nil, cfg)
		if err != nil {
			return result, fmt.Errorf("cold start: %w", err)
		}
		result.RecoverSeconds = time.Since(start).Seconds()
		for _, name := range s2.DB().Names() {
			if sr, err := s2.DB().Get(name); err == nil {
				result.RecoveredSegments += sr.Len()
			}
		}
		if result.RecoverSeconds > 0 {
			result.RecoverSegmentsPerS = float64(result.RecoveredSegments) / result.RecoverSeconds
		}
		if total, mapped, _, err := archiveDiskBytes(cfg.DataDir); err == nil {
			result.ArchiveDiskBytes = total
			result.MappedSegBytes = mapped
		}
		// Cold-range probe: the first SCAN and AGG a client would issue
		// against the just-recovered archive — where the mmap backend
		// pays page faults and summary windows are rebuilt from
		// sidecars, not memos.
		if names := s2.DB().Names(); len(names) > 0 {
			if sr, err := s2.DB().Get(names[0]); err == nil {
				if t0, t1, ok := sr.Span(); ok {
					start := time.Now()
					if _, err := sr.Scan(t0, t1); err == nil {
						result.ColdScanSeconds = time.Since(start).Seconds()
					}
					eng := query.New(s2.DB())
					start = time.Now()
					if _, err := eng.Aggregate(names[0], 0, t0, t1); err == nil {
						result.ColdAggSeconds = time.Since(start).Seconds()
					}
				}
			}
		}
		ctx2, cancel2 := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel2()
		if err := s2.Shutdown(ctx2); err != nil {
			return result, fmt.Errorf("cold-start shutdown: %w", err)
		}
	}
	return result, nil
}
