package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"github.com/pla-go/pla/internal/core"
	"github.com/pla-go/pla/internal/gen"
	"github.com/pla-go/pla/internal/server"
	"github.com/pla-go/pla/internal/tsdb"
)

// PressureResult is one overload-sweep row: the same workload driven at
// the same server under a different shed policy. The comparison the
// sweep exists for is Coverage — under DropNewest whole intervals fall
// out of the archive, while Sample keeps every interval and spends
// precision instead (ReportedEps widens over ContractEps, and
// WithinReported confirms the reconstruction error honoured the widened
// band, i.e. the degradation stayed honest).
type PressureResult struct {
	Bench      string `json:"bench"`
	Policy     string `json:"policy"`
	Clients    int    `json:"clients"`
	PointsEach int    `json:"points_each"`
	QueueDepth int    `json:"queue_depth"`
	// EpsBudget is the bytes/s budget for the budgeted leg (0 = none).
	EpsBudget float64 `json:"eps_budget,omitempty"`

	// Coverage is the fraction of ground-truth points whose time falls
	// inside some stored segment span — interval coverage, the thing
	// segment drops destroy and decimation preserves.
	Coverage float64 `json:"coverage"`
	// MaxErr is the worst |reconstruction − truth| over covered points;
	// ContractEps the handshake ε; ReportedEps the worst per-series
	// query-time ε after degradation (equal to contract when nothing
	// degraded); WithinReported whether MaxErr ≤ ReportedEps.
	MaxErr         float64 `json:"max_err"`
	ContractEps    float64 `json:"contract_eps"`
	ReportedEps    float64 `json:"reported_eps"`
	WithinReported bool    `json:"within_reported"`

	DroppedSegments int64   `json:"dropped_segments"`
	ShedPoints      int64   `json:"shed_points"`
	RetuneFrames    int64   `json:"retune_frames"`
	WireBytes       int64   `json:"wire_bytes"`
	Seconds         float64 `json:"seconds"`
	PointsPerS      float64 `json:"points_per_s"`
}

// pressureEps is the handshake contract for the sweep: tight enough
// that a random walk finalizes a segment every couple of points, so the
// segment rate — not the point rate — is what overloads the queue.
const pressureEps = 0.05

// pressureBench runs the overload sweep: clients concurrent sensors,
// each streaming points random-walk samples for its own series, against
// a deliberately starved server (one shard, a queue of queueDepth
// segments) — the ~2× overload shape where the shed policy decides what
// degrades. Three legs: DropNewest (segments lost), Sample (decimation
// under queue pressure), and Sample with an ε byte budget around half
// the drop leg's observed rate (precision renegotiated down as well).
func pressureBench(clients, points, queueDepth int, outPath string) error {
	if clients < 1 || points < 1 || queueDepth < 1 {
		return fmt.Errorf("pressure-bench needs ≥1 clients, points and queue depth (got %d/%d/%d)", clients, points, queueDepth)
	}
	signals := make([][]core.Point, clients)
	for c := range signals {
		signals[c] = gen.RandomWalk(gen.WalkConfig{N: points, P: 0.5, MaxDelta: 0.4, Seed: uint64(c + 1)})
	}
	var results []PressureResult
	drop, err := pressureLeg(server.DropNewest, 0, signals, queueDepth)
	if err != nil {
		return fmt.Errorf("drop leg: %w", err)
	}
	results = append(results, drop)
	sample, err := pressureLeg(server.Sample, 0, signals, queueDepth)
	if err != nil {
		return fmt.Errorf("sample leg: %w", err)
	}
	results = append(results, sample)
	// The budgeted leg targets half the drop leg's achieved byte rate,
	// so the budgeter has real work whatever machine this runs on.
	budget := float64(drop.WireBytes) / drop.Seconds / 2
	if budget > 0 {
		budgeted, err := pressureLeg(server.Sample, budget, signals, queueDepth)
		if err != nil {
			return fmt.Errorf("budgeted leg: %w", err)
		}
		results = append(results, budgeted)
	}
	for _, r := range results {
		fmt.Printf("pressure [%s%s]: coverage %.4f, max err %.4f (contract ε %.2f, reported ε %.4f, honest=%v), %d segments dropped, %d points shed, %d retune frames, %.0f points/s\n",
			r.Policy, budgetTag(r.EpsBudget), r.Coverage, r.MaxErr, r.ContractEps, r.ReportedEps, r.WithinReported,
			r.DroppedSegments, r.ShedPoints, r.RetuneFrames, r.PointsPerS)
	}
	if outPath == "" {
		return nil
	}
	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote snapshot to %s\n", outPath)
	return nil
}

func budgetTag(b float64) string {
	if b <= 0 {
		return ""
	}
	return fmt.Sprintf("+budget %.0fB/s", b)
}

// pressureLeg drives one policy over the shared workload and verifies
// the archive against ground truth.
func pressureLeg(policy server.DropPolicy, epsBudget float64, signals [][]core.Point, queueDepth int) (PressureResult, error) {
	db := tsdb.New()
	s, err := server.New(db, server.Config{
		Shards:       1, // every series on one worker: the bottleneck is the point
		QueueDepth:   queueDepth,
		Policy:       policy,
		EpsBudget:    epsBudget,
		RetunePeriod: 15 * time.Millisecond,
	})
	if err != nil {
		return PressureResult{}, err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return PressureResult{}, err
	}
	go s.Serve(ln)
	addr := ln.Addr().String()

	start := time.Now()
	var wg sync.WaitGroup
	errs := make([]error, len(signals))
	for c := range signals {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			errs[c] = driveSensor(addr, fmt.Sprintf("press-%d", c), policy, signals[c])
		}(c)
	}
	wg.Wait()
	elapsed := time.Since(start).Seconds()
	for _, err := range errs {
		if err != nil {
			s.Shutdown(context.Background())
			return PressureResult{}, err
		}
	}
	m := s.Metrics()
	res := PressureResult{
		Bench:       "Pressure",
		Policy:      policy.String(),
		Clients:     len(signals),
		PointsEach:  len(signals[0]),
		QueueDepth:  queueDepth,
		EpsBudget:   epsBudget,
		ContractEps: pressureEps,
		ReportedEps: pressureEps,
		Seconds:     elapsed,
		PointsPerS:  float64(len(signals)*len(signals[0])) / elapsed,
		WireBytes:   m.Bytes,
	}
	res.DroppedSegments = m.Dropped
	res.RetuneFrames = m.RetuneFrames
	for _, sm := range m.Shards {
		res.ShedPoints += sm.ShedPoints
	}
	covered, total := 0, 0
	for c := range signals {
		sr, err := db.Get(fmt.Sprintf("press-%d", c))
		if err != nil {
			// The whole series was shed; all its points are uncovered.
			total += len(signals[c])
			continue
		}
		eff := sr.QueryEpsilon()[0]
		if eff > res.ReportedEps {
			res.ReportedEps = eff
		}
		for _, p := range signals[c] {
			total++
			x, ok := sr.At(p.T)
			if !ok {
				continue
			}
			covered++
			if e := abs(x[0] - p.X[0]); e > res.MaxErr {
				res.MaxErr = e
			}
		}
	}
	if total > 0 {
		res.Coverage = float64(covered) / float64(total)
	}
	res.WithinReported = res.MaxErr <= res.ReportedEps+1e-9
	if err := s.Shutdown(context.Background()); err != nil {
		return PressureResult{}, err
	}
	return res, nil
}

// driveSensor streams one signal, with the retune-capable client under
// Sample (the policy the renegotiation exists for) and the plain client
// otherwise.
func driveSensor(addr, name string, policy server.DropPolicy, signal []core.Point) error {
	spec := server.FilterSpec{Kind: "swing", Epsilon: []float64{pressureEps}}
	if policy == server.Sample {
		c, err := server.DialAdaptive(addr, name, spec)
		if err != nil {
			return err
		}
		for _, p := range signal {
			if err := c.Send(p); err != nil {
				return err
			}
		}
		_, err = c.Close()
		return err
	}
	c, err := server.DialSpec(addr, name, spec)
	if err != nil {
		return err
	}
	for _, p := range signal {
		if err := c.Send(p); err != nil {
			return err
		}
	}
	_, err = c.Close()
	return err
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
