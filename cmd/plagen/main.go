// Command plagen generates synthetic signals as CSV on stdout (or a
// file), covering the workload families of the paper's evaluation.
//
// Usage:
//
//	plagen -kind walk  -n 10000 -p 0.5 -delta 4 [-start v] [-dt s] [-seed n]
//	plagen -kind multi -n 10000 -dims 5 -corr 0.7 -p 0.5 -delta 4
//	plagen -kind sst   [-n 1285] [-seed n]
//	plagen -kind sine  -n 1000 [-amp a] [-period p] [-noise s]
//
// The output rows are "t,x1,...,xd", readable by plafilter.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	pla "github.com/pla-go/pla"
	"github.com/pla-go/pla/internal/gen"
)

func main() {
	var (
		kind   = flag.String("kind", "walk", "signal kind: walk, multi, sst, sine, steps, spikes")
		n      = flag.Int("n", 10000, "number of points")
		p      = flag.Float64("p", 0.5, "walk: probability of a decrease per step")
		delta  = flag.Float64("delta", 1, "walk: maximum step magnitude")
		start  = flag.Float64("start", 0, "walk: initial value")
		dt     = flag.Float64("dt", 1, "time step")
		dims   = flag.Int("dims", 1, "multi: number of dimensions")
		corr   = flag.Float64("corr", 0, "multi: pairwise correlation between dimensions")
		amp    = flag.Float64("amp", 10, "sine: amplitude")
		period = flag.Float64("period", 100, "sine: period in points")
		noise  = flag.Float64("noise", 0, "sine: gaussian noise sigma")
		seed   = flag.Uint64("seed", 1, "PRNG seed")
		out    = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	var pts []pla.Point
	switch *kind {
	case "walk":
		pts = pla.RandomWalk(pla.WalkConfig{
			N: *n, P: *p, MaxDelta: *delta, Start: *start, DT: *dt, Seed: *seed,
		})
	case "multi":
		pts = pla.MultiWalk(pla.MultiWalkConfig{
			WalkConfig: pla.WalkConfig{
				N: *n, P: *p, MaxDelta: *delta, Start: *start, DT: *dt, Seed: *seed,
			},
			Dims:        *dims,
			Correlation: *corr,
		})
	case "sst":
		if *n == 1285 && *seed == 1 {
			pts = pla.SeaSurfaceTemperature()
		} else {
			pts = pla.SSTLike(*n, *seed)
		}
	case "sine":
		pts = gen.Sine(*n, *amp, *period, *noise, *seed)
	case "steps":
		pts = gen.Steps(*n, int(*period), *delta, *seed)
	case "spikes":
		pts = gen.Spikes(*n, int(*period), *delta, *seed)
	default:
		fatal(fmt.Errorf("unknown kind %q", *kind))
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := pla.WritePointsCSV(w, pts); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "plagen:", err)
	os.Exit(1)
}
