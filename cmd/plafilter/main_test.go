package main

import (
	"testing"
)

func TestParseEps(t *testing.T) {
	eps, err := parseEps("0.5, 1,2.25")
	if err != nil {
		t.Fatal(err)
	}
	if len(eps) != 3 || eps[0] != 0.5 || eps[1] != 1 || eps[2] != 2.25 {
		t.Fatalf("eps = %v", eps)
	}
	if _, err := parseEps("0.5,abc"); err == nil {
		t.Fatal("bad eps accepted")
	}
	if _, err := parseEps(""); err == nil {
		t.Fatal("empty eps accepted")
	}
}

func TestMakeFilter(t *testing.T) {
	eps := []float64{1}
	for _, name := range []string{
		"cache", "cache-midrange", "cache-mean",
		"linear", "linear-disc", "swing", "slide",
	} {
		f, constant, err := makeFilter(name, eps, 0)
		if err != nil || f == nil {
			t.Fatalf("makeFilter(%q): %v", name, err)
		}
		wantConstant := name == "cache" || name == "cache-midrange" || name == "cache-mean"
		if constant != wantConstant {
			t.Fatalf("makeFilter(%q): constant = %v", name, constant)
		}
	}
	if _, _, err := makeFilter("bogus", eps, 0); err == nil {
		t.Fatal("unknown filter accepted")
	}
	// Max-lag plumbs through to the filters that support it.
	f, _, err := makeFilter("swing", eps, 25)
	if err != nil {
		t.Fatal(err)
	}
	type lagged interface{ MaxLag() int }
	if lg, ok := f.(lagged); !ok || lg.MaxLag() != 25 {
		t.Fatalf("swing max lag not applied")
	}
	f2, _, err := makeFilter("slide", eps, 30)
	if err != nil {
		t.Fatal(err)
	}
	if lg, ok := f2.(lagged); !ok || lg.MaxLag() != 30 {
		t.Fatalf("slide max lag not applied")
	}
}
