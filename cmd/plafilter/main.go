// Command plafilter compresses a CSV point stream with one of the
// paper's filters, or reconstructs points from a compressed stream.
//
// Compress (CSV points in, CSV segments out, stats on stderr):
//
//	plafilter -filter slide -eps 0.5 < points.csv > segments.csv
//	plafilter -filter swing -eps 0.5,0.25 -maxlag 100 < points.csv
//
// Binary wire format instead of CSV segments:
//
//	plafilter -filter slide -eps 0.5 -wire out.pla < points.csv
//
// Reconstruct (sample a compressed stream back to points):
//
//	plafilter -decode -at 0,10,20 < segments.csv
//	plafilter -decode -wire out.pla -at 0,10,20
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	pla "github.com/pla-go/pla"
)

func main() {
	var (
		filter  = flag.String("filter", "slide", "cache, cache-midrange, cache-mean, linear, linear-disc, swing, slide")
		epsFlag = flag.String("eps", "1", "comma-separated per-dimension precision widths")
		maxLag  = flag.Int("maxlag", 0, "m_max_lag bound for swing/slide (0 = unbounded)")
		wire    = flag.String("wire", "", "write (or with -decode, read) the binary wire format at this path")
		decode  = flag.Bool("decode", false, "reconstruct points from a segment stream instead of compressing")
		at      = flag.String("at", "", "with -decode: comma-separated times to sample")
		in      = flag.String("i", "", "input file (default stdin)")
		out     = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	input := io.Reader(os.Stdin)
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		input = f
	}
	output := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		output = f
	}

	if *decode {
		runDecode(input, output, *wire, *at)
		return
	}
	runCompress(input, output, *filter, *epsFlag, *maxLag, *wire)
}

func runCompress(input io.Reader, output io.Writer, name, epsFlag string, maxLag int, wire string) {
	eps, err := parseEps(epsFlag)
	if err != nil {
		fatal(err)
	}
	pts, err := pla.ReadPointsCSV(input)
	if err != nil {
		fatal(err)
	}
	if len(pts) > 0 && len(pts[0].X) != len(eps) {
		fatal(fmt.Errorf("signal has %d dims but -eps has %d", len(pts[0].X), len(eps)))
	}

	f, constant, err := makeFilter(name, eps, maxLag)
	if err != nil {
		fatal(err)
	}
	segs, err := pla.Compress(f, pts)
	if err != nil {
		fatal(err)
	}

	if wire != "" {
		wf, err := os.Create(wire)
		if err != nil {
			fatal(err)
		}
		n, err := pla.Encode(wf, eps, constant, segs)
		if err != nil {
			fatal(err)
		}
		if err := wf.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wire: %d bytes (raw %d, %.2fx)\n",
			n, pla.RawSize(len(pts), len(eps)),
			float64(pla.RawSize(len(pts), len(eps)))/float64(n))
	} else {
		if err := pla.WriteSegmentsCSV(output, segs); err != nil {
			fatal(err)
		}
	}

	st := f.Stats()
	fmt.Fprintf(os.Stderr,
		"%s: %d points → %d segments, %d recordings, compression ratio %.3f, lag flushes %d\n",
		name, st.Points, st.Segments, st.Recordings, st.CompressionRatio(), st.LagFlushes)
}

func runDecode(input io.Reader, output io.Writer, wire, at string) {
	var segs []pla.Segment
	var err error
	if wire != "" {
		f, err2 := os.Open(wire)
		if err2 != nil {
			fatal(err2)
		}
		defer f.Close()
		segs, err = pla.Decode(f)
	} else {
		segs, err = pla.ReadSegmentsCSV(input)
	}
	if err != nil {
		fatal(err)
	}
	model, err := pla.Reconstruct(segs)
	if err != nil {
		fatal(err)
	}
	if at == "" {
		t0, t1 := model.Span()
		fmt.Fprintf(os.Stderr, "decoded %d segments spanning [%g, %g]; use -at t1,t2,… to sample\n",
			len(segs), t0, t1)
		return
	}
	for _, fld := range strings.Split(at, ",") {
		t, err := strconv.ParseFloat(strings.TrimSpace(fld), 64)
		if err != nil {
			fatal(fmt.Errorf("bad -at time %q: %v", fld, err))
		}
		x, ok := model.Eval(t)
		if !ok {
			fmt.Fprintf(output, "%g,uncovered\n", t)
			continue
		}
		row := make([]string, 0, 1+len(x))
		row = append(row, strconv.FormatFloat(t, 'g', -1, 64))
		for _, v := range x {
			row = append(row, strconv.FormatFloat(v, 'g', -1, 64))
		}
		fmt.Fprintln(output, strings.Join(row, ","))
	}
}

func makeFilter(name string, eps []float64, maxLag int) (pla.Filter, bool, error) {
	switch name {
	case "cache":
		f, err := pla.NewCacheFilter(eps)
		return f, true, err
	case "cache-midrange":
		f, err := pla.NewCacheFilter(eps, pla.WithCacheMode(pla.CacheMidrange))
		return f, true, err
	case "cache-mean":
		f, err := pla.NewCacheFilter(eps, pla.WithCacheMode(pla.CacheMean))
		return f, true, err
	case "linear":
		f, err := pla.NewLinearFilter(eps)
		return f, false, err
	case "linear-disc":
		f, err := pla.NewLinearFilter(eps, pla.WithDisconnectedSegments())
		return f, false, err
	case "swing":
		var opts []pla.SwingOption
		if maxLag > 0 {
			opts = append(opts, pla.WithSwingMaxLag(maxLag))
		}
		f, err := pla.NewSwingFilter(eps, opts...)
		return f, false, err
	case "slide":
		var opts []pla.SlideOption
		if maxLag > 0 {
			opts = append(opts, pla.WithSlideMaxLag(maxLag))
		}
		f, err := pla.NewSlideFilter(eps, opts...)
		return f, false, err
	default:
		return nil, false, fmt.Errorf("unknown filter %q", name)
	}
}

func parseEps(s string) ([]float64, error) {
	fields := strings.Split(s, ",")
	eps := make([]float64, 0, len(fields))
	for _, f := range fields {
		v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, fmt.Errorf("bad -eps value %q: %v", f, err)
		}
		eps = append(eps, v)
	}
	return eps, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "plafilter:", err)
	os.Exit(1)
}
