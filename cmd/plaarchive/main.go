// Command plaarchive builds and queries pla segment archives: CSV streams
// go in through a filter, a compact .plaa file comes out, and range
// queries (point lookups, min/max/mean with guaranteed ±ε bounds,
// resampling) run against it without ever re-materialising the raw data.
//
// Usage:
//
//	plaarchive build -o data.plaa -filter slide -eps 0.5 name=points.csv [name2=more.csv …]
//	plaarchive info data.plaa
//	plaarchive query data.plaa -series name -op at   -at 120
//	plaarchive query data.plaa -series name -op min  -from 0 -to 1000
//	plaarchive query data.plaa -series name -op mean -from 0 -to 1000 -dim 0
//	plaarchive query data.plaa -series name -op sample -from 0 -to 100 -dt 10
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	pla "github.com/pla-go/pla"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "build":
		build(os.Args[2:])
	case "info":
		info(os.Args[2:])
	case "query":
		query(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: plaarchive build|info|query … (see package doc)")
	os.Exit(2)
}

// liftPath moves a leading non-flag argument (the archive path) to the
// end so the standard flag package can parse the remaining flags.
func liftPath(args []string) []string {
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		return append(append([]string(nil), args[1:]...), args[0])
	}
	return args
}

func build(args []string) {
	fs := flag.NewFlagSet("build", flag.ExitOnError)
	out := fs.String("o", "archive.plaa", "output archive path")
	filter := fs.String("filter", "slide", "cache, linear, swing, slide")
	epsFlag := fs.String("eps", "1", "comma-separated per-dimension precision widths")
	_ = fs.Parse(args)
	if fs.NArg() == 0 {
		fatal(fmt.Errorf("build needs at least one name=file.csv argument"))
	}
	eps := parseEps(*epsFlag)

	arch := pla.NewArchive()
	for _, spec := range fs.Args() {
		name, path, ok := strings.Cut(spec, "=")
		if !ok {
			fatal(fmt.Errorf("bad series spec %q (want name=file.csv)", spec))
		}
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		pts, err := pla.ReadPointsCSV(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		flt, err := makeFilter(*filter, eps)
		if err != nil {
			fatal(err)
		}
		s, err := arch.Ingest(name, flt, pts)
		if err != nil {
			fatal(err)
		}
		st := s.Stats()
		fmt.Fprintf(os.Stderr, "%s: %d points → %d segments (%d recordings, ratio %.2f)\n",
			name, st.Points, st.Segments, st.Recordings, st.Ratio)
	}
	if err := arch.SaveFile(*out); err != nil {
		fatal(err)
	}
	fi, err := os.Stat(*out)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d bytes)\n", *out, fi.Size())
}

func info(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	_ = fs.Parse(liftPath(args))
	if fs.NArg() != 1 {
		fatal(fmt.Errorf("info needs exactly one archive path"))
	}
	arch, err := pla.LoadArchiveFile(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%-16s %5s %9s %11s %8s %7s %14s\n",
		"series", "dim", "segments", "recordings", "points", "ratio", "span")
	for _, name := range arch.Names() {
		s, err := arch.Get(name)
		if err != nil {
			fatal(err)
		}
		st := s.Stats()
		t0, t1, _ := s.Span()
		fmt.Printf("%-16s %5d %9d %11d %8d %7.2f [%g, %g]\n",
			name, st.Dim, st.Segments, st.Recordings, st.Points, st.Ratio, t0, t1)
	}
}

func query(args []string) {
	fs := flag.NewFlagSet("query", flag.ExitOnError)
	series := fs.String("series", "", "series name (required)")
	op := fs.String("op", "at", "at, min, max, mean, sample")
	at := fs.Float64("at", 0, "time for -op at")
	from := fs.Float64("from", 0, "range start")
	to := fs.Float64("to", 0, "range end")
	dt := fs.Float64("dt", 1, "sample step for -op sample")
	dim := fs.Int("dim", 0, "dimension for min/max/mean")
	_ = fs.Parse(liftPath(args))
	if fs.NArg() != 1 || *series == "" {
		fatal(fmt.Errorf("query needs an archive path and -series"))
	}
	arch, err := pla.LoadArchiveFile(fs.Arg(0))
	if err != nil {
		fatal(err)
	}
	s, err := arch.Get(*series)
	if err != nil {
		fatal(err)
	}
	switch *op {
	case "at":
		x, ok := s.At(*at)
		if !ok {
			fatal(fmt.Errorf("t=%g is not covered", *at))
		}
		fmt.Println(joinFloats(x))
	case "min", "max", "mean":
		var res pla.AggregateResult
		switch *op {
		case "min":
			res, err = s.Min(*dim, *from, *to)
		case "max":
			res, err = s.Max(*dim, *from, *to)
		default:
			res, err = s.Mean(*dim, *from, *to)
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s[%g,%g] dim %d = %g ± %g (covered %g, %d segments)\n",
			*op, *from, *to, *dim, res.Value, res.Epsilon, res.Covered, res.Segments)
	case "sample":
		pts, err := s.Sample(*from, *to, *dt)
		if err != nil {
			fatal(err)
		}
		if err := pla.WritePointsCSV(os.Stdout, pts); err != nil {
			fatal(err)
		}
	default:
		fatal(fmt.Errorf("unknown op %q", *op))
	}
}

func makeFilter(name string, eps []float64) (pla.Filter, error) {
	switch name {
	case "cache":
		return pla.NewCacheFilter(eps)
	case "linear":
		return pla.NewLinearFilter(eps)
	case "swing":
		return pla.NewSwingFilter(eps)
	case "slide":
		return pla.NewSlideFilter(eps)
	default:
		return nil, fmt.Errorf("unknown filter %q", name)
	}
}

func parseEps(s string) []float64 {
	var eps []float64
	for _, f := range strings.Split(s, ",") {
		var v float64
		if _, err := fmt.Sscanf(strings.TrimSpace(f), "%g", &v); err != nil {
			fatal(fmt.Errorf("bad eps %q", f))
		}
		eps = append(eps, v)
	}
	return eps
}

func joinFloats(x []float64) string {
	parts := make([]string, len(x))
	for i, v := range x {
		parts[i] = fmt.Sprintf("%g", v)
	}
	return strings.Join(parts, ",")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "plaarchive:", err)
	os.Exit(1)
}
