package main

import (
	"reflect"
	"testing"
)

func TestLiftPath(t *testing.T) {
	got := liftPath([]string{"arch.plaa", "-series", "s", "-op", "min"})
	want := []string{"-series", "s", "-op", "min", "arch.plaa"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("liftPath = %v", got)
	}
	// Already flag-first: unchanged.
	in := []string{"-series", "s", "arch.plaa"}
	if got := liftPath(in); !reflect.DeepEqual(got, in) {
		t.Fatalf("liftPath(flag-first) = %v", got)
	}
	if got := liftPath(nil); len(got) != 0 {
		t.Fatalf("liftPath(nil) = %v", got)
	}
}

func TestParseEpsArchive(t *testing.T) {
	eps := parseEps("1,0.5")
	if len(eps) != 2 || eps[0] != 1 || eps[1] != 0.5 {
		t.Fatalf("eps = %v", eps)
	}
}

func TestJoinFloats(t *testing.T) {
	if got := joinFloats([]float64{1.5, -2, 3}); got != "1.5,-2,3" {
		t.Fatalf("joinFloats = %q", got)
	}
	if got := joinFloats(nil); got != "" {
		t.Fatalf("joinFloats(nil) = %q", got)
	}
}

func TestMakeFilterArchive(t *testing.T) {
	for _, name := range []string{"cache", "linear", "swing", "slide"} {
		if f, err := makeFilter(name, []float64{1}); err != nil || f == nil {
			t.Fatalf("makeFilter(%q): %v", name, err)
		}
	}
	if _, err := makeFilter("bogus", []float64{1}); err == nil {
		t.Fatal("unknown filter accepted")
	}
}
