// Command plad runs the PLA ingestion daemon: a TCP server that accepts
// many concurrent sensor connections, each streaming ε-filtered segments
// for one named series, routes them through sharded filter workers into
// an in-memory tsdb archive, and answers line-oriented range/aggregate
// queries with the ±ε bounds the precision contracts guarantee.
//
// Usage:
//
//	plad [-addr :7070] [-shards 8] [-queue 1024]
//	     [-policy block|drop|drop-oldest|sample] [-shed POLICY]
//	     [-eps-budget BYTES_PER_SEC] [-retune-every 1s]
//	     [-transport tcp|udp] [-udp-listeners N]
//	     [-data-dir DIR] [-store mem|mmap]
//	     [-extent-compact-min N] [-extent-target-records N]
//	     [-extent-write-v1] [-no-fence-index]
//	     [-rollup-tiers 4,16]
//	     [-sync always|interval|off] [-sync-every 50ms]
//	     [-compact-bytes N] [-retain T] [-http ADDR]
//	plad -demo [-demo-clients 8] [-demo-points 2000] [-demo-max-lag 25]
//	     [-transport tcp|udp] [-data-dir DIR]
//	plad -list-flags | -list-metrics
//
// Without -demo, plad serves until SIGINT/SIGTERM, then drains its shard
// queues and exits. With -data-dir the archive is durable through a
// partitioned commit pipeline: each ingest shard owns its own
// `shard-<k>/` write-ahead log, so appends and fsyncs run in parallel,
// and under -sync always each shard batches every session barrier
// queued since its last sync into one fsync (group commit). On boot
// plad recovers all partitions concurrently (snapshot load → WAL replay
// with torn-tail truncation → serve), transparently migrating a
// pre-partitioning single-log directory or a directory written with a
// different -shards value. Each shard compacts its own log into fresh
// snapshots as it grows (dropping segments older than the -retain
// window, if set), and a graceful drain leaves one clean snapshot per
// shard. -http serves /metrics (Prometheus text: per-shard queue depth,
// drops, WAL bytes, fsync and group-commit counts) and /healthz.
// -store mmap swaps the heap-resident segment store for the
// read-optimized extent store: sealed segments live in memory-mapped,
// checksummed files under <data-dir>/mstore, compaction seals instead
// of snapshotting, and a cold start maps the extents and replays only
// the WAL tail. A directory written by the other backend migrates in
// one shot on boot. -transport udp additionally opens the datagram
// ingest endpoint on the same port number as -addr: -udp-listeners
// SO_REUSEPORT sockets (one per core by default) accept PLU1 sessions
// that land in the same shard pipeline, write-ahead log and archive as
// TCP sessions; stream ingest and queries stay on TCP either way.
// -rollup-tiers enables precision rollups: every compaction sweep
// re-encodes each series' finalized prefix at the listed multiples of
// its ingest ε (derived tiers, invisible to SERIES and "*"), and
// queries carrying a BOUND argument are answered from the coarsest tier
// whose composed bound still satisfies it — far fewer segments read,
// honest wider band on the reply. -policy sample (alias -shed sample)
// selects graceful degradation: full queues apply backpressure instead
// of dropping segments, and the retune loop tells retune-capable
// senders to decimate points ahead of their filter, walking a stride
// ladder with queue fill; the senders report the measured effective-ε
// inflation, which queries surface and /metrics exports
// (plad_session_eps_effective). -eps-budget additionally caps total
// ingest bytes/s by widening session ε burden-proportionally and
// relaxing back under budget; -retune-every sets the loop's cadence.
// -list-flags and -list-metrics print
// the daemon's flag and /metrics name inventories (one per line) and
// exit; `make docs-check` diffs them against the documentation.
//
// With -demo it starts a server on an ephemeral loopback port, drives
// -demo-clients concurrent sensors through it (synthetic signals from
// internal/gen, one filter kind per client, round-robin; the swing and
// slide sensors stream lag-bounded at -demo-max-lag, exercising the
// provisional-update path), runs range and aggregate queries back,
// verifies the precision bands against the generated ground truth and
// the lag accounting (bound on record, zero staleness after the drain),
// prints the per-shard metrics, and exits non-zero on any violation —
// an end-to-end self-check of the sensor → server → query loop. Adding
// -data-dir extends the self-check with restarts: after the drain the
// server is rebuilt from the data directory alone — once as configured,
// once under a different shard count, and once on the other store
// backend — and every series is verified segment-for-segment against
// the pre-restart archive each time.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"github.com/pla-go/pla/internal/server"
	"github.com/pla-go/pla/internal/wal"
)

func main() {
	var (
		addr         = flag.String("addr", ":7070", "listen address")
		shards       = flag.Int("shards", 8, "filter worker shards")
		queue        = flag.Int("queue", 1024, "per-shard queue depth (segments)")
		policy       = flag.String("policy", "block", "overload policy: block (backpressure), drop (shed newest), drop-oldest (shed stalest) or sample (backpressure + retune-capable senders decimate, spending precision instead of losing intervals)")
		shed         = flag.String("shed", "", "alias for -policy (takes precedence when set)")
		epsBudget    = flag.Float64("eps-budget", 0, "total ingest byte-rate budget in bytes/s across retune-capable sessions: when exceeded, session ε widens burden-proportionally (up to 16× contract) and relaxes back under budget (0 = disabled)")
		retuneEvery  = flag.Duration("retune-every", time.Second, "how often the retune loop reassesses session degradation (-policy sample or -eps-budget)")
		dataDir      = flag.String("data-dir", "", "durable storage directory (empty = in-memory only)")
		storeBackend = flag.String("store", "mem", "segment store backend: mem (heap) or mmap (memory-mapped sealed extents; needs -data-dir)")
		syncPolicy   = flag.String("sync", "interval", "WAL fsync policy with -data-dir: always (ack-after-fsync), interval, off")
		syncEvery    = flag.Duration("sync-every", 50*time.Millisecond, "background WAL flush/fsync cadence for -sync interval|off")
		compactBytes = flag.Int64("compact-bytes", 64<<20, "snapshot+truncate a shard's WAL when its tail exceeds this many bytes")
		commitLinger = flag.Duration("commit-linger", 5*time.Millisecond, "group-commit linger ceiling: how long a shard's committer may wait for more session barriers to share one fsync (negative = never linger)")
		commitBatch  = flag.Int("commit-max-batch", 0, "stop lingering once a commit batch holds this many barriers (0 = no bound)")
		retain       = flag.Float64("retain", 0, "retention window in stream-time units; compaction drops older segments (0 = keep everything)")
		extCompact   = flag.Int("extent-compact-min", 0, "with -store mmap: merge a series' small sealed extents once it has this many (0 = default 8, negative = disable background extent compaction)")
		extTarget    = flag.Int("extent-target-records", 0, "with -store mmap: stop growing a merged extent once it holds this many records (0 = default 65536)")
		extWriteV1   = flag.Bool("extent-write-v1", false, "with -store mmap: seal new extents in the fixed-width v1 format instead of bit-packed v2 (v1 archives stay readable either way)")
		noFenceIndex = flag.Bool("no-fence-index", false, "with -store mmap: disable the learned fence index over extent start times (cold lookups fall back to per-extent binary search)")
		rollupTiers  = flag.String("rollup-tiers", "", "comma-separated precision multipliers (e.g. 4,16): each compaction sweep maintains a rollup tier per multiplier, and BOUND queries select the coarsest tier that satisfies them (empty = no rollups)")
		transport    = flag.String("transport", "tcp", "ingest transport: tcp, or udp (adds the datagram endpoint on -addr's port; TCP keeps serving streams and queries)")
		udpListeners = flag.Int("udp-listeners", 0, "SO_REUSEPORT datagram listeners with -transport udp (0 = one per core)")
		httpAddr     = flag.String("http", "", "serve /metrics and /healthz on this address (empty = disabled)")
		demo         = flag.Bool("demo", false, "run the loopback self-check demo and exit")
		demoClients  = flag.Int("demo-clients", 8, "concurrent sensors in the demo")
		demoPoints   = flag.Int("demo-points", 2000, "points per demo sensor")
		demoMaxLag   = flag.Int("demo-max-lag", 25, "m_max_lag bound the demo's swing/slide sensors advertise (0 = unbounded)")
		listFlags    = flag.Bool("list-flags", false, "print every plad flag name, one per line, and exit (docs-check input)")
		listMetrics  = flag.Bool("list-metrics", false, "print every /metrics series name, one per line, and exit (docs-check input)")
	)
	flag.Parse()

	if *listFlags {
		flag.VisitAll(func(f *flag.Flag) { fmt.Println(f.Name) })
		return
	}
	if *listMetrics {
		for _, name := range server.MetricNames() {
			fmt.Println(name)
		}
		return
	}

	cfg := server.Config{
		Shards:              *shards,
		QueueDepth:          *queue,
		DataDir:             *dataDir,
		SyncEvery:           *syncEvery,
		CompactBytes:        *compactBytes,
		CommitLinger:        *commitLinger,
		CommitMaxBatch:      *commitBatch,
		RetainSegments:      *retain,
		ExtentCompactMin:    *extCompact,
		ExtentTargetRecords: *extTarget,
		ExtentWriteV1:       *extWriteV1,
		NoFenceIndex:        *noFenceIndex,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "plad: "+format+"\n", args...)
		},
	}
	pol := *policy
	if *shed != "" {
		pol = *shed
	}
	switch pol {
	case "block":
		cfg.Policy = server.Block
	case "drop":
		cfg.Policy = server.DropNewest
	case "drop-oldest":
		cfg.Policy = server.DropOldest
	case "sample":
		cfg.Policy = server.Sample
	default:
		fatal(fmt.Errorf("unknown -policy %q (want block, drop, drop-oldest or sample)", pol))
	}
	cfg.EpsBudget = *epsBudget
	cfg.RetunePeriod = *retuneEvery
	if *dataDir != "" {
		sp, err := wal.ParseSyncPolicy(*syncPolicy)
		if err != nil {
			fatal(err)
		}
		cfg.Sync = sp
	}
	backend, err := server.ParseStoreBackend(*storeBackend)
	if err != nil {
		fatal(err)
	}
	cfg.StoreBackend = backend
	if cfg.RollupTiers, err = parseTiers(*rollupTiers); err != nil {
		fatal(err)
	}

	switch *transport {
	case "tcp", "udp":
	default:
		fatal(fmt.Errorf("unknown -transport %q (want tcp or udp)", *transport))
	}

	if *demo {
		if err := runDemo(os.Stdout, cfg, *transport, *demoClients, *demoPoints, *demoMaxLag); err != nil {
			fatal(err)
		}
		return
	}

	s, err := server.New(nil, cfg)
	if err != nil {
		fatal(err)
	}
	if *transport == "udp" {
		ua, err := s.ListenUDP(*addr, *udpListeners)
		if err != nil {
			fatal(fmt.Errorf("udp ingest: %w", err))
		}
		fmt.Printf("plad: udp ingest on %s\n", ua)
	}
	var httpLn net.Listener
	if *httpAddr != "" {
		httpLn, err = net.Listen("tcp", *httpAddr)
		if err != nil {
			fatal(fmt.Errorf("http listener: %w", err))
		}
		fmt.Printf("plad: metrics on http://%s/metrics\n", httpLn.Addr())
		go http.Serve(httpLn, s.Handler())
	}
	done := make(chan error, 1)
	go func() {
		durable := "in-memory"
		if cfg.DataDir != "" {
			durable = fmt.Sprintf("data-dir %s, store %s, sync %s", cfg.DataDir, cfg.StoreBackend, cfg.Sync)
		}
		fmt.Printf("plad: listening on %s (%d shards, queue %d, policy %s, %s)\n",
			*addr, cfg.Shards, cfg.QueueDepth, cfg.Policy, durable)
		done <- s.ListenAndServe(*addr)
	}()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	select {
	case err := <-done:
		fatal(err)
	case <-sig:
		fmt.Println("plad: draining…")
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			// The drain still completed — Shutdown only reports that live
			// sessions had to be force-closed at the deadline. A routine
			// restart of a busy daemon is not a failure.
			fmt.Fprintln(os.Stderr, "plad: drain deadline reached, open sessions force-closed:", err)
		}
		if httpLn != nil {
			httpLn.Close()
		}
		m := s.Metrics()
		fmt.Printf("plad: stored %d segments (%d points, %d B on the wire) across %d sessions\n",
			m.Segments, m.Points, m.Bytes, m.TotalSessions)
	}
}

// parseTiers parses the -rollup-tiers ladder: comma-separated integer
// precision multipliers, each at least 2.
func parseTiers(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var tiers []int
	for _, word := range strings.Split(s, ",") {
		m, err := strconv.Atoi(strings.TrimSpace(word))
		if err != nil || m < 2 {
			return nil, fmt.Errorf("bad -rollup-tiers %q: want comma-separated integer multipliers ≥ 2", s)
		}
		tiers = append(tiers, m)
	}
	return tiers, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "plad:", err)
	os.Exit(1)
}
