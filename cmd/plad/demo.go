package main

import (
	"context"
	"fmt"
	"io"
	"math"
	"net"
	"sort"
	"sync"
	"time"

	"github.com/pla-go/pla/internal/core"
	"github.com/pla-go/pla/internal/encode"
	"github.com/pla-go/pla/internal/gen"
	"github.com/pla-go/pla/internal/server"
	"github.com/pla-go/pla/internal/tsdb"
)

// demoSensor is one synthetic client of the self-check fleet.
type demoSensor struct {
	name   string
	kind   string
	eps    float64
	maxLag int // swing/slide sensors stream lag-bounded when > 0
	signal []core.Point
}

func demoFleet(clients, points, maxLag int) []demoSensor {
	kinds := []string{"cache", "linear", "swing", "slide"}
	fleet := make([]demoSensor, clients)
	for i := range fleet {
		seed := uint64(i + 1)
		var signal []core.Point
		lag := 0
		switch i % 4 {
		case 0:
			signal = gen.Sine(points, 10, float64(points)/8, 0.05, seed)
		case 1:
			signal = gen.Steps(points, 40, 5, seed)
		case 2:
			signal = gen.RandomWalk(gen.WalkConfig{N: points, P: 0.5, MaxDelta: 0.4, Seed: seed})
			lag = maxLag
		default:
			signal = gen.SSTLike(points, seed)
			lag = maxLag
		}
		fleet[i] = demoSensor{
			name:   fmt.Sprintf("sensor-%02d", i),
			kind:   kinds[i%4],
			eps:    0.25,
			maxLag: lag,
			signal: signal,
		}
	}
	return fleet
}

func demoFilter(kind string, eps float64, maxLag int) (core.Filter, error) {
	e := []float64{eps}
	switch kind {
	case "cache":
		return core.NewCache(e)
	case "linear":
		return core.NewLinear(e)
	case "swing":
		if maxLag > 0 {
			return core.NewSwing(e, core.WithSwingMaxLag(maxLag))
		}
		return core.NewSwing(e)
	default:
		if maxLag > 0 {
			return core.NewSlide(e, core.WithSlideMaxLag(maxLag))
		}
		return core.NewSlide(e)
	}
}

// runDemo drives the full sensor → server → query loop on loopback and
// verifies the precision contract end to end. transport selects the
// ingest wire ("tcp" or "udp" — queries always run over TCP). With a
// DataDir configured it finishes by restarting the server from the data
// directory alone and verifying the recovered archive segment for
// segment.
func runDemo(w io.Writer, cfg server.Config, transport string, clients, points, maxLag int) error {
	if clients < 1 || points < 10 {
		return fmt.Errorf("demo needs ≥1 client and ≥10 points")
	}
	if maxLag < 0 || maxLag == 1 {
		return fmt.Errorf("-demo-max-lag must be ≥2 (or 0 to disable)")
	}
	if transport == "" {
		transport = "tcp"
	}
	s, err := server.New(nil, cfg)
	if err != nil {
		return err
	}
	db := s.DB()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	go s.Serve(ln)
	addr := ln.Addr().String()
	ingestAddr := addr
	if transport == "udp" {
		ua, err := s.ListenUDP("127.0.0.1:0", 0)
		if err != nil {
			return err
		}
		ingestAddr = ua.String()
	}
	fmt.Fprintf(w, "plad demo: server on %s (%s ingest), %d clients × %d points\n", addr, transport, clients, points)

	fleet := demoFleet(clients, points, maxLag)
	start := time.Now()
	var wg sync.WaitGroup
	acks := make([]server.Ack, len(fleet))
	bytes := make([]int64, len(fleet))
	errs := make([]error, len(fleet))
	for i, sn := range fleet {
		wg.Add(1)
		go func(i int, sn demoSensor) {
			defer wg.Done()
			f, err := demoFilter(sn.kind, sn.eps, sn.maxLag)
			if err != nil {
				errs[i] = err
				return
			}
			c, err := server.DialTransport(transport, ingestAddr, sn.name, f)
			if err != nil {
				errs[i] = err
				return
			}
			if err := c.SendBatch(sn.signal); err != nil {
				errs[i] = err
				return
			}
			acks[i], errs[i] = c.Close()
			bytes[i] = c.BytesSent() // after Close: includes final segments + terminator
		}(i, sn)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("client %s: %w", fleet[i].name, err)
		}
	}
	elapsed := time.Since(start)

	q, err := server.DialQuery(addr)
	if err != nil {
		return err
	}
	defer q.Close()

	fmt.Fprintf(w, "\n%-10s %-7s %9s %9s %9s %12s %22s\n",
		"series", "filter", "points", "segments", "bytes", "mean±ε", "true mean (in band?)")
	violations := 0
	for i, sn := range fleet {
		t0, t1 := sn.signal[0].T, sn.signal[len(sn.signal)-1].T
		// Per-sample contract: every sample within ε of the reconstruction.
		worst, recSum := 0.0, 0.0
		for _, p := range sn.signal {
			x, err := q.At(sn.name, p.T)
			if err != nil {
				return fmt.Errorf("%s: At(%v): %w", sn.name, p.T, err)
			}
			worst = math.Max(worst, math.Abs(x[0]-p.X[0]))
			recSum += x[0]
		}
		if worst > sn.eps+1e-9 {
			violations++
		}
		recMean := recSum / float64(len(sn.signal))
		// Aggregate bands against the generated ground truth.
		trueMin, trueMax, sum := math.Inf(1), math.Inf(-1), 0.0
		for _, p := range sn.signal {
			trueMin = math.Min(trueMin, p.X[0])
			trueMax = math.Max(trueMax, p.X[0])
			sum += p.X[0]
		}
		trueMean := sum / float64(len(sn.signal))
		mean, err := q.Mean(sn.name, 0, t0, t1)
		if err != nil {
			return err
		}
		mn, err := q.Min(sn.name, 0, t0, t1)
		if err != nil {
			return err
		}
		mx, err := q.Max(sn.name, 0, t0, t1)
		if err != nil {
			return err
		}
		// The deterministic mean guarantee runs through the reconstruction
		// evaluated at the sample times: averaging |rec−x| ≤ ε bounds it.
		// The time-weighted MEAN must in turn sit inside the
		// reconstruction's own [min, max] envelope.
		meanOK := math.Abs(recMean-trueMean) <= mean.Epsilon+1e-9 &&
			mean.Value >= mn.Value-1e-9 && mean.Value <= mx.Value+1e-9
		if trueMin < mn.Lo()-1e-9 || trueMax > mx.Hi()+1e-9 || !meanOK {
			violations++
		}
		fmt.Fprintf(w, "%-10s %-7s %9d %9d %9d %7.3f±%.2f %14.3f (%v)\n",
			sn.name, sn.kind, len(sn.signal), acks[i].Applied, bytes[i],
			recMean, mean.Epsilon, trueMean, meanOK)
	}

	m := s.Metrics()
	fmt.Fprintf(w, "\nshards (policy %s):\n", cfg.Policy)
	for _, sm := range m.Shards {
		fmt.Fprintf(w, "  shard %2d: %6d segments, %7d points, %7d B, queue %d/%d, rejected %d, dropped %d\n",
			sm.Shard, sm.Segments, sm.Points, sm.Bytes, sm.QueueLen, sm.QueueCap, sm.Rejected, sm.Dropped)
	}
	totalPoints := clients * points
	fmt.Fprintf(w, "\ningested %d points as %d segments (%d B on the wire, %.1fx vs raw) in %v (%.0f points/s)\n",
		totalPoints, m.Segments, m.Bytes,
		float64(encode.RawSize(totalPoints, 1))/math.Max(float64(m.Bytes), 1),
		elapsed.Round(time.Millisecond), float64(totalPoints)/elapsed.Seconds())

	// Lag-bounded sensors drained cleanly: every advertised bound must be
	// on record with a fully finalized, staleness-free series behind it.
	lagged := 0
	for _, sn := range fleet {
		if sn.maxLag == 0 {
			continue
		}
		info, err := q.Lag(sn.name)
		if err != nil {
			return fmt.Errorf("%s: LAG: %w", sn.name, err)
		}
		if info.Bound != int64(sn.maxLag) || info.Pending != 0 || info.Stale != 0 ||
			info.Covered != int64(len(sn.signal)) {
			return fmt.Errorf("%s: lag accounting off after drain: %+v", sn.name, info)
		}
		lagged++
	}
	if lagged > 0 {
		fmt.Fprintf(w, "\n%d lag-bounded sessions (m=%d) drained staleness-free ✓\n", lagged, maxLag)
	}

	// Segment-native pushdown: AGG and QUANTILE answer from summary
	// windows plus closed-form edge segments, never a per-point fold.
	// Check their composed bands against the generated ground truth.
	var windows int
	for _, sn := range fleet {
		t0, t1 := sn.signal[0].T, sn.signal[len(sn.signal)-1].T
		cnt, err := q.Agg("count", sn.name, 0, t0, t1)
		if err != nil {
			return fmt.Errorf("%s: AGG count: %w", sn.name, err)
		}
		mn, err := q.Agg("min", sn.name, 0, t0, t1)
		if err != nil {
			return err
		}
		mx, err := q.Agg("max", sn.name, 0, t0, t1)
		if err != nil {
			return err
		}
		med, err := q.Quantiles(sn.name, 0, t0, t1, 0.5)
		if err != nil {
			return fmt.Errorf("%s: QUANTILE: %w", sn.name, err)
		}
		vals := make([]float64, len(sn.signal))
		trueMin, trueMax := math.Inf(1), math.Inf(-1)
		for i, p := range sn.signal {
			vals[i] = p.X[0]
			trueMin = math.Min(trueMin, p.X[0])
			trueMax = math.Max(trueMax, p.X[0])
		}
		sort.Float64s(vals)
		trueMed := vals[(len(vals)-1)/2]
		if cnt.Count != int64(len(sn.signal)) ||
			trueMin < mn.Lo()-1e-9 || trueMax > mx.Hi()+1e-9 ||
			trueMed < med[0].Lo-1e-9 || trueMed > med[0].Hi+1e-9 {
			violations++
		}
		windows += cnt.Windows
	}
	fleetCnt, err := q.Agg("count", "*", 0, 0, math.MaxFloat64)
	if err != nil {
		return fmt.Errorf("AGG count *: %w", err)
	}
	if fleetCnt.Count != int64(clients*points) {
		return fmt.Errorf("fan-out AGG counted %d samples, fleet sent %d", fleetCnt.Count, clients*points)
	}
	fmt.Fprintf(w, "pushdown AGG/QUANTILE bands verified over %d series (fan-out count %d, %d summary windows, %d segments) ✓\n",
		len(fleet), fleetCnt.Count, windows, fleetCnt.Segments)

	// Detach the archive contents before Shutdown: under the mmap
	// backend the drain unmaps the extent files, so the comparison
	// baseline must not read through them afterwards.
	want := detach(db)
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	// The drain's final compaction applies the retention window after
	// the baseline was captured; mirror it, or a -retain demo would
	// flag the (correct) recovery as missing the pruned head.
	if cfg.RetainSegments > 0 {
		for _, name := range want.Names() {
			if ws, err := want.Get(name); err == nil {
				if _, end, ok := ws.Span(); ok {
					ws.DropBefore(end - cfg.RetainSegments)
				}
			}
		}
	}
	if violations > 0 {
		return fmt.Errorf("%d precision violations", violations)
	}
	fmt.Fprintln(w, "all precision bands verified ✓")
	if cfg.DataDir != "" {
		if err := verifyRecovery(w, cfg, want); err != nil {
			return err
		}
		// Restart once more with a different shard count: the partitioned
		// logs must migrate into the new sharding without losing a
		// segment.
		resharded := cfg
		resharded.Shards = cfg.Shards*2 + 1
		if err := verifyRecovery(w, resharded, want); err != nil {
			return fmt.Errorf("reshard %d→%d: %w", cfg.Shards, resharded.Shards, err)
		}
		// And once more on the other store backend: the same directory
		// must migrate between mem and mmap without losing a segment.
		flipped := resharded
		if flipped.StoreBackend == server.BackendMmap {
			flipped.StoreBackend = server.BackendMem
		} else {
			flipped.StoreBackend = server.BackendMmap
		}
		if err := verifyRecovery(w, flipped, want); err != nil {
			return fmt.Errorf("backend flip %v→%v: %w", resharded.StoreBackend, flipped.StoreBackend, err)
		}
	}
	return nil
}

// detach deep-copies an archive's contents into a plain in-memory
// archive, so comparisons can outlive the server (and, under the mmap
// backend, the extent mappings) that produced it.
func detach(db *tsdb.Archive) *tsdb.Archive {
	out := tsdb.New()
	for _, name := range db.Names() {
		src, err := db.Get(name)
		if err != nil {
			continue
		}
		dst, err := out.Create(name, src.Epsilon(), src.Constant())
		if err != nil {
			continue
		}
		dst.Append(src.Segments()...)
		dst.SetPoints(src.Points())
	}
	return out
}

// verifyRecovery rebuilds a server from the data directory alone and
// checks the recovered archive matches the drained one segment for
// segment — the durability half of the self-check.
func verifyRecovery(w io.Writer, cfg server.Config, want *tsdb.Archive) error {
	s, err := server.New(nil, cfg)
	if err != nil {
		return fmt.Errorf("recovery: %w", err)
	}
	db := s.DB()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	defer s.Shutdown(ctx)
	names := want.Names()
	got := db.Names()
	if len(got) != len(names) {
		return fmt.Errorf("recovery: %d series, want %d", len(got), len(names))
	}
	var segs int
	for _, name := range names {
		ws, err := want.Get(name)
		if err != nil {
			return err
		}
		gs, err := db.Get(name)
		if err != nil {
			return fmt.Errorf("recovery: series %q missing: %w", name, err)
		}
		wsegs, gsegs := ws.Segments(), gs.Segments()
		if len(gsegs) != len(wsegs) {
			return fmt.Errorf("recovery: %s has %d segments, want %d", name, len(gsegs), len(wsegs))
		}
		for i := range wsegs {
			a, b := wsegs[i], gsegs[i]
			if a.T0 != b.T0 || a.T1 != b.T1 || a.Connected != b.Connected || a.Points != b.Points {
				return fmt.Errorf("recovery: %s segment %d differs: %+v vs %+v", name, i, a, b)
			}
			for d := range a.X0 {
				if a.X0[d] != b.X0[d] || a.X1[d] != b.X1[d] {
					return fmt.Errorf("recovery: %s segment %d values differ in dim %d", name, i, d)
				}
			}
		}
		segs += len(gsegs)
	}
	fmt.Fprintf(w, "restart from %s (%d shards) verified: %d series, %d segments identical ✓\n",
		cfg.DataDir, cfg.Shards, len(names), segs)
	return nil
}
