package main

import (
	"bytes"
	"strings"
	"testing"

	"github.com/pla-go/pla/internal/server"
)

// TestDemo runs the full loopback self-check at a reduced size: any
// precision violation or lost segment fails it.
func TestDemo(t *testing.T) {
	var out bytes.Buffer
	cfg := server.Config{Shards: 4, QueueDepth: 128}
	if err := runDemo(&out, cfg, 9, 400); err != nil {
		t.Fatalf("demo: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "all precision bands verified") {
		t.Errorf("demo output missing verification line:\n%s", out.String())
	}
}

// TestDemoDropPolicy smoke-tests the shed configuration end to end; with
// a sane queue depth nothing is actually shed, so the bands still hold.
func TestDemoDropPolicy(t *testing.T) {
	var out bytes.Buffer
	cfg := server.Config{Shards: 2, QueueDepth: 1024, Policy: server.DropNewest}
	if err := runDemo(&out, cfg, 4, 300); err != nil {
		t.Fatalf("demo: %v\noutput:\n%s", err, out.String())
	}
}
