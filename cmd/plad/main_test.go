package main

import (
	"bytes"
	"strings"
	"testing"

	"github.com/pla-go/pla/internal/server"
	"github.com/pla-go/pla/internal/wal"
)

// TestDemo runs the full loopback self-check at a reduced size: any
// precision violation or lost segment fails it.
func TestDemo(t *testing.T) {
	var out bytes.Buffer
	cfg := server.Config{Shards: 4, QueueDepth: 128}
	if err := runDemo(&out, cfg, "tcp", 9, 400, 25); err != nil {
		t.Fatalf("demo: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "all precision bands verified") {
		t.Errorf("demo output missing verification line:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "drained staleness-free") {
		t.Errorf("demo output missing lag-bounded verification line:\n%s", out.String())
	}
}

// TestDemoUDP runs the same self-check with the fleet streaming over
// the datagram transport: the precision bands and lag accounting must
// hold regardless of the ingest wire.
func TestDemoUDP(t *testing.T) {
	var out bytes.Buffer
	cfg := server.Config{Shards: 4, QueueDepth: 128}
	if err := runDemo(&out, cfg, "udp", 9, 400, 25); err != nil {
		t.Fatalf("udp demo: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "udp ingest") {
		t.Errorf("udp demo output missing transport banner:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "all precision bands verified") {
		t.Errorf("udp demo output missing verification line:\n%s", out.String())
	}
}

// TestDemoDropPolicy smoke-tests the shed configurations end to end;
// with a sane queue depth nothing is actually shed, so the bands still
// hold.
func TestDemoDropPolicy(t *testing.T) {
	for _, policy := range []server.DropPolicy{server.DropNewest, server.DropOldest} {
		var out bytes.Buffer
		cfg := server.Config{Shards: 2, QueueDepth: 1024, Policy: policy}
		if err := runDemo(&out, cfg, "tcp", 4, 300, 25); err != nil {
			t.Fatalf("demo (%s): %v\noutput:\n%s", policy, err, out.String())
		}
	}
}

// TestDemoDurable runs the demo with a data directory: ingest, drain to
// a snapshot, restart from disk, and verify segment-for-segment
// equality — the full recovery loop in one self-check.
func TestDemoDurable(t *testing.T) {
	var out bytes.Buffer
	cfg := server.Config{
		Shards:  4,
		DataDir: t.TempDir(),
		Sync:    wal.SyncAlways,
	}
	if err := runDemo(&out, cfg, "tcp", 6, 400, 25); err != nil {
		t.Fatalf("durable demo: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "restart from") {
		t.Errorf("durable demo output missing recovery verification:\n%s", out.String())
	}
}
