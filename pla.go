// Package pla is an online piece-wise linear approximation library for
// numerical streams with per-point precision guarantees, implementing
//
//	H. Elmeleegy, A. K. Elmagarmid, E. Cecchet, W. G. Aref, W. Zwaenepoel:
//	"Online Piece-wise Linear Approximation of Numerical Streams with
//	Precision Guarantees", VLDB 2009.
//
// A Filter consumes a stream of d-dimensional points (t_j, X_j) with
// strictly increasing timestamps and emits line segments such that every
// consumed point lies within ε_i of the emitted approximation in every
// dimension i (the L∞ guarantee of the paper's Theorems 3.1 and 4.1).
// Four filters are provided:
//
//   - NewSwingFilter — the paper's swing filter (Section 3): connected
//     segments, one recording each, O(1) time and space per point.
//   - NewSlideFilter — the paper's slide filter (Section 4): mostly
//     disconnected segments tracked via an incremental convex hull, the
//     strongest compressor of the four.
//   - NewCacheFilter — the piece-wise constant baseline (Section 2.2),
//     with optional midrange/mean variants.
//   - NewLinearFilter — the piece-wise linear baseline (Section 2.2),
//     connected or disconnected.
//
// Compress pushes a whole signal through a filter; Reconstruct builds the
// receiver-side model; Encode/Decode move recordings over a compact wire
// format. The pla command set (cmd/plagen, cmd/plafilter, cmd/plabench)
// and the examples directory exercise the same API.
//
// Quick start:
//
//	f, _ := pla.NewSlideFilter([]float64{0.5})        // ε = 0.5, 1-dim
//	segs, _ := pla.Compress(f, signal)                // []pla.Segment
//	model, _ := pla.Reconstruct(segs)                 // receiver side
//	x, ok := model.Eval(t)                            // x within ε of signal
//	fmt.Println(f.Stats().CompressionRatio())
package pla

import (
	"github.com/pla-go/pla/internal/core"
)

// Core types, re-exported from the implementation package.
type (
	// Point is one sample of a d-dimensional signal: a timestamp plus the
	// observed value vector.
	Point = core.Point
	// Segment is one line segment of a piece-wise linear approximation.
	Segment = core.Segment
	// Filter is an online compressor with an L∞ precision guarantee.
	Filter = core.Filter
	// Stats carries a filter's running counters (points, segments,
	// recordings, lag flushes, hull size).
	Stats = core.Stats

	// Cache is the piece-wise constant baseline filter.
	Cache = core.Cache
	// Linear is the piece-wise linear baseline filter.
	Linear = core.Linear
	// Swing is the paper's swing filter.
	Swing = core.Swing
	// Slide is the paper's slide filter.
	Slide = core.Slide

	// CacheMode selects the cache filter's constant-value rule.
	CacheMode = core.CacheMode
	// SwingRecording selects the swing filter's recording placement.
	SwingRecording = core.SwingRecording
	// CacheOption customises a cache filter.
	CacheOption = core.CacheOption
	// LinearOption customises a linear filter.
	LinearOption = core.LinearOption
	// SwingOption customises a swing filter.
	SwingOption = core.SwingOption
	// SlideOption customises a slide filter.
	SlideOption = core.SlideOption
)

// Swing recording placement modes.
const (
	// RecordMSE minimizes the interval's mean square error (the paper's
	// choice, Eq. 5–6; the default).
	RecordMSE = core.RecordMSE
	// RecordMidline takes the middle of the admissible slope range.
	RecordMidline = core.RecordMidline
	// RecordLast aims at the last observed point, clamped (the
	// "straightforward approach" of Section 3.2; ablation only).
	RecordLast = core.RecordLast
)

// Cache filter value-selection modes.
const (
	// CacheLast records the violating point and predicts it forward (the
	// paper's cache filter).
	CacheLast = core.CacheLast
	// CacheMidrange records the midrange of each interval (PMC-MR).
	CacheMidrange = core.CacheMidrange
	// CacheMean records the mean of each interval (PMC-MEAN).
	CacheMean = core.CacheMean
)

// Errors returned by filters and constructors.
var (
	// ErrDimension reports a point whose dimensionality does not match
	// the filter's.
	ErrDimension = core.ErrDimension
	// ErrTimeOrder reports a timestamp that does not strictly increase.
	ErrTimeOrder = core.ErrTimeOrder
	// ErrNotFinite reports a NaN or infinite coordinate.
	ErrNotFinite = core.ErrNotFinite
	// ErrFinished reports a Push or Finish after Finish.
	ErrFinished = core.ErrFinished
	// ErrEpsilon reports an invalid precision width.
	ErrEpsilon = core.ErrEpsilon
	// ErrMaxLag reports an invalid m_max_lag bound.
	ErrMaxLag = core.ErrMaxLag
)

// NewCacheFilter returns the piece-wise constant baseline filter with
// per-dimension precision widths eps (Section 2.2 of the paper).
func NewCacheFilter(eps []float64, opts ...CacheOption) (*Cache, error) {
	return core.NewCache(eps, opts...)
}

// WithCacheMode selects the cache filter's value rule (default CacheLast).
func WithCacheMode(m CacheMode) CacheOption { return core.WithCacheMode(m) }

// NewLinearFilter returns the piece-wise linear baseline filter with
// per-dimension precision widths eps (Section 2.2 of the paper).
func NewLinearFilter(eps []float64, opts ...LinearOption) (*Linear, error) {
	return core.NewLinear(eps, opts...)
}

// WithDisconnectedSegments makes the linear filter restart each segment
// at the violating point (two recordings per segment).
func WithDisconnectedSegments() LinearOption { return core.WithDisconnectedSegments() }

// NewSwingFilter returns the paper's swing filter with per-dimension
// precision widths eps (Section 3).
func NewSwingFilter(eps []float64, opts ...SwingOption) (*Swing, error) {
	return core.NewSwing(eps, opts...)
}

// WithSwingMaxLag bounds the receiver lag of a swing filter to m points
// per filtering interval (Section 3.3). m must be at least 2.
func WithSwingMaxLag(m int) SwingOption { return core.WithSwingMaxLag(m) }

// WithSwingRecording selects the swing filter's recording placement mode
// (default RecordMSE). All modes preserve the precision guarantee.
func WithSwingRecording(mode SwingRecording) SwingOption { return core.WithSwingRecording(mode) }

// NewSlideFilter returns the paper's slide filter with per-dimension
// precision widths eps (Section 4).
func NewSlideFilter(eps []float64, opts ...SlideOption) (*Slide, error) {
	return core.NewSlide(eps, opts...)
}

// WithSlideMaxLag bounds the receiver lag of a slide filter to m points
// per filtering interval (Section 4.3). m must be at least 2.
func WithSlideMaxLag(m int) SlideOption { return core.WithSlideMaxLag(m) }

// WithHullOptimization toggles the slide filter's convex-hull
// optimization (Lemma 4.3); it is enabled by default and should only be
// disabled for benchmarking the difference.
func WithHullOptimization(enabled bool) SlideOption { return core.WithHullOptimization(enabled) }

// WithConnectionGrid sets the density of the slide filter's connection
// search (default 17 candidates); zero disables connections entirely
// (all-disconnected segments, the Section 4.2 ablation).
func WithConnectionGrid(n int) SlideOption { return core.WithConnectionGrid(n) }

// WithBinaryTangentSearch switches the slide filter's hull-tangent
// updates to the logarithmic chain search; output is identical to the
// default linear scan.
func WithBinaryTangentSearch() SlideOption { return core.WithBinaryTangentSearch() }

// Compress pushes every point of signal through f in order, finishes the
// filter, and returns the complete approximation.
func Compress(f Filter, signal []Point) ([]Segment, error) {
	return core.Run(f, signal)
}

// UniformEpsilon builds a d-dimensional precision vector with every
// component set to eps.
func UniformEpsilon(d int, eps float64) []float64 {
	return core.UniformEpsilon(d, eps)
}

// CountRecordings computes the number of recordings needed to transmit
// segs under the paper's accounting; constant marks piece-wise constant
// (cache filter) output.
func CountRecordings(segs []Segment, constant bool) int {
	return core.CountRecordings(segs, constant)
}
