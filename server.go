package pla

import (
	"github.com/pla-go/pla/internal/server"
	"github.com/pla-go/pla/internal/wal"
)

// Network ingestion (the plad server) re-exported for external
// consumers: a Server collects many concurrent ε-filtered client
// streams into one Archive and answers queries with ±ε bands.
type (
	// Server is the plad ingestion/query server. Create with NewServer,
	// run with Serve/ListenAndServe, stop with Shutdown.
	Server = server.Server
	// ServerConfig parameterises a Server (shards, queue depth,
	// overload policy).
	ServerConfig = server.Config
	// ServerMetrics is a snapshot of a server's counters.
	ServerMetrics = server.Metrics
	// ShardMetrics is one ingest worker's counters.
	ShardMetrics = server.ShardMetrics
	// DropPolicy selects backpressure or shedding when a shard queue
	// is full.
	DropPolicy = server.DropPolicy
	// SyncPolicy selects when the write-ahead log reaches stable
	// storage (ServerConfig.Sync, with ServerConfig.DataDir).
	SyncPolicy = wal.SyncPolicy
	// IngestClient is the sensor side of an ingest session.
	IngestClient = server.Client
	// QueryClient speaks the line-oriented query protocol.
	QueryClient = server.QueryClient
	// Ack is the server's end-of-stream accounting for one session.
	Ack = server.Ack
	// Aggregate is a queried statistic with its precision band.
	Aggregate = server.Aggregate
	// SeriesInfo is one row of a series listing.
	SeriesInfo = server.SeriesInfo
	// FilterSpec names a filter configuration (kind, ε, max lag) for
	// by-name construction.
	FilterSpec = server.FilterSpec
	// LagInfo is a series' freshness accounting as reported by LAG.
	LagInfo = server.LagInfo
)

// Overload policies.
const (
	// Block applies backpressure to the client stream.
	Block = server.Block
	// DropNewest sheds the incoming segment and counts it.
	DropNewest = server.DropNewest
	// DropOldest sheds the oldest queued segment, keeping the newest.
	DropOldest = server.DropOldest
)

// WAL sync policies for durable servers (ServerConfig.DataDir).
const (
	// SyncInterval fsyncs on a background cadence (the default).
	SyncInterval = wal.SyncInterval
	// SyncAlways fsyncs before acknowledging a session's stream end.
	SyncAlways = wal.SyncAlways
	// SyncOff leaves syncing to the operating system.
	SyncOff = wal.SyncOff
)

// Errors surfaced by the server and its clients.
var (
	// ErrServerClosed reports an operation on a shut-down server.
	ErrServerClosed = server.ErrClosed
	// ErrNoData reports a query range with no coverage.
	ErrNoData = server.ErrNoData
	// ErrRejected wraps a server-side rejection (bad handshake,
	// contract mismatch, unknown series).
	ErrRejected = server.ErrRejected
)

// NewServer returns a running ingestion server storing into db. With
// cfg.DataDir set the server is durable: prior state is recovered into
// db (which must be empty) before serving, every segment is written
// ahead to a checksummed log, and Shutdown leaves a clean snapshot.
func NewServer(db *Archive, cfg ServerConfig) (*Server, error) { return server.New(db, cfg) }

// DialServer opens an ingest session for the named series, streaming
// through filter f; only finalized segments cross the wire — plus, for
// a filter carrying a max-lag bound (WithSwingMaxLag/WithSlideMaxLag),
// the provisional receiver updates that keep the server's archive from
// trailing the sensor by m or more points (§3.3/§4.3). Lag-bounded
// sessions may call Flush to heartbeat a quiet stream.
func DialServer(addr, name string, f Filter) (*IngestClient, error) {
	return server.Dial(addr, name, f)
}

// DialServerSpec is DialServer with the filter constructed by name from
// spec.
func DialServerSpec(addr, name string, spec FilterSpec) (*IngestClient, error) {
	return server.DialSpec(addr, name, spec)
}

// DialQuery opens a query session.
func DialQuery(addr string) (*QueryClient, error) { return server.DialQuery(addr) }
