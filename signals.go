package pla

import (
	"io"

	"github.com/pla-go/pla/internal/gen"
	"github.com/pla-go/pla/internal/stream"
)

// WalkConfig parameterises the paper's random-walk signal model
// (Section 5.3).
type WalkConfig = gen.WalkConfig

// MultiWalkConfig parameterises correlated multi-dimensional walks
// (Section 5.4).
type MultiWalkConfig = gen.MultiWalkConfig

// RandomWalk generates a one-dimensional random-walk signal: each step is
// drawn uniformly from [0, MaxDelta) and is negative with probability P.
func RandomWalk(cfg WalkConfig) []Point { return gen.RandomWalk(cfg) }

// MultiWalk generates a d-dimensional random walk whose per-step
// increments have the requested pairwise correlation.
func MultiWalk(cfg MultiWalkConfig) []Point { return gen.MultiWalk(cfg) }

// SeaSurfaceTemperature returns the deterministic synthetic stand-in for
// the paper's TAO-buoy sea-surface-temperature series (Figure 6): 1285
// points at 10-minute intervals, quantized to 0.01 °C.
func SeaSurfaceTemperature() []Point { return gen.SeaSurfaceTemperature() }

// SSTLike generates an n-point sea-surface-temperature-like series from
// the given seed.
func SSTLike(n int, seed uint64) []Point { return gen.SSTLike(n, seed) }

// SignalRange returns the minimum and maximum of dimension i of a signal;
// the paper expresses precision widths as a percentage of this range.
func SignalRange(pts []Point, i int) (lo, hi float64) { return gen.Range(pts, i) }

// WritePointsCSV writes points as CSV rows "t,x1,...,xd".
func WritePointsCSV(w io.Writer, pts []Point) error { return stream.WritePoints(w, pts) }

// ReadPointsCSV parses CSV rows "t,x1,...,xd".
func ReadPointsCSV(r io.Reader) ([]Point, error) { return stream.ReadPoints(r) }

// WriteSegmentsCSV writes segments as CSV rows.
func WriteSegmentsCSV(w io.Writer, segs []Segment) error { return stream.WriteSegments(w, segs) }

// ReadSegmentsCSV parses the output of WriteSegmentsCSV.
func ReadSegmentsCSV(r io.Reader) ([]Segment, error) { return stream.ReadSegments(r) }
