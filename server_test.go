package pla_test

// Exercises the network server through the public facade only — this
// package cannot import internal/, so it compiles exactly like an
// external consumer following the README.

import (
	"context"
	"errors"
	"math"
	"net"
	"testing"
	"time"

	pla "github.com/pla-go/pla"
)

func TestPublicServerRoundTrip(t *testing.T) {
	srv, err := pla.NewServer(pla.NewArchive(), pla.ServerConfig{Shards: 2, Policy: pla.Block})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)

	signal := pla.RandomWalk(pla.WalkConfig{N: 500, P: 0.5, MaxDelta: 0.4, Seed: 11})
	f, err := pla.NewSlideFilter([]float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	c, err := pla.DialServer(ln.Addr().String(), "public-walk", f)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range signal {
		if err := c.Send(p); err != nil {
			t.Fatal(err)
		}
	}
	ack, err := c.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ack.Applied == 0 || ack.Rejected != 0 || ack.Dropped != 0 {
		t.Fatalf("ack %+v", ack)
	}

	q, err := pla.DialQuery(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	for _, p := range signal {
		x, err := q.At("public-walk", p.T)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(x[0]-p.X[0]) > 0.5+1e-9 {
			t.Fatalf("|rec−x| = %v > ε at t=%v", math.Abs(x[0]-p.X[0]), p.T)
		}
	}
	if _, err := q.Mean("public-walk", 0, 1e8, 1e9); !errors.Is(err, pla.ErrNoData) {
		t.Fatalf("empty range: %v, want pla.ErrNoData", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// TestPublicServerDurability runs an ingest → shutdown → restart cycle
// through the facade: the restarted server must serve the same series
// from its data directory.
func TestPublicServerDurability(t *testing.T) {
	dir := t.TempDir()
	cfg := pla.ServerConfig{Shards: 2, DataDir: dir, Sync: pla.SyncAlways}
	srv, err := pla.NewServer(pla.NewArchive(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)

	signal := pla.RandomWalk(pla.WalkConfig{N: 400, P: 0.5, MaxDelta: 0.4, Seed: 7})
	f, err := pla.NewSwingFilter([]float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	c, err := pla.DialServer(ln.Addr().String(), "durable-walk", f)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range signal {
		if err := c.Send(p); err != nil {
			t.Fatal(err)
		}
	}
	ack, err := c.Close()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	db := pla.NewArchive()
	srv2, err := pla.NewServer(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv2.Shutdown(ctx)
	}()
	s, err := db.Get("durable-walk")
	if err != nil {
		t.Fatal(err)
	}
	if int64(s.Len()) != ack.Applied {
		t.Fatalf("recovered %d segments, acked %d", s.Len(), ack.Applied)
	}
	for _, p := range signal {
		x, ok := s.At(p.T)
		if !ok {
			t.Fatalf("t=%v uncovered after recovery", p.T)
		}
		if math.Abs(x[0]-p.X[0]) > 0.5+1e-9 {
			t.Fatalf("|rec−x| = %v > ε at t=%v after recovery", math.Abs(x[0]-p.X[0]), p.T)
		}
	}
}
