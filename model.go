package pla

import (
	"github.com/pla-go/pla/internal/core"
	"github.com/pla-go/pla/internal/recon"
	"github.com/pla-go/pla/internal/stream"
)

// Model is the receiver-side reconstruction of a filtered signal.
type Model = recon.Model

// ErrorStats summarises reconstruction error per dimension.
type ErrorStats = recon.ErrorStats

// LagReport describes receiver-update spacing for a filtered stream.
type LagReport = stream.LagReport

// Reconstruct builds the receiver-side model from a filter's segments.
func Reconstruct(segs []Segment) (*Model, error) {
	return recon.NewModel(segs)
}

// Measure compares the original signal against a reconstruction and
// returns per-dimension max/mean/RMS errors.
func Measure(signal []Point, m *Model) ErrorStats {
	return recon.Measure(signal, m)
}

// CheckPrecision verifies the paper's guarantee: every sample of signal
// lies within eps (plus a relative float slack) of the model in every
// dimension. It returns a descriptive error for the first violation.
func CheckPrecision(signal []Point, m *Model, eps []float64, slack float64) error {
	return recon.CheckPrecision(signal, m, eps, slack)
}

// MeasureLag runs signal through f and reports the spacing, in points,
// between consecutive receiver updates — the quantity the WithSwingMaxLag
// and WithSlideMaxLag options bound.
func MeasureLag(f Filter, signal []Point) (LagReport, error) {
	return stream.MeasureLag(f, signal)
}

// ensure the facade types stay assignable to the implementation's.
var _ core.Filter = (*core.Swing)(nil)
