# The verify target is the single source of truth for "does this tree
# pass": CI runs exactly `make verify`, so local runs and the gate
# cannot drift. It mirrors the tier-1 command (go build && go test)
# plus the formatting gate.

GO ?= go

# Coverage floors, set just under the baseline measured when the gate
# was added (PR 5, query/sketch floors added in PR 6) so coverage can
# only ratchet upward. Raise a floor when a PR meaningfully lifts a
# package; never lower one to make a build pass.
COVER_FLOORS = internal/core:95 internal/tsdb:83 internal/tsdb/mmapstore:85 internal/wal:70 \
	internal/sketch:90 internal/query:92

.PHONY: verify fmt-check build test race bench-smoke agg-smoke cover-check alloc-check oracle-sweep docs-check

verify: fmt-check
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench-smoke:
	$(GO) run ./cmd/plabench -server-bench -server-clients 4,16 -server-points 4000,1000 \
		-server-rounds 2 -server-sync mem,always -server-store mem,mmap \
		-server-transport tcp,udp \
		-server-lag 0,10,100 -server-lag-eps 0.5 \
		-o bench-smoke.json
	$(GO) run ./cmd/plabench -extent-bench -extent-segments 4000 -server-rounds 2 \
		-o extent-smoke.json
	$(GO) run ./cmd/plabench -pressure-bench -pressure-clients 4 -pressure-points 8000 \
		-pressure-queue 2 -o pressure-smoke.json

# A shrunken archive keeps this on the merge path; the run still
# cross-checks the pushdown answer against the SCAN-and-fold reference,
# so a wrong aggregate fails the build, not just a slow one.
agg-smoke:
	$(GO) run ./cmd/plabench -server-agg -server-agg-segments 20000 -server-rounds 2 \
		-o agg-smoke.json

# Zero-allocation ratchet for the ingest and query hot loops: every
# *ZeroAlloc benchmark (frame/record encode, shard apply, datagram
# header, v2 extent decode, sender-side decimation) must report exactly
# 0 allocs/op, or the build fails. A new allocation on these paths is a
# perf regression even when every test still passes.
alloc-check:
	@out=$$($(GO) test -run NONE -bench ZeroAlloc -benchmem -benchtime 10000x \
		./internal/core/ ./internal/encode/ ./internal/server/ ./internal/udpingest/ ./internal/tsdb/mmapstore/); \
	echo "$$out" | grep -E "^Benchmark" || { echo "alloc-check: no ZeroAlloc benchmarks ran"; exit 1; }; \
	echo "$$out" | awk '/allocs\/op/ { a=""; for (i=1;i<=NF;i++) if ($$i=="allocs/op") a=$$(i-1); \
		if (a+0 > 0) { print "alloc-check: " $$1 " allocates (" a " allocs/op)"; fail=1 } } \
		END { exit fail }'

cover-check:
	@fail=0; \
	for spec in $(COVER_FLOORS); do \
		pkg=$${spec%%:*}; min=$${spec##*:}; \
		pct=$$($(GO) test -count=1 -coverprofile=/dev/null -cover ./$$pkg | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p'); \
		if [ -z "$$pct" ]; then echo "cover-check: no coverage reported for $$pkg"; fail=1; continue; fi; \
		if awk -v p=$$pct -v m=$$min 'BEGIN{exit !(p>=m)}'; then \
			echo "cover-check: $$pkg $$pct% (floor $$min%)"; \
		else \
			echo "cover-check: $$pkg $$pct% UNDER floor $$min%"; fail=1; \
		fi; \
	done; exit $$fail

oracle-sweep:
	PLA_ORACLE_TRIALS=800 $(GO) test -run TestOracle -count=1 ./internal/core

# Docs drift gate: every plad flag and every /metrics series name must
# be mentioned somewhere under docs/. The lists come from the binary
# itself (-list-flags / -list-metrics), so adding a flag or metric
# without documenting it fails the build — the docs cannot silently rot.
docs-check:
	@fail=0; \
	for f in $$($(GO) run ./cmd/plad -list-flags); do \
		grep -qr -- "-$$f" docs/ || { echo "docs-check: flag -$$f not documented in docs/"; fail=1; }; \
	done; \
	for m in $$($(GO) run ./cmd/plad -list-metrics); do \
		grep -qr "$$m" docs/ || { echo "docs-check: metric $$m not documented in docs/"; fail=1; }; \
	done; \
	[ $$fail -eq 0 ] && echo "docs-check: all flags and metrics documented"; exit $$fail
