# The verify target is the single source of truth for "does this tree
# pass": CI runs exactly `make verify`, so local runs and the gate
# cannot drift. It mirrors the tier-1 command (go build && go test)
# plus the formatting gate.

GO ?= go

.PHONY: verify fmt-check build test race bench-smoke

verify: fmt-check
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test ./...

fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench-smoke:
	$(GO) run ./cmd/plabench -server-bench -server-clients 4,16 -server-points 4000,1000 \
		-server-rounds 2 -server-sync mem,always -server-lag 0,10,100 -server-lag-eps 0.5 \
		-o bench-smoke.json
