package recon

import (
	"fmt"
	"math"

	"github.com/pla-go/pla/internal/core"
)

// ErrorStats summarises the reconstruction error of a model against the
// original signal, per dimension, following the paper's Section 5.1: the
// average error is the sum of per-sample errors divided by the number of
// samples.
type ErrorStats struct {
	// N is the number of samples compared.
	N int
	// Uncovered counts samples whose timestamp no segment covers
	// (always 0 for well-formed filter output).
	Uncovered int
	// MaxAbs, MeanAbs and RMS are per-dimension error aggregates over the
	// covered samples.
	MaxAbs  []float64
	MeanAbs []float64
	RMS     []float64
}

// Measure compares signal against the model and returns the error
// statistics.
func Measure(signal []core.Point, m *Model) ErrorStats {
	d := m.Dim()
	st := ErrorStats{
		MaxAbs:  make([]float64, d),
		MeanAbs: make([]float64, d),
		RMS:     make([]float64, d),
	}
	buf := make([]float64, d)
	covered := 0
	for _, p := range signal {
		st.N++
		if !m.EvalInto(p.T, buf) {
			st.Uncovered++
			continue
		}
		covered++
		for i := 0; i < d; i++ {
			e := math.Abs(p.X[i] - buf[i])
			if e > st.MaxAbs[i] {
				st.MaxAbs[i] = e
			}
			st.MeanAbs[i] += e
			st.RMS[i] += e * e
		}
	}
	if covered > 0 {
		for i := 0; i < d; i++ {
			st.MeanAbs[i] /= float64(covered)
			st.RMS[i] = math.Sqrt(st.RMS[i] / float64(covered))
		}
	}
	return st
}

// CheckPrecision mechanises Theorems 3.1 and 4.1: it verifies that every
// sample of signal lies within eps (plus a relative slack for float
// rounding) of the model, in every dimension, and that every sample time
// is covered. It returns a descriptive error for the first violation.
func CheckPrecision(signal []core.Point, m *Model, eps []float64, slack float64) error {
	d := m.Dim()
	if len(eps) != d {
		return fmt.Errorf("recon: eps has %d dims, model has %d", len(eps), d)
	}
	buf := make([]float64, d)
	for j, p := range signal {
		if !m.EvalInto(p.T, buf) {
			return fmt.Errorf("recon: sample %d (t=%v) not covered by any segment", j, p.T)
		}
		for i := 0; i < d; i++ {
			e := math.Abs(p.X[i] - buf[i])
			tol := eps[i] + slack*(1+math.Abs(p.X[i])+eps[i])
			if e > tol {
				return fmt.Errorf("recon: sample %d (t=%v) dim %d: |%v-%v| = %v exceeds ε=%v",
					j, p.T, i, p.X[i], buf[i], e, eps[i])
			}
		}
	}
	return nil
}
