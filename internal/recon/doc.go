// Package recon reconstructs a signal from the piece-wise linear (or
// constant) segments produced by the filters in internal/core, and
// measures how far the reconstruction strays from the original points.
// It is the receiver side of the paper's transmitter/receiver model and
// the measurement substrate behind the evaluation in Section 5: average
// error (Figure 8) and the precision-guarantee checks that mechanise
// Theorems 3.1 and 4.1.
package recon
