package recon

import (
	"errors"
	"math"
	"testing"

	"github.com/pla-go/pla/internal/core"
)

func seg(t0, t1 float64, x0, x1 float64, conn bool) core.Segment {
	return core.Segment{
		T0: t0, T1: t1,
		X0: []float64{x0}, X1: []float64{x1},
		Connected: conn,
	}
}

func TestNewModelValidation(t *testing.T) {
	if _, err := NewModel(nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("empty: %v", err)
	}
	if _, err := NewModel([]core.Segment{seg(1, 0, 0, 0, false)}); !errors.Is(err, ErrOrder) {
		t.Fatalf("backwards segment: %v", err)
	}
	if _, err := NewModel([]core.Segment{seg(5, 6, 0, 0, false), seg(0, 1, 0, 0, false)}); !errors.Is(err, ErrOrder) {
		t.Fatalf("out of order: %v", err)
	}
	bad := []core.Segment{
		seg(0, 1, 0, 0, false),
		{T0: 2, T1: 3, X0: []float64{0, 0}, X1: []float64{0, 0}},
	}
	if _, err := NewModel(bad); !errors.Is(err, ErrDim) {
		t.Fatalf("dim mismatch: %v", err)
	}
}

func TestModelEval(t *testing.T) {
	m, err := NewModel([]core.Segment{
		seg(0, 10, 0, 10, false), // slope 1
		seg(10, 20, 10, 0, true), // slope -1, connected
		seg(25, 30, 5, 5, false), // after a gap
	})
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		t    float64
		want float64
		ok   bool
	}{
		{0, 0, true},
		{5, 5, true},
		{10, 10, true}, // knot: both segments agree
		{15, 5, true},
		{20, 0, true},
		{22, 0, false}, // inside the gap
		{27, 5, true},
		{-1, 0, false},
		{31, 0, false},
	}
	for _, c := range cases {
		got, ok := m.Eval(c.t)
		if ok != c.ok {
			t.Fatalf("Eval(%v) covered=%v, want %v", c.t, ok, c.ok)
		}
		if ok && math.Abs(got[0]-c.want) > 1e-12 {
			t.Fatalf("Eval(%v) = %v, want %v", c.t, got[0], c.want)
		}
	}
}

func TestModelSpanDim(t *testing.T) {
	m, _ := NewModel([]core.Segment{seg(2, 6, 0, 1, false), seg(7, 9, 1, 1, false)})
	t0, t1 := m.Span()
	if t0 != 2 || t1 != 9 {
		t.Fatalf("span = [%v, %v], want [2, 9]", t0, t1)
	}
	if m.Dim() != 1 {
		t.Fatalf("dim = %d", m.Dim())
	}
	if len(m.Segments()) != 2 {
		t.Fatalf("segments = %d", len(m.Segments()))
	}
}

func TestModelDegenerateSegment(t *testing.T) {
	m, _ := NewModel([]core.Segment{seg(0, 4, 0, 4, false), seg(4, 4, 4, 4, false)})
	got, ok := m.Eval(4)
	if !ok || got[0] != 4 {
		t.Fatalf("Eval(4) = %v, %v", got, ok)
	}
}

func TestModelRecordings(t *testing.T) {
	m, _ := NewModel([]core.Segment{
		seg(0, 1, 0, 0, false),
		seg(1, 2, 0, 1, true),
	})
	if got := m.Recordings(false); got != 3 {
		t.Fatalf("linear recordings = %d, want 3", got)
	}
	if got := m.Recordings(true); got != 2 {
		t.Fatalf("constant recordings = %d, want 2", got)
	}
}

func TestMeasure(t *testing.T) {
	m, _ := NewModel([]core.Segment{seg(0, 10, 0, 10, false)})
	signal := []core.Point{
		{T: 0, X: []float64{0.5}},  // err 0.5
		{T: 5, X: []float64{4.5}},  // err 0.5
		{T: 10, X: []float64{10}},  // err 0
		{T: 50, X: []float64{999}}, // uncovered
	}
	st := Measure(signal, m)
	if st.N != 4 || st.Uncovered != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if math.Abs(st.MaxAbs[0]-0.5) > 1e-12 {
		t.Fatalf("MaxAbs = %v", st.MaxAbs[0])
	}
	if math.Abs(st.MeanAbs[0]-1.0/3) > 1e-12 {
		t.Fatalf("MeanAbs = %v", st.MeanAbs[0])
	}
	wantRMS := math.Sqrt((0.25 + 0.25 + 0) / 3)
	if math.Abs(st.RMS[0]-wantRMS) > 1e-12 {
		t.Fatalf("RMS = %v, want %v", st.RMS[0], wantRMS)
	}
}

func TestMeasureEmptySignal(t *testing.T) {
	m, _ := NewModel([]core.Segment{seg(0, 1, 0, 0, false)})
	st := Measure(nil, m)
	if st.N != 0 || st.MeanAbs[0] != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCheckPrecision(t *testing.T) {
	m, _ := NewModel([]core.Segment{seg(0, 10, 0, 10, false)})
	good := []core.Point{{T: 2, X: []float64{2.4}}, {T: 8, X: []float64{7.6}}}
	if err := CheckPrecision(good, m, []float64{0.5}, 0); err != nil {
		t.Fatalf("good signal rejected: %v", err)
	}
	bad := []core.Point{{T: 2, X: []float64{3}}}
	if err := CheckPrecision(bad, m, []float64{0.5}, 0); err == nil {
		t.Fatal("violation not detected")
	}
	uncovered := []core.Point{{T: 99, X: []float64{0}}}
	if err := CheckPrecision(uncovered, m, []float64{0.5}, 0); err == nil {
		t.Fatal("uncovered sample not detected")
	}
	if err := CheckPrecision(good, m, []float64{0.5, 0.5}, 0); err == nil {
		t.Fatal("eps dimension mismatch not detected")
	}
}

func TestCheckPrecisionSlack(t *testing.T) {
	m, _ := NewModel([]core.Segment{seg(0, 10, 0, 0, false)})
	// 1e-9 over the bound: rejected without slack, accepted with it.
	signal := []core.Point{{T: 5, X: []float64{0.5 + 1e-9}}}
	if err := CheckPrecision(signal, m, []float64{0.5}, 0); err == nil {
		t.Fatal("exact check should reject")
	}
	if err := CheckPrecision(signal, m, []float64{0.5}, 1e-6); err != nil {
		t.Fatalf("slack check should accept: %v", err)
	}
}
