package recon

import (
	"errors"
	"fmt"
	"sort"

	"github.com/pla-go/pla/internal/core"
)

// Errors returned by model construction and evaluation.
var (
	// ErrEmpty reports a model built from no segments.
	ErrEmpty = errors.New("recon: no segments")
	// ErrOrder reports segments whose start times do not increase.
	ErrOrder = errors.New("recon: segments out of time order")
	// ErrDim reports segments of inconsistent dimensionality.
	ErrDim = errors.New("recon: segments with inconsistent dimensionality")
)

// Model is a reconstructed piece-wise linear signal: the receiver-side
// view of a filter's output. A time t is covered when some segment's
// [T0, T1] span contains it; by construction of the filters, every
// original data point's timestamp is covered.
type Model struct {
	segs []core.Segment
	dim  int
}

// NewModel validates segs (non-decreasing start times, consistent
// dimensionality) and wraps them in a Model. The slice is retained, not
// copied.
func NewModel(segs []core.Segment) (*Model, error) {
	if len(segs) == 0 {
		return nil, ErrEmpty
	}
	dim := segs[0].Dim()
	for i, s := range segs {
		if s.Dim() != dim || len(s.X1) != dim {
			return nil, fmt.Errorf("%w: segment %d has dim %d, want %d", ErrDim, i, s.Dim(), dim)
		}
		if s.T1 < s.T0 {
			return nil, fmt.Errorf("%w: segment %d ends before it starts", ErrOrder, i)
		}
		if i > 0 && s.T0 < segs[i-1].T0 {
			return nil, fmt.Errorf("%w: segment %d starts at %v before segment %d at %v",
				ErrOrder, i, s.T0, i-1, segs[i-1].T0)
		}
	}
	return &Model{segs: segs, dim: dim}, nil
}

// Dim returns the model's dimensionality.
func (m *Model) Dim() int { return m.dim }

// Segments returns the underlying segments (not a copy).
func (m *Model) Segments() []core.Segment { return m.segs }

// Span returns the first covered and last covered times.
func (m *Model) Span() (t0, t1 float64) {
	t0 = m.segs[0].T0
	t1 = m.segs[0].T1
	for _, s := range m.segs {
		if s.T1 > t1 {
			t1 = s.T1
		}
	}
	return t0, t1
}

// locate returns the index of a segment covering t, or -1. Filter output
// has non-overlapping spans (touching only at connection knots), so the
// rightmost segment starting at or before t is the only candidate, plus
// its predecessor to absorb ties between a degenerate segment and its
// neighbour.
func (m *Model) locate(t float64) int {
	i := sort.Search(len(m.segs), func(j int) bool { return m.segs[j].T0 > t }) - 1
	if i < 0 {
		return -1
	}
	if t <= m.segs[i].T1 {
		return i
	}
	if i > 0 && t >= m.segs[i-1].T0 && t <= m.segs[i-1].T1 {
		return i - 1
	}
	return -1
}

// EvalInto evaluates the model at time t into dst (which must have
// length Dim) and reports whether t is covered.
func (m *Model) EvalInto(t float64, dst []float64) bool {
	i := m.locate(t)
	if i < 0 {
		return false
	}
	s := m.segs[i]
	for d := 0; d < m.dim; d++ {
		dst[d] = s.At(d, t)
	}
	return true
}

// Eval evaluates the model at time t, reporting whether t is covered.
func (m *Model) Eval(t float64) ([]float64, bool) {
	v := make([]float64, m.dim)
	if !m.EvalInto(t, v) {
		return nil, false
	}
	return v, true
}

// Recordings returns the number of recordings needed to transmit the
// model, per the paper's accounting. constant marks piece-wise constant
// models (cache filter output).
func (m *Model) Recordings(constant bool) int {
	return core.CountRecordings(m.segs, constant)
}
