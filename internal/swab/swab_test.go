package swab

import (
	"errors"
	"math"
	"testing"

	"github.com/pla-go/pla/internal/core"
	"github.com/pla-go/pla/internal/gen"
)

func line(n int, a, b float64) []core.Point {
	pts := make([]core.Point, n)
	for j := range pts {
		t := float64(j)
		pts[j] = core.Point{T: t, X: []float64{a*t + b}}
	}
	return pts
}

func TestPrefixFitExactLine(t *testing.T) {
	pts := line(20, 2, -3)
	p := newPrefix(pts)
	a, b, rss := p.fit(0, 0, len(pts))
	if math.Abs(a-2) > 1e-9 || math.Abs(b+3) > 1e-9 {
		t.Fatalf("fit = (%v, %v), want (2, -3)", a, b)
	}
	if rss > 1e-9 {
		t.Fatalf("rss = %v on an exact line", rss)
	}
}

func TestPrefixFitMatchesBruteForce(t *testing.T) {
	pts := gen.RandomWalk(gen.WalkConfig{N: 60, P: 0.5, MaxDelta: 3, Seed: 5})
	p := newPrefix(pts)
	for _, rng := range [][2]int{{0, 60}, {3, 10}, {20, 23}, {59, 60}} {
		lo, hi := rng[0], rng[1]
		a, b, rss := p.fit(0, lo, hi)
		var want float64
		for j := lo; j < hi; j++ {
			d := pts[j].X[0] - (a*pts[j].T + b)
			want += d * d
		}
		if math.Abs(rss-want) > 1e-6*(1+want) {
			t.Fatalf("range [%d,%d): rss %v != brute %v", lo, hi, rss, want)
		}
	}
}

func TestBottomUpExactLineMergesToOne(t *testing.T) {
	segs := BottomUp(line(64, 0.5, 1), 1e-9)
	if len(segs) != 1 {
		t.Fatalf("exact line split into %d segments", len(segs))
	}
	if segs[0].Points != 64 {
		t.Fatalf("segment covers %d points", segs[0].Points)
	}
}

func TestBottomUpVSignal(t *testing.T) {
	var pts []core.Point
	for j := 0; j < 40; j++ {
		t := float64(j)
		pts = append(pts, core.Point{T: t, X: []float64{math.Abs(t - 20)}})
	}
	segs := BottomUp(pts, 0.5)
	if len(segs) != 2 {
		t.Fatalf("V signal: %d segments, want 2", len(segs))
	}
	// The knee should be near t=20.
	if segs[0].T1 < 18 || segs[1].T0 > 22 {
		t.Fatalf("knee misplaced: %v | %v", segs[0].T1, segs[1].T0)
	}
}

func TestBottomUpRespectsThreshold(t *testing.T) {
	pts := gen.RandomWalk(gen.WalkConfig{N: 200, P: 0.5, MaxDelta: 2, Seed: 8})
	const maxErr = 4.0
	segs := BottomUp(pts, maxErr)
	p := newPrefix(pts)
	lo := 0
	for _, s := range segs {
		hi := lo + s.Points
		if c := p.cost(lo, hi); c > maxErr+1e-9 {
			t.Fatalf("segment [%d,%d) has cost %v > %v", lo, hi, c, maxErr)
		}
		lo = hi
	}
	if lo != len(pts) {
		t.Fatalf("segments cover %d of %d points", lo, len(pts))
	}
}

func TestBottomUpCoverageAndOrder(t *testing.T) {
	pts := gen.SSTLike(300, 7)
	segs := BottomUp(pts, 0.02)
	if len(segs) == 0 {
		t.Fatal("no segments")
	}
	total := 0
	for k, s := range segs {
		total += s.Points
		if k > 0 && s.T0 <= segs[k-1].T0 {
			t.Fatal("segments out of order")
		}
	}
	if total != len(pts) {
		t.Fatalf("covered %d of %d points", total, len(pts))
	}
}

func TestBottomUpEmptyAndTiny(t *testing.T) {
	if segs := BottomUp(nil, 1); segs != nil {
		t.Fatal("empty input")
	}
	one := BottomUp(line(1, 0, 5), 1)
	if len(one) != 1 || one[0].Points != 1 {
		t.Fatalf("single point: %+v", one)
	}
	two := BottomUp(line(2, 1, 0), 1)
	if len(two) != 1 || two[0].Points != 2 {
		t.Fatalf("two points: %+v", two)
	}
}

func TestNewValidation(t *testing.T) {
	mk := func() (core.Filter, error) { return core.NewSwing([]float64{1}) }
	if _, err := New(Config{MaxError: 1}); !errors.Is(err, ErrConfig) {
		t.Fatalf("missing NewFilter: %v", err)
	}
	if _, err := New(Config{MaxError: -1, NewFilter: mk}); !errors.Is(err, ErrConfig) {
		t.Fatalf("negative MaxError: %v", err)
	}
	if _, err := New(Config{MaxError: 1, BufferSegments: 1, NewFilter: mk}); !errors.Is(err, ErrConfig) {
		t.Fatalf("tiny buffer: %v", err)
	}
	s, err := New(Config{MaxError: 1, NewFilter: mk})
	if err != nil || s == nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

// TestSWABOnline runs the online segmenter over a piecewise-linear signal
// with noise and checks coverage, ordering, and that results arrive
// online (before Finish).
func TestSWABOnline(t *testing.T) {
	rng := gen.NewRNG(3)
	var pts []core.Point
	v, slope := 0.0, 0.4
	for j := 0; j < 600; j++ {
		if j%120 == 0 {
			slope = -slope + 0.1*rng.NormFloat64()
		}
		v += slope
		pts = append(pts, core.Point{T: float64(j), X: []float64{v + 0.05*rng.NormFloat64()}})
	}
	s, err := New(Config{
		MaxError:  0.08,
		NewFilter: func() (core.Filter, error) { return core.NewSlide([]float64{0.4}) },
	})
	if err != nil {
		t.Fatal(err)
	}
	var online, all []core.Segment
	for _, p := range pts {
		out, err := s.Push(p)
		if err != nil {
			t.Fatal(err)
		}
		online = append(online, out...)
	}
	all = append(all, online...)
	tail, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	all = append(all, tail...)

	if len(online) == 0 {
		t.Fatal("SWAB emitted nothing before Finish; not online")
	}
	total := 0
	for k, seg := range all {
		total += seg.Points
		if k > 0 && seg.T0 <= all[k-1].T0 {
			t.Fatal("segments out of order")
		}
	}
	if total != len(pts) {
		t.Fatalf("covered %d of %d points", total, len(pts))
	}
	if _, err := s.Push(pts[0]); !errors.Is(err, ErrFinished) {
		t.Fatalf("push after finish: %v", err)
	}
	if _, err := s.Finish(); !errors.Is(err, ErrFinished) {
		t.Fatalf("double finish: %v", err)
	}
}

// TestSWABInnerFilterChoices runs SWAB with each read-ahead filter the
// paper suggests and compares segment counts loosely.
func TestSWABInnerFilterChoices(t *testing.T) {
	pts := gen.SSTLike(500, 11)
	for _, mk := range []struct {
		name string
		f    func() (core.Filter, error)
	}{
		{"linear", func() (core.Filter, error) { return core.NewLinear([]float64{0.05}) }},
		{"swing", func() (core.Filter, error) { return core.NewSwing([]float64{0.05}) }},
		{"slide", func() (core.Filter, error) { return core.NewSlide([]float64{0.05}) }},
	} {
		s, err := New(Config{MaxError: 0.05, NewFilter: mk.f})
		if err != nil {
			t.Fatal(err)
		}
		var all []core.Segment
		for _, p := range pts {
			out, err := s.Push(p)
			if err != nil {
				t.Fatalf("%s: %v", mk.name, err)
			}
			all = append(all, out...)
		}
		tail, err := s.Finish()
		if err != nil {
			t.Fatalf("%s: %v", mk.name, err)
		}
		all = append(all, tail...)
		total := 0
		for _, seg := range all {
			total += seg.Points
		}
		if total != len(pts) {
			t.Fatalf("%s: covered %d of %d points", mk.name, total, len(pts))
		}
	}
}

func TestMultiDimBottomUp(t *testing.T) {
	pts := gen.MultiWalk(gen.MultiWalkConfig{
		WalkConfig: gen.WalkConfig{N: 120, P: 0.5, MaxDelta: 1, Seed: 13},
		Dims:       3,
	})
	segs := BottomUp(pts, 6)
	total := 0
	for _, s := range segs {
		if s.Dim() != 3 {
			t.Fatal("dim lost")
		}
		total += s.Points
	}
	if total != len(pts) {
		t.Fatalf("covered %d of %d", total, len(pts))
	}
}
