// Package swab implements the SWAB (Sliding Window And Bottom-up) time
// series segmentation of Keogh, Chu, Hart and Pazzani ("An Online
// Algorithm for Segmenting Time Series", ICDM 2001), which the paper's
// related-work section points at: the swing and slide filters can replace
// the linear filter SWAB uses to read ahead, making this package the
// bridge between the two algorithm families.
//
// Unlike the filters in internal/core, SWAB minimises the residual sum of
// squares (RSS) of least-squares fits under a merge threshold; it offers
// no per-point L∞ guarantee. Use it when segment quality matters more
// than guaranteed per-sample precision.
package swab

import (
	"errors"
	"fmt"
	"math"

	"github.com/pla-go/pla/internal/core"
)

// Errors returned by the segmenters.
var (
	// ErrConfig reports an invalid configuration.
	ErrConfig = errors.New("swab: invalid configuration")
	// ErrFinished reports a Push after Finish.
	ErrFinished = errors.New("swab: segmenter already finished")
)

// prefix holds prefix sums enabling O(1) least-squares fits over any
// index range of a point slice.
type prefix struct {
	t, t2 []float64
	x, xt []float64 // dim-major: x[d*len+i]
	x2    []float64
	n     int
	dim   int
}

func newPrefix(pts []core.Point) *prefix {
	n := len(pts)
	if n == 0 {
		return &prefix{}
	}
	d := len(pts[0].X)
	p := &prefix{
		t: make([]float64, n+1), t2: make([]float64, n+1),
		x: make([]float64, d*(n+1)), xt: make([]float64, d*(n+1)), x2: make([]float64, d*(n+1)),
		n: n, dim: d,
	}
	for j, pt := range pts {
		p.t[j+1] = p.t[j] + pt.T
		p.t2[j+1] = p.t2[j] + pt.T*pt.T
		for i := 0; i < d; i++ {
			p.x[i*(n+1)+j+1] = p.x[i*(n+1)+j] + pt.X[i]
			p.xt[i*(n+1)+j+1] = p.xt[i*(n+1)+j] + pt.X[i]*pt.T
			p.x2[i*(n+1)+j+1] = p.x2[i*(n+1)+j] + pt.X[i]*pt.X[i]
		}
	}
	return p
}

// fit returns the least-squares line (slope, intercept) for dimension i
// over points [lo, hi) and the fit's residual sum of squares.
func (p *prefix) fit(i, lo, hi int) (a, b, rss float64) {
	m := float64(hi - lo)
	st := p.t[hi] - p.t[lo]
	st2 := p.t2[hi] - p.t2[lo]
	base := i * (p.n + 1)
	sx := p.x[base+hi] - p.x[base+lo]
	sxt := p.xt[base+hi] - p.xt[base+lo]
	sx2 := p.x2[base+hi] - p.x2[base+lo]

	den := m*st2 - st*st
	if den == 0 {
		// All timestamps equal (impossible for valid input) or a single
		// point: horizontal line through the mean.
		a = 0
		b = sx / m
	} else {
		a = (m*sxt - st*sx) / den
		b = (sx - a*st) / m
	}
	rss = sx2 - 2*a*sxt - 2*b*sx + a*a*st2 + 2*a*b*st + m*b*b
	if rss < 0 {
		rss = 0 // guard tiny negative float residue
	}
	return a, b, rss
}

// cost is the summed per-dimension RSS of fitting one line over [lo, hi).
func (p *prefix) cost(lo, hi int) float64 {
	total := 0.0
	for i := 0; i < p.dim; i++ {
		_, _, rss := p.fit(i, lo, hi)
		total += rss
	}
	return total
}

// segment materialises the least-squares segment over [lo, hi).
func (p *prefix) segment(pts []core.Point, lo, hi int) core.Segment {
	d := p.dim
	x0 := make([]float64, d)
	x1 := make([]float64, d)
	t0, t1 := pts[lo].T, pts[hi-1].T
	for i := 0; i < d; i++ {
		a, b, _ := p.fit(i, lo, hi)
		x0[i] = a*t0 + b
		x1[i] = a*t1 + b
	}
	return core.Segment{T0: t0, T1: t1, X0: x0, X1: x1, Points: hi - lo}
}

// BottomUp segments pts offline: it starts from the finest two-point
// segments and greedily merges the cheapest adjacent pair while the
// merged segment's summed RSS stays at or below maxError. The returned
// segments are the least-squares fits of the final partition.
//
// Complexity is O(n²) in the worst case (linear min-scan per merge); the
// intended use is moderate offline inputs and SWAB's small buffer.
func BottomUp(pts []core.Point, maxError float64) []core.Segment {
	if len(pts) == 0 {
		return nil
	}
	p := newPrefix(pts)
	bounds := initialBounds(len(pts))
	bounds = mergeAll(p, bounds, maxError)
	segs := make([]core.Segment, len(bounds)-1)
	for k := 0; k+1 < len(bounds); k++ {
		segs[k] = p.segment(pts, bounds[k], bounds[k+1])
	}
	return segs
}

// initialBounds builds the finest partition: segments of two points
// (the last may hold three when n is odd), expressed as cut indices.
func initialBounds(n int) []int {
	bounds := []int{0}
	for j := 2; j < n; j += 2 {
		bounds = append(bounds, j)
	}
	bounds = append(bounds, n)
	return bounds
}

// mergeAll greedily merges adjacent ranges while the cheapest merge cost
// is within maxError.
func mergeAll(p *prefix, bounds []int, maxError float64) []int {
	if len(bounds) < 3 {
		return bounds
	}
	costs := make([]float64, len(bounds)-2) // costs[k] = cost of dropping bounds[k+1]
	for k := range costs {
		costs[k] = p.cost(bounds[k], bounds[k+2])
	}
	for len(costs) > 0 {
		best, bestCost := -1, math.Inf(1)
		for k, c := range costs {
			if c < bestCost {
				best, bestCost = k, c
			}
		}
		if bestCost > maxError {
			break
		}
		// Drop the cut bounds[best+1].
		bounds = append(bounds[:best+1], bounds[best+2:]...)
		costs = append(costs[:best], costs[best+1:]...)
		if best-1 >= 0 {
			costs[best-1] = p.cost(bounds[best-1], bounds[best+1])
		}
		if best < len(costs) {
			costs[best] = p.cost(bounds[best], bounds[best+2])
		}
	}
	return bounds
}

// Config parameterises an online SWAB segmenter.
type Config struct {
	// MaxError is the bottom-up merge threshold: the summed RSS a merged
	// segment may reach.
	MaxError float64
	// BufferSegments is how many bottom-up segments the sliding buffer
	// should hold before the leftmost is emitted (Keogh recommends 5–6;
	// the default is 6).
	BufferSegments int
	// NewFilter constructs the read-ahead filter that decides how many
	// points enter the buffer at a time. Any of the paper's filters
	// works; swing and slide give semantically better chunk boundaries
	// than the linear filter SWAB originally used. Required.
	NewFilter func() (core.Filter, error)
}

// Segmenter is the online SWAB algorithm: a sliding buffer segmented
// bottom-up, fed by an online filter, emitting the leftmost segment
// whenever the buffer holds enough of them.
type Segmenter struct {
	cfg      Config
	inner    core.Filter
	buffer   []core.Point
	pending  []core.Point
	finished bool
}

// New returns an online SWAB segmenter.
func New(cfg Config) (*Segmenter, error) {
	if cfg.NewFilter == nil {
		return nil, fmt.Errorf("%w: NewFilter is required", ErrConfig)
	}
	if cfg.MaxError < 0 || math.IsNaN(cfg.MaxError) || math.IsInf(cfg.MaxError, 0) {
		return nil, fmt.Errorf("%w: MaxError must be finite and non-negative", ErrConfig)
	}
	if cfg.BufferSegments == 0 {
		cfg.BufferSegments = 6
	}
	if cfg.BufferSegments < 2 {
		return nil, fmt.Errorf("%w: BufferSegments must be at least 2", ErrConfig)
	}
	inner, err := cfg.NewFilter()
	if err != nil {
		return nil, err
	}
	return &Segmenter{cfg: cfg, inner: inner}, nil
}

// Push consumes one point and returns any segments SWAB finalised.
func (s *Segmenter) Push(p core.Point) ([]core.Segment, error) {
	if s.finished {
		return nil, ErrFinished
	}
	emitted, err := s.inner.Push(p)
	if err != nil {
		return nil, err
	}
	s.pending = append(s.pending, p.Clone())
	if len(emitted) == 0 {
		return nil, nil
	}
	// The read-ahead filter closed a filtering interval: the pending
	// chunk moves into the buffer and the buffer is re-segmented.
	s.buffer = append(s.buffer, s.pending...)
	s.pending = s.pending[:0]
	return s.drain(false), nil
}

// Finish flushes the buffer and returns the remaining segments.
func (s *Segmenter) Finish() ([]core.Segment, error) {
	if s.finished {
		return nil, ErrFinished
	}
	s.finished = true
	if _, err := s.inner.Finish(); err != nil {
		return nil, err
	}
	s.buffer = append(s.buffer, s.pending...)
	s.pending = nil
	return s.drain(true), nil
}

// drain re-segments the buffer bottom-up and emits leftmost segments:
// all of them when flush is set, otherwise only while the buffer holds
// more than BufferSegments segments.
func (s *Segmenter) drain(flush bool) []core.Segment {
	var out []core.Segment
	for len(s.buffer) > 0 {
		p := newPrefix(s.buffer)
		bounds := mergeAll(p, initialBounds(len(s.buffer)), s.cfg.MaxError)
		nseg := len(bounds) - 1
		if flush {
			for k := 0; k < nseg; k++ {
				out = append(out, p.segment(s.buffer, bounds[k], bounds[k+1]))
			}
			s.buffer = nil
			break
		}
		if nseg <= s.cfg.BufferSegments {
			break
		}
		out = append(out, p.segment(s.buffer, bounds[0], bounds[1]))
		s.buffer = append(s.buffer[:0], s.buffer[bounds[1]:]...)
	}
	return out
}
