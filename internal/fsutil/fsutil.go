// Package fsutil holds the small filesystem durability helpers the
// storage engines share — atomic file replacement and directory fsync —
// so the crash-safety protocol exists in exactly one place instead of
// drifting between the WAL and the extent store.
package fsutil

import (
	"bufio"
	"io"
	"os"
)

// WriteFileAtomic replaces path with the bytes write produces: a
// temporary sibling is written (buffered), flushed, fsynced, closed and
// renamed into place, and removed on any failure. Callers should
// SyncDir the parent directory afterwards so the rename itself is
// durable.
func WriteFileAtomic(path string, write func(w io.Writer) error) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	if err := write(bw); err != nil {
		return fail(err)
	}
	if err := bw.Flush(); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// SyncDir fsyncs a directory so creates, renames and removes inside it
// are durable. Failures are reported to logf rather than returned: some
// filesystems reject directory fsync, and the data files themselves are
// already synced.
func SyncDir(dir string, logf func(format string, args ...any)) {
	d, err := os.Open(dir)
	if err != nil {
		logf("sync dir: %v", err)
		return
	}
	if err := d.Sync(); err != nil {
		logf("sync dir: %v", err)
	}
	d.Close()
}
