package gen

import "math"

// RNG is a xoshiro256** pseudo-random generator seeded via splitmix64.
// Unlike math/rand it is guaranteed stable across Go releases, keeping
// every synthetic dataset in this repository reproducible bit for bit.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded deterministically from seed.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	// splitmix64 expansion of the seed into the four state words.
	x := seed
	for i := range r.s {
		x += 0x9e3779b97f4a7c15
		z := x
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		r.s[i] = z ^ (z >> 31)
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// NormFloat64 returns a standard normal variate (Box–Muller; the spare
// value is intentionally discarded to keep the state machine simple).
func (r *RNG) NormFloat64() float64 {
	for {
		u := r.Float64()
		if u == 0 {
			continue
		}
		v := r.Float64()
		return math.Sqrt(-2*math.Log(u)) * math.Cos(2*math.Pi*v)
	}
}

// Intn returns a uniform int in [0, n). It panics when n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("gen: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}
