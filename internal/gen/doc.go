// Package gen produces the synthetic signals used by the paper's
// evaluation (Section 5):
//
//   - the random-walk family of Section 5.3, parameterised by the
//     probability p of a decrease and the maximum per-step magnitude x
//     drawn from U(0, x);
//   - the correlated multi-dimensional walks of Section 5.4;
//   - a synthetic stand-in for the TAO-buoy sea-surface-temperature
//     series of Section 5.2 / Figure 6 (1285 points, 10-minute sampling,
//     quantized to 0.01 °C) — see DESIGN.md for the substitution
//     rationale;
//   - assorted extra shapes (sine, steps, spikes) for tests and examples.
//
// All generators run on an in-package xoshiro256** PRNG so every dataset
// is bit-for-bit reproducible across platforms and Go releases.
package gen
