package gen

import (
	"math"

	"github.com/pla-go/pla/internal/core"
)

// Sine generates n points of amp·sin(2πt/period) + noise·N(0,1) sampled
// at unit time steps.
func Sine(n int, amp, period, noise float64, seed uint64) []core.Point {
	rng := NewRNG(seed)
	pts := make([]core.Point, n)
	for j := 0; j < n; j++ {
		t := float64(j)
		v := amp * math.Sin(2*math.Pi*t/period)
		if noise > 0 {
			v += noise * rng.NormFloat64()
		}
		pts[j] = core.Point{T: t, X: []float64{v}}
	}
	return pts
}

// Steps generates a staircase signal: the value holds for holdLen points,
// then jumps by a uniform step in [-jump, +jump).
func Steps(n, holdLen int, jump float64, seed uint64) []core.Point {
	rng := NewRNG(seed)
	if holdLen < 1 {
		holdLen = 1
	}
	pts := make([]core.Point, n)
	v := 0.0
	for j := 0; j < n; j++ {
		if j > 0 && j%holdLen == 0 {
			v += (rng.Float64()*2 - 1) * jump
		}
		pts[j] = core.Point{T: float64(j), X: []float64{v}}
	}
	return pts
}

// Spikes generates a mostly flat signal with occasional spikes of the
// given magnitude, one expected every spacing points.
func Spikes(n, spacing int, magnitude float64, seed uint64) []core.Point {
	rng := NewRNG(seed)
	if spacing < 1 {
		spacing = 1
	}
	pts := make([]core.Point, n)
	for j := 0; j < n; j++ {
		v := 0.0
		if rng.Intn(spacing) == 0 {
			v = (rng.Float64()*2 - 1) * magnitude
		}
		pts[j] = core.Point{T: float64(j), X: []float64{v}}
	}
	return pts
}
