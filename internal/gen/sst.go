package gen

import (
	"math"

	"github.com/pla-go/pla/internal/core"
)

// SSTPoints and SSTIntervalMinutes mirror the real dataset of the paper's
// Section 5.2: 1285 sea-surface-temperature samples taken every 10
// minutes (TAO project buoy data).
const (
	SSTPoints          = 1285
	SSTIntervalMinutes = 10
	// SSTQuantum is the sensor resolution the values are rounded to; the
	// resulting plateaus are what give the cache filter its advantage on
	// this signal (Section 5.2).
	SSTQuantum = 0.01
)

// SeaSurfaceTemperature returns the canonical synthetic stand-in for the
// paper's sea-surface-temperature series (Figure 6): 1285 points sampled
// every 10 minutes, wandering irregularly between roughly 20.5 °C and
// 24.5 °C, quantized to 0.01 °C. The series is deterministic — every call
// returns the same data.
//
// The model superimposes diurnal and semi-diurnal tides, a slow
// mean-reverting random drift (weather), and small AR(1) measurement
// noise, then quantizes. See DESIGN.md ("Substitutions") for why this
// preserves the behaviours the paper's evaluation depends on.
func SeaSurfaceTemperature() []core.Point {
	return SSTLike(SSTPoints, 20090824)
}

// SSTLike generates an n-point sea-surface-temperature-like series from
// the given seed, with the same structure as SeaSurfaceTemperature.
func SSTLike(n int, seed uint64) []core.Point {
	rng := NewRNG(seed)
	pts := make([]core.Point, n)
	const (
		mean        = 22.4
		diurnalAmp  = 0.85
		semiAmp     = 0.30
		minutesDay  = 24 * 60
		drift       = 0.035 // per-step scale of the weather drift
		meanRevert  = 0.002
		noiseAR     = 0.6
		noiseScale  = 0.012
		rampePeriod = 6100 // a slow multi-day swell, minutes
	)
	phase1 := rng.Float64() * 2 * math.Pi
	phase2 := rng.Float64() * 2 * math.Pi
	phase3 := rng.Float64() * 2 * math.Pi
	w := 0.0 // weather drift state
	e := 0.0 // AR(1) noise state
	for j := 0; j < n; j++ {
		t := float64(j * SSTIntervalMinutes)
		w += drift*rng.NormFloat64() - meanRevert*w
		e = noiseAR*e + noiseScale*rng.NormFloat64()
		v := mean +
			diurnalAmp*math.Sin(2*math.Pi*t/minutesDay+phase1) +
			semiAmp*math.Sin(2*math.Pi*t/(minutesDay/2)+phase2) +
			0.55*math.Sin(2*math.Pi*t/rampePeriod+phase3) +
			w + e
		v = math.Round(v/SSTQuantum) * SSTQuantum
		pts[j] = core.Point{T: t, X: []float64{v}}
	}
	return pts
}

// Range returns the minimum and maximum value of dimension i of a signal
// (the paper expresses precision widths as a percentage of this range).
func Range(pts []core.Point, i int) (lo, hi float64) {
	if len(pts) == 0 {
		return 0, 0
	}
	lo, hi = pts[0].X[i], pts[0].X[i]
	for _, p := range pts {
		if p.X[i] < lo {
			lo = p.X[i]
		}
		if p.X[i] > hi {
			hi = p.X[i]
		}
	}
	return lo, hi
}
