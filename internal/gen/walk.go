package gen

import (
	"math"

	"github.com/pla-go/pla/internal/core"
)

// WalkConfig parameterises the paper's random-walk signal model
// (Section 5.3): each point moves down with probability P and up with
// probability 1−P, by a magnitude drawn uniformly from [0, MaxDelta).
type WalkConfig struct {
	// N is the number of points to generate.
	N int
	// P is the probability that a step decreases the value (0 ⇒
	// monotonically non-decreasing, 0.5 ⇒ symmetric oscillation).
	P float64
	// MaxDelta is the upper bound of the uniform step magnitude; the
	// paper expresses it as a percentage of the precision width.
	MaxDelta float64
	// Start is the initial value (default 0).
	Start float64
	// DT is the time step between points (default 1).
	DT float64
	// Seed drives the deterministic PRNG.
	Seed uint64
}

func (c WalkConfig) dt() float64 {
	if c.DT <= 0 {
		return 1
	}
	return c.DT
}

// RandomWalk generates a one-dimensional random-walk signal.
func RandomWalk(cfg WalkConfig) []core.Point {
	rng := NewRNG(cfg.Seed)
	pts := make([]core.Point, cfg.N)
	v := cfg.Start
	dt := cfg.dt()
	for j := 0; j < cfg.N; j++ {
		pts[j] = core.Point{T: float64(j) * dt, X: []float64{v}}
		v += walkStep(rng, cfg.P, cfg.MaxDelta)
	}
	return pts
}

// walkStep draws one signed step: magnitude U(0, maxDelta), sign negative
// with probability p.
func walkStep(rng *RNG, p, maxDelta float64) float64 {
	d := rng.Float64() * maxDelta
	if rng.Float64() < p {
		return -d
	}
	return d
}

// MultiWalkConfig extends WalkConfig to d-dimensional signals with a
// controllable pairwise correlation between dimensions (Section 5.4).
type MultiWalkConfig struct {
	WalkConfig
	// Dims is the signal dimensionality d.
	Dims int
	// Correlation in [0, 1] is the desired pairwise correlation between
	// the per-step increments of any two dimensions. 0 generates fully
	// independent dimensions, 1 identical ones.
	Correlation float64
}

// MultiWalk generates a d-dimensional random walk. Each dimension's step
// is the mixture √ρ·common + √(1−ρ)·independent of a shared step and a
// per-dimension step, which yields pairwise increment correlation ρ while
// preserving the marginal step distribution's variance scale.
func MultiWalk(cfg MultiWalkConfig) []core.Point {
	if cfg.Dims <= 0 {
		cfg.Dims = 1
	}
	rho := math.Min(math.Max(cfg.Correlation, 0), 1)
	wc, wi := math.Sqrt(rho), math.Sqrt(1-rho)
	rng := NewRNG(cfg.Seed)
	pts := make([]core.Point, cfg.N)
	vals := make([]float64, cfg.Dims)
	for i := range vals {
		vals[i] = cfg.Start
	}
	dt := cfg.dt()
	for j := 0; j < cfg.N; j++ {
		x := make([]float64, cfg.Dims)
		copy(x, vals)
		pts[j] = core.Point{T: float64(j) * dt, X: x}
		common := walkStep(rng, cfg.P, cfg.MaxDelta)
		for i := 0; i < cfg.Dims; i++ {
			vals[i] += wc*common + wi*walkStep(rng, cfg.P, cfg.MaxDelta)
		}
	}
	return pts
}
