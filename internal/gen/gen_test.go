package gen

import (
	"math"
	"testing"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(8)
	same := true
	a2 := NewRNG(7)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(3)
	var sum float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
		sum += v
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.02 {
		t.Fatalf("Float64 mean = %v, want ≈0.5", mean)
	}
}

func TestRNGNormFloat64Moments(t *testing.T) {
	r := NewRNG(4)
	var sum, sum2 float64
	const n = 50000
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sum2 += v * v
	}
	mean := sum / n
	variance := sum2/n - mean*mean
	if math.Abs(mean) > 0.03 {
		t.Fatalf("normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance = %v", variance)
	}
}

func TestRNGIntn(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 1000; i++ {
		if v := r.Intn(7); v < 0 || v >= 7 {
			t.Fatalf("Intn(7) = %d", v)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	r.Intn(0)
}

func TestRandomWalkBasics(t *testing.T) {
	pts := RandomWalk(WalkConfig{N: 500, P: 0.3, MaxDelta: 2, Start: 10, Seed: 1})
	if len(pts) != 500 {
		t.Fatalf("n = %d", len(pts))
	}
	if pts[0].X[0] != 10 || pts[0].T != 0 {
		t.Fatalf("start = %+v", pts[0])
	}
	for j := 1; j < len(pts); j++ {
		if pts[j].T <= pts[j-1].T {
			t.Fatal("timestamps not increasing")
		}
		if d := math.Abs(pts[j].X[0] - pts[j-1].X[0]); d >= 2 {
			t.Fatalf("step %v exceeds MaxDelta", d)
		}
	}
}

func TestRandomWalkMonotoneWhenPZero(t *testing.T) {
	pts := RandomWalk(WalkConfig{N: 300, P: 0, MaxDelta: 1, Seed: 2})
	for j := 1; j < len(pts); j++ {
		if pts[j].X[0] < pts[j-1].X[0] {
			t.Fatal("p=0 walk decreased")
		}
	}
}

func TestRandomWalkDeterministic(t *testing.T) {
	a := RandomWalk(WalkConfig{N: 100, P: 0.5, MaxDelta: 1, Seed: 9})
	b := RandomWalk(WalkConfig{N: 100, P: 0.5, MaxDelta: 1, Seed: 9})
	for j := range a {
		if a[j].X[0] != b[j].X[0] {
			t.Fatal("walk not deterministic")
		}
	}
}

func TestRandomWalkDT(t *testing.T) {
	pts := RandomWalk(WalkConfig{N: 10, MaxDelta: 1, DT: 2.5, Seed: 1})
	if pts[4].T != 10 {
		t.Fatalf("t[4] = %v, want 10", pts[4].T)
	}
}

func TestMultiWalkCorrelation(t *testing.T) {
	for _, rho := range []float64{0, 0.5, 0.9, 1} {
		pts := MultiWalk(MultiWalkConfig{
			WalkConfig:  WalkConfig{N: 20000, P: 0.5, MaxDelta: 1, Seed: 42},
			Dims:        2,
			Correlation: rho,
		})
		var sx, sy, sxx, syy, sxy float64
		n := 0
		for j := 1; j < len(pts); j++ {
			dx := pts[j].X[0] - pts[j-1].X[0]
			dy := pts[j].X[1] - pts[j-1].X[1]
			sx += dx
			sy += dy
			sxx += dx * dx
			syy += dy * dy
			sxy += dx * dy
			n++
		}
		fn := float64(n)
		cov := sxy/fn - (sx/fn)*(sy/fn)
		vx := sxx/fn - (sx/fn)*(sx/fn)
		vy := syy/fn - (sy/fn)*(sy/fn)
		got := cov / math.Sqrt(vx*vy)
		if math.Abs(got-rho) > 0.05 {
			t.Fatalf("ρ=%v: empirical correlation %v", rho, got)
		}
	}
}

func TestMultiWalkDims(t *testing.T) {
	pts := MultiWalk(MultiWalkConfig{WalkConfig: WalkConfig{N: 10, MaxDelta: 1, Seed: 1}, Dims: 5})
	if len(pts[0].X) != 5 {
		t.Fatalf("dims = %d", len(pts[0].X))
	}
	pts = MultiWalk(MultiWalkConfig{WalkConfig: WalkConfig{N: 10, MaxDelta: 1, Seed: 1}, Dims: 0})
	if len(pts[0].X) != 1 {
		t.Fatalf("Dims=0 should default to 1, got %d", len(pts[0].X))
	}
}

func TestSeaSurfaceTemperatureShape(t *testing.T) {
	pts := SeaSurfaceTemperature()
	if len(pts) != SSTPoints {
		t.Fatalf("n = %d, want %d", len(pts), SSTPoints)
	}
	if pts[1].T-pts[0].T != SSTIntervalMinutes {
		t.Fatalf("sampling interval = %v", pts[1].T-pts[0].T)
	}
	lo, hi := Range(pts, 0)
	if span := hi - lo; span < 2.5 || span > 6 {
		t.Fatalf("range span = %v °C, want a Figure-6-like 2.5–6", span)
	}
	if lo < 18 || hi > 27 {
		t.Fatalf("values [%v, %v] outside plausible SST band", lo, hi)
	}
	// Quantization to 0.01 °C.
	for _, p := range pts {
		q := math.Round(p.X[0]/SSTQuantum) * SSTQuantum
		if math.Abs(q-p.X[0]) > 1e-9 {
			t.Fatalf("value %v not quantized", p.X[0])
		}
	}
	// Plateaus must exist (the cache filter's advantage in Section 5.2).
	repeats := 0
	for j := 1; j < len(pts); j++ {
		if pts[j].X[0] == pts[j-1].X[0] {
			repeats++
		}
	}
	if repeats < len(pts)/50 {
		t.Fatalf("only %d repeated consecutive values; expected plateaus", repeats)
	}
	// Determinism.
	again := SeaSurfaceTemperature()
	for j := range pts {
		if pts[j].X[0] != again[j].X[0] {
			t.Fatal("SST series not deterministic")
		}
	}
}

func TestSSTLikeSeeds(t *testing.T) {
	a := SSTLike(200, 1)
	b := SSTLike(200, 2)
	diff := 0
	for j := range a {
		if a[j].X[0] != b[j].X[0] {
			diff++
		}
	}
	if diff < 100 {
		t.Fatalf("different seeds produced nearly identical series (%d diffs)", diff)
	}
}

func TestRangeHelper(t *testing.T) {
	lo, hi := Range(nil, 0)
	if lo != 0 || hi != 0 {
		t.Fatal("empty range")
	}
	pts := RandomWalk(WalkConfig{N: 50, P: 0.5, MaxDelta: 3, Seed: 6})
	lo, hi = Range(pts, 0)
	for _, p := range pts {
		if p.X[0] < lo || p.X[0] > hi {
			t.Fatal("Range misses a value")
		}
	}
}

func TestShapeGenerators(t *testing.T) {
	sine := Sine(100, 5, 25, 0, 1)
	if len(sine) != 100 {
		t.Fatal("sine length")
	}
	var maxAbs float64
	for _, p := range sine {
		if a := math.Abs(p.X[0]); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs > 5+1e-9 || maxAbs < 4 {
		t.Fatalf("sine amplitude %v", maxAbs)
	}

	steps := Steps(100, 10, 4, 2)
	changes := 0
	for j := 1; j < len(steps); j++ {
		if steps[j].X[0] != steps[j-1].X[0] {
			changes++
			if j%10 != 0 {
				t.Fatalf("step at j=%d, expected only at multiples of 10", j)
			}
		}
	}
	if changes == 0 {
		t.Fatal("staircase never stepped")
	}

	spikes := Spikes(500, 25, 10, 3)
	nonzero := 0
	for _, p := range spikes {
		if p.X[0] != 0 {
			nonzero++
		}
	}
	if nonzero == 0 || nonzero > 100 {
		t.Fatalf("spike count %d implausible for spacing 25", nonzero)
	}
}
