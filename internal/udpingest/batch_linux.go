//go:build linux && (amd64 || arm64)

package udpingest

import (
	"net"
	"net/netip"
	"syscall"
	"unsafe"
)

// Batched datagram I/O via recvmmsg/sendmmsg, driven through the
// runtime netpoller: the raw syscalls run non-blocking (MSG_DONTWAIT)
// inside RawConn.Read/Write callbacks, so EAGAIN parks the goroutine on
// the poller instead of spinning, and one wakeup drains up to recvBatch
// datagrams in a single kernel crossing.

// mmsghdr mirrors struct mmsghdr; the trailing pad keeps the array
// stride at what the kernel expects on 64-bit.
type mmsghdr struct {
	hdr syscall.Msghdr
	ln  uint32
	_   [4]byte
}

type batcher struct {
	rc     syscall.RawConn
	hdrs   [recvBatch]mmsghdr
	iovs   [recvBatch]syscall.Iovec
	names  [recvBatch]syscall.RawSockaddrInet6
	shdrs  [recvBatch]mmsghdr
	siovs  [recvBatch]syscall.Iovec
	snames [recvBatch]syscall.RawSockaddrInet6
}

func (b *batcher) init(c *net.UDPConn) error {
	rc, err := c.SyscallConn()
	if err != nil {
		return err
	}
	b.rc = rc
	return nil
}

func (b *batcher) recv(_ *net.UDPConn, ps []packet) (int, error) {
	k := len(ps)
	if k > recvBatch {
		k = recvBatch
	}
	for i := 0; i < k; i++ {
		buf := *ps[i].bp
		b.iovs[i].Base = &buf[0]
		b.iovs[i].SetLen(len(buf))
		b.names[i] = syscall.RawSockaddrInet6{}
		h := &b.hdrs[i].hdr
		h.Name = (*byte)(unsafe.Pointer(&b.names[i]))
		h.Namelen = uint32(unsafe.Sizeof(b.names[i]))
		h.Iov = &b.iovs[i]
		h.Iovlen = 1
		b.hdrs[i].ln = 0
	}
	var n int
	var errno syscall.Errno
	err := b.rc.Read(func(fd uintptr) bool {
		r1, _, e := syscall.Syscall6(syscall.SYS_RECVMMSG, fd,
			uintptr(unsafe.Pointer(&b.hdrs[0])), uintptr(k),
			uintptr(syscall.MSG_DONTWAIT), 0, 0)
		if e == syscall.EAGAIN {
			return false
		}
		errno = e
		n = int(r1)
		return true
	})
	if err != nil {
		return 0, err
	}
	if errno != 0 {
		return 0, errno
	}
	for i := 0; i < n; i++ {
		ps[i].n = int(b.hdrs[i].ln)
		ps[i].from = sockaddrToAddrPort(&b.names[i])
	}
	return n, nil
}

// sendAcks pushes the batch with as few sendmmsg calls as possible.
// Acks are best-effort — a lost ack is repaired by the client's
// retransmission like any lost datagram — so errors just drop the rest.
func (b *batcher) sendAcks(c *net.UDPConn, a *ackBatch) {
	if a.n == 1 {
		c.WriteToUDPAddrPort(a.bufs[0][:], a.dsts[0])
		return
	}
	for i := 0; i < a.n; i++ {
		b.siovs[i].Base = &a.bufs[i][0]
		b.siovs[i].SetLen(headerSize)
		nl := addrPortToSockaddr(&b.snames[i], a.dsts[i])
		h := &b.shdrs[i].hdr
		h.Name = (*byte)(unsafe.Pointer(&b.snames[i]))
		h.Namelen = nl
		h.Iov = &b.siovs[i]
		h.Iovlen = 1
		b.shdrs[i].ln = 0
	}
	sent := 0
	for sent < a.n {
		var n int
		var errno syscall.Errno
		err := b.rc.Write(func(fd uintptr) bool {
			r1, _, e := syscall.Syscall6(sysSendmmsg, fd,
				uintptr(unsafe.Pointer(&b.shdrs[sent])), uintptr(a.n-sent),
				uintptr(syscall.MSG_DONTWAIT), 0, 0)
			if e == syscall.EAGAIN {
				return false
			}
			errno = e
			n = int(r1)
			return true
		})
		if err != nil || errno != 0 || n <= 0 {
			return
		}
		sent += n
	}
}

// sockaddrToAddrPort converts a kernel-written sockaddr without
// allocating. The address family is preserved exactly (no v4-mapped
// unmapping) so replies round-trip on sockets of either family.
func sockaddrToAddrPort(sa *syscall.RawSockaddrInet6) netip.AddrPort {
	switch sa.Family {
	case syscall.AF_INET:
		sa4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(sa))
		p := (*[2]byte)(unsafe.Pointer(&sa4.Port))
		return netip.AddrPortFrom(netip.AddrFrom4(sa4.Addr), uint16(p[0])<<8|uint16(p[1]))
	case syscall.AF_INET6:
		p := (*[2]byte)(unsafe.Pointer(&sa.Port))
		return netip.AddrPortFrom(netip.AddrFrom16(sa.Addr), uint16(p[0])<<8|uint16(p[1]))
	}
	return netip.AddrPort{}
}

// addrPortToSockaddr packs ap into sa, returning the sockaddr length
// for Msghdr.Namelen.
func addrPortToSockaddr(sa *syscall.RawSockaddrInet6, ap netip.AddrPort) uint32 {
	port := ap.Port()
	if addr := ap.Addr(); addr.Is4() {
		sa4 := (*syscall.RawSockaddrInet4)(unsafe.Pointer(sa))
		*sa4 = syscall.RawSockaddrInet4{Family: syscall.AF_INET, Addr: addr.As4()}
		p := (*[2]byte)(unsafe.Pointer(&sa4.Port))
		p[0], p[1] = byte(port>>8), byte(port)
		return uint32(unsafe.Sizeof(*sa4))
	} else {
		*sa = syscall.RawSockaddrInet6{Family: syscall.AF_INET6, Addr: addr.As16()}
		p := (*[2]byte)(unsafe.Pointer(&sa.Port))
		p[0], p[1] = byte(port>>8), byte(port)
		return uint32(unsafe.Sizeof(*sa))
	}
}
