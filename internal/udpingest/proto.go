// Package udpingest implements plad's datagram ingest transport: a
// lossy-network front end for the same ε-filtered segment streams the
// TCP path carries, built for raw ingest speed. The server side binds N
// SO_REUSEPORT listeners on one port — the kernel fans incoming flows
// out across them, so there is no central accept loop and no shared
// accept lock — and each listener drains the socket with batched
// recvmmsg where the platform has it. Datagrams carry sequence-numbered
// chunks of the ordinary encode byte stream; a fixed-size stateless
// header is validated before any lock is taken or allocation made, the
// session id is FNV-1a-hashed onto a sharded session table, and a
// per-session sequence window reassembles the stream in order
// (duplicates dropped, reordering absorbed, gaps repaired by go-back-N
// retransmission from the client). PLA records are idempotent by
// segment index, so replays the window does not catch are still
// harmless at the archive layer.
//
// Wire format (little endian), one 20-byte header per datagram:
//
//	magic "PLU1" | type | flags | 2 reserved | uint64 session id |
//	uint32 seq
//
// followed by a type-specific payload:
//
//	hello    (client→server): uvarint name length | name | the encode
//	         stream header the session will carry (PLA1/PLA2 — the same
//	         negotiation as TCP: ε contract, filter kind, max-lag bound)
//	helloAck (server→client): status byte (0 ok; 1 rejected followed by
//	         uvarint length + message)
//	data     (client→server): the next chunk of the encode byte stream;
//	         seq starts at 1 and increments per datagram
//	ack      (server→client): empty; seq is the cumulative highest
//	         in-order data seq delivered (0 = none yet)
//	closeReq (client→server): empty; seq is the final data seq
//	closeAck (server→client): status byte | 3 uvarints (segments
//	         applied, rejected, dropped) — sent only after every segment
//	         of the session has been applied and committed, the same
//	         barrier the TCP ack rides; seq echoes the final data seq
//	abort    (either way): uvarint length | message; the session is dead
package udpingest

import "encoding/binary"

const (
	// MaxDatagram bounds every datagram either side sends. 1200 bytes
	// stays under the common 1280-byte IPv6 path MTU floor, so frames
	// are never fragmented on sane paths.
	MaxDatagram = 1200
	headerSize  = 20
	maxPayload  = MaxDatagram - headerSize
)

const protoMagic = "PLU1"

// Datagram types. The zero value is invalid so an all-zero buffer never
// parses.
const (
	typeHello byte = 1 + iota
	typeHelloAck
	typeData
	typeAck
	typeCloseReq
	typeCloseAck
	typeAbort
)

// flagAckReq on a data datagram asks the server to ack immediately
// instead of waiting for the every-ackEvery cadence; clients set it on
// flush boundaries so a batch's window drains promptly.
const flagAckReq byte = 1 << 0

const (
	statusOK  byte = 0
	statusErr byte = 1
)

type header struct {
	typ   byte
	flags byte
	sid   uint64
	seq   uint32
}

// putHeader packs h into b[:headerSize] (b must be at least that long).
func putHeader(b []byte, h header) {
	_ = b[headerSize-1]
	copy(b, protoMagic)
	b[4] = h.typ
	b[5] = h.flags
	b[6], b[7] = 0, 0
	binary.LittleEndian.PutUint64(b[8:16], h.sid)
	binary.LittleEndian.PutUint32(b[16:20], h.seq)
}

// parseHeader is the stateless pre-dispatch filter: size, magic and
// type are checked before any session lookup, lock or allocation, so
// junk traffic costs a header scan and nothing else.
func parseHeader(b []byte) (header, bool) {
	if len(b) < headerSize || string(b[:4]) != protoMagic {
		return header{}, false
	}
	t := b[4]
	if t < typeHello || t > typeAbort {
		return header{}, false
	}
	return header{
		typ:   t,
		flags: b[5],
		sid:   binary.LittleEndian.Uint64(b[8:16]),
		seq:   binary.LittleEndian.Uint32(b[16:20]),
	}, true
}

// Ack is the server's end-of-session accounting, mirroring the TCP
// transport's final acknowledgement.
type Ack struct {
	Applied  int64
	Rejected int64
	Dropped  int64
}

// appendUvarint appends v to b.
func appendUvarint(b []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	return append(b, tmp[:n]...)
}

// takeUvarint reads one uvarint off the front of b.
func takeUvarint(b []byte) (uint64, []byte, bool) {
	v, n := binary.Uvarint(b)
	if n <= 0 {
		return 0, nil, false
	}
	return v, b[n:], true
}

// makeAbort builds an abort datagram; the message is truncated to fit.
func makeAbort(sid uint64, msg string) []byte {
	if len(msg) > maxPayload-binary.MaxVarintLen64 {
		msg = msg[:maxPayload-binary.MaxVarintLen64]
	}
	b := make([]byte, headerSize, headerSize+binary.MaxVarintLen64+len(msg))
	putHeader(b, header{typ: typeAbort, sid: sid})
	b = appendUvarint(b, uint64(len(msg)))
	return append(b, msg...)
}

// parseMessage reads a uvarint-length-prefixed message (abort bodies,
// helloAck rejections).
func parseMessage(p []byte) string {
	n, rest, ok := takeUvarint(p)
	if !ok || n > uint64(len(rest)) {
		return "malformed message"
	}
	return string(rest[:n])
}

// makeCloseAck builds the terminal acknowledgement datagram.
func makeCloseAck(sid uint64, finalSeq uint32, a Ack) []byte {
	b := make([]byte, headerSize, headerSize+1+3*binary.MaxVarintLen64)
	putHeader(b, header{typ: typeCloseAck, sid: sid, seq: finalSeq})
	b = append(b, statusOK)
	b = appendUvarint(b, uint64(a.Applied))
	b = appendUvarint(b, uint64(a.Rejected))
	return appendUvarint(b, uint64(a.Dropped))
}

// parseCloseAck unpacks a closeAck payload.
func parseCloseAck(p []byte) (Ack, bool) {
	if len(p) < 1 || p[0] != statusOK {
		return Ack{}, false
	}
	var a Ack
	p = p[1:]
	for _, dst := range [...]*int64{&a.Applied, &a.Rejected, &a.Dropped} {
		v, rest, ok := takeUvarint(p)
		if !ok {
			return Ack{}, false
		}
		*dst = int64(v)
		p = rest
	}
	return a, true
}
