//go:build linux && arm64

package udpingest

import "syscall"

const sysSendmmsg = syscall.SYS_SENDMMSG
