//go:build linux

package udpingest

import (
	"net"
	"syscall"
)

// soReusePort is SO_REUSEPORT, absent from the stdlib syscall package's
// generated constants; the value is uniform across Linux architectures.
const soReusePort = 0xf

func reuseportOK() bool { return true }

// listenConfig sets SO_REUSEPORT before bind, so N sockets share one
// port and the kernel hashes each client's flow onto one of them — the
// per-core fan-in with no central accept loop.
func listenConfig() net.ListenConfig {
	return net.ListenConfig{
		Control: func(network, address string, c syscall.RawConn) error {
			var serr error
			if err := c.Control(func(fd uintptr) {
				serr = syscall.SetsockoptInt(int(fd), syscall.SOL_SOCKET, soReusePort, 1)
			}); err != nil {
				return err
			}
			return serr
		},
	}
}
