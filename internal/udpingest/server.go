package udpingest

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/netip"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"github.com/pla-go/pla/internal/core"
	"github.com/pla-go/pla/internal/encode"
)

// Sink is the archive-side hookup: the embedding server opens one
// SessionSink per accepted hello. dec is a decoder over the hello's
// serialized stream header — the negotiation (ε contract, constant
// flag, filter kind, max-lag bound) without any stream body.
type Sink interface {
	Open(name string, dec *encode.Decoder) (SessionSink, error)
}

// SessionSink receives one session's decoded segments in stream order.
// Close(true, tail) is the commit barrier: it must not return until
// every applied segment is durable per the server's policy (its Ack is
// what the client's Close reports). Close(commit=false) releases the
// session's accounting after an abort; tail is the wire bytes read
// since the last Apply either way.
type SessionSink interface {
	Apply(seg core.Segment, wireBytes int64)
	Close(commit bool, tail int64) (Ack, error)
}

// Config parameterises Listen. The zero value is usable.
type Config struct {
	// Listeners is the number of SO_REUSEPORT sockets to bind
	// (default GOMAXPROCS; always 1 where the platform lacks the
	// option).
	Listeners int
	// IdleTimeout aborts a session whose stream stalls mid-flight
	// (default 60s). Client retransmission keeps live sessions well
	// under it.
	IdleTimeout time.Duration
	// Logf, when set, receives one line per abnormal session end.
	Logf func(format string, args ...any)
}

// Metrics is a point-in-time snapshot of the transport's counters.
type Metrics struct {
	// Datagrams counts well-formed datagrams received; Drops counts
	// malformed or unroutable ones plus in-window data shed by inbox
	// backpressure; Dups counts retransmissions of already-delivered
	// data; OutOfWindow counts data too far ahead of the reassembly
	// window to buffer.
	Datagrams   int64
	Drops       int64
	Dups        int64
	OutOfWindow int64
	// Sessions counts hellos accepted over the lifetime; Active is the
	// number of sessions currently open.
	Sessions int64
	Active   int64
}

const (
	// tableShards is the session-table shard count; the FNV-1a hash of
	// the session id picks one, so listeners contend only when their
	// clients' ids collide modulo this.
	tableShards = 32
	// reorderWindow bounds how far ahead of the next expected seq a
	// data datagram may arrive and still be buffered. It matches the
	// client's send window: anything further ahead is unreachable from
	// a well-behaved client.
	reorderWindow = 256
	// inboxDepth is the per-session buffered channel between the
	// listener and the session's decode goroutine. A full inbox drops
	// the datagram *without acking it*, so the client's window stalls —
	// socket-to-archive backpressure with no extra machinery.
	inboxDepth = 512
	// ackEvery is the in-order delivery cadence between unsolicited
	// acks.
	ackEvery = 16
	// doneTTL keeps a finished session's cached closeAck around for
	// retransmitted closeReqs before the reaper sweeps it.
	doneTTL = 30 * time.Second
	// abortEvery rate-limits unknown-session abort replies per
	// listener, so a blind datagram flood cannot turn the server into
	// an amplifier.
	abortEvery = 10 * time.Millisecond
)

var (
	errIdle     = errors.New("udpingest: session idle timeout")
	errShutdown = errors.New("udpingest: server shutting down")
)

// Server is the datagram ingest front end. Create with Listen; Close
// stops the listeners and aborts live sessions (their already-applied
// segments stay applied — datagram semantics).
type Server struct {
	sink Sink
	cfg  Config
	lcs  []*lconn
	addr net.Addr
	stop chan struct{}

	lnWG   sync.WaitGroup // listeners + reaper
	sessWG sync.WaitGroup // session decode goroutines
	closed atomic.Bool

	table [tableShards]tableShard

	datagrams   atomic.Int64
	drops       atomic.Int64
	dups        atomic.Int64
	outOfWindow atomic.Int64
	sessions    atomic.Int64
	active      atomic.Int64
}

type tableShard struct {
	mu sync.Mutex
	m  map[uint64]*session
}

// streamHeader is the hello's negotiated parameters, kept to validate
// that the in-band stream header matches what the sink was opened with.
type streamHeader struct {
	dim      int
	constant bool
	maxLag   int
	eps      []float64
}

// dgram is one in-flight pooled datagram buffer.
type dgram struct {
	bp *[]byte
	n  int
}

type session struct {
	srv  *Server
	id   uint64
	name string
	sink SessionSink
	hdr  streamHeader

	inbox chan dgram

	mu          sync.Mutex
	conn        *lconn
	raddr       netip.AddrPort
	nextSeq     uint32           // next in-order data seq expected
	reorder     map[uint32]dgram // buffered datagrams ahead of nextSeq
	finalSeq    uint32           // from closeReq; 0 = not yet known
	sinceAck    int
	inboxClosed bool
	done        bool
	doneAt      time.Time
	helloAckPkt []byte
	finalPkt    []byte // cached closeAck or abort once done

	// decode-goroutine-private reassembly cursor
	cur    dgram
	curOff int
	idle   *time.Timer
}

// Listen binds addr ("host:port") with cfg.Listeners SO_REUSEPORT
// sockets and serves until Close.
func Listen(addr string, sink Sink, cfg Config) (*Server, error) {
	n := cfg.Listeners
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if !reuseportOK() {
		n = 1
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = 60 * time.Second
	}
	s := &Server{sink: sink, cfg: cfg, stop: make(chan struct{})}
	for i := range s.table {
		s.table[i].m = make(map[uint64]*session)
	}
	lc := listenConfig()
	var conns []*net.UDPConn
	fail := func(err error) (*Server, error) {
		for _, c := range conns {
			c.Close()
		}
		return nil, err
	}
	first, err := lc.ListenPacket(context.Background(), "udp", addr)
	if err != nil {
		return nil, err
	}
	conns = append(conns, first.(*net.UDPConn))
	// Re-resolve through the bound address so ":0" lands every extra
	// listener on the port the first one got.
	bound := first.LocalAddr().String()
	for len(conns) < n {
		c, err := lc.ListenPacket(context.Background(), "udp", bound)
		if err != nil {
			return fail(fmt.Errorf("udpingest: reuseport listener %d: %w", len(conns), err))
		}
		conns = append(conns, c.(*net.UDPConn))
	}
	s.addr = first.LocalAddr()
	for _, c := range conns {
		l, err := newLconn(c)
		if err != nil {
			return fail(err)
		}
		s.lcs = append(s.lcs, l)
	}
	s.lnWG.Add(len(s.lcs) + 1)
	for _, l := range s.lcs {
		go s.readLoop(l)
	}
	go s.reaper()
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() net.Addr { return s.addr }

// Listeners returns how many sockets share the port.
func (s *Server) Listeners() int { return len(s.lcs) }

// Metrics snapshots the transport counters.
func (s *Server) Metrics() Metrics {
	return Metrics{
		Datagrams:   s.datagrams.Load(),
		Drops:       s.drops.Load(),
		Dups:        s.dups.Load(),
		OutOfWindow: s.outOfWindow.Load(),
		Sessions:    s.sessions.Load(),
		Active:      s.active.Load(),
	}
}

// Close stops the listeners, aborts live sessions (releasing their
// sinks with commit=false) and waits for every session goroutine to
// exit. Idempotent.
func (s *Server) Close() error {
	if !s.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(s.stop)
	for _, lc := range s.lcs {
		lc.c.Close()
	}
	s.lnWG.Wait()
	s.sessWG.Wait()
	for i := range s.table {
		ts := &s.table[i]
		ts.mu.Lock()
		ts.m = make(map[uint64]*session)
		ts.mu.Unlock()
	}
	return nil
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// tableFor FNV-1a-hashes the session id onto a table shard.
func (s *Server) tableFor(sid uint64) *tableShard {
	h := uint64(14695981039346656037)
	for i := 0; i < 64; i += 8 {
		h ^= (sid >> i) & 0xff
		h *= 1099511628211
	}
	return &s.table[h%tableShards]
}

func (s *Server) lookup(sid uint64) *session {
	ts := s.tableFor(sid)
	ts.mu.Lock()
	sess := ts.m[sid]
	ts.mu.Unlock()
	return sess
}

// readLoop drains one listener socket. Each pass receives up to
// recvBatch datagrams in one syscall (where available), dispatches them
// with at most a session-table hit and a session mutex each, and
// flushes the pass's acks in one syscall.
func (s *Server) readLoop(lc *lconn) {
	defer s.lnWG.Done()
	var pkts [recvBatch]packet
	for i := range pkts {
		pkts[i].bp = pktPool.Get().(*[]byte)
	}
	defer func() {
		for i := range pkts {
			if pkts[i].bp != nil {
				pktPool.Put(pkts[i].bp)
			}
		}
	}()
	var acks ackBatch
	for {
		n, err := lc.recvBatch(pkts[:])
		if err != nil {
			if s.closed.Load() || errors.Is(err, net.ErrClosed) {
				return
			}
			// Transient per-packet errors (ICMP-induced, buffer
			// pressure): keep serving.
			continue
		}
		acks.reset()
		for i := 0; i < n; i++ {
			if s.handlePacket(lc, &pkts[i], &acks) {
				pkts[i].bp = pktPool.Get().(*[]byte)
			}
		}
		if acks.n > 0 {
			lc.sendAcks(&acks)
		}
	}
}

// handlePacket routes one datagram, reporting whether it kept the
// packet's buffer (ownership transferred into a session).
func (s *Server) handlePacket(lc *lconn, p *packet, acks *ackBatch) bool {
	h, ok := parseHeader((*p.bp)[:p.n])
	if !ok {
		s.drops.Add(1)
		return false
	}
	s.datagrams.Add(1)
	switch h.typ {
	case typeData:
		sess := s.lookup(h.sid)
		if sess == nil {
			s.drops.Add(1)
			s.abortUnknown(lc, p.from, h.sid)
			return false
		}
		return sess.data(lc, p, h, acks)
	case typeHello:
		s.handleHello(lc, p, h)
	case typeCloseReq:
		s.handleCloseReq(lc, p, h)
	default:
		s.drops.Add(1) // server-bound types only
	}
	return false
}

// abortUnknown tells a client its session no longer exists, rate
// limited per listener so junk floods are not amplified.
func (s *Server) abortUnknown(lc *lconn, to netip.AddrPort, sid uint64) {
	now := time.Now()
	if now.Sub(lc.lastAbort) < abortEvery {
		return
	}
	lc.lastAbort = now
	lc.sendTo(makeAbort(sid, "unknown session"), to)
}

// data runs the sequence window for one data datagram. All inbox sends
// and the inbox close happen under s.mu, so close-vs-send cannot race.
func (ss *session) data(lc *lconn, p *packet, h header, acks *ackBatch) bool {
	s := ss.srv
	kept := false
	ss.mu.Lock()
	ss.conn, ss.raddr = lc, p.from
	switch {
	case ss.done || ss.inboxClosed:
		// The stream is already complete; a retransmitted tail. Re-ack
		// so the client's window drains.
		s.dups.Add(1)
		ss.ackLocked(acks)
	case h.seq < ss.nextSeq:
		s.dups.Add(1)
		ss.ackLocked(acks)
	case h.seq == ss.nextSeq:
		if old, ok := ss.reorder[h.seq]; ok {
			// A buffered copy raced the retransmit; keep the fresh one.
			delete(ss.reorder, h.seq)
			pktPool.Put(old.bp)
		}
		if !ss.deliverLocked(dgram{p.bp, p.n}) {
			// Inbox full: drop *without acking*. The client's window
			// stalls and retransmits — end-to-end backpressure from the
			// archive's decode rate to the sender's socket.
			s.drops.Add(1)
			break
		}
		kept = true
		ss.nextSeq++
		ss.sinceAck++
		for {
			d, ok := ss.reorder[ss.nextSeq]
			if !ok {
				break
			}
			if !ss.deliverLocked(d) {
				break
			}
			delete(ss.reorder, ss.nextSeq)
			ss.nextSeq++
			ss.sinceAck++
		}
		if h.flags&flagAckReq != 0 || ss.sinceAck >= ackEvery {
			ss.ackLocked(acks)
		}
		ss.maybeFinishLocked()
	case h.seq-ss.nextSeq >= reorderWindow:
		s.outOfWindow.Add(1)
	default:
		if _, dup := ss.reorder[h.seq]; dup {
			s.dups.Add(1)
		} else {
			ss.reorder[h.seq] = dgram{p.bp, p.n}
			kept = true
		}
	}
	ss.mu.Unlock()
	return kept
}

func (ss *session) deliverLocked(d dgram) bool {
	select {
	case ss.inbox <- d:
		return true
	default:
		return false
	}
}

func (ss *session) ackLocked(acks *ackBatch) {
	acks.add(ss.id, ss.nextSeq-1, ss.raddr)
	ss.sinceAck = 0
}

// maybeFinishLocked closes the inbox once every data datagram through
// the closeReq's final seq has been delivered; the decode goroutine
// then runs to the stream terminator and commits.
func (ss *session) maybeFinishLocked() {
	if ss.finalSeq != 0 && !ss.inboxClosed && ss.nextSeq > ss.finalSeq {
		close(ss.inbox)
		ss.inboxClosed = true
	}
}

func (s *Server) handleCloseReq(lc *lconn, p *packet, h header) {
	sess := s.lookup(h.sid)
	if sess == nil {
		s.drops.Add(1)
		s.abortUnknown(lc, p.from, h.sid)
		return
	}
	sess.mu.Lock()
	sess.conn, sess.raddr = lc, p.from
	if sess.done {
		pkt := sess.finalPkt
		sess.mu.Unlock()
		lc.sendTo(pkt, p.from)
		return
	}
	if sess.finalSeq == 0 && h.seq > 0 {
		sess.finalSeq = h.seq
	}
	sess.maybeFinishLocked()
	sess.mu.Unlock()
}

// handleHello accepts (or rejects) a new session. A duplicate hello —
// the client retransmitting because our ack was lost — gets the cached
// helloAck; the table-shard mutex serialises duplicates racing across
// listeners.
func (s *Server) handleHello(lc *lconn, p *packet, h header) {
	ts := s.tableFor(h.sid)
	ts.mu.Lock()
	if sess := ts.m[h.sid]; sess != nil {
		pkt := sess.helloAckPkt
		ts.mu.Unlock()
		sess.mu.Lock()
		sess.conn, sess.raddr = lc, p.from
		sess.mu.Unlock()
		lc.sendTo(pkt, p.from)
		return
	}
	name, hdrBytes, err := parseHello((*p.bp)[headerSize:p.n])
	var dec *encode.Decoder
	if err == nil {
		if dec, err = encode.NewDecoder(bytes.NewReader(hdrBytes)); err != nil {
			err = fmt.Errorf("bad stream header: %w", err)
		}
	}
	var sink SessionSink
	if err == nil {
		if s.closed.Load() {
			err = errShutdown
		} else {
			sink, err = s.sink.Open(name, dec)
		}
	}
	if err != nil {
		ts.mu.Unlock()
		lc.sendTo(makeHelloErr(h.sid, err.Error()), p.from)
		return
	}
	eps := append([]float64(nil), dec.Epsilon()...)
	sess := &session{
		srv:  s,
		id:   h.sid,
		name: name,
		sink: sink,
		hdr: streamHeader{
			dim:      dec.Dim(),
			constant: dec.Constant(),
			maxLag:   dec.MaxLag(),
			eps:      eps,
		},
		inbox:       make(chan dgram, inboxDepth),
		reorder:     make(map[uint32]dgram),
		nextSeq:     1,
		conn:        lc,
		raddr:       p.from,
		helloAckPkt: makeHelloOK(h.sid),
	}
	ts.m[h.sid] = sess
	s.sessions.Add(1)
	s.active.Add(1)
	s.sessWG.Add(1)
	ts.mu.Unlock()
	go sess.run()
	lc.sendTo(sess.helloAckPkt, p.from)
}

func parseHello(p []byte) (string, []byte, error) {
	nl, rest, ok := takeUvarint(p)
	if !ok || nl == 0 || nl > 255 || uint64(len(rest)) < nl {
		return "", nil, errors.New("malformed hello")
	}
	return string(rest[:nl]), rest[nl:], nil
}

func makeHelloOK(sid uint64) []byte {
	b := make([]byte, headerSize+1)
	putHeader(b, header{typ: typeHelloAck, sid: sid})
	b[headerSize] = statusOK
	return b
}

func makeHelloErr(sid uint64, msg string) []byte {
	if len(msg) > maxPayload-8 {
		msg = msg[:maxPayload-8]
	}
	b := make([]byte, headerSize, headerSize+2+len(msg)+8)
	putHeader(b, header{typ: typeHelloAck, sid: sid})
	b = append(b, statusErr)
	b = appendUvarint(b, uint64(len(msg)))
	return append(b, msg...)
}

// Read reassembles the in-order byte stream for the decode goroutine:
// datagram payloads from the inbox, an idle timer guarding against a
// vanished client, and the server stop channel so shutdown does not
// wait out the idle timeout.
func (ss *session) Read(p []byte) (int, error) {
	for {
		if ss.cur.bp != nil {
			if ss.curOff < ss.cur.n {
				n := copy(p, (*ss.cur.bp)[ss.curOff:ss.cur.n])
				ss.curOff += n
				if ss.curOff == ss.cur.n {
					pktPool.Put(ss.cur.bp)
					ss.cur = dgram{}
				}
				return n, nil
			}
			pktPool.Put(ss.cur.bp)
			ss.cur = dgram{}
		}
		if !ss.idle.Stop() {
			select {
			case <-ss.idle.C:
			default:
			}
		}
		ss.idle.Reset(ss.srv.cfg.IdleTimeout)
		select {
		case d, ok := <-ss.inbox:
			if !ok {
				return 0, io.EOF
			}
			ss.cur, ss.curOff = d, headerSize
		case <-ss.idle.C:
			return 0, errIdle
		case <-ss.srv.stop:
			// Shutdown drains before it aborts: datagrams already in the
			// inbox were acked, so decode them — the listeners are gone,
			// the backlog is bounded, and dropping acked bytes here
			// would lose segments the shard drain could still commit.
			select {
			case d, ok := <-ss.inbox:
				if !ok {
					return 0, io.EOF
				}
				ss.cur, ss.curOff = d, headerSize
			default:
				return 0, errShutdown
			}
		}
	}
}

// checkHeader cross-checks the in-band stream header against the
// hello's: the sink was opened with the hello's parameters, so a
// diverging stream would silently land segments under the wrong
// contract.
func (ss *session) checkHeader(dec *encode.Decoder) error {
	h := ss.hdr
	if dec.Dim() != h.dim || dec.Constant() != h.constant || dec.MaxLag() != h.maxLag {
		return errors.New("udpingest: stream header does not match hello")
	}
	for i, e := range dec.Epsilon() {
		if e != h.eps[i] {
			return errors.New("udpingest: stream epsilon does not match hello")
		}
	}
	return nil
}

// run is the per-session decode goroutine: reassembled bytes → decoder
// → sink, then the commit barrier and the cached terminal reply.
func (ss *session) run() {
	s := ss.srv
	defer s.sessWG.Done()
	defer s.active.Add(-1)
	ss.idle = time.NewTimer(s.cfg.IdleTimeout)
	defer ss.idle.Stop()

	cr := encode.NewCountingReader(ss)
	var attributed int64
	dec, err := encode.NewDecoder(cr)
	if err == nil {
		err = ss.checkHeader(dec)
	}
	if err == nil {
		for {
			var seg core.Segment
			if seg, err = dec.Next(); err != nil {
				if err == io.EOF {
					err = nil
				}
				break
			}
			delta := cr.BytesRead() - attributed
			attributed = cr.BytesRead()
			ss.sink.Apply(seg, delta)
		}
	}
	tail := cr.BytesRead() - attributed
	if err != nil {
		ss.sink.Close(false, tail)
		s.logf("udpingest: session %x (%q): %v", ss.id, ss.name, err)
		ss.finish(makeAbort(ss.id, err.Error()))
		return
	}
	ack, cerr := ss.sink.Close(true, tail)
	if cerr != nil {
		s.logf("udpingest: session %x (%q): commit: %v", ss.id, ss.name, cerr)
		ss.finish(makeAbort(ss.id, "segments not durable: "+cerr.Error()))
		return
	}
	ss.mu.Lock()
	finalSeq := ss.finalSeq
	ss.mu.Unlock()
	ss.finish(makeCloseAck(ss.id, finalSeq, ack))
}

// finish marks the session done, releases every buffered datagram, and
// sends (and caches, for closeReq retransmits) the terminal reply.
func (ss *session) finish(pkt []byte) {
	if ss.cur.bp != nil {
		pktPool.Put(ss.cur.bp)
		ss.cur = dgram{}
	}
	ss.mu.Lock()
	ss.done = true
	ss.doneAt = time.Now()
	ss.finalPkt = pkt
	if !ss.inboxClosed {
		close(ss.inbox)
		ss.inboxClosed = true
	}
	// No deliverLocked can run past the done flag; drain what is left.
	for {
		d, ok := <-ss.inbox
		if !ok {
			break
		}
		pktPool.Put(d.bp)
	}
	for seq, d := range ss.reorder {
		delete(ss.reorder, seq)
		pktPool.Put(d.bp)
	}
	conn, raddr := ss.conn, ss.raddr
	ss.mu.Unlock()
	if conn != nil && raddr.IsValid() {
		conn.sendTo(pkt, raddr)
	}
}

// reaper sweeps finished sessions after their closeAck-retransmit grace
// period.
func (s *Server) reaper() {
	defer s.lnWG.Done()
	t := time.NewTicker(doneTTL / 2)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			return
		case <-t.C:
			now := time.Now()
			for i := range s.table {
				ts := &s.table[i]
				ts.mu.Lock()
				for sid, sess := range ts.m {
					sess.mu.Lock()
					dead := sess.done && now.Sub(sess.doneAt) > doneTTL
					sess.mu.Unlock()
					if dead {
						delete(ts.m, sid)
					}
				}
				ts.mu.Unlock()
			}
		}
	}
}
