//go:build !linux

package udpingest

import "net"

// Without SO_REUSEPORT the server falls back to a single listener
// socket; everything above the socket layer is unchanged.
func reuseportOK() bool { return false }

func listenConfig() net.ListenConfig { return net.ListenConfig{} }
