package udpingest

import (
	"bytes"
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"syscall"
	"time"

	"github.com/pla-go/pla/internal/core"
	"github.com/pla-go/pla/internal/encode"
	"github.com/pla-go/pla/internal/transport"
)

// ErrClosed reports use of a closed client.
var ErrClosed = errors.New("udpingest: client closed")

const (
	clientWindow    = 256 // in-flight datagrams before Write blocks on acks
	retransmitBurst = 64  // go-back-N resend span per timeout
	rtoInit         = 20 * time.Millisecond
	rtoMax          = time.Second
	helloTries      = 10
	closeTries      = 24
	maxRTOStreak    = 30 // consecutive silent timeouts before giving up mid-stream
)

// aLongTimeAgo forces an immediate deadline for non-blocking drains.
var aLongTimeAgo = time.Unix(1, 0)

// Client is the sensor side of a datagram ingest session: the same
// local filter + transmitter as the TCP client, writing the encode
// stream into seq-numbered datagrams with a go-back-N window. It is
// owned by one goroutine.
type Client struct {
	conn   net.Conn
	tx     *transport.Transmitter
	dw     *dgramWriter
	closed bool
}

// Dial connects to a plad UDP ingest endpoint and negotiates a session
// for series name through filter f.
func Dial(addr, name string, f core.Filter) (*Client, error) {
	conn, err := net.Dial("udp", addr)
	if err != nil {
		return nil, err
	}
	c, err := NewClient(conn, name, f)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// NewClient negotiates a session over an existing connected socket
// (net.Dial("udp", ...), or any net.Conn-shaped wrapper — tests
// interpose lossy ones). The hello datagram carries the series name and
// the serialized stream header (ε, filter kind, max-lag — the same
// negotiation as TCP), retransmitted until the server acks or rejects
// it. NewClient takes ownership of conn only on success via Close.
func NewClient(conn net.Conn, name string, f core.Filter) (*Client, error) {
	var sidb [8]byte
	if _, err := crand.Read(sidb[:]); err != nil {
		return nil, err
	}
	sid := binary.LittleEndian.Uint64(sidb[:])

	// Serialize the negotiated stream header into the hello payload.
	var hb bytes.Buffer
	enc, err := encode.NewEncoderHeader(&hb, transport.HeaderFor(f))
	if err != nil {
		return nil, err
	}
	if err := enc.Flush(); err != nil {
		return nil, err
	}
	hello := make([]byte, headerSize, headerSize+8+len(name)+hb.Len())
	putHeader(hello, header{typ: typeHello, sid: sid})
	hello = appendUvarint(hello, uint64(len(name)))
	hello = append(hello, name...)
	hello = append(hello, hb.Bytes()...)
	if len(hello) > MaxDatagram {
		return nil, fmt.Errorf("udpingest: hello for %q exceeds one datagram", name)
	}

	dw := &dgramWriter{c: conn, sid: sid, nextSeq: 1, base: 1, rto: rtoInit, rbuf: make([]byte, 2048)}
	if err := dw.handshake(hello); err != nil {
		return nil, err
	}
	tx, err := transport.NewTransmitter(dw, f)
	if err != nil {
		return nil, err
	}
	c := &Client{conn: conn, tx: tx, dw: dw}
	// Push the stream header out now so the server's decode goroutine
	// starts its session clock with bytes in hand.
	if err := dw.flush(); err != nil {
		return nil, err
	}
	return c, nil
}

// Send consumes one sample; finalized segments ship immediately.
func (c *Client) Send(p core.Point) error {
	if c.closed {
		return ErrClosed
	}
	if err := c.tx.Send(p); err != nil {
		return err
	}
	return c.dw.flush()
}

// SendBatch consumes a batch of samples with one datagram flush.
func (c *Client) SendBatch(ps []core.Point) error {
	if c.closed {
		return ErrClosed
	}
	if err := c.tx.SendBatch(ps); err != nil {
		return err
	}
	return c.dw.flush()
}

// Flush ships a provisional receiver update on lag-bounded streams (see
// the TCP client's Flush), pushes any partial datagram out, and waits
// until every datagram sent so far is acknowledged. A TCP Flush hands
// the bytes to a reliable stream; the datagram equivalent of that
// promise is an ack barrier — after a nil Flush, nothing sent so far
// can be lost to the wire.
func (c *Client) Flush() error {
	if c.closed {
		return ErrClosed
	}
	if err := c.tx.FlushPending(); err != nil {
		return err
	}
	return c.dw.barrier()
}

// Stats exposes the local filter's counters.
func (c *Client) Stats() core.Stats { return c.tx.Stats() }

// BytesSent returns datagram bytes put on the wire so far — headers and
// retransmissions included, the session's actual traffic.
func (c *Client) BytesSent() int64 { return c.dw.wire }

// Close finishes the filter, ships the terminator, waits for every
// datagram to be acked and exchanges closeReq/closeAck: a nil error
// means every acked segment is applied (and durable, per the server's
// policy) in the archive.
func (c *Client) Close() (Ack, error) {
	if c.closed {
		return Ack{}, ErrClosed
	}
	c.closed = true
	defer c.conn.Close()
	if err := c.tx.Close(); err != nil {
		return Ack{}, err
	}
	return c.dw.close()
}

// dgramWriter packs the encode byte stream into data datagrams and runs
// the client half of the reliability protocol: window, cumulative acks,
// RTO with exponential backoff, go-back-N retransmission.
type dgramWriter struct {
	c       net.Conn
	sid     uint64
	nextSeq uint32                // seq the next sealed datagram takes
	base    uint32                // lowest unacked seq
	win     [clientWindow][]byte  // sealed, unacked datagrams
	winbp   [clientWindow]*[]byte // their pooled backing buffers
	cur     []byte                // datagram under construction
	curbp   *[]byte
	rto     time.Duration
	streak  int   // consecutive silent RTO expiries
	wire    int64 // bytes written to the socket, retransmits included
	rbuf    []byte
	ackBuf  []byte // closeAck seen early, replayed by close()
	refused int    // consecutive ECONNREFUSED reads
	err     error  // sticky session-fatal error
}

// refusedLimit bounds how many consecutive ICMP port-unreachable
// replies the client tolerates before declaring the server gone. The
// session state is server-memory only, so once the port is closed the
// session can never complete; retrying past a couple of refusals (one
// could be a stale ICMP from a rebind) only burns the caller's time.
const refusedLimit = 3

// fatalRefused folds one socket error into the refusal streak, setting
// the sticky error when the streak proves the server's port is closed.
// Non-refusal errors leave the streak alone — the kernel hands the
// pending ICMP error to whichever syscall comes first, so a refusal
// consumed by a write is routinely followed by a read timing out, and
// only a successful read (the server speaking) clears the streak.
func (dw *dgramWriter) fatalRefused(err error) bool {
	if !errors.Is(err, syscall.ECONNREFUSED) {
		return false
	}
	dw.refused++
	if dw.refused >= refusedLimit {
		dw.err = fmt.Errorf("udpingest: %w (server gone)", err)
		return true
	}
	return false
}

// Write implements io.Writer for the transmitter's buffered encoder:
// bytes land in the current datagram, full datagrams are sealed and
// transmitted, and a full window blocks on acks.
func (dw *dgramWriter) Write(p []byte) (int, error) {
	if dw.err != nil {
		return 0, dw.err
	}
	total := len(p)
	for len(p) > 0 {
		if dw.cur == nil {
			dw.curbp = pktPool.Get().(*[]byte)
			dw.cur = (*dw.curbp)[:headerSize]
		}
		n := copy(dw.cur[len(dw.cur):MaxDatagram], p)
		dw.cur = dw.cur[:len(dw.cur)+n]
		p = p[n:]
		if len(dw.cur) == MaxDatagram {
			if err := dw.seal(0); err != nil {
				return total - len(p), err
			}
		}
	}
	return total, nil
}

// flush seals any partial datagram with an ack request — the batch
// boundary — and opportunistically drains pending acks.
func (dw *dgramWriter) flush() error {
	if dw.err != nil {
		return dw.err
	}
	if len(dw.cur) > headerSize {
		if err := dw.seal(flagAckReq); err != nil {
			return err
		}
	}
	dw.poll()
	return dw.err
}

// barrier flushes and then blocks until the window is empty: every
// sealed datagram acked, retransmitting as needed.
func (dw *dgramWriter) barrier() error {
	if err := dw.flush(); err != nil {
		return err
	}
	for dw.base != dw.nextSeq {
		if err := dw.await(); err != nil {
			return err
		}
	}
	return nil
}

// seal stamps the current datagram with the next seq, waits for window
// space, stores it for retransmission and transmits it.
func (dw *dgramWriter) seal(flags byte) error {
	for dw.nextSeq-dw.base >= clientWindow {
		if err := dw.await(); err != nil {
			return err
		}
	}
	seq := dw.nextSeq
	dw.nextSeq++
	putHeader(dw.cur, header{typ: typeData, flags: flags, sid: dw.sid, seq: seq})
	i := (seq - 1) % clientWindow
	dw.win[i], dw.winbp[i] = dw.cur, dw.curbp
	dw.cur, dw.curbp = nil, nil
	dw.xmit(seq)
	return nil
}

func (dw *dgramWriter) xmit(seq uint32) {
	b := dw.win[(seq-1)%clientWindow]
	if b == nil {
		return
	}
	// A UDP write error is either transient (surfaces as a missing ack)
	// or the pending ICMP port-unreachable from an earlier datagram —
	// the latter must feed the refusal streak, because consuming it
	// here would otherwise hide it from every read.
	n, err := dw.c.Write(b)
	if err != nil {
		dw.fatalRefused(err)
	}
	dw.wire += int64(n)
}

// await blocks until acks make progress or the RTO expires, in which
// case it retransmits go-back-N and backs off.
func (dw *dgramWriter) await() error {
	if dw.err != nil {
		return dw.err
	}
	deadline := time.Now().Add(dw.rto)
	for {
		dw.c.SetReadDeadline(deadline)
		n, err := dw.c.Read(dw.rbuf)
		if err != nil {
			if ne, ok := err.(net.Error); ok && ne.Timeout() {
				dw.streak++
				if dw.streak > maxRTOStreak {
					dw.err = fmt.Errorf("udpingest: server unresponsive after %d retransmissions", dw.streak)
					return dw.err
				}
				dw.retransmit()
				if dw.rto *= 2; dw.rto > rtoMax {
					dw.rto = rtoMax
				}
				return nil
			}
			if dw.fatalRefused(err) {
				return dw.err
			}
			// Transient socket errors count against the streak like
			// silence.
			dw.streak++
			if dw.streak > maxRTOStreak {
				dw.err = fmt.Errorf("udpingest: %w", err)
				return dw.err
			}
			time.Sleep(dw.rto)
			return nil
		}
		dw.refused = 0
		if dw.handle(dw.rbuf[:n]) {
			return dw.err
		}
	}
}

// poll drains already-arrived control datagrams without blocking.
func (dw *dgramWriter) poll() {
	for dw.err == nil {
		dw.c.SetReadDeadline(aLongTimeAgo)
		n, err := dw.c.Read(dw.rbuf)
		if err != nil {
			return
		}
		// The server spoke: any refusals still queued on the socket are
		// stale (a restart's ICMP backlog), not evidence it is down.
		// Without this reset, refusals read here would accumulate across
		// polls and a healthy session could be killed by pre-restart
		// errors the next time a read surfaces one.
		dw.refused = 0
		dw.handle(dw.rbuf[:n])
	}
}

// handle processes one server datagram, reporting whether it made
// progress (acks advanced, terminal state reached, or a fatal error).
func (dw *dgramWriter) handle(b []byte) bool {
	h, ok := parseHeader(b)
	if !ok || h.sid != dw.sid {
		return false
	}
	switch h.typ {
	case typeAck:
		return dw.ackTo(h.seq)
	case typeCloseAck:
		dw.ackBuf = append(dw.ackBuf[:0], b...)
		return true
	case typeAbort:
		dw.err = fmt.Errorf("udpingest: server aborted session: %s", parseMessage(b[headerSize:]))
		return true
	}
	return false
}

// ackTo releases every window slot the cumulative ack covers.
func (dw *dgramWriter) ackTo(cum uint32) bool {
	if cum >= dw.nextSeq {
		cum = dw.nextSeq - 1
	}
	progressed := false
	for dw.base <= cum {
		i := (dw.base - 1) % clientWindow
		if dw.winbp[i] != nil {
			pktPool.Put(dw.winbp[i])
			dw.win[i], dw.winbp[i] = nil, nil
		}
		dw.base++
		progressed = true
	}
	if progressed {
		dw.rto = rtoInit
		dw.streak = 0
		// A successful ack also clears the refused streak: the peer that
		// acked is alive, whatever stale ICMP errors the socket holds.
		dw.refused = 0
	}
	return progressed
}

// retransmit resends go-back-N from the window base, forcing an ack
// request on the last datagram of the burst.
func (dw *dgramWriter) retransmit() {
	end := dw.nextSeq
	if end > dw.base+retransmitBurst {
		end = dw.base + retransmitBurst
	}
	for seq := dw.base; seq < end; seq++ {
		if b := dw.win[(seq-1)%clientWindow]; b != nil && seq == end-1 {
			b[5] |= flagAckReq
		}
		dw.xmit(seq)
	}
}

// handshake retransmits the hello until the server acks, rejects or the
// attempts run out.
func (dw *dgramWriter) handshake(hello []byte) error {
	rto := rtoInit
	for try := 0; try < helloTries; try++ {
		if n, err := dw.c.Write(hello); err == nil {
			dw.wire += int64(n)
		}
		deadline := time.Now().Add(rto)
		for {
			dw.c.SetReadDeadline(deadline)
			n, err := dw.c.Read(dw.rbuf)
			if err != nil {
				if dw.fatalRefused(err) {
					return dw.err
				}
				break // timeout or transient: retransmit the hello
			}
			dw.refused = 0
			h, ok := parseHeader(dw.rbuf[:n])
			if !ok || h.sid != dw.sid {
				continue
			}
			switch h.typ {
			case typeHelloAck:
				p := dw.rbuf[headerSize:n]
				if len(p) >= 1 && p[0] == statusOK {
					return nil
				}
				if len(p) >= 2 {
					return fmt.Errorf("udpingest: rejected: %s", parseMessage(p[1:]))
				}
				return errors.New("udpingest: malformed hello ack")
			case typeAbort:
				return fmt.Errorf("udpingest: server aborted session: %s", parseMessage(dw.rbuf[headerSize:n]))
			}
		}
		if rto *= 2; rto > rtoMax {
			rto = rtoMax
		}
	}
	return fmt.Errorf("udpingest: no hello ack after %d attempts", helloTries)
}

// close seals the tail, drives the window empty, and exchanges
// closeReq/closeAck.
func (dw *dgramWriter) close() (Ack, error) {
	if dw.err != nil {
		return Ack{}, dw.err
	}
	if len(dw.cur) > headerSize {
		if err := dw.seal(flagAckReq); err != nil {
			return Ack{}, err
		}
	}
	finalSeq := dw.nextSeq - 1
	var creq [headerSize]byte
	putHeader(creq[:], header{typ: typeCloseReq, sid: dw.sid, seq: finalSeq})
	rto := dw.rto
	for try := 0; try < closeTries; try++ {
		if try > 0 && dw.base <= finalSeq {
			dw.retransmit()
		}
		n, werr := dw.c.Write(creq[:])
		dw.wire += int64(n)
		if werr != nil && dw.fatalRefused(werr) {
			return Ack{}, dw.err
		}
		if dw.err != nil {
			return Ack{}, dw.err
		}
		deadline := time.Now().Add(rto)
		for dw.err == nil {
			if len(dw.ackBuf) > 0 {
				if a, ok := parseCloseAck(dw.ackBuf[headerSize:]); ok {
					return a, nil
				}
				dw.ackBuf = dw.ackBuf[:0]
			}
			dw.c.SetReadDeadline(deadline)
			n, err := dw.c.Read(dw.rbuf)
			if err != nil {
				if dw.fatalRefused(err) {
					return Ack{}, dw.err
				}
				break // timeout: resend closeReq (and any unacked tail)
			}
			dw.refused = 0
			dw.handle(dw.rbuf[:n])
		}
		if dw.err != nil {
			return Ack{}, dw.err
		}
		if rto *= 2; rto > rtoMax {
			rto = rtoMax
		}
	}
	return Ack{}, fmt.Errorf("udpingest: close: no acknowledgement after %d attempts", closeTries)
}
