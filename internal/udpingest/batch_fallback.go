//go:build !(linux && (amd64 || arm64))

package udpingest

import "net"

// Portable batcher: one ReadFromUDPAddrPort / WriteToUDPAddrPort per
// datagram. Both calls are allocation-free in the standard library, so
// the hot path stays zero-alloc here too; only the per-syscall batching
// is lost.
type batcher struct{}

func (b *batcher) init(*net.UDPConn) error { return nil }

func (b *batcher) recv(c *net.UDPConn, ps []packet) (int, error) {
	n, from, err := c.ReadFromUDPAddrPort(*ps[0].bp)
	if err != nil {
		return 0, err
	}
	ps[0].n, ps[0].from = n, from
	return 1, nil
}

func (b *batcher) sendAcks(c *net.UDPConn, a *ackBatch) {
	for i := 0; i < a.n; i++ {
		c.WriteToUDPAddrPort(a.bufs[i][:], a.dsts[i])
	}
}
