//go:build linux && amd64

package udpingest

// sendmmsg's syscall number postdates the frozen stdlib syscall tables
// on amd64 (recvmmsg made it in, sendmmsg did not).
const sysSendmmsg = 307
