package udpingest

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/pla-go/pla/internal/core"
	"github.com/pla-go/pla/internal/encode"
)

// memSink collects every session's segments in memory.
type memSink struct {
	mu       sync.Mutex
	sessions map[string]*memSession
	openErr  error
}

type memSession struct {
	sink *memSink
	name string
	segs []core.Segment
	wire int64
	done bool
}

func newMemSink() *memSink { return &memSink{sessions: make(map[string]*memSession)} }

func (m *memSink) Open(name string, dec *encode.Decoder) (SessionSink, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.openErr != nil {
		return nil, m.openErr
	}
	if dec.Dim() != len(dec.Epsilon()) {
		return nil, errors.New("inconsistent header")
	}
	s := &memSession{sink: m, name: name}
	m.sessions[name] = s
	return s, nil
}

func (m *memSink) get(name string) *memSession {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.sessions[name]
}

func (s *memSession) Apply(seg core.Segment, wire int64) {
	s.sink.mu.Lock()
	s.segs = append(s.segs, seg)
	s.wire += wire
	s.sink.mu.Unlock()
}

func (s *memSession) Close(commit bool, tail int64) (Ack, error) {
	s.sink.mu.Lock()
	defer s.sink.mu.Unlock()
	s.wire += tail
	s.done = commit
	return Ack{Applied: int64(len(s.segs))}, nil
}

// signal produces a poorly-compressible random walk so a session spans
// many datagrams.
func signal(n int, seed int64) []core.Point {
	rng := rand.New(rand.NewSource(seed))
	ps := make([]core.Point, n)
	v := 0.0
	for i := range ps {
		v += rng.Float64()*2 - 1
		ps[i] = core.Point{T: float64(i), X: []float64{v}}
	}
	return ps
}

// expectedSegments runs the same filter locally — what a lossless
// transport must deliver.
func expectedSegments(t *testing.T, ps []core.Point, mk func() core.Filter) []core.Segment {
	t.Helper()
	f := mk()
	var segs []core.Segment
	for _, p := range ps {
		out, err := f.Push(p)
		if err != nil {
			t.Fatal(err)
		}
		segs = append(segs, out...)
	}
	out, err := f.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return append(segs, out...)
}

func segsEqual(a, b []core.Segment) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		x, y := a[i], b[i]
		if x.T0 != y.T0 || x.T1 != y.T1 || x.Connected != y.Connected ||
			x.Points != y.Points || x.Provisional != y.Provisional {
			return false
		}
		for d := range x.X0 {
			if x.X0[d] != y.X0[d] || x.X1[d] != y.X1[d] {
				return false
			}
		}
	}
	return true
}

func TestRoundTrip(t *testing.T) {
	sink := newMemSink()
	srv, err := Listen("127.0.0.1:0", sink, Config{Listeners: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ps := signal(5000, 1)
	mk := func() core.Filter {
		f, err := core.NewSwing([]float64{0.05})
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	want := expectedSegments(t, ps, mk)

	c, err := Dial(srv.Addr().String(), "udp-rt", mk())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SendBatch(ps); err != nil {
		t.Fatal(err)
	}
	ack, err := c.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ack.Applied != int64(len(want)) {
		t.Fatalf("ack.Applied = %d, want %d", ack.Applied, len(want))
	}
	got := sink.get("udp-rt")
	if got == nil || !got.done {
		t.Fatal("session not committed")
	}
	if !segsEqual(got.segs, want) {
		t.Fatalf("segment mismatch: got %d segments, want %d", len(got.segs), len(want))
	}
	if got.wire <= 0 {
		t.Fatal("no wire bytes attributed")
	}
	m := srv.Metrics()
	if m.Datagrams == 0 || m.Sessions != 1 {
		t.Fatalf("metrics = %+v", m)
	}
}

func TestRoundTripConcurrentSessions(t *testing.T) {
	sink := newMemSink()
	srv, err := Listen("127.0.0.1:0", sink, Config{Listeners: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	const sessions = 8
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ps := signal(2000, int64(i+10))
			f, err := core.NewSwing([]float64{0.05})
			if err != nil {
				errs <- err
				return
			}
			c, err := Dial(srv.Addr().String(), fmt.Sprintf("udp-conc-%d", i), f)
			if err != nil {
				errs <- err
				return
			}
			if err := c.SendBatch(ps); err != nil {
				errs <- err
				return
			}
			if _, err := c.Close(); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	for i := 0; i < sessions; i++ {
		name := fmt.Sprintf("udp-conc-%d", i)
		s := sink.get(name)
		if s == nil || !s.done {
			t.Fatalf("session %s not committed", name)
		}
		want := expectedSegments(t, signal(2000, int64(i+10)), func() core.Filter {
			f, _ := core.NewSwing([]float64{0.05})
			return f
		})
		if !segsEqual(s.segs, want) {
			t.Fatalf("session %s: segment mismatch (%d vs %d)", name, len(s.segs), len(want))
		}
	}
}

func TestHelloRejected(t *testing.T) {
	sink := newMemSink()
	sink.openErr = errors.New("no room")
	srv, err := Listen("127.0.0.1:0", sink, Config{Listeners: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	f, _ := core.NewSwing([]float64{0.5})
	_, err = Dial(srv.Addr().String(), "nope", f)
	if err == nil || !contains(err.Error(), "no room") {
		t.Fatalf("Dial error = %v, want rejection carrying the sink's message", err)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 ||
		func() bool {
			for i := 0; i+len(sub) <= len(s); i++ {
				if s[i:i+len(sub)] == sub {
					return true
				}
			}
			return false
		}())
}

// chaosConn mangles the client→server direction: datagrams are dropped,
// duplicated and delayed (reordered) at the given per-mille rates.
// Server→client control traffic passes through so the test exercises
// the data path's window, not the handshake's patience.
type chaosConn struct {
	net.Conn
	mu      sync.Mutex
	rng     *rand.Rand
	drop    int // per-mille
	dup     int
	delay   int
	held    [][]byte
	mangled int
}

func (c *chaosConn) Write(b []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	roll := c.rng.Intn(1000)
	switch {
	case roll < c.drop:
		c.mangled++
		return len(b), nil // vanished
	case roll < c.drop+c.dup:
		c.mangled++
		c.Conn.Write(b)
		c.Conn.Write(b)
		return len(b), nil
	case roll < c.drop+c.dup+c.delay:
		c.mangled++
		c.held = append(c.held, append([]byte(nil), b...))
		return len(b), nil
	}
	n, err := c.Conn.Write(b)
	// Release held datagrams after the one that overtook them.
	for _, h := range c.held {
		c.Conn.Write(h)
	}
	c.held = c.held[:0]
	return n, err
}

func TestTortureLossyDupReorder(t *testing.T) {
	sink := newMemSink()
	srv, err := Listen("127.0.0.1:0", sink, Config{Listeners: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	ps := signal(8000, 7)
	mk := func() core.Filter {
		f, err := core.NewSwing([]float64{0.02})
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	want := expectedSegments(t, ps, mk)

	raw, err := net.Dial("udp", srv.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	chaos := &chaosConn{Conn: raw, rng: rand.New(rand.NewSource(42)), drop: 100, dup: 100, delay: 150}
	c, err := NewClient(chaos, "udp-torture", mk())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(ps); i += 500 {
		end := i + 500
		if end > len(ps) {
			end = len(ps)
		}
		if err := c.SendBatch(ps[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	ack, err := c.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ack.Applied != int64(len(want)) {
		t.Fatalf("ack.Applied = %d, want %d", ack.Applied, len(want))
	}
	s := sink.get("udp-torture")
	if s == nil || !s.done {
		t.Fatal("session not committed")
	}
	if !segsEqual(s.segs, want) {
		t.Fatalf("torture run diverged: %d segments, want %d", len(s.segs), len(want))
	}
	if chaos.mangled == 0 {
		t.Fatal("chaos conn mangled nothing; the test exercised a clean path")
	}
	m := srv.Metrics()
	if m.Dups == 0 {
		t.Fatalf("expected duplicate datagrams to be counted, metrics = %+v", m)
	}
	t.Logf("mangled %d writes; server metrics %+v", chaos.mangled, m)
}

func TestServerCloseAbortsSessions(t *testing.T) {
	sink := newMemSink()
	srv, err := Listen("127.0.0.1:0", sink, Config{Listeners: 1})
	if err != nil {
		t.Fatal(err)
	}
	f, _ := core.NewSwing([]float64{0.05})
	c, err := Dial(srv.Addr().String(), "udp-abort", f)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SendBatch(signal(1000, 3)); err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return; a session held it open")
	}
	s := sink.get("udp-abort")
	if s == nil {
		t.Fatal("session never opened")
	}
	if s.done {
		t.Fatal("aborted session reported as committed")
	}
	if _, err := c.Close(); err == nil {
		t.Fatal("client Close succeeded against a closed server")
	}
}

func TestIdleSessionAborts(t *testing.T) {
	sink := newMemSink()
	srv, err := Listen("127.0.0.1:0", sink, Config{Listeners: 1, IdleTimeout: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	f, _ := core.NewSwing([]float64{0.05})
	c, err := Dial(srv.Addr().String(), "udp-idle", f)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SendBatch(signal(500, 4)); err != nil {
		t.Fatal(err)
	}
	// Vanish without closing; the server must reap the session.
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if srv.Metrics().Active == 0 {
			s := sink.get("udp-idle")
			if s == nil {
				t.Fatal("session never opened")
			}
			if s.done {
				t.Fatal("idle-aborted session reported as committed")
			}
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatal("idle session was never aborted")
}

func TestHeaderPackParse(t *testing.T) {
	var b [headerSize]byte
	in := header{typ: typeData, flags: flagAckReq, sid: 0xdeadbeefcafef00d, seq: 12345}
	putHeader(b[:], in)
	out, ok := parseHeader(b[:])
	if !ok || out != in {
		t.Fatalf("parse(put(%+v)) = %+v, %v", in, out, ok)
	}
	if _, ok := parseHeader(b[:headerSize-1]); ok {
		t.Fatal("short buffer parsed")
	}
	b[0] = 'X'
	if _, ok := parseHeader(b[:]); ok {
		t.Fatal("bad magic parsed")
	}
}

func TestCloseAckRoundTrip(t *testing.T) {
	a := Ack{Applied: 123456, Rejected: 7, Dropped: 89}
	pkt := makeCloseAck(9, 42, a)
	h, ok := parseHeader(pkt)
	if !ok || h.typ != typeCloseAck || h.sid != 9 || h.seq != 42 {
		t.Fatalf("header %+v, %v", h, ok)
	}
	got, ok := parseCloseAck(pkt[headerSize:])
	if !ok || got != a {
		t.Fatalf("parseCloseAck = %+v, %v", got, ok)
	}
}

func BenchmarkHeaderPackParseZeroAlloc(b *testing.B) {
	var buf [MaxDatagram]byte
	h := header{typ: typeData, flags: flagAckReq, sid: 0x0123456789abcdef}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.seq = uint32(i)
		putHeader(buf[:], h)
		out, ok := parseHeader(buf[:])
		if !ok || out.seq != h.seq {
			b.Fatal("round trip failed")
		}
	}
}
