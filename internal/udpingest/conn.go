package udpingest

import (
	"net"
	"net/netip"
	"sync"
	"time"
)

// recvBatch is how many datagrams one listener pass receives (and how
// many acks it can batch back). On Linux the whole batch is one
// recvmmsg syscall; elsewhere the batcher degrades to one datagram per
// pass.
const recvBatch = 32

// pktPool recycles MaxDatagram-sized receive/transmit buffers across
// every listener, session and client in the process. Buffers move by
// ownership transfer (listener → reorder window → inbox → decoder, or
// client window slot → ack release), so the steady-state hot path
// allocates nothing.
var pktPool = sync.Pool{New: func() any {
	b := make([]byte, MaxDatagram)
	return &b
}}

// packet is one received datagram: a pooled buffer, the byte count, and
// the sender.
type packet struct {
	bp   *[]byte
	n    int
	from netip.AddrPort
}

// ackBatch collects the acks one receive pass produces so they go out
// in a single sendmmsg where the platform has it.
type ackBatch struct {
	n    int
	bufs [recvBatch][headerSize]byte
	dsts [recvBatch]netip.AddrPort
}

func (a *ackBatch) reset() { a.n = 0 }

func (a *ackBatch) add(sid uint64, cum uint32, to netip.AddrPort) {
	if a.n == len(a.bufs) {
		return // cannot happen: at most one ack per received datagram
	}
	putHeader(a.bufs[a.n][:], header{typ: typeAck, sid: sid, seq: cum})
	a.dsts[a.n] = to
	a.n++
}

// lconn is one listener socket plus its platform batching state. recv
// and ack batching state is owned by the listener's read loop; sendTo
// is safe from any goroutine (sessions reply on the listener that last
// heard from their client).
type lconn struct {
	c         *net.UDPConn
	lastAbort time.Time // abort-reply rate limit, read-loop-owned
	bt        batcher
}

func newLconn(c *net.UDPConn) (*lconn, error) {
	lc := &lconn{c: c}
	if err := lc.bt.init(c); err != nil {
		return nil, err
	}
	return lc, nil
}

// recvBatch fills ps with up to recvBatch datagrams, blocking until at
// least one arrives.
func (lc *lconn) recvBatch(ps []packet) (int, error) { return lc.bt.recv(lc.c, ps) }

// sendTo writes one datagram; errors are the network's problem (the
// client retransmits).
func (lc *lconn) sendTo(b []byte, to netip.AddrPort) {
	lc.c.WriteToUDPAddrPort(b, to)
}

// sendAcks flushes the pass's ack batch.
func (lc *lconn) sendAcks(a *ackBatch) { lc.bt.sendAcks(lc.c, a) }
