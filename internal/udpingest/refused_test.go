package udpingest

import (
	"encoding/binary"
	"net"
	"syscall"
	"testing"
	"time"
)

// makeAckDgram packs a cumulative server ack for the given session.
func makeAckDgram(sid uint64, cum uint32) []byte {
	b := make([]byte, headerSize)
	putHeader(b, header{typ: typeAck, sid: sid, seq: cum})
	return b
}

// TestRefusedStreakResetByAck is the 3-strike regression: a successful
// cumulative ack proves the peer is alive, so it must clear the refusal
// streak — stale ICMP port-unreachable errors queued on the socket from
// a server restart would otherwise accumulate across reads and kill a
// healthy session on the third one, however far apart they were.
func TestRefusedStreakResetByAck(t *testing.T) {
	dw := &dgramWriter{sid: 7, nextSeq: 3, base: 1, rto: rtoInit, streak: 2}
	dw.refused = refusedLimit - 1 // one refusal short of fatal
	if !dw.ackTo(2) {
		t.Fatal("cumulative ack made no progress")
	}
	if dw.refused != 0 {
		t.Fatalf("refused streak %d after a successful ack, want 0", dw.refused)
	}
	if dw.streak != 0 || dw.rto != rtoInit {
		t.Fatalf("RTO state (streak %d, rto %v) not reset by the ack", dw.streak, dw.rto)
	}
	// The very next refusals start a fresh streak: two more must still
	// be tolerated before the sticky error trips.
	for i := 0; i < refusedLimit-1; i++ {
		if dw.fatalRefused(syscall.ECONNREFUSED) {
			t.Fatalf("session declared dead after %d post-ack refusals", i+1)
		}
	}
	if !dw.fatalRefused(syscall.ECONNREFUSED) {
		t.Fatal("a full fresh streak did not trip the sticky error")
	}
}

// TestRefusedStreakOnlyCountsRefusals pins what feeds the streak:
// timeouts and other transient errors leave it alone.
func TestRefusedStreakOnlyCountsRefusals(t *testing.T) {
	dw := &dgramWriter{sid: 1, nextSeq: 1, base: 1, rto: rtoInit}
	if dw.fatalRefused(syscall.ECONNRESET) {
		t.Fatal("non-refusal error declared the server gone")
	}
	if dw.refused != 0 {
		t.Fatalf("non-refusal error bumped the streak to %d", dw.refused)
	}
	for i := 0; i < refusedLimit-1; i++ {
		if dw.fatalRefused(syscall.ECONNREFUSED) {
			t.Fatalf("fatal after only %d refusals", i+1)
		}
	}
	if dw.err != nil {
		t.Fatalf("sticky error set early: %v", dw.err)
	}
	if !dw.fatalRefused(syscall.ECONNREFUSED) || dw.err == nil {
		t.Fatal("refusedLimit consecutive refusals did not kill the session")
	}
}

// refusedScriptConn plays a fixed sequence of read outcomes: each entry
// is either an error to return or a datagram to deliver.
type refusedScriptConn struct {
	net.Conn // nil; only the methods below are used
	script   []any
	writes   int
}

func (c *refusedScriptConn) Read(b []byte) (int, error) {
	if len(c.script) == 0 {
		return 0, &net.OpError{Op: "read", Err: timeoutErr{}}
	}
	next := c.script[0]
	c.script = c.script[1:]
	if err, ok := next.(error); ok {
		return 0, err
	}
	return copy(b, next.([]byte)), nil
}

func (c *refusedScriptConn) Write(b []byte) (int, error)     { c.writes++; return len(b), nil }
func (c *refusedScriptConn) SetReadDeadline(time.Time) error { return nil }

type timeoutErr struct{}

func (timeoutErr) Error() string   { return "i/o timeout" }
func (timeoutErr) Timeout() bool   { return true }
func (timeoutErr) Temporary() bool { return true }

// TestAwaitSurvivesInterleavedRefusals drives the real await loop over a
// socket whose reads interleave stale refusals with live acks. With the
// reset in place the session absorbs 2×(refusedLimit−1) refusals; without
// it the accumulated streak would go fatal on the third read.
func TestAwaitSurvivesInterleavedRefusals(t *testing.T) {
	const sid = 42
	refuse := &net.OpError{Op: "read", Err: syscall.ECONNREFUSED}
	conn := &refusedScriptConn{script: []any{
		refuse, refuse, // streak at refusedLimit-1
		makeAckDgram(sid, 1), // server alive: streak must reset
		refuse, refuse,       // a fresh pair, still tolerable
		makeAckDgram(sid, 2),
	}}
	dw := &dgramWriter{c: conn, sid: sid, nextSeq: 3, base: 1, rto: rtoInit, rbuf: make([]byte, 2048)}
	for dw.base != dw.nextSeq {
		if err := dw.await(); err != nil {
			t.Fatalf("await failed on stale refusals a live server interleaved: %v", err)
		}
	}
	if dw.refused != 0 {
		t.Fatalf("refused streak %d at the end of a healthy drain", dw.refused)
	}
	if dw.err != nil {
		t.Fatalf("sticky error on a session the server kept acking: %v", dw.err)
	}
}

// TestAckDgramShape guards the test's own fixture against header drift.
func TestAckDgramShape(t *testing.T) {
	b := makeAckDgram(9, 5)
	h, ok := parseHeader(b)
	if !ok || h.typ != typeAck || h.sid != 9 || h.seq != 5 {
		t.Fatalf("parseHeader(%v) = %+v %v", b, h, ok)
	}
	if binary.LittleEndian.Uint32(b[16:20]) != 5 {
		t.Fatal("seq field moved")
	}
}
