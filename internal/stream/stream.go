// Package stream provides the plumbing around the filters: CSV
// serialisation of points and segments, and a transmitter/receiver
// simulation that measures how far the receiver lags behind the
// transmitter — the quantity the paper bounds with m_max_lag.
package stream

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"strconv"

	"github.com/pla-go/pla/internal/core"
)

// ErrCSV reports a malformed CSV stream.
var ErrCSV = errors.New("stream: malformed csv")

// WritePoints writes pts as CSV rows "t,x1,...,xd".
func WritePoints(w io.Writer, pts []core.Point) error {
	cw := csv.NewWriter(w)
	rec := make([]string, 0, 8)
	for _, p := range pts {
		rec = rec[:0]
		rec = append(rec, formatFloat(p.T))
		for _, x := range p.X {
			rec = append(rec, formatFloat(x))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadPoints parses CSV rows "t,x1,...,xd" into points. All rows must
// share one dimensionality.
func ReadPoints(r io.Reader) ([]core.Point, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	var pts []core.Point
	dim := -1
	for line := 1; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return pts, nil
		}
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCSV, err)
		}
		if len(rec) < 2 {
			return nil, fmt.Errorf("%w: row %d has %d fields, need ≥ 2", ErrCSV, line, len(rec))
		}
		if dim == -1 {
			dim = len(rec) - 1
		} else if len(rec)-1 != dim {
			return nil, fmt.Errorf("%w: row %d has %d dims, want %d", ErrCSV, line, len(rec)-1, dim)
		}
		t, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return nil, fmt.Errorf("%w: row %d time: %v", ErrCSV, line, err)
		}
		x := make([]float64, dim)
		for i := 0; i < dim; i++ {
			if x[i], err = strconv.ParseFloat(rec[i+1], 64); err != nil {
				return nil, fmt.Errorf("%w: row %d dim %d: %v", ErrCSV, line, i, err)
			}
		}
		pts = append(pts, core.Point{T: t, X: x})
	}
}

// WriteSegments writes segments as CSV rows
// "t0,t1,connected,x0_1..x0_d,x1_1..x1_d".
func WriteSegments(w io.Writer, segs []core.Segment) error {
	cw := csv.NewWriter(w)
	var rec []string
	for _, s := range segs {
		rec = rec[:0]
		rec = append(rec, formatFloat(s.T0), formatFloat(s.T1), strconv.FormatBool(s.Connected))
		for _, x := range s.X0 {
			rec = append(rec, formatFloat(x))
		}
		for _, x := range s.X1 {
			rec = append(rec, formatFloat(x))
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadSegments parses the output of WriteSegments.
func ReadSegments(r io.Reader) ([]core.Segment, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	var segs []core.Segment
	dim := -1
	for line := 1; ; line++ {
		rec, err := cr.Read()
		if err == io.EOF {
			return segs, nil
		}
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrCSV, err)
		}
		if len(rec) < 5 || (len(rec)-3)%2 != 0 {
			return nil, fmt.Errorf("%w: row %d has %d fields", ErrCSV, line, len(rec))
		}
		d := (len(rec) - 3) / 2
		if dim == -1 {
			dim = d
		} else if d != dim {
			return nil, fmt.Errorf("%w: row %d has %d dims, want %d", ErrCSV, line, d, dim)
		}
		var s core.Segment
		if s.T0, err = strconv.ParseFloat(rec[0], 64); err != nil {
			return nil, fmt.Errorf("%w: row %d t0: %v", ErrCSV, line, err)
		}
		if s.T1, err = strconv.ParseFloat(rec[1], 64); err != nil {
			return nil, fmt.Errorf("%w: row %d t1: %v", ErrCSV, line, err)
		}
		if s.Connected, err = strconv.ParseBool(rec[2]); err != nil {
			return nil, fmt.Errorf("%w: row %d connected: %v", ErrCSV, line, err)
		}
		s.X0 = make([]float64, d)
		s.X1 = make([]float64, d)
		for i := 0; i < d; i++ {
			if s.X0[i], err = strconv.ParseFloat(rec[3+i], 64); err != nil {
				return nil, fmt.Errorf("%w: row %d x0[%d]: %v", ErrCSV, line, i, err)
			}
			if s.X1[i], err = strconv.ParseFloat(rec[3+d+i], 64); err != nil {
				return nil, fmt.Errorf("%w: row %d x1[%d]: %v", ErrCSV, line, i, err)
			}
		}
		segs = append(segs, s)
	}
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// LagReport describes the receiver's view of a filtered stream.
type LagReport struct {
	// MaxPoints is the largest number of points the transmitter processed
	// between two consecutive receiver updates (segment emissions or lag
	// flushes). This is the operational quantity m_max_lag bounds.
	MaxPoints int
	// MeanPoints is the mean update spacing in points.
	MeanPoints float64
	// Updates is the number of receiver updates observed.
	Updates int
}

// lagModer is implemented by filters that can ride an announced line
// after an m_max_lag flush (swing and slide). While the filter is in that
// state the receiver's model already covers each arriving point, so no
// lag accrues.
type lagModer interface{ InLagMode() bool }

// MeasureLag runs signal through f and measures the spacing, in data
// points, between consecutive receiver updates. A receiver update is a
// segment emission from Push or a max-lag flush (detected via the
// filter's LagFlushes counter). Points arriving while the filter rides an
// already-announced line count as immediately delivered: the receiver's
// predictive model covers them, which is exactly the paper's argument for
// why a flushed filter stops lagging (Section 3.3).
func MeasureLag(f core.Filter, signal []core.Point) (LagReport, error) {
	var rep LagReport
	sinceUpdate := 0
	totalGap := 0
	flushes := 0
	lm, canRide := f.(lagModer)
	for _, p := range signal {
		riding := canRide && lm.InLagMode()
		sinceUpdate++
		segs, err := f.Push(p)
		if err != nil {
			return rep, err
		}
		updated := len(segs) > 0
		if lf := f.Stats().LagFlushes; lf > flushes {
			flushes = lf
			updated = true
		}
		switch {
		case updated:
			if sinceUpdate > rep.MaxPoints {
				rep.MaxPoints = sinceUpdate
			}
			totalGap += sinceUpdate
			rep.Updates++
			sinceUpdate = 0
		case riding && canRide && lm.InLagMode():
			// Covered by the announced line; delivered instantly.
			sinceUpdate--
		}
	}
	final, err := f.Finish()
	if err != nil {
		return rep, err
	}
	if sinceUpdate > 0 || len(final) > 0 {
		if sinceUpdate > rep.MaxPoints {
			rep.MaxPoints = sinceUpdate
		}
		totalGap += sinceUpdate
		rep.Updates++
	}
	if rep.Updates > 0 {
		rep.MeanPoints = float64(totalGap) / float64(rep.Updates)
	}
	return rep, nil
}
