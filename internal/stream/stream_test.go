package stream

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"github.com/pla-go/pla/internal/core"
	"github.com/pla-go/pla/internal/gen"
)

func TestPointsRoundTrip(t *testing.T) {
	pts := []core.Point{
		{T: 0, X: []float64{1.5, -2}},
		{T: 0.25, X: []float64{3, 4.125}},
		{T: 7, X: []float64{-0.001, 9e10}},
	}
	var buf bytes.Buffer
	if err := WritePoints(&buf, pts); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPoints(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(pts) {
		t.Fatalf("got %d points", len(got))
	}
	for i := range pts {
		if got[i].T != pts[i].T || got[i].X[0] != pts[i].X[0] || got[i].X[1] != pts[i].X[1] {
			t.Fatalf("point %d: %+v != %+v", i, got[i], pts[i])
		}
	}
}

func TestReadPointsErrors(t *testing.T) {
	cases := []string{
		"1\n",          // too few fields
		"a,2\n",        // bad time
		"1,b\n",        // bad value
		"1,2\n3,4,5\n", // inconsistent dims
	}
	for _, c := range cases {
		if _, err := ReadPoints(strings.NewReader(c)); !errors.Is(err, ErrCSV) {
			t.Fatalf("input %q: err = %v, want ErrCSV", c, err)
		}
	}
	got, err := ReadPoints(strings.NewReader(""))
	if err != nil || len(got) != 0 {
		t.Fatalf("empty input: %v, %v", got, err)
	}
}

func TestSegmentsRoundTrip(t *testing.T) {
	segs := []core.Segment{
		{T0: 0, T1: 2, X0: []float64{1}, X1: []float64{2}, Connected: false},
		{T0: 2, T1: 4, X0: []float64{2}, X1: []float64{0}, Connected: true},
	}
	var buf bytes.Buffer
	if err := WriteSegments(&buf, segs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSegments(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || !got[1].Connected || got[1].X0[0] != 2 || got[0].X1[0] != 2 {
		t.Fatalf("got %+v", got)
	}
}

func TestReadSegmentsErrors(t *testing.T) {
	cases := []string{
		"1,2,true\n",                       // no values
		"1,2,notabool,3,4\n",               // bad flag
		"a,2,true,3,4\n",                   // bad t0
		"1,2,true,3,4,5\n",                 // odd value count
		"1,2,true,3,4\n1,2,true,3,4,5,6\n", // inconsistent dims
	}
	for _, c := range cases {
		if _, err := ReadSegments(strings.NewReader(c)); !errors.Is(err, ErrCSV) {
			t.Fatalf("input %q: err = %v, want ErrCSV", c, err)
		}
	}
}

func TestMeasureLagUnbounded(t *testing.T) {
	// A long line: unbounded swing makes one giant interval, so the max
	// gap is nearly the whole stream.
	var signal []core.Point
	for i := 0; i < 400; i++ {
		signal = append(signal, core.Point{T: float64(i), X: []float64{float64(i)}})
	}
	f, _ := core.NewSwing([]float64{1})
	rep, err := MeasureLag(f, signal)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxPoints < 390 {
		t.Fatalf("unbounded max gap = %d, want ≈400", rep.MaxPoints)
	}
}

func TestMeasureLagBounded(t *testing.T) {
	var signal []core.Point
	for i := 0; i < 400; i++ {
		signal = append(signal, core.Point{T: float64(i), X: []float64{float64(i)}})
	}
	f, _ := core.NewSwing([]float64{1}, core.WithSwingMaxLag(25))
	rep, err := MeasureLag(f, signal)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxPoints > 25 {
		t.Fatalf("bounded max gap = %d exceeds m_max_lag=25", rep.MaxPoints)
	}
	if rep.Updates < 2 {
		t.Fatalf("updates = %d", rep.Updates)
	}
}

func TestMeasureLagSlideBounded(t *testing.T) {
	signal := gen.SeaSurfaceTemperature()
	f, _ := core.NewSlide([]float64{0.4}, core.WithSlideMaxLag(60))
	rep, err := MeasureLag(f, signal)
	if err != nil {
		t.Fatal(err)
	}
	// The slide filter decides segment k's line within the bound, but the
	// segment object itself is emitted one boundary later; the observable
	// update spacing is therefore bounded by one interval span, which the
	// flush keeps ≤ m_max_lag.
	if rep.MaxPoints > 2*60 {
		t.Fatalf("bounded slide max gap = %d, want ≤ 120", rep.MaxPoints)
	}
	if rep.MeanPoints <= 0 {
		t.Fatalf("mean gap = %v", rep.MeanPoints)
	}
}
