package server

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sync"

	"github.com/pla-go/pla/internal/core"
	"github.com/pla-go/pla/internal/encode"
	"github.com/pla-go/pla/internal/transport"
)

// AdaptiveClient is the retune-capable sensor side of an ingest session:
// it advertises the retune capability in the handshake, and — when the
// server acknowledges it — accepts live renegotiation frames (widen ε,
// start decimating every k-th point) that it applies between sends,
// degrading precision instead of losing data when the server is
// overloaded. Against an older server it behaves exactly like a plain
// Client: no opRetune record ever reaches the wire before the server
// acks the capability.
//
// Like Client, one goroutine owns Send/SendBatch/Flush/Close; the
// renegotiation listener runs internally.
type AdaptiveClient struct {
	conn    io.ReadWriteCloser
	br      *bufio.Reader
	tx      *transport.Transmitter
	cw      *encode.CountingWriter
	closed  bool
	capable bool // server acknowledged the retune capability

	// The listener goroutine only parks incoming renegotiations here;
	// the owning goroutine applies them at its next send, so the filter
	// and transmitter stay single-goroutine.
	mu         sync.Mutex
	pendEps    []float64
	pendStride int
	pendGen    int
	appliedGen int
	retunes    int

	ackCh chan ackResult // the listener's terminal delivery
}

type ackResult struct {
	ack Ack
	err error
}

// DialAdaptive connects to a plad server and opens a retune-capable
// ingest session writing series name through a filter built from spec.
// The spec (not a prebuilt filter) is required because renegotiation
// rebuilds the filter at new precisions.
func DialAdaptive(addr, name string, spec FilterSpec) (*AdaptiveClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c, err := NewAdaptiveClient(conn, name, spec)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// NewAdaptiveClient opens a retune-capable ingest session over an
// existing connection. It blocks until the server accepts or rejects
// the handshake.
func NewAdaptiveClient(conn io.ReadWriteCloser, name string, spec FilterSpec) (*AdaptiveClient, error) {
	f, err := spec.NewFilter()
	if err != nil {
		return nil, err
	}
	refit := func(eps []float64) (core.Filter, error) {
		s2 := spec
		s2.Epsilon = eps
		return s2.NewFilter()
	}
	cw := encode.NewCountingWriter(conn)
	if err := writeHandshake(cw, magicIngest, name); err != nil {
		return nil, err
	}
	tx, err := transport.NewAdaptiveTransmitter(encode.NewFrameWriter(cw), f, refit)
	if err != nil {
		return nil, err
	}
	c := &AdaptiveClient{conn: conn, br: bufio.NewReader(conn), tx: tx, cw: cw,
		ackCh: make(chan ackResult, 1)}
	b, err := c.br.ReadByte()
	if err != nil {
		return nil, fmt.Errorf("%w: missing status: %v", ErrProtocol, err)
	}
	switch b {
	case statusOK:
		// An older server: the session runs at the handshake contract
		// and the only thing it will ever send back is the final ack.
	case statusRetune:
		c.capable = true
		tx.AllowRetune()
		go c.listen()
	case statusErr:
		return nil, readErrBody(c.br)
	default:
		return nil, fmt.Errorf("%w: unknown status %#x", ErrProtocol, b)
	}
	return c, nil
}

// listen consumes the server's reverse channel: renegotiation frames are
// parked for the owning goroutine, and the final ack (or rejection)
// terminates the listener.
func (c *AdaptiveClient) listen() {
	for {
		b, err := c.br.ReadByte()
		if err != nil {
			c.ackCh <- ackResult{err: fmt.Errorf("%w: %v", ErrProtocol, err)}
			return
		}
		switch b {
		case statusRetune:
			eps, stride, err := readRetuneBody(c.br)
			if err != nil {
				c.ackCh <- ackResult{err: err}
				return
			}
			c.mu.Lock()
			c.pendEps, c.pendStride = eps, stride
			c.pendGen++
			c.mu.Unlock()
		case statusOK:
			a, err := readAckBody(c.br)
			c.ackCh <- ackResult{ack: a, err: err}
			return
		case statusErr:
			c.ackCh <- ackResult{err: readErrBody(c.br)}
			return
		default:
			c.ackCh <- ackResult{err: fmt.Errorf("%w: unknown status %#x", ErrProtocol, b)}
			return
		}
	}
}

// applyPending folds the newest parked renegotiation into the
// transmitter, on the owning goroutine.
func (c *AdaptiveClient) applyPending() error {
	c.mu.Lock()
	eps, stride, gen := c.pendEps, c.pendStride, c.pendGen
	c.mu.Unlock()
	if gen == c.appliedGen {
		return nil
	}
	c.appliedGen = gen
	c.retunes++
	return c.tx.Retune(eps, stride)
}

// Send consumes one sample, applying any renegotiation that arrived
// since the last call first.
func (c *AdaptiveClient) Send(p core.Point) error {
	if c.closed {
		return ErrClosed
	}
	if err := c.applyPending(); err != nil {
		return err
	}
	return c.tx.Send(p)
}

// SendBatch consumes a batch of samples with one wire flush.
func (c *AdaptiveClient) SendBatch(ps []core.Point) error {
	if c.closed {
		return ErrClosed
	}
	if err := c.applyPending(); err != nil {
		return err
	}
	return c.tx.SendBatch(ps)
}

// Flush ships a provisional receiver update on lag-bounded sessions;
// see Client.Flush.
func (c *AdaptiveClient) Flush() error {
	if c.closed {
		return ErrClosed
	}
	return c.tx.FlushPending()
}

// SetStride forces a local decimation stride (0 = off, k ≥ 2 = drop
// every k-th point ahead of the filter) without waiting for the server
// to ask — the manual shed knob for tools and tests. It is announced to
// the peer when the capability was acknowledged.
func (c *AdaptiveClient) SetStride(k int) error {
	if c.closed {
		return ErrClosed
	}
	return c.tx.SetStride(k)
}

// Capable reports whether the server acknowledged the retune capability.
func (c *AdaptiveClient) Capable() bool { return c.capable }

// Retunes returns how many server renegotiations the session applied.
func (c *AdaptiveClient) Retunes() int { return c.retunes }

// EffectiveEpsilon returns the honest per-dimension bound of everything
// sent: the widest ε the stream ran under plus the measured decimation
// deviation. Copy to retain.
func (c *AdaptiveClient) EffectiveEpsilon() []float64 { return c.tx.EffectiveEpsilon() }

// ShedPoints returns how many points the session decimated ahead of the
// filter, lifetime.
func (c *AdaptiveClient) ShedPoints() uint64 { return c.tx.ShedPoints() }

// Stride returns the decimation stride currently in force.
func (c *AdaptiveClient) Stride() int { return c.tx.Stride() }

// Stats exposes the local filter's counters.
func (c *AdaptiveClient) Stats() core.Stats { return c.tx.Stats() }

// BytesSent returns the bytes put on the wire so far (handshake and
// frame prefixes included).
func (c *AdaptiveClient) BytesSent() int64 { return c.cw.BytesWritten() }

// Close finishes the filter, ships the final segments and the stream
// terminator, and blocks for the server's acknowledgement.
func (c *AdaptiveClient) Close() (Ack, error) {
	if c.closed {
		return Ack{}, ErrClosed
	}
	c.closed = true
	defer c.conn.Close()
	if err := c.tx.Close(); err != nil {
		return Ack{}, err
	}
	if !c.capable {
		return readAck(c.br)
	}
	res := <-c.ackCh
	return res.ack, res.err
}
