package server

import (
	"context"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/pla-go/pla/internal/core"
	"github.com/pla-go/pla/internal/encode"
	"github.com/pla-go/pla/internal/gen"
	"github.com/pla-go/pla/internal/tsdb"
)

// BenchmarkServerIngest measures the full network ingest path: N
// concurrent clients filter a random walk locally and stream the
// finalized segments over loopback TCP into the sharded archive. One op
// is one complete round (clients × points), so ns/op tracks wall-clock
// per round and the reported metrics give per-point throughput.
func BenchmarkServerIngest(b *testing.B) {
	for _, clients := range []int{1, 8} {
		for _, points := range []int{2000, 10000} {
			b.Run(fmt.Sprintf("clients=%d/points=%d", clients, points), func(b *testing.B) {
				benchServerIngest(b, clients, points)
			})
		}
	}
}

func benchServerIngest(b *testing.B, clients, points int) {
	db := tsdb.New()
	s := New(db, Config{Shards: 8, QueueDepth: 4096})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go s.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()

	signals := make([][]core.Point, clients)
	for c := range signals {
		signals[c] = gen.RandomWalk(gen.WalkConfig{N: points, P: 0.5, MaxDelta: 0.4, Seed: uint64(c + 1)})
	}
	b.SetBytes(encode.RawSize(clients*points, 1)) // raw samples: t + x
	b.ResetTimer()
	var wireBytes int64
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		errs := make([]error, clients)
		bytes := make([]int64, clients)
		for c := 0; c < clients; c++ {
			wg.Add(1)
			go func(c int) {
				defer wg.Done()
				f, err := core.NewSwing([]float64{0.5})
				if err != nil {
					errs[c] = err
					return
				}
				cl, err := Dial(ln.Addr().String(), fmt.Sprintf("bench-%d-%d", i, c), f)
				if err != nil {
					errs[c] = err
					return
				}
				if err := cl.SendBatch(signals[c]); err != nil {
					errs[c] = err
					return
				}
				if _, err := cl.Close(); err != nil {
					errs[c] = err
				}
				bytes[c] = cl.BytesSent()
			}(c)
		}
		wg.Wait()
		for c, err := range errs {
			if err != nil {
				b.Fatalf("client %d: %v", c, err)
			}
			wireBytes += bytes[c]
		}
	}
	b.StopTimer()
	perRound := float64(clients * points)
	b.ReportMetric(perRound*float64(b.N)/b.Elapsed().Seconds(), "points/s")
	b.ReportMetric(float64(wireBytes)/float64(b.N), "wire_B/round")
}
