package server_test

// The benchmark lives in an external test package so it can share the
// concurrent-ingest driver (internal/loadgen, which imports server)
// with plabench -server-bench — one driver, so the Go benchmark and the
// JSON perf trajectory measure the same thing.

import (
	"context"
	"fmt"
	"net"
	"testing"
	"time"

	"github.com/pla-go/pla/internal/encode"
	"github.com/pla-go/pla/internal/loadgen"
	"github.com/pla-go/pla/internal/server"
	"github.com/pla-go/pla/internal/tsdb"
	"github.com/pla-go/pla/internal/wal"
)

// BenchmarkServerIngest measures the full network ingest path: N
// concurrent clients filter a random walk locally and stream the
// finalized segments over loopback TCP into the sharded archive. One op
// is one complete round (clients × points), so ns/op tracks wall-clock
// per round and the reported metrics give per-point throughput. The
// durable variants add the write-ahead log under each sync policy.
func BenchmarkServerIngest(b *testing.B) {
	for _, clients := range []int{1, 8} {
		for _, points := range []int{2000, 10000} {
			b.Run(fmt.Sprintf("clients=%d/points=%d", clients, points), func(b *testing.B) {
				benchServerIngest(b, clients, points, server.Config{Shards: 8, QueueDepth: 4096})
			})
		}
	}
	for _, sync := range []wal.SyncPolicy{wal.SyncInterval, wal.SyncAlways} {
		b.Run(fmt.Sprintf("clients=8/points=10000/sync=%s", sync), func(b *testing.B) {
			benchServerIngest(b, 8, 10000, server.Config{
				Shards: 8, QueueDepth: 4096, DataDir: b.TempDir(), Sync: sync,
			})
		})
	}
}

func benchServerIngest(b *testing.B, clients, points int, cfg server.Config) {
	db := tsdb.New()
	s, err := server.New(db, cfg)
	if err != nil {
		b.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go s.Serve(ln)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()

	signals := loadgen.Walks(clients, points)
	b.SetBytes(encode.RawSize(clients*points, 1)) // raw samples: t + x
	b.ResetTimer()
	var wireBytes int64
	for i := 0; i < b.N; i++ {
		res, err := loadgen.Round(ln.Addr().String(), fmt.Sprintf("bench-%d", i), signals)
		if err != nil {
			b.Fatal(err)
		}
		if res.Rejected != 0 || res.Dropped != 0 {
			b.Fatalf("round %d: %d rejected, %d dropped", i, res.Rejected, res.Dropped)
		}
		wireBytes += res.WireBytes
	}
	b.StopTimer()
	perRound := float64(clients * points)
	b.ReportMetric(perRound*float64(b.N)/b.Elapsed().Seconds(), "points/s")
	b.ReportMetric(float64(wireBytes)/float64(b.N), "wire_B/round")
}
