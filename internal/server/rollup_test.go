package server_test

import (
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/pla-go/pla/internal/core"
	"github.com/pla-go/pla/internal/gen"
	"github.com/pla-go/pla/internal/loadgen"
	"github.com/pla-go/pla/internal/server"
)

// withTiers configures the canonical rollup ladder used across these
// tests: 4× and 16× the ingest precision (loadgen.Epsilon).
func withTiers(cfg *server.Config) { cfg.RollupTiers = []int{4, 16} }

// checkContained asserts the tiered answer's band contains the
// base-precision answer — the differential guarantee bound-aware tier
// selection must keep whatever tier served the query.
func checkContained(t *testing.T, label string, base, tier server.AggValue) {
	t.Helper()
	tol := 1e-6 + 1e-9*math.Abs(base.Value)
	if base.Value < tier.Lo()-tol || base.Value > tier.Hi()+tol {
		t.Errorf("%s: base answer %v outside tier band [%v, %v] (bound %v)",
			label, base.Value, tier.Lo(), tier.Hi(), tier.Bound)
	}
}

// TestRollupTierDifferential is the acceptance test for bound-aware tier
// selection: randomized ranges and bounds over random-walk series, on
// both store backends, through a compaction sweep (which builds and
// extends the tiers) and a restart. For every trial the tiered AGG and
// QUANTILE answers' bands must contain the base-precision answers, and a
// coarse-bound query over the full range must read fewer segments than
// the base query it replaces.
func TestRollupTierDifferential(t *testing.T) {
	for _, backend := range []server.StoreBackend{server.BackendMem, server.BackendMmap} {
		backend := backend
		t.Run(backend.String(), func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			s, addr := startBackend(t, dir, backend, withTiers)

			const points = 4000
			signals := loadgen.Walks(3, points)

			// Two ingest phases with a compaction sweep after each: the
			// first sweep builds the tiers, the second extends them
			// incrementally past the old high-water mark.
			for k := 0; k < 2; k++ {
				part := make([][]core.Point, len(signals))
				for i, sig := range signals {
					mid := len(sig) / 2
					if k == 0 {
						part[i] = sig[:mid]
					} else {
						part[i] = sig[mid:]
					}
				}
				if res, err := loadgen.Round(addr, "walk", part); err != nil || res.Rejected != 0 || res.Dropped != 0 {
					t.Fatalf("ingest phase %d: %+v, %v", k, res, err)
				}
				if err := s.Compact(); err != nil {
					t.Fatal(err)
				}
			}
			if m := s.Metrics(); !m.RollupActive || m.RollupBuilds == 0 || m.RollupSegments == 0 {
				t.Fatalf("no rollup activity after sweeps: %+v", m)
			}

			trials := func(stage string) {
				q, err := server.DialQuery(addr)
				if err != nil {
					t.Fatal(err)
				}
				defer q.Close()

				// A coarse bound over the full range must be served from a
				// tier: far fewer contributing segments, honest wider bound.
				base, err := q.Agg("avg", "walk-0", 0, 0, points)
				if err != nil {
					t.Fatal(err)
				}
				coarse, err := q.AggBound("avg", "walk-0", 0, 0, points, 16*loadgen.Epsilon)
				if err != nil {
					t.Fatal(err)
				}
				if coarse.Segments*2 > base.Segments {
					t.Errorf("%s: coarse-bound AGG read %d segments vs base %d, want < half",
						stage, coarse.Segments, base.Segments)
				}
				checkContained(t, stage+" avg full-range", base, coarse)

				rng := gen.NewRNG(99)
				ops := []string{"min", "max", "avg", "sum", "count"}
				bounds := []float64{0, loadgen.Epsilon, 4 * loadgen.Epsilon, 16 * loadgen.Epsilon, 1000}
				for trial := 0; trial < 60; trial++ {
					series := fmt.Sprintf("walk-%d", trial%3)
					if trial%10 == 9 {
						series = "*"
					}
					t0 := rng.Float64() * points
					t1 := t0 + rng.Float64()*(points-t0)
					bound := bounds[trial%len(bounds)]
					op := ops[trial%len(ops)]
					label := fmt.Sprintf("%s trial %d: AGG %s %s [%v, %v] bound %v",
						stage, trial, op, series, t0, t1, bound)

					base, berr := q.Agg(op, series, 0, t0, t1)
					tier, terr := q.AggBound(op, series, 0, t0, t1, bound)
					if (berr == nil) != (terr == nil) {
						t.Fatalf("%s: base err %v vs tier err %v", label, berr, terr)
					}
					if berr != nil {
						continue // empty range: both paths agree there is no data
					}
					checkContained(t, label, base, tier)

					bq, berr := q.Quantiles(series, 0, t0, t1, 0, 0.25, 0.5, 0.9, 1)
					tq, terr := q.QuantilesBound(series, 0, t0, t1, bound, 0, 0.25, 0.5, 0.9, 1)
					if (berr == nil) != (terr == nil) {
						t.Fatalf("%s: quantile base err %v vs tier err %v", label, berr, terr)
					}
					if berr != nil {
						continue
					}
					for i := range bq {
						tol := 1e-6 + 1e-9*math.Abs(bq[i].Value)
						if bq[i].Value < tq[i].Lo-tol || bq[i].Value > tq[i].Hi+tol {
							t.Errorf("%s: q=%v base %v outside tier band [%v, %v]",
								label, bq[i].Q, bq[i].Value, tq[i].Lo, tq[i].Hi)
						}
					}
				}
			}
			trials("live")

			// Restart from the directory alone. The mmap backend reloads
			// its tiers from sealed extents; the mem backend rebuilds them
			// on the first sweep (snapshots never persist derived data).
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			err := s.Shutdown(ctx)
			cancel()
			if err != nil {
				t.Fatal(err)
			}
			s, addr = startBackend(t, dir, backend, withTiers)
			defer func() {
				ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
				s.Shutdown(ctx)
				cancel()
			}()
			if err := s.Compact(); err != nil {
				t.Fatal(err)
			}
			trials("restarted")
		})
	}
}

// TestBoundWireProtocol pins the BOUND grammar down at the wire level:
// trailing optional keyword, case-insensitive, rejected with a parse
// error when malformed, and harmless (base fallback) on a server with no
// tiers configured.
func TestBoundWireProtocol(t *testing.T) {
	dir := t.TempDir()
	s, addr := startBackend(t, dir, server.BackendMem, withTiers)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		s.Shutdown(ctx)
		cancel()
	}()
	signals := loadgen.Walks(1, 1000)
	if res, err := loadgen.Round(addr, "walk", signals); err != nil || res.Rejected != 0 {
		t.Fatalf("ingest: %+v, %v", res, err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}

	// The tier-served reply must differ from base only in its coverage
	// accounting and honest bound, and upper/lower case BOUND must parse
	// identically.
	upper := rawQuery(t, addr, []string{"AGG avg walk-0 0 0 1000 BOUND 8"})
	lower := rawQuery(t, addr, []string{"AGG avg walk-0 0 0 1000 bound 8"})
	if upper != lower {
		t.Errorf("BOUND keyword is case-sensitive:\n%q\n%q", upper, lower)
	}
	if strings.HasPrefix(upper, "ERR") {
		t.Fatalf("bound query failed: %q", upper)
	}

	for _, bad := range []string{
		"AGG avg walk-0 0 0 1000 BOUND nope",
		"AGG avg walk-0 0 0 1000 BOUND -1",
		"AGG avg walk-0 0 0 1000 BOUND NaN",
		"QUANTILE walk-0 0 0 1000 0.5 BOUND x",
		"SCAN walk-0 0 1000 BOUND x",
	} {
		if out := rawQuery(t, addr, []string{bad}); !strings.HasPrefix(out, "ERR") {
			t.Errorf("%q accepted: %q", bad, out)
		}
	}

	// A server with no ladder answers bound queries from base data.
	s2, addr2 := startBackend(t, t.TempDir(), server.BackendMem, nil)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		s2.Shutdown(ctx)
		cancel()
	}()
	if res, err := loadgen.Round(addr2, "walk", signals); err != nil || res.Rejected != 0 {
		t.Fatalf("ingest: %+v, %v", res, err)
	}
	with := rawQuery(t, addr2, []string{"AGG avg walk-0 0 0 1000 BOUND 50"})
	without := rawQuery(t, addr2, []string{"AGG avg walk-0 0 0 1000"})
	if with != without {
		t.Errorf("tierless server: bound answer differs from base:\n%q\n%q", with, without)
	}
}

// TestMetricNamesMatchScrape keeps MetricNames — the contract the
// operations documentation is checked against — honest: a fully-featured
// server (mmap backend, rollup ladder, TCP and UDP traffic, bound
// queries, a compaction sweep) is scraped and the distinct metric names
// encountered, in exposition order, must equal MetricNames exactly.
func TestMetricNamesMatchScrape(t *testing.T) {
	dir := t.TempDir()
	s, addr := startBackend(t, dir, server.BackendMmap, withTiers)
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		s.Shutdown(ctx)
		cancel()
	}()
	signals := loadgen.Walks(2, 600)
	if res, err := loadgen.Round(addr, "walk", signals); err != nil || res.Rejected != 0 {
		t.Fatalf("ingest: %+v, %v", res, err)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if out := rawQuery(t, addr, []string{"AGG avg walk-0 0 0 600 BOUND 8"}); strings.HasPrefix(out, "ERR") {
		t.Fatalf("bound query failed: %q", out)
	}

	web := httptest.NewServer(s.Handler())
	defer web.Close()
	resp, err := http.Get(web.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}

	var got []string
	seen := map[string]bool{}
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(name, "{ "); i >= 0 {
			name = name[:i]
		}
		if !seen[name] {
			seen[name] = true
			got = append(got, name)
		}
	}
	want := server.MetricNames()
	if len(got) != len(want) {
		t.Fatalf("scrape has %d metric names, MetricNames lists %d:\nscrape: %v\nlist:   %v",
			len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("metric %d: scrape %q, MetricNames %q", i, got[i], want[i])
		}
	}
}
