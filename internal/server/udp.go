package server

import (
	"fmt"
	"net"

	"github.com/pla-go/pla/internal/core"
	"github.com/pla-go/pla/internal/encode"
	"github.com/pla-go/pla/internal/tsdb"
	"github.com/pla-go/pla/internal/udpingest"
)

// ListenUDP starts the server's datagram ingest transport on addr with
// the given number of per-core SO_REUSEPORT listeners (0 means one per
// core). UDP sessions land in the same shard pool, write-ahead log and
// archive as TCP sessions; only the wire differs. The returned address
// carries the bound port when addr asked for ":0". One UDP endpoint per
// server; Shutdown drains it like any other listener.
func (s *Server) ListenUDP(addr string, listeners int) (net.Addr, error) {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return nil, ErrClosed
	}
	if s.udp != nil {
		s.mu.Unlock()
		return nil, fmt.Errorf("server: udp ingest already listening on %s", s.udp.Addr())
	}
	s.mu.Unlock()
	u, err := udpingest.Listen(addr, &udpSink{s: s}, udpingest.Config{
		Listeners: listeners,
		Logf:      s.cfg.Logf,
	})
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closing || s.udp != nil {
		s.mu.Unlock()
		u.Close()
		return nil, ErrClosed
	}
	s.udp = u
	s.mu.Unlock()
	return u.Addr(), nil
}

// UDPAddr returns the bound datagram ingest address, or nil when
// ListenUDP has not been called.
func (s *Server) UDPAddr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.udp == nil {
		return nil
	}
	return s.udp.Addr()
}

// udpSink adapts the server's shard pool to the udpingest transport: a
// session's hello opens a series exactly like a TCP handshake, and its
// decoded segments ride the same shard jobs.
type udpSink struct{ s *Server }

func (k *udpSink) Open(name string, dec *encode.Decoder) (udpingest.SessionSink, error) {
	s := k.s
	s.mu.Lock()
	closing := s.closing
	s.mu.Unlock()
	if closing {
		return nil, ErrClosed
	}
	if err := validateName(name); err != nil {
		return nil, err
	}
	series, _, err := s.db.GetOrCreate(name, dec.Epsilon(), dec.Constant())
	if err != nil {
		return nil, err
	}
	s.sessions.Add(1)
	s.udpSessions.Add(1)
	s.active.Add(1)
	sh := s.shards[shardIndex(name, len(s.shards))]
	sh.active.Add(1)
	us := &udpSession{s: s, sh: sh, series: series, sess: &ingestSession{}}
	if m := dec.MaxLag(); m > 0 {
		series.SetLagHint(m)
		sh.lagSessions.Add(1)
		us.lagged = true
	}
	return us, nil
}

// udpSession is one datagram session's shard binding. Apply runs on the
// session's decode goroutine, so per-series order into the shard queue
// is preserved just as it is for a TCP connection.
type udpSession struct {
	s      *Server
	sh     *shard
	series *tsdb.Series
	sess   *ingestSession
	lagged bool
}

func (u *udpSession) Apply(seg core.Segment, wire int64) {
	u.s.udpSegments.Add(1)
	u.sh.enqueue(job{sess: u.sess, series: u.series, seg: seg, bytes: wire}, u.s.cfg.Policy)
}

func (u *udpSession) Close(commit bool, tail int64) (udpingest.Ack, error) {
	defer func() {
		if u.lagged {
			u.sh.lagSessions.Add(-1)
		}
		u.sh.active.Add(-1)
		u.s.active.Add(-1)
	}()
	if !commit {
		// Abrupt end (idle timeout, shutdown, corrupt stream): whatever
		// reached the queue still drains; there is no one left to ack.
		return udpingest.Ack{}, nil
	}
	// Fence behind everything this session enqueued, exactly like the
	// TCP terminator: the barrier carries the trailing wire bytes and
	// brings back the WAL commit verdict.
	barrier := make(chan error, 1)
	u.sh.enqueue(job{barrier: barrier, bytes: tail}, Block)
	if err := <-barrier; err != nil {
		return udpingest.Ack{}, fmt.Errorf("wal commit failed: %v", err)
	}
	a := u.sess.ack()
	return udpingest.Ack{Applied: a.Applied, Rejected: a.Rejected, Dropped: a.Dropped}, nil
}

// Ingestor is the transport-independent ingest client: both the TCP
// Client and the udpingest client satisfy it, so callers pick a wire
// with DialTransport and stream the same way over either.
type Ingestor interface {
	Send(p core.Point) error
	SendBatch(ps []core.Point) error
	Flush() error
	Stats() core.Stats
	BytesSent() int64
	Close() (Ack, error)
}

// DialTransport connects an ingest session for name over the named
// transport: "tcp" (or "") for the framed stream protocol, "udp" for
// the datagram transport.
func DialTransport(transport, addr, name string, f core.Filter) (Ingestor, error) {
	switch transport {
	case "", "tcp":
		return Dial(addr, name, f)
	case "udp":
		c, err := udpingest.Dial(addr, name, f)
		if err != nil {
			return nil, err
		}
		return &udpIngestor{c: c}, nil
	default:
		return nil, fmt.Errorf("server: unknown ingest transport %q (want tcp or udp)", transport)
	}
}

// DialSpecTransport is DialTransport with the filter built from a spec,
// mirroring DialSpec.
func DialSpecTransport(transport, addr, name string, spec FilterSpec) (Ingestor, error) {
	f, err := spec.NewFilter()
	if err != nil {
		return nil, err
	}
	return DialTransport(transport, addr, name, f)
}

// udpIngestor narrows the udpingest client to the Ingestor interface,
// translating its ack type.
type udpIngestor struct{ c *udpingest.Client }

func (u *udpIngestor) Send(p core.Point) error         { return u.c.Send(p) }
func (u *udpIngestor) SendBatch(ps []core.Point) error { return u.c.SendBatch(ps) }
func (u *udpIngestor) Flush() error                    { return u.c.Flush() }
func (u *udpIngestor) Stats() core.Stats               { return u.c.Stats() }
func (u *udpIngestor) BytesSent() int64                { return u.c.BytesSent() }

func (u *udpIngestor) Close() (Ack, error) {
	a, err := u.c.Close()
	return Ack{Applied: a.Applied, Rejected: a.Rejected, Dropped: a.Dropped}, err
}
