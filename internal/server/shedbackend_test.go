package server_test

import (
	"context"
	"math"
	"strings"
	"testing"
	"time"

	"github.com/pla-go/pla/internal/loadgen"
	"github.com/pla-go/pla/internal/server"
)

// TestSampleShedBackendParity is the degraded-mode differential test:
// one decimating Sample-policy session runs against a mem-backed and an
// mmap-backed durable server, and the two must answer every query with
// identical bytes — through a compaction sweep and a restart — while
// the archived reconstruction honours the *reported* inflated ±ε, not
// the handshake contract the session renegotiated away.
func TestSampleShedBackendParity(t *testing.T) {
	const contract = 0.1
	type inst struct {
		s    *server.Server
		addr string
		dir  string
	}
	// A long retune period keeps the server's control loop out of the
	// run: the only degradation is the stride the test forces, so both
	// backends see byte-identical segment streams.
	tweak := func(cfg *server.Config) {
		cfg.Policy = server.Sample
		cfg.RetunePeriod = time.Hour
	}
	backends := []server.StoreBackend{server.BackendMem, server.BackendMmap}
	insts := make([]inst, len(backends))
	for i, b := range backends {
		dir := t.TempDir()
		s, addr := startBackend(t, dir, b, tweak)
		insts[i] = inst{s: s, addr: addr, dir: dir}
	}

	signal := loadgen.Walks(1, 800)[0]
	reported := make([]float64, len(insts))
	for i, in := range insts {
		c, err := server.DialAdaptive(in.addr, "shed", server.FilterSpec{
			Kind: "swing", Epsilon: []float64{contract},
		})
		if err != nil {
			t.Fatal(err)
		}
		for j, p := range signal {
			if j == 100 {
				if err := c.SetStride(2); err != nil {
					t.Fatal(err)
				}
			}
			if err := c.Send(p); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := c.Close(); err != nil {
			t.Fatal(err)
		}
		if c.ShedPoints() == 0 {
			t.Fatal("the forced stride shed nothing")
		}
		reported[i] = c.EffectiveEpsilon()[0]
	}
	if reported[0] != reported[1] {
		t.Fatalf("identical sessions reported different ε: %g vs %g", reported[0], reported[1])
	}
	if reported[0] <= contract {
		t.Fatalf("reported ε %g did not inflate over the contract", reported[0])
	}

	cmds := []string{
		"SERIES",
		"SCAN shed 0 100000",
		"AT shed 17.5",
		"AT shed 600",
		"MEAN shed 0 3 700",
		"MIN shed 0 3 700",
		"MAX shed 0 3 700",
		"LAG shed",
		"AGG min shed 0 0 100000",
		"AGG max shed 0 0 100000",
		"AGG avg shed 0 0 100000",
		"AGG sum shed 0 0 100000",
		"AGG count shed 0 0 100000",
		"QUANTILE shed 0 0 100000 0 0.25 0.5 0.9 1",
	}

	// checkBounds asserts, against the live archive, that every original
	// sample reconstructs within the session's reported inflated ε — the
	// honest-degradation contract queries advertise.
	checkBounds := func(stage string) {
		for _, in := range insts {
			sr, err := in.s.DB().Get("shed")
			if err != nil {
				t.Fatalf("%s: %v", stage, err)
			}
			qe := sr.QueryEpsilon()[0]
			if math.Abs(qe-reported[0]) > 1e-9 {
				t.Fatalf("%s (%s): query bound %g, want the reported %g", stage, in.dir, qe, reported[0])
			}
			for _, p := range signal {
				x, ok := sr.At(p.T)
				if !ok {
					t.Fatalf("%s (%s): no coverage at t=%v", stage, in.dir, p.T)
				}
				if e := math.Abs(x[0] - p.X[0]); e > qe+1e-9 {
					t.Fatalf("%s (%s): error %g at t=%v exceeds the reported bound %g", stage, in.dir, e, p.T, qe)
				}
			}
		}
	}
	compare := func(stage string) {
		want := rawQuery(t, insts[0].addr, cmds)
		got := rawQuery(t, insts[1].addr, cmds)
		if got != want {
			i := 0
			for i < len(got) && i < len(want) && got[i] == want[i] {
				i++
			}
			t.Fatalf("%s: responses diverge at byte %d:\nmem:  %q\nmmap: %q", stage, i, tail(want, i), tail(got, i))
		}
		if !strings.Contains(want, "shed") {
			t.Fatalf("%s: comparison ran against an empty archive:\n%s", stage, want)
		}
		checkBounds(stage)
	}
	compare("live")

	// A compaction sweep moves the mmap backend onto sealed extents; the
	// inflated bound and the parity must both survive it.
	for _, in := range insts {
		if err := in.s.Compact(); err != nil {
			t.Fatal(err)
		}
	}
	compare("compacted")

	// Restart both from their directories alone: the effective-ε control
	// series replays from the store and re-seeds the query bound.
	for i := range insts {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		if err := insts[i].s.Shutdown(ctx); err != nil {
			t.Fatal(err)
		}
		cancel()
		s, addr := startBackend(t, insts[i].dir, backends[i], tweak)
		insts[i].s, insts[i].addr = s, addr
	}
	defer func() {
		for _, in := range insts {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			in.s.Shutdown(ctx)
			cancel()
		}
	}()
	compare("restarted")
}

// tail clips s around byte i for a divergence report.
func tail(s string, i int) string {
	lo, hi := i-80, i+80
	if lo < 0 {
		lo = 0
	}
	if hi > len(s) {
		hi = len(s)
	}
	return s[lo:hi]
}
