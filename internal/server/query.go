package server

import (
	"bufio"
	"errors"
	"fmt"
	"math"
	"net"
	"strconv"
	"strings"

	"github.com/pla-go/pla/internal/query"
	"github.com/pla-go/pla/internal/tsdb"
)

// The query protocol is line oriented: one command per line, one
// response. Single-valued responses are one line, "OK ..." or "ERR ...";
// listing responses are an "OK" line, the items, and a lone "." line.
// Floats travel as strconv 'g'/-1 so they round-trip exactly.
//
//	SERIES                       → items "name dim constant segments points"
//	AT <series> <t>              → "OK v0 v1 ..." | "ERR no data ..."
//	MEAN <series> <dim> <t0> <t1> → "OK value eps covered segments stale"
//	MIN / MAX (same shape)       → "OK value eps covered segments stale"
//	AGG <op> <series|*> <dim> <t0> <t1> [BOUND <b>] → "OK value bound count segments windows stale"
//	QUANTILE <series|*> <dim> <t0> <t1> <q>... [BOUND <b>] → items "q value lo hi stale"
//	SCAN <series> <t0> <t1> [BOUND <b>] → items "t0 t1 connected points provisional x0... x1..."
//	LAG <series>                 → "OK consumed final pending stale bound"
//	METRICS                      → items "shard segments points rejected dropped bytes qlen qcap lagsess lagpts lagupd"
//	QUIT                         → "OK bye", connection closes
//
// The stale field of the aggregates is the series-level staleness at
// query time — how many consumed samples finalized coverage trails (see
// tsdb.Series.Staleness) — so a caller can tell a genuinely flat signal
// (stale ≈ 0 or bounded by the advertised m) from a lagging filter
// still sitting on an open interval. LAG breaks the same accounting
// out in full: samples consumed, finally covered, provisionally
// covered, the staleness, and the last advertised m_max_lag bound.
//
// AGG and QUANTILE are the segment-native pushdown commands
// (internal/query): they answer from precomputed per-window summaries
// plus closed-form edge segments — O(windows + edge segments), never
// O(points) — and accept "*" as the series to fold every series into
// one answer. AGG's op is min, max, avg, sum or count; the reply's
// bound field is the op's composed precision (±ε for min/max/avg,
// ±ε·count for sum, 0 for count), windows is how many summary blocks
// covered the range, and count is the number of original samples. Each
// QUANTILE row's [lo, hi] band is guaranteed to contain the true
// quantile of the original samples — rank uncertainty, sketch slack,
// and the ingest filter's ±ε are all composed in.
//
// The optional trailing BOUND argument on SCAN, AGG and QUANTILE
// declares the caller's acceptable per-sample error bound. When the
// server keeps rollup tiers (Config.RollupTiers) it answers from the
// coarsest tier whose precision fits inside the bound and whose
// coverage spans the queried range, reading far fewer segments;
// otherwise — and always without BOUND, whose default is the base ε —
// the base series answers. Either way the reply's bound field (and
// each quantile's [lo, hi] band) is composed from the data that
// actually answered, so it stays honest: a tier-served AGG carries the
// tier's ±m·ε plus an explicit slack for coarse segments only partially
// inside the range. BOUND 0 forces the base tier.
//
// Reply widening: the staleness extension appended fields to the
// aggregate replies (4 → 5), METRICS rows (8 → 11) and SCAN rows (the
// provisional flag). The bundled QueryClient accepts both the old and
// the new shapes, but query clients predating the extension need
// upgrading alongside the server — the line protocol carries no
// version for the server to key reply shapes on. The ingest protocol
// is unaffected (its compatibility runs through the PLA1/PLA2 encode
// handshake).
func (s *Server) serveQuery(conn net.Conn, br *bufio.Reader) {
	w := bufio.NewWriter(conn)
	sc := bufio.NewScanner(br)
	sc.Buffer(make([]byte, 0, 4096), 1<<16)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		args := strings.Fields(line)
		cmd := strings.ToUpper(args[0])
		if cmd == "QUIT" {
			fmt.Fprintln(w, "OK bye")
			w.Flush()
			return
		}
		s.query(w, cmd, args[1:])
		if w.Flush() != nil {
			return
		}
	}
	if err := sc.Err(); err != nil {
		// A read error or an over-long command line (Scanner ErrTooLong)
		// — surface it, or the session just looks hung-then-closed.
		s.logf("server: %s: query session: %v", conn.RemoteAddr(), err)
	}
}

func (s *Server) query(w *bufio.Writer, cmd string, args []string) {
	switch cmd {
	case "SERIES":
		fmt.Fprintln(w, "OK")
		for _, name := range s.db.Names() {
			if validateName(name) != nil {
				// A series created locally by an embedder with a name the
				// line protocol cannot carry (whitespace/control chars):
				// unaddressable here, and emitting it raw would corrupt
				// the listing for every field-splitting client.
				continue
			}
			sr, err := s.db.Get(name)
			if err != nil {
				continue // dropped between Names and Get
			}
			st := sr.Stats()
			fmt.Fprintf(w, "%s %d %s %d %d\n", name, st.Dim, boolWord(sr.Constant()), st.Segments, st.Points)
		}
		fmt.Fprintln(w, ".")
	case "METRICS":
		fmt.Fprintln(w, "OK")
		for _, sm := range s.Metrics().Shards {
			fmt.Fprintf(w, "%d %d %d %d %d %d %d %d %d %d %d\n",
				sm.Shard, sm.Segments, sm.Points, sm.Rejected, sm.Dropped, sm.Bytes, sm.QueueLen, sm.QueueCap,
				sm.LagSessions, sm.LagPoints, sm.LagUpdates)
		}
		fmt.Fprintln(w, ".")
	case "LAG":
		sr, _, err := s.queriedSeries(args, 0)
		if err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
			return
		}
		fmt.Fprintf(w, "OK %d %d %d %d %d\n",
			sr.Consumed(), sr.FinalPoints(), sr.PendingPoints(), sr.Staleness(), sr.LagHint())
	case "AT":
		sr, rest, err := s.queriedSeries(args, 1)
		if err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
			return
		}
		t, err := strconv.ParseFloat(rest[0], 64)
		if err != nil {
			fmt.Fprintf(w, "ERR bad time %q\n", rest[0])
			return
		}
		x, ok := sr.At(t)
		if !ok {
			fmt.Fprintf(w, "ERR no data at %v\n", t)
			return
		}
		fmt.Fprintf(w, "OK%s\n", floatsWord(x))
	case "MEAN", "MIN", "MAX":
		sr, rest, err := s.queriedSeries(args, 3)
		if err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
			return
		}
		dim, err := strconv.Atoi(rest[0])
		if err != nil {
			fmt.Fprintf(w, "ERR bad dim %q\n", rest[0])
			return
		}
		t0, err0 := strconv.ParseFloat(rest[1], 64)
		t1, err1 := strconv.ParseFloat(rest[2], 64)
		if err0 != nil || err1 != nil {
			fmt.Fprintf(w, "ERR bad range %q %q\n", rest[1], rest[2])
			return
		}
		var res tsdb.AggregateResult
		switch cmd {
		case "MEAN":
			res, err = sr.Mean(dim, t0, t1)
		case "MIN":
			res, err = sr.Min(dim, t0, t1)
		default:
			res, err = sr.Max(dim, t0, t1)
		}
		if err != nil {
			// The "no data" prefix is part of the protocol: clients map
			// it to ErrNoData, distinct from other rejections.
			if errors.Is(err, tsdb.ErrNoData) {
				fmt.Fprintf(w, "ERR no data in [%v, %v]\n", t0, t1)
			} else {
				fmt.Fprintf(w, "ERR %v\n", err)
			}
			return
		}
		fmt.Fprintf(w, "OK %s %s %s %d %d\n",
			floatWord(res.Value), floatWord(res.Epsilon), floatWord(res.Covered), res.Segments, sr.Staleness())
	case "AGG":
		args, bound, err := stripBound(args)
		if err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
			return
		}
		if len(args) != 5 {
			fmt.Fprintf(w, "ERR want AGG op series dim t0 t1 [BOUND b], got %d args\n", len(args))
			return
		}
		op := strings.ToLower(args[0])
		if !validAggOp(op) {
			fmt.Fprintf(w, "ERR unknown aggregate %q (want min, max, avg, sum or count)\n", args[0])
			return
		}
		dim, err := strconv.Atoi(args[2])
		if err != nil {
			fmt.Fprintf(w, "ERR bad dim %q\n", args[2])
			return
		}
		t0, err0 := strconv.ParseFloat(args[3], 64)
		t1, err1 := strconv.ParseFloat(args[4], 64)
		if err0 != nil || err1 != nil {
			fmt.Fprintf(w, "ERR bad range %q %q\n", args[3], args[4])
			return
		}
		res, err := s.engine.AggregateBound(args[1], dim, t0, t1, bound)
		if err != nil {
			if errors.Is(err, tsdb.ErrNoData) {
				fmt.Fprintf(w, "ERR no data in [%v, %v]\n", t0, t1)
			} else {
				fmt.Fprintf(w, "ERR %v\n", err)
			}
			return
		}
		val, bound := aggValue(res, op)
		fmt.Fprintf(w, "OK %s %s %d %d %d %d\n",
			floatWord(val), floatWord(bound), int64(res.Agg.Count), res.Agg.Segments,
			res.Stats.CachedWindows+res.Stats.BuiltWindows, res.Stale)
	case "QUANTILE":
		args, bound, err := stripBound(args)
		if err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
			return
		}
		if len(args) < 5 {
			fmt.Fprintf(w, "ERR want QUANTILE series dim t0 t1 q... [BOUND b], got %d args\n", len(args))
			return
		}
		dim, err := strconv.Atoi(args[1])
		if err != nil {
			fmt.Fprintf(w, "ERR bad dim %q\n", args[1])
			return
		}
		t0, err0 := strconv.ParseFloat(args[2], 64)
		t1, err1 := strconv.ParseFloat(args[3], 64)
		if err0 != nil || err1 != nil {
			fmt.Fprintf(w, "ERR bad range %q %q\n", args[2], args[3])
			return
		}
		qs := make([]float64, len(args[4:]))
		for i, a := range args[4:] {
			if qs[i], err = strconv.ParseFloat(a, 64); err != nil {
				fmt.Fprintf(w, "ERR bad quantile %q\n", a)
				return
			}
		}
		res, err := s.engine.QuantilesBound(args[0], dim, t0, t1, qs, bound)
		if err != nil {
			if errors.Is(err, tsdb.ErrNoData) {
				fmt.Fprintf(w, "ERR no data in [%v, %v]\n", t0, t1)
			} else {
				fmt.Fprintf(w, "ERR %v\n", err)
			}
			return
		}
		fmt.Fprintln(w, "OK")
		for _, ans := range res.Quantiles {
			fmt.Fprintf(w, "%s %s %s %s %d\n",
				floatWord(ans.Q), floatWord(ans.Value), floatWord(ans.Lo), floatWord(ans.Hi), res.Stale)
		}
		fmt.Fprintln(w, ".")
	case "SCAN":
		args, bound, err := stripBound(args)
		if err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
			return
		}
		sr, rest, err := s.queriedSeries(args, 2)
		if err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
			return
		}
		t0, err0 := strconv.ParseFloat(rest[0], 64)
		t1, err1 := strconv.ParseFloat(rest[1], 64)
		if err0 != nil || err1 != nil {
			fmt.Fprintf(w, "ERR bad range %q %q\n", rest[0], rest[1])
			return
		}
		// A scan has no single queried dimension, so a tier must satisfy
		// the bound in every one to stand in for the base.
		sr, _ = s.engine.TierFor(sr, -1, t0, t1, bound)
		segs, err := sr.Scan(t0, t1)
		if err != nil {
			fmt.Fprintf(w, "ERR %v\n", err)
			return
		}
		fmt.Fprintln(w, "OK")
		for _, seg := range segs {
			fmt.Fprintf(w, "%s %s %s %d %s%s%s\n",
				floatWord(seg.T0), floatWord(seg.T1), boolWord(seg.Connected), seg.Points,
				boolWord(seg.Provisional), floatsWord(seg.X0), floatsWord(seg.X1))
		}
		fmt.Fprintln(w, ".")
	default:
		fmt.Fprintf(w, "ERR unknown command %q\n", cmd)
	}
}

// queriedSeries resolves args[0] as a series name and checks that exactly
// want further arguments follow.
func (s *Server) queriedSeries(args []string, want int) (*tsdb.Series, []string, error) {
	if len(args) != want+1 {
		return nil, nil, fmt.Errorf("want series + %d args, got %d", want, len(args))
	}
	sr, err := s.db.Get(args[0])
	if err != nil {
		return nil, nil, err
	}
	return sr, args[1:], nil
}

// validAggOp reports whether op names an AGG statistic.
func validAggOp(op string) bool {
	switch op {
	case "min", "max", "avg", "sum", "count":
		return true
	}
	return false
}

// stripBound splits an optional trailing "BOUND <b>" pair off a query's
// argument list. Absent, the bound is 0 — base precision.
func stripBound(args []string) (rest []string, bound float64, err error) {
	n := len(args)
	if n < 2 || !strings.EqualFold(args[n-2], "BOUND") {
		return args, 0, nil
	}
	bound, err = strconv.ParseFloat(args[n-1], 64)
	if err != nil || math.IsNaN(bound) || bound < 0 {
		return nil, 0, fmt.Errorf("bad bound %q", args[n-1])
	}
	return args[:n-2], bound, nil
}

// aggValue extracts the requested statistic from a pushdown answer,
// along with its composed precision bound: min/max/avg carry the
// contributing series' worst per-sample ±ε, sum scales it by the sample
// count, and count is exact. A tier-served answer additionally absorbs
// the tier-edge slacks: partially covered coarse segments can shift up
// to CountSlack canonical samples across the range boundary (each worth
// at most the observed value range plus the precision width) and drift
// clipped chord endpoints by up to ValueSlack.
func aggValue(res query.AggResult, op string) (val, bound float64) {
	a := res.Agg
	cs, vs := float64(res.CountSlack), res.ValueSlack
	switch op {
	case "min":
		return a.Min, res.Epsilon + vs
	case "max":
		return a.Max, res.Epsilon + vs
	case "avg":
		bound = res.Epsilon + vs
		if cs > 0 && a.Count > 0 {
			bound += cs / a.Count * ((a.Max-a.Min)/2 + res.Epsilon + vs)
		}
		return a.Mean(), bound
	case "sum":
		bound = res.Epsilon * a.Count
		if cs > 0 {
			bound += cs * (math.Max(math.Abs(a.Min), math.Abs(a.Max)) + res.Epsilon + vs)
		}
		return a.Sum, bound
	default: // count
		return a.Count, cs
	}
}

func floatWord(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func floatsWord(x []float64) string {
	var b strings.Builder
	for _, v := range x {
		b.WriteByte(' ')
		b.WriteString(floatWord(v))
	}
	return b.String()
}

func boolWord(v bool) string {
	if v {
		return "1"
	}
	return "0"
}
