package server

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"strconv"
	"strings"

	"github.com/pla-go/pla/internal/core"
	"github.com/pla-go/pla/internal/encode"
	"github.com/pla-go/pla/internal/transport"
)

// Client is the sensor side of an ingest session: it runs the filter
// locally (only ε-bounded segments cross the wire) and streams finalized
// segments to the server. Like the transport.Transmitter it wraps, a
// Client is owned by one goroutine.
type Client struct {
	conn io.ReadWriteCloser
	br   *bufio.Reader
	tx   *transport.Transmitter
	// cw counts bytes below the framing layer — actual wire traffic,
	// unlike the transmitter's own counter which sits above the
	// frame-length prefixes and the handshake.
	cw     *encode.CountingWriter
	closed bool
}

// Dial connects to a plad server and opens an ingest session writing
// series name through filter f.
func Dial(addr, name string, f core.Filter) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	c, err := NewClient(conn, name, f)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// FilterSpec names a filter configuration, so callers (flags, config
// files, the load generator) can construct lag-bounded swing/slide
// filters without importing the filter constructors.
type FilterSpec struct {
	// Kind selects the filter family: "swing" (default when empty),
	// "slide" or "cache".
	Kind string
	// Epsilon is the per-dimension precision contract.
	Epsilon []float64
	// MaxLag bounds the receiver lag to m points (Sections 3.3, 4.3);
	// 0 leaves the filter unbounded. Sessions opened with a bound
	// advertise it in the handshake and ship provisional receiver
	// updates, so the server's archive never trails the sensor by m or
	// more points.
	MaxLag int
}

// NewFilter constructs the described filter.
func (fs FilterSpec) NewFilter() (core.Filter, error) {
	kind := fs.Kind
	if kind == "" {
		kind = "swing"
	}
	switch kind {
	case "swing":
		var opts []core.SwingOption
		if fs.MaxLag > 0 {
			opts = append(opts, core.WithSwingMaxLag(fs.MaxLag))
		}
		return core.NewSwing(fs.Epsilon, opts...)
	case "slide":
		var opts []core.SlideOption
		if fs.MaxLag > 0 {
			opts = append(opts, core.WithSlideMaxLag(fs.MaxLag))
		}
		return core.NewSlide(fs.Epsilon, opts...)
	case "cache":
		if fs.MaxLag > 0 {
			return nil, fmt.Errorf("%w: the cache filter has no max-lag variant", core.ErrMaxLag)
		}
		return core.NewCache(fs.Epsilon)
	default:
		return nil, fmt.Errorf("unknown filter kind %q (want swing, slide or cache)", fs.Kind)
	}
}

// DialSpec connects to a plad server and opens an ingest session through
// a filter built from spec — the by-name construction path for
// lag-bounded clients.
func DialSpec(addr, name string, spec FilterSpec) (*Client, error) {
	f, err := spec.NewFilter()
	if err != nil {
		return nil, err
	}
	return Dial(addr, name, f)
}

// NewClient opens an ingest session over an existing connection (a
// net.Pipe end in tests, a TLS wrapper in deployments). It blocks until
// the server accepts or rejects the handshake.
func NewClient(conn io.ReadWriteCloser, name string, f core.Filter) (*Client, error) {
	cw := encode.NewCountingWriter(conn)
	if err := writeHandshake(cw, magicIngest, name); err != nil {
		return nil, err
	}
	tx, err := transport.NewTransmitter(encode.NewFrameWriter(cw), f)
	if err != nil {
		return nil, err
	}
	br := bufio.NewReader(conn)
	if err := readStatus(br); err != nil {
		return nil, err
	}
	return &Client{conn: conn, br: br, tx: tx, cw: cw}, nil
}

// Send consumes one sample; finalized segments ship immediately.
func (c *Client) Send(p core.Point) error {
	if c.closed {
		return ErrClosed
	}
	return c.tx.Send(p)
}

// SendBatch consumes a batch of samples with one wire flush.
func (c *Client) SendBatch(ps []core.Point) error {
	if c.closed {
		return ErrClosed
	}
	return c.tx.SendBatch(ps)
}

// Flush ships a provisional receiver update covering every sample the
// filter has consumed that no shipped segment covers yet — the
// heartbeat that keeps the server's archive fresh when a lag-bounded
// stream goes quiet mid-interval (a sensor with nothing new to say
// would otherwise leave its last announcement's window open
// indefinitely). It is a no-op on sessions without a max-lag bound.
func (c *Client) Flush() error {
	if c.closed {
		return ErrClosed
	}
	return c.tx.FlushPending()
}

// Stats exposes the local filter's counters.
func (c *Client) Stats() core.Stats { return c.tx.Stats() }

// BytesSent returns the bytes put on the wire so far, handshake and
// frame prefixes included — the session's actual traffic, matching what
// the server's shard metrics attribute to it.
func (c *Client) BytesSent() int64 { return c.cw.BytesWritten() }

// Close finishes the filter, ships the final segments and the stream
// terminator, and blocks for the server's acknowledgement — when Close
// returns a nil error, every finalized segment the ack counts as applied
// is queryable in the archive.
func (c *Client) Close() (Ack, error) {
	if c.closed {
		return Ack{}, ErrClosed
	}
	c.closed = true
	defer c.conn.Close()
	if err := c.tx.Close(); err != nil {
		return Ack{}, err
	}
	return readAck(c.br)
}

// Aggregate is a queried statistic with its deterministic precision band:
// the corresponding statistic of the original samples is guaranteed to be
// ≥ Lo() for MIN, ≤ Hi() for MAX, and within the band for per-sample
// reconstructions (see tsdb.AggregateResult for the fine print on MEAN).
type Aggregate struct {
	Value    float64
	Epsilon  float64
	Covered  float64
	Segments int
	// Stale is the series' staleness at query time: how many samples the
	// sender has consumed that finalized coverage trails (lag-bounded
	// sessions keep it ≤ their advertised m). It distinguishes a flat
	// signal — whose value genuinely has not moved — from a lagging
	// filter still sitting on an open interval. Older servers do not
	// report it; it is then 0.
	Stale int64
}

// Lo returns Value − Epsilon, the band's lower edge.
func (a Aggregate) Lo() float64 { return a.Value - a.Epsilon }

// Hi returns Value + Epsilon, the band's upper edge.
func (a Aggregate) Hi() float64 { return a.Value + a.Epsilon }

// SeriesInfo is one row of a SERIES listing.
type SeriesInfo struct {
	Name     string
	Dim      int
	Constant bool
	Segments int
	Points   int
}

// QueryClient speaks the line-oriented query protocol. It is owned by one
// goroutine; open several for concurrent queries.
type QueryClient struct {
	conn io.ReadWriteCloser
	br   *bufio.Reader
	bw   *bufio.Writer
}

// DialQuery connects to a plad server and opens a query session.
func DialQuery(addr string) (*QueryClient, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	q, err := NewQueryClient(conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	return q, nil
}

// NewQueryClient opens a query session over an existing connection.
func NewQueryClient(conn io.ReadWriteCloser) (*QueryClient, error) {
	if err := writeHandshake(conn, magicQuery, ""); err != nil {
		return nil, err
	}
	return &QueryClient{conn: conn, br: bufio.NewReader(conn), bw: bufio.NewWriter(conn)}, nil
}

// Close ends the session.
func (q *QueryClient) Close() error {
	fmt.Fprintln(q.bw, "QUIT")
	q.bw.Flush()
	return q.conn.Close()
}

// do sends one command and returns the fields of a single-line "OK"
// response. A "no data" error maps to ErrNoData.
func (q *QueryClient) do(cmd string) ([]string, error) {
	if _, err := fmt.Fprintln(q.bw, cmd); err != nil {
		return nil, err
	}
	if err := q.bw.Flush(); err != nil {
		return nil, err
	}
	line, err := q.br.ReadString('\n')
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrProtocol, err)
	}
	line = strings.TrimSpace(line)
	switch {
	case line == "OK" || strings.HasPrefix(line, "OK "):
		return strings.Fields(strings.TrimPrefix(line, "OK")), nil
	case strings.HasPrefix(line, "ERR no data"):
		return nil, fmt.Errorf("%w%s", ErrNoData, strings.TrimPrefix(line, "ERR no data"))
	case strings.HasPrefix(line, "ERR "):
		return nil, fmt.Errorf("%w: %s", ErrRejected, strings.TrimPrefix(line, "ERR "))
	default:
		return nil, fmt.Errorf("%w: unexpected reply %q", ErrProtocol, line)
	}
}

// doMulti sends one command and returns the item lines of a listing
// response (between "OK" and ".").
func (q *QueryClient) doMulti(cmd string) ([]string, error) {
	if _, err := q.do(cmd); err != nil {
		return nil, err
	}
	var items []string
	for {
		line, err := q.br.ReadString('\n')
		if err != nil {
			return nil, fmt.Errorf("%w: truncated listing: %v", ErrProtocol, err)
		}
		line = strings.TrimSpace(line)
		if line == "." {
			return items, nil
		}
		items = append(items, line)
	}
}

// At evaluates a series' reconstruction at time t. Every original sample
// at t is within the series' ε of the returned vector, per dimension.
func (q *QueryClient) At(series string, t float64) ([]float64, error) {
	if err := validateName(series); err != nil {
		return nil, err
	}
	fields, err := q.do(fmt.Sprintf("AT %s %s", series, floatWord(t)))
	if err != nil {
		return nil, err
	}
	return parseFloats(fields)
}

// Mean returns the time-weighted mean of the reconstruction.
func (q *QueryClient) Mean(series string, dim int, t0, t1 float64) (Aggregate, error) {
	return q.aggregate("MEAN", series, dim, t0, t1)
}

// Min returns the minimum of the reconstruction; any original sample in
// range is ≥ the result's Lo().
func (q *QueryClient) Min(series string, dim int, t0, t1 float64) (Aggregate, error) {
	return q.aggregate("MIN", series, dim, t0, t1)
}

// Max returns the maximum of the reconstruction; any original sample in
// range is ≤ the result's Hi().
func (q *QueryClient) Max(series string, dim int, t0, t1 float64) (Aggregate, error) {
	return q.aggregate("MAX", series, dim, t0, t1)
}

func (q *QueryClient) aggregate(op, series string, dim int, t0, t1 float64) (Aggregate, error) {
	// Names travel unescaped in the line protocol; an embedded newline
	// would inject a second command and desynchronise every later reply.
	if err := validateName(series); err != nil {
		return Aggregate{}, err
	}
	fields, err := q.do(fmt.Sprintf("%s %s %d %s %s", op, series, dim, floatWord(t0), floatWord(t1)))
	if err != nil {
		return Aggregate{}, err
	}
	// 4 fields from servers predating the staleness extension, 5 since.
	if len(fields) != 4 && len(fields) != 5 {
		return Aggregate{}, fmt.Errorf("%w: %s reply %q", ErrProtocol, op, fields)
	}
	vals, err := parseFloats(fields[:3])
	if err != nil {
		return Aggregate{}, err
	}
	segs, err := strconv.Atoi(fields[3])
	if err != nil {
		return Aggregate{}, fmt.Errorf("%w: %s reply %q", ErrProtocol, op, fields)
	}
	agg := Aggregate{Value: vals[0], Epsilon: vals[1], Covered: vals[2], Segments: segs}
	if len(fields) == 5 {
		if agg.Stale, err = strconv.ParseInt(fields[4], 10, 64); err != nil {
			return Aggregate{}, fmt.Errorf("%w: %s reply %q", ErrProtocol, op, fields)
		}
	}
	return agg, nil
}

// AggValue is one AGG answer: a segment-native pushdown statistic with
// its composed precision bound (±Bound contains the statistic of the
// original samples; 0 for count, which is exact) and the coverage
// accounting that proves the pushdown — Windows summary blocks answered
// wholesale, Segments contributing segments, never a per-point fold.
type AggValue struct {
	Value float64
	Bound float64
	// Count is the number of original samples in range.
	Count int64
	// Segments is the number of contributing segments.
	Segments int
	// Windows is how many precomputed summary blocks covered the range.
	Windows int
	// Stale is the worst contributing series' staleness at query time.
	Stale int64
}

// Lo returns Value − Bound, the band's lower edge.
func (a AggValue) Lo() float64 { return a.Value - a.Bound }

// Hi returns Value + Bound, the band's upper edge.
func (a AggValue) Hi() float64 { return a.Value + a.Bound }

// Agg answers a pushdown range aggregate — op is "min", "max", "avg",
// "sum" or "count" — for one series, or joined across every series when
// series is "*".
func (q *QueryClient) Agg(op, series string, dim int, t0, t1 float64) (AggValue, error) {
	return q.AggBound(op, series, dim, t0, t1, 0)
}

// AggBound is Agg with an acceptable error bound: a server keeping
// rollup tiers may answer from the coarsest tier whose precision fits
// inside bound, reading far fewer segments. The reply's Bound field
// stays honest either way — it reflects the data that actually
// answered. bound ≤ 0 requests base precision.
func (q *QueryClient) AggBound(op, series string, dim int, t0, t1, bound float64) (AggValue, error) {
	if series != "*" {
		if err := validateName(series); err != nil {
			return AggValue{}, err
		}
	}
	fields, err := q.do(fmt.Sprintf("AGG %s %s %d %s %s%s",
		op, series, dim, floatWord(t0), floatWord(t1), boundWord(bound)))
	if err != nil {
		return AggValue{}, err
	}
	if len(fields) != 6 {
		return AggValue{}, fmt.Errorf("%w: AGG reply %q", ErrProtocol, fields)
	}
	vals, err := parseFloats(fields[:2])
	if err != nil {
		return AggValue{}, err
	}
	var n [4]int64
	for i, f := range fields[2:] {
		if n[i], err = strconv.ParseInt(f, 10, 64); err != nil {
			return AggValue{}, fmt.Errorf("%w: AGG reply %q", ErrProtocol, fields)
		}
	}
	return AggValue{
		Value: vals[0], Bound: vals[1], Count: n[0],
		Segments: int(n[1]), Windows: int(n[2]), Stale: n[3],
	}, nil
}

// QuantileValue is one QUANTILE answer row: the q-quantile of the
// reconstruction with a [Lo, Hi] band guaranteed to contain the true
// quantile of the original samples (rank uncertainty, sketch slack and
// the ingest filter's ±ε composed).
type QuantileValue struct {
	Q, Value, Lo, Hi float64
	Stale            int64
}

// Quantiles answers the given quantiles (each in [0, 1]) for one
// series, or over the union of every series' samples when series is
// "*".
func (q *QueryClient) Quantiles(series string, dim int, t0, t1 float64, qs ...float64) ([]QuantileValue, error) {
	return q.QuantilesBound(series, dim, t0, t1, 0, qs...)
}

// QuantilesBound is Quantiles with an acceptable error bound, with the
// same tier semantics as AggBound; each answer's [Lo, Hi] band is
// composed from the data that actually answered.
func (q *QueryClient) QuantilesBound(series string, dim int, t0, t1, bound float64, qs ...float64) ([]QuantileValue, error) {
	if series != "*" {
		if err := validateName(series); err != nil {
			return nil, err
		}
	}
	if len(qs) == 0 {
		return nil, fmt.Errorf("%w: no quantiles requested", ErrProtocol)
	}
	items, err := q.doMulti(fmt.Sprintf("QUANTILE %s %d %s %s%s%s",
		series, dim, floatWord(t0), floatWord(t1), floatsWord(qs), boundWord(bound)))
	if err != nil {
		return nil, err
	}
	out := make([]QuantileValue, 0, len(items))
	for _, it := range items {
		f := strings.Fields(it)
		if len(f) != 5 {
			return nil, fmt.Errorf("%w: quantile row %q", ErrProtocol, it)
		}
		vals, err := parseFloats(f[:4])
		if err != nil {
			return nil, err
		}
		stale, err := strconv.ParseInt(f[4], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: quantile row %q", ErrProtocol, it)
		}
		out = append(out, QuantileValue{Q: vals[0], Value: vals[1], Lo: vals[2], Hi: vals[3], Stale: stale})
	}
	return out, nil
}

// LagInfo is a series' freshness accounting as reported by LAG.
type LagInfo struct {
	// Consumed is the high-water of samples the series has represented,
	// provisional coverage included — how far the sender is known to
	// have gotten.
	Consumed int64
	// Covered is the samples finalized segments represent.
	Covered int64
	// Pending is the samples covered only by provisional (max-lag)
	// announcements right now.
	Pending int64
	// Stale is Consumed − Covered, the window a lag-bounded session
	// keeps ≤ its advertised m.
	Stale int64
	// Bound is the last m_max_lag bound an ingest session advertised for
	// the series (0 = none).
	Bound int64
}

// Lag returns the series' freshness accounting, distinguishing a flat
// signal from a lagging filter.
func (q *QueryClient) Lag(series string) (LagInfo, error) {
	if err := validateName(series); err != nil {
		return LagInfo{}, err
	}
	fields, err := q.do("LAG " + series)
	if err != nil {
		return LagInfo{}, err
	}
	if len(fields) != 5 {
		return LagInfo{}, fmt.Errorf("%w: LAG reply %q", ErrProtocol, fields)
	}
	var n [5]int64
	for i, f := range fields {
		if n[i], err = strconv.ParseInt(f, 10, 64); err != nil {
			return LagInfo{}, fmt.Errorf("%w: LAG reply %q", ErrProtocol, fields)
		}
	}
	return LagInfo{Consumed: n[0], Covered: n[1], Pending: n[2], Stale: n[3], Bound: n[4]}, nil
}

// Series lists the archive's series.
func (q *QueryClient) Series() ([]SeriesInfo, error) {
	items, err := q.doMulti("SERIES")
	if err != nil {
		return nil, err
	}
	out := make([]SeriesInfo, 0, len(items))
	for _, it := range items {
		f := strings.Fields(it)
		if len(f) != 5 {
			return nil, fmt.Errorf("%w: series row %q", ErrProtocol, it)
		}
		dim, e1 := strconv.Atoi(f[1])
		segs, e2 := strconv.Atoi(f[3])
		pts, e3 := strconv.Atoi(f[4])
		if e1 != nil || e2 != nil || e3 != nil {
			return nil, fmt.Errorf("%w: series row %q", ErrProtocol, it)
		}
		out = append(out, SeriesInfo{Name: f[0], Dim: dim, Constant: f[2] == "1", Segments: segs, Points: pts})
	}
	return out, nil
}

// Scan returns the stored segments overlapping [t0, t1].
func (q *QueryClient) Scan(series string, t0, t1 float64) ([]core.Segment, error) {
	return q.ScanBound(series, t0, t1, 0)
}

// ScanBound is Scan with an acceptable error bound: a server keeping
// rollup tiers may return the coarser tier's segments — far fewer of
// them — when the tier's precision fits inside bound in every
// dimension. bound ≤ 0 requests the base segments.
func (q *QueryClient) ScanBound(series string, t0, t1, bound float64) ([]core.Segment, error) {
	if err := validateName(series); err != nil {
		return nil, err
	}
	items, err := q.doMulti(fmt.Sprintf("SCAN %s %s %s%s",
		series, floatWord(t0), floatWord(t1), boundWord(bound)))
	if err != nil {
		return nil, err
	}
	out := make([]core.Segment, 0, len(items))
	for _, it := range items {
		f := strings.Fields(it)
		// t0 t1 connected points provisional x0... x1... — the vector
		// split is implied by the row length. Rows from servers predating
		// the provisional flag lack that field; the two shapes differ in
		// parity (4+2d vs 5+2d fields), so the row length disambiguates.
		provisional := false
		vecs := 4
		switch {
		case len(f) >= 7 && (len(f)-5)%2 == 0:
			provisional = f[4] == "1"
			vecs = 5
		case len(f) >= 6 && (len(f)-4)%2 == 0:
		default:
			return nil, fmt.Errorf("%w: scan row %q", ErrProtocol, it)
		}
		times, err := parseFloats(f[:2])
		if err != nil {
			return nil, err
		}
		pts, err := strconv.Atoi(f[3])
		if err != nil {
			return nil, fmt.Errorf("%w: scan row %q", ErrProtocol, it)
		}
		d := (len(f) - vecs) / 2
		x0, err := parseFloats(f[vecs : vecs+d])
		if err != nil {
			return nil, err
		}
		x1, err := parseFloats(f[vecs+d:])
		if err != nil {
			return nil, err
		}
		out = append(out, core.Segment{
			T0: times[0], T1: times[1], X0: x0, X1: x1,
			Connected: f[2] == "1", Points: pts, Provisional: provisional,
		})
	}
	return out, nil
}

// Metrics returns the server's per-shard counters.
func (q *QueryClient) Metrics() ([]ShardMetrics, error) {
	items, err := q.doMulti("METRICS")
	if err != nil {
		return nil, err
	}
	out := make([]ShardMetrics, 0, len(items))
	for _, it := range items {
		f := strings.Fields(it)
		// 8 fields from servers predating the lag gauges, 11 since.
		if len(f) != 8 && len(f) != 11 {
			return nil, fmt.Errorf("%w: metrics row %q", ErrProtocol, it)
		}
		n := make([]int64, len(f))
		for i, s := range f {
			v, err := strconv.ParseInt(s, 10, 64)
			if err != nil {
				return nil, fmt.Errorf("%w: metrics row %q", ErrProtocol, it)
			}
			n[i] = v
		}
		sm := ShardMetrics{
			Shard: int(n[0]), Segments: n[1], Points: n[2], Rejected: n[3],
			Dropped: n[4], Bytes: n[5], QueueLen: int(n[6]), QueueCap: int(n[7]),
		}
		if len(n) == 11 {
			sm.LagSessions, sm.LagPoints, sm.LagUpdates = n[8], n[9], n[10]
		}
		out = append(out, sm)
	}
	return out, nil
}

// boundWord renders the optional trailing BOUND argument (empty for
// bound ≤ 0, the base-precision default).
func boundWord(bound float64) string {
	if bound <= 0 {
		return ""
	}
	return " BOUND " + floatWord(bound)
}

func parseFloats(fields []string) ([]float64, error) {
	out := make([]float64, len(fields))
	for i, s := range fields {
		v, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return nil, fmt.Errorf("%w: bad float %q", ErrProtocol, s)
		}
		out[i] = v
	}
	return out, nil
}
