package server

import (
	"sync/atomic"
	"time"

	"github.com/pla-go/pla/internal/core"
	"github.com/pla-go/pla/internal/tsdb"
	"github.com/pla-go/pla/internal/wal"
)

// DropPolicy selects what an ingest session does when its shard's queue
// is full.
type DropPolicy int

const (
	// Block applies backpressure: the session goroutine blocks until the
	// shard frees a slot, which in turn stalls the client's TCP stream.
	// Nothing is lost; slow consumers slow producers.
	Block DropPolicy = iota
	// DropNewest sheds load: the incoming segment is counted and
	// discarded, keeping the session (and the wire) moving. The final ack
	// reports how many segments the session lost.
	DropNewest
	// DropOldest sheds the other end of the queue: the incoming segment
	// is kept and the oldest queued segment is discarded, preferring
	// fresh data over stale — the right trade for live monitoring, where
	// the newest reading matters most. Barriers are never shed.
	DropOldest
	// Sample never sheds a segment: under pressure the queue applies
	// backpressure exactly like Block, and the server's retune loop tells
	// retune-capable senders to decimate points ahead of their filter
	// (and/or widen ε), spending precision instead of losing intervals.
	// The effective ε inflation each sender reports is surfaced on query
	// bounds, so every answer stays honest about what was shed.
	Sample
)

// String names the policy for flags and metrics output.
func (p DropPolicy) String() string {
	switch p {
	case DropNewest:
		return "drop"
	case DropOldest:
		return "drop-oldest"
	case Sample:
		return "sample"
	default:
		return "block"
	}
}

// job is one unit of shard work: a finalized segment bound for a series,
// or (when barrier is non-nil) a synchronisation point — the shard
// commits its write-ahead log, sends the commit error if there was one,
// and closes the channel, proving every job enqueued before it has been
// applied (and, under wal.SyncAlways, fsynced). Receivers read one value:
// nil means the barrier's durability promise holds.
type job struct {
	sess    *ingestSession
	series  *tsdb.Series
	seg     core.Segment
	bytes   int64
	barrier chan error
}

// shard is one worker: a bounded queue drained by a single goroutine that
// owns the appends for every series hashing to it, so per-series segment
// order on the queue is preserved into the archive without extra locking.
// With a durable store, the worker writes each segment ahead of applying
// it into its own partition of the write-ahead log (the wal.Shard with
// the same index), and barriers commit through a two-stage group-commit
// pipeline: the worker never fsyncs inline — it collects the barriers
// found in each greedy drain of its queue into a batch and hands the
// batch to the shard's committer goroutine, which folds every batch
// queued behind an in-flight fsync into the next one. One fsync under
// wal.SyncAlways therefore acknowledges every session barrier that
// arrived while the previous fsync ran, and segment application never
// stalls on the disk. A session's final ack still implies its segments
// are as durable as the sync policy promises: the worker appends a
// session's records before handing its barrier over, and the committer
// fsyncs before acking.
type shard struct {
	id       int
	jobs     chan job
	done     chan struct{}
	commitCh chan []chan error // barrier batches bound for the committer
	synced   chan struct{}     // closed when the committer has drained
	store    *wal.Shard        // nil for an in-memory server
	logf     func(format string, args ...any)

	// maxLinger caps the committer's adaptive group-commit linger and
	// maxBatch (when positive) ends a linger early once that many
	// barriers have gathered — both set once from the server Config.
	maxLinger time.Duration
	maxBatch  int

	// pendingSeries tracks, per series this worker has applied
	// provisional updates for, the provisional window last observed —
	// the worker-owned state behind the lagPoints gauge. Keyed by
	// series (not session) so several sessions feeding one series
	// cannot double-count; touched only by the worker goroutine.
	pendingSeries map[string]int64

	segments atomic.Int64 // segments applied
	points   atomic.Int64 // original samples those segments represent
	rejected atomic.Int64 // segments refused (time order, or not durable)
	dropped  atomic.Int64 // segments shed by DropNewest/DropOldest
	bytes    atomic.Int64 // wire bytes attributed to this shard
	barriers atomic.Int64 // barriers acknowledged
	commits  atomic.Int64 // commit batches (≤ barriers: the group-commit win)
	active   atomic.Int64 // ingest sessions currently bound to this shard

	lagSessions atomic.Int64 // active sessions advertising a max-lag bound
	lagPoints   atomic.Int64 // Σ provisional-only covered points over those sessions
	lagUpdates  atomic.Int64 // provisional receiver updates applied

	degraded   atomic.Int64 // drop-oldest enqueues that degraded to blocking
	shedPoints atomic.Int64 // sender-reported points decimated before the filter

	// Under Sample, the retune loop reads these to judge queue pressure:
	// the fraction of enqueues in a window that found the queue full (and
	// so had to wait) is a far steadier overload signal than sampling the
	// instantaneous length of a small channel.
	enqTotal atomic.Int64 // Sample-policy enqueues observed
	enqWaits atomic.Int64 // of those, how many found the queue full
}

func newShard(id, depth int, maxLinger time.Duration, maxBatch int, store *wal.Shard, logf func(format string, args ...any)) *shard {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &shard{
		id:            id,
		jobs:          make(chan job, depth),
		done:          make(chan struct{}),
		commitCh:      make(chan []chan error, 16),
		synced:        make(chan struct{}),
		store:         store,
		logf:          logf,
		maxLinger:     maxLinger,
		maxBatch:      maxBatch,
		pendingSeries: make(map[string]int64),
	}
}

// batchFull reports whether a barrier batch has reached the configured
// CommitMaxBatch bound (0 = no bound).
func (sh *shard) batchFull(n int) bool { return sh.maxBatch > 0 && n >= sh.maxBatch }

// run drains the queue until the jobs channel is closed (server drain).
// Barriers are not committed one by one: after each blocking receive the
// worker greedily drains whatever else is already queued — bounded by
// one queue's worth, so a saturating producer cannot starve an ack —
// and hands the barriers it collected to the committer as one batch.
// run returns only after the committer has acknowledged everything.
func (sh *shard) run() {
	defer close(sh.done)
	go sh.committer()
	var pending []chan error
	open := true
	for open {
		j, ok := <-sh.jobs
		if !ok {
			break
		}
		pending = sh.apply(j, pending)
	drain:
		for budget := cap(sh.jobs); budget > 0; budget-- {
			select {
			case j, ok := <-sh.jobs:
				if !ok {
					open = false
					break drain
				}
				pending = sh.apply(j, pending)
			default:
				break drain
			}
		}
		if len(pending) > 0 {
			sh.commitCh <- pending
			pending = nil // the committer owns the batch now
		}
	}
	close(sh.commitCh)
	<-sh.synced
}

// The committer lingers a small multiple of the observed commit cost
// before syncing, capped by the shard's maxLinger (Config.CommitLinger):
// batching effort scales with what a sync actually costs on this disk.
// On a journal where an fsync runs ~300µs the linger reaches a few ms
// and folds a whole burst of session ends into one sync; on a fast
// device (or the no-fsync interval policies, where commits are ~ns) it
// rounds to nothing and barriers ack immediately.
const commitLingerFactor = 8

// committer is the second pipeline stage: it turns batches of barriers
// into wal commits. While one fsync runs, further batches pile up on
// commitCh and are folded into the next commit; on top of that the
// committer lingers for about one observed commit duration before
// syncing, so barriers whose arrivals are spread wider than the fsync
// itself still share one. The linger is an EWMA of measured commit
// time — on a log whose commits are free (the interval policies, or a
// fast disk) it stays at zero and barriers ack immediately; the slower
// the journal, the harder the batching, which is the group-commit
// property. The worker goroutine never blocks on any of this.
func (sh *shard) committer() {
	defer close(sh.synced)
	var linger time.Duration
	open := true
	for open {
		batch, ok := <-sh.commitCh
		if !ok {
			return
		}
		// Linger only while other sessions on this shard could still
		// join the batch: when every live session's barrier is already
		// collected (in particular the last session of a drain-down),
		// or the batch has hit its configured size bound, waiting can't
		// usefully grow the batch, so sync now.
		if linger > 0 && open && sh.active.Load() > int64(len(batch)) && !sh.batchFull(len(batch)) {
			timer := time.NewTimer(linger)
		wait:
			for {
				select {
				case more, ok := <-sh.commitCh:
					if !ok {
						open = false
						break wait
					}
					batch = append(batch, more...)
					if sh.active.Load() <= int64(len(batch)) || sh.batchFull(len(batch)) {
						break wait
					}
				case <-timer.C:
					break wait
				}
			}
			timer.Stop()
		}
	merge:
		for {
			select {
			case more, ok := <-sh.commitCh:
				if !ok {
					open = false
					break merge
				}
				batch = append(batch, more...)
			default:
				break merge
			}
		}
		took := sh.commit(batch)
		if linger = (linger + commitLingerFactor*took) / 2; linger > sh.maxLinger {
			linger = sh.maxLinger
		}
	}
}

// apply processes one job: a segment is written ahead and applied; a
// barrier is deferred onto the pending batch for the next commit. A
// provisional (max-lag) update skips the write-ahead log — it is
// transient wire state the next final segment supersedes, and losing it
// in a crash only resets a freshness gauge — and is applied through the
// series' supersede path instead of the ordered append.
func (sh *shard) apply(j job, pending []chan error) []chan error {
	if j.barrier != nil {
		return append(pending, j.barrier)
	}
	// Any apply may grow or supersede the series' provisional tail;
	// refresh the staleness gauge on the way out.
	defer sh.trackPending(j.series, j.seg.Provisional)
	if j.seg.Provisional {
		if err := j.series.AppendProvisional(j.seg); err != nil {
			sh.rejected.Add(1)
			if j.sess != nil {
				j.sess.rejected.Add(1)
			}
		} else {
			sh.lagUpdates.Add(1)
		}
		return pending
	}
	if sh.store != nil {
		if err := sh.store.Append(j.series, j.seg); err != nil {
			// Write-ahead failed, so applying would ack a segment a
			// restart forgets. Refuse it instead: the ack stays honest.
			sh.logf("server: shard %d: wal append %q: %v", sh.id, j.series.Name(), err)
			sh.rejected.Add(1)
			if j.sess != nil {
				j.sess.rejected.Add(1)
			}
			return pending
		}
	}
	if err := j.series.Append(j.seg); err != nil {
		sh.rejected.Add(1)
		if j.sess != nil {
			j.sess.rejected.Add(1)
		}
		return pending
	}
	sh.segments.Add(1)
	sh.points.Add(int64(j.seg.Points))
	if j.sess != nil {
		j.sess.applied.Add(1)
	}
	return pending
}

// trackPending refreshes the staleness gauge after an apply may have
// changed a series' provisional tail (a final append supersedes it, a
// provisional append replaces or extends it). A series enters the
// tracked set at its first provisional update and its entry falls back
// to zero once finalized segments take over, so the gauge is exactly
// the provisional-only points across this worker's series. (Retention
// pruning can shrink a tracked tail from the compaction goroutine; the
// gauge catches up at the series' next apply.)
func (sh *shard) trackPending(s *tsdb.Series, provisional bool) {
	old, tracked := sh.pendingSeries[s.Name()]
	if !tracked && !provisional {
		return
	}
	now := int64(s.PendingPoints())
	if now == 0 {
		// Finalized (or pruned) back to zero: release the entry so the
		// tracked set stays proportional to series with live tails.
		delete(sh.pendingSeries, s.Name())
	} else {
		sh.pendingSeries[s.Name()] = now
	}
	sh.lagPoints.Add(now - old)
}

// commit acknowledges one batch of barriers behind a single wal commit,
// returning how long the commit itself took (the committer's linger
// feedback). Under wal.SyncAlways that is one fsync however many
// sessions are waiting; a commit error reaches every waiter, so no ack
// overstates durability.
func (sh *shard) commit(batch []chan error) time.Duration {
	if len(batch) == 0 {
		return 0
	}
	var err error
	var took time.Duration
	if sh.store != nil {
		sh.commits.Add(1)
		start := time.Now()
		err = sh.store.Commit()
		took = time.Since(start)
		if err != nil {
			// The segments are applied in memory but their durability is
			// not what the policy promises — hand the error to whoever is
			// waiting so ingest sessions report failure, not a clean ack.
			sh.logf("server: shard %d: wal commit: %v", sh.id, err)
		}
	}
	sh.barriers.Add(int64(len(batch)))
	for _, b := range batch {
		if err != nil {
			b <- err
		}
		close(b)
	}
	return took
}

// enqueue delivers j under the given policy, reporting whether it was
// accepted. Barriers always block: a session's final sync must not be
// shed, or its ack could run ahead of its segments. Bytes are counted on
// arrival, before the policy decides — shed segments crossed the wire
// too.
func (sh *shard) enqueue(j job, policy DropPolicy) bool {
	sh.bytes.Add(j.bytes)
	if policy == Block || policy == Sample || j.barrier != nil {
		if policy == Sample {
			sh.enqTotal.Add(1)
			select {
			case sh.jobs <- j:
				return true
			default:
				sh.enqWaits.Add(1)
			}
		}
		sh.jobs <- j
		return true
	}
	if policy == DropOldest {
		return sh.enqueueDropOldest(j)
	}
	select {
	case sh.jobs <- j:
		return true
	default:
		sh.drop(j)
		return false
	}
}

// enqueueDropOldest keeps the incoming segment, shedding queued ones from
// the head until it fits. A popped barrier is never shed — it is held
// locally and re-enqueued (a barrier closes only after the worker reaches
// it, and its session enqueues nothing more until then, so moving it
// toward the tail preserves every ordering that matters). Every push here
// is non-blocking: a concurrent producer racing into a freed slot can
// steal it, but never stall this session holding a popped barrier. If the
// budget runs out — the queue is wall-to-wall barriers, or producers keep
// winning the race — the policy degrades to Block for the leftovers, and
// the degradation is counted rather than silent.
func (sh *shard) enqueueDropOldest(j job) bool {
	var barriers []job // popped barriers, re-enqueued ahead of j
	pushed := false
	for tries := 0; tries <= 2*cap(sh.jobs) && (!pushed || len(barriers) > 0); tries++ {
		// Re-home held barriers first: they were queued before j arrived.
		target := j
		if len(barriers) > 0 {
			target = barriers[0]
		}
		select {
		case sh.jobs <- target:
			if len(barriers) > 0 {
				barriers = barriers[1:]
			} else {
				pushed = true
			}
			continue
		default:
		}
		select {
		case old := <-sh.jobs:
			if old.barrier != nil {
				barriers = append(barriers, old)
			} else {
				sh.drop(old)
			}
		default:
			// Raced the worker to an empty queue; just retry the send.
		}
	}
	if len(barriers) > 0 || !pushed {
		sh.degraded.Add(1)
		for _, b := range barriers {
			sh.jobs <- b
		}
		if !pushed {
			sh.jobs <- j
		}
	}
	return true
}

// drop counts one shed segment and keeps the dropped series' staleness
// accounting honest: the points the segment carried were consumed from
// the wire but will never land in the archive, so the series' reported
// lag must grow by them, never shrink (a dropped provisional update in
// particular must not roll the high-water mark back).
func (sh *shard) drop(j job) {
	sh.dropped.Add(1)
	if j.sess != nil {
		j.sess.dropped.Add(1)
	}
	if j.series != nil {
		j.series.NoteShed(j.seg.Points, j.seg.Provisional)
	}
}

// ShardMetrics is one shard's counters at a point in time.
type ShardMetrics struct {
	Shard    int
	Segments int64 // finalized segments applied to the archive
	Points   int64 // original samples represented by those segments
	Rejected int64 // segments refused (time order, or failed write-ahead)
	Dropped  int64 // segments shed by the overload policy
	Bytes    int64 // wire bytes attributed to this shard
	QueueLen int   // jobs waiting right now
	QueueCap int   // queue depth
	Barriers int64 // barriers acknowledged (session stream ends + fences)
	Commits  int64 // wal commit batches; Barriers/Commits is the group-commit factor
	WALBytes int64 // bytes appended to this shard's wal partition
	Fsyncs   int64 // fsyncs issued by this shard's wal partition

	// LagSessions counts the shard's active sessions that advertised an
	// m_max_lag bound; LagPoints sums, over the shard's series, the
	// points held only provisionally — last-received minus
	// last-finalized, the staleness each session's bound caps; and
	// LagUpdates counts provisional receiver updates applied.
	LagSessions int64
	LagPoints   int64
	LagUpdates  int64

	// Degraded counts drop-oldest enqueues that could not make room
	// without blocking (queue wall-to-wall barriers, or producers kept
	// winning the freed slot) and fell back to Block for the leftovers.
	Degraded int64
	// ShedPoints sums the points retune-capable senders reported
	// decimating ahead of their filter for this shard's series.
	ShedPoints int64
}

func (sh *shard) metrics() ShardMetrics {
	m := ShardMetrics{
		Shard:       sh.id,
		Segments:    sh.segments.Load(),
		Points:      sh.points.Load(),
		Rejected:    sh.rejected.Load(),
		Dropped:     sh.dropped.Load(),
		Bytes:       sh.bytes.Load(),
		QueueLen:    len(sh.jobs),
		QueueCap:    cap(sh.jobs),
		Barriers:    sh.barriers.Load(),
		Commits:     sh.commits.Load(),
		LagSessions: sh.lagSessions.Load(),
		LagPoints:   sh.lagPoints.Load(),
		LagUpdates:  sh.lagUpdates.Load(),
		Degraded:    sh.degraded.Load(),
		ShedPoints:  sh.shedPoints.Load(),
	}
	if sh.store != nil {
		lm := sh.store.Metrics()
		m.WALBytes, m.Fsyncs = lm.Bytes, lm.Fsyncs
	}
	return m
}

// shardIndex routes a series name onto nShards workers — the same
// FNV-1a hash the partitioned log uses, so a shard's wal partition holds
// exactly the series that shard's worker owns.
func shardIndex(name string, nShards int) int {
	return wal.ShardIndex(name, nShards)
}
