package server

import (
	"hash/fnv"
	"sync/atomic"

	"github.com/pla-go/pla/internal/core"
	"github.com/pla-go/pla/internal/tsdb"
	"github.com/pla-go/pla/internal/wal"
)

// DropPolicy selects what an ingest session does when its shard's queue
// is full.
type DropPolicy int

const (
	// Block applies backpressure: the session goroutine blocks until the
	// shard frees a slot, which in turn stalls the client's TCP stream.
	// Nothing is lost; slow consumers slow producers.
	Block DropPolicy = iota
	// DropNewest sheds load: the incoming segment is counted and
	// discarded, keeping the session (and the wire) moving. The final ack
	// reports how many segments the session lost.
	DropNewest
	// DropOldest sheds the other end of the queue: the incoming segment
	// is kept and the oldest queued segment is discarded, preferring
	// fresh data over stale — the right trade for live monitoring, where
	// the newest reading matters most. Barriers are never shed.
	DropOldest
)

// String names the policy for flags and metrics output.
func (p DropPolicy) String() string {
	switch p {
	case DropNewest:
		return "drop"
	case DropOldest:
		return "drop-oldest"
	default:
		return "block"
	}
}

// job is one unit of shard work: a finalized segment bound for a series,
// or (when barrier is non-nil) a synchronisation point — the shard
// commits the write-ahead log, sends the commit error if there was one,
// and closes the channel, proving every job enqueued before it has been
// applied (and, under wal.SyncAlways, fsynced). Receivers read one value:
// nil means the barrier's durability promise holds.
type job struct {
	sess    *ingestSession
	series  *tsdb.Series
	seg     core.Segment
	bytes   int64
	barrier chan error
}

// shard is one worker: a bounded queue drained by a single goroutine that
// owns the appends for every series hashing to it, so per-series segment
// order on the queue is preserved into the archive without extra locking.
// With a durable store, the worker writes each segment ahead of applying
// it and commits the log at every barrier, so a session's final ack
// implies its segments are as durable as the sync policy promises
// (fsynced, under wal.SyncAlways).
type shard struct {
	id    int
	jobs  chan job
	done  chan struct{}
	store *wal.Store // nil for an in-memory server
	logf  func(format string, args ...any)

	segments atomic.Int64 // segments applied
	points   atomic.Int64 // original samples those segments represent
	rejected atomic.Int64 // segments refused (time order, or not durable)
	dropped  atomic.Int64 // segments shed by DropNewest/DropOldest
	bytes    atomic.Int64 // wire bytes attributed to this shard
}

func newShard(id, depth int, store *wal.Store, logf func(format string, args ...any)) *shard {
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &shard{id: id, jobs: make(chan job, depth), done: make(chan struct{}), store: store, logf: logf}
}

// run drains the queue until the jobs channel is closed (server drain).
func (sh *shard) run() {
	defer close(sh.done)
	for j := range sh.jobs {
		if j.barrier != nil {
			if sh.store != nil {
				if err := sh.store.Commit(); err != nil {
					// The segments are applied in memory but their
					// durability is not what the policy promises — hand the
					// error to whoever is waiting so an ingest session
					// reports failure instead of a clean ack.
					sh.logf("server: shard %d: wal commit: %v", sh.id, err)
					j.barrier <- err
				}
			}
			close(j.barrier)
			continue
		}
		if sh.store != nil {
			if err := sh.store.Append(j.series, j.seg); err != nil {
				// Write-ahead failed, so applying would ack a segment a
				// restart forgets. Refuse it instead: the ack stays honest.
				sh.logf("server: shard %d: wal append %q: %v", sh.id, j.series.Name(), err)
				sh.rejected.Add(1)
				if j.sess != nil {
					j.sess.rejected.Add(1)
				}
				continue
			}
		}
		if err := j.series.Append(j.seg); err != nil {
			sh.rejected.Add(1)
			if j.sess != nil {
				j.sess.rejected.Add(1)
			}
			continue
		}
		sh.segments.Add(1)
		sh.points.Add(int64(j.seg.Points))
		if j.sess != nil {
			j.sess.applied.Add(1)
		}
	}
}

// enqueue delivers j under the given policy, reporting whether it was
// accepted. Barriers always block: a session's final sync must not be
// shed, or its ack could run ahead of its segments. Bytes are counted on
// arrival, before the policy decides — shed segments crossed the wire
// too.
func (sh *shard) enqueue(j job, policy DropPolicy) bool {
	sh.bytes.Add(j.bytes)
	if policy == Block || j.barrier != nil {
		sh.jobs <- j
		return true
	}
	if policy == DropOldest {
		return sh.enqueueDropOldest(j)
	}
	select {
	case sh.jobs <- j:
		return true
	default:
		sh.drop(j)
		return false
	}
}

// enqueueDropOldest keeps the incoming segment, shedding queued ones from
// the head until it fits. A popped barrier is never shed: it is pushed
// back behind the queue, which only ever closes it later — still after
// everything its session enqueued. If the queue is wall-to-wall barriers
// (as many live sessions as queue slots), shedding can't make room and
// the policy degrades to Block.
func (sh *shard) enqueueDropOldest(j job) bool {
	for tries := 0; tries <= cap(sh.jobs); tries++ {
		select {
		case sh.jobs <- j:
			return true
		default:
		}
		select {
		case old := <-sh.jobs:
			if old.barrier != nil {
				sh.jobs <- old
			} else {
				sh.drop(old)
			}
		default:
			// Raced the worker to an empty queue; just retry the send.
		}
	}
	sh.jobs <- j
	return true
}

// drop counts one shed segment.
func (sh *shard) drop(j job) {
	sh.dropped.Add(1)
	if j.sess != nil {
		j.sess.dropped.Add(1)
	}
}

// ShardMetrics is one shard's counters at a point in time.
type ShardMetrics struct {
	Shard    int
	Segments int64 // segments applied to the archive
	Points   int64 // original samples represented by those segments
	Rejected int64 // segments refused (time order, or failed write-ahead)
	Dropped  int64 // segments shed by the overload policy
	Bytes    int64 // wire bytes attributed to this shard
	QueueLen int   // jobs waiting right now
	QueueCap int   // queue depth
}

func (sh *shard) metrics() ShardMetrics {
	return ShardMetrics{
		Shard:    sh.id,
		Segments: sh.segments.Load(),
		Points:   sh.points.Load(),
		Rejected: sh.rejected.Load(),
		Dropped:  sh.dropped.Load(),
		Bytes:    sh.bytes.Load(),
		QueueLen: len(sh.jobs),
		QueueCap: cap(sh.jobs),
	}
}

// shardIndex hashes a series name onto nShards workers (FNV-1a), keeping
// every segment of one series on one goroutine.
func shardIndex(name string, nShards int) int {
	h := fnv.New32a()
	h.Write([]byte(name))
	return int(h.Sum32() % uint32(nShards))
}
