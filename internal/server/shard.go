package server

import (
	"hash/fnv"
	"sync/atomic"

	"github.com/pla-go/pla/internal/core"
	"github.com/pla-go/pla/internal/tsdb"
)

// DropPolicy selects what an ingest session does when its shard's queue
// is full.
type DropPolicy int

const (
	// Block applies backpressure: the session goroutine blocks until the
	// shard frees a slot, which in turn stalls the client's TCP stream.
	// Nothing is lost; slow consumers slow producers.
	Block DropPolicy = iota
	// DropNewest sheds load: the incoming segment is counted and
	// discarded, keeping the session (and the wire) moving. The final ack
	// reports how many segments the session lost.
	DropNewest
)

// String names the policy for flags and metrics output.
func (p DropPolicy) String() string {
	if p == DropNewest {
		return "drop"
	}
	return "block"
}

// job is one unit of shard work: a finalized segment bound for a series,
// or (when barrier is non-nil) a synchronisation point — the shard closes
// the channel, proving every job enqueued before it has been applied.
type job struct {
	sess    *ingestSession
	series  *tsdb.Series
	seg     core.Segment
	bytes   int64
	barrier chan struct{}
}

// shard is one worker: a bounded queue drained by a single goroutine that
// owns the appends for every series hashing to it, so per-series segment
// order on the queue is preserved into the archive without extra locking.
type shard struct {
	id   int
	jobs chan job
	done chan struct{}

	segments atomic.Int64 // segments applied
	points   atomic.Int64 // original samples those segments represent
	rejected atomic.Int64 // segments the archive refused (time order)
	dropped  atomic.Int64 // segments shed by DropNewest
	bytes    atomic.Int64 // wire bytes attributed to this shard
}

func newShard(id, depth int) *shard {
	return &shard{id: id, jobs: make(chan job, depth), done: make(chan struct{})}
}

// run drains the queue until the jobs channel is closed (server drain).
func (sh *shard) run() {
	defer close(sh.done)
	for j := range sh.jobs {
		if j.barrier != nil {
			close(j.barrier)
			continue
		}
		if err := j.series.Append(j.seg); err != nil {
			sh.rejected.Add(1)
			if j.sess != nil {
				j.sess.rejected.Add(1)
			}
			continue
		}
		sh.segments.Add(1)
		sh.points.Add(int64(j.seg.Points))
		if j.sess != nil {
			j.sess.applied.Add(1)
		}
	}
}

// enqueue delivers j under the given policy, reporting whether it was
// accepted. Barriers always block: a session's final sync must not be
// shed, or its ack could run ahead of its segments. Bytes are counted on
// arrival, before the policy decides — shed segments crossed the wire
// too.
func (sh *shard) enqueue(j job, policy DropPolicy) bool {
	sh.bytes.Add(j.bytes)
	if policy == Block || j.barrier != nil {
		sh.jobs <- j
		return true
	}
	select {
	case sh.jobs <- j:
		return true
	default:
		sh.dropped.Add(1)
		if j.sess != nil {
			j.sess.dropped.Add(1)
		}
		return false
	}
}

// ShardMetrics is one shard's counters at a point in time.
type ShardMetrics struct {
	Shard    int
	Segments int64 // segments applied to the archive
	Points   int64 // original samples represented by those segments
	Rejected int64 // segments the archive refused
	Dropped  int64 // segments shed by the overload policy
	Bytes    int64 // wire bytes attributed to this shard
	QueueLen int   // jobs waiting right now
	QueueCap int   // queue depth
}

func (sh *shard) metrics() ShardMetrics {
	return ShardMetrics{
		Shard:    sh.id,
		Segments: sh.segments.Load(),
		Points:   sh.points.Load(),
		Rejected: sh.rejected.Load(),
		Dropped:  sh.dropped.Load(),
		Bytes:    sh.bytes.Load(),
		QueueLen: len(sh.jobs),
		QueueCap: cap(sh.jobs),
	}
}

// shardIndex hashes a series name onto nShards workers (FNV-1a), keeping
// every segment of one series on one goroutine.
func shardIndex(name string, nShards int) int {
	h := fnv.New32a()
	h.Write([]byte(name))
	return int(h.Sum32() % uint32(nShards))
}
