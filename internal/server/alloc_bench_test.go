package server

import (
	"testing"

	"github.com/pla-go/pla/internal/core"
	"github.com/pla-go/pla/internal/tsdb"
)

// BenchmarkShardApplyZeroAlloc pins the worker's steady-state apply path
// (no WAL: the in-memory backend) at 0 allocs/op — the `make alloc-check`
// gate for the shard job path. The series is recreated every resetEvery
// appends so the benchmark's memory stays bounded; the recreate cost is
// amortized to nothing per op, exactly like the archive's own slice
// growth.
func BenchmarkShardApplyZeroAlloc(b *testing.B) {
	const resetEvery = 1 << 17
	sh := newShard(0, 16, 0, 0, nil, nil)
	db := tsdb.New()
	s, err := db.Create("bench", []float64{0.5}, false)
	if err != nil {
		b.Fatal(err)
	}
	x0, x1 := []float64{1.5}, []float64{2.5}
	var pending []chan error
	t := 0.0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%resetEvery == resetEvery-1 {
			if err := db.Drop("bench"); err != nil {
				b.Fatal(err)
			}
			if s, err = db.Create("bench", []float64{0.5}, false); err != nil {
				b.Fatal(err)
			}
			t = 0
		}
		j := job{series: s, seg: core.Segment{T0: t, T1: t + 1, X0: x0, X1: x1, Points: 2}}
		pending = sh.apply(j, pending)
		t += 2
	}
	b.StopTimer()
	if got := sh.rejected.Load(); got != 0 {
		b.Fatalf("%d segments rejected during benchmark", got)
	}
	_ = pending
}
