package server

import (
	"fmt"
	"net/http"
	"strconv"
)

// Handler returns the server's observability endpoint: `/metrics` in the
// Prometheus text exposition format (per-shard queue depth, drops,
// applied segments, WAL bytes and fsync counts — everything
// ShardMetrics carries) and `/healthz`, which reports 200 while the
// server accepts sessions and 503 once a drain has begun. plad serves
// it on -http; embedders can mount it on their own mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.serveHealthz)
	mux.HandleFunc("/metrics", s.serveMetrics)
	return mux
}

func (s *Server) serveHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if s.isClosing() {
		w.WriteHeader(http.StatusServiceUnavailable)
		fmt.Fprintln(w, "draining")
		return
	}
	fmt.Fprintln(w, "ok")
}

func (s *Server) serveMetrics(w http.ResponseWriter, r *http.Request) {
	m := s.Metrics()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	fmt.Fprintf(w, "# HELP plad_sessions_active Ingest sessions streaming right now.\n# TYPE plad_sessions_active gauge\nplad_sessions_active %d\n", m.ActiveSessions)
	fmt.Fprintf(w, "# HELP plad_sessions_total Ingest handshakes accepted over the server's lifetime.\n# TYPE plad_sessions_total counter\nplad_sessions_total %d\n", m.TotalSessions)

	// Per-transport attribution: which wire sessions and segments came
	// in over. TCP is the framed stream protocol, UDP the datagram
	// transport (ListenUDP).
	fmt.Fprintf(w, "# HELP plad_transport_sessions_total Ingest sessions accepted, by transport.\n# TYPE plad_transport_sessions_total counter\n")
	fmt.Fprintf(w, "plad_transport_sessions_total{transport=\"tcp\"} %d\n", m.TotalSessions-m.UDPSessions)
	fmt.Fprintf(w, "plad_transport_sessions_total{transport=\"udp\"} %d\n", m.UDPSessions)
	fmt.Fprintf(w, "# HELP plad_transport_segments_total Segments accepted into the shard pipeline, by transport.\n# TYPE plad_transport_segments_total counter\n")
	fmt.Fprintf(w, "plad_transport_segments_total{transport=\"tcp\"} %d\n", m.TCPSegments)
	fmt.Fprintf(w, "plad_transport_segments_total{transport=\"udp\"} %d\n", m.UDPSegments)

	// Datagram-transport health: drops and dups are normal under loss —
	// the go-back-N window absorbs them — but a rising drop rate with a
	// full inbox means the archive path, not the network, is the
	// bottleneck.
	fmt.Fprintf(w, "# HELP plad_udp_datagrams_total Well-formed datagrams received by the UDP ingest listeners.\n# TYPE plad_udp_datagrams_total counter\nplad_udp_datagrams_total %d\n", m.UDP.Datagrams)
	fmt.Fprintf(w, "# HELP plad_udp_drops_total Datagrams dropped: malformed, unroutable, or shed by inbox backpressure.\n# TYPE plad_udp_drops_total counter\nplad_udp_drops_total %d\n", m.UDP.Drops)
	fmt.Fprintf(w, "# HELP plad_udp_dups_total Retransmitted datagrams carrying already-delivered data.\n# TYPE plad_udp_dups_total counter\nplad_udp_dups_total %d\n", m.UDP.Dups)
	fmt.Fprintf(w, "# HELP plad_udp_out_of_window_total Datagrams too far ahead of the reassembly window to buffer.\n# TYPE plad_udp_out_of_window_total counter\nplad_udp_out_of_window_total %d\n", m.UDP.OutOfWindow)

	emit := func(name, typ, help string, val func(ShardMetrics) int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		for _, sm := range m.Shards {
			fmt.Fprintf(w, "%s{shard=%s} %d\n", name, strconv.Quote(strconv.Itoa(sm.Shard)), val(sm))
		}
	}
	gauge := func(name, help string, val func(ShardMetrics) int64) { emit(name, "gauge", help, val) }
	counter := func(name, help string, val func(ShardMetrics) int64) { emit(name, "counter", help, val) }

	gauge("plad_shard_queue_depth", "Jobs waiting on the shard queue right now.",
		func(sm ShardMetrics) int64 { return int64(sm.QueueLen) })
	gauge("plad_shard_queue_capacity", "Shard queue capacity.",
		func(sm ShardMetrics) int64 { return int64(sm.QueueCap) })
	counter("plad_shard_segments_total", "Segments applied to the archive.",
		func(sm ShardMetrics) int64 { return sm.Segments })
	counter("plad_shard_points_total", "Original samples represented by applied segments.",
		func(sm ShardMetrics) int64 { return sm.Points })
	counter("plad_shard_rejected_total", "Segments refused (time order, or failed write-ahead).",
		func(sm ShardMetrics) int64 { return sm.Rejected })
	counter("plad_shard_dropped_total", "Segments shed by the overload policy.",
		func(sm ShardMetrics) int64 { return sm.Dropped })
	counter("plad_shard_wire_bytes_total", "Wire bytes attributed to the shard.",
		func(sm ShardMetrics) int64 { return sm.Bytes })
	counter("plad_shard_barriers_total", "Barriers acknowledged (session stream ends and fences).",
		func(sm ShardMetrics) int64 { return sm.Barriers })
	counter("plad_shard_commits_total", "WAL commit batches; barriers/commits is the group-commit factor.",
		func(sm ShardMetrics) int64 { return sm.Commits })
	counter("plad_shard_wal_bytes_total", "Bytes appended to the shard's WAL partition.",
		func(sm ShardMetrics) int64 { return sm.WALBytes })
	counter("plad_shard_wal_fsyncs_total", "Fsyncs issued by the shard's WAL partition.",
		func(sm ShardMetrics) int64 { return sm.Fsyncs })
	gauge("plad_shard_lag_sessions", "Active ingest sessions that advertised a max-lag bound.",
		func(sm ShardMetrics) int64 { return sm.LagSessions })
	gauge("plad_shard_lag_pending_points", "Points covered only provisionally across the shard's lag-bounded sessions (last received minus last finalized; each session's staleness stays below its advertised bound).",
		func(sm ShardMetrics) int64 { return sm.LagPoints })
	counter("plad_shard_lag_updates_total", "Provisional max-lag receiver updates applied.",
		func(sm ShardMetrics) int64 { return sm.LagUpdates })
	counter("plad_shard_degraded_total", "Drop-oldest enqueues that could not shed without blocking and degraded to backpressure.",
		func(sm ShardMetrics) int64 { return sm.Degraded })
	counter("plad_shard_shed_points_total", "Points retune-capable senders reported decimating ahead of their filter, by the fed shard.",
		func(sm ShardMetrics) int64 { return sm.ShedPoints })

	// Graceful-degradation health: how many sessions can be renegotiated,
	// how often the server has asked, and the worst honest-precision
	// inflation right now. A plad_session_eps_effective pinned above 1 is
	// the signal that queries are running wider than their contracts.
	fmt.Fprintf(w, "# HELP plad_retune_sessions Live retune-capable ingest sessions.\n# TYPE plad_retune_sessions gauge\nplad_retune_sessions %d\n", m.RetuneSessions)
	fmt.Fprintf(w, "# HELP plad_retune_frames_total Renegotiation frames written to retune-capable sessions.\n# TYPE plad_retune_frames_total counter\nplad_retune_frames_total %d\n", m.RetuneFrames)
	fmt.Fprintf(w, "# HELP plad_session_eps_effective Worst effective-ε inflation ratio (announced effective ε over handshake contract) across live retune sessions; 1 while nothing is degraded.\n# TYPE plad_session_eps_effective gauge\nplad_session_eps_effective %g\n", m.EpsEffectiveMax)

	// Query-engine pushdown counters: how AGG/QUANTILE ranges were
	// covered. cached+built windows vs walked segments is the
	// pushdown-vs-scan ratio — a healthy read path answers mostly from
	// summary windows (sidecars and memos), walking only range edges
	// and unsealed tails.
	qc := s.engine.Counters()
	emitc := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	emitc("plad_query_agg_total", "AGG pushdown queries answered.", qc.AggQueries)
	emitc("plad_query_quantile_total", "QUANTILE pushdown queries answered.", qc.QuantileQueries)
	emitc("plad_query_windows_cached_total", "Summary windows served from a cache (mmap sidecar or series memo).", qc.CachedWindows)
	emitc("plad_query_windows_built_total", "Summary windows built from segments on demand.", qc.BuiltWindows)
	emitc("plad_query_segments_walked_total", "Segments folded individually (range edges, partial windows, unsealed tails).", qc.WalkedSegments)

	// Rollup-tier health: builds and re-encoded segments say the sweep is
	// keeping tiers fresh; tier hits say bound-carrying queries actually
	// land on them.
	if m.RollupActive {
		emitc("plad_rollup_builds_total", "Rollup passes that extended or rebuilt a tier.", m.RollupBuilds)
		emitc("plad_rollup_segments_total", "Coarse segments written by rollup passes.", m.RollupSegments)
		emitc("plad_rollup_tier_hits_total", "Query computations served from a rollup tier instead of the base series.", qc.TierHits)
	}

	// Extent-store counters (mmap backend only): the compaction policy
	// and fence-index hit rate, observable in production.
	if m.MStoreActive {
		fmt.Fprintf(w, "# HELP plad_mstore_extents Live mapped extent files across open series stores.\n# TYPE plad_mstore_extents gauge\nplad_mstore_extents %d\n", m.MStore.Extents)
		emitc("plad_mstore_compactions_total", "Background extent merges committed.", int64(m.MStore.Compactions))
		emitc("plad_mstore_compacted_bytes_total", "Bytes of small extent files merged away by compaction.", int64(m.MStore.CompactedBytes))
		emitc("plad_mstore_index_jumps_total", "Sealed-archive lookups served via the learned fence index.", int64(m.MStore.IndexJumps))
		if m.RollupActive {
			fmt.Fprintf(w, "# HELP plad_rollup_extents Live mapped extent files belonging to rollup tiers.\n# TYPE plad_rollup_extents gauge\nplad_rollup_extents %d\n", m.MStore.RollupExtents)
		}
	}
}

// MetricNames lists every metric name `/metrics` can emit, in exposition
// order. It is the contract the operations documentation is checked
// against (`make docs-check`), and a test asserts it matches a live
// scrape of a fully-featured server so the two cannot drift.
func MetricNames() []string {
	return []string{
		"plad_sessions_active",
		"plad_sessions_total",
		"plad_transport_sessions_total",
		"plad_transport_segments_total",
		"plad_udp_datagrams_total",
		"plad_udp_drops_total",
		"plad_udp_dups_total",
		"plad_udp_out_of_window_total",
		"plad_shard_queue_depth",
		"plad_shard_queue_capacity",
		"plad_shard_segments_total",
		"plad_shard_points_total",
		"plad_shard_rejected_total",
		"plad_shard_dropped_total",
		"plad_shard_wire_bytes_total",
		"plad_shard_barriers_total",
		"plad_shard_commits_total",
		"plad_shard_wal_bytes_total",
		"plad_shard_wal_fsyncs_total",
		"plad_shard_lag_sessions",
		"plad_shard_lag_pending_points",
		"plad_shard_lag_updates_total",
		"plad_shard_degraded_total",
		"plad_shard_shed_points_total",
		"plad_retune_sessions",
		"plad_retune_frames_total",
		"plad_session_eps_effective",
		"plad_query_agg_total",
		"plad_query_quantile_total",
		"plad_query_windows_cached_total",
		"plad_query_windows_built_total",
		"plad_query_segments_walked_total",
		"plad_rollup_builds_total",
		"plad_rollup_segments_total",
		"plad_rollup_tier_hits_total",
		"plad_mstore_extents",
		"plad_mstore_compactions_total",
		"plad_mstore_compacted_bytes_total",
		"plad_mstore_index_jumps_total",
		"plad_rollup_extents",
	}
}
