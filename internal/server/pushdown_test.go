package server

import (
	"context"
	"io/fs"
	"math"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"github.com/pla-go/pla/internal/core"
	"github.com/pla-go/pla/internal/gen"
	"github.com/pla-go/pla/internal/sketch"
	"github.com/pla-go/pla/internal/wal"
)

// startDurable launches a durable server over the given backend with New
// building the archive (required for mmap), on an ephemeral loopback
// port. Shutdown is the caller's job — the pushdown acceptance test
// restarts servers mid-test.
func startDurable(t *testing.T, dir string, backend StoreBackend) (*Server, string) {
	t.Helper()
	s, err := New(nil, Config{Shards: 2, DataDir: dir, StoreBackend: backend, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	return s, ln.Addr().String()
}

func stopServer(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// streamPoints runs one complete ingest session for name.
func streamPoints(t *testing.T, addr, name string, eps float64, pts []core.Point) {
	t.Helper()
	f, err := core.NewSlide([]float64{eps})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr, name, f)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SendBatch(pts); err != nil {
		t.Fatal(err)
	}
	ack, err := c.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ack.Rejected != 0 || ack.Dropped != 0 {
		t.Fatalf("%s: ack %+v, want clean", name, ack)
	}
}

// scanFold is the SCAN-and-fold reference: every sample of the served
// reconstruction (provisional tail included), folded brute-force.
func scanFold(t *testing.T, q *QueryClient, name string, t0, t1 float64) (agg sketch.Agg, vals []float64) {
	t.Helper()
	segs, err := q.Scan(name, t0, t1)
	if err != nil {
		t.Fatalf("SCAN %s: %v", name, err)
	}
	agg.Min, agg.Max = math.Inf(1), math.Inf(-1)
	for _, seg := range segs {
		lo, hi, _, _, ok := sketch.SegRange(seg, 0, t0, t1)
		if !ok {
			continue
		}
		agg.Segments++
		for i := lo; i <= hi; i++ {
			var f float64
			if seg.Points > 1 {
				f = float64(i) / float64(seg.Points-1)
			}
			v := seg.X0[0] + f*(seg.X1[0]-seg.X0[0])
			agg.Min = math.Min(agg.Min, v)
			agg.Max = math.Max(agg.Max, v)
			agg.Sum += v
			agg.Count++
			vals = append(vals, v)
		}
	}
	sort.Float64s(vals)
	return agg, vals
}

// checkAgainstFold asserts every AGG op and a quantile spread against
// the SCAN-and-fold reference, and returns the answers for later
// byte-stability comparison. The pushdown computes the same closed-form
// statistics the fold enumerates, so min/max/count must match exactly
// and sum to float association slack; quantile bands must contain the
// fold's order statistics.
func checkAgainstFold(t *testing.T, q *QueryClient, name string, t0, t1 float64,
	agg sketch.Agg, vals []float64) ([]AggValue, []QuantileValue) {
	t.Helper()
	var aggs []AggValue
	for _, op := range []string{"min", "max", "avg", "sum", "count"} {
		res, err := q.Agg(op, name, 0, t0, t1)
		if err != nil {
			t.Fatalf("AGG %s %s: %v", op, name, err)
		}
		var want float64
		switch op {
		case "min":
			want = agg.Min
		case "max":
			want = agg.Max
		case "avg":
			want = agg.Sum / agg.Count
		case "sum":
			want = agg.Sum
		case "count":
			want = agg.Count
		}
		slack := 1e-9 * math.Max(1, math.Abs(want))
		if math.Abs(res.Value-want) > slack {
			t.Fatalf("AGG %s %s = %v, fold reference %v", op, name, res.Value, want)
		}
		if res.Count != int64(agg.Count) {
			t.Fatalf("AGG %s %s count %d, fold counted %v samples", op, name, res.Count, agg.Count)
		}
		aggs = append(aggs, res)
	}
	qs := []float64{0, 0.25, 0.5, 0.75, 0.9, 1}
	rows, err := q.Quantiles(name, 0, t0, t1, qs...)
	if err != nil {
		t.Fatalf("QUANTILE %s: %v", name, err)
	}
	if len(rows) != len(qs) {
		t.Fatalf("QUANTILE %s: %d rows, want %d", name, len(rows), len(qs))
	}
	for i, row := range rows {
		ref := vals[int(math.Round(qs[i]*float64(len(vals)-1)))]
		if ref < row.Lo-1e-9 || ref > row.Hi+1e-9 {
			t.Fatalf("QUANTILE %s q=%v: fold reference %v outside band [%v, %v]",
				name, qs[i], ref, row.Lo, row.Hi)
		}
		if row.Value < row.Lo || row.Value > row.Hi {
			t.Fatalf("QUANTILE %s q=%v: value %v outside its own band [%v, %v]",
				name, qs[i], row.Value, row.Lo, row.Hi)
		}
	}
	return aggs, rows
}

// TestPushdownAcceptance is the subsystem's server-level acceptance
// loop on the mmap backend: AGG and QUANTILE over a range spanning
// sealed extents (compacted mid-ingest), the unsealed post-compaction
// tail, and a lag-bounded session's provisional points, all checked
// against a SCAN-and-fold reference; then a restart (answers identical,
// sketch sidecars recovered) and a restart with every sidecar corrupted
// (answers still identical through the rebuild fallback).
func TestPushdownAcceptance(t *testing.T) {
	const eps = 0.25
	dir := t.TempDir()
	s, addr := startDurable(t, dir, BackendMmap)

	sigA := gen.Sine(6000, 10, 480, 0.3, 7)
	sigB := gen.RandomWalk(gen.WalkConfig{N: 6000, P: 0.5, MaxDelta: 0.6, Seed: 8})

	// Sealed part: ingest, then compact so the mmap backend seals
	// extents (and writes their sketch sidecars).
	streamPoints(t, addr, "a", eps, sigA[:5000])
	streamPoints(t, addr, "b", eps, sigB[:5000])
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	// Unsealed tail: finalized segments the compaction never saw.
	streamPoints(t, addr, "a", eps, sigA[5000:])
	streamPoints(t, addr, "b", eps, sigB[5000:])

	// Provisional tail: a lag-bounded session on a quiet ramp keeps one
	// interval open forever; only provisional updates cover it.
	cl, err := DialSpec(addr, "lag", FilterSpec{Kind: "swing", Epsilon: []float64{eps}, MaxLag: 25})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	for i := 0; i < 800; i++ {
		if err := cl.Send(core.Point{T: float64(i), X: []float64{0.001 * float64(i)}}); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}

	q, err := DialQuery(addr)
	if err != nil {
		t.Fatal(err)
	}
	eventually(t, 5*time.Second, func() (bool, string) {
		info, err := q.Lag("lag")
		if err != nil {
			return false, "LAG lag: " + err.Error()
		}
		if info.Pending == 0 {
			return false, "the lag session never surfaced provisional coverage"
		}
		return true, ""
	})

	const t0, t1 = 0.0, 1e6
	foldA, valsA := scanFold(t, q, "a", t0, t1)
	foldB, valsB := scanFold(t, q, "b", t0, t1)
	foldL, valsL := scanFold(t, q, "lag", t0, t1)
	if foldL.Count == 0 {
		t.Fatal("the provisional tail contributed no samples to the reference")
	}

	aggA, _ := checkAgainstFold(t, q, "a", t0, t1, foldA, valsA)
	checkAgainstFold(t, q, "b", t0, t1, foldB, valsB)
	checkAgainstFold(t, q, "lag", t0, t1, foldL, valsL)

	// The fan-out answer must match the pooled fold.
	var foldAll sketch.Agg
	foldAll.Join(foldA)
	foldAll.Join(foldB)
	foldAll.Join(foldL)
	valsAll := append(append(append([]float64(nil), valsA...), valsB...), valsL...)
	sort.Float64s(valsAll)
	checkAgainstFold(t, q, "*", t0, t1, foldAll, valsAll)

	// The sealed prefix is thousands of segments: the range must have
	// been answered through summary windows, not a per-segment walk.
	if aggA[0].Windows == 0 {
		t.Fatalf("AGG over %d sealed segments used no summary windows", aggA[0].Segments)
	}

	// Answers over the finalized series must be byte-stable across a
	// restart (floats round-trip 'g'/-1, so struct equality is byte
	// equality of the protocol). The lag series' provisional tail is
	// transient wire state and legitimately gone after a restart.
	collect := func(q *QueryClient) (out []AggValue, rows [][]QuantileValue) {
		for _, name := range []string{"a", "b"} {
			for _, op := range []string{"min", "max", "avg", "sum", "count"} {
				res, err := q.Agg(op, name, 0, t0, t1)
				if err != nil {
					t.Fatalf("AGG %s %s: %v", op, name, err)
				}
				out = append(out, res)
			}
			r, err := q.Quantiles(name, 0, t0, t1, 0.1, 0.5, 0.99)
			if err != nil {
				t.Fatalf("QUANTILE %s: %v", name, err)
			}
			rows = append(rows, r)
		}
		return out, rows
	}
	wantAggs, wantRows := collect(q)
	q.Close()

	// End the lag session before draining — an open ingest session
	// blocks shutdown by design.
	if _, err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	stopServer(t, s)
	s2, addr2 := startDurable(t, dir, BackendMmap)
	q2, err := DialQuery(addr2)
	if err != nil {
		t.Fatal(err)
	}
	gotAggs, gotRows := collect(q2)
	if !reflect.DeepEqual(gotAggs, wantAggs) || !reflect.DeepEqual(gotRows, wantRows) {
		t.Fatalf("answers changed across restart:\n got %+v %+v\nwant %+v %+v", gotAggs, gotRows, wantAggs, wantRows)
	}
	q2.Close()
	stopServer(t, s2)

	// Corrupt every sketch sidecar on disk. The store must drop them at
	// open and the engine must rebuild the windows from segments — same
	// answers, different path.
	corrupted := 0
	err = filepath.WalkDir(wal.ExtentDir(dir), func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".sum") {
			return err
		}
		raw, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		raw[len(raw)/2] ^= 0xff
		corrupted++
		return os.WriteFile(path, raw, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	if corrupted == 0 {
		t.Fatal("no sketch sidecars on disk — sealing never wrote them")
	}

	s3, addr3 := startDurable(t, dir, BackendMmap)
	defer stopServer(t, s3)
	q3, err := DialQuery(addr3)
	if err != nil {
		t.Fatal(err)
	}
	defer q3.Close()
	gotAggs, gotRows = collect(q3)
	if !reflect.DeepEqual(gotAggs, wantAggs) || !reflect.DeepEqual(gotRows, wantRows) {
		t.Fatalf("fallback answers differ from sidecar answers:\n got %+v %+v\nwant %+v %+v", gotAggs, gotRows, wantAggs, wantRows)
	}
	c := s3.Engine().Counters()
	if c.BuiltWindows == 0 {
		t.Fatal("with every sidecar corrupt the engine still claims cached windows only")
	}
}
