package server

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"
	"unicode"
	"unicode/utf8"

	"github.com/pla-go/pla/internal/tsdb"
)

// Wire protocol. Every connection opens with a 4-byte magic selecting the
// session kind:
//
//	ingest ("PLDI"): uvarint name length + series name, then the standard
//	  encode stream (header, segments, terminator) wrapped in
//	  length-prefixed frames (encode.FrameWriter). The server answers the
//	  handshake with one status byte (0 = accepted; 1 = rejected followed
//	  by a uvarint-length message), and answers the stream terminator —
//	  after every finalized segment of the session has been applied to the
//	  archive — with a final acknowledgement: status byte plus three
//	  uvarints (segments applied, rejected, dropped).
//
//	query ("PLDQ"): a line-oriented text protocol; see query.go.
const (
	magicIngest = "PLDI"
	magicQuery  = "PLDQ"
)

const (
	statusOK  byte = 0
	statusErr byte = 1
	// statusRetune does double duty on retune-capable sessions (ingest
	// handshakes whose stream header sets the retune flag). As the
	// handshake reply it accepts the session AND acknowledges the
	// capability — only after seeing it may the client put opRetune
	// records on the wire, so an old server (which answers statusOK)
	// keeps a perfectly readable stream. Mid-stream it prefixes a
	// server→client renegotiation frame: uvarint dim (0 = keep the
	// current ε) + dim float64 bits (little-endian) + uvarint stride.
	// Old clients never set the flag, so they never see either use.
	statusRetune byte = 2
)

// maxNameLen bounds the series name accepted in an ingest handshake.
const maxNameLen = 255

// validateName enforces the series-name charset on both ends of the
// handshake: 1..maxNameLen bytes of valid UTF-8 with no spaces and no
// control characters. Names travel unescaped through the line-oriented,
// whitespace-split query protocol, so a name containing either would be
// unaddressable at best and able to forge listing rows at worst.
func validateName(name string) error {
	if len(name) == 0 || len(name) > maxNameLen {
		return fmt.Errorf("%w: series name must be 1..%d bytes", ErrProtocol, maxNameLen)
	}
	if !utf8.ValidString(name) {
		return fmt.Errorf("%w: series name is not valid UTF-8", ErrProtocol)
	}
	for _, r := range name {
		if unicode.IsSpace(r) || unicode.IsControl(r) {
			return fmt.Errorf("%w: series name %q contains whitespace or control characters", ErrProtocol, name)
		}
	}
	return nil
}

// Errors surfaced by the protocol layer.
var (
	// ErrProtocol reports a malformed exchange.
	ErrProtocol = errors.New("server: protocol error")
	// ErrRejected wraps a server-side handshake rejection as seen by the
	// client (the cause is in the message text).
	ErrRejected = errors.New("server: rejected")
	// ErrClosed reports an operation on a closed server or client.
	ErrClosed = errors.New("server: closed")
	// ErrNoData reports a query over a time range with no coverage. It
	// is the archive's own sentinel, so errors.Is matches whether the
	// query ran over the wire or against a local tsdb series.
	ErrNoData = tsdb.ErrNoData
)

// Ack is the server's end-of-stream accounting for one ingest session.
type Ack struct {
	// Applied is the number of segments stored in the archive.
	Applied int64
	// Rejected is the number of segments the archive refused (out of
	// time order, typically a second client interleaving on the series).
	Rejected int64
	// Dropped is the number of segments shed by the overload policy.
	Dropped int64
}

func writeUvarint(w io.Writer, v uint64) error {
	var tmp [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(tmp[:], v)
	_, err := w.Write(tmp[:n])
	return err
}

// writeHandshake sends the session magic and, for ingest, the series name.
func writeHandshake(w io.Writer, magic, name string) error {
	if _, err := io.WriteString(w, magic); err != nil {
		return err
	}
	if magic != magicIngest {
		return nil
	}
	if err := validateName(name); err != nil {
		return err
	}
	if err := writeUvarint(w, uint64(len(name))); err != nil {
		return err
	}
	_, err := io.WriteString(w, name)
	return err
}

// readName reads the series name of an ingest handshake.
func readName(br *bufio.Reader) (string, error) {
	n, err := binary.ReadUvarint(br)
	if err != nil {
		return "", fmt.Errorf("%w: bad name length: %v", ErrProtocol, err)
	}
	if n == 0 || n > maxNameLen {
		return "", fmt.Errorf("%w: series name length %d", ErrProtocol, n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(br, buf); err != nil {
		return "", fmt.Errorf("%w: truncated name: %v", ErrProtocol, err)
	}
	name := string(buf)
	if err := validateName(name); err != nil {
		return "", err
	}
	return name, nil
}

func writeStatusOK(w io.Writer) error {
	_, err := w.Write([]byte{statusOK})
	return err
}

func writeStatusErr(w io.Writer, msg string) error {
	if len(msg) > 1<<10 {
		msg = msg[:1<<10]
	}
	if _, err := w.Write([]byte{statusErr}); err != nil {
		return err
	}
	if err := writeUvarint(w, uint64(len(msg))); err != nil {
		return err
	}
	_, err := io.WriteString(w, msg)
	return err
}

// readStatus reads a status byte, returning the remote rejection as an
// error wrapping ErrRejected.
func readStatus(br *bufio.Reader) error {
	b, err := br.ReadByte()
	if err != nil {
		return fmt.Errorf("%w: missing status: %v", ErrProtocol, err)
	}
	switch b {
	case statusOK:
		return nil
	case statusErr:
		return readErrBody(br)
	default:
		return fmt.Errorf("%w: unknown status %#x", ErrProtocol, b)
	}
}

// readErrBody reads the message that follows a statusErr byte.
func readErrBody(br *bufio.Reader) error {
	n, err := binary.ReadUvarint(br)
	if err != nil || n > 1<<10 {
		return fmt.Errorf("%w: bad rejection message", ErrProtocol)
	}
	msg := make([]byte, n)
	if _, err := io.ReadFull(br, msg); err != nil {
		return fmt.Errorf("%w: truncated rejection message", ErrProtocol)
	}
	return fmt.Errorf("%w: %s", ErrRejected, msg)
}

// writeRetuneFrame sends one server→client renegotiation: a nil eps
// keeps the session's current precision, stride is the absolute
// decimation stride to run from now on (0 = stop decimating).
func writeRetuneFrame(w io.Writer, eps []float64, stride int) error {
	if _, err := w.Write([]byte{statusRetune}); err != nil {
		return err
	}
	if err := writeUvarint(w, uint64(len(eps))); err != nil {
		return err
	}
	var tmp [8]byte
	for _, e := range eps {
		binary.LittleEndian.PutUint64(tmp[:], math.Float64bits(e))
		if _, err := w.Write(tmp[:]); err != nil {
			return err
		}
	}
	return writeUvarint(w, uint64(stride))
}

// readRetuneBody reads the renegotiation payload that follows a
// statusRetune byte mid-stream. eps is nil when the server kept the
// session's current precision.
func readRetuneBody(br *bufio.Reader) (eps []float64, stride int, err error) {
	dim, err := binary.ReadUvarint(br)
	if err != nil || dim > 1<<10 {
		return nil, 0, fmt.Errorf("%w: bad retune frame", ErrProtocol)
	}
	if dim > 0 {
		eps = make([]float64, dim)
		var tmp [8]byte
		for i := range eps {
			if _, err := io.ReadFull(br, tmp[:]); err != nil {
				return nil, 0, fmt.Errorf("%w: truncated retune frame", ErrProtocol)
			}
			eps[i] = math.Float64frombits(binary.LittleEndian.Uint64(tmp[:]))
			if math.IsNaN(eps[i]) || math.IsInf(eps[i], 0) || eps[i] <= 0 {
				return nil, 0, fmt.Errorf("%w: retune ε[%d] = %v", ErrProtocol, i, eps[i])
			}
		}
	}
	k, err := binary.ReadUvarint(br)
	if err != nil || k == 1 || k > 1<<20 {
		return nil, 0, fmt.Errorf("%w: bad retune stride", ErrProtocol)
	}
	return eps, int(k), nil
}

// writeAck sends the final ingest acknowledgement.
func writeAck(w io.Writer, a Ack) error {
	if err := writeStatusOK(w); err != nil {
		return err
	}
	for _, v := range [...]int64{a.Applied, a.Rejected, a.Dropped} {
		if err := writeUvarint(w, uint64(v)); err != nil {
			return err
		}
	}
	return nil
}

// readAck reads the final ingest acknowledgement (or a rejection).
func readAck(br *bufio.Reader) (Ack, error) {
	if err := readStatus(br); err != nil {
		return Ack{}, err
	}
	return readAckBody(br)
}

// readAckBody reads the three ack counters that follow a statusOK byte.
func readAckBody(br *bufio.Reader) (Ack, error) {
	var a Ack
	for _, p := range [...]*int64{&a.Applied, &a.Rejected, &a.Dropped} {
		v, err := binary.ReadUvarint(br)
		if err != nil {
			return Ack{}, fmt.Errorf("%w: truncated ack: %v", ErrProtocol, err)
		}
		*p = int64(v)
	}
	return a, nil
}
