package server_test

import (
	"context"
	"fmt"
	"io"
	"net"
	"strings"
	"testing"
	"time"

	"github.com/pla-go/pla/internal/core"
	"github.com/pla-go/pla/internal/loadgen"
	"github.com/pla-go/pla/internal/server"
)

// startBackend builds a durable server over the given store backend and
// returns it with a live loopback address. tweak, when non-nil, adjusts
// the config before the server starts.
func startBackend(t *testing.T, dir string, backend server.StoreBackend, tweak func(*server.Config)) (*server.Server, string) {
	t.Helper()
	cfg := server.Config{
		Shards:       3,
		DataDir:      dir,
		StoreBackend: backend,
		Logf:         t.Logf,
	}
	if tweak != nil {
		tweak(&cfg)
	}
	s, err := server.New(nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	return s, ln.Addr().String()
}

// rawQuery runs a fixed command script over one raw query session and
// returns the exact bytes the server answered with.
func rawQuery(t *testing.T, addr string, cmds []string) string {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var sb strings.Builder
	sb.WriteString("PLDQ")
	for _, c := range cmds {
		sb.WriteString(c)
		sb.WriteString("\n")
	}
	sb.WriteString("QUIT\n")
	if _, err := io.WriteString(conn, sb.String()); err != nil {
		t.Fatal(err)
	}
	out, err := io.ReadAll(conn)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

// TestStoreBackendQueryParity drives the identical workload — plain and
// lag-bounded sessions over real TCP, a compaction in the middle, a
// restart at the end — through a mem-backed and an mmap-backed server,
// and requires the raw bytes of every query response to be identical.
// This is the acceptance bar for the second backend: not "equivalent",
// byte-equal.
func TestStoreBackendQueryParity(t *testing.T) {
	runBackendQueryParity(t, nil, false)
}

// TestStoreBackendQueryParityCompacted is the same byte-equality bar
// with extent compaction forced aggressive (merge from two extents up)
// and a sweep after each ingest phase: the second sweep seals a second
// extent per series and merges the pile in the same pass, so the final
// queries are answered from merged bit-packed v2 extents — which must
// change nothing observable.
func TestStoreBackendQueryParityCompacted(t *testing.T) {
	runBackendQueryParity(t, func(cfg *server.Config) { cfg.ExtentCompactMin = 2 }, true)
}

func runBackendQueryParity(t *testing.T, tweak func(*server.Config), compacted bool) {
	type inst struct {
		s    *server.Server
		addr string
		dir  string
	}
	backends := []server.StoreBackend{server.BackendMem, server.BackendMmap}
	insts := make([]inst, len(backends))
	for i, b := range backends {
		dir := t.TempDir()
		s, addr := startBackend(t, dir, b, tweak)
		insts[i] = inst{s: s, addr: addr, dir: dir}
	}

	signals := loadgen.Walks(4, 1200)
	halves := func(k int) [][]core.Point {
		out := make([][]core.Point, len(signals))
		for i, sig := range signals {
			mid := len(sig) / 2
			if k == 0 {
				out[i] = sig[:mid]
			} else {
				out[i] = sig[mid:]
			}
		}
		return out
	}

	ingest := func(phase int) {
		for _, in := range insts {
			if res, err := loadgen.Round(in.addr, "walk", halves(phase)); err != nil || res.Rejected != 0 || res.Dropped != 0 {
				t.Fatalf("%s phase %d: %+v, %v", in.dir, phase, res, err)
			}
			if res, err := loadgen.RoundOpts(in.addr, "lagged", halves(phase),
				loadgen.Options{MaxLag: 20, FlushEvery: 100}); err != nil || res.Rejected != 0 {
				t.Fatalf("%s lag phase %d: %+v, %v", in.dir, phase, res, err)
			}
		}
	}

	// A compaction sweep: the mem backend snapshots, the mmap backend
	// seals its extents (and, when the policy is aggressive, merges
	// them), and both keep serving.
	sweep := func() {
		for _, in := range insts {
			if err := in.s.Compact(); err != nil {
				t.Fatal(err)
			}
		}
	}
	ingest(0)
	sweep()
	ingest(1)
	if compacted {
		sweep()
		if got := insts[1].s.Metrics().MStore.Compactions; got == 0 {
			t.Fatal("aggressive policy committed no extent merges")
		}
	}

	var cmds []string
	cmds = append(cmds, "SERIES")
	for c := 0; c < 4; c++ {
		for _, prefix := range []string{"walk", "lagged"} {
			name := fmt.Sprintf("%s-%d", prefix, c)
			cmds = append(cmds,
				"SCAN "+name+" 0 100000",
				"AT "+name+" 17.5",
				"AT "+name+" 600",
				"MEAN "+name+" 0 3 900",
				"MIN "+name+" 0 3 900",
				"MAX "+name+" 0 3 900",
				"LAG "+name,
				"AGG min "+name+" 0 0 100000",
				"AGG max "+name+" 0 3 900",
				"AGG avg "+name+" 0 0 100000",
				"AGG sum "+name+" 0 0 100000",
				"AGG count "+name+" 0 0 100000",
				"QUANTILE "+name+" 0 0 100000 0 0.25 0.5 0.9 1",
			)
		}
	}
	// The fan-out pushdown path: joined over every series, byte-stable
	// whatever the backend or goroutine interleaving.
	cmds = append(cmds,
		"AGG min * 0 0 100000",
		"AGG sum * 0 0 100000",
		"QUANTILE * 0 0 100000 0.1 0.5 0.99",
	)

	compare := func(stage string) {
		want := rawQuery(t, insts[0].addr, cmds)
		got := rawQuery(t, insts[1].addr, cmds)
		if got != want {
			i := 0
			for i < len(got) && i < len(want) && got[i] == want[i] {
				i++
			}
			lo, hi := i-80, i+80
			if lo < 0 {
				lo = 0
			}
			clip := func(s string) string {
				if hi > len(s) {
					return s[lo:]
				}
				return s[lo:hi]
			}
			t.Fatalf("%s: query responses differ at byte %d:\nmem:  …%q…\nmmap: …%q…", stage, i, clip(want), clip(got))
		}
		if !strings.Contains(want, "walk-0") {
			t.Fatalf("%s: comparison ran against an empty archive:\n%s", stage, want)
		}
	}
	compare("live")

	// Restart both from their directories alone and compare again: the
	// mmap server now answers from mapped extents plus a replayed tail.
	for i := range insts {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		if err := insts[i].s.Shutdown(ctx); err != nil {
			t.Fatal(err)
		}
		cancel()
		s, addr := startBackend(t, insts[i].dir, backends[i], tweak)
		insts[i].s, insts[i].addr = s, addr
	}
	defer func() {
		for _, in := range insts {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			in.s.Shutdown(ctx)
			cancel()
		}
	}()
	compare("restarted")
}
