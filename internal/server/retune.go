package server

import (
	"math"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/pla-go/pla/internal/adaptive"
)

// retuneSession is the server's handle on one retune-capable ingest
// session: enough to observe its byte rate, decide its degradation, and
// write renegotiation frames back without tripping over the final ack.
type retuneSession struct {
	conn net.Conn
	name string // series the session feeds
	sh   *shard
	dim  int
	base []float64 // handshake contract ε

	// wmu serialises every server→client write: renegotiation frames
	// from the retune loop, and the session goroutine's final ack.
	wmu sync.Mutex

	// wire is the session's cumulative wire bytes, stored by the session
	// goroutine after each record so the retune loop reads a coherent
	// value without touching the (unsynchronised) counting reader.
	wire atomic.Int64

	// effRatio is the worst announced effective-ε inflation over the
	// contract (float bits; 1.0 until the sender reports degradation) —
	// the per-session health number behind plad_session_eps_effective.
	effRatio atomic.Uint64

	// Retune-loop-owned state (no locking: one loop goroutine).
	lastBytes  int64
	lastScale  float64
	lastStride int
}

func (rs *retuneSession) noteEffRatio(eff []float64) {
	worst := 1.0
	for i, e := range eff {
		if i < len(rs.base) && rs.base[i] > 0 {
			if r := e / rs.base[i]; r > worst {
				worst = r
			}
		}
	}
	rs.effRatio.Store(math.Float64bits(worst))
}

// writeFrame sends one renegotiation frame under the session write lock.
func (rs *retuneSession) writeFrame(eps []float64, stride int) error {
	rs.wmu.Lock()
	defer rs.wmu.Unlock()
	return writeRetuneFrame(rs.conn, eps, stride)
}

// registerRetune tracks a live retune-capable session.
func (s *Server) registerRetune(rs *retuneSession) {
	s.retuneMu.Lock()
	if s.retunes == nil {
		s.retunes = make(map[*retuneSession]struct{})
	}
	s.retunes[rs] = struct{}{}
	s.retuneMu.Unlock()
}

func (s *Server) unregisterRetune(rs *retuneSession) {
	s.retuneMu.Lock()
	delete(s.retunes, rs)
	s.retuneMu.Unlock()
}

func (s *Server) retuneSnapshot() []*retuneSession {
	s.retuneMu.Lock()
	defer s.retuneMu.Unlock()
	out := make([]*retuneSession, 0, len(s.retunes))
	for rs := range s.retunes {
		out = append(out, rs)
	}
	return out
}

// retuneSessionCount and retuneEffMax feed the /metrics gauges.
func (s *Server) retuneSessionCount() int64 {
	s.retuneMu.Lock()
	defer s.retuneMu.Unlock()
	return int64(len(s.retunes))
}

func (s *Server) retuneEffMax() float64 {
	worst := 1.0
	for _, rs := range s.retuneSnapshot() {
		if bits := rs.effRatio.Load(); bits != 0 {
			if r := math.Float64frombits(bits); r > worst {
				worst = r
			}
		}
	}
	return worst
}

// strideForFill is the decimation ladder the retune loop walks as a
// shard comes under pressure: comfortable shards run undecimated, and
// the stride tightens (k = 4 drops a quarter, k = 2 drops half) as
// pressure approaches saturation. fill is the fraction of the shard's
// enqueues over the last retune period that found the queue full and
// had to wait — a windowed signal, so one tick of noise cannot flap the
// stride the way sampling the instantaneous length of a small channel
// would.
func strideForFill(fill float64) int {
	switch {
	case fill < 0.25:
		return 0
	case fill < 0.5:
		return 4
	case fill < 0.75:
		return 3
	default:
		return 2
	}
}

// defaultRetunePeriod is how often the retune loop reconsiders session
// degradation when the Config leaves RetunePeriod zero.
const defaultRetunePeriod = time.Second

// retuneLoop periodically reassesses every retune-capable session:
// queue pressure on the session's shard sets its decimation stride, and
// — when an EpsBudget is configured — the byte-rate budgeter sets its
// ε widening. Only changes are written to the wire.
func (s *Server) retuneLoop(period time.Duration) {
	defer close(s.retuneDone)
	var budgeter *adaptive.Budgeter
	if s.cfg.EpsBudget > 0 {
		budgeter, _ = adaptive.NewBudgeter(s.cfg.EpsBudget)
	}
	press := make(map[*shard][2]int64)
	t := time.NewTicker(period)
	defer t.Stop()
	last := time.Now()
	for {
		select {
		case <-s.retuneStop:
			return
		case now := <-t.C:
			dt := now.Sub(last).Seconds()
			last = now
			if dt <= 0 {
				continue
			}
			s.retuneTick(dt, budgeter, press)
		}
	}
}

// retuneTick runs one reassessment over the live sessions. press is the
// loop's window state: per shard, the enqueue/wait counters as of the
// previous tick.
func (s *Server) retuneTick(dt float64, budgeter *adaptive.Budgeter, press map[*shard][2]int64) {
	sessions := s.retuneSnapshot()
	var scales map[string]float64
	if budgeter != nil {
		rates := make(map[string]float64, len(sessions))
		for _, rs := range sessions {
			cur := rs.wire.Load()
			// Several sessions can feed one series; fold their rates.
			rates[rs.name] += float64(cur-rs.lastBytes) / dt
			rs.lastBytes = cur
		}
		scales = budgeter.Tick(rates)
	}
	var fills map[*shard]float64
	if s.cfg.Policy == Sample {
		fills = make(map[*shard]float64)
		for _, rs := range sessions {
			if _, ok := fills[rs.sh]; ok {
				continue
			}
			waits, total := rs.sh.enqWaits.Load(), rs.sh.enqTotal.Load()
			prev := press[rs.sh]
			press[rs.sh] = [2]int64{waits, total}
			if dn := total - prev[1]; dn > 0 {
				fills[rs.sh] = float64(waits-prev[0]) / float64(dn)
			}
		}
	}
	for _, rs := range sessions {
		stride := 0
		if s.cfg.Policy == Sample {
			stride = strideForFill(fills[rs.sh])
		}
		scale := 1.0
		if scales != nil {
			if sc, ok := scales[rs.name]; ok {
				scale = sc
			}
		}
		if stride == rs.lastStride && math.Abs(scale-rs.lastScale) <= 0.01*rs.lastScale {
			continue
		}
		var eps []float64
		if math.Abs(scale-rs.lastScale) > 0.01*rs.lastScale {
			eps = make([]float64, len(rs.base))
			for i, e := range rs.base {
				eps[i] = e * scale
			}
		}
		if err := rs.writeFrame(eps, stride); err != nil {
			// The session is on its way out; its teardown unregisters it.
			s.logf("server: retune %q: %v", rs.name, err)
			continue
		}
		s.retuneFrames.Add(1)
		rs.lastStride, rs.lastScale = stride, scale
	}
}
