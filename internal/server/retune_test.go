package server

import (
	"bufio"
	"io"
	"math"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/pla-go/pla/internal/core"
	"github.com/pla-go/pla/internal/encode"
	"github.com/pla-go/pla/internal/gen"
	"github.com/pla-go/pla/internal/tsdb"
)

// TestAdaptiveSessionEndToEnd runs a decimating session against a
// Sample-policy server and checks the whole degradation ledger: shed
// counts reach the shard metrics, the series' query bound widens to the
// announced effective ε, and the archived reconstruction honours it.
func TestAdaptiveSessionEndToEnd(t *testing.T) {
	s, addr := startServer(t, Config{Shards: 2, Policy: Sample})
	signal := gen.RandomWalk(gen.WalkConfig{N: 500, P: 0.5, MaxDelta: 0.4, Seed: 21})

	c, err := DialAdaptive(addr, "adaptive", FilterSpec{Kind: "swing", Epsilon: []float64{0.1}})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Capable() {
		t.Fatal("server did not acknowledge the retune capability")
	}
	for i, p := range signal {
		if i == 100 {
			if err := c.SetStride(2); err != nil {
				t.Fatal(err)
			}
		}
		if err := c.Send(p); err != nil {
			t.Fatal(err)
		}
	}
	reported := append([]float64(nil), c.EffectiveEpsilon()...)
	shed := c.ShedPoints()
	if shed == 0 {
		t.Fatal("stride 2 shed nothing")
	}
	if reported[0] <= 0.1 {
		t.Fatalf("effective ε %g did not inflate over the contract", reported[0])
	}
	if _, err := c.Close(); err != nil {
		t.Fatal(err)
	}

	// Close's exact final announcement makes the server's ledger match
	// the client's lifetime counters.
	reported = c.EffectiveEpsilon() // Close settles a trailing pending drop
	shed = c.ShedPoints()
	var gotShed int64
	for _, sm := range s.Metrics().Shards {
		gotShed += sm.ShedPoints
	}
	if gotShed != int64(shed) {
		t.Fatalf("server shed ledger %d != client %d", gotShed, shed)
	}

	sr, err := s.db.Get("adaptive")
	if err != nil {
		t.Fatal(err)
	}
	qe := sr.QueryEpsilon()
	if math.Abs(qe[0]-reported[0]) > 1e-9 {
		t.Fatalf("query bound %g, want the announced %g", qe[0], reported[0])
	}
	for _, p := range signal {
		x, ok := sr.At(p.T)
		if !ok {
			t.Fatalf("no coverage at t=%v — decimation must not lose intervals", p.T)
		}
		if e := math.Abs(x[0] - p.X[0]); e > qe[0]+1e-9 {
			t.Fatalf("error %g at t=%v exceeds the reported bound %g", e, p.T, qe[0])
		}
	}
}

// TestPlainClientAgainstSampleServer pins old-client compatibility: a
// client without the capability runs under Sample exactly as under
// Block — statusOK handshake, nothing shed, contract bounds.
func TestPlainClientAgainstSampleServer(t *testing.T) {
	s, addr := startServer(t, Config{Shards: 1, Policy: Sample})
	f, err := core.NewSwing([]float64{0.1})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(addr, "plain", f)
	if err != nil {
		t.Fatal(err)
	}
	signal := gen.RandomWalk(gen.WalkConfig{N: 300, P: 0.5, MaxDelta: 0.4, Seed: 4})
	if err := c.SendBatch(signal); err != nil {
		t.Fatal(err)
	}
	ack, err := c.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ack.Dropped != 0 {
		t.Fatalf("Sample dropped %d segments from a plain client", ack.Dropped)
	}
	sr, err := s.db.Get("plain")
	if err != nil {
		t.Fatal(err)
	}
	if qe := sr.QueryEpsilon(); qe[0] != 0.1 {
		t.Fatalf("plain session query bound %g, want the contract 0.1", qe[0])
	}
	if n := s.retuneSessionCount(); n != 0 {
		t.Fatalf("%d retune sessions registered for a plain client", n)
	}
}

// TestAdaptiveClientAgainstOldServer drives the adaptive client at a
// fake pre-retune server (handshake answered with plain statusOK) and
// checks the client degrades to exactly the old behaviour: no opRetune
// record ever reaches the wire, and the session closes with a clean ack.
func TestAdaptiveClientAgainstOldServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type oldResult struct {
		retunes int
		applied int64
		err     error
	}
	resCh := make(chan oldResult, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			resCh <- oldResult{err: err}
			return
		}
		defer conn.Close()
		br := bufio.NewReader(conn)
		magic := make([]byte, 4)
		if _, err := io.ReadFull(br, magic); err != nil {
			resCh <- oldResult{err: err}
			return
		}
		if _, err := readName(br); err != nil {
			resCh <- oldResult{err: err}
			return
		}
		dec, err := encode.NewDecoder(encode.NewFrameReader(br))
		if err != nil {
			resCh <- oldResult{err: err}
			return
		}
		// The old server's answer: plain acceptance, no capability.
		if err := writeStatusOK(conn); err != nil {
			resCh <- oldResult{err: err}
			return
		}
		var applied int64
		for {
			_, err := dec.Next()
			if err == io.EOF {
				break
			}
			if err != nil {
				resCh <- oldResult{err: err}
				return
			}
			applied++
		}
		if err := writeAck(conn, Ack{Applied: applied}); err != nil {
			resCh <- oldResult{err: err}
			return
		}
		resCh <- oldResult{retunes: dec.RetuneGen(), applied: applied}
	}()

	c, err := DialAdaptive(ln.Addr().String(), "legacy", FilterSpec{Kind: "swing", Epsilon: []float64{0.1}})
	if err != nil {
		t.Fatal(err)
	}
	if c.Capable() {
		t.Fatal("client claims capability an old server never acked")
	}
	// A locally forced stride still decimates — but must stay silent.
	if err := c.SetStride(2); err != nil {
		t.Fatal(err)
	}
	signal := gen.RandomWalk(gen.WalkConfig{N: 300, P: 0.5, MaxDelta: 0.4, Seed: 9})
	for _, p := range signal {
		if err := c.Send(p); err != nil {
			t.Fatal(err)
		}
	}
	ack, err := c.Close()
	if err != nil {
		t.Fatal(err)
	}
	res := <-resCh
	if res.err != nil {
		t.Fatal(res.err)
	}
	if res.retunes != 0 {
		t.Fatalf("%d opRetune records reached an old server", res.retunes)
	}
	if ack.Applied != res.applied || ack.Applied == 0 {
		t.Fatalf("ack %+v vs server applied %d", ack, res.applied)
	}
	if c.ShedPoints() == 0 {
		t.Fatal("local stride did not decimate")
	}
}

// TestServerRenegotiatesUnderBudget runs a server whose ε byte budget is
// far below the session's rate and checks a live renegotiation arrives,
// is applied mid-stream, and widens the archived query bound.
func TestServerRenegotiatesUnderBudget(t *testing.T) {
	s, addr := startServer(t, Config{Shards: 1, EpsBudget: 1, RetunePeriod: 10 * time.Millisecond})
	c, err := DialAdaptive(addr, "budgeted", FilterSpec{Kind: "swing", Epsilon: []float64{0.05}})
	if err != nil {
		t.Fatal(err)
	}
	rng := gen.NewRNG(31)
	x, tt := 0.0, 0.0
	deadline := time.Now().Add(10 * time.Second)
	for c.Retunes() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("no renegotiation applied within 10s")
		}
		x += rng.Float64() - 0.5
		tt++
		if err := c.Send(core.Point{T: tt, X: []float64{x}}); err != nil {
			t.Fatal(err)
		}
	}
	// A few more points under the widened contract, then a clean end.
	for i := 0; i < 100; i++ {
		x += rng.Float64() - 0.5
		tt++
		if err := c.Send(core.Point{T: tt, X: []float64{x}}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if got := c.EffectiveEpsilon()[0]; got <= 0.05 {
		t.Fatalf("effective ε %g did not widen under budget pressure", got)
	}
	m := s.Metrics()
	if m.RetuneFrames == 0 {
		t.Fatal("server counted no renegotiation frames")
	}
	sr, err := s.db.Get("budgeted")
	if err != nil {
		t.Fatal(err)
	}
	if qe := sr.QueryEpsilon(); qe[0] <= 0.05 {
		t.Fatalf("query bound %g did not widen", qe[0])
	}
}

// TestDropOldestManyProducersTorture hammers a live shard with many
// concurrent drop-oldest producers, each fencing behind its own
// barriers: every barrier must complete (none shed, none deadlocked)
// and the segment ledger must balance exactly.
func TestDropOldestManyProducersTorture(t *testing.T) {
	const producers, perProducer, barriersEach = 8, 400, 5
	sh := newShard(0, 2, time.Millisecond, 0, nil, nil)
	go sh.run()
	db := tsdb.New()
	var wg sync.WaitGroup
	sessions := make([]*ingestSession, producers)
	for pr := 0; pr < producers; pr++ {
		sr, _, err := db.GetOrCreate(string(rune('a'+pr)), []float64{1}, false)
		if err != nil {
			t.Fatal(err)
		}
		sessions[pr] = &ingestSession{}
		wg.Add(1)
		go func(pr int, sr *tsdb.Series) {
			defer wg.Done()
			sess := sessions[pr]
			for i := 0; i < perProducer; i++ {
				seg := core.Segment{T0: float64(i), T1: float64(i) + 0.5,
					X0: []float64{0}, X1: []float64{1}, Points: 2}
				sh.enqueue(job{sess: sess, series: sr, seg: seg}, DropOldest)
				if i%(perProducer/barriersEach) == 0 {
					b := make(chan error, 1)
					sh.enqueue(job{barrier: b}, DropOldest)
					select {
					case err := <-b:
						if err != nil {
							t.Errorf("producer %d: barrier: %v", pr, err)
						}
					case <-time.After(10 * time.Second):
						t.Errorf("producer %d: barrier lost under drop-oldest churn", pr)
					}
				}
			}
		}(pr, sr)
	}
	wg.Wait()
	close(sh.jobs)
	<-sh.done
	var applied, dropped, rejected int64
	for _, sess := range sessions {
		applied += sess.applied.Load()
		dropped += sess.dropped.Load()
		rejected += sess.rejected.Load()
	}
	if total := applied + dropped + rejected; total != producers*perProducer {
		t.Fatalf("ledger leaks segments: applied %d + dropped %d + rejected %d = %d, want %d",
			applied, dropped, rejected, total, producers*perProducer)
	}
	if dropped == 0 {
		t.Fatal("no segment was ever shed — the torture did not overload the queue")
	}
	if shDropped := sh.dropped.Load(); shDropped != dropped {
		t.Fatalf("shard dropped %d != sessions' %d", shDropped, dropped)
	}
}
