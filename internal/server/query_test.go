package server

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"testing"

	"github.com/pla-go/pla/internal/gen"
)

// rawQuery drives the line protocol directly — no client library — so
// the server-side error branches are exercised exactly as a hand-typed
// or buggy client would hit them.
type rawQuery struct {
	conn net.Conn
	br   *bufio.Reader
}

func dialRawQuery(t *testing.T, addr string) *rawQuery {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	if _, err := conn.Write([]byte(magicQuery)); err != nil {
		t.Fatal(err)
	}
	return &rawQuery{conn: conn, br: bufio.NewReader(conn)}
}

// line sends one command and returns the first response line.
func (rq *rawQuery) line(t *testing.T, cmd string) string {
	t.Helper()
	if _, err := fmt.Fprintf(rq.conn, "%s\n", cmd); err != nil {
		t.Fatal(err)
	}
	resp, err := rq.br.ReadString('\n')
	if err != nil {
		t.Fatalf("%s: read response: %v", cmd, err)
	}
	return strings.TrimRight(resp, "\n")
}

// TestQueryProtocolErrorBranches walks every textual rejection the query
// dispatcher can produce: unknown series, malformed numbers and ranges,
// wrong argument counts, empty windows, unknown commands — each must
// answer one "ERR ..." line and leave the session usable.
func TestQueryProtocolErrorBranches(t *testing.T) {
	_, addr := startServer(t, Config{Shards: 2})

	// One covered series so the "known series, bad arguments" branches
	// are reachable.
	c, err := Dial(addr, "known", mustLinear(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range gen.Sine(50, 2, 10, 0, 1) { // covers [0, 49]
		if err := c.Send(p); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Close(); err != nil {
		t.Fatal(err)
	}

	rq := dialRawQuery(t, addr)
	cases := []struct {
		cmd      string
		wantPfx  string
		describe string
	}{
		{"AT missing 5", "ERR ", "unknown series"},
		{"MEAN missing 0 0 10", "ERR ", "unknown series (aggregate)"},
		{"SCAN missing 0 10", "ERR ", "unknown series (scan)"},
		{"AT known", "ERR ", "missing arguments"},
		{"AT known 1 2", "ERR ", "too many arguments"},
		{"AT known notatime", "ERR bad time", "malformed time"},
		{"AT known 1e9", "ERR no data", "uncovered time"},
		{"MEAN known x 0 10", "ERR bad dim", "malformed dim"},
		{"MEAN known 7 0 10", "ERR ", "out-of-range dim"},
		{"MEAN known 0 zero ten", "ERR bad range", "malformed range"},
		{"MEAN known 0 40 2", "ERR ", "inverted range"},
		{"MEAN known 0 5000 6000", "ERR no data", "empty window"},
		{"MIN known 0 nan nan", "ERR ", "NaN range"},
		{"MAX known 0 5000 6000", "ERR no data", "empty window (max)"},
		{"SCAN known zero ten", "ERR bad range", "malformed scan range"},
		{"SCAN known 40 2", "ERR ", "inverted scan range"},
		{"SCAN known", "ERR ", "scan arity"},
		{"FROB known", "ERR unknown command", "unknown command"},
	}
	for _, tc := range cases {
		resp := rq.line(t, tc.cmd)
		if !strings.HasPrefix(resp, tc.wantPfx) {
			t.Errorf("%s (%q): response %q, want prefix %q", tc.describe, tc.cmd, resp, tc.wantPfx)
		}
		if strings.HasPrefix(resp, "OK") {
			t.Errorf("%s (%q): accepted with %q", tc.describe, tc.cmd, resp)
		}
	}

	// The session survives every rejection: a well-formed command still
	// answers, and QUIT closes cleanly.
	if resp := rq.line(t, "AT known 5"); !strings.HasPrefix(resp, "OK ") {
		t.Errorf("session broken after error branches: AT answered %q", resp)
	}
	if resp := rq.line(t, "QUIT"); resp != "OK bye" {
		t.Errorf("QUIT answered %q", resp)
	}
}

// TestQueryEmptyWindowAggregates pins the distinguished "no data" error
// for every aggregate over a covered series' empty sub-window — clients
// map that prefix to ErrNoData, so the wording is part of the protocol.
func TestQueryEmptyWindowAggregates(t *testing.T) {
	_, addr := startServer(t, Config{Shards: 1})
	c, err := Dial(addr, "sparse", mustLinear(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range gen.Sine(30, 2, 10, 0, 3) { // covers [0, 29]
		if err := c.Send(p); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Close(); err != nil {
		t.Fatal(err)
	}
	rq := dialRawQuery(t, addr)
	for _, cmd := range []string{"MEAN", "MIN", "MAX"} {
		resp := rq.line(t, cmd+" sparse 0 1000 2000")
		if !strings.HasPrefix(resp, "ERR no data") {
			t.Errorf("%s over empty window answered %q, want \"ERR no data ...\"", cmd, resp)
		}
	}
}
