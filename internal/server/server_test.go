package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"math"
	"net"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/pla-go/pla/internal/core"
	"github.com/pla-go/pla/internal/gen"
	"github.com/pla-go/pla/internal/tsdb"
	"github.com/pla-go/pla/internal/wal"
)

// startServer launches a server on an ephemeral loopback port and returns
// it with a cleanup that shuts it down.
func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	db := tsdb.New()
	s, err := New(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
		if err := <-serveErr; err != ErrClosed {
			t.Errorf("Serve returned %v, want ErrClosed", err)
		}
	})
	return s, ln.Addr().String()
}

// sensor is one test client's workload: a named signal and the filter it
// streams through.
type sensor struct {
	name   string
	signal []core.Point
	filter func() (core.Filter, error)
	eps    []float64
}

// testFleet builds n single- and multi-dimensional sensors cycling over
// every filter kind.
func testFleet(n int) []sensor {
	fleet := make([]sensor, n)
	for i := range fleet {
		i := i
		eps := []float64{0.25}
		var signal []core.Point
		var filter func() (core.Filter, error)
		switch i % 4 {
		case 0:
			signal = gen.Sine(600, 10, 120, 0.05, uint64(i+1))
			filter = func() (core.Filter, error) { return core.NewCache(eps) }
		case 1:
			signal = gen.Steps(600, 25, 4, uint64(i+1))
			filter = func() (core.Filter, error) { return core.NewLinear(eps) }
		case 2:
			signal = gen.RandomWalk(gen.WalkConfig{N: 600, P: 0.5, MaxDelta: 0.4, Seed: uint64(i + 1)})
			filter = func() (core.Filter, error) { return core.NewSwing(eps) }
		default:
			eps = []float64{0.25, 0.4, 0.3}
			signal = gen.MultiWalk(gen.MultiWalkConfig{
				WalkConfig:  gen.WalkConfig{N: 600, P: 0.5, MaxDelta: 0.4, Seed: uint64(i + 1)},
				Dims:        3,
				Correlation: 0.5,
			})
			filter = func() (core.Filter, error) { return core.NewSlide(eps) }
		}
		fleet[i] = sensor{name: fmt.Sprintf("sensor-%02d", i), signal: signal, filter: filter, eps: eps}
	}
	return fleet
}

// runSensor streams a sensor's signal through a dialed client and returns
// the ack.
func runSensor(addr string, sn sensor) (Ack, core.Stats, int64, error) {
	f, err := sn.filter()
	if err != nil {
		return Ack{}, core.Stats{}, 0, err
	}
	c, err := Dial(addr, sn.name, f)
	if err != nil {
		return Ack{}, core.Stats{}, 0, err
	}
	for _, p := range sn.signal {
		if err := c.Send(p); err != nil {
			return Ack{}, core.Stats{}, 0, fmt.Errorf("%s: send: %w", sn.name, err)
		}
	}
	ack, err := c.Close()
	// Stats/BytesSent after Close include the final segments + terminator.
	return ack, c.Stats(), c.BytesSent(), err
}

// TestConcurrentClientsEpsilonBound drives 12 simultaneous clients over
// loopback TCP and asserts that every resolved sample of every sensor is
// within its ε of the archive's reconstruction, and that the aggregate
// bands contain the true sample statistics they bound.
func TestConcurrentClientsEpsilonBound(t *testing.T) {
	srv, addr := startServer(t, Config{Shards: 4, QueueDepth: 64})
	fleet := testFleet(12)

	var wg sync.WaitGroup
	acks := make([]Ack, len(fleet))
	stats := make([]core.Stats, len(fleet))
	sent := make([]int64, len(fleet))
	errs := make([]error, len(fleet))
	for i, sn := range fleet {
		wg.Add(1)
		go func(i int, sn sensor) {
			defer wg.Done()
			acks[i], stats[i], sent[i], errs[i] = runSensor(addr, sn)
		}(i, sn)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}

	q, err := DialQuery(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()

	for i, sn := range fleet {
		if acks[i].Rejected != 0 || acks[i].Dropped != 0 {
			t.Errorf("%s: ack %+v, want no rejects/drops", sn.name, acks[i])
		}
		if int(acks[i].Applied) != stats[i].Segments {
			t.Errorf("%s: applied %d of %d finalized segments", sn.name, acks[i].Applied, stats[i].Segments)
		}
		// The paper's contract, end to end: every sample within ε of the
		// served reconstruction, per dimension.
		recSum := make([]float64, len(sn.eps))
		for _, p := range sn.signal {
			x, err := q.At(sn.name, p.T)
			if err != nil {
				t.Fatalf("%s: At(%v): %v", sn.name, p.T, err)
			}
			for d := range p.X {
				if diff := math.Abs(x[d] - p.X[d]); diff > sn.eps[d]+1e-9 {
					t.Fatalf("%s: |rec−x| = %v > ε = %v at t=%v dim %d", sn.name, diff, sn.eps[d], p.T, d)
				}
				recSum[d] += x[d]
			}
		}
		// Aggregate bands: the true extrema must respect the one-sided
		// guarantees, and the true mean must sit inside the ±ε band up to
		// the continuous-vs-sampled slack.
		t0, t1 := sn.signal[0].T, sn.signal[len(sn.signal)-1].T
		for d := range sn.eps {
			trueMin, trueMax, trueSum := math.Inf(1), math.Inf(-1), 0.0
			for _, p := range sn.signal {
				trueMin = math.Min(trueMin, p.X[d])
				trueMax = math.Max(trueMax, p.X[d])
				trueSum += p.X[d]
			}
			trueMean := trueSum / float64(len(sn.signal))
			mn, err := q.Min(sn.name, d, t0, t1)
			if err != nil {
				t.Fatal(err)
			}
			if trueMin < mn.Lo()-1e-9 {
				t.Errorf("%s dim %d: true min %v below band floor %v", sn.name, d, trueMin, mn.Lo())
			}
			mx, err := q.Max(sn.name, d, t0, t1)
			if err != nil {
				t.Fatal(err)
			}
			if trueMax > mx.Hi()+1e-9 {
				t.Errorf("%s dim %d: true max %v above band ceiling %v", sn.name, d, trueMax, mx.Hi())
			}
			me, err := q.Mean(sn.name, d, t0, t1)
			if err != nil {
				t.Fatal(err)
			}
			// The deterministic mean band runs through the reconstruction
			// at the sample times (|rec−x| ≤ ε averages to ≤ ε); the
			// time-weighted MEAN must sit in the reconstruction's own
			// [min, max] envelope.
			recMean := recSum[d] / float64(len(sn.signal))
			if math.Abs(recMean-trueMean) > me.Epsilon+1e-9 {
				t.Errorf("%s dim %d: true mean %v outside reconstruction band %v ± %v",
					sn.name, d, trueMean, recMean, me.Epsilon)
			}
			if me.Value < mn.Value-1e-9 || me.Value > mx.Value+1e-9 {
				t.Errorf("%s dim %d: MEAN %v outside [MIN %v, MAX %v]", sn.name, d, me.Value, mn.Value, mx.Value)
			}
		}
	}

	// Metrics agree with the acks, and both ends count the same wire
	// bytes (handshake + frames + terminator).
	var applied, wire int64
	for i, a := range acks {
		applied += a.Applied
		wire += sent[i]
	}
	m := srv.Metrics()
	if m.Segments != applied || m.Rejected != 0 || m.Dropped != 0 {
		t.Errorf("server metrics %+v, want %d segments, 0 rejected/dropped", m, applied)
	}
	if m.Bytes != wire {
		t.Errorf("server counted %d wire bytes, clients sent %d", m.Bytes, wire)
	}
	if m.TotalSessions != int64(len(fleet)) {
		t.Errorf("total sessions %d, want %d", m.TotalSessions, len(fleet))
	}
	rows, err := q.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	var viaQuery int64
	for _, r := range rows {
		viaQuery += r.Segments
	}
	if viaQuery != applied {
		t.Errorf("METRICS reports %d segments, want %d", viaQuery, applied)
	}
	infos, err := q.Series()
	if err != nil {
		t.Fatal(err)
	}
	if len(infos) != len(fleet) {
		t.Errorf("SERIES lists %d series, want %d", len(infos), len(fleet))
	}
}

// TestShutdownDrain starts a graceful shutdown while clients are still
// streaming and asserts that no finalized segment is lost: everything the
// acks count as applied is in the archive when Shutdown returns.
func TestShutdownDrain(t *testing.T) {
	db := tsdb.New()
	// A tiny queue forces real backpressure through the drain path.
	s, err := New(db, Config{Shards: 2, QueueDepth: 2})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	serveErr := make(chan error, 1)
	go func() { serveErr <- s.Serve(ln) }()

	fleet := testFleet(8)
	acks := make([]Ack, len(fleet))
	errs := make([]error, len(fleet))
	connected := make(chan struct{}, len(fleet))
	var wg sync.WaitGroup
	for i, sn := range fleet {
		wg.Add(1)
		go func(i int, sn sensor) {
			defer wg.Done()
			f, err := sn.filter()
			if err != nil {
				errs[i] = err
				connected <- struct{}{}
				return
			}
			c, err := Dial(ln.Addr().String(), sn.name, f)
			connected <- struct{}{}
			if err != nil {
				errs[i] = err
				return
			}
			for _, p := range sn.signal {
				if err := c.Send(p); err != nil {
					errs[i] = err
					return
				}
			}
			acks[i], errs[i] = c.Close()
		}(i, sn)
	}
	// Begin the shutdown as soon as every handshake is through, while the
	// sessions are still pumping points. Graceful drain must wait for all
	// of them.
	for range fleet {
		<-connected
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	wg.Wait()
	if err := <-serveErr; err != ErrClosed {
		t.Errorf("Serve returned %v, want ErrClosed", err)
	}

	var wantSegs int64
	for i := range fleet {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		if acks[i].Rejected != 0 || acks[i].Dropped != 0 {
			t.Errorf("%s: ack %+v, want clean", fleet[i].name, acks[i])
		}
		wantSegs += acks[i].Applied
	}
	var gotSegs int
	for _, name := range db.Names() {
		sr, err := db.Get(name)
		if err != nil {
			t.Fatal(err)
		}
		gotSegs += sr.Len()
	}
	if int64(gotSegs) != wantSegs {
		t.Errorf("archive holds %d segments after drain, acks promised %d", gotSegs, wantSegs)
	}
	// New sessions are refused after shutdown.
	if _, err := Dial(ln.Addr().String(), "late", mustLinear(t)); err == nil {
		t.Error("Dial succeeded after Shutdown")
	}
}

func mustLinear(t *testing.T) core.Filter {
	t.Helper()
	f, err := core.NewLinear([]float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// TestNetPipeSession runs a full ingest round trip over net.Pipe via
// ServeConn — no sockets involved.
func TestNetPipeSession(t *testing.T) {
	db := tsdb.New()
	s, err := New(db, Config{Shards: 1, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	}()

	cli, srvEnd := net.Pipe()
	served := make(chan error, 1)
	go func() { served <- s.ServeConn(srvEnd) }()

	// NewClient's handshake blocks until the server answers, so build it
	// concurrently with the server's reader.
	type dialed struct {
		c   *Client
		err error
	}
	dialCh := make(chan dialed, 1)
	signal := gen.Sine(200, 5, 50, 0, 7)
	go func() {
		f, err := core.NewSwing([]float64{0.2})
		if err != nil {
			dialCh <- dialed{err: err}
			return
		}
		c, err := NewClient(cli, "pipe-series", f)
		dialCh <- dialed{c: c, err: err}
	}()
	d := <-dialCh
	if d.err != nil {
		t.Fatal(d.err)
	}
	if err := d.c.SendBatch(signal); err != nil {
		t.Fatal(err)
	}
	ack, err := d.c.Close()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-served; err != nil {
		t.Fatalf("ServeConn: %v", err)
	}
	if ack.Applied == 0 || ack.Rejected != 0 || ack.Dropped != 0 {
		t.Fatalf("ack %+v", ack)
	}
	sr, err := db.Get("pipe-series")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range signal {
		x, ok := sr.At(p.T)
		if !ok {
			t.Fatalf("t=%v not covered", p.T)
		}
		if math.Abs(x[0]-p.X[0]) > 0.2+1e-9 {
			t.Fatalf("|rec−x| = %v > ε at t=%v", math.Abs(x[0]-p.X[0]), p.T)
		}
	}
}

// TestContractMismatch rejects a second client declaring a different
// precision contract for an existing series.
func TestContractMismatch(t *testing.T) {
	_, addr := startServer(t, Config{Shards: 1})
	f1, _ := core.NewLinear([]float64{0.5})
	c, err := Dial(addr, "shared", f1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Close(); err != nil {
		t.Fatal(err)
	}
	f2, _ := core.NewLinear([]float64{0.9})
	if _, err := Dial(addr, "shared", f2); err == nil {
		t.Fatal("mismatched contract accepted")
	}
	f3, _ := core.NewCache([]float64{0.5})
	if _, err := Dial(addr, "shared", f3); err == nil {
		t.Fatal("constant/linear mismatch accepted")
	}
	// A matching redial is fine.
	f4, _ := core.NewLinear([]float64{0.5})
	c4, err := Dial(addr, "shared", f4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c4.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestQueryErrors exercises the textual error paths.
func TestQueryErrors(t *testing.T) {
	_, addr := startServer(t, Config{Shards: 1})
	q, err := DialQuery(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	if _, err := q.At("nope", 1); err == nil {
		t.Error("AT on missing series succeeded")
	}
	// An injected newline must be rejected client-side, and must not
	// desynchronise the session for later calls.
	if _, err := q.At("x\nMETRICS", 1); !errors.Is(err, ErrProtocol) {
		t.Errorf("AT with embedded newline returned %v, want ErrProtocol", err)
	}
	if _, err := q.Series(); err != nil {
		t.Errorf("session desynchronised after rejected name: %v", err)
	}
	if _, err := q.do("FROB x"); err == nil {
		t.Error("unknown command succeeded")
	}
	// Covered series, uncovered time.
	f, _ := core.NewLinear([]float64{0.5})
	c, err := Dial(addr, "small", f)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range gen.Sine(50, 2, 10, 0, 1) {
		if err := c.Send(p); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := q.At("small", 1e9); err == nil {
		t.Error("AT outside coverage succeeded")
	}
	segs, err := q.Scan("small", 0, 49)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) == 0 {
		t.Error("SCAN returned nothing over the covered range")
	}
}

// TestSeriesNameValidation rejects names that would break the
// line-oriented query protocol, on both ends of the handshake.
func TestSeriesNameValidation(t *testing.T) {
	_, addr := startServer(t, Config{Shards: 1})
	for _, bad := range []string{"", "two words", "tab\tname", "line\nbreak", "ctrl\x01", string([]byte{0xff, 0xfe})} {
		if _, err := Dial(addr, bad, mustLinear(t)); err == nil {
			t.Errorf("name %q accepted", bad)
		}
	}
	// The server enforces it independently of the client library.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	raw := append([]byte(magicIngest), 3, 'a', ' ', 'b')
	if _, err := conn.Write(raw); err != nil {
		t.Fatal(err)
	}
	if err := readStatus(bufio.NewReader(conn)); err == nil {
		t.Error("server accepted a series name with a space")
	}
	// Valid names still work.
	c, err := Dial(addr, "ok-name_9.x", mustLinear(t))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestShutdownClosesQuerySessions: an idle query connection must not
// hold a graceful drain open.
func TestShutdownClosesQuerySessions(t *testing.T) {
	db := tsdb.New()
	s, err := New(db, Config{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	q, err := DialQuery(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := q.Series(); err != nil { // session is live
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("Shutdown took %v with only an idle query session attached", elapsed)
	}
	q.Close()
}

// TestAggregateNoData maps empty-range aggregates to ErrNoData, distinct
// from other rejections.
func TestAggregateNoData(t *testing.T) {
	_, addr := startServer(t, Config{Shards: 1})
	c, err := Dial(addr, "gap", mustLinear(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range gen.Sine(50, 2, 10, 0, 1) { // covers [0, 49]
		if err := c.Send(p); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Close(); err != nil {
		t.Fatal(err)
	}
	q, err := DialQuery(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	if _, err := q.Mean("gap", 0, 5000, 6000); !errors.Is(err, ErrNoData) {
		t.Errorf("empty-range MEAN returned %v, want ErrNoData", err)
	}
	if _, err := q.Min("gap", 0, 10, 5); errors.Is(err, ErrNoData) || err == nil {
		t.Errorf("inverted range MIN returned %v, want a non-ErrNoData rejection", err)
	}
}

// TestDropNewestSheds verifies the shed path deterministically against a
// shard whose worker is not draining.
func TestDropNewestSheds(t *testing.T) {
	sh := newShard(0, 2, 5*time.Millisecond, 0, nil, nil) // worker intentionally not started
	db := tsdb.New()
	sr, _, err := db.GetOrCreate("s", []float64{1}, false)
	if err != nil {
		t.Fatal(err)
	}
	sess := &ingestSession{}
	seg := core.Segment{T0: 0, T1: 1, X0: []float64{0}, X1: []float64{1}, Points: 2}
	for i := 0; i < 3; i++ {
		sh.enqueue(job{sess: sess, series: sr, seg: seg}, DropNewest)
	}
	if got := sh.dropped.Load(); got != 1 {
		t.Fatalf("dropped %d, want 1", got)
	}
	if got := sess.dropped.Load(); got != 1 {
		t.Fatalf("session dropped %d, want 1", got)
	}
	// Draining now applies the two queued jobs and exits cleanly.
	close(sh.jobs)
	sh.run2(t)
}

// run2 drains a pre-closed shard synchronously for the unit test above.
func (sh *shard) run2(t *testing.T) {
	t.Helper()
	sh.run()
	if got := sh.segments.Load(); got != 2 {
		t.Fatalf("applied %d, want 2", got)
	}
}

// TestDropOldestSheds verifies the fresh-over-stale shed path against a
// shard whose worker is not draining: the oldest queued segment goes, the
// newest stays, and a queued barrier survives shedding.
func TestDropOldestSheds(t *testing.T) {
	sh := newShard(0, 2, 5*time.Millisecond, 0, nil, nil) // worker intentionally not started
	db := tsdb.New()
	sr, _, err := db.GetOrCreate("s", []float64{1}, false)
	if err != nil {
		t.Fatal(err)
	}
	sess := &ingestSession{}
	mkSeg := func(i int) core.Segment {
		return core.Segment{T0: float64(i), T1: float64(i) + 0.5, X0: []float64{0}, X1: []float64{1}, Points: 2}
	}
	barrier := make(chan error, 1)
	sh.enqueue(job{barrier: barrier}, DropOldest)
	for i := 0; i < 3; i++ {
		sh.enqueue(job{sess: sess, series: sr, seg: mkSeg(i)}, DropOldest)
	}
	// Queue cap 2 holding a barrier: segments 0 and 1 had to go; the
	// barrier and segment 2 remain.
	if got := sh.dropped.Load(); got != 2 {
		t.Fatalf("dropped %d, want 2", got)
	}
	if got := sess.dropped.Load(); got != 2 {
		t.Fatalf("session dropped %d, want 2", got)
	}
	close(sh.jobs)
	sh.run()
	select {
	case <-barrier:
	default:
		t.Fatal("queued barrier was shed by DropOldest")
	}
	if got := sh.segments.Load(); got != 1 {
		t.Fatalf("applied %d, want 1 (the newest)", got)
	}
	segs := sr.Segments()
	if len(segs) != 1 || segs[0].T0 != 2 {
		t.Fatalf("archive holds %+v, want only the newest segment (T0=2)", segs)
	}
}

// TestDropOldestSustainedOverload pushes an order of magnitude more
// segments than the queue holds through the shed path, with barriers
// interleaved: the freshest segments must survive, every stale one is
// counted, and no barrier is ever shed however long the overload lasts.
func TestDropOldestSustainedOverload(t *testing.T) {
	const depth, total, nBarriers = 8, 64, 2
	sh := newShard(0, depth, 5*time.Millisecond, 0, nil, nil) // worker intentionally not started
	db := tsdb.New()
	sr, _, err := db.GetOrCreate("s", []float64{1}, false)
	if err != nil {
		t.Fatal(err)
	}
	sess := &ingestSession{}
	mkSeg := func(i int) core.Segment {
		return core.Segment{T0: float64(i), T1: float64(i) + 0.5, X0: []float64{0}, X1: []float64{1}, Points: 2}
	}
	// Barriers go in first (they enqueue with Block semantics and must
	// never be shed); the flood then churns the whole queue many times
	// over, repeatedly popping the barriers off the head and proving the
	// re-push keeps them alive through sustained shedding.
	barriers := make([]chan error, nBarriers)
	for i := range barriers {
		barriers[i] = make(chan error, 1)
		sh.enqueue(job{barrier: barriers[i]}, DropOldest)
	}
	for i := 0; i < total; i++ {
		sh.enqueue(job{sess: sess, series: sr, seg: mkSeg(i)}, DropOldest)
	}
	// The queue holds the barriers (never shed) plus the freshest
	// segments that fit around them.
	wantKept := depth - len(barriers)
	if got := sess.dropped.Load(); got != int64(total-wantKept) {
		t.Fatalf("dropped %d, want %d", got, total-wantKept)
	}
	close(sh.jobs)
	sh.run()
	for i, b := range barriers {
		select {
		case err, ok := <-b:
			if ok && err != nil {
				t.Fatalf("barrier %d reported %v", i, err)
			}
		default:
			t.Fatalf("barrier %d was shed under sustained overload", i)
		}
	}
	segs := sr.Segments()
	if len(segs) != wantKept {
		t.Fatalf("archive holds %d segments, want the %d freshest", len(segs), wantKept)
	}
	// Survivors are exactly the tail of the stream.
	for i, seg := range segs {
		if want := float64(total - wantKept + i); seg.T0 != want {
			t.Fatalf("survivor %d starts at %v, want %v (freshest data must win)", i, seg.T0, want)
		}
	}
	if got := sh.barriers.Load(); got != int64(len(barriers)) {
		t.Fatalf("acked %d barriers, want %d", got, len(barriers))
	}
}

// TestGroupCommitBatchesBarriers proves the group-commit contract
// deterministically: many barriers queued behind segments drain in one
// pass and share a single WAL commit (one fsync under SyncAlways), and
// every waiter is acknowledged.
func TestGroupCommitBatchesBarriers(t *testing.T) {
	st, _, err := wal.Open(t.TempDir(), 1, tsdb.New(), wal.Options{Policy: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	sh := newShard(0, 64, 5*time.Millisecond, 0, st.Shard(0), nil) // worker not started: jobs pile up
	sr, _, err := st.DB().GetOrCreate("g", []float64{1}, false)
	if err != nil {
		t.Fatal(err)
	}
	fsyncs0 := st.Shard(0).Metrics().Fsyncs
	var barriers []chan error
	for i := 0; i < 8; i++ {
		sh.enqueue(job{series: sr, seg: core.Segment{
			T0: float64(i), T1: float64(i) + 0.5, X0: []float64{0}, X1: []float64{1}, Points: 2,
		}}, Block)
		b := make(chan error, 1)
		barriers = append(barriers, b)
		sh.enqueue(job{barrier: b}, Block)
	}
	close(sh.jobs)
	sh.run() // drains everything in one greedy pass

	for i, b := range barriers {
		if err, ok := <-b; ok && err != nil {
			t.Fatalf("barrier %d: %v", i, err)
		}
	}
	if got := sh.commits.Load(); got != 1 {
		t.Fatalf("%d commit batches for 8 barriers, want 1 (group commit)", got)
	}
	if got := sh.barriers.Load(); got != 8 {
		t.Fatalf("acked %d barriers, want 8", got)
	}
	if got := st.Shard(0).Metrics().Fsyncs - fsyncs0; got != 1 {
		t.Fatalf("%d fsyncs for 8 barriers, want 1", got)
	}
	if got := sh.segments.Load(); got != 8 {
		t.Fatalf("applied %d segments, want 8", got)
	}
}

// TestRetentionEndToEnd runs retention through the server path: ingest,
// compact with a window, verify the old segments left both the archive
// and (after restart) the disk.
func TestRetentionEndToEnd(t *testing.T) {
	dataDir := t.TempDir()
	db := tsdb.New()
	// testFleet signals cover t ∈ [0, 599]; retain the last 100 units.
	s, err := New(db, Config{Shards: 2, DataDir: dataDir, Sync: wal.SyncAlways, RetainSegments: 100})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	fleet := testFleet(4)
	for _, sn := range fleet {
		if _, _, _, err := runSensor(addrOf(ln), sn); err != nil {
			t.Fatal(err)
		}
	}
	full := make(map[string]int)
	for _, sn := range fleet {
		sr, err := db.Get(sn.name)
		if err != nil {
			t.Fatal(err)
		}
		full[sn.name] = sr.Len()
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	for _, sn := range fleet {
		sr, err := db.Get(sn.name)
		if err != nil {
			t.Fatal(err)
		}
		if sr.Len() >= full[sn.name] {
			t.Errorf("%s: %d segments after retention compaction, had %d — nothing aged out", sn.name, sr.Len(), full[sn.name])
		}
		segs := sr.Segments()
		if len(segs) == 0 {
			t.Fatalf("%s: retention emptied the series", sn.name)
		}
		_, end, _ := sr.Span()
		if segs[0].T1 < end-100 {
			t.Errorf("%s: oldest surviving segment ends at %v, window floor %v", sn.name, segs[0].T1, end-100)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}

	// The restart serves the pruned state, not the full history.
	db2 := tsdb.New()
	s2, err := New(db2, Config{Shards: 2, DataDir: dataDir, RetainSegments: 100})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s2.Shutdown(ctx)
	}()
	for _, sn := range fleet {
		live, _ := db.Get(sn.name)
		got, err := db2.Get(sn.name)
		if err != nil {
			t.Fatalf("%s lost across retention restart: %v", sn.name, err)
		}
		if got.Len() != live.Len() {
			t.Errorf("%s: %d segments after restart, want %d", sn.name, got.Len(), live.Len())
		}
	}
}

// copyDataDir clones a data directory byte for byte (shard subdirs
// included) — the moral equivalent of reading the disk after a crash,
// without racing the still-open file handles of the "crashed" server.
func copyDataDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	copyTree(t, src, dst)
	return dst
}

func copyTree(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			sub := filepath.Join(dst, e.Name())
			if err := os.MkdirAll(sub, 0o755); err != nil {
				t.Fatal(err)
			}
			copyTree(t, filepath.Join(src, e.Name()), sub)
			continue
		}
		raw, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestKillAndRestartDurability is the durability acceptance test: under
// wal.SyncAlways, every batch acked before a hard crash must survive a
// restart, segment for segment — including when the crash tears the last
// WAL write in half.
func TestKillAndRestartDurability(t *testing.T) {
	dataDir := t.TempDir()
	db := tsdb.New()
	s, err := New(db, Config{Shards: 4, QueueDepth: 64, DataDir: dataDir, Sync: wal.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	// The server is never shut down cleanly in this test — that is the
	// point — but the goroutines are reaped at the end.
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})

	fleet := testFleet(8)
	var wg sync.WaitGroup
	acks := make([]Ack, len(fleet))
	errs := make([]error, len(fleet))
	for i, sn := range fleet {
		wg.Add(1)
		go func(i int, sn sensor) {
			defer wg.Done()
			acks[i], _, _, errs[i] = runSensor(addrOf(ln), sn)
		}(i, sn)
	}
	wg.Wait()
	var acked int64
	for i := range fleet {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		acked += acks[i].Applied
	}

	// "Kill": copy the data directory out from under the live server and
	// tear every shard's WAL tail, as a crash mid-write would.
	crashed := copyDataDir(t, dataDir)
	_, wals, err := walScan(crashed)
	if err != nil {
		t.Fatal(err)
	}
	if len(wals) == 0 {
		t.Fatal("no wal files written")
	}
	for _, tail := range wals {
		f, err := os.OpenFile(tail, os.O_APPEND|os.O_WRONLY, 0o644)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write([]byte{0x42, 0x13}); err != nil { // half a record
			t.Fatal(err)
		}
		f.Close()
	}

	// Restart from the crashed copy twice — once with the same shard
	// count (pure per-shard recovery) and once with a different one (the
	// replay-into-new-sharding migration) — and compare segment for
	// segment with the live archive: everything acked was fsynced, so
	// nothing may be missing or reordered either way.
	for _, shards := range []int{4, 3} {
		crashedCopy := copyDataDir(t, crashed)
		db2 := tsdb.New()
		s2, err := New(db2, Config{Shards: shards, DataDir: crashedCopy, Sync: wal.SyncAlways})
		if err != nil {
			t.Fatal(err)
		}
		var recovered int64
		for _, sn := range fleet {
			live, err := db.Get(sn.name)
			if err != nil {
				t.Fatal(err)
			}
			got, err := db2.Get(sn.name)
			if err != nil {
				t.Fatalf("shards=%d: series %q lost in crash: %v", shards, sn.name, err)
			}
			lsegs, gsegs := live.Segments(), got.Segments()
			if len(gsegs) != len(lsegs) {
				t.Fatalf("shards=%d: %s: recovered %d segments, live archive has %d", shards, sn.name, len(gsegs), len(lsegs))
			}
			for i := range lsegs {
				l, g := lsegs[i], gsegs[i]
				if l.T0 != g.T0 || l.T1 != g.T1 || l.Connected != g.Connected || l.Points != g.Points ||
					fmt.Sprint(l.X0) != fmt.Sprint(g.X0) || fmt.Sprint(l.X1) != fmt.Sprint(g.X1) {
					t.Fatalf("shards=%d: %s: segment %d differs after recovery:\nlive %+v\ngot  %+v", shards, sn.name, i, l, g)
				}
			}
			recovered += int64(len(gsegs))
		}
		if recovered != acked {
			t.Fatalf("shards=%d: recovered %d segments, acks promised %d", shards, recovered, acked)
		}
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		s2.Shutdown(ctx)
		cancel()
	}
}

// addrOf shortens ln.Addr().String().
func addrOf(ln net.Listener) string { return ln.Addr().String() }

// walScan lists a data directory's wal and snapshot files in path order,
// descending into the per-shard partition directories.
func walScan(dir string) (snaps, wals []string, err error) {
	err = filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		name := d.Name()
		switch {
		case strings.HasPrefix(name, "snap-") && strings.HasSuffix(name, ".plaa"):
			snaps = append(snaps, path)
		case strings.HasPrefix(name, "wal-") && strings.HasSuffix(name, ".log"):
			wals = append(wals, path)
		}
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	sort.Strings(snaps)
	sort.Strings(wals)
	return snaps, wals, nil
}

// TestGracefulDrainSnapshot checks that a durable server's Shutdown
// leaves exactly one snapshot and no wal tail, and that a restart serves
// the same data with a pure snapshot load.
func TestGracefulDrainSnapshot(t *testing.T) {
	dataDir := t.TempDir()
	db := tsdb.New()
	s, err := New(db, Config{Shards: 2, DataDir: dataDir, Sync: wal.SyncInterval})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	fleet := testFleet(4)
	for _, sn := range fleet {
		if _, _, _, err := runSensor(addrOf(ln), sn); err != nil {
			t.Fatal(err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	snaps, wals, err := walScan(dataDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != 2 || len(wals) != 0 {
		t.Fatalf("after drain: %d snapshots, %d wal files; want exactly 1 snapshot per shard (2)", len(snaps), len(wals))
	}

	db2 := tsdb.New()
	s2, err := New(db2, Config{Shards: 2, DataDir: dataDir})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s2.Shutdown(ctx)
	}()
	for _, sn := range fleet {
		live, err := db.Get(sn.name)
		if err != nil {
			t.Fatal(err)
		}
		got, err := db2.Get(sn.name)
		if err != nil {
			t.Fatalf("series %q missing after snapshot restart: %v", sn.name, err)
		}
		if got.Len() != live.Len() || got.Points() != live.Points() {
			t.Fatalf("%s: %d segments/%d points after restart, want %d/%d",
				sn.name, got.Len(), got.Points(), live.Len(), live.Points())
		}
	}
}

// TestCompactionUnderIngest forces automatic compaction while sessions
// stream, then restarts and verifies nothing was lost across the
// snapshot+truncate cycle.
func TestCompactionUnderIngest(t *testing.T) {
	dataDir := t.TempDir()
	db := tsdb.New()
	s, err := New(db, Config{Shards: 2, DataDir: dataDir, Sync: wal.SyncInterval})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)

	fleet := testFleet(6)
	var wg sync.WaitGroup
	errs := make([]error, len(fleet))
	for i, sn := range fleet {
		wg.Add(1)
		go func(i int, sn sensor) {
			defer wg.Done()
			_, _, _, errs[i] = runSensor(addrOf(ln), sn)
		}(i, sn)
	}
	// Compact concurrently with the ingest instead of waiting for the
	// background ticker's cadence.
	compactErr := make(chan error, 1)
	go func() { compactErr <- s.Compact() }()
	wg.Wait()
	if err := <-compactErr; err != nil {
		t.Fatalf("compact during ingest: %v", err)
	}
	for i := range errs {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	db2 := tsdb.New()
	s2, err := New(db2, Config{Shards: 2, DataDir: dataDir})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s2.Shutdown(ctx)
	}()
	for _, sn := range fleet {
		live, _ := db.Get(sn.name)
		got, err := db2.Get(sn.name)
		if err != nil {
			t.Fatalf("series %q lost across compaction: %v", sn.name, err)
		}
		if got.Len() != live.Len() {
			t.Fatalf("%s: %d segments after restart, want %d", sn.name, got.Len(), live.Len())
		}
	}
}
