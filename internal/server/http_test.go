package server

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/pla-go/pla/internal/gen"
	"github.com/pla-go/pla/internal/wal"
)

// TestHTTPObservability exercises the /metrics and /healthz endpoint a
// durable server exposes: healthy while serving, per-shard gauges and
// WAL counters present after traffic, draining after Shutdown.
func TestHTTPObservability(t *testing.T) {
	srv, addr := startServer(t, Config{Shards: 2, DataDir: t.TempDir(), Sync: wal.SyncAlways})
	web := httptest.NewServer(srv.Handler())
	defer web.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(web.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q, want 200 ok", code, body)
	}

	// Push one TCP and one UDP session through so counters move on both
	// transports.
	c, err := Dial(addr, "observed", mustLinear(t))
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range gen.Sine(200, 3, 40, 0, 2) {
		if err := c.Send(p); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Close(); err != nil {
		t.Fatal(err)
	}
	ua, err := srv.ListenUDP("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	uc, err := DialTransport("udp", ua.String(), "observed-udp", mustLinear(t))
	if err != nil {
		t.Fatal(err)
	}
	if err := uc.SendBatch(gen.Sine(200, 3, 40, 0, 2)); err != nil {
		t.Fatal(err)
	}
	if _, err := uc.Close(); err != nil {
		t.Fatal(err)
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{
		"plad_sessions_total 2",
		`plad_shard_queue_capacity{shard="0"}`,
		`plad_shard_queue_capacity{shard="1"}`,
		"plad_shard_segments_total",
		"plad_shard_wal_bytes_total",
		"plad_shard_wal_fsyncs_total",
		"plad_shard_barriers_total",
		"plad_shard_commits_total",
		`plad_transport_sessions_total{transport="tcp"} 1`,
		`plad_transport_sessions_total{transport="udp"} 1`,
		`plad_transport_segments_total{transport="tcp"}`,
		`plad_transport_segments_total{transport="udp"}`,
		"plad_udp_datagrams_total",
		"plad_udp_drops_total",
		"plad_udp_dups_total",
		"plad_udp_out_of_window_total",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q:\n%s", want, body)
		}
	}
	// The session's stream-end barrier committed and fsynced at least one
	// shard's partition.
	if !strings.Contains(body, "plad_shard_commits_total{shard=") {
		t.Errorf("/metrics has no per-shard commit counter:\n%s", body)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if code, body := get("/healthz"); code != http.StatusServiceUnavailable || !strings.Contains(body, "draining") {
		t.Fatalf("/healthz after Shutdown = %d %q, want 503 draining", code, body)
	}
}
