package server

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"testing"
	"time"

	"github.com/pla-go/pla/internal/core"
	"github.com/pla-go/pla/internal/gen"
	"github.com/pla-go/pla/internal/tsdb"
	"github.com/pla-go/pla/internal/udpingest"
)

// startUDPServer launches a server with both a TCP and a UDP ingest
// endpoint on ephemeral loopback ports.
func startUDPServer(t *testing.T, cfg Config, listeners int) (s *Server, db *tsdb.Archive, tcpAddr, udpAddr string) {
	t.Helper()
	db = tsdb.New()
	s, err := New(db, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	ua, err := s.ListenUDP("127.0.0.1:0", listeners)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Shutdown(ctx)
	})
	return s, db, ln.Addr().String(), ua.String()
}

// TestUDPIngestRoundTrip streams a fleet over the datagram transport and
// asserts the archive matches a local filter run, and that the
// per-transport counters attribute the session to UDP.
func TestUDPIngestRoundTrip(t *testing.T) {
	s, db, _, udpAddr := startUDPServer(t, Config{Shards: 4, QueueDepth: 64}, 2)

	fleet := testFleet(8)
	var wg sync.WaitGroup
	errs := make([]error, len(fleet))
	acks := make([]Ack, len(fleet))
	for i, sn := range fleet {
		wg.Add(1)
		go func(i int, sn sensor) {
			defer wg.Done()
			f, err := sn.filter()
			if err != nil {
				errs[i] = err
				return
			}
			c, err := DialTransport("udp", udpAddr, sn.name, f)
			if err != nil {
				errs[i] = err
				return
			}
			if err := c.SendBatch(sn.signal); err != nil {
				errs[i] = err
				return
			}
			acks[i], errs[i] = c.Close()
		}(i, sn)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("sensor %d: %v", i, err)
		}
	}
	for i, sn := range fleet {
		f, err := sn.filter()
		if err != nil {
			t.Fatal(err)
		}
		want, err := core.Run(f, sn.signal)
		if err != nil {
			t.Fatal(err)
		}
		if acks[i].Applied != int64(len(want)) {
			t.Fatalf("%s: ack.Applied = %d, want %d", sn.name, acks[i].Applied, len(want))
		}
		series, err := db.Get(sn.name)
		if err != nil {
			t.Fatal(err)
		}
		if got := series.Len(); got != len(want) {
			t.Fatalf("%s: archive holds %d segments, want %d", sn.name, got, len(want))
		}
	}
	m := s.Metrics()
	if m.UDPSessions != int64(len(fleet)) || m.TotalSessions != int64(len(fleet)) {
		t.Fatalf("sessions: udp=%d total=%d, want %d over udp", m.UDPSessions, m.TotalSessions, len(fleet))
	}
	if m.UDPSegments == 0 || m.TCPSegments != 0 {
		t.Fatalf("segments: udp=%d tcp=%d, want all udp", m.UDPSegments, m.TCPSegments)
	}
	if m.UDP.Datagrams == 0 {
		t.Fatalf("udp transport metrics empty: %+v", m.UDP)
	}
}

// mangler shuffles, duplicates and drops a client's outbound datagrams.
type mangler struct {
	net.Conn
	mu      sync.Mutex
	rng     *rand.Rand
	held    [][]byte
	mangled int
}

func (c *mangler) Write(b []byte) (int, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch roll := c.rng.Intn(1000); {
	case roll < 100: // drop
		c.mangled++
		return len(b), nil
	case roll < 200: // duplicate
		c.mangled++
		c.Conn.Write(b)
		c.Conn.Write(b)
		return len(b), nil
	case roll < 350: // delay behind later datagrams
		c.mangled++
		c.held = append(c.held, append([]byte(nil), b...))
		return len(b), nil
	}
	n, err := c.Conn.Write(b)
	for _, h := range c.held {
		c.Conn.Write(h)
	}
	c.held = c.held[:0]
	return n, err
}

// tortureFleet is a harder workload than testFleet: poorly-compressible
// walks so each session spans many datagrams, plus a lag-bounded slide
// filter so provisional receiver updates cross the chaotic wire too.
func tortureFleet() []sensor {
	mk := func(i int) sensor {
		eps := []float64{0.02}
		signal := gen.RandomWalk(gen.WalkConfig{N: 4000, P: 0.9, MaxDelta: 0.5, Seed: uint64(i + 1)})
		switch i % 3 {
		case 0:
			return sensor{name: fmt.Sprintf("torture-%02d", i), signal: signal, eps: eps,
				filter: func() (core.Filter, error) { return core.NewSwing(eps) }}
		case 1:
			return sensor{name: fmt.Sprintf("torture-%02d", i), signal: signal, eps: eps,
				filter: func() (core.Filter, error) { return core.NewSlide(eps, core.WithSlideMaxLag(32)) }}
		default:
			return sensor{name: fmt.Sprintf("torture-%02d", i), signal: signal, eps: eps,
				filter: func() (core.Filter, error) { return core.NewLinear(eps) }}
		}
	}
	fleet := make([]sensor, 6)
	for i := range fleet {
		fleet[i] = mk(i)
	}
	return fleet
}

// TestUDPTortureByteIdenticalToTCP is the transport's end-to-end proof:
// the same fleet streamed once over in-order TCP and once over UDP with
// datagrams shuffled, duplicated and dropped must leave byte-identical
// archives. The dedup window and go-back-N retransmission have to absorb
// every mangling without re-applying or losing a segment.
func TestUDPTortureByteIdenticalToTCP(t *testing.T) {
	fleet := tortureFleet()

	// Reference: in-order TCP.
	_, refDB, tcpAddr := func() (*Server, *tsdb.Archive, string) {
		db := tsdb.New()
		s, err := New(db, Config{Shards: 4, QueueDepth: 64})
		if err != nil {
			t.Fatal(err)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		go s.Serve(ln)
		t.Cleanup(func() {
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			s.Shutdown(ctx)
		})
		return s, db, ln.Addr().String()
	}()
	for _, sn := range fleet {
		if _, _, _, err := runSensor(tcpAddr, sn); err != nil {
			t.Fatal(err)
		}
	}

	// Device under test: UDP through the mangler.
	srv, udpDB, _, udpAddr := startUDPServer(t, Config{Shards: 4, QueueDepth: 64}, 2)
	var totalMangled int
	var mu sync.Mutex
	var wg sync.WaitGroup
	errs := make([]error, len(fleet))
	for i, sn := range fleet {
		wg.Add(1)
		go func(i int, sn sensor) {
			defer wg.Done()
			f, err := sn.filter()
			if err != nil {
				errs[i] = err
				return
			}
			raw, err := net.Dial("udp", udpAddr)
			if err != nil {
				errs[i] = err
				return
			}
			m := &mangler{Conn: raw, rng: rand.New(rand.NewSource(int64(i + 99)))}
			c, err := udpingest.NewClient(m, sn.name, f)
			if err != nil {
				errs[i] = err
				return
			}
			if err := c.SendBatch(sn.signal); err != nil {
				errs[i] = err
				return
			}
			_, errs[i] = c.Close()
			mu.Lock()
			totalMangled += m.mangled
			mu.Unlock()
		}(i, sn)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("sensor %d: %v", i, err)
		}
	}
	if totalMangled == 0 {
		t.Fatal("mangler touched nothing; the torture run was clean")
	}

	var ref, got bytes.Buffer
	if _, err := refDB.WriteTo(&ref); err != nil {
		t.Fatal(err)
	}
	if _, err := udpDB.WriteTo(&got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ref.Bytes(), got.Bytes()) {
		t.Fatalf("archives diverge: tcp %d bytes, udp-after-torture %d bytes", ref.Len(), got.Len())
	}
	m := srv.Metrics()
	if m.UDP.Dups == 0 {
		t.Fatalf("expected the dedup window to see duplicates, metrics %+v", m.UDP)
	}
	t.Logf("mangled %d datagrams; server saw %+v", totalMangled, m.UDP)
}

// TestUDPShutdownWithLiveSession pins the drain ordering: Shutdown must
// abort in-flight datagram sessions and still commit what their queues
// hold, without deadlocking between the UDP drain and the shard workers.
func TestUDPShutdownWithLiveSession(t *testing.T) {
	db := tsdb.New()
	s, err := New(db, Config{Shards: 2, QueueDepth: 16})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	ua, err := s.ListenUDP("127.0.0.1:0", 1)
	if err != nil {
		t.Fatal(err)
	}
	f, err := core.NewSwing([]float64{0.02})
	if err != nil {
		t.Fatal(err)
	}
	c, err := DialTransport("udp", ua.String(), "hangs-around", f)
	if err != nil {
		t.Fatal(err)
	}
	sig := gen.RandomWalk(gen.WalkConfig{N: 2000, P: 0.9, MaxDelta: 0.5, Seed: 5})
	if err := c.SendBatch(sig); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if _, err := c.Close(); err == nil {
		t.Fatal("client Close succeeded against a shut-down server")
	}
	if _, err := s.ListenUDP("127.0.0.1:0", 1); err == nil {
		t.Fatal("ListenUDP succeeded on a closed server")
	}
	series, err := db.Get("hangs-around")
	if err != nil {
		t.Fatalf("flushed session left no series: %v", err)
	}
	if series.Len() == 0 {
		t.Fatal("flushed segments were lost in shutdown")
	}
}
