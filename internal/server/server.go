// Package server implements plad, a concurrent multi-client network
// ingestion server for ε-filtered streams — the central repository of the
// paper's monitoring scenario (Section 1). Many sensors connect over TCP,
// each declaring a series name and a precision contract in a handshake;
// only finalized segments cross the wire (the transport half the paper's
// bandwidth argument rests on), and the server routes them through a
// fixed pool of sharded workers — series-name hash → shard, one goroutine
// per shard, bounded queues with a configurable overload policy — into a
// shared tsdb archive that answers range and aggregate queries with the
// ±ε bounds the precision contract guarantees.
package server

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/pla-go/pla/internal/encode"
	"github.com/pla-go/pla/internal/query"
	"github.com/pla-go/pla/internal/tsdb"
	"github.com/pla-go/pla/internal/tsdb/mmapstore"
	"github.com/pla-go/pla/internal/udpingest"
	"github.com/pla-go/pla/internal/wal"
)

// StoreBackend selects the SegmentStore implementation behind the
// archive's series.
type StoreBackend int

const (
	// BackendMem (the default) keeps every segment on the Go heap —
	// fastest appends, full heap residency for the whole archive.
	BackendMem StoreBackend = iota
	// BackendMmap keeps sealed segments in memory-mapped, checksummed
	// extent files (internal/tsdb/mmapstore) and only the unsealed tail
	// on the heap: queries binary-search the mapping, recovery maps the
	// extents instead of decoding a snapshot, and the page cache —
	// not the heap — holds cold data. Requires a DataDir.
	BackendMmap
)

// String names the backend for flags and logs.
func (b StoreBackend) String() string {
	if b == BackendMmap {
		return "mmap"
	}
	return "mem"
}

// ParseStoreBackend maps a flag word onto a backend.
func ParseStoreBackend(s string) (StoreBackend, error) {
	switch s {
	case "mem":
		return BackendMem, nil
	case "mmap":
		return BackendMmap, nil
	default:
		return 0, fmt.Errorf("server: unknown store backend %q (want mem or mmap)", s)
	}
}

// Config parameterises a Server. The zero value is usable (in-memory,
// no durability).
type Config struct {
	// Shards is the number of filter workers (default 8). Segments of one
	// series always land on one shard, so appends need no series lock
	// contention across workers.
	Shards int
	// QueueDepth is each shard's bounded queue length in segments
	// (default 1024).
	QueueDepth int
	// Policy selects backpressure (Block, default) or load shedding
	// (DropNewest, DropOldest) when a shard queue is full.
	Policy DropPolicy
	// DataDir, when set, makes the archive durable: New recovers the
	// directory's snapshot + write-ahead log into db before serving,
	// shard workers write every segment ahead of applying it, and
	// Shutdown leaves a clean snapshot behind.
	DataDir string
	// StoreBackend selects how series keep their segments (BackendMem
	// default). BackendMmap requires a DataDir and that New builds the
	// archive itself (pass a nil db): sealed segments then live in
	// memory-mapped extent files, compaction seals instead of
	// snapshotting, and recovery maps instead of decoding.
	StoreBackend StoreBackend
	// Sync is the WAL fsync policy (wal.SyncInterval default). Under
	// wal.SyncAlways a session's final ack is written only after its
	// segments are fsynced.
	Sync wal.SyncPolicy
	// SyncEvery is the background flush/fsync cadence for the interval
	// policies (default 50ms).
	SyncEvery time.Duration
	// CommitLinger caps the group-commit linger: how long a shard's
	// committer waits for more session barriers to join one fsync. The
	// linger itself adapts to the observed commit cost (an EWMA of ~8×
	// the last fsync); this is its ceiling. Default 5ms; negative
	// disables lingering entirely, so every barrier batch commits as
	// soon as the committer picks it up.
	CommitLinger time.Duration
	// CommitMaxBatch, when positive, ends the linger early once a batch
	// holds that many barriers — a bound on the extra ack latency a
	// session pays waiting for company. Already-queued batches are still
	// folded in opportunistically, so one commit can acknowledge more
	// than CommitMaxBatch barriers; the bound only stops the committer
	// from waiting for further ones. Zero (the default) leaves batch
	// growth to the linger alone.
	CommitMaxBatch int
	// CompactBytes triggers snapshot+truncate compaction of a shard when
	// that shard's WAL tail grows past it (default 64 MiB; negative
	// disables automatic compaction). Each shard compacts independently:
	// rotate its own log, fence only its own worker, snapshot only its
	// own series.
	CompactBytes int64
	// RetainSegments, when positive, is the retention window in
	// stream-time units: compaction (and recovery) drops a series'
	// oldest segments once their end time falls more than this far
	// behind the series' newest covered time. Zero keeps everything.
	RetainSegments float64
	// ExtentCompactMin is the mmap backend's compaction trigger: a
	// series whose sealed extent count reaches it has adjacent small
	// extents merged at the next WAL compaction pass. 0 = backend
	// default (8); negative disables extent compaction.
	ExtentCompactMin int
	// ExtentTargetRecords is the merged-extent size goal for the mmap
	// backend (0 = backend default, 65536 records).
	ExtentTargetRecords int
	// ExtentWriteV1 makes the mmap backend seal fixed-width v1 extents
	// instead of column-block v2 — a benchmarking/rollback knob; both
	// formats are always readable.
	ExtentWriteV1 bool
	// NoFenceIndex disables the mmap backend's learned fence index
	// over extent start times — a benchmarking knob.
	NoFenceIndex bool
	// RollupTiers is the rollup precision ladder: for each multiplier m
	// (> 1) listed, WAL compaction re-encodes every sealed series at
	// m× its base ε into a rollup tier, and bound-carrying queries may
	// be answered from the coarsest tier whose precision still fits the
	// requested bound. Empty disables rollups.
	RollupTiers []int
	// EpsBudget, when positive, is a total ingest byte-rate budget
	// (bytes per second) across retune-capable sessions: whenever the
	// observed rate exceeds it, the retune loop widens session ε
	// burden-proportionally (up to 16× contract) and relaxes back to
	// contract when the rate falls. Sessions opened by plain clients
	// are unaffected.
	EpsBudget float64
	// RetunePeriod is how often the retune loop reassesses session
	// degradation (default 1s). It only matters under the Sample policy
	// or with an EpsBudget.
	RetunePeriod time.Duration
	// Logf, when set, receives one line per abnormal session end and per
	// recovery/compaction event.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = 8
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.CompactBytes == 0 {
		c.CompactBytes = 64 << 20
	}
	if c.CommitLinger == 0 {
		c.CommitLinger = 5 * time.Millisecond
	} else if c.CommitLinger < 0 {
		c.CommitLinger = 0
	}
	return c
}

// Server accepts ingest and query sessions and owns the shard pool.
// Create one with New; it is live (shards running) until Shutdown.
type Server struct {
	cfg    Config
	db     *tsdb.Archive
	engine *query.Engine
	shards []*shard
	store  *wal.Store     // nil without a DataDir
	mm     *mmapstore.Dir // nil unless StoreBackend is BackendMmap

	mu      sync.Mutex
	lns     []net.Listener
	conns   map[net.Conn]connKind
	closing bool

	connWG sync.WaitGroup

	compactStop chan struct{}
	compactDone chan struct{}

	// Retune-capable session registry and loop (Sample policy and/or an
	// EpsBudget); see retune.go.
	retuneMu     sync.Mutex
	retunes      map[*retuneSession]struct{}
	retuneStop   chan struct{}
	retuneDone   chan struct{}
	retuneFrames atomic.Int64 // renegotiation frames written to sessions

	sessions atomic.Int64 // ingest sessions accepted over the lifetime
	active   atomic.Int64 // ingest sessions currently streaming

	udp         *udpingest.Server // datagram ingest transport; nil until ListenUDP
	udpSessions atomic.Int64      // ingest sessions accepted over UDP
	tcpSegments atomic.Int64      // segments enqueued by TCP sessions
	udpSegments atomic.Int64      // segments enqueued by UDP sessions
}

// New returns a running server storing into db. With a DataDir it first
// recovers the directory's prior state into db (which must be empty):
// every shard partition replays concurrently (newest snapshot, then WAL
// replay with torn-tail truncation), a legacy single-log directory or a
// shard-count change is migrated in one shot, and each shard opens a
// fresh write-ahead tail. Call Shutdown to stop the shard workers (and,
// when durable, leave a clean snapshot per shard).
//
// db may be nil, in which case New builds the archive over the
// configured StoreBackend — the only way to run BackendMmap, whose
// archive must sit on the extent store New opens under the data
// directory.
func New(db *tsdb.Archive, cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{cfg: cfg, conns: make(map[net.Conn]connKind)}
	if cfg.StoreBackend == BackendMmap {
		if cfg.DataDir == "" {
			return nil, fmt.Errorf("server: the mmap store backend requires a data dir")
		}
		if db != nil {
			return nil, fmt.Errorf("server: the mmap store backend builds its own archive (pass a nil db)")
		}
		mm, err := mmapstore.OpenWith(wal.ExtentDir(cfg.DataDir), mmapstore.Config{
			CompactMinExtents: cfg.ExtentCompactMin,
			TargetRecords:     cfg.ExtentTargetRecords,
			WriteV1:           cfg.ExtentWriteV1,
			NoFenceIndex:      cfg.NoFenceIndex,
		}, cfg.Logf)
		if err != nil {
			return nil, fmt.Errorf("server: open extent store: %w", err)
		}
		s.mm = mm
		db = tsdb.NewWithNamedStore(mm.Store)
	} else if db == nil {
		db = tsdb.New()
	}
	s.db = db
	s.engine = query.New(db)
	db.EnableRollups(cfg.RollupTiers)
	if cfg.DataDir != "" {
		st, stats, err := wal.Open(cfg.DataDir, cfg.Shards, db, wal.Options{
			Policy:   cfg.Sync,
			Interval: cfg.SyncEvery,
			Retain:   cfg.RetainSegments,
			Extents:  s.mm,
			Logf:     cfg.Logf,
		})
		if err != nil {
			if s.mm != nil {
				s.mm.Close()
			}
			return nil, fmt.Errorf("server: open data dir %s: %w", cfg.DataDir, err)
		}
		s.store = st
		if !stats.Empty() {
			migrated := ""
			if stats.Migrated {
				migrated = fmt.Sprintf("; migrated layout to %d shards (%d duplicate series reconciled)",
					cfg.Shards, stats.Reconciled)
			}
			s.logf("server: recovered %s: %d series from mapped extents + %d from snapshots across %d log dirs, %d wal files (%d segments replayed, %d skipped, %d rejected, %d torn bytes truncated, %d aged out)%s",
				cfg.DataDir, stats.ExtentSeries, stats.SnapshotSeries, stats.Dirs, stats.WALFiles,
				stats.Replayed, stats.Skipped, stats.Rejected, stats.TruncatedBytes,
				stats.RetentionDropped, migrated)
		}
	}
	// Degraded sessions may have left the archive holding data wider
	// than its contracts; re-arm every base series' effective ε from the
	// persisted control records so post-restart query bounds stay honest.
	if n := db.SeedEffectiveEpsilon(); n > 0 {
		s.logf("server: recovered effective-ε state for %d degraded series", n)
	}
	s.shards = make([]*shard, cfg.Shards)
	for i := range s.shards {
		var wsh *wal.Shard
		if s.store != nil {
			wsh = s.store.Shard(i)
		}
		s.shards[i] = newShard(i, cfg.QueueDepth, cfg.CommitLinger, cfg.CommitMaxBatch, wsh, s.logf)
		go s.shards[i].run()
	}
	if s.store != nil && cfg.CompactBytes > 0 {
		s.compactStop = make(chan struct{})
		s.compactDone = make(chan struct{})
		go s.compactLoop()
	}
	if cfg.Policy == Sample || cfg.EpsBudget > 0 {
		period := cfg.RetunePeriod
		if period <= 0 {
			period = defaultRetunePeriod
		}
		s.retuneStop = make(chan struct{})
		s.retuneDone = make(chan struct{})
		go s.retuneLoop(period)
	}
	return s, nil
}

// compactCheckEvery is how often the compactor looks at the WAL tail.
const compactCheckEvery = 5 * time.Second

// compactLoop snapshots and truncates each shard's WAL whenever that
// shard's tail outgrows CompactBytes. Shards compact independently — a
// hot shard rewriting its partition never stalls the others. It stops
// before Shutdown closes the shard queues.
func (s *Server) compactLoop() {
	defer close(s.compactDone)
	t := time.NewTicker(compactCheckEvery)
	defer t.Stop()
	for {
		select {
		case <-s.compactStop:
			return
		case <-t.C:
			for k := range s.shards {
				if s.shards[k].store.TailBytes() < s.cfg.CompactBytes {
					continue
				}
				if err := s.compactShard(k); err != nil {
					s.logf("server: compaction (shard %d): %v", k, err)
				}
			}
		}
	}
}

// compactShard rotates shard k's WAL, fences that shard's worker so all
// records in the rotated file are applied, then snapshots the shard's
// series through it. Ingestion on every other shard keeps flowing the
// whole time; only this shard's queue briefly serialises with the fence.
func (s *Server) compactShard(k int) error {
	sh := s.shards[k]
	oldSeq, err := sh.store.Rotate()
	if err != nil {
		return err
	}
	s.fenceShard(k)
	return sh.store.Snapshot(oldSeq)
}

// Compact compacts every shard now — rotate its log, fence its worker,
// persist its baseline (snapshot file or sealed extents + marker) —
// regardless of the CompactBytes threshold; the background loop
// compacts shards one by one as their tails grow. Tests and tooling
// use it to force the sealed state.
func (s *Server) Compact() error {
	for k := range s.shards {
		if err := s.compactShard(k); err != nil {
			return err
		}
	}
	return nil
}

// fenceShard blocks until every job currently queued on shard k has been
// applied. Commit errors are already logged by the workers and do not
// block a fence: its callers snapshot the in-memory archive, which
// supersedes whatever the log failed to commit.
func (s *Server) fenceShard(k int) {
	b := make(chan error, 1)
	s.shards[k].enqueue(job{barrier: b}, Block)
	<-b
}

// DB returns the archive the server stores into.
func (s *Server) DB() *tsdb.Archive { return s.db }

// Engine returns the server's segment-native query engine — the planner
// behind the AGG and QUANTILE protocol commands, exposed so embedders
// (and plad's demo mode) can query in-process with the same pushdown
// counters the /metrics endpoint exports.
func (s *Server) Engine() *query.Engine { return s.engine }

// Addr returns the first listener's address once Serve has been called
// (nil before).
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.lns) == 0 {
		return nil
	}
	return s.lns[0].Addr()
}

// ListenAndServe listens on addr ("host:port") and serves until Shutdown.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Serve accepts connections on ln until it fails or the server shuts
// down, in which case it returns ErrClosed. Serve may be called from
// several goroutines with different listeners (loopback + external
// interface); Shutdown closes all of them.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		ln.Close()
		return ErrClosed
	}
	s.lns = append(s.lns, ln)
	s.mu.Unlock()
	var delay time.Duration
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.isClosing() {
				return ErrClosed
			}
			// Transient accept failures (fd exhaustion under load) must
			// not kill a daemon holding live sessions; back off and
			// retry, net/http style.
			if ne, ok := err.(net.Error); ok && ne.Temporary() {
				if delay == 0 {
					delay = 5 * time.Millisecond
				} else if delay *= 2; delay > time.Second {
					delay = time.Second
				}
				s.logf("server: accept: %v; retrying in %v", err, delay)
				time.Sleep(delay)
				continue
			}
			return err
		}
		delay = 0
		if !s.track(conn) {
			conn.Close()
			return ErrClosed
		}
		go func() {
			defer s.untrack(conn)
			s.serveConn(conn)
		}()
	}
}

// ServeConn runs one already-established connection (a net.Pipe end, a
// connection from a custom listener) through the full session protocol,
// blocking until the session ends. It refuses connections once Shutdown
// has begun.
func (s *Server) ServeConn(conn net.Conn) error {
	if !s.track(conn) {
		conn.Close()
		return ErrClosed
	}
	defer s.untrack(conn)
	s.serveConn(conn)
	return nil
}

func (s *Server) isClosing() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closing
}

// track registers a live connection, failing once shutdown has begun (the
// connWG.Add must not race Shutdown's Wait).
func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closing {
		return false
	}
	s.connWG.Add(1)
	s.conns[conn] = kindPending
	return true
}

// connKind classifies a tracked connection for shutdown: only identified
// ingest sessions carry segments worth draining; pending (pre-handshake)
// and query connections are closed immediately.
type connKind uint8

const (
	kindPending connKind = iota
	kindIngest
	kindQuery
)

// mark records what a tracked connection turned out to be. If shutdown
// has already begun and the connection is not a drainable ingest
// session, it is closed on the spot.
func (s *Server) mark(conn net.Conn, kind connKind) {
	s.mu.Lock()
	if _, ok := s.conns[conn]; ok {
		s.conns[conn] = kind
	}
	closing := s.closing
	s.mu.Unlock()
	if closing && kind != kindIngest {
		conn.Close()
	}
}

func (s *Server) untrack(conn net.Conn) {
	conn.Close()
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
	s.connWG.Done()
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// handshakeTimeout bounds how long a fresh connection may take to
// identify itself; an idle probe must not hold a graceful drain open.
const handshakeTimeout = 10 * time.Second

// serveConn dispatches one connection by its 4-byte session magic.
func (s *Server) serveConn(conn net.Conn) {
	cr := encode.NewCountingReader(conn)
	br := bufio.NewReader(cr)
	conn.SetReadDeadline(time.Now().Add(handshakeTimeout))
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		s.logf("server: %s: short magic: %v", conn.RemoteAddr(), err)
		return
	}
	switch string(m[:]) {
	case magicIngest:
		s.serveIngest(conn, br, cr)
	case magicQuery:
		s.mark(conn, kindQuery)
		conn.SetReadDeadline(time.Time{})
		s.serveQuery(conn, br)
	default:
		writeStatusErr(conn, fmt.Sprintf("unknown session magic %q", m[:]))
	}
}

// ingestSession carries one connection's per-segment outcome counters,
// updated by the shard worker as the session's jobs are applied.
type ingestSession struct {
	applied  atomic.Int64
	rejected atomic.Int64
	dropped  atomic.Int64
}

func (is *ingestSession) ack() Ack {
	return Ack{Applied: is.applied.Load(), Rejected: is.rejected.Load(), Dropped: is.dropped.Load()}
}

// serveIngest handles one ingest session: handshake, decode loop feeding
// the series' shard, and the drain barrier behind the final ack.
func (s *Server) serveIngest(conn net.Conn, br *bufio.Reader, cr *encode.CountingReader) {
	name, err := readName(br)
	if err != nil {
		writeStatusErr(conn, err.Error())
		return
	}
	dec, err := encode.NewDecoder(encode.NewFrameReader(br))
	if err != nil {
		writeStatusErr(conn, err.Error())
		return
	}
	series, _, err := s.db.GetOrCreate(name, dec.Epsilon(), dec.Constant())
	if err != nil {
		writeStatusErr(conn, err.Error())
		return
	}
	sh := s.shards[shardIndex(name, len(s.shards))]
	var rs *retuneSession
	if dec.Retune() {
		// A retune-capable handshake: acknowledging with statusRetune
		// both accepts the session and unlocks opRetune on the wire.
		rs = &retuneSession{
			conn: conn, name: name, sh: sh, dim: dec.Dim(),
			base:      append([]float64(nil), dec.Epsilon()...),
			lastScale: 1,
		}
		if _, err := conn.Write([]byte{statusRetune}); err != nil {
			return
		}
		s.registerRetune(rs)
		defer s.unregisterRetune(rs)
	} else if err := writeStatusOK(conn); err != nil {
		return
	}
	s.mark(conn, kindIngest)
	conn.SetReadDeadline(time.Time{})

	s.sessions.Add(1)
	s.active.Add(1)
	defer s.active.Add(-1)

	sess := &ingestSession{}
	sh.active.Add(1) // the committer lingers only while sessions could still join a batch
	defer sh.active.Add(-1)
	if m := dec.MaxLag(); m > 0 {
		// A v2 handshake advertising a lag bound: surface it on the
		// series and count the session. The staleness gauge itself is
		// worker-owned per-series state (shard.trackPending), so it
		// needs no session bookkeeping: a clean close finalizes the
		// tail (gauge falls to zero), and an abrupt death leaves the
		// provisional points it really did leave in the archive.
		series.SetLagHint(m)
		sh.lagSessions.Add(1)
		defer sh.lagSessions.Add(-1)
	}
	// noteRetune folds a freshly-consumed opRetune announcement into the
	// archive: the series' query bounds widen to the sender's reported
	// effective ε, the shard's shed counter advances, and — when the ε
	// actually widened — a control record rides the ordinary WAL path so
	// the degradation survives a restart.
	var lastGen int
	var lastShed uint64
	noteRetune := func() {
		if rs == nil || dec.RetuneGen() == lastGen {
			return
		}
		lastGen = dec.RetuneGen()
		eff := dec.EffectiveEpsilon()
		// Record before noting: RecordEffectiveEpsilon decides whether a
		// persistent step is due by comparing eff against the series'
		// *current* query bound, so widening that bound first would make
		// every announcement look like a no-op and nothing would ever be
		// written through the WAL — the degradation would vanish on
		// restart while the in-memory bound stayed honest.
		if ctrl, cseg, ok := s.db.RecordEffectiveEpsilon(name, eff); ok {
			sh.enqueue(job{series: ctrl, seg: cseg}, Block)
		}
		series.NoteEffectiveEpsilon(eff)
		rs.noteEffRatio(eff)
		if shed := dec.ShedTotal(); shed > lastShed {
			sh.shedPoints.Add(int64(shed - lastShed))
			lastShed = shed
		}
	}
	var attributed int64
	for {
		seg, err := dec.Next()
		if err == nil || err == io.EOF {
			noteRetune()
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			// Abrupt end: the client is gone or the stream is corrupt.
			// Everything already enqueued still drains; there is no one
			// left to ack.
			s.logf("server: %s: ingest %q: %v", conn.RemoteAddr(), name, err)
			return
		}
		delta := cr.BytesRead() - attributed
		attributed = cr.BytesRead()
		if rs != nil {
			rs.wire.Store(cr.BytesRead())
		}
		s.tcpSegments.Add(1)
		sh.enqueue(job{sess: sess, series: series, seg: seg, bytes: delta}, s.cfg.Policy)
	}

	// The stream terminator arrived: fence behind everything this session
	// enqueued, then tell the client exactly what the archive holds. The
	// barrier carries the tail bytes (terminator frame) so the shard's
	// byte accounting covers the whole session, and brings back the WAL
	// commit verdict: if the log could not be committed, the client gets
	// an error, not an ack that overstates durability.
	barrier := make(chan error, 1)
	sh.enqueue(job{barrier: barrier, bytes: cr.BytesRead() - attributed}, Block)
	commitErr := <-barrier
	// On a retune session the final write must not interleave with a
	// renegotiation frame from the retune loop.
	if rs != nil {
		rs.wmu.Lock()
		defer rs.wmu.Unlock()
	}
	if commitErr != nil {
		s.logf("server: %s: ingest %q: commit: %v", conn.RemoteAddr(), name, commitErr)
		writeStatusErr(conn, fmt.Sprintf("segments not durable: wal commit failed: %v", commitErr))
		return
	}
	if err := writeAck(conn, sess.ack()); err != nil {
		s.logf("server: %s: ingest %q: ack: %v", conn.RemoteAddr(), name, err)
	}
}

// Metrics is a point-in-time snapshot of the server's counters.
type Metrics struct {
	// Shards holds one entry per worker.
	Shards []ShardMetrics
	// Segments, Points, Rejected, Dropped and Bytes are totals over the
	// shards.
	Segments int64
	Points   int64
	Rejected int64
	Dropped  int64
	Bytes    int64
	// ActiveSessions is the number of ingest sessions streaming right
	// now; TotalSessions counts accepted ingest handshakes over the
	// server's lifetime — both totals across transports.
	ActiveSessions int64
	TotalSessions  int64
	// UDPSessions counts the accepted sessions that arrived over the
	// datagram transport; TCPSegments and UDPSegments split the enqueued
	// segments by transport.
	UDPSessions int64
	TCPSegments int64
	UDPSegments int64
	// UDP is the datagram transport's own counters (zero when ListenUDP
	// was never called).
	UDP udpingest.Metrics
	// MStore is the mmap extent store's counters; MStoreActive reports
	// whether that backend is in use at all (the counters are zero
	// either way until something seals).
	MStoreActive bool
	MStore       mmapstore.DirMetrics
	// RollupActive reports whether a rollup ladder is configured;
	// RollupBuilds and RollupSegments count rollup passes that extended
	// a tier and the tier segments they appended.
	RollupActive   bool
	RollupBuilds   int64
	RollupSegments int64
	// RetuneSessions is the number of live retune-capable ingest
	// sessions; RetuneFrames counts renegotiation frames the server has
	// written to them; EpsEffectiveMax is the worst effective-ε
	// inflation ratio (announced effective ε over handshake contract,
	// dim-max) across the live sessions — 1 while nothing is degraded.
	RetuneSessions  int64
	RetuneFrames    int64
	EpsEffectiveMax float64
}

// Metrics snapshots every shard's counters.
func (s *Server) Metrics() Metrics {
	m := Metrics{
		Shards:         make([]ShardMetrics, len(s.shards)),
		ActiveSessions: s.active.Load(),
		TotalSessions:  s.sessions.Load(),
		UDPSessions:    s.udpSessions.Load(),
		TCPSegments:    s.tcpSegments.Load(),
		UDPSegments:    s.udpSegments.Load(),
	}
	s.mu.Lock()
	udp := s.udp
	s.mu.Unlock()
	if udp != nil {
		m.UDP = udp.Metrics()
	}
	if s.mm != nil {
		m.MStoreActive = true
		m.MStore = s.mm.Metrics()
	}
	if len(s.db.RollupMults()) > 0 {
		m.RollupActive = true
	}
	rc := s.db.RollupCountersSnapshot()
	m.RollupBuilds = rc.Builds
	m.RollupSegments = rc.Segments
	m.RetuneSessions = s.retuneSessionCount()
	m.RetuneFrames = s.retuneFrames.Load()
	m.EpsEffectiveMax = s.retuneEffMax()
	for i, sh := range s.shards {
		sm := sh.metrics()
		m.Shards[i] = sm
		m.Segments += sm.Segments
		m.Points += sm.Points
		m.Rejected += sm.Rejected
		m.Dropped += sm.Dropped
		m.Bytes += sm.Bytes
	}
	return m
}

// Shutdown gracefully stops the server: it stops accepting, closes query
// sessions (which have nothing to drain), waits for live ingest sessions
// to finish (force-closing their connections if ctx expires first), then
// drains every shard queue into the archive before
// returning — no finalized segment that reached a queue is lost, whatever
// the context does. When the server is durable, the drain ends with a
// clean snapshot: the data directory is left holding a single snapshot
// file and no write-ahead tail. The returned error is ctx's if sessions
// had to be force-closed, else nil. Shutdown is idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	wasClosing := s.closing
	s.closing = true
	lns := append([]net.Listener(nil), s.lns...)
	s.mu.Unlock()
	for _, ln := range lns {
		ln.Close()
	}
	// Only identified ingest sessions carry segments worth draining.
	// Query sessions and pre-handshake connections (an idle port probe,
	// a slow client) are closed now so they can't hold the drain open
	// until the context expires.
	s.mu.Lock()
	for c, kind := range s.conns {
		if kind != kindIngest {
			c.Close()
		}
	}
	s.mu.Unlock()
	if wasClosing {
		// A concurrent or repeated Shutdown: wait for the shards the
		// first call is draining, but honour this call's own deadline —
		// force-closing the remaining connections unblocks the first
		// call's session wait too.
		for _, sh := range s.shards {
			select {
			case <-sh.done:
			case <-ctx.Done():
				s.mu.Lock()
				for c := range s.conns {
					c.Close()
				}
				s.mu.Unlock()
				return ctx.Err()
			}
		}
		return nil
	}

	sessionsDone := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(sessionsDone)
	}()
	var forced error
	select {
	case <-sessionsDone:
	case <-ctx.Done():
		forced = ctx.Err()
		s.mu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.mu.Unlock()
		<-sessionsDone
	}

	// Drain the datagram transport: Close aborts its sessions and waits
	// for their goroutines, so once it returns nothing UDP-side can
	// enqueue either. It must happen before the queues close — a live
	// session's final barrier still needs a worker to commit it.
	s.mu.Lock()
	udp := s.udp
	s.mu.Unlock()
	if udp != nil {
		udp.Close()
	}

	// Sessions are gone; stop the retune loop (nothing is left to write
	// frames to) and the compactor before closing the queues so an
	// in-flight fence can finish (its barriers drain with the rest).
	if s.retuneStop != nil {
		close(s.retuneStop)
		<-s.retuneDone
	}
	if s.compactStop != nil {
		close(s.compactStop)
		<-s.compactDone
	}

	// All sessions are gone; nothing can enqueue any more. Closing the
	// queues lets each worker drain to empty and exit.
	for _, sh := range s.shards {
		close(sh.jobs)
	}
	for _, sh := range s.shards {
		<-sh.done
	}
	if s.store != nil {
		if err := s.store.CloseSnapshot(); err != nil {
			s.logf("server: final snapshot: %v", err)
			if forced == nil {
				forced = err
			}
		}
	}
	if s.mm != nil {
		// Only after the final seal: unmapping live extents under a
		// query would be a use-after-free, but every session and worker
		// is gone by now.
		s.mm.Close()
	}
	return forced
}
