package server

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strconv"
	"testing"
	"time"

	"github.com/pla-go/pla/internal/core"
	"github.com/pla-go/pla/internal/gen"
	"github.com/pla-go/pla/internal/stream"
)

// eventually polls cond until it holds or the deadline passes; the
// ingest pipeline is asynchronous (shard queues), so state checks after
// a wire flush need a grace window.
func eventually(t *testing.T, d time.Duration, cond func() (bool, string)) {
	t.Helper()
	deadline := time.Now().Add(d)
	for {
		ok, msg := cond()
		if ok {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal(msg)
		}
		time.Sleep(time.Millisecond)
	}
}

// quietThenBursty is the lag acceptance workload: a long near-linear
// ramp an ε=0.5 filter swallows into one endless interval (the receiver
// of an unbounded stream would see nothing for hundreds of points),
// followed by a jagged burst that closes intervals rapidly.
func quietThenBursty(n int) []core.Point {
	out := make([]core.Point, n)
	for i := range out {
		t := float64(i)
		var x float64
		if i < n/2 {
			x = 0.001 * t // quiet: one filtering interval, forever
		} else {
			x = 0.001*float64(n/2) + 3*float64(i%2) + 0.5*float64(i%5) // bursty zigzag
		}
		out[i] = core.Point{T: t, X: []float64{x}}
	}
	return out
}

// metricsGauge sums a per-shard Prometheus gauge from /metrics output.
func metricsGauge(body, name string) (int64, bool) {
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + `\{[^}]*\} (-?\d+)$`)
	sum, found := int64(0), false
	for _, m := range re.FindAllStringSubmatch(body, -1) {
		v, err := strconv.ParseInt(m[1], 10, 64)
		if err != nil {
			return 0, false
		}
		sum += v
		found = true
	}
	return sum, found
}

// TestLagBoundedEndToEnd is the acceptance loop: a session advertising
// m=10 streams a quiet-then-bursty signal through a real listener, and
// at every point the queried archive trails the sent stream by fewer
// than m points — while /metrics exposes the per-shard staleness gauge,
// and a heartbeat Flush closes the residual window on demand.
func TestLagBoundedEndToEnd(t *testing.T) {
	const m = 10
	srv, addr := startServer(t, Config{Shards: 4})
	web := httptest.NewServer(srv.Handler())
	defer web.Close()

	cl, err := DialSpec(addr, "lagged", FilterSpec{Kind: "swing", Epsilon: []float64{0.5}, MaxLag: m})
	if err != nil {
		t.Fatal(err)
	}
	q, err := DialQuery(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()

	signal := quietThenBursty(600)
	sawPending := false
	for i, p := range signal {
		if err := cl.Send(p); err != nil {
			t.Fatal(err)
		}
		sent := int64(i + 1)
		eventually(t, 5*time.Second, func() (bool, string) {
			info, err := q.Lag("lagged")
			if err != nil {
				return false, fmt.Sprintf("LAG after point %d: %v", i, err)
			}
			covered := info.Covered + info.Pending
			if info.Pending > 0 {
				sawPending = true
			}
			if sent-covered >= m {
				return false, fmt.Sprintf("after point %d the archive covers %d (final %d + pending %d) — trails by %d ≥ m=%d",
					i, covered, info.Covered, info.Pending, sent-covered, m)
			}
			return true, ""
		})
	}
	if !sawPending {
		t.Fatal("the quiet phase never surfaced provisional coverage — the lag path was not exercised")
	}

	// The advertised bound is visible, and the staleness gauge is on
	// /metrics while the session holds an open window.
	info, err := q.Lag("lagged")
	if err != nil {
		t.Fatal(err)
	}
	if info.Bound != m {
		t.Fatalf("advertised bound %d, want %d", info.Bound, m)
	}
	resp, err := http.Get(web.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if sessions, ok := metricsGauge(string(body), "plad_shard_lag_sessions"); !ok || sessions != 1 {
		t.Fatalf("plad_shard_lag_sessions = %d (found %v), want 1", sessions, ok)
	}
	if _, ok := metricsGauge(string(body), "plad_shard_lag_pending_points"); !ok {
		t.Fatal("/metrics lacks plad_shard_lag_pending_points")
	}
	if upd, ok := metricsGauge(string(body), "plad_shard_lag_updates_total"); !ok || upd == 0 {
		t.Fatalf("plad_shard_lag_updates_total = %d (found %v), want > 0", upd, ok)
	}

	// A heartbeat flush forces the pending window shut without new data —
	// the quiet-stream guarantee.
	if err := cl.Flush(); err != nil {
		t.Fatal(err)
	}
	total := int64(len(signal))
	eventually(t, 5*time.Second, func() (bool, string) {
		info, err := q.Lag("lagged")
		if err != nil {
			return false, err.Error()
		}
		if info.Covered+info.Pending != total {
			return false, fmt.Sprintf("after heartbeat coverage is %d+%d of %d", info.Covered, info.Pending, total)
		}
		return true, ""
	})

	// Aggregates report the staleness field while the window is open.
	agg, err := q.Max("lagged", 0, 0, float64(len(signal)))
	if err != nil {
		t.Fatal(err)
	}
	if agg.Stale < 0 || agg.Stale >= m {
		t.Fatalf("aggregate staleness %d outside [0, m)", agg.Stale)
	}

	// Closing finalizes everything: no provisional tail, no staleness,
	// every point accounted, and the gauges settle to zero.
	ack, err := cl.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ack.Rejected != 0 || ack.Dropped != 0 {
		t.Fatalf("ack: %+v", ack)
	}
	eventually(t, 5*time.Second, func() (bool, string) {
		info, err := q.Lag("lagged")
		if err != nil {
			return false, err.Error()
		}
		if info.Pending != 0 || info.Stale != 0 || info.Covered != total || info.Consumed != total {
			return false, fmt.Sprintf("after close: %+v", info)
		}
		return true, ""
	})
	segs, err := q.Scan("lagged", 0, float64(len(signal)))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range segs {
		if s.Provisional {
			t.Fatal("provisional segment survived session close")
		}
	}
	for _, i := range []int{0, 150, 299, 300, 450, 599} {
		x, err := q.At("lagged", signal[i].T)
		if err != nil {
			t.Fatalf("At(%v): %v", signal[i].T, err)
		}
		if math.Abs(x[0]-signal[i].X[0]) > 0.5+1e-9 {
			t.Fatalf("At(%v) = %v strays from %v beyond ε", signal[i].T, x[0], signal[i].X[0])
		}
	}
	sms, err := q.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	var lagSessions, lagPoints, lagUpdates int64
	for _, sm := range sms {
		lagSessions += sm.LagSessions
		lagPoints += sm.LagPoints
		lagUpdates += sm.LagUpdates
	}
	if lagSessions != 0 || lagPoints != 0 {
		t.Fatalf("gauges did not settle: sessions=%d points=%d", lagSessions, lagPoints)
	}
	if lagUpdates == 0 {
		t.Fatal("no provisional updates were applied")
	}
}

// TestLagBoundedSlideSession runs the slide family through the same
// loop at a checkpointed cadence, with MeasureLag pinning the paper-side
// semantics on an identical filter: the spacing between receiver
// updates never exceeds m, and neither does the archive's trail.
func TestLagBoundedSlideSession(t *testing.T) {
	const m = 20
	_, addr := startServer(t, Config{Shards: 2})
	signal := gen.SSTLike(1500, 77)

	ref, err := core.NewSlide([]float64{0.1}, core.WithSlideMaxLag(m))
	if err != nil {
		t.Fatal(err)
	}
	rep, err := stream.MeasureLag(ref, signal)
	if err != nil {
		t.Fatal(err)
	}
	if rep.MaxPoints > m {
		t.Fatalf("MeasureLag reports %d-point spacing > m=%d", rep.MaxPoints, m)
	}

	cl, err := DialSpec(addr, "sst", FilterSpec{Kind: "slide", Epsilon: []float64{0.1}, MaxLag: m})
	if err != nil {
		t.Fatal(err)
	}
	q, err := DialQuery(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()

	for i, p := range signal {
		if err := cl.Send(p); err != nil {
			t.Fatal(err)
		}
		if i%100 != 0 {
			continue
		}
		sent := int64(i + 1)
		eventually(t, 5*time.Second, func() (bool, string) {
			info, err := q.Lag("sst")
			if err != nil {
				return false, err.Error()
			}
			if covered := info.Covered + info.Pending; sent-covered >= m {
				return false, fmt.Sprintf("after point %d coverage %d trails by ≥ m", i, covered)
			}
			return true, ""
		})
	}
	if _, err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	eventually(t, 5*time.Second, func() (bool, string) {
		info, err := q.Lag("sst")
		if err != nil {
			return false, err.Error()
		}
		if info.Covered != int64(len(signal)) || info.Stale != 0 {
			return false, fmt.Sprintf("after close: %+v", info)
		}
		return true, ""
	})
}

// TestUnboundedSessionUnchanged pins the compatibility half at the
// session level: a pre-extension client (plain Dial, no bound) speaks
// the v1 handshake and sees exactly the old behavior — no lag gauges,
// no provisional rows, bound 0.
func TestUnboundedSessionUnchanged(t *testing.T) {
	_, addr := startServer(t, Config{Shards: 2})
	f, err := core.NewSwing([]float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	cl, err := Dial(addr, "plain", f)
	if err != nil {
		t.Fatal(err)
	}
	signal := gen.RandomWalk(gen.WalkConfig{N: 2000, P: 0.5, MaxDelta: 0.4, Seed: 11})
	if err := cl.SendBatch(signal); err != nil {
		t.Fatal(err)
	}
	if err := cl.Flush(); err != nil { // no-op without a bound
		t.Fatal(err)
	}
	ack, err := cl.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ack.Applied == 0 {
		t.Fatal("nothing applied")
	}
	q, err := DialQuery(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	info, err := q.Lag("plain")
	if err != nil {
		t.Fatal(err)
	}
	if info.Bound != 0 || info.Pending != 0 || info.Stale != 0 || info.Covered != int64(len(signal)) {
		t.Fatalf("unbounded session lag info: %+v", info)
	}
	sms, err := q.Metrics()
	if err != nil {
		t.Fatal(err)
	}
	for _, sm := range sms {
		if sm.LagSessions != 0 || sm.LagPoints != 0 || sm.LagUpdates != 0 {
			t.Fatalf("unbounded session touched lag gauges: %+v", sm)
		}
	}
}
