package transport

import (
	"bytes"
	"io"
	"sync"
	"testing"

	"github.com/pla-go/pla/internal/core"
	"github.com/pla-go/pla/internal/encode"
	"github.com/pla-go/pla/internal/gen"
	"github.com/pla-go/pla/internal/recon"
)

// lockedBuf is a writer the test can snapshot between sends.
type lockedBuf struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuf) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuf) snapshot() []byte {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]byte(nil), b.buf.Bytes()...)
}

// decodeCovered replays the bytes shipped so far (always a whole number
// of segments: every Send ends in a flush) and returns how many points
// the receiver's model would cover, applying the provisional-supersede
// rules, plus the live segment set.
func decodeCovered(t *testing.T, raw []byte) (int, []core.Segment) {
	t.Helper()
	d, err := encode.NewDecoder(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	var segs []core.Segment
	for {
		s, err := d.Next()
		if err != nil {
			// io.EOF is the terminator; anything else is the cut at the
			// live end of the stream — both end the replay.
			break
		}
		if s.Provisional {
			for n := len(segs); n > 0 && segs[n-1].Provisional && segs[n-1].T1 > s.T0; n-- {
				segs = segs[:n-1]
			}
		} else {
			for n := len(segs); n > 0 && segs[n-1].Provisional; n-- {
				segs = segs[:n-1]
			}
		}
		segs = append(segs, s)
	}
	covered := 0
	for _, s := range segs {
		covered += s.Points
	}
	return covered, segs
}

// TestTransmitterBoundsReceiverLag is the wire-level max-lag guarantee:
// with m = 10, after every single Send the bytes on the wire cover all
// but at most m−1 consumed points — for both filter families, across
// signals with long flat stretches (where unbounded filters lag
// arbitrarily).
func TestTransmitterBoundsReceiverLag(t *testing.T) {
	const m = 10
	signal := gen.SSTLike(1200, 31)
	for _, tc := range []struct {
		name string
		mk   func() (core.Filter, error)
	}{
		{"swing", func() (core.Filter, error) {
			return core.NewSwing([]float64{0.5}, core.WithSwingMaxLag(m))
		}},
		{"slide", func() (core.Filter, error) {
			return core.NewSlide([]float64{0.5}, core.WithSlideMaxLag(m))
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			f, err := tc.mk()
			if err != nil {
				t.Fatal(err)
			}
			var buf lockedBuf
			tx, err := NewTransmitter(&buf, f)
			if err != nil {
				t.Fatal(err)
			}
			if tx.MaxLag() != m {
				t.Fatalf("transmitter bound %d, want %d", tx.MaxLag(), m)
			}
			worst := 0
			for i, p := range signal {
				if err := tx.Send(p); err != nil {
					t.Fatal(err)
				}
				if u := int(tx.Unshipped()); u > worst {
					worst = u
				}
				if i%50 == 0 {
					covered, _ := decodeCovered(t, buf.snapshot())
					if lag := i + 1 - covered; lag >= m {
						t.Fatalf("after point %d the wire covers %d — receiver trails by %d ≥ m=%d", i+1, covered, lag, m)
					}
				}
			}
			if worst >= m {
				t.Fatalf("unshipped window reached %d ≥ m=%d", worst, m)
			}
			if err := tx.Close(); err != nil {
				t.Fatal(err)
			}
			covered, segs := decodeCovered(t, buf.snapshot())
			if covered != len(signal) {
				t.Fatalf("final stream covers %d of %d points", covered, len(signal))
			}
			for _, s := range segs {
				if s.Provisional {
					t.Fatal("provisional segment survived the final stream")
				}
			}
			model, err := recon.NewModel(segs)
			if err != nil {
				t.Fatal(err)
			}
			if err := recon.CheckPrecision(signal, model, []float64{0.5}, 1e-6); err != nil {
				t.Fatalf("lag-bounded stream broke the guarantee: %v", err)
			}
		})
	}
}

// TestFlushPendingHeartbeat covers the quiet-stream hole: fewer than m
// points consumed, nothing on the wire beyond the header — one
// FlushPending ships the provisional update so the receiver catches up.
func TestFlushPendingHeartbeat(t *testing.T) {
	const m = 100
	f, err := core.NewSwing([]float64{0.5}, core.WithSwingMaxLag(m))
	if err != nil {
		t.Fatal(err)
	}
	var buf lockedBuf
	tx, err := NewTransmitter(&buf, f)
	if err != nil {
		t.Fatal(err)
	}
	signal := gen.RandomWalk(gen.WalkConfig{N: 7, P: 0.5, MaxDelta: 0.1, Seed: 3})
	for _, p := range signal {
		if err := tx.Send(p); err != nil {
			t.Fatal(err)
		}
	}
	if covered, _ := decodeCovered(t, buf.snapshot()); covered != 0 {
		t.Fatalf("quiet stream already covered %d points", covered)
	}
	if err := tx.FlushPending(); err != nil {
		t.Fatal(err)
	}
	covered, segs := decodeCovered(t, buf.snapshot())
	if covered != len(signal) {
		t.Fatalf("after heartbeat the wire covers %d of %d points", covered, len(signal))
	}
	if len(segs) == 0 || !segs[len(segs)-1].Provisional {
		t.Fatalf("heartbeat did not ship a provisional update: %+v", segs)
	}
	// Idempotent while nothing new arrived.
	before := len(buf.snapshot())
	if err := tx.FlushPending(); err != nil {
		t.Fatal(err)
	}
	if after := len(buf.snapshot()); after != before {
		t.Fatalf("redundant heartbeat wrote %d bytes", after-before)
	}
	if err := tx.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestFlushPendingUnboundedNoop pins the v1 path: without a bound the
// heartbeat is a no-op and the stream stays version 1.
func TestFlushPendingUnboundedNoop(t *testing.T) {
	f, err := core.NewSwing([]float64{0.5})
	if err != nil {
		t.Fatal(err)
	}
	var buf lockedBuf
	tx, err := NewTransmitter(&buf, f)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf.snapshot(), []byte("PLA1")) {
		t.Fatalf("unbounded stream header %q", buf.snapshot()[:4])
	}
	if err := tx.Send(core.Point{T: 1, X: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	before := len(buf.snapshot())
	if err := tx.FlushPending(); err != nil {
		t.Fatal(err)
	}
	if after := len(buf.snapshot()); after != before {
		t.Fatalf("unbounded heartbeat wrote %d bytes", after-before)
	}
	if err := tx.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestLagBoundedLiveLink runs a lag-bounded stream through the live
// Receiver: mid-stream the receiver's covered span must track the
// sender, and provisional segments must answer At within ε.
func TestLagBoundedLiveLink(t *testing.T) {
	const m = 10
	pr, pw := io.Pipe()
	signal := gen.SSTLike(1000, 9)
	eps := []float64{0.1}
	f, err := core.NewSlide(eps, core.WithSlideMaxLag(m))
	if err != nil {
		t.Fatal(err)
	}
	segs := runLink(t, pw, pr, f, signal)
	model, err := recon.NewModel(segs)
	if err != nil {
		t.Fatal(err)
	}
	if err := recon.CheckPrecision(signal, model, eps, 1e-6); err != nil {
		t.Fatalf("receiver-side guarantee broken: %v", err)
	}
	n := 0
	for _, s := range segs {
		n += s.Points
	}
	if n != len(signal) {
		t.Fatalf("receiver accounted %d of %d points", n, len(signal))
	}
}
