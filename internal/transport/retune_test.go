package transport

import (
	"io"
	"math"
	"testing"

	"github.com/pla-go/pla/internal/core"
	"github.com/pla-go/pla/internal/gen"
)

func swingRefit(eps []float64) (core.Filter, error) { return core.NewSwing(eps) }

// runAdaptiveLink streams signal through an adaptive transmitter,
// calling tune(i, tx) before each send, and returns the drained
// receiver and transmitter for inspection.
func runAdaptiveLink(t *testing.T, signal []core.Point, tune func(int, *Transmitter)) (*Receiver, *Transmitter) {
	t.Helper()
	pr, pw := io.Pipe()
	type result struct {
		rx  *Receiver
		err error
	}
	resCh := make(chan result, 1)
	go func() {
		rx, err := NewReceiver(pr)
		if err != nil {
			resCh <- result{nil, err}
			return
		}
		resCh <- result{rx, rx.Run()}
	}()
	f, err := core.NewSwing([]float64{0.1})
	if err != nil {
		t.Fatal(err)
	}
	tx, err := NewAdaptiveTransmitter(pw, f, swingRefit)
	if err != nil {
		t.Fatal(err)
	}
	tx.AllowRetune()
	for i, p := range signal {
		if tune != nil {
			tune(i, tx)
		}
		if err := tx.Send(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Close(); err != nil {
		t.Fatal(err)
	}
	pw.Close()
	res := <-resCh
	if res.err != nil {
		t.Fatal(res.err)
	}
	return res.rx, tx
}

// TestAdaptiveLinkDecimates turns a stride on mid-stream and checks the
// receiver learns the honest inflated bound and the shed count, and the
// reconstruction respects that bound at every original sample.
func TestAdaptiveLinkDecimates(t *testing.T) {
	signal := gen.RandomWalk(gen.WalkConfig{N: 400, P: 0.5, MaxDelta: 0.4, Seed: 7})
	rx, tx := runAdaptiveLink(t, signal, func(i int, tx *Transmitter) {
		if i == 100 {
			if err := tx.SetStride(2); err != nil {
				t.Fatal(err)
			}
		}
	})
	if tx.ShedPoints() == 0 {
		t.Fatal("stride 2 shed nothing over 300 points")
	}
	if rx.ShedTotal() != tx.ShedPoints() {
		t.Fatalf("receiver shed total %d != transmitter %d", rx.ShedTotal(), tx.ShedPoints())
	}
	eff := rx.EffectiveEpsilon()
	if eff == nil {
		t.Fatal("receiver never saw an effective-ε announcement")
	}
	txEff := tx.EffectiveEpsilon()
	if eff[0]+1e-12 < txEff[0] {
		t.Fatalf("receiver bound %g understates the sender's final %g", eff[0], txEff[0])
	}
	if eff[0] <= 0.1 {
		t.Fatalf("effective ε %g did not inflate over the contract", eff[0])
	}
	// The honest-bound property: every original sample within eff of
	// the reconstruction wherever the stream covers it.
	for _, p := range signal {
		x, ok := rx.At(p.T)
		if !ok {
			t.Fatalf("decimation lost coverage at t=%v", p.T)
		}
		if err := math.Abs(x[0] - p.X[0]); err > eff[0]+1e-9 {
			t.Fatalf("reconstruction off by %g at t=%v, reported bound %g", err, p.T, eff[0])
		}
	}
}

// TestAdaptiveLinkRetuneEpsilon renegotiates ε mid-stream and checks
// the stream stays within the widest ε that was ever in force.
func TestAdaptiveLinkRetuneEpsilon(t *testing.T) {
	signal := gen.RandomWalk(gen.WalkConfig{N: 400, P: 0.5, MaxDelta: 0.4, Seed: 11})
	rx, tx := runAdaptiveLink(t, signal, func(i int, tx *Transmitter) {
		if i == 200 {
			if err := tx.Retune([]float64{0.8}, 0); err != nil {
				t.Fatal(err)
			}
		}
	})
	eff := rx.EffectiveEpsilon()
	if eff == nil || eff[0] < 0.8 {
		t.Fatalf("receiver bound %v, want ≥ the renegotiated 0.8", eff)
	}
	if got := tx.EffectiveEpsilon()[0]; got < 0.8 {
		t.Fatalf("transmitter effective ε %g below the widest contract", got)
	}
	for _, p := range signal {
		x, ok := rx.At(p.T)
		if !ok {
			continue // a retune's filter swap may leave a seam
		}
		if err := math.Abs(x[0] - p.X[0]); err > eff[0]+1e-9 {
			t.Fatalf("reconstruction off by %g at t=%v, reported bound %g", err, p.T, eff[0])
		}
	}
}

// TestAdaptiveRetuneMonotoneBase narrowing ε mid-stream must not shrink
// the reported bound: points already sent under the wide contract keep
// their error.
func TestAdaptiveRetuneMonotoneBase(t *testing.T) {
	signal := gen.RandomWalk(gen.WalkConfig{N: 300, P: 0.5, MaxDelta: 0.4, Seed: 3})
	_, tx := runAdaptiveLink(t, signal, func(i int, tx *Transmitter) {
		switch i {
		case 100:
			if err := tx.Retune([]float64{1.0}, 0); err != nil {
				t.Fatal(err)
			}
		case 200:
			if err := tx.Retune([]float64{0.05}, 0); err != nil {
				t.Fatal(err)
			}
		}
	})
	if got := tx.EffectiveEpsilon()[0]; got < 1.0 {
		t.Fatalf("effective ε %g forgot the 1.0 contract the middle of the stream ran under", got)
	}
}

// TestNonAdaptiveRefusesRetune pins the plain transmitter's behaviour.
func TestNonAdaptiveRefusesRetune(t *testing.T) {
	f, err := core.NewSwing([]float64{0.1})
	if err != nil {
		t.Fatal(err)
	}
	tx, err := NewTransmitter(io.Discard, f)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Retune([]float64{0.5}, 0); err == nil {
		t.Fatal("plain transmitter accepted a retune")
	}
	if err := tx.SetStride(2); err == nil {
		t.Fatal("plain transmitter accepted a stride")
	}
	if got := tx.EffectiveEpsilon(); len(got) != 1 || got[0] != 0.1 {
		t.Fatalf("plain transmitter effective ε %v, want the contract", got)
	}
}

// TestAdaptiveSilentWithoutAllow checks no opRetune record reaches the
// wire until AllowRetune — the compatibility rule against old peers.
// The header still carries the capability bit (that is what the peer
// acks), so a header-only check distinguishes the two.
func TestAdaptiveSilentWithoutAllow(t *testing.T) {
	pr, pw := io.Pipe()
	type result struct {
		rx  *Receiver
		err error
	}
	resCh := make(chan result, 1)
	go func() {
		rx, err := NewReceiver(pr)
		if err != nil {
			resCh <- result{nil, err}
			return
		}
		resCh <- result{rx, rx.Run()}
	}()
	f, err := core.NewSwing([]float64{0.1})
	if err != nil {
		t.Fatal(err)
	}
	tx, err := NewAdaptiveTransmitter(pw, f, swingRefit)
	if err != nil {
		t.Fatal(err)
	}
	// No AllowRetune: the server answered like an old one. A locally
	// forced stride still decimates (the data is gone either way) but
	// must not announce.
	if err := tx.SetStride(2); err != nil {
		t.Fatal(err)
	}
	signal := gen.RandomWalk(gen.WalkConfig{N: 200, P: 0.5, MaxDelta: 0.4, Seed: 5})
	for _, p := range signal {
		if err := tx.Send(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Close(); err != nil {
		t.Fatal(err)
	}
	pw.Close()
	res := <-resCh
	if res.err != nil {
		t.Fatal(res.err)
	}
	if res.rx.EffectiveEpsilon() != nil {
		t.Fatalf("opRetune reached the wire without the peer's ack (eff %v)", res.rx.EffectiveEpsilon())
	}
	if tx.ShedPoints() == 0 {
		t.Fatal("local stride did not decimate")
	}
}
