// Package transport streams a filtered signal from a transmitter to a
// receiver over any io.Writer/io.Reader pair (a net.Conn, an io.Pipe, a
// file) — the live half of the paper's monitoring scenario (Section 1):
// the sensor pushes raw samples into a Transmitter, only recordings cross
// the link, and the Receiver maintains a queryable model that is always
// within ε of every sample the transmitter has resolved.
package transport

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"github.com/pla-go/pla/internal/core"
	"github.com/pla-go/pla/internal/encode"
)

// ErrClosed reports use of a closed transmitter.
var ErrClosed = errors.New("transport: transmitter closed")

// Transmitter pushes samples through a filter and ships every finalized
// segment over the wire immediately (one flush per batch of segments).
// It is not safe for concurrent use; one goroutine owns a transmitter.
//
// When the filter carries an m_max_lag bound (WithSwingMaxLag /
// WithSlideMaxLag), the transmitter opens a v2 stream advertising the
// filter kind and the bound, and enforces the bound on the wire: as
// soon as the number of consumed-but-unshipped points reaches m it
// ships the filter's provisional receiver update (Sections 3.3, 4.3),
// so a receiver applying the stream never trails the sender by m or
// more points. FlushPending forces the same update early — the
// heartbeat for a stream going quiet mid-interval.
type Transmitter struct {
	f       core.Filter
	pending interface{ Pending() []core.Segment }
	enc     *encode.Encoder
	maxLag  int
	pushed  int64 // samples consumed by the filter
	final   int64 // samples covered by shipped finalized segments
	// provCover is the samples the last provisional update still covers
	// on the receiver. It mirrors the supersede rule: a provisional ship
	// covers everything consumed, and any finalized segment voids the
	// whole provisional tail (receivers drop it), so coverage can dip
	// and the bound check re-ships within the same Send.
	provCover int64
	closed    bool

	// Graceful degradation (retune-capable streams only). dec decimates
	// points ahead of the filter under a server-assigned stride; refit
	// rebuilds the filter at a renegotiated ε; effBase tracks the widest
	// filter ε the stream ever ran under, so the announced effective ε
	// (effBase + measured chord deviation) covers everything sent.
	dec        *core.Decimator
	refit      func(eps []float64) (core.Filter, error)
	retuneWire bool // peer acknowledged flagRetune; opRetune is legal
	effBase    []float64
	effBuf     []float64
	lastAnn    []float64 // effective ε at the last announcement
	lastStride int
	lastShed   uint64 // shed total at the last announcement
}

// HeaderFor derives the stream header a transmitter for f negotiates:
// the precision contract, the filter family, the constant flag for
// cache filters, and — when the filter carries one — the m_max_lag
// bound that selects the v2 handshake. Exported so session transports
// that negotiate out of band (the UDP hello datagram) advertise exactly
// the header the in-band stream will carry.
func HeaderFor(f core.Filter) encode.Header {
	h := encode.Header{Epsilon: f.Epsilon()}
	switch f.(type) {
	case *core.Swing:
		h.Kind = encode.KindSwing
	case *core.Slide:
		h.Kind = encode.KindSlide
	case *core.Cache:
		h.Kind = encode.KindCache
		h.Constant = true
	}
	if ml, ok := f.(interface{ MaxLag() int }); ok {
		if _, okp := f.(interface{ Pending() []core.Segment }); okp && ml.MaxLag() > 0 {
			h.MaxLag = ml.MaxLag()
		}
	}
	return h
}

// NewTransmitter writes the stream header for f's precision contract and
// returns a transmitter. constant must be set when f is a cache filter.
func NewTransmitter(w io.Writer, f core.Filter) (*Transmitter, error) {
	return newTransmitter(w, f, HeaderFor(f))
}

// NewAdaptiveTransmitter is NewTransmitter with the retune capability:
// the handshake sets flagRetune, a decimator sits ahead of the filter
// (pass-through until SetStride), and refit — when non-nil — rebuilds
// the filter at a renegotiated ε. Call AllowRetune once the peer has
// acknowledged the capability; until then the stream carries no
// opRetune records and stays readable by any receiver.
func NewAdaptiveTransmitter(w io.Writer, f core.Filter, refit func(eps []float64) (core.Filter, error)) (*Transmitter, error) {
	h := HeaderFor(f)
	h.Retune = true
	t, err := newTransmitter(w, f, h)
	if err != nil {
		return nil, err
	}
	t.dec = core.NewDecimator(f.Dim())
	t.refit = refit
	t.effBase = append([]float64(nil), f.Epsilon()...)
	t.effBuf = make([]float64, f.Dim())
	t.lastAnn = append([]float64(nil), f.Epsilon()...)
	return t, nil
}

func newTransmitter(w io.Writer, f core.Filter, h encode.Header) (*Transmitter, error) {
	t := &Transmitter{f: f}
	if h.MaxLag > 0 {
		t.maxLag = h.MaxLag
		t.pending = f.(interface{ Pending() []core.Segment })
	}
	enc, err := encode.NewEncoderHeader(w, h)
	if err != nil {
		return nil, err
	}
	t.enc = enc
	if err := enc.Flush(); err != nil { // make the header visible now
		return nil, err
	}
	return t, nil
}

// AllowRetune records that the peer acknowledged the retune capability,
// unlocking opRetune announcements. A retune-capable transmitter whose
// peer never acks (an old server) simply keeps the handshake contract.
func (t *Transmitter) AllowRetune() { t.retuneWire = t.dec != nil }

// SetStride changes the decimation stride (0 = off, k ≥ 2 = drop every
// k-th point ahead of the filter) and announces the change to the peer.
func (t *Transmitter) SetStride(k int) error {
	if t.closed {
		return ErrClosed
	}
	if t.dec == nil {
		return fmt.Errorf("transport: stride on a non-adaptive transmitter")
	}
	t.dec.SetStride(k)
	if wrote, err := t.maybeAnnounce(true); err != nil {
		return err
	} else if wrote {
		return t.enc.Flush()
	}
	return nil
}

// Stride returns the current decimation stride (0 when off or not an
// adaptive transmitter).
func (t *Transmitter) Stride() int {
	if t.dec == nil {
		return 0
	}
	return t.dec.Stride()
}

// ShedPoints returns how many points the decimator dropped, lifetime.
func (t *Transmitter) ShedPoints() uint64 {
	if t.dec == nil {
		return 0
	}
	return t.dec.Shed()
}

// EffectiveEpsilon returns the honest per-dimension error bound of
// everything sent so far: the widest filter ε the stream ran under,
// plus the measured chord deviation of every decimated point. Equal to
// the contract when nothing degraded. The slice is reused; copy to
// retain.
func (t *Transmitter) EffectiveEpsilon() []float64 {
	if t.dec == nil {
		return t.f.Epsilon()
	}
	dev := t.dec.Deviation()
	for i := range t.effBuf {
		t.effBuf[i] = t.effBase[i] + dev[i]
	}
	return t.effBuf
}

// Retune applies a renegotiation: a non-nil eps rebuilds the filter at
// the new precision (finishing the current one first — the finalized
// segments ship, and a disconnected restart is wire-legal), and stride
// adjusts the decimator. The change is announced to the peer.
func (t *Transmitter) Retune(eps []float64, stride int) error {
	if t.closed {
		return ErrClosed
	}
	if t.dec == nil {
		return fmt.Errorf("transport: retune on a non-adaptive transmitter")
	}
	if eps != nil {
		if t.refit == nil {
			return fmt.Errorf("transport: no refit hook for ε renegotiation")
		}
		segs, err := t.f.Finish()
		if err != nil {
			return err
		}
		if _, err := t.write(segs); err != nil {
			return err
		}
		nf, err := t.refit(eps)
		if err != nil {
			return err
		}
		t.f = nf
		if t.maxLag > 0 {
			if p, ok := nf.(interface{ Pending() []core.Segment }); ok {
				t.pending = p
			} else {
				t.maxLag, t.pending = 0, nil
			}
		}
		for i, e := range nf.Epsilon() {
			if i < len(t.effBase) && e > t.effBase[i] {
				t.effBase[i] = e
			}
		}
	}
	t.dec.SetStride(stride)
	if _, err := t.maybeAnnounce(true); err != nil {
		return err
	}
	return t.enc.Flush()
}

// announceGrowth is the relative effective-ε growth that triggers a new
// opRetune announcement between stride changes — enough hysteresis that
// creeping chord deviation costs O(log) records, not one per point.
const announceGrowth = 1.05

// maybeAnnounce writes an opRetune record when the effective precision
// moved since the last announcement (always when force is set and the
// peer acked the capability). The caller owns flushing.
func (t *Transmitter) maybeAnnounce(force bool) (bool, error) {
	if !t.retuneWire {
		return false, nil
	}
	stride := t.dec.Stride()
	eff := t.EffectiveEpsilon()
	changed := force || stride != t.lastStride
	if !changed {
		for i := range eff {
			if eff[i] > t.lastAnn[i]*announceGrowth+1e-12 {
				changed = true
				break
			}
		}
	}
	if !changed {
		return false, nil
	}
	if err := t.enc.WriteRetune(eff, stride, t.dec.Shed()); err != nil {
		return true, err
	}
	copy(t.lastAnn, eff)
	t.lastStride = stride
	t.lastShed = t.dec.Shed()
	return true, nil
}

// MaxLag returns the enforced m_max_lag bound (0 when unbounded).
func (t *Transmitter) MaxLag() int { return t.maxLag }

// Unshipped returns how many consumed samples no shipped segment —
// final or provisional — covers yet; with a max-lag bound this stays
// below it between calls.
func (t *Transmitter) Unshipped() int64 { return t.pushed - t.final - t.provCover }

// write serialises finalized segments without flushing. Each finalized
// segment advances the final coverage and voids any outstanding
// provisional coverage (the receiver drops the superseded tail).
func (t *Transmitter) write(segs []core.Segment) (bool, error) {
	for _, s := range segs {
		if err := t.enc.WriteSegment(s); err != nil {
			return len(segs) > 0, err
		}
		t.final += int64(s.Points)
		t.provCover = 0
	}
	return len(segs) > 0, nil
}

// maybeUpdate ships the provisional receiver update once the unshipped
// window reaches the max-lag bound.
func (t *Transmitter) maybeUpdate() (bool, error) {
	if t.maxLag == 0 || t.Unshipped() < int64(t.maxLag) {
		return false, nil
	}
	return t.shipPending()
}

// shipPending writes the filter's current provisional segments (without
// flushing); they cover every consumed point no final segment does.
func (t *Transmitter) shipPending() (bool, error) {
	segs := t.pending.Pending()
	if len(segs) == 0 {
		return false, nil
	}
	for _, s := range segs {
		if err := t.enc.WriteUpdate(s); err != nil {
			return true, err
		}
	}
	t.provCover = t.pushed - t.final
	return true, nil
}

// Send consumes one sample; any segments the filter finalizes — and, on
// a lag-bounded stream, any provisional update the bound requires — are
// written and flushed before Send returns.
func (t *Transmitter) Send(p core.Point) error {
	if t.closed {
		return ErrClosed
	}
	if t.dec != nil && !t.dec.Offer(p) {
		// Decimated ahead of the filter. Announce when the measured
		// chord deviation pushed the effective ε past the hysteresis.
		ann, err := t.maybeAnnounce(false)
		if err != nil {
			return err
		}
		if ann {
			return t.enc.Flush()
		}
		return nil
	}
	segs, err := t.f.Push(p)
	if err != nil {
		return err
	}
	t.pushed++
	wrote, err := t.write(segs)
	if err != nil {
		if wrote {
			t.enc.Flush()
		}
		return err
	}
	updated, err := t.maybeUpdate()
	if err != nil {
		if wrote || updated {
			t.enc.Flush()
		}
		return err
	}
	if !wrote && !updated {
		return nil
	}
	return t.enc.Flush()
}

// SendBatch consumes a batch of samples with a single wire flush at the
// end, amortising the per-flush cost when the caller already has points
// queued (a network client draining a buffer, a benchmark driving the
// throughput path). Lag-bound provisional updates are still written at
// the exact point that crosses the bound; they reach the wire with the
// batch's flush.
func (t *Transmitter) SendBatch(ps []core.Point) error {
	if t.closed {
		return ErrClosed
	}
	wrote := false
	for i := range ps {
		if t.dec != nil && !t.dec.Offer(ps[i]) {
			a, err := t.maybeAnnounce(false)
			wrote = wrote || a
			if err != nil {
				if wrote {
					t.enc.Flush()
				}
				return err
			}
			continue
		}
		segs, err := t.f.Push(ps[i])
		if err != nil {
			// Flush what was finalized before the bad point: the filter
			// has consumed those samples, so withholding their segments
			// would desynchronise the receiver from Stats(), unlike the
			// per-point Send path which has already shipped them.
			if wrote {
				t.enc.Flush()
			}
			return err
		}
		t.pushed++
		w, err := t.write(segs)
		wrote = wrote || w
		if err != nil {
			if wrote {
				t.enc.Flush()
			}
			return err
		}
		u, err := t.maybeUpdate()
		wrote = wrote || u
		if err != nil {
			if wrote {
				t.enc.Flush()
			}
			return err
		}
	}
	if !wrote {
		return nil
	}
	return t.enc.Flush()
}

// FlushPending ships the provisional receiver update covering every
// consumed-but-unshipped point, regardless of how far below the bound
// the window is — the heartbeat that keeps a quiet stream's receiver
// fresh mid-interval. It is a no-op on streams without a max-lag bound
// or with nothing outstanding.
func (t *Transmitter) FlushPending() error {
	if t.closed {
		return ErrClosed
	}
	if t.maxLag == 0 || t.Unshipped() == 0 {
		return nil
	}
	wrote, err := t.shipPending()
	if err != nil {
		return err
	}
	if !wrote {
		return nil
	}
	return t.enc.Flush()
}

// Close finishes the filter, ships the final segments and the stream
// terminator, and flushes.
func (t *Transmitter) Close() error {
	if t.closed {
		return ErrClosed
	}
	if t.dec != nil {
		// A trailing dropped point still awaiting its right neighbour is
		// re-pushed: the stream ends on its true last sample, and the
		// deviation bound never pays for a point that made it after all.
		if p, ok := t.dec.TakePending(); ok {
			segs, err := t.f.Push(p)
			if err != nil {
				return err
			}
			if _, err := t.write(segs); err != nil {
				return err
			}
		}
	}
	segs, err := t.f.Finish()
	if err != nil {
		return err
	}
	if err := t.ship(segs); err != nil {
		return err
	}
	// Leave the peer with the exact final degradation state: the last
	// announcement before the terminator skips the hysteresis band, and
	// fires on shed-count growth too so the peer's lifetime total is
	// exact even when the deviation stopped moving.
	if t.retuneWire {
		stale := t.dec.Shed() != t.lastShed
		eff := t.EffectiveEpsilon()
		for i := range eff {
			if eff[i] > t.lastAnn[i]+1e-12 {
				stale = true
				break
			}
		}
		if stale {
			if _, err := t.maybeAnnounce(true); err != nil {
				return err
			}
		}
	}
	t.closed = true
	return t.enc.Close()
}

// Stats exposes the underlying filter's counters.
func (t *Transmitter) Stats() core.Stats { return t.f.Stats() }

// BytesSent returns the bytes flushed to the wire so far.
func (t *Transmitter) BytesSent() int64 { return t.enc.BytesWritten() }

func (t *Transmitter) ship(segs []core.Segment) error {
	if len(segs) == 0 {
		return nil
	}
	for _, s := range segs {
		if err := t.enc.WriteSegment(s); err != nil {
			return err
		}
	}
	return t.enc.Flush()
}

// Receiver incrementally decodes a transmitted stream and maintains a
// live, queryable model. Run consumes the wire; At/Segments may be called
// concurrently from other goroutines at any time.
type Receiver struct {
	dec *encode.Decoder

	mu   sync.RWMutex
	segs []core.Segment
	err  error
	done bool
}

// NewReceiver reads and validates the stream header. It blocks until the
// header bytes arrive.
func NewReceiver(r io.Reader) (*Receiver, error) {
	dec, err := encode.NewDecoder(r)
	if err != nil {
		return nil, err
	}
	return &Receiver{dec: dec}, nil
}

// Epsilon returns the per-dimension precision contract from the header.
func (r *Receiver) Epsilon() []float64 { return r.dec.Epsilon() }

// Dim returns the stream dimensionality.
func (r *Receiver) Dim() int { return r.dec.Dim() }

// Run consumes segments until the stream terminator (returning nil) or a
// decode error (returning it). Call it from its own goroutine for live
// operation; Wait-style synchronisation is the caller's (a channel around
// Run's return suffices).
func (r *Receiver) Run() error {
	for {
		seg, err := r.dec.Next()
		if err == io.EOF {
			r.mu.Lock()
			r.done = true
			r.mu.Unlock()
			return nil
		}
		if err != nil {
			r.mu.Lock()
			r.err = fmt.Errorf("transport: receive: %w", err)
			r.done = true
			err = r.err
			r.mu.Unlock()
			return err
		}
		r.mu.Lock()
		// Provisional (max-lag) announcements are superseded: a final
		// segment replaces the whole provisional tail it re-covers, and a
		// re-announcement replaces the provisional segments it overlaps
		// or re-pivots (starts at or after — the degenerate single-point
		// announcement case).
		if seg.Provisional {
			for n := len(r.segs); n > 0 && r.segs[n-1].Provisional &&
				(r.segs[n-1].T1 > seg.T0 || r.segs[n-1].T0 >= seg.T0); n-- {
				r.segs = r.segs[:n-1]
			}
		} else {
			for n := len(r.segs); n > 0 && r.segs[n-1].Provisional; n-- {
				r.segs = r.segs[:n-1]
			}
		}
		r.segs = append(r.segs, seg)
		r.mu.Unlock()
	}
}

// Done reports whether the stream has ended, and with what error.
func (r *Receiver) Done() (bool, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.done, r.err
}

// Segments returns a snapshot of the segments received so far.
func (r *Receiver) Segments() []core.Segment {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]core.Segment(nil), r.segs...)
}

// EffectiveEpsilon returns the latest announced effective ε of a
// retune-capable stream — nil until the first opRetune record arrives
// (the handshake contract holds). Safe only once Run has returned.
func (r *Receiver) EffectiveEpsilon() []float64 { return r.dec.EffectiveEpsilon() }

// ShedTotal returns the sender-reported decimated-point total from the
// latest opRetune record. Safe only once Run has returned.
func (r *Receiver) ShedTotal() uint64 { return r.dec.ShedTotal() }

// Len returns the number of segments received so far.
func (r *Receiver) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.segs)
}

// At evaluates the live model at time t, reporting false while t is not
// yet (or never) covered.
func (r *Receiver) At(t float64) ([]float64, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	i := sort.Search(len(r.segs), func(j int) bool { return r.segs[j].T0 > t }) - 1
	if i < 0 {
		return nil, false
	}
	seg := r.segs[i]
	if t > seg.T1 {
		if i > 0 && t >= r.segs[i-1].T0 && t <= r.segs[i-1].T1 {
			seg = r.segs[i-1]
		} else {
			return nil, false
		}
	}
	out := make([]float64, seg.Dim())
	for d := range out {
		out[d] = seg.At(d, t)
	}
	return out, true
}
