// Package transport streams a filtered signal from a transmitter to a
// receiver over any io.Writer/io.Reader pair (a net.Conn, an io.Pipe, a
// file) — the live half of the paper's monitoring scenario (Section 1):
// the sensor pushes raw samples into a Transmitter, only recordings cross
// the link, and the Receiver maintains a queryable model that is always
// within ε of every sample the transmitter has resolved.
package transport

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"github.com/pla-go/pla/internal/core"
	"github.com/pla-go/pla/internal/encode"
)

// ErrClosed reports use of a closed transmitter.
var ErrClosed = errors.New("transport: transmitter closed")

// Transmitter pushes samples through a filter and ships every finalized
// segment over the wire immediately (one flush per batch of segments).
// It is not safe for concurrent use; one goroutine owns a transmitter.
type Transmitter struct {
	f      core.Filter
	enc    *encode.Encoder
	closed bool
}

// NewTransmitter writes the stream header for f's precision contract and
// returns a transmitter. constant must be set when f is a cache filter.
func NewTransmitter(w io.Writer, f core.Filter) (*Transmitter, error) {
	_, constant := f.(*core.Cache)
	enc, err := encode.NewEncoder(w, f.Epsilon(), constant)
	if err != nil {
		return nil, err
	}
	if err := enc.Flush(); err != nil { // make the header visible now
		return nil, err
	}
	return &Transmitter{f: f, enc: enc}, nil
}

// Send consumes one sample; any segments the filter finalizes are written
// and flushed before Send returns.
func (t *Transmitter) Send(p core.Point) error {
	if t.closed {
		return ErrClosed
	}
	segs, err := t.f.Push(p)
	if err != nil {
		return err
	}
	return t.ship(segs)
}

// SendBatch consumes a batch of samples with a single wire flush at the
// end, amortising the per-flush cost when the caller already has points
// queued (a network client draining a buffer, a benchmark driving the
// throughput path).
func (t *Transmitter) SendBatch(ps []core.Point) error {
	if t.closed {
		return ErrClosed
	}
	wrote := false
	for i := range ps {
		segs, err := t.f.Push(ps[i])
		if err != nil {
			// Flush what was finalized before the bad point: the filter
			// has consumed those samples, so withholding their segments
			// would desynchronise the receiver from Stats(), unlike the
			// per-point Send path which has already shipped them.
			if wrote {
				t.enc.Flush()
			}
			return err
		}
		for _, s := range segs {
			if err := t.enc.WriteSegment(s); err != nil {
				if wrote {
					t.enc.Flush()
				}
				return err
			}
			wrote = true
		}
	}
	if !wrote {
		return nil
	}
	return t.enc.Flush()
}

// Close finishes the filter, ships the final segments and the stream
// terminator, and flushes.
func (t *Transmitter) Close() error {
	if t.closed {
		return ErrClosed
	}
	segs, err := t.f.Finish()
	if err != nil {
		return err
	}
	if err := t.ship(segs); err != nil {
		return err
	}
	t.closed = true
	return t.enc.Close()
}

// Stats exposes the underlying filter's counters.
func (t *Transmitter) Stats() core.Stats { return t.f.Stats() }

// BytesSent returns the bytes flushed to the wire so far.
func (t *Transmitter) BytesSent() int64 { return t.enc.BytesWritten() }

func (t *Transmitter) ship(segs []core.Segment) error {
	if len(segs) == 0 {
		return nil
	}
	for _, s := range segs {
		if err := t.enc.WriteSegment(s); err != nil {
			return err
		}
	}
	return t.enc.Flush()
}

// Receiver incrementally decodes a transmitted stream and maintains a
// live, queryable model. Run consumes the wire; At/Segments may be called
// concurrently from other goroutines at any time.
type Receiver struct {
	dec *encode.Decoder

	mu   sync.RWMutex
	segs []core.Segment
	err  error
	done bool
}

// NewReceiver reads and validates the stream header. It blocks until the
// header bytes arrive.
func NewReceiver(r io.Reader) (*Receiver, error) {
	dec, err := encode.NewDecoder(r)
	if err != nil {
		return nil, err
	}
	return &Receiver{dec: dec}, nil
}

// Epsilon returns the per-dimension precision contract from the header.
func (r *Receiver) Epsilon() []float64 { return r.dec.Epsilon() }

// Dim returns the stream dimensionality.
func (r *Receiver) Dim() int { return r.dec.Dim() }

// Run consumes segments until the stream terminator (returning nil) or a
// decode error (returning it). Call it from its own goroutine for live
// operation; Wait-style synchronisation is the caller's (a channel around
// Run's return suffices).
func (r *Receiver) Run() error {
	for {
		seg, err := r.dec.Next()
		if err == io.EOF {
			r.mu.Lock()
			r.done = true
			r.mu.Unlock()
			return nil
		}
		if err != nil {
			r.mu.Lock()
			r.err = fmt.Errorf("transport: receive: %w", err)
			r.done = true
			err = r.err
			r.mu.Unlock()
			return err
		}
		r.mu.Lock()
		r.segs = append(r.segs, seg)
		r.mu.Unlock()
	}
}

// Done reports whether the stream has ended, and with what error.
func (r *Receiver) Done() (bool, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.done, r.err
}

// Segments returns a snapshot of the segments received so far.
func (r *Receiver) Segments() []core.Segment {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]core.Segment(nil), r.segs...)
}

// Len returns the number of segments received so far.
func (r *Receiver) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.segs)
}

// At evaluates the live model at time t, reporting false while t is not
// yet (or never) covered.
func (r *Receiver) At(t float64) ([]float64, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	i := sort.Search(len(r.segs), func(j int) bool { return r.segs[j].T0 > t }) - 1
	if i < 0 {
		return nil, false
	}
	seg := r.segs[i]
	if t > seg.T1 {
		if i > 0 && t >= r.segs[i-1].T0 && t <= r.segs[i-1].T1 {
			seg = r.segs[i-1]
		} else {
			return nil, false
		}
	}
	out := make([]float64, seg.Dim())
	for d := range out {
		out[d] = seg.At(d, t)
	}
	return out, true
}
