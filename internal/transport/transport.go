// Package transport streams a filtered signal from a transmitter to a
// receiver over any io.Writer/io.Reader pair (a net.Conn, an io.Pipe, a
// file) — the live half of the paper's monitoring scenario (Section 1):
// the sensor pushes raw samples into a Transmitter, only recordings cross
// the link, and the Receiver maintains a queryable model that is always
// within ε of every sample the transmitter has resolved.
package transport

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"

	"github.com/pla-go/pla/internal/core"
	"github.com/pla-go/pla/internal/encode"
)

// ErrClosed reports use of a closed transmitter.
var ErrClosed = errors.New("transport: transmitter closed")

// Transmitter pushes samples through a filter and ships every finalized
// segment over the wire immediately (one flush per batch of segments).
// It is not safe for concurrent use; one goroutine owns a transmitter.
//
// When the filter carries an m_max_lag bound (WithSwingMaxLag /
// WithSlideMaxLag), the transmitter opens a v2 stream advertising the
// filter kind and the bound, and enforces the bound on the wire: as
// soon as the number of consumed-but-unshipped points reaches m it
// ships the filter's provisional receiver update (Sections 3.3, 4.3),
// so a receiver applying the stream never trails the sender by m or
// more points. FlushPending forces the same update early — the
// heartbeat for a stream going quiet mid-interval.
type Transmitter struct {
	f       core.Filter
	pending interface{ Pending() []core.Segment }
	enc     *encode.Encoder
	maxLag  int
	pushed  int64 // samples consumed by the filter
	final   int64 // samples covered by shipped finalized segments
	// provCover is the samples the last provisional update still covers
	// on the receiver. It mirrors the supersede rule: a provisional ship
	// covers everything consumed, and any finalized segment voids the
	// whole provisional tail (receivers drop it), so coverage can dip
	// and the bound check re-ships within the same Send.
	provCover int64
	closed    bool
}

// HeaderFor derives the stream header a transmitter for f negotiates:
// the precision contract, the filter family, the constant flag for
// cache filters, and — when the filter carries one — the m_max_lag
// bound that selects the v2 handshake. Exported so session transports
// that negotiate out of band (the UDP hello datagram) advertise exactly
// the header the in-band stream will carry.
func HeaderFor(f core.Filter) encode.Header {
	h := encode.Header{Epsilon: f.Epsilon()}
	switch f.(type) {
	case *core.Swing:
		h.Kind = encode.KindSwing
	case *core.Slide:
		h.Kind = encode.KindSlide
	case *core.Cache:
		h.Kind = encode.KindCache
		h.Constant = true
	}
	if ml, ok := f.(interface{ MaxLag() int }); ok {
		if _, okp := f.(interface{ Pending() []core.Segment }); okp && ml.MaxLag() > 0 {
			h.MaxLag = ml.MaxLag()
		}
	}
	return h
}

// NewTransmitter writes the stream header for f's precision contract and
// returns a transmitter. constant must be set when f is a cache filter.
func NewTransmitter(w io.Writer, f core.Filter) (*Transmitter, error) {
	h := HeaderFor(f)
	t := &Transmitter{f: f}
	if h.MaxLag > 0 {
		t.maxLag = h.MaxLag
		t.pending = f.(interface{ Pending() []core.Segment })
	}
	enc, err := encode.NewEncoderHeader(w, h)
	if err != nil {
		return nil, err
	}
	t.enc = enc
	if err := enc.Flush(); err != nil { // make the header visible now
		return nil, err
	}
	return t, nil
}

// MaxLag returns the enforced m_max_lag bound (0 when unbounded).
func (t *Transmitter) MaxLag() int { return t.maxLag }

// Unshipped returns how many consumed samples no shipped segment —
// final or provisional — covers yet; with a max-lag bound this stays
// below it between calls.
func (t *Transmitter) Unshipped() int64 { return t.pushed - t.final - t.provCover }

// write serialises finalized segments without flushing. Each finalized
// segment advances the final coverage and voids any outstanding
// provisional coverage (the receiver drops the superseded tail).
func (t *Transmitter) write(segs []core.Segment) (bool, error) {
	for _, s := range segs {
		if err := t.enc.WriteSegment(s); err != nil {
			return len(segs) > 0, err
		}
		t.final += int64(s.Points)
		t.provCover = 0
	}
	return len(segs) > 0, nil
}

// maybeUpdate ships the provisional receiver update once the unshipped
// window reaches the max-lag bound.
func (t *Transmitter) maybeUpdate() (bool, error) {
	if t.maxLag == 0 || t.Unshipped() < int64(t.maxLag) {
		return false, nil
	}
	return t.shipPending()
}

// shipPending writes the filter's current provisional segments (without
// flushing); they cover every consumed point no final segment does.
func (t *Transmitter) shipPending() (bool, error) {
	segs := t.pending.Pending()
	if len(segs) == 0 {
		return false, nil
	}
	for _, s := range segs {
		if err := t.enc.WriteUpdate(s); err != nil {
			return true, err
		}
	}
	t.provCover = t.pushed - t.final
	return true, nil
}

// Send consumes one sample; any segments the filter finalizes — and, on
// a lag-bounded stream, any provisional update the bound requires — are
// written and flushed before Send returns.
func (t *Transmitter) Send(p core.Point) error {
	if t.closed {
		return ErrClosed
	}
	segs, err := t.f.Push(p)
	if err != nil {
		return err
	}
	t.pushed++
	wrote, err := t.write(segs)
	if err != nil {
		if wrote {
			t.enc.Flush()
		}
		return err
	}
	updated, err := t.maybeUpdate()
	if err != nil {
		if wrote || updated {
			t.enc.Flush()
		}
		return err
	}
	if !wrote && !updated {
		return nil
	}
	return t.enc.Flush()
}

// SendBatch consumes a batch of samples with a single wire flush at the
// end, amortising the per-flush cost when the caller already has points
// queued (a network client draining a buffer, a benchmark driving the
// throughput path). Lag-bound provisional updates are still written at
// the exact point that crosses the bound; they reach the wire with the
// batch's flush.
func (t *Transmitter) SendBatch(ps []core.Point) error {
	if t.closed {
		return ErrClosed
	}
	wrote := false
	for i := range ps {
		segs, err := t.f.Push(ps[i])
		if err != nil {
			// Flush what was finalized before the bad point: the filter
			// has consumed those samples, so withholding their segments
			// would desynchronise the receiver from Stats(), unlike the
			// per-point Send path which has already shipped them.
			if wrote {
				t.enc.Flush()
			}
			return err
		}
		t.pushed++
		w, err := t.write(segs)
		wrote = wrote || w
		if err != nil {
			if wrote {
				t.enc.Flush()
			}
			return err
		}
		u, err := t.maybeUpdate()
		wrote = wrote || u
		if err != nil {
			if wrote {
				t.enc.Flush()
			}
			return err
		}
	}
	if !wrote {
		return nil
	}
	return t.enc.Flush()
}

// FlushPending ships the provisional receiver update covering every
// consumed-but-unshipped point, regardless of how far below the bound
// the window is — the heartbeat that keeps a quiet stream's receiver
// fresh mid-interval. It is a no-op on streams without a max-lag bound
// or with nothing outstanding.
func (t *Transmitter) FlushPending() error {
	if t.closed {
		return ErrClosed
	}
	if t.maxLag == 0 || t.Unshipped() == 0 {
		return nil
	}
	wrote, err := t.shipPending()
	if err != nil {
		return err
	}
	if !wrote {
		return nil
	}
	return t.enc.Flush()
}

// Close finishes the filter, ships the final segments and the stream
// terminator, and flushes.
func (t *Transmitter) Close() error {
	if t.closed {
		return ErrClosed
	}
	segs, err := t.f.Finish()
	if err != nil {
		return err
	}
	if err := t.ship(segs); err != nil {
		return err
	}
	t.closed = true
	return t.enc.Close()
}

// Stats exposes the underlying filter's counters.
func (t *Transmitter) Stats() core.Stats { return t.f.Stats() }

// BytesSent returns the bytes flushed to the wire so far.
func (t *Transmitter) BytesSent() int64 { return t.enc.BytesWritten() }

func (t *Transmitter) ship(segs []core.Segment) error {
	if len(segs) == 0 {
		return nil
	}
	for _, s := range segs {
		if err := t.enc.WriteSegment(s); err != nil {
			return err
		}
	}
	return t.enc.Flush()
}

// Receiver incrementally decodes a transmitted stream and maintains a
// live, queryable model. Run consumes the wire; At/Segments may be called
// concurrently from other goroutines at any time.
type Receiver struct {
	dec *encode.Decoder

	mu   sync.RWMutex
	segs []core.Segment
	err  error
	done bool
}

// NewReceiver reads and validates the stream header. It blocks until the
// header bytes arrive.
func NewReceiver(r io.Reader) (*Receiver, error) {
	dec, err := encode.NewDecoder(r)
	if err != nil {
		return nil, err
	}
	return &Receiver{dec: dec}, nil
}

// Epsilon returns the per-dimension precision contract from the header.
func (r *Receiver) Epsilon() []float64 { return r.dec.Epsilon() }

// Dim returns the stream dimensionality.
func (r *Receiver) Dim() int { return r.dec.Dim() }

// Run consumes segments until the stream terminator (returning nil) or a
// decode error (returning it). Call it from its own goroutine for live
// operation; Wait-style synchronisation is the caller's (a channel around
// Run's return suffices).
func (r *Receiver) Run() error {
	for {
		seg, err := r.dec.Next()
		if err == io.EOF {
			r.mu.Lock()
			r.done = true
			r.mu.Unlock()
			return nil
		}
		if err != nil {
			r.mu.Lock()
			r.err = fmt.Errorf("transport: receive: %w", err)
			r.done = true
			err = r.err
			r.mu.Unlock()
			return err
		}
		r.mu.Lock()
		// Provisional (max-lag) announcements are superseded: a final
		// segment replaces the whole provisional tail it re-covers, and a
		// re-announcement replaces the provisional segments it overlaps
		// or re-pivots (starts at or after — the degenerate single-point
		// announcement case).
		if seg.Provisional {
			for n := len(r.segs); n > 0 && r.segs[n-1].Provisional &&
				(r.segs[n-1].T1 > seg.T0 || r.segs[n-1].T0 >= seg.T0); n-- {
				r.segs = r.segs[:n-1]
			}
		} else {
			for n := len(r.segs); n > 0 && r.segs[n-1].Provisional; n-- {
				r.segs = r.segs[:n-1]
			}
		}
		r.segs = append(r.segs, seg)
		r.mu.Unlock()
	}
}

// Done reports whether the stream has ended, and with what error.
func (r *Receiver) Done() (bool, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.done, r.err
}

// Segments returns a snapshot of the segments received so far.
func (r *Receiver) Segments() []core.Segment {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]core.Segment(nil), r.segs...)
}

// Len returns the number of segments received so far.
func (r *Receiver) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.segs)
}

// At evaluates the live model at time t, reporting false while t is not
// yet (or never) covered.
func (r *Receiver) At(t float64) ([]float64, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	i := sort.Search(len(r.segs), func(j int) bool { return r.segs[j].T0 > t }) - 1
	if i < 0 {
		return nil, false
	}
	seg := r.segs[i]
	if t > seg.T1 {
		if i > 0 && t >= r.segs[i-1].T0 && t <= r.segs[i-1].T1 {
			seg = r.segs[i-1]
		} else {
			return nil, false
		}
	}
	out := make([]float64, seg.Dim())
	for d := range out {
		out[d] = seg.At(d, t)
	}
	return out, true
}
