package transport

import (
	"errors"
	"io"
	"math"
	"net"
	"testing"
	"time"

	"github.com/pla-go/pla/internal/core"
	"github.com/pla-go/pla/internal/gen"
	"github.com/pla-go/pla/internal/recon"
)

// runLink wires a transmitter to a receiver over the given pipe ends,
// streams signal through filter f, and returns the receiver's final
// segments.
func runLink(t *testing.T, w io.WriteCloser, r io.Reader, f core.Filter, signal []core.Point) []core.Segment {
	t.Helper()
	type result struct {
		rx  *Receiver
		err error
	}
	resCh := make(chan result, 1)
	go func() {
		rx, err := NewReceiver(r)
		if err != nil {
			resCh <- result{nil, err}
			return
		}
		resCh <- result{rx, rx.Run()}
	}()

	tx, err := NewTransmitter(w, f)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range signal {
		if err := tx.Send(p); err != nil {
			t.Fatal(err)
		}
	}
	if err := tx.Close(); err != nil {
		t.Fatal(err)
	}
	w.Close()

	res := <-resCh
	if res.err != nil {
		t.Fatal(res.err)
	}
	done, rerr := res.rx.Done()
	if !done || rerr != nil {
		t.Fatalf("receiver not done cleanly: %v %v", done, rerr)
	}
	return res.rx.Segments()
}

func TestLiveLinkOverIOPipe(t *testing.T) {
	pr, pw := io.Pipe()
	signal := gen.SeaSurfaceTemperature()
	eps := []float64{0.05}
	f, _ := core.NewSlide(eps)
	segs := runLink(t, pw, pr, f, signal)

	model, err := recon.NewModel(segs)
	if err != nil {
		t.Fatal(err)
	}
	if err := recon.CheckPrecision(signal, model, eps, 1e-6); err != nil {
		t.Fatalf("receiver-side guarantee broken: %v", err)
	}
}

func TestLiveLinkOverTCPLikeConn(t *testing.T) {
	c1, c2 := net.Pipe()
	signal := gen.RandomWalk(gen.WalkConfig{N: 2000, P: 0.5, MaxDelta: 2, Seed: 6})
	eps := []float64{1}
	f, _ := core.NewSwing(eps)
	segs := runLink(t, c1, c2, f, signal)
	model, err := recon.NewModel(segs)
	if err != nil {
		t.Fatal(err)
	}
	if err := recon.CheckPrecision(signal, model, eps, 1e-6); err != nil {
		t.Fatal(err)
	}
}

func TestCacheFilterLink(t *testing.T) {
	pr, pw := io.Pipe()
	signal := gen.Steps(400, 20, 8, 3)
	f, _ := core.NewCache([]float64{0.5})
	segs := runLink(t, pw, pr, f, signal)
	if len(segs) == 0 {
		t.Fatal("no segments received")
	}
	for _, s := range segs {
		if s.X0[0] != s.X1[0] {
			t.Fatal("constant stream carried a sloped segment")
		}
	}
}

// TestMidStreamQueries verifies the receiver serves consistent reads
// while segments are still arriving.
func TestMidStreamQueries(t *testing.T) {
	pr, pw := io.Pipe()
	signal := gen.SSTLike(1500, 9)
	eps := []float64{0.1}
	f, _ := core.NewSwing(eps)

	rxReady := make(chan *Receiver, 1)
	rxDone := make(chan error, 1)
	go func() {
		rx, err := NewReceiver(pr)
		if err != nil {
			rxReady <- nil
			rxDone <- err
			return
		}
		rxReady <- rx
		rxDone <- rx.Run()
	}()

	tx, err := NewTransmitter(pw, f)
	if err != nil {
		t.Fatal(err)
	}
	rx := <-rxReady
	if rx == nil {
		t.Fatal(<-rxDone)
	}
	if rx.Dim() != 1 || rx.Epsilon()[0] != 0.1 {
		t.Fatalf("header: dim=%d eps=%v", rx.Dim(), rx.Epsilon())
	}

	queried := 0
	for i, p := range signal {
		if err := tx.Send(p); err != nil {
			t.Fatal(err)
		}
		if i%100 == 0 && rx.Len() > 0 {
			// Query a time the receiver already covers; it must be within
			// ε of the original sample there.
			segs := rx.Segments()
			tq := segs[len(segs)-1].T1
			x, ok := rx.At(tq)
			if !ok {
				t.Fatalf("live At(%v) uncovered despite %d segments", tq, len(segs))
			}
			orig := sampleAt(signal, tq)
			if orig != nil && math.Abs(x[0]-orig[0]) > 0.1+1e-9 {
				t.Fatalf("live read at %v strayed: %v vs %v", tq, x[0], orig[0])
			}
			queried++
		}
	}
	if err := tx.Close(); err != nil {
		t.Fatal(err)
	}
	pw.Close()
	if err := <-rxDone; err != nil {
		t.Fatal(err)
	}
	if queried == 0 {
		t.Fatal("no live queries exercised")
	}
	if tx.BytesSent() == 0 || tx.Stats().Points != len(signal) {
		t.Fatalf("tx stats: bytes=%d points=%d", tx.BytesSent(), tx.Stats().Points)
	}
}

func sampleAt(signal []core.Point, t float64) []float64 {
	for _, p := range signal {
		if p.T == t {
			return p.X
		}
	}
	return nil
}

func TestTransmitterClosed(t *testing.T) {
	pr, pw := io.Pipe()
	go io.Copy(io.Discard, pr)
	f, _ := core.NewSwing([]float64{1})
	tx, err := NewTransmitter(pw, f)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Close(); err != nil {
		t.Fatal(err)
	}
	if err := tx.Send(core.Point{T: 0, X: []float64{0}}); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close: %v", err)
	}
	if err := tx.Close(); !errors.Is(err, ErrClosed) {
		t.Fatalf("double close: %v", err)
	}
}

func TestReceiverErrorOnCorruptStream(t *testing.T) {
	pr, pw := io.Pipe()
	errCh := make(chan error, 1)
	go func() {
		rx, err := NewReceiver(pr)
		if err != nil {
			errCh <- err
			return
		}
		errCh <- rx.Run()
	}()
	f, _ := core.NewSwing([]float64{1})
	tx, err := NewTransmitter(pw, f)
	if err != nil {
		t.Fatal(err)
	}
	_ = tx
	// Inject garbage mid-stream.
	if _, err := pw.Write([]byte{0xFF, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	pw.Close()
	select {
	case err := <-errCh:
		if err == nil {
			t.Fatal("corrupt stream accepted")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("receiver hung on corrupt stream")
	}
}

func TestTransmitterPropagatesFilterErrors(t *testing.T) {
	pr, pw := io.Pipe()
	go io.Copy(io.Discard, pr)
	f, _ := core.NewSwing([]float64{1})
	tx, err := NewTransmitter(pw, f)
	if err != nil {
		t.Fatal(err)
	}
	if err := tx.Send(core.Point{T: 1, X: []float64{0}}); err != nil {
		t.Fatal(err)
	}
	if err := tx.Send(core.Point{T: 1, X: []float64{0}}); !errors.Is(err, core.ErrTimeOrder) {
		t.Fatalf("want ErrTimeOrder, got %v", err)
	}
}
