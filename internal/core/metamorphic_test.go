package core_test

import (
	"math"
	"math/rand"
	"testing"

	"github.com/pla-go/pla/internal/core"
)

// Metamorphic properties: the filters are (or should be) equivariant
// under affine transformations of the input. Shifting every timestamp by
// Δt, every value by Δx, or scaling values and ε together by k must
// produce the same segmentation, transformed the same way — any
// divergence betrays hidden dependence on absolute coordinates.

func metamorphicFilters(eps []float64) map[string]func() (core.Filter, error) {
	return map[string]func() (core.Filter, error){
		"cache":  func() (core.Filter, error) { return core.NewCache(eps) },
		"linear": func() (core.Filter, error) { return core.NewLinear(eps) },
		"swing":  func() (core.Filter, error) { return core.NewSwing(eps) },
		"slide":  func() (core.Filter, error) { return core.NewSlide(eps) },
	}
}

func metaSignal(seed int64, n int) []core.Point {
	rng := rand.New(rand.NewSource(seed))
	pts := make([]core.Point, n)
	v := 0.0
	tm := 0.0
	for j := range pts {
		tm += 0.5 + rng.Float64()
		v += rng.NormFloat64() * 2
		pts[j] = core.Point{T: tm, X: []float64{v}}
	}
	return pts
}

func transform(pts []core.Point, dt, dx, scale float64) []core.Point {
	out := make([]core.Point, len(pts))
	for j, p := range pts {
		x := make([]float64, len(p.X))
		for i, v := range p.X {
			x[i] = v*scale + dx
		}
		out[j] = core.Point{T: p.T + dt, X: x}
	}
	return out
}

// segsApproxEqual compares two segmentations after undoing the transform.
func segsApproxEqual(t *testing.T, name string, a, b []core.Segment, dt, dx, scale float64) {
	t.Helper()
	if len(a) != len(b) {
		t.Fatalf("%s: segment counts differ under transform: %d vs %d", name, len(a), len(b))
	}
	for i := range a {
		sa, sb := a[i], b[i]
		tol := 1e-6 * (1 + math.Abs(sa.X0[0]) + math.Abs(sa.X1[0])) * math.Max(1, math.Abs(scale))
		if math.Abs(sb.T0-dt-sa.T0) > 1e-9*(1+math.Abs(sa.T0)+math.Abs(dt)) ||
			math.Abs(sb.T1-dt-sa.T1) > 1e-9*(1+math.Abs(sa.T1)+math.Abs(dt)) {
			t.Fatalf("%s: segment %d times moved: (%v,%v) vs (%v,%v) dt=%v",
				name, i, sa.T0, sa.T1, sb.T0, sb.T1, dt)
		}
		if math.Abs(sb.X0[0]-(sa.X0[0]*scale+dx)) > tol ||
			math.Abs(sb.X1[0]-(sa.X1[0]*scale+dx)) > tol {
			t.Fatalf("%s: segment %d values moved: (%v,%v) vs (%v,%v)",
				name, i, sa.X0[0], sa.X1[0], sb.X0[0], sb.X1[0])
		}
		if sa.Connected != sb.Connected || sa.Points != sb.Points {
			t.Fatalf("%s: segment %d structure changed", name, i)
		}
	}
}

func TestMetamorphicTimeShift(t *testing.T) {
	eps := []float64{1}
	for trial := int64(0); trial < 10; trial++ {
		signal := metaSignal(trial, 300)
		dt := float64(trial*37) - 100
		shifted := transform(signal, dt, 0, 1)
		for name, mk := range metamorphicFilters(eps) {
			f1, _ := mk()
			f2, _ := mk()
			a, err := core.Run(f1, signal)
			if err != nil {
				t.Fatal(err)
			}
			b, err := core.Run(f2, shifted)
			if err != nil {
				t.Fatal(err)
			}
			segsApproxEqual(t, name, a, b, dt, 0, 1)
		}
	}
}

func TestMetamorphicValueShift(t *testing.T) {
	eps := []float64{1}
	for trial := int64(0); trial < 10; trial++ {
		signal := metaSignal(100+trial, 300)
		dx := float64(trial*13) - 60
		shifted := transform(signal, 0, dx, 1)
		for name, mk := range metamorphicFilters(eps) {
			f1, _ := mk()
			f2, _ := mk()
			a, err := core.Run(f1, signal)
			if err != nil {
				t.Fatal(err)
			}
			b, err := core.Run(f2, shifted)
			if err != nil {
				t.Fatal(err)
			}
			segsApproxEqual(t, name, a, b, 0, dx, 1)
		}
	}
}

func TestMetamorphicValueScale(t *testing.T) {
	for trial := int64(0); trial < 10; trial++ {
		signal := metaSignal(200+trial, 300)
		scale := 0.25 * float64(trial+1)
		scaled := transform(signal, 0, 0, scale)
		for name, mk1 := range metamorphicFilters([]float64{1}) {
			mk2 := metamorphicFilters([]float64{scale})[name]
			f1, _ := mk1()
			f2, _ := mk2()
			a, err := core.Run(f1, signal)
			if err != nil {
				t.Fatal(err)
			}
			b, err := core.Run(f2, scaled)
			if err != nil {
				t.Fatal(err)
			}
			segsApproxEqual(t, name, a, b, 0, 0, scale)
		}
	}
}
