package core

// Linear is the piece-wise linear baseline filter of Section 2.2 (Dilman
// & Raz; Keogh et al.): each segment's slope is fixed by the first two
// points it represents, and a point further than ε from the predicted
// line starts a new segment.
//
// In the connected variant (the default, and the one evaluated in the
// paper's Section 5) the current segment is terminated at the value the
// line predicts for the last point it approximates, and that end point
// together with the violating point defines the next segment. In the
// disconnected variant the next segment is instead defined by the
// violating point and its successor, at the cost of two recordings per
// segment.
type Linear struct {
	base
	disconnected bool

	haveStart bool
	haveSlope bool
	start     Point     // segment start (a recording)
	slope     []float64 // per-dimension slope once fixed
	last      Point     // most recent accepted point
	count     int       // points approximated by the current segment
	emitted   int       // segments emitted, to mark the first disconnected
}

// LinearOption customises a Linear filter at construction.
type LinearOption func(*Linear)

// WithDisconnectedSegments makes the filter start each new segment at the
// violating data point itself instead of chaining from the previous
// segment's end (Section 2.2's disconnected variant).
func WithDisconnectedSegments() LinearOption {
	return func(l *Linear) { l.disconnected = true }
}

// NewLinear returns a linear filter with per-dimension precision widths
// eps.
func NewLinear(eps []float64, opts ...LinearOption) (*Linear, error) {
	b, err := newBase(eps)
	if err != nil {
		return nil, err
	}
	l := &Linear{
		base:  b,
		slope: make([]float64, b.dim),
		last:  Point{X: make([]float64, b.dim)},
	}
	for _, o := range opts {
		o(l)
	}
	return l, nil
}

// Disconnected reports whether the filter produces disconnected segments.
func (l *Linear) Disconnected() bool { return l.disconnected }

// Push consumes one point, returning the finished segment when the point
// falls outside the ε band around the current line.
func (l *Linear) Push(p Point) ([]Segment, error) {
	if err := l.admit(p); err != nil {
		return nil, err
	}
	switch {
	case !l.haveStart:
		l.start = p.Clone()
		l.setLast(p)
		l.count = 1
		l.haveStart = true
		return nil, nil
	case !l.haveSlope:
		l.fixSlope(p)
		l.setLast(p)
		l.count++
		return nil, nil
	}
	if l.fits(p) {
		l.setLast(p)
		l.count++
		return nil, nil
	}
	// Violation: terminate at the prediction for the last approximated
	// point, then start the next segment.
	end := l.predict(l.last.T)
	seg := Segment{
		T0: l.start.T, T1: l.last.T,
		X0: l.start.X, X1: end,
		Connected: !l.disconnected && l.emitted > 0,
		Points:    l.count,
	}
	l.stats.Intervals++
	l.emit(seg, false)
	l.emitted++

	if l.disconnected {
		l.start = p.Clone()
		l.haveSlope = false
		l.count = 1
	} else {
		l.start = Point{T: l.last.T, X: end}
		l.fixSlope(p)
		l.count = 1
	}
	l.setLast(p)
	return []Segment{seg}, nil
}

// setLast records p as the segment's most recent point, reusing the
// buffer so steady-state Push does not allocate.
func (l *Linear) setLast(p Point) {
	l.last.T = p.T
	copy(l.last.X, p.X)
}

// Finish emits the final segment.
func (l *Linear) Finish() ([]Segment, error) {
	if l.finished {
		return nil, ErrFinished
	}
	l.finished = true
	if !l.haveStart {
		return nil, nil
	}
	var end []float64
	if l.haveSlope {
		end = l.predict(l.last.T)
	} else {
		end = copyVec(l.start.X) // single-point segment
	}
	seg := Segment{
		T0: l.start.T, T1: l.last.T,
		X0: l.start.X, X1: end,
		Connected: !l.disconnected && l.emitted > 0,
		Points:    l.count,
	}
	l.stats.Intervals++
	l.emit(seg, false)
	l.emitted++
	return []Segment{seg}, nil
}

// fixSlope fixes the line through the segment start and p.
func (l *Linear) fixSlope(p Point) {
	dt := p.T - l.start.T
	for i := range l.slope {
		l.slope[i] = (p.X[i] - l.start.X[i]) / dt
	}
	l.haveSlope = true
}

// predict evaluates the current line at time t.
func (l *Linear) predict(t float64) []float64 {
	v := make([]float64, l.dim)
	for i := range v {
		v[i] = l.start.X[i] + l.slope[i]*(t-l.start.T)
	}
	return v
}

// fits reports whether p lies within ε of the current line in every
// dimension.
func (l *Linear) fits(p Point) bool {
	for i, x := range p.X {
		pred := l.start.X[i] + l.slope[i]*(p.T-l.start.T)
		if x > pred+l.eps[i] || x < pred-l.eps[i] {
			return false
		}
	}
	return true
}
