package core

import (
	"errors"
	"fmt"
	"math"
)

// Point is one sample of a d-dimensional signal: a timestamp and the
// vector of values observed at that time.
type Point struct {
	T float64
	X []float64
}

// Clone returns a deep copy of p. Filters clone any point they retain, so
// callers may reuse the X slice between Push calls.
func (p Point) Clone() Point {
	x := make([]float64, len(p.X))
	copy(x, p.X)
	return Point{T: p.T, X: x}
}

// Segment is one line segment of a piece-wise linear approximation. It
// spans times [T0, T1] with values X0 at T0 and X1 at T1, linearly
// interpolated in between, independently per dimension.
type Segment struct {
	T0, T1 float64
	X0, X1 []float64

	// Connected reports whether the segment starts exactly at the previous
	// segment's end point, in which case transmitting it costs a single
	// recording instead of two (Section 2.1 of the paper).
	Connected bool

	// Points is the number of original data points the segment
	// approximates (diagnostic only; not needed for reconstruction).
	Points int

	// Provisional marks a max-lag receiver update (Sections 3.3, 4.3): the
	// filter's current best line for a still-open filtering interval,
	// announced early so the receiver never trails the sender by more than
	// m_max_lag points. A provisional segment keeps the ±ε guarantee for
	// every point it covers, but it is superseded — replaced, possibly
	// with a different end point — by the final segment that eventually
	// closes the interval, so stores treat it as a transient tail and
	// never persist it.
	Provisional bool
}

// At returns the segment's value in dimension i at time t (extrapolating
// if t is outside [T0, T1]; callers normally only evaluate inside).
func (s Segment) At(i int, t float64) float64 {
	if s.T1 == s.T0 {
		return s.X0[i]
	}
	f := (t - s.T0) / (s.T1 - s.T0)
	return s.X0[i] + f*(s.X1[i]-s.X0[i])
}

// Dim returns the segment's dimensionality.
func (s Segment) Dim() int { return len(s.X0) }

// Filter is an online compressor turning a stream of points into a
// piece-wise linear (or piece-wise constant) approximation with a
// per-point, per-dimension L∞ error guarantee.
//
// Push consumes the next point and returns any segments whose shape has
// become final (possibly none: both new filters postpone decisions as
// long as possible). Finish flushes the remaining state; after Finish,
// Push returns ErrFinished. Timestamps must be strictly increasing and
// all values finite.
type Filter interface {
	// Dim returns the dimensionality d of the stream the filter accepts.
	Dim() int
	// Epsilon returns the per-dimension precision widths ε_i. The returned
	// slice must not be modified.
	Epsilon() []float64
	// Push consumes one point and returns any newly finalized segments.
	Push(p Point) ([]Segment, error)
	// Finish flushes the final segment(s) of the approximation.
	Finish() ([]Segment, error)
	// Stats returns running counters; valid at any time.
	Stats() Stats
}

// Stats carries the counters every filter maintains while running.
type Stats struct {
	// Points is the number of points accepted by Push.
	Points int
	// Segments is the number of segments emitted so far.
	Segments int
	// Recordings is the number of recordings needed to transmit the
	// emitted segments, following the paper's accounting: one per
	// connected segment, two per disconnected segment (one for a
	// degenerate single-point segment), one per piece-wise constant
	// segment, plus one per max-lag receiver update.
	Recordings int
	// Intervals is the number of filtering intervals closed so far.
	Intervals int
	// LagFlushes counts m_max_lag receiver updates (Sections 3.3, 4.3).
	LagFlushes int
	// MaxIntervalPoints is the largest number of points observed in a
	// single filtering interval.
	MaxIntervalPoints int
	// MaxHullVertices is the largest convex-hull size the slide filter
	// reached (m_H in the paper); zero for other filters.
	MaxHullVertices int
}

// CompressionRatio returns the paper's §5.1 metric: the number of
// recordings needed without filtering (one per point) divided by the
// number needed with filtering.
func (s Stats) CompressionRatio() float64 {
	if s.Recordings == 0 {
		if s.Points == 0 {
			return 1
		}
		return math.Inf(1)
	}
	return float64(s.Points) / float64(s.Recordings)
}

// Errors returned by filters.
var (
	// ErrDimension reports a point whose dimensionality does not match
	// the filter's.
	ErrDimension = errors.New("core: point dimensionality does not match filter")
	// ErrTimeOrder reports a timestamp that does not strictly increase.
	ErrTimeOrder = errors.New("core: timestamps must be strictly increasing")
	// ErrNotFinite reports a NaN or infinite coordinate.
	ErrNotFinite = errors.New("core: point coordinates must be finite")
	// ErrFinished reports a Push after Finish.
	ErrFinished = errors.New("core: filter already finished")
	// ErrEpsilon reports an invalid precision width at construction.
	ErrEpsilon = errors.New("core: precision widths must be finite and non-negative")
	// ErrMaxLag reports an invalid m_max_lag at construction.
	ErrMaxLag = errors.New("core: max lag must be at least 2 points")
)

// CountRecordings computes the number of recordings needed to transmit
// segs. Piece-wise constant approximations (constant=true, the cache
// filter) need one recording per segment. Piece-wise linear ones need two
// recordings per disconnected segment (one if it is a degenerate single
// point) and one per connected segment.
func CountRecordings(segs []Segment, constant bool) int {
	n := 0
	for _, s := range segs {
		n += Recordings(s, constant)
	}
	return n
}

// Recordings returns the recordings one segment ships: one for a
// piece-wise constant, connected, or single-point segment, two for a
// disconnected line (Section 2.1).
func Recordings(s Segment, constant bool) int {
	if constant || s.Connected || s.T0 == s.T1 {
		return 1
	}
	return 2
}

// UniformEpsilon returns a d-dimensional precision vector with every
// component set to eps.
func UniformEpsilon(d int, eps float64) []float64 {
	e := make([]float64, d)
	for i := range e {
		e[i] = eps
	}
	return e
}

// base holds the bookkeeping shared by every filter implementation.
type base struct {
	dim      int
	eps      []float64
	stats    Stats
	lastSeen float64
	started  bool
	finished bool
}

func newBase(eps []float64) (base, error) {
	if len(eps) == 0 {
		return base{}, fmt.Errorf("%w: empty epsilon vector", ErrEpsilon)
	}
	own := make([]float64, len(eps))
	for i, e := range eps {
		if math.IsNaN(e) || math.IsInf(e, 0) || e < 0 {
			return base{}, fmt.Errorf("%w: ε_%d = %v", ErrEpsilon, i, e)
		}
		own[i] = e
	}
	return base{dim: len(eps), eps: own}, nil
}

func (b *base) Dim() int           { return b.dim }
func (b *base) Epsilon() []float64 { return b.eps }
func (b *base) Stats() Stats       { return b.stats }

// admit validates an incoming point and advances the point counter.
func (b *base) admit(p Point) error {
	if b.finished {
		return ErrFinished
	}
	if len(p.X) != b.dim {
		return fmt.Errorf("%w: got %d, want %d", ErrDimension, len(p.X), b.dim)
	}
	if math.IsNaN(p.T) || math.IsInf(p.T, 0) {
		return fmt.Errorf("%w: t = %v", ErrNotFinite, p.T)
	}
	for i, x := range p.X {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Errorf("%w: x_%d = %v", ErrNotFinite, i, x)
		}
	}
	if b.started && p.T <= b.lastSeen {
		return fmt.Errorf("%w: %v after %v", ErrTimeOrder, p.T, b.lastSeen)
	}
	b.started = true
	b.lastSeen = p.T
	b.stats.Points++
	return nil
}

// emit accounts for a finalized segment in the stats. constant marks
// piece-wise constant segments (cache filter).
func (b *base) emit(s Segment, constant bool) {
	b.stats.Segments++
	b.stats.Recordings += CountRecordings([]Segment{s}, constant)
	if s.Points > b.stats.MaxIntervalPoints {
		b.stats.MaxIntervalPoints = s.Points
	}
}

func copyVec(x []float64) []float64 {
	c := make([]float64, len(x))
	copy(c, x)
	return c
}
