package core

// Swing is the paper's swing filter (Section 3, Algorithm 1). For every
// filtering interval it maintains, per dimension, the family of lines
// through the previous recording bounded by an upper line u and a lower
// line l. Arriving points "swing" u down and l up; when a point cannot be
// represented by any remaining line a recording is made at the previous
// point's timestamp, choosing the slope in [slope(l), slope(u)] that
// minimizes the interval's mean square error (Eq. 5–6). Segments are
// always connected, so each costs a single recording. The filter runs in
// O(1) time and space per point.
type Swing struct {
	base
	maxLag    int
	recording SwingRecording

	havePivot bool
	haveLines bool
	pivot     Point     // previous recording; all candidate lines pass through it
	slopeU    []float64 // slope of u_i
	slopeL    []float64 // slope of l_i
	last      Point     // most recent accepted point
	count     int       // data points in the current filtering interval
	sumTX     []float64 // Σ (x_i − pivot.x_i)(t − pivot.t) over the interval
	sumTT     float64   // Σ (t − pivot.t)² over the interval
	emitted   int

	lagMode  bool
	lagSlope []float64 // the single line kept after an m_max_lag flush
}

// SwingRecording selects how the swing filter places each recording
// inside the admissible slope range [slope(l), slope(u)]. Every mode
// preserves the precision guarantee; they differ only in the secondary
// objective of Section 3.2.
type SwingRecording int

const (
	// RecordMSE picks the slope minimizing the interval's mean square
	// error (Eq. 5–6) — the paper's choice and the default.
	RecordMSE SwingRecording = iota
	// RecordMidline picks the middle of the admissible slope range, the
	// cheapest guarantee-preserving choice (no running sums needed).
	RecordMidline
	// RecordLast aims the recording at the last observed data point,
	// clamped into the admissible range — the "straightforward approach"
	// Section 3.2 argues against. Provided for the ablation study.
	RecordLast
)

// String returns the mode's name.
func (r SwingRecording) String() string {
	switch r {
	case RecordMSE:
		return "record-mse"
	case RecordMidline:
		return "record-midline"
	case RecordLast:
		return "record-last"
	default:
		return "record-unknown"
	}
}

// SwingOption customises a Swing filter at construction.
type SwingOption func(*Swing)

// WithSwingRecording selects the recording placement mode (default
// RecordMSE). Compression is identical across modes; only the residual
// error of the approximation changes — the ablation behind the paper's
// Section 3.2 design choice.
func WithSwingRecording(mode SwingRecording) SwingOption {
	return func(s *Swing) { s.recording = mode }
}

// WithSwingMaxLag bounds the receiver lag: once a filtering interval
// spans m points the filter collapses its candidate set to the MSE-best
// line, counts one receiver update, and degrades to a linear filter until
// the interval ends (Section 3.3). m must be at least 2.
func WithSwingMaxLag(m int) SwingOption {
	return func(s *Swing) { s.maxLag = m }
}

// NewSwing returns a swing filter with per-dimension precision widths eps.
func NewSwing(eps []float64, opts ...SwingOption) (*Swing, error) {
	b, err := newBase(eps)
	if err != nil {
		return nil, err
	}
	s := &Swing{
		base:     b,
		slopeU:   make([]float64, b.dim),
		slopeL:   make([]float64, b.dim),
		sumTX:    make([]float64, b.dim),
		lagSlope: make([]float64, b.dim),
		last:     Point{X: make([]float64, b.dim)},
	}
	for _, o := range opts {
		o(s)
	}
	if s.maxLag != 0 && s.maxLag < 2 {
		return nil, ErrMaxLag
	}
	return s, nil
}

// MaxLag returns the configured m_max_lag (0 when unbounded).
func (s *Swing) MaxLag() int { return s.maxLag }

// Recording returns the configured recording placement mode.
func (s *Swing) Recording() SwingRecording { return s.recording }

// Push consumes one point, returning the finished segment when the point
// cannot be represented by any candidate line of the current interval.
func (s *Swing) Push(p Point) ([]Segment, error) {
	if err := s.admit(p); err != nil {
		return nil, err
	}
	switch {
	case !s.havePivot:
		// The first incoming data point is recorded (t0', X0').
		s.pivot = p.Clone()
		s.havePivot = true
		s.setLast(p)
		s.count = 1
		return nil, nil
	case !s.haveLines:
		s.seedLines(p)
		s.accumulate(p)
		s.setLast(p)
		s.count++
		s.checkLag()
		return nil, nil
	}

	if s.lagMode {
		if s.fitsLag(p) {
			s.setLast(p)
			s.count++
			return nil, nil
		}
		seg := s.closeOnLine(s.lagSlope)
		s.reopen(p)
		return []Segment{seg}, nil
	}

	if viol := s.violates(p); viol {
		seg := s.closeOnLine(s.bestSlope())
		s.reopen(p)
		return []Segment{seg}, nil
	}

	s.swing(p)
	s.accumulate(p)
	s.setLast(p)
	s.count++
	s.checkLag()
	return nil, nil
}

// setLast records p as the interval's most recent point, reusing the
// buffer so steady-state Push does not allocate.
func (s *Swing) setLast(p Point) {
	s.last.T = p.T
	copy(s.last.X, p.X)
}

// Finish emits the last segment of the approximation.
func (s *Swing) Finish() ([]Segment, error) {
	if s.finished {
		return nil, ErrFinished
	}
	s.finished = true
	if !s.havePivot {
		return nil, nil
	}
	if !s.haveLines {
		// Single point: a degenerate segment (one recording).
		seg := Segment{
			T0: s.pivot.T, T1: s.pivot.T,
			X0: s.pivot.X, X1: s.pivot.X,
			Connected: false, Points: 1,
		}
		s.stats.Intervals++
		s.emit(seg, false)
		return []Segment{seg}, nil
	}
	var seg Segment
	if s.lagMode {
		seg = s.closeOnLine(s.lagSlope)
	} else {
		seg = s.closeOnLine(s.bestSlope())
	}
	return []Segment{seg}, nil
}

// violates reports whether p falls more than ε above u or below l in any
// dimension (Algorithm 1, line 7).
func (s *Swing) violates(p Point) bool {
	dt := p.T - s.pivot.T
	for i, x := range p.X {
		u := s.pivot.X[i] + s.slopeU[i]*dt
		l := s.pivot.X[i] + s.slopeL[i]*dt
		if x > u+s.eps[i] || x < l-s.eps[i] {
			return true
		}
	}
	return false
}

// swing adjusts u and l to keep representing every point seen so far
// (Algorithm 1, lines 14–18).
func (s *Swing) swing(p Point) {
	dt := p.T - s.pivot.T
	for i, x := range p.X {
		u := s.pivot.X[i] + s.slopeU[i]*dt
		l := s.pivot.X[i] + s.slopeL[i]*dt
		if x-l > s.eps[i] {
			// Swing l up through (p.T, x−ε).
			s.slopeL[i] = (x - s.eps[i] - s.pivot.X[i]) / dt
		}
		if u-x > s.eps[i] {
			// Swing u down through (p.T, x+ε).
			s.slopeU[i] = (x + s.eps[i] - s.pivot.X[i]) / dt
		}
	}
}

// seedLines starts a filtering interval: u through (pivot, p+ε) and l
// through (pivot, p−ε) per dimension.
func (s *Swing) seedLines(p Point) {
	dt := p.T - s.pivot.T
	for i, x := range p.X {
		s.slopeU[i] = (x + s.eps[i] - s.pivot.X[i]) / dt
		s.slopeL[i] = (x - s.eps[i] - s.pivot.X[i]) / dt
	}
	s.haveLines = true
}

// accumulate folds p into the running sums behind Eq. 6.
func (s *Swing) accumulate(p Point) {
	dt := p.T - s.pivot.T
	for i, x := range p.X {
		s.sumTX[i] += (x - s.pivot.X[i]) * dt
	}
	s.sumTT += dt * dt
}

// bestSlope returns, per dimension, the recording slope dictated by the
// configured mode, clamped into [slope(l), slope(u)] (Eq. 5 for the
// default RecordMSE mode).
func (s *Swing) bestSlope() []float64 {
	a := make([]float64, s.dim)
	for i := range a {
		var ai float64
		switch s.recording {
		case RecordMidline:
			ai = (s.slopeL[i] + s.slopeU[i]) / 2
		case RecordLast:
			// Aim at the last observed point; sumTT > 0 because every
			// interval holds at least one point past the pivot.
			ai = (s.last.X[i] - s.pivot.X[i]) / (s.last.T - s.pivot.T)
		default: // RecordMSE
			ai = s.sumTX[i] / s.sumTT
		}
		if ai < s.slopeL[i] {
			ai = s.slopeL[i]
		}
		if ai > s.slopeU[i] {
			ai = s.slopeU[i]
		}
		a[i] = ai
	}
	return a
}

// closeOnLine makes the recording at the last point's timestamp on the
// line with the given slope through the pivot and emits the segment.
func (s *Swing) closeOnLine(slope []float64) Segment {
	dt := s.last.T - s.pivot.T
	end := make([]float64, s.dim)
	for i := range end {
		end[i] = s.pivot.X[i] + slope[i]*dt
	}
	seg := Segment{
		T0: s.pivot.T, T1: s.last.T,
		X0: s.pivot.X, X1: end,
		Connected: s.emitted > 0,
		Points:    s.count,
	}
	s.stats.Intervals++
	s.emit(seg, false)
	s.emitted++
	s.pivot = Point{T: s.last.T, X: end}
	return seg
}

// reopen starts the next filtering interval seeded by the violating point.
func (s *Swing) reopen(p Point) {
	s.lagMode = false
	s.sumTT = 0
	for i := range s.sumTX {
		s.sumTX[i] = 0
	}
	s.seedLines(p)
	s.accumulate(p)
	s.setLast(p)
	s.count = 1
	s.checkLag()
}

// checkLag collapses the candidate set once the interval reaches
// m_max_lag points (Section 3.3).
func (s *Swing) checkLag() {
	if s.maxLag == 0 || s.lagMode || s.count < s.maxLag {
		return
	}
	copy(s.lagSlope, s.bestSlope())
	s.lagMode = true
	s.stats.LagFlushes++
	s.stats.Recordings++ // the provisional receiver update
}

// fitsLag reports whether p stays within ε of the kept line.
func (s *Swing) fitsLag(p Point) bool {
	dt := p.T - s.pivot.T
	for i, x := range p.X {
		pred := s.pivot.X[i] + s.lagSlope[i]*dt
		if x > pred+s.eps[i] || x < pred-s.eps[i] {
			return false
		}
	}
	return true
}

// InLagMode reports whether the filter has collapsed the current
// interval's candidate set after an m_max_lag flush and is riding the
// announced line. While true, the receiver's model already covers newly
// arriving points.
func (s *Swing) InLagMode() bool { return s.lagMode }

// Pending returns the provisional receiver-update segment covering every
// point the filter has consumed but not yet finalized: the current
// interval approximated by the announced line (after an m_max_lag flush)
// or the MSE-best candidate line (before one). Any candidate line
// represents the whole interval within ε, so the returned segment keeps
// the precision guarantee; it is superseded by the final segment that
// closes the interval. Pending returns nil when nothing is outstanding.
func (s *Swing) Pending() []Segment {
	if s.finished || !s.havePivot {
		return nil
	}
	if !s.haveLines {
		if s.emitted > 0 {
			// The pivot is the previous segment's end point, already covered.
			return nil
		}
		return []Segment{{
			T0: s.pivot.T, T1: s.pivot.T,
			X0: copyVec(s.pivot.X), X1: copyVec(s.pivot.X),
			Points: 1, Provisional: true,
		}}
	}
	slope := s.lagSlope
	if !s.lagMode {
		slope = s.bestSlope()
	}
	dt := s.last.T - s.pivot.T
	end := make([]float64, s.dim)
	for i := range end {
		end[i] = s.pivot.X[i] + slope[i]*dt
	}
	return []Segment{{
		T0: s.pivot.T, T1: s.last.T,
		X0: copyVec(s.pivot.X), X1: end,
		Connected:   s.emitted > 0,
		Points:      s.count,
		Provisional: true,
	}}
}
