package core_test

import (
	"math"
	"math/rand"
	"testing"

	"github.com/pla-go/pla/internal/core"
	"github.com/pla-go/pla/internal/recon"
)

// longFlatSignal is absorbed into one huge interval by swing and slide,
// forcing the m_max_lag machinery to engage.
func longFlatSignal(n int) []core.Point {
	pts := make([]core.Point, n)
	for i := range pts {
		pts[i] = core.Point{T: float64(i), X: []float64{0.2 * math.Sin(float64(i)/9)}}
	}
	return pts
}

func TestSwingMaxLagFlushes(t *testing.T) {
	signal := longFlatSignal(500)
	eps := []float64{2}

	unbounded, _ := core.NewSwing(eps)
	if _, err := core.Run(unbounded, signal); err != nil {
		t.Fatal(err)
	}
	if unbounded.Stats().LagFlushes != 0 {
		t.Fatal("unbounded filter reported lag flushes")
	}
	if unbounded.Stats().MaxIntervalPoints < 400 {
		t.Fatalf("test signal should form one huge interval, got %d",
			unbounded.Stats().MaxIntervalPoints)
	}

	bounded, _ := core.NewSwing(eps, core.WithSwingMaxLag(50))
	if bounded.MaxLag() != 50 {
		t.Fatalf("MaxLag = %d", bounded.MaxLag())
	}
	segs, err := core.Run(bounded, signal)
	if err != nil {
		t.Fatal(err)
	}
	st := bounded.Stats()
	if st.LagFlushes == 0 {
		t.Fatal("bounded filter never flushed")
	}
	// The guarantee must survive the collapse to a single line.
	model, err := recon.NewModel(segs)
	if err != nil {
		t.Fatal(err)
	}
	if err := recon.CheckPrecision(signal, model, eps, 1e-6); err != nil {
		t.Fatal(err)
	}
	// The flush costs recordings: bounded can never be cheaper.
	if st.Recordings < unbounded.Stats().Recordings {
		t.Fatalf("bounded (%d) cheaper than unbounded (%d)?",
			st.Recordings, unbounded.Stats().Recordings)
	}
}

func TestSlideMaxLagFlushes(t *testing.T) {
	signal := longFlatSignal(500)
	eps := []float64{2}
	bounded, _ := core.NewSlide(eps, core.WithSlideMaxLag(40))
	if bounded.MaxLag() != 40 {
		t.Fatalf("MaxLag = %d", bounded.MaxLag())
	}
	segs, err := core.Run(bounded, signal)
	if err != nil {
		t.Fatal(err)
	}
	if bounded.Stats().LagFlushes == 0 {
		t.Fatal("bounded slide never flushed")
	}
	model, err := recon.NewModel(segs)
	if err != nil {
		t.Fatal(err)
	}
	if err := recon.CheckPrecision(signal, model, eps, 1e-6); err != nil {
		t.Fatal(err)
	}
}

// TestMaxLagBoundsIntervalDecisionDelay checks the operational meaning of
// the bound: in a bounded filter, no filtering interval postpones its
// line choice past m_max_lag points — after the flush the candidate set
// is a single line, so any interval may still grow, but the receiver
// already holds a usable model for it.
func TestMaxLagBoundsIntervalDecisionDelay(t *testing.T) {
	signal := longFlatSignal(600)
	eps := []float64{3}
	for _, mk := range []struct {
		name string
		f    core.Filter
	}{
		{"swing", mustFilter(core.NewSwing(eps, core.WithSwingMaxLag(25)))},
		{"slide", mustFilter(core.NewSlide(eps, core.WithSlideMaxLag(25)))},
	} {
		if _, err := core.Run(mk.f, signal); err != nil {
			t.Fatalf("%s: %v", mk.name, err)
		}
		st := mk.f.Stats()
		// One flush per long interval: with one giant interval we expect
		// exactly one flush here.
		if st.LagFlushes < 1 {
			t.Fatalf("%s: no lag flush on a %d-point interval with bound 25", mk.name, st.MaxIntervalPoints)
		}
	}
}

func TestMaxLagOnChoppySignalIsNoOp(t *testing.T) {
	// Intervals shorter than the bound: the bounded filter must behave
	// exactly like the unbounded one.
	rng := rand.New(rand.NewSource(3))
	var signal []core.Point
	v := 0.0
	for i := 0; i < 300; i++ {
		v += rng.NormFloat64() * 3
		signal = append(signal, core.Point{T: float64(i), X: []float64{v}})
	}
	eps := []float64{1}

	a, _ := core.NewSwing(eps)
	b, _ := core.NewSwing(eps, core.WithSwingMaxLag(1000))
	sa, err := core.Run(a, signal)
	if err != nil {
		t.Fatal(err)
	}
	sb, err := core.Run(b, signal)
	if err != nil {
		t.Fatal(err)
	}
	if len(sa) != len(sb) || a.Stats().Recordings != b.Stats().Recordings {
		t.Fatal("large max-lag changed swing output")
	}
	if b.Stats().LagFlushes != 0 {
		t.Fatal("large max-lag flushed")
	}
}
