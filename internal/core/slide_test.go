package core

import (
	"math"
	"testing"
)

func TestSlideExactLine(t *testing.T) {
	f, _ := NewSlide([]float64{0.25})
	var signal []Point
	for i := 0; i < 50; i++ {
		signal = append(signal, Point{T: float64(i), X: []float64{0.5*float64(i) + 2}})
	}
	segs, err := Run(f, signal)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("exact line produced %d segments, want 1", len(segs))
	}
	s := segs[0]
	if math.Abs(s.X0[0]-2) > 1e-9 || math.Abs(s.X1[0]-(0.5*49+2)) > 1e-9 {
		t.Fatalf("segment strays from the exact line: %+v", s)
	}
	if st := f.Stats(); st.Recordings != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSlideStepSignalDisconnected(t *testing.T) {
	// Two flat plateaus far apart: the second segment cannot intersect the
	// first within the Lemma 4.4 window, so the boundary is disconnected.
	var signal []Point
	for i := 0; i < 8; i++ {
		signal = append(signal, Point{T: float64(i), X: []float64{0}})
	}
	for i := 8; i < 16; i++ {
		signal = append(signal, Point{T: float64(i), X: []float64{100}})
	}
	f, _ := NewSlide([]float64{0.5})
	segs, err := Run(f, signal)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 {
		t.Fatalf("got %d segments, want 2", len(segs))
	}
	if segs[1].Connected {
		t.Fatal("distant plateaus must not connect")
	}
	if st := f.Stats(); st.Recordings != 4 {
		t.Fatalf("recordings = %d, want 4", st.Recordings)
	}
	// Each plateau is reproduced within ε.
	if math.Abs(segs[0].X0[0]) > 0.5+1e-9 || math.Abs(segs[1].X0[0]-100) > 0.5+1e-9 {
		t.Fatalf("plateau values off: %v, %v", segs[0].X0[0], segs[1].X0[0])
	}
}

func TestSlideConnectsWhenLinesMeet(t *testing.T) {
	// A flat run followed by a ramp whose extension crosses the flat line
	// just before the flat interval ends: Lemma 4.4 admits a connection,
	// saving one recording.
	var signal []Point
	for i := 0; i <= 10; i++ {
		signal = append(signal, Point{T: float64(i), X: []float64{0}})
	}
	for i := 11; i <= 20; i++ {
		signal = append(signal, Point{T: float64(i), X: []float64{1.0 * (float64(i) - 9.5)}})
	}
	f, _ := NewSlide([]float64{0.3})
	segs, err := Run(f, signal)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 {
		t.Fatalf("got %d segments, want 2", len(segs))
	}
	if !segs[1].Connected {
		t.Fatalf("expected a connected boundary, got %+v", segs)
	}
	if segs[1].T0 != segs[0].T1 || segs[1].X0[0] != segs[0].X1[0] {
		t.Fatal("connected segments do not share the knot")
	}
	if st := f.Stats(); st.Recordings != 3 {
		t.Fatalf("recordings = %d, want 3 (one shared knot)", st.Recordings)
	}
}

func TestSlideHullEquivalence(t *testing.T) {
	// The convex-hull optimization must not change the output (Lemma 4.3).
	var signal []Point
	for i := 0; i < 400; i++ {
		x := 10*math.Sin(float64(i)/15) + 3*math.Sin(float64(i)/3.7) + 0.2*float64(i%7)
		signal = append(signal, Point{T: float64(i), X: []float64{x}})
	}
	for _, eps := range []float64{0.1, 0.5, 2, 8} {
		with, _ := NewSlide([]float64{eps})
		without, _ := NewSlide([]float64{eps}, WithHullOptimization(false))
		if with.HullOptimized() == false || without.HullOptimized() == true {
			t.Fatal("HullOptimized flags wrong")
		}
		a, err := Run(with, signal)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(without, signal)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("ε=%v: %d vs %d segments", eps, len(a), len(b))
		}
		for i := range a {
			if a[i].Connected != b[i].Connected ||
				math.Abs(a[i].T0-b[i].T0) > 1e-9 || math.Abs(a[i].T1-b[i].T1) > 1e-9 ||
				math.Abs(a[i].X0[0]-b[i].X0[0]) > 1e-6 || math.Abs(a[i].X1[0]-b[i].X1[0]) > 1e-6 {
				t.Fatalf("ε=%v: segment %d differs:\nhull:   %+v\nno-hull: %+v", eps, i, a[i], b[i])
			}
		}
		if with.Stats().Recordings != without.Stats().Recordings {
			t.Fatalf("ε=%v: recordings differ", eps)
		}
	}
}

func TestSlideHullStaysSmall(t *testing.T) {
	// Figure 13's explanation: the hull size stays tiny no matter how many
	// points the interval absorbs.
	var signal []Point
	for i := 0; i < 5000; i++ {
		// Oscillation well inside the band: a single huge interval.
		signal = append(signal, Point{T: float64(i), X: []float64{math.Sin(float64(i))}})
	}
	f, _ := NewSlide([]float64{3})
	if _, err := Run(f, signal); err != nil {
		t.Fatal(err)
	}
	st := f.Stats()
	if st.MaxIntervalPoints < 4000 {
		t.Fatalf("expected one huge interval, got max %d points", st.MaxIntervalPoints)
	}
	if st.MaxHullVertices > 64 {
		t.Fatalf("hull grew to %d vertices; expected it to stay small", st.MaxHullVertices)
	}
}

func TestSlideSinglePoint(t *testing.T) {
	f, _ := NewSlide([]float64{1})
	segs, err := Run(f, pts1(-3))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 || segs[0].T0 != segs[0].T1 || segs[0].X0[0] != -3 {
		t.Fatalf("segments = %+v", segs)
	}
}

func TestSlideTwoPoints(t *testing.T) {
	f, _ := NewSlide([]float64{1})
	segs, err := Run(f, pts1(0, 4))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("got %d segments, want 1", len(segs))
	}
	s := segs[0]
	if math.Abs(s.At(0, 0)-0) > 1+1e-9 || math.Abs(s.At(0, 1)-4) > 1+1e-9 {
		t.Fatalf("two-point segment violates ε: %+v", s)
	}
}

func TestSlideSpikyReviolation(t *testing.T) {
	f, _ := NewSlide([]float64{0.1})
	signal := pts1(0, 50, -50, 50, -50, 0)
	segs, err := Run(f, signal)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range segs {
		total += s.Points
	}
	if total != len(signal) {
		t.Fatalf("segments cover %d points, want %d", total, len(signal))
	}
}

func TestSlideFinalIntervalSinglePoint(t *testing.T) {
	// A violation on the very last point leaves a one-point interval for
	// Finish to flush as a degenerate segment.
	f, _ := NewSlide([]float64{0.5})
	signal := pts1(0, 0.1, -0.1, 0, 42)
	segs, err := Run(f, signal)
	if err != nil {
		t.Fatal(err)
	}
	last := segs[len(segs)-1]
	if last.T0 != last.T1 || last.X0[0] != 42 {
		t.Fatalf("last segment = %+v, want degenerate at 42", last)
	}
}

func TestSlideMultiDim(t *testing.T) {
	// Two dimensions with different shapes; the guarantee must hold in
	// both and a violation in either dimension must split.
	var signal []Point
	for i := 0; i < 60; i++ {
		t := float64(i)
		signal = append(signal, Point{T: t, X: []float64{t * 0.5, math.Abs(t - 30)}})
	}
	f, _ := NewSlide([]float64{0.4, 0.4})
	segs, err := Run(f, signal)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("dim 1's corner must split the approximation, got %d segments", len(segs))
	}
	for _, p := range signal {
		ok := false
		for _, s := range segs {
			if p.T >= s.T0 && p.T <= s.T1 {
				if math.Abs(s.At(0, p.T)-p.X[0]) <= 0.4+1e-6 &&
					math.Abs(s.At(1, p.T)-p.X[1]) <= 0.4+1e-6 {
					ok = true
					break
				}
			}
		}
		if !ok {
			t.Fatalf("point at t=%v not covered within ε", p.T)
		}
	}
}

func TestSlideBinaryTangentEquivalence(t *testing.T) {
	// The logarithmic tangent search must produce the same approximation
	// as the linear scan (both find the same extreme-slope vertex).
	var signal []Point
	for i := 0; i < 600; i++ {
		x := 6*math.Sin(float64(i)/11) + 2*math.Sin(float64(i)/3.1)
		signal = append(signal, Point{T: float64(i), X: []float64{x}})
	}
	for _, eps := range []float64{0.2, 1, 4} {
		lin, _ := NewSlide([]float64{eps})
		bin, _ := NewSlide([]float64{eps}, WithBinaryTangentSearch())
		a, err := Run(lin, signal)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(bin, signal)
		if err != nil {
			t.Fatal(err)
		}
		if len(a) != len(b) {
			t.Fatalf("ε=%v: %d vs %d segments", eps, len(a), len(b))
		}
		for i := range a {
			if a[i].Connected != b[i].Connected ||
				math.Abs(a[i].T0-b[i].T0) > 1e-9 || math.Abs(a[i].T1-b[i].T1) > 1e-9 ||
				math.Abs(a[i].X0[0]-b[i].X0[0]) > 1e-9 || math.Abs(a[i].X1[0]-b[i].X1[0]) > 1e-9 {
				t.Fatalf("ε=%v: segment %d differs between tangent searches", eps, i)
			}
		}
		if lin.Stats().Recordings != bin.Stats().Recordings {
			t.Fatalf("ε=%v: recordings differ", eps)
		}
	}
}
