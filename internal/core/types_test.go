package core

import (
	"errors"
	"math"
	"testing"
)

func TestPointClone(t *testing.T) {
	p := Point{T: 1, X: []float64{2, 3}}
	q := p.Clone()
	q.X[0] = 99
	if p.X[0] != 2 {
		t.Fatal("Clone shares the X slice")
	}
	if q.T != 1 || q.X[1] != 3 {
		t.Fatalf("Clone mangled values: %+v", q)
	}
}

func TestSegmentAt(t *testing.T) {
	s := Segment{T0: 0, T1: 10, X0: []float64{0, 100}, X1: []float64{10, 0}}
	if got := s.At(0, 5); got != 5 {
		t.Fatalf("At(0,5) = %v, want 5", got)
	}
	if got := s.At(1, 2.5); got != 75 {
		t.Fatalf("At(1,2.5) = %v, want 75", got)
	}
	deg := Segment{T0: 3, T1: 3, X0: []float64{7}, X1: []float64{7}}
	if got := deg.At(0, 3); got != 7 {
		t.Fatalf("degenerate At = %v, want 7", got)
	}
}

func TestCountRecordings(t *testing.T) {
	x := []float64{0}
	segs := []Segment{
		{T0: 0, T1: 1, X0: x, X1: x, Connected: false}, // 2
		{T0: 1, T1: 2, X0: x, X1: x, Connected: true},  // 1
		{T0: 3, T1: 4, X0: x, X1: x, Connected: false}, // 2
		{T0: 5, T1: 5, X0: x, X1: x, Connected: false}, // degenerate: 1
	}
	if got := CountRecordings(segs, false); got != 6 {
		t.Fatalf("linear recordings = %d, want 6", got)
	}
	if got := CountRecordings(segs, true); got != 4 {
		t.Fatalf("constant recordings = %d, want 4", got)
	}
	if got := CountRecordings(nil, false); got != 0 {
		t.Fatalf("empty recordings = %d, want 0", got)
	}
}

func TestUniformEpsilon(t *testing.T) {
	e := UniformEpsilon(3, 0.5)
	if len(e) != 3 || e[0] != 0.5 || e[1] != 0.5 || e[2] != 0.5 {
		t.Fatalf("UniformEpsilon = %v", e)
	}
}

func TestStatsCompressionRatio(t *testing.T) {
	s := Stats{Points: 100, Recordings: 4}
	if got := s.CompressionRatio(); got != 25 {
		t.Fatalf("ratio = %v, want 25", got)
	}
	if got := (Stats{}).CompressionRatio(); got != 1 {
		t.Fatalf("empty ratio = %v, want 1", got)
	}
	if got := (Stats{Points: 5}).CompressionRatio(); !math.IsInf(got, 1) {
		t.Fatalf("no-recording ratio = %v, want +Inf", got)
	}
}

func TestConstructorValidation(t *testing.T) {
	if _, err := NewSwing(nil); !errors.Is(err, ErrEpsilon) {
		t.Fatalf("empty eps: err = %v, want ErrEpsilon", err)
	}
	if _, err := NewSlide([]float64{-1}); !errors.Is(err, ErrEpsilon) {
		t.Fatalf("negative eps: err = %v, want ErrEpsilon", err)
	}
	if _, err := NewCache([]float64{math.NaN()}); !errors.Is(err, ErrEpsilon) {
		t.Fatalf("NaN eps: err = %v, want ErrEpsilon", err)
	}
	if _, err := NewLinear([]float64{math.Inf(1)}); !errors.Is(err, ErrEpsilon) {
		t.Fatalf("Inf eps: err = %v, want ErrEpsilon", err)
	}
	if _, err := NewSwing([]float64{1}, WithSwingMaxLag(1)); !errors.Is(err, ErrMaxLag) {
		t.Fatalf("maxlag 1: err = %v, want ErrMaxLag", err)
	}
	if _, err := NewSlide([]float64{1}, WithSlideMaxLag(-3)); !errors.Is(err, ErrMaxLag) {
		t.Fatalf("maxlag -3: err = %v, want ErrMaxLag", err)
	}
}

func TestEpsilonIsCopied(t *testing.T) {
	eps := []float64{1, 2}
	f, err := NewSwing(eps)
	if err != nil {
		t.Fatal(err)
	}
	eps[0] = 99
	if f.Epsilon()[0] != 1 {
		t.Fatal("filter aliases the caller's eps slice")
	}
}

func TestAdmitValidation(t *testing.T) {
	filters := map[string]Filter{}
	mk := func() map[string]Filter {
		c, _ := NewCache([]float64{1})
		l, _ := NewLinear([]float64{1})
		sw, _ := NewSwing([]float64{1})
		sl, _ := NewSlide([]float64{1})
		return map[string]Filter{"cache": c, "linear": l, "swing": sw, "slide": sl}
	}
	filters = mk()
	for name, f := range filters {
		if _, err := f.Push(Point{T: 0, X: []float64{1, 2}}); !errors.Is(err, ErrDimension) {
			t.Fatalf("%s: dim mismatch err = %v", name, err)
		}
		if _, err := f.Push(Point{T: math.NaN(), X: []float64{1}}); !errors.Is(err, ErrNotFinite) {
			t.Fatalf("%s: NaN time err = %v", name, err)
		}
		if _, err := f.Push(Point{T: 0, X: []float64{math.Inf(1)}}); !errors.Is(err, ErrNotFinite) {
			t.Fatalf("%s: Inf value err = %v", name, err)
		}
		if _, err := f.Push(Point{T: 0, X: []float64{1}}); err != nil {
			t.Fatalf("%s: valid push err = %v", name, err)
		}
		if _, err := f.Push(Point{T: 0, X: []float64{1}}); !errors.Is(err, ErrTimeOrder) {
			t.Fatalf("%s: duplicate time err = %v", name, err)
		}
		if _, err := f.Push(Point{T: -1, X: []float64{1}}); !errors.Is(err, ErrTimeOrder) {
			t.Fatalf("%s: backwards time err = %v", name, err)
		}
		if _, err := f.Finish(); err != nil {
			t.Fatalf("%s: finish err = %v", name, err)
		}
		if _, err := f.Push(Point{T: 5, X: []float64{1}}); !errors.Is(err, ErrFinished) {
			t.Fatalf("%s: push-after-finish err = %v", name, err)
		}
		if _, err := f.Finish(); !errors.Is(err, ErrFinished) {
			t.Fatalf("%s: double finish err = %v", name, err)
		}
	}
}

func TestRunHelper(t *testing.T) {
	f, _ := NewCache([]float64{0.5})
	signal := []Point{
		{T: 0, X: []float64{0}},
		{T: 1, X: []float64{0.2}},
		{T: 2, X: []float64{5}},
		{T: 3, X: []float64{5.1}},
	}
	segs, err := Run(f, signal)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 {
		t.Fatalf("got %d segments, want 2", len(segs))
	}
	if st := f.Stats(); st.Points != 4 || st.Segments != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRunEmptySignal(t *testing.T) {
	for _, mk := range []func() Filter{
		func() Filter { f, _ := NewCache([]float64{1}); return f },
		func() Filter { f, _ := NewLinear([]float64{1}); return f },
		func() Filter { f, _ := NewSwing([]float64{1}); return f },
		func() Filter { f, _ := NewSlide([]float64{1}); return f },
	} {
		f := mk()
		segs, err := Run(f, nil)
		if err != nil || len(segs) != 0 {
			t.Fatalf("empty run: segs=%v err=%v", segs, err)
		}
	}
}
