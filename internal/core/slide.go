package core

import (
	"fmt"
	"math"
	"sort"

	"github.com/pla-go/pla/internal/geom"
)

// Slide is the paper's slide filter (Section 4, Algorithm 2). Like the
// swing filter it maintains, per dimension, an upper line u and a lower
// line l bounding every line that can represent the current filtering
// interval within ε — but the lines are not pinned to the previous
// recording, so they "slide" to the tangent positions characterised by
// Lemmas 4.1–4.2. Updates only need the convex hull of the interval's
// points (Lemma 4.3), maintained incrementally.
//
// When an interval closes, the filter first tries to connect the new
// segment to the previous one: Lemma 4.4 yields a per-dimension time
// window [α_i, β_i] in which the two lines may intersect while both stay
// within ε of every point they cover; if the windows intersect, a single
// shared recording (the knot) replaces two. Every connection candidate is
// additionally verified directly against the invariants (slope inside the
// candidate pencil, knot path inside the previous interval's band), so
// the precision guarantee never depends on window arithmetic alone.
//
// Segment slopes are chosen to minimize the interval's mean square error
// among the valid candidates (the secondary objective of Section 3.2,
// applied with the pivot z = u∩l). For d > 1 the connection time is
// picked by a small grid search over [α, β] minimizing the summed
// per-dimension MSE; any choice in the window preserves the guarantee.
type Slide struct {
	base
	maxLag    int
	noHull    bool
	binSearch bool // use the logarithmic tangent search on the hull chains
	connGrid  int  // candidate grid density for the connection search

	// Current filtering interval.
	haveFirst bool
	haveLines bool
	firstPt   Point
	last      Point
	count     int
	u, l      []geom.Line
	hulls     []geom.Hull
	allPts    [][]geom.P // per dimension, when the hull optimization is off
	sumT      float64
	sumT2     float64
	sumX      []float64
	sumXT     []float64
	sumX2     []float64

	// Previous segment g^{k−1}: line decided, end point pending.
	havePrev      bool
	prevLine      []geom.Line
	prevULine     []geom.Line // final upper lines of the previous interval
	prevLLine     []geom.Line // final lower lines of the previous interval
	prevStart     Point
	prevStartConn bool
	prevLastT     float64
	prevCount     int
	prevLagged    bool

	emitted int

	// Lag mode (Section 4.3): the current interval's line is already
	// fixed and announced; we ride it until a violation.
	lagMode      bool
	lagLine      []geom.Line
	lagStart     Point
	lagStartConn bool
}

// SlideOption customises a Slide filter at construction.
type SlideOption func(*Slide)

// WithSlideMaxLag bounds the receiver lag per filtering interval: once an
// interval spans m points the filter fixes the MSE-best candidate line,
// resolves the pending boundary, counts one receiver update, and degrades
// to a linear filter until the interval ends (Section 4.3). m must be at
// least 2.
func WithSlideMaxLag(m int) SlideOption {
	return func(s *Slide) { s.maxLag = m }
}

// WithBinaryTangentSearch makes the hull-tangent updates use the
// logarithmic ternary search over the convex chains instead of a linear
// scan — the "even more efficient algorithm" the paper cites (Chazelle &
// Dobkin). The output is identical; only the per-update cost changes,
// and only measurably when hulls grow unusually large.
func WithBinaryTangentSearch() SlideOption {
	return func(s *Slide) { s.binSearch = true }
}

// WithConnectionGrid sets how many evenly spaced candidate knot times the
// connection search probes in addition to the constraint-boundary
// candidates (default 17). Zero disables connections entirely, degrading
// the filter to all-disconnected segments — the ablation for the
// recording mechanism of Section 4.2. Larger grids can only find more
// (equally sound) connections, at a small per-boundary cost.
func WithConnectionGrid(n int) SlideOption {
	return func(s *Slide) { s.connGrid = n }
}

// WithHullOptimization toggles the convex-hull optimization of Lemma 4.3.
// It is on by default; turning it off makes the filter keep and rescan
// every point of the current interval, reproducing the "non-optimized
// slide" of the paper's Figure 13. The emitted segments are identical.
func WithHullOptimization(enabled bool) SlideOption {
	return func(s *Slide) { s.noHull = !enabled }
}

// NewSlide returns a slide filter with per-dimension precision widths eps.
func NewSlide(eps []float64, opts ...SlideOption) (*Slide, error) {
	b, err := newBase(eps)
	if err != nil {
		return nil, err
	}
	s := &Slide{
		base:  b,
		u:     make([]geom.Line, b.dim),
		l:     make([]geom.Line, b.dim),
		hulls: make([]geom.Hull, b.dim),
		sumX:  make([]float64, b.dim),
		sumXT: make([]float64, b.dim),
		sumX2: make([]float64, b.dim),
		last:  Point{X: make([]float64, b.dim)},
	}
	s.connGrid = defaultConnGrid
	for _, o := range opts {
		o(s)
	}
	if s.noHull {
		s.allPts = make([][]geom.P, b.dim)
	}
	if s.connGrid < 0 {
		return nil, fmt.Errorf("%w: negative connection grid", ErrEpsilon)
	}
	if s.maxLag != 0 && s.maxLag < 2 {
		return nil, ErrMaxLag
	}
	return s, nil
}

// defaultConnGrid is the default density of the connection search grid.
const defaultConnGrid = 17

// MaxLag returns the configured m_max_lag (0 when unbounded).
func (s *Slide) MaxLag() int { return s.maxLag }

// HullOptimized reports whether the Lemma 4.3 optimization is enabled.
func (s *Slide) HullOptimized() bool { return !s.noHull }

// Push consumes one point. Because the slide filter postpones the end
// point of each segment until the following interval closes, segments are
// emitted one boundary late.
func (s *Slide) Push(p Point) ([]Segment, error) {
	if err := s.admit(p); err != nil {
		return nil, err
	}
	switch {
	case !s.haveFirst:
		s.openInterval(p)
		return nil, nil
	case !s.haveLines:
		s.seed(p)
		return s.checkLag(), nil
	}

	if s.lagMode {
		if s.fitsLag(p) {
			s.setLast(p)
			s.count++
			return nil, nil
		}
		s.promoteLagToPrev()
		s.openInterval(p)
		return nil, nil
	}

	if s.violates(p) {
		segs := s.closeInterval()
		s.openInterval(p)
		return segs, nil
	}

	s.update(p)
	s.absorb(p)
	return s.checkLag(), nil
}

// Finish flushes the pending segment(s): the previous interval's segment
// if one is still awaiting its end point, and the final interval's.
func (s *Slide) Finish() ([]Segment, error) {
	if s.finished {
		return nil, ErrFinished
	}
	s.finished = true
	if !s.haveFirst {
		return nil, nil
	}
	var out []Segment

	if s.lagMode {
		end := evalLines(s.lagLine, s.last.T)
		seg := Segment{
			T0: s.lagStart.T, T1: s.last.T,
			X0: s.lagStart.X, X1: end,
			Connected: s.lagStartConn,
			Points:    s.count,
		}
		s.stats.Intervals++
		s.emit(seg, false)
		s.emitted++
		return append(out, seg), nil
	}

	if !s.haveLines {
		// The final interval holds a single point.
		if s.havePrev {
			out = append(out, s.emitPrev(s.prevLastT, evalLines(s.prevLine, s.prevLastT)))
		}
		seg := Segment{
			T0: s.firstPt.T, T1: s.firstPt.T,
			X0: s.firstPt.X, X1: s.firstPt.X,
			Connected: false,
			Points:    1,
		}
		s.stats.Intervals++
		s.emit(seg, false)
		s.emitted++
		return append(out, seg), nil
	}

	out = append(out, s.closeInterval()...)
	// closeInterval left the final interval's line as prev; end it at the
	// last observed data point (Algorithm 2, line 25).
	out = append(out, s.emitPrev(s.prevLastT, evalLines(s.prevLine, s.prevLastT)))
	return out, nil
}

// violates reports whether p falls more than ε above u or below l in any
// dimension (Algorithm 2, line 6).
func (s *Slide) violates(p Point) bool {
	for i, x := range p.X {
		if x > s.u[i].Eval(p.T)+s.eps[i] || x < s.l[i].Eval(p.T)-s.eps[i] {
			return true
		}
	}
	return false
}

// update slides u and/or l to keep representing every interval point
// (Algorithm 2, lines 32–39). The replacement tangents come from the
// convex hull chains (Lemma 4.3), or from a scan of all stored points
// when the hull optimization is disabled.
func (s *Slide) update(p Point) {
	for i, x := range p.X {
		eps := s.eps[i]
		if x-s.l[i].Eval(p.T) > eps {
			// The new point's floor is above l: raise l to the
			// maximum-slope line through (t, x−ε) and a ceiling vertex.
			pivot := geom.P{T: p.T, X: x - eps}
			var a float64
			var idx int
			switch {
			case s.noHull:
				a, idx = geom.MaxSlopeThrough(pivot, s.allPts[i], +eps)
			case s.binSearch:
				a, idx = geom.MaxSlopeThroughChain(pivot, s.hulls[i].Lower(), +eps)
			default:
				a, idx = geom.MaxSlopeThrough(pivot, s.hulls[i].Lower(), +eps)
			}
			if idx >= 0 {
				s.l[i] = geom.WithSlope(a, pivot)
			}
		}
		if s.u[i].Eval(p.T)-x > eps {
			// The new point's ceiling is below u: lower u to the
			// minimum-slope line through (t, x+ε) and a floor vertex.
			pivot := geom.P{T: p.T, X: x + eps}
			var a float64
			var idx int
			switch {
			case s.noHull:
				a, idx = geom.MinSlopeThrough(pivot, s.allPts[i], -eps)
			case s.binSearch:
				a, idx = geom.MinSlopeThroughChain(pivot, s.hulls[i].Upper(), -eps)
			default:
				a, idx = geom.MinSlopeThrough(pivot, s.hulls[i].Upper(), -eps)
			}
			if idx >= 0 {
				s.u[i] = geom.WithSlope(a, pivot)
			}
		}
	}
}

// openInterval starts a fresh filtering interval whose first data point
// is p (the violating point, or the first point of the stream).
func (s *Slide) openInterval(p Point) {
	s.haveFirst = true
	s.haveLines = false
	s.lagMode = false
	s.firstPt = p.Clone()
	s.setLast(p)
	s.count = 0
	s.sumT, s.sumT2 = 0, 0
	for i := range s.sumX {
		s.sumX[i], s.sumXT[i], s.sumX2[i] = 0, 0, 0
		if s.noHull {
			s.allPts[i] = s.allPts[i][:0]
		} else {
			s.hulls[i].Reset()
		}
	}
	s.absorb(p)
}

// seed fixes the initial u and l from the interval's first two points
// (Algorithm 2, lines 2 and 29).
func (s *Slide) seed(p Point) {
	for i := range s.u {
		eps := s.eps[i]
		a := geom.P{T: s.firstPt.T, X: s.firstPt.X[i]}
		b := geom.P{T: p.T, X: p.X[i]}
		// Vertical lines are impossible: admit enforces strictly
		// increasing timestamps.
		s.u[i], _ = geom.Through(geom.P{T: a.T, X: a.X - eps}, geom.P{T: b.T, X: b.X + eps})
		s.l[i], _ = geom.Through(geom.P{T: a.T, X: a.X + eps}, geom.P{T: b.T, X: b.X - eps})
	}
	s.haveLines = true
	s.absorb(p)
}

// absorb folds p into the interval state: hull (or point store), MSE
// sums, and counters.
func (s *Slide) absorb(p Point) {
	if s.count > 0 {
		s.setLast(p)
	}
	s.count++
	s.sumT += p.T
	s.sumT2 += p.T * p.T
	for i, x := range p.X {
		s.sumX[i] += x
		s.sumXT[i] += x * p.T
		s.sumX2[i] += x * x
		if s.noHull {
			s.allPts[i] = append(s.allPts[i], geom.P{T: p.T, X: x})
		} else {
			s.hulls[i].Append(geom.P{T: p.T, X: x})
			if v := s.hulls[i].Vertices(); v > s.stats.MaxHullVertices {
				s.stats.MaxHullVertices = v
			}
		}
	}
}

// setLast records p as the interval's most recent point, reusing the
// buffer so steady-state Push does not allocate.
func (s *Slide) setLast(p Point) {
	s.last.T = p.T
	copy(s.last.X, p.X)
}

// fitsLag reports whether p stays within ε of the announced line.
func (s *Slide) fitsLag(p Point) bool {
	for i, x := range p.X {
		pred := s.lagLine[i].Eval(p.T)
		if x > pred+s.eps[i] || x < pred-s.eps[i] {
			return false
		}
	}
	return true
}

// promoteLagToPrev closes a lag-mode interval: the announced line becomes
// the pending previous segment. Its band collapsed to the line itself, so
// the next boundary will not attempt a connection.
func (s *Slide) promoteLagToPrev() {
	s.stats.Intervals++
	s.havePrev = true
	s.prevLine = append([]geom.Line(nil), s.lagLine...)
	s.prevULine = append([]geom.Line(nil), s.lagLine...)
	s.prevLLine = append([]geom.Line(nil), s.lagLine...)
	s.prevStart = s.lagStart
	s.prevStartConn = s.lagStartConn
	s.prevLastT = s.last.T
	s.prevCount = s.count
	s.prevLagged = true
}

// closeInterval finalizes the current interval: it decides the interval's
// line g^k, resolves the boundary with g^{k−1} (emitting that segment),
// and installs g^k as the new pending segment.
func (s *Slide) closeInterval() []Segment {
	s.stats.Intervals++
	segs, g, start, conn := s.decide()
	s.havePrev = true
	s.prevLine = g
	s.prevULine = append([]geom.Line(nil), s.u...)
	s.prevLLine = append([]geom.Line(nil), s.l...)
	s.prevStart = start
	s.prevStartConn = conn
	s.prevLastT = s.last.T
	s.prevCount = s.count
	s.prevLagged = false
	return segs
}

// checkLag performs the m_max_lag flush of Section 4.3: resolve the
// pending boundary now, fix the current interval's line, announce it to
// the receiver (one recording), and ride it until the interval ends.
func (s *Slide) checkLag() []Segment {
	if s.maxLag == 0 || s.lagMode || s.count < s.maxLag {
		return nil
	}
	segs, g, start, conn := s.decide()
	s.lagLine = g
	s.lagStart = start
	s.lagStartConn = conn
	s.lagMode = true
	s.havePrev = false
	s.stats.LagFlushes++
	s.stats.Recordings++ // the provisional receiver update
	return segs
}

// decide computes the current interval's line g^k, its start point, and
// whether it connects to the pending previous segment, emitting that
// previous segment in the process.
func (s *Slide) decide() (segs []Segment, g []geom.Line, start Point, conn bool) {
	d := s.dim
	z := make([]geom.P, d)
	zok := make([]bool, d)
	allZ := true
	for i := 0; i < d; i++ {
		p, ok := s.u[i].IntersectPoint(s.l[i])
		z[i], zok[i] = p, ok
		allZ = allZ && ok
	}

	if s.havePrev && !s.prevLagged && allZ && s.connGrid > 0 {
		if tc, ok := s.findConnection(z); ok {
			knot := make([]float64, d)
			g = make([]geom.Line, d)
			for i := 0; i < d; i++ {
				knot[i] = s.prevLine[i].Eval(tc)
				gi, _ := geom.Through(z[i], geom.P{T: tc, X: knot[i]})
				g[i] = gi
			}
			segs = append(segs, s.emitPrev(tc, knot))
			start = Point{T: tc, X: knot}
			return segs, g, start, true
		}
	}

	// Disconnected (or first) segment: per-dimension MSE-optimal slope
	// through z, clamped to the candidate pencil.
	g = make([]geom.Line, d)
	for i := 0; i < d; i++ {
		if !zok[i] {
			// u and l numerically parallel: any line between them works;
			// take the midline.
			mid := (s.u[i].Eval(s.last.T) + s.l[i].Eval(s.last.T)) / 2
			g[i] = geom.WithSlope((s.u[i].A+s.l[i].A)/2, geom.P{T: s.last.T, X: mid})
			continue
		}
		lo, hi := minmax(s.u[i].A, s.l[i].A)
		g[i] = geom.WithSlope(clamp(s.mseSlope(i, z[i]), lo, hi), z[i])
	}
	if s.havePrev {
		segs = append(segs, s.emitPrev(s.prevLastT, evalLines(s.prevLine, s.prevLastT)))
	}
	start = Point{T: s.firstPt.T, X: evalLines(g, s.firstPt.T)}
	return segs, g, start, false
}

// emitPrev finalizes the pending previous segment with the given end
// point and returns it.
func (s *Slide) emitPrev(endT float64, endX []float64) Segment {
	seg := Segment{
		T0: s.prevStart.T, T1: endT,
		X0: s.prevStart.X, X1: endX,
		Connected: s.prevStartConn,
		Points:    s.prevCount,
	}
	s.emit(seg, false)
	s.emitted++
	s.havePrev = false
	return seg
}

// findConnection implements the recording mechanism of Section 4.2: find
// a connection time t_c at which g^k can intersect g^{k−1} such that both
// keep their precision guarantees — g^{k−1} for the data up to t_c, g^k
// for the trailing data of the previous interval and all of the current
// one. Lemma 4.4 characterises a sufficient window; here the feasible
// region is searched directly: candidate times are the crossings of
// g^{k−1} with every constraint boundary (the current interval's u and l,
// the previous interval's u and l, the slopes grazing the previous band
// at its end, and the per-dimension MSE optima), plus a coarse grid and
// the midpoints between consecutive candidates, so that every maximal
// feasible subinterval is probed. Each candidate is verified against the
// precision invariants by validKnot; among the valid ones the summed
// mean-square error decides. This finds a connection whenever the paper's
// window is non-empty, and in some additional sound cases its sufficient
// conditions exclude.
func (s *Slide) findConnection(z []geom.P) (float64, bool) {
	tEnd := s.prevLastT
	lo := s.prevStart.T
	if !(lo < tEnd) {
		return 0, false
	}
	cands := make([]float64, 0, 64)
	add := func(t float64) {
		if t >= lo && t <= tEnd && !math.IsNaN(t) && !math.IsInf(t, 0) {
			cands = append(cands, t)
		}
	}
	add(lo)
	add(tEnd)
	for i := range z {
		G := s.prevLine[i]
		for _, ln := range []geom.Line{s.u[i], s.l[i], s.prevULine[i], s.prevLLine[i]} {
			if t, ok := G.IntersectTime(ln); ok {
				add(t)
			}
		}
		// Knot times whose induced slope makes g^k graze the previous
		// band exactly at tEnd.
		if dz := tEnd - z[i].T; dz != 0 {
			for _, bound := range []float64{s.prevULine[i].Eval(tEnd), s.prevLLine[i].Eval(tEnd)} {
				a := (bound - z[i].X) / dz
				if t, ok := geom.WithSlope(a, z[i]).IntersectTime(G); ok {
					add(t)
				}
			}
		}
		// The knot time induced by the unclamped MSE-optimal slope.
		if t, ok := geom.WithSlope(s.mseSlope(i, z[i]), z[i]).IntersectTime(G); ok {
			add(t)
		}
	}
	if gridN := s.connGrid; gridN > 1 {
		for j := 0; j < gridN; j++ {
			add(lo + (tEnd-lo)*float64(j)/float64(gridN-1))
		}
	}
	sort.Float64s(cands)
	for j, n := 1, len(cands); j < n; j++ {
		add((cands[j-1] + cands[j]) / 2)
	}

	bestT, bestCost, found := 0.0, math.Inf(1), false
	for _, tc := range cands {
		if !s.validKnot(tc, z) {
			continue
		}
		cost := 0.0
		for i := range z {
			a := (s.prevLine[i].Eval(tc) - z[i].X) / (tc - z[i].T)
			cost += s.mseCost(i, z[i], a)
		}
		if !found || cost < bestCost {
			bestT, bestCost, found = tc, cost, true
		}
	}
	return bestT, found
}

// validKnot verifies that connecting at time tc preserves both halves of
// the precision guarantee: the resulting g^k lies inside the current
// interval's candidate pencil, and its path from the knot to the end of
// the previous interval stays inside the previous interval's band.
func (s *Slide) validKnot(tc float64, z []geom.P) bool {
	tEnd := s.prevLastT
	if tc > tEnd {
		return false
	}
	for i := range z {
		if tc >= z[i].T {
			return false // would make g^k vertical or backwards
		}
		knot := s.prevLine[i].Eval(tc)
		a := (knot - z[i].X) / (tc - z[i].T)
		lo, hi := minmax(s.u[i].A, s.l[i].A)
		slack := 1e-9 * (1 + math.Abs(lo) + math.Abs(hi))
		if a < lo-slack || a > hi+slack {
			return false
		}
		// Orientation-consistent containment between the previous u and l
		// at both tc and tEnd implies containment on the whole span.
		gEnd := knot + a*(tEnd-tc)
		uc, lc := s.prevULine[i].Eval(tc), s.prevLLine[i].Eval(tc)
		ue, le := s.prevULine[i].Eval(tEnd), s.prevLLine[i].Eval(tEnd)
		bs := 1e-9 * (1 + math.Abs(ue) + math.Abs(le))
		upOK := knot <= uc+bs && knot >= lc-bs && gEnd <= ue+bs && gEnd >= le-bs
		downOK := knot >= uc-bs && knot <= lc+bs && gEnd >= ue-bs && gEnd <= le+bs
		if !upOK && !downOK {
			return false
		}
	}
	return true
}

// mseSlope returns the slope minimizing the interval's mean square error
// for dimension i among lines through pivot (Eq. 6 with pivot z).
func (s *Slide) mseSlope(i int, pivot geom.P) float64 {
	n := float64(s.count)
	sxt := s.sumXT[i] - pivot.T*s.sumX[i] - pivot.X*s.sumT + n*pivot.T*pivot.X
	stt := s.sumT2 - 2*pivot.T*s.sumT + n*pivot.T*pivot.T
	if stt == 0 {
		return 0
	}
	return sxt / stt
}

// mseCost returns Σ_j (x_j − (pivot.X + a·(t_j − pivot.T)))² for
// dimension i, via the running sums.
func (s *Slide) mseCost(i int, pivot geom.P, a float64) float64 {
	n := float64(s.count)
	sxx := s.sumX2[i] - 2*pivot.X*s.sumX[i] + n*pivot.X*pivot.X
	sxt := s.sumXT[i] - pivot.T*s.sumX[i] - pivot.X*s.sumT + n*pivot.T*pivot.X
	stt := s.sumT2 - 2*pivot.T*s.sumT + n*pivot.T*pivot.T
	return sxx - 2*a*sxt + a*a*stt
}

func evalLines(ls []geom.Line, t float64) []float64 {
	v := make([]float64, len(ls))
	for i, l := range ls {
		v[i] = l.Eval(t)
	}
	return v
}

func minmax(a, b float64) (float64, float64) {
	if a <= b {
		return a, b
	}
	return b, a
}

func clamp(v float64, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// InLagMode reports whether the filter has fixed and announced the
// current interval's line after an m_max_lag flush. While true, the
// receiver's model already covers newly arriving points.
func (s *Slide) InLagMode() bool { return s.lagMode }

// Pending returns the provisional receiver-update segments covering every
// point the filter has consumed but not yet finalized. Because the slide
// filter emits segments one boundary late, that is up to two segments:
// the previous interval's decided-but-unclosed line, and the current
// interval approximated by its announced lag line or MSE-best candidate.
// Every returned segment stays within ε of the points it covers (any
// line in the candidate pencil does); all are superseded by the final
// segments that eventually close their intervals. Pending returns nil
// when nothing is outstanding.
func (s *Slide) Pending() []Segment {
	if s.finished || !s.haveFirst {
		return nil
	}
	var out []Segment
	if s.havePrev {
		out = append(out, Segment{
			T0: s.prevStart.T, T1: s.prevLastT,
			X0: copyVec(s.prevStart.X), X1: evalLines(s.prevLine, s.prevLastT),
			Connected: s.prevStartConn,
			Points:    s.prevCount, Provisional: true,
		})
	}
	switch {
	case s.lagMode:
		out = append(out, Segment{
			T0: s.lagStart.T, T1: s.last.T,
			X0: copyVec(s.lagStart.X), X1: evalLines(s.lagLine, s.last.T),
			Connected: s.lagStartConn,
			Points:    s.count, Provisional: true,
		})
	case !s.haveLines:
		out = append(out, Segment{
			T0: s.firstPt.T, T1: s.firstPt.T,
			X0: copyVec(s.firstPt.X), X1: copyVec(s.firstPt.X),
			Points: 1, Provisional: true,
		})
	default:
		g := make([]geom.Line, s.dim)
		for i := 0; i < s.dim; i++ {
			z, ok := s.u[i].IntersectPoint(s.l[i])
			if !ok {
				// u and l numerically parallel: take the midline.
				mid := (s.u[i].Eval(s.last.T) + s.l[i].Eval(s.last.T)) / 2
				g[i] = geom.WithSlope((s.u[i].A+s.l[i].A)/2, geom.P{T: s.last.T, X: mid})
				continue
			}
			lo, hi := minmax(s.u[i].A, s.l[i].A)
			g[i] = geom.WithSlope(clamp(s.mseSlope(i, z), lo, hi), z)
		}
		out = append(out, Segment{
			T0: s.firstPt.T, T1: s.last.T,
			X0: evalLines(g, s.firstPt.T), X1: evalLines(g, s.last.T),
			Points: s.count, Provisional: true,
		})
	}
	return out
}
