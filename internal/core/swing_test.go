package core

import (
	"math"
	"testing"
)

// paperExample is the data pattern of Examples 3.1/4.1 (Figures 2–4),
// reconstructed so that with ε=1 the linear filter breaks at t=4, the
// swing filter at t=5, and the slide filter absorbs all five points.
func paperExample() []Point {
	return []Point{
		{T: 1, X: []float64{0}},
		{T: 2, X: []float64{1}},
		{T: 3, X: []float64{2.5}},
		{T: 4, X: []float64{4.5}},
		{T: 5, X: []float64{3.5}},
	}
}

func TestPaperExampleFilterOrdering(t *testing.T) {
	signal := paperExample()
	eps := []float64{1}

	lin, _ := NewLinear(eps)
	linSegs, err := Run(lin, signal)
	if err != nil {
		t.Fatal(err)
	}
	sw, _ := NewSwing(eps)
	swSegs, err := Run(sw, signal)
	if err != nil {
		t.Fatal(err)
	}
	sl, _ := NewSlide(eps)
	slSegs, err := Run(sl, signal)
	if err != nil {
		t.Fatal(err)
	}

	if got := linSegs[0].Points; got != 3 {
		t.Fatalf("linear first interval holds %d points, want 3 (Figure 2b)", got)
	}
	if got := swSegs[0].Points; got != 4 {
		t.Fatalf("swing first interval holds %d points, want 4 (Figure 3c)", got)
	}
	if len(slSegs) != 1 || slSegs[0].Points != 5 {
		t.Fatalf("slide should absorb all 5 points in one segment (Figure 4c), got %+v", slSegs)
	}
}

func TestSwingExactLine(t *testing.T) {
	f, _ := NewSwing([]float64{0.25})
	var signal []Point
	for i := 0; i < 50; i++ {
		signal = append(signal, Point{T: float64(i), X: []float64{3*float64(i) - 7}})
	}
	segs, err := Run(f, signal)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("exact line produced %d segments, want 1", len(segs))
	}
	s := segs[0]
	if math.Abs(s.X0[0]-(-7)) > 1e-12 || math.Abs(s.X1[0]-(3*49-7)) > 1e-12 {
		t.Fatalf("MSE recording missed the exact line: %+v", s)
	}
	if st := f.Stats(); st.Recordings != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestSwingSegmentsAreConnected(t *testing.T) {
	f, _ := NewSwing([]float64{0.5})
	var signal []Point
	// A noisy triangle wave forces several intervals.
	for i := 0; i < 200; i++ {
		x := math.Abs(math.Mod(float64(i), 40)-20) + 0.3*math.Sin(float64(i)*1.7)
		signal = append(signal, Point{T: float64(i), X: []float64{x}})
	}
	segs, err := Run(f, signal)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 5 {
		t.Fatalf("expected several segments, got %d", len(segs))
	}
	for i := 1; i < len(segs); i++ {
		if !segs[i].Connected {
			t.Fatalf("segment %d not connected", i)
		}
		if segs[i].T0 != segs[i-1].T1 || segs[i].X0[0] != segs[i-1].X1[0] {
			t.Fatalf("segment %d does not chain exactly: prev end (%v,%v), start (%v,%v)",
				i, segs[i-1].T1, segs[i-1].X1[0], segs[i].T0, segs[i].X0[0])
		}
	}
	// K connected segments cost K+1 recordings.
	if st := f.Stats(); st.Recordings != len(segs)+1 {
		t.Fatalf("recordings = %d, want %d", st.Recordings, len(segs)+1)
	}
}

func TestSwingRecordingInsideBounds(t *testing.T) {
	// The MSE-optimal slope must be clamped into [slope(l), slope(u)]:
	// every original point of a closed interval stays within ε of it.
	signal := []Point{
		{T: 0, X: []float64{0}},
		{T: 1, X: []float64{0.9}},
		{T: 2, X: []float64{0.2}},
		{T: 3, X: []float64{1.1}},
		{T: 4, X: []float64{9}}, // violation
	}
	f, _ := NewSwing([]float64{1})
	segs, err := Run(f, signal)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 {
		t.Fatalf("got %d segments, want 2", len(segs))
	}
	s := segs[0]
	for _, p := range signal[:4] {
		approx := s.At(0, p.T)
		if math.Abs(approx-p.X[0]) > 1+1e-9 {
			t.Fatalf("point (%v,%v) is %v from the recording line, beyond ε",
				p.T, p.X[0], math.Abs(approx-p.X[0]))
		}
	}
}

func TestSwingSinglePoint(t *testing.T) {
	f, _ := NewSwing([]float64{1})
	segs, err := Run(f, pts1(42))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 || segs[0].T0 != segs[0].T1 || segs[0].X0[0] != 42 {
		t.Fatalf("segments = %+v", segs)
	}
}

func TestSwingTwoPoints(t *testing.T) {
	f, _ := NewSwing([]float64{1})
	segs, err := Run(f, pts1(0, 10))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("got %d segments, want 1", len(segs))
	}
	// The recording must be within ε of both points; the first recording
	// is exact, the second within [9, 11].
	if segs[0].X0[0] != 0 {
		t.Fatalf("start = %v, want 0", segs[0].X0[0])
	}
	if end := segs[0].X1[0]; end < 9 || end > 11 {
		t.Fatalf("end = %v, want within ε of 10", end)
	}
}

func TestSwingImmediateReviolation(t *testing.T) {
	// Each point is far from the previous: every interval holds one point
	// beyond its pivot, exercising the reopen path repeatedly.
	f, _ := NewSwing([]float64{0.1})
	signal := pts1(0, 100, -100, 100, -100)
	segs, err := Run(f, signal)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, s := range segs {
		total += s.Points
	}
	if total != len(signal) {
		t.Fatalf("segments cover %d points, want %d", total, len(signal))
	}
}

func TestSwingMultiDimIndependentSwinging(t *testing.T) {
	// Dim 0 rises, dim 1 falls; both fit one segment within ε=2.
	var signal []Point
	for i := 0; i < 10; i++ {
		signal = append(signal, Point{T: float64(i), X: []float64{float64(i), -float64(i)}})
	}
	f, _ := NewSwing([]float64{2, 2})
	segs, err := Run(f, signal)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("got %d segments, want 1", len(segs))
	}
	if math.Abs(segs[0].X1[0]-9) > 1e-9 || math.Abs(segs[0].X1[1]+9) > 1e-9 {
		t.Fatalf("end = %v", segs[0].X1)
	}
}
