package core

import (
	"math"
	"testing"
)

func TestLinearExactLine(t *testing.T) {
	f, _ := NewLinear([]float64{0.1})
	var signal []Point
	for i := 0; i < 20; i++ {
		signal = append(signal, Point{T: float64(i), X: []float64{2 * float64(i)}})
	}
	segs, err := Run(f, signal)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("exact line produced %d segments, want 1", len(segs))
	}
	s := segs[0]
	if s.T0 != 0 || s.T1 != 19 || s.X0[0] != 0 || s.X1[0] != 38 {
		t.Fatalf("segment = %+v", s)
	}
	if st := f.Stats(); st.Recordings != 2 {
		t.Fatalf("one segment needs 2 recordings, stats = %+v", st)
	}
}

func TestLinearConnectedChain(t *testing.T) {
	// A V-shaped signal: down then up, forcing one break at the vertex.
	var signal []Point
	for i := 0; i <= 10; i++ {
		signal = append(signal, Point{T: float64(i), X: []float64{math.Abs(float64(i) - 5)}})
	}
	f, _ := NewLinear([]float64{0.25})
	segs, err := Run(f, signal)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 {
		t.Fatalf("V signal produced %d segments, want 2", len(segs))
	}
	if segs[0].Connected || !segs[1].Connected {
		t.Fatalf("connected flags = %v, %v; want false, true", segs[0].Connected, segs[1].Connected)
	}
	if segs[0].T1 != segs[1].T0 || segs[0].X1[0] != segs[1].X0[0] {
		t.Fatal("connected segments do not share their knot")
	}
	if st := f.Stats(); st.Recordings != 3 {
		t.Fatalf("two connected segments need 3 recordings, stats = %+v", st)
	}
}

func TestLinearDisconnectedChain(t *testing.T) {
	var signal []Point
	for i := 0; i <= 10; i++ {
		signal = append(signal, Point{T: float64(i), X: []float64{math.Abs(float64(i) - 5)}})
	}
	f, _ := NewLinear([]float64{0.25}, WithDisconnectedSegments())
	if !f.Disconnected() {
		t.Fatal("Disconnected() = false")
	}
	segs, err := Run(f, signal)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 {
		t.Fatalf("V signal produced %d segments, want 2", len(segs))
	}
	for i, s := range segs {
		if s.Connected {
			t.Fatalf("segment %d marked connected in disconnected mode", i)
		}
	}
	// The second segment restarts at the violating data point itself.
	if segs[1].T0 != 6 || segs[1].X0[0] != 1 {
		t.Fatalf("segment 1 start = (%v, %v), want (6, 1)", segs[1].T0, segs[1].X0[0])
	}
	if st := f.Stats(); st.Recordings != 4 {
		t.Fatalf("two disconnected segments need 4 recordings, stats = %+v", st)
	}
}

func TestLinearSlopeFromFirstTwoPoints(t *testing.T) {
	// Section 2.2: the slope is fixed by the first two points, so a
	// curving signal violates even if a better line would have fit.
	signal := pts1(0, 1, 1.5, 1.5) // slope fixed at 1; at t=3 prediction 3, point 1.5
	f, _ := NewLinear([]float64{0.6})
	segs, err := Run(f, signal)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 {
		t.Fatalf("got %d segments, want 2", len(segs))
	}
	// End point is the prediction at the last represented point, not the
	// data value: at t=2 the line through (0,0),(1,1) predicts 2.
	if segs[0].T1 != 2 || segs[0].X1[0] != 2 {
		t.Fatalf("segment 0 end = (%v, %v), want (2, 2)", segs[0].T1, segs[0].X1[0])
	}
}

func TestLinearSinglePoint(t *testing.T) {
	f, _ := NewLinear([]float64{1})
	segs, err := Run(f, pts1(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 || segs[0].T0 != segs[0].T1 || segs[0].X0[0] != 7 {
		t.Fatalf("segments = %+v", segs)
	}
	if st := f.Stats(); st.Recordings != 1 {
		t.Fatalf("degenerate segment should count 1 recording, stats = %+v", st)
	}
}

func TestLinearTwoPoints(t *testing.T) {
	f, _ := NewLinear([]float64{1})
	segs, err := Run(f, pts1(1, 4))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 || segs[0].X0[0] != 1 || segs[0].X1[0] != 4 {
		t.Fatalf("segments = %+v", segs)
	}
}

func TestLinearMultiDim(t *testing.T) {
	// Dim 0 follows a perfect line; dim 1 breaks at t=3.
	signal := []Point{
		{T: 0, X: []float64{0, 0}},
		{T: 1, X: []float64{1, 0}},
		{T: 2, X: []float64{2, 0}},
		{T: 3, X: []float64{3, 9}},
	}
	f, _ := NewLinear([]float64{0.5, 0.5})
	segs, err := Run(f, signal)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 {
		t.Fatalf("got %d segments, want 2", len(segs))
	}
	if segs[0].Points != 3 || segs[1].Points != 1 {
		t.Fatalf("points per segment = %d, %d; want 3, 1", segs[0].Points, segs[1].Points)
	}
}
