package core_test

import (
	"math/rand"
	"testing"

	"github.com/pla-go/pla/internal/core"
	"github.com/pla-go/pla/internal/recon"
)

// ablationSignal is a mid-compressibility random walk shared by the
// ablation studies.
func ablationSignal(n int) []core.Point {
	rng := rand.New(rand.NewSource(20))
	pts := make([]core.Point, n)
	v := 0.0
	for j := range pts {
		v += rng.NormFloat64()
		pts[j] = core.Point{T: float64(j), X: []float64{v}}
	}
	return pts
}

// TestSwingRecordingAblation reproduces the Section 3.2 design argument:
// the MSE recording mode keeps the identical segment boundaries (same
// compression) while cutting the residual error versus the
// "straightforward" last-point recording and the midline recording.
func TestSwingRecordingAblation(t *testing.T) {
	signal := ablationSignal(4000)
	eps := []float64{1.5}
	type result struct {
		segments int
		meanErr  float64
	}
	results := map[core.SwingRecording]result{}
	for _, mode := range []core.SwingRecording{core.RecordMSE, core.RecordMidline, core.RecordLast} {
		f, err := core.NewSwing(eps, core.WithSwingRecording(mode))
		if err != nil {
			t.Fatal(err)
		}
		if f.Recording() != mode {
			t.Fatalf("Recording() = %v, want %v", f.Recording(), mode)
		}
		segs, err := core.Run(f, signal)
		if err != nil {
			t.Fatal(err)
		}
		model, err := recon.NewModel(segs)
		if err != nil {
			t.Fatal(err)
		}
		// The guarantee must hold in every mode.
		if err := recon.CheckPrecision(signal, model, eps, 1e-6); err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		st := recon.Measure(signal, model)
		results[mode] = result{segments: len(segs), meanErr: st.MeanAbs[0]}
	}
	// The recording choice moves the next interval's pivot, so segment
	// boundaries — and with them compression — drift across modes (an
	// effect the paper does not discuss; on this workload RecordLast
	// compresses ~10 % better while RecordMSE tracks the signal closer).
	// Assert only what is structural: counts stay within the same regime
	// and the MSE mode is not beaten at its own objective by more than
	// noise.
	mse, mid, last := results[core.RecordMSE], results[core.RecordMidline], results[core.RecordLast]
	for name, r := range map[string]result{"midline": mid, "last": last} {
		if diff := abs(r.segments - mse.segments); float64(diff) > 0.25*float64(mse.segments)+1 {
			t.Fatalf("%s mode changed segment count implausibly: %d vs %d", name, r.segments, mse.segments)
		}
	}
	if mse.meanErr > 1.05*mid.meanErr {
		t.Fatalf("MSE recording lost its own objective to midline: mse=%v midline=%v",
			mse.meanErr, mid.meanErr)
	}
	t.Logf("mean abs error: mse=%.4f midline=%.4f last=%.4f (segments %d/%d/%d)",
		mse.meanErr, mid.meanErr, last.meanErr, mse.segments, mid.segments, last.segments)
}

// TestSlideConnectionGridAblation reproduces the Section 4.2 design
// argument: without connections the slide filter pays two recordings per
// segment; enabling the connection search recovers a significant share of
// them, and a denser grid can only help (monotone non-increasing
// recordings), with all variants preserving the guarantee.
func TestSlideConnectionGridAblation(t *testing.T) {
	signal := ablationSignal(4000)
	eps := []float64{1.5}
	recordings := map[int]int{}
	for _, grid := range []int{0, 5, 17, 65} {
		f, err := core.NewSlide(eps, core.WithConnectionGrid(grid))
		if err != nil {
			t.Fatal(err)
		}
		segs, err := core.Run(f, signal)
		if err != nil {
			t.Fatal(err)
		}
		model, err := recon.NewModel(segs)
		if err != nil {
			t.Fatal(err)
		}
		if err := recon.CheckPrecision(signal, model, eps, 1e-6); err != nil {
			t.Fatalf("grid %d: %v", grid, err)
		}
		recordings[grid] = f.Stats().Recordings
		if grid == 0 {
			for i, s := range segs {
				if s.Connected {
					t.Fatalf("grid 0 produced a connected segment at %d", i)
				}
			}
		}
	}
	if recordings[17] >= recordings[0] {
		t.Fatalf("connection search saved nothing: grid0=%d grid17=%d",
			recordings[0], recordings[17])
	}
	// Denser grids explore supersets of candidates, but the best-MSE
	// choice at one boundary changes the next interval's geometry, so
	// strict monotonicity is not guaranteed; require no large regression.
	if float64(recordings[65]) > 1.05*float64(recordings[17]) {
		t.Fatalf("denser grid regressed recordings: grid17=%d grid65=%d",
			recordings[17], recordings[65])
	}
	t.Logf("recordings by grid density: %v", recordings)
}

// TestSlideNegativeGridRejected covers the constructor validation.
func TestSlideNegativeGridRejected(t *testing.T) {
	if _, err := core.NewSlide([]float64{1}, core.WithConnectionGrid(-1)); err == nil {
		t.Fatal("negative grid accepted")
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
