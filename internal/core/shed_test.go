package core

import (
	"math"
	"testing"
)

func offerAll(t *testing.T, d *Decimator, pts []Point) (kept, dropped []Point) {
	t.Helper()
	for _, p := range pts {
		cp := Point{T: p.T, X: append([]float64(nil), p.X...)}
		if d.Offer(p) {
			kept = append(kept, cp)
		} else {
			dropped = append(dropped, cp)
		}
	}
	return kept, dropped
}

func TestDecimatorPassThrough(t *testing.T) {
	d := NewDecimator(1)
	pts := rampPoints(50)
	kept, dropped := offerAll(t, d, pts)
	if len(dropped) != 0 || len(kept) != len(pts) {
		t.Fatalf("stride 0 dropped %d of %d points", len(dropped), len(pts))
	}
	if d.Shed() != 0 {
		t.Fatalf("Shed() = %d on a pass-through stream", d.Shed())
	}
	for _, dv := range d.Deviation() {
		if dv != 0 {
			t.Fatalf("deviation %v with nothing dropped", d.Deviation())
		}
	}
	// Stride 1 must behave exactly like off.
	d.SetStride(1)
	if d.Stride() != 0 {
		t.Fatalf("SetStride(1) changed stride to %d", d.Stride())
	}
	d.SetStride(-3)
	if d.Stride() != 0 {
		t.Fatalf("SetStride(-3) changed stride to %d", d.Stride())
	}
}

func rampPoints(n int) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{T: float64(i), X: []float64{float64(i) * 0.5}}
	}
	return pts
}

func TestDecimatorStrideTwo(t *testing.T) {
	d := NewDecimator(1)
	d.SetStride(2)
	kept, dropped := offerAll(t, d, rampPoints(21))
	// The first point is always kept (no left neighbour); thereafter
	// every other point drops.
	if len(dropped) != 10 {
		t.Fatalf("stride 2 over 21 points dropped %d, want 10", len(dropped))
	}
	if d.Shed() != 10 {
		t.Fatalf("Shed() = %d, want 10", d.Shed())
	}
	// Drops must never be consecutive.
	for i := 1; i < len(dropped); i++ {
		if dropped[i].T-dropped[i-1].T < 2 {
			t.Fatalf("consecutive drops at t=%v and t=%v", dropped[i-1].T, dropped[i].T)
		}
	}
	// On a perfectly linear ramp every dropped point sits on the chord.
	if dv := d.Deviation()[0]; dv > 1e-12 {
		t.Fatalf("linear ramp deviation %g, want ~0", dv)
	}
	if len(kept)+len(dropped) != 21 {
		t.Fatalf("kept %d + dropped %d != offered 21", len(kept), len(dropped))
	}
}

// TestDecimatorChordDeviation pins the ε_eff accounting: a dropped point
// off the chord between its kept neighbours must be measured exactly.
func TestDecimatorChordDeviation(t *testing.T) {
	d := NewDecimator(1)
	d.SetStride(2)
	// t=0 kept, t=1 dropped (x=5 vs chord midpoint 1), t=2 kept (x=2).
	pts := []Point{
		{T: 0, X: []float64{0}},
		{T: 1, X: []float64{5}},
		{T: 2, X: []float64{2}},
	}
	_, dropped := offerAll(t, d, pts)
	if len(dropped) != 1 || dropped[0].T != 1 {
		t.Fatalf("dropped %v, want exactly the t=1 point", dropped)
	}
	want := 4.0 // |5 - lerp(0→2 over t 0→2 at t=1)| = |5 - 1|
	if dv := d.Deviation()[0]; math.Abs(dv-want) > 1e-12 {
		t.Fatalf("deviation %g, want %g", dv, want)
	}
}

// TestDecimatorFlush settles a trailing pending drop against the last
// kept value held flat.
func TestDecimatorFlush(t *testing.T) {
	d := NewDecimator(1)
	d.SetStride(2)
	pts := []Point{
		{T: 0, X: []float64{1}},
		{T: 1, X: []float64{4}}, // dropped, never gets a right neighbour
	}
	_, dropped := offerAll(t, d, pts)
	if len(dropped) != 1 {
		t.Fatalf("dropped %d points, want 1", len(dropped))
	}
	if dv := d.Deviation()[0]; dv != 0 {
		t.Fatalf("deviation settled before Flush: %g", dv)
	}
	d.Flush()
	if dv := d.Deviation()[0]; math.Abs(dv-3) > 1e-12 {
		t.Fatalf("flushed deviation %g, want 3 (|4-1| vs flat)", dv)
	}
	// Flush is idempotent.
	d.Flush()
	if dv := d.Deviation()[0]; math.Abs(dv-3) > 1e-12 {
		t.Fatalf("second Flush moved deviation to %g", dv)
	}
}

// TestDecimatorTakePending recovers a trailing pending drop: the point
// comes back, the shed count un-counts it, and no deviation is charged.
func TestDecimatorTakePending(t *testing.T) {
	d := NewDecimator(1)
	d.SetStride(2)
	if _, ok := d.TakePending(); ok {
		t.Fatal("TakePending invented a point")
	}
	pts := []Point{
		{T: 0, X: []float64{1}},
		{T: 1, X: []float64{9}}, // dropped, pending
	}
	offerAll(t, d, pts)
	p, ok := d.TakePending()
	if !ok || p.T != 1 || p.X[0] != 9 {
		t.Fatalf("TakePending = %v %v, want the t=1 point", p, ok)
	}
	if d.Shed() != 0 {
		t.Fatalf("Shed() = %d after the drop was taken back", d.Shed())
	}
	if dv := d.Deviation()[0]; dv != 0 {
		t.Fatalf("deviation %g charged for a recovered point", dv)
	}
	d.Flush() // nothing pending anymore; must be a no-op
	if dv := d.Deviation()[0]; dv != 0 {
		t.Fatalf("Flush after TakePending charged %g", dv)
	}
}

// TestDecimatorFirstPointKept verifies a drop never happens before a
// left neighbour exists, even at aggressive strides.
func TestDecimatorFirstPointKept(t *testing.T) {
	d := NewDecimator(1)
	d.SetStride(2)
	if !d.Offer(Point{T: 0, X: []float64{7}}) {
		t.Fatal("first offered point was dropped")
	}
}

// TestDecimatorRestride checks that turning decimation off mid-stream
// stops drops but keeps the lifetime shed count and deviation maxima.
func TestDecimatorRestride(t *testing.T) {
	d := NewDecimator(1)
	d.SetStride(2)
	offerAll(t, d, rampPoints(11))
	shed := d.Shed()
	if shed == 0 {
		t.Fatal("stride 2 shed nothing over 11 points")
	}
	d.SetStride(0)
	for i := 11; i < 30; i++ {
		if !d.Offer(Point{T: float64(i), X: []float64{float64(i)}}) {
			t.Fatalf("stride 0 dropped the point at t=%d", i)
		}
	}
	if d.Shed() != shed {
		t.Fatalf("Shed() moved from %d to %d after decimation stopped", shed, d.Shed())
	}
}

// BenchmarkDecimatorZeroAlloc guards the sender's overload hot path:
// offering a point — kept or dropped — must not allocate.
func BenchmarkDecimatorZeroAlloc(b *testing.B) {
	d := NewDecimator(1)
	d.SetStride(2)
	x := []float64{0}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		x[0] = float64(i % 17)
		d.Offer(Point{T: float64(i), X: x})
	}
}
