package core_test

// The oracle suite checks the filters against brute-force reference
// implementations that share no code with them — the defence Duvignau
// et al. ("Piecewise Linear Approximation in Data Streaming") argue
// reproductions of Swing/Slide need, because implementation-level
// choices are exactly where they silently diverge. Three oracles run
// over randomized streams (walks, steps, spikes, sines, magnitude
// extremes) plus adversarial inputs (duplicate timestamps, NaN/Inf):
//
//   1. Reconstruction: every accepted point lies within ε of the
//      emitted segments, located and evaluated by a plain linear scan.
//   2. Segment-count bounds: Slide must meet the greedy optimum for
//      disjoint segments (computed by O(window²) pairwise feasibility,
//      no hulls, no tangents), and Swing must match a from-scratch
//      rescan implementation of the paper's u/l pruning — while any
//      connected approximation can never beat the disjoint optimum.
//   3. Error paths: rejected inputs must leave the filter state intact.
//
// The default corpus is small and deterministic (it runs in `make
// verify`); set PLA_ORACLE_TRIALS to widen the randomized sweep (the
// nightly job runs hundreds of seeds).

import (
	"errors"
	"math"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"github.com/pla-go/pla/internal/core"
	"github.com/pla-go/pla/internal/gen"
)

// oracleTrials returns how many randomized trials to run: a small
// deterministic corpus by default, more under PLA_ORACLE_TRIALS.
func oracleTrials(t *testing.T, def int) int {
	if s := os.Getenv("PLA_ORACLE_TRIALS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("bad PLA_ORACLE_TRIALS %q", s)
		}
		return n
	}
	return def
}

// oracleSignal picks one of the named stream shapes. Seeds are derived
// deterministically, so a failure reproduces from the trial number.
func oracleSignal(rng *rand.Rand, n int) (string, []core.Point) {
	switch rng.Intn(6) {
	case 0:
		return "walk", gen.RandomWalk(gen.WalkConfig{N: n, P: 0.4 + rng.Float64()*0.2, MaxDelta: 0.1 + rng.Float64(), Seed: rng.Uint64()})
	case 1:
		return "steps", gen.Steps(n, 1+rng.Intn(20), rng.Float64()*8, rng.Uint64())
	case 2:
		return "spikes", gen.Spikes(n, 2+rng.Intn(20), 1+rng.Float64()*40, rng.Uint64())
	case 3:
		return "sine", gen.Sine(n, 1+rng.Float64()*10, 5+rng.Float64()*40, rng.Float64(), rng.Uint64())
	case 4:
		// Magnitude extremes: huge but finite values, the NaN/Inf-
		// adjacent territory where naive slope arithmetic overflows.
		pts := make([]core.Point, n)
		scale := math.Pow(10, 250+rng.Float64()*50)
		v := 0.0
		for j := range pts {
			v += (rng.Float64() - 0.5) * scale
			pts[j] = core.Point{T: float64(j), X: []float64{v}}
		}
		return "huge", pts
	default:
		// Denormal-adjacent territory on irregular timestamps.
		pts := make([]core.Point, n)
		tm := 0.0
		scale := math.Pow(10, -250-rng.Float64()*50)
		for j := range pts {
			tm += 0.001 + rng.Float64()
			pts[j] = core.Point{T: tm, X: []float64{(rng.Float64() - 0.5) * scale}}
		}
		return "tiny", pts
	}
}

// refAt evaluates an approximation at time t by linear scan — the
// brute-force counterpart of the archive's binary search.
func refAt(segs []core.Segment, t float64) (float64, bool) {
	for _, s := range segs {
		if t >= s.T0 && t <= s.T1 {
			return s.At(0, t), true
		}
	}
	return 0, false
}

// checkReconstruction asserts every signal point is within ε (plus a
// relative float slack) of the reconstruction.
func checkReconstruction(t *testing.T, label string, signal []core.Point, segs []core.Segment, eps float64) {
	t.Helper()
	for _, p := range signal {
		got, ok := refAt(segs, p.T)
		if !ok {
			t.Fatalf("%s: t=%v not covered by any segment", label, p.T)
		}
		slack := 1e-9 * math.Max(1, math.Abs(p.X[0])+eps)
		if diff := math.Abs(got - p.X[0]); diff > eps+slack {
			t.Fatalf("%s: |rec−x| = %g > ε = %g at t=%v", label, diff, eps, p.T)
		}
	}
}

// feasibleLine reports whether one free line can approximate pts within
// eps — brute force over all ordered timestamp pairs: a line x = a·t+b
// exists iff max over pairs of the forced slope lower bounds does not
// exceed the min of the upper bounds.
func feasibleLine(pts []core.Point, eps float64) bool {
	lo, hi := math.Inf(-1), math.Inf(1)
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			dt := pts[j].T - pts[i].T
			l := (pts[j].X[0] - eps - (pts[i].X[0] + eps)) / dt
			h := (pts[j].X[0] + eps - (pts[i].X[0] - eps)) / dt
			if l > lo {
				lo = l
			}
			if h < hi {
				hi = h
			}
			if lo > hi {
				return false
			}
		}
	}
	return true
}

// greedyDisjointCount is the paper's greedy bound for disconnected
// piece-wise linear approximation: extend every interval as far as one
// line reaches, which is the optimal (minimal) disjoint segment count.
func greedyDisjointCount(signal []core.Point, eps float64) int {
	count := 0
	for i := 0; i < len(signal); {
		j := i + 1
		for j < len(signal) && feasibleLine(signal[i:j+1], eps) {
			j++
		}
		count++
		i = j
	}
	return count
}

// refSwing is the brute-force reference for the Swing filter: the same
// pivot-anchored u/l pruning as Algorithm 1, but with the slope window
// recomputed from scratch over the whole interval at every point —
// no incremental swinging to inherit a bug from.
func refSwing(signal []core.Point, eps float64) (count int, ends []core.Point) {
	if len(signal) == 0 {
		return 0, nil
	}
	pivot := core.Point{T: signal[0].T, X: []float64{signal[0].X[0]}}
	window := []core.Point{}
	closeOn := func() {
		// The recording slope: the MSE-optimal estimate (Eq. 6) clamped
		// into the feasible window (Eq. 5).
		sumTX, sumTT := 0.0, 0.0
		up, lo := math.Inf(1), math.Inf(-1)
		for _, q := range window {
			dt := q.T - pivot.T
			sumTX += (q.X[0] - pivot.X[0]) * dt
			sumTT += dt * dt
			if s := (q.X[0] + eps - pivot.X[0]) / dt; s < up {
				up = s
			}
			if s := (q.X[0] - eps - pivot.X[0]) / dt; s > lo {
				lo = s
			}
		}
		a := sumTX / sumTT
		if a < lo {
			a = lo
		}
		if a > up {
			a = up
		}
		last := window[len(window)-1]
		end := core.Point{T: last.T, X: []float64{pivot.X[0] + a*(last.T-pivot.T)}}
		ends = append(ends, end)
		count++
		pivot = end
	}
	for _, p := range signal[1:] {
		if len(window) > 0 {
			// Recompute u/l from scratch: u is the min slope through the
			// +ε points, l the max through the −ε points (Algorithm 1's
			// lines, derived rather than maintained).
			up, lo := math.Inf(1), math.Inf(-1)
			for _, q := range window {
				dt := q.T - pivot.T
				if s := (q.X[0] + eps - pivot.X[0]) / dt; s < up {
					up = s
				}
				if s := (q.X[0] - eps - pivot.X[0]) / dt; s > lo {
					lo = s
				}
			}
			dt := p.T - pivot.T
			if (p.X[0]-eps-pivot.X[0])/dt > up || (p.X[0]+eps-pivot.X[0])/dt < lo {
				closeOn()
				window = window[:0]
			}
		}
		window = append(window, p)
	}
	if len(window) > 0 {
		closeOn()
	} else {
		// A single-point signal finishes as one degenerate recording.
		count++
	}
	return count, ends
}

// TestOracleSegmentCounts checks both count oracles across the corpus:
// Slide lands exactly on the greedy disjoint optimum, Swing lands
// exactly on its brute-force reference (including the recorded end
// points), and the connected count never beats the disjoint optimum.
func TestOracleSegmentCounts(t *testing.T) {
	trials := oracleTrials(t, 40)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < trials; trial++ {
		shape, signal := oracleSignal(rng, 60+rng.Intn(200))
		if shape == "huge" || shape == "tiny" {
			// The count oracles divide slopes that overflow to ±Inf at
			// these magnitudes; the reconstruction oracle covers them.
			continue
		}
		eps := 0.05 + rng.Float64()*3

		// The filters and the oracles compute the same feasibility
		// boundaries through different float expressions, so a point
		// sitting within an ulp of a boundary can legitimately break an
		// interval on one side and not the other. Bracketing ε by a
		// relative 1e-9 absorbs exactly those ties and nothing else: a
		// looser ε can only lower the optimal count, a tighter one only
		// raise it.
		const tie = 1e-9
		slide, err := core.NewSlide([]float64{eps})
		if err != nil {
			t.Fatal(err)
		}
		slideSegs, err := core.Run(slide, signal)
		if err != nil {
			t.Fatalf("trial %d (%s): %v", trial, shape, err)
		}
		greedyLoose := greedyDisjointCount(signal, eps*(1+tie))
		greedyTight := greedyDisjointCount(signal, eps*(1-tie))
		if len(slideSegs) < greedyLoose || len(slideSegs) > greedyTight {
			t.Fatalf("trial %d (%s, ε=%g, n=%d): slide emitted %d segments, greedy optimum brackets [%d, %d]",
				trial, shape, eps, len(signal), len(slideSegs), greedyLoose, greedyTight)
		}

		swing, err := core.NewSwing([]float64{eps})
		if err != nil {
			t.Fatal(err)
		}
		swingSegs, err := core.Run(swing, signal)
		if err != nil {
			t.Fatalf("trial %d (%s): %v", trial, shape, err)
		}
		refLoose, _ := refSwing(signal, eps*(1+tie))
		refTight, _ := refSwing(signal, eps*(1-tie))
		if len(swingSegs) < refLoose || len(swingSegs) > refTight {
			t.Fatalf("trial %d (%s, ε=%g): swing emitted %d segments, reference brackets [%d, %d]",
				trial, shape, eps, len(swingSegs), refLoose, refTight)
		}
		refCount, refEnds := refSwing(signal, eps)
		if len(swingSegs) == refCount {
			// Boundaries agreed at the exact ε: the recorded end points
			// must agree too (the Eq. 5/6 recording rule, pinned).
			for i, seg := range swingSegs {
				want := refEnds[i]
				if seg.T1 != want.T {
					break // a downstream tie shifted a boundary; counts stayed bracketed
				}
				slack := 1e-9 * math.Max(1, math.Abs(want.X[0]))
				if math.Abs(seg.X1[0]-want.X[0]) > slack {
					t.Fatalf("trial %d (%s): swing segment %d records %v at t=%v, reference %v",
						trial, shape, i, seg.X1[0], seg.T1, want.X[0])
				}
			}
		}
		if len(swingSegs) < greedyLoose {
			t.Fatalf("trial %d (%s): connected swing (%d) beat the disjoint optimum (%d)",
				trial, shape, len(swingSegs), greedyLoose)
		}
	}
}

// TestOracleReconstruction checks the ±ε guarantee against the linear-
// scan evaluator for every filter family, lag-bounded variants
// included, across every shape — extreme magnitudes too.
func TestOracleReconstruction(t *testing.T) {
	trials := oracleTrials(t, 30)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < trials; trial++ {
		shape, signal := oracleSignal(rng, 50+rng.Intn(250))
		eps := (0.05 + rng.Float64()*3) * math.Max(1, math.Abs(signal[len(signal)/2].X[0]))
		filters := map[string]func() (core.Filter, error){
			"cache":      func() (core.Filter, error) { return core.NewCache([]float64{eps}) },
			"linear":     func() (core.Filter, error) { return core.NewLinear([]float64{eps}) },
			"swing":      func() (core.Filter, error) { return core.NewSwing([]float64{eps}) },
			"slide":      func() (core.Filter, error) { return core.NewSlide([]float64{eps}) },
			"swing-lag8": func() (core.Filter, error) { return core.NewSwing([]float64{eps}, core.WithSwingMaxLag(8)) },
			"slide-lag8": func() (core.Filter, error) { return core.NewSlide([]float64{eps}, core.WithSlideMaxLag(8)) },
		}
		for name, mk := range filters {
			f, err := mk()
			if err != nil {
				t.Fatal(err)
			}
			segs, err := core.Run(f, signal)
			if err != nil {
				t.Fatalf("trial %d %s (%s): %v", trial, name, shape, err)
			}
			label := name + "/" + shape
			checkReconstruction(t, label, signal, segs, eps)
		}
	}
}

// TestOracleLagBound checks the §3.3 operational guarantee on the
// corpus: at no instant do more than m consumed points lack coverage by
// finalized segments plus the announced pending window.
func TestOracleLagBound(t *testing.T) {
	trials := oracleTrials(t, 20)
	rng := rand.New(rand.NewSource(11))
	type lagFilter interface {
		core.Filter
		Pending() []core.Segment
	}
	for trial := 0; trial < trials; trial++ {
		shape, signal := oracleSignal(rng, 80+rng.Intn(150))
		m := 4 + rng.Intn(30)
		eps := 0.5 + rng.Float64()*4
		filters := map[string]lagFilter{}
		if f, err := core.NewSwing([]float64{eps}, core.WithSwingMaxLag(m)); err == nil {
			filters["swing"] = f
		}
		if f, err := core.NewSlide([]float64{eps}, core.WithSlideMaxLag(m)); err == nil {
			filters["slide"] = f
		}
		for name, f := range filters {
			finalPts := 0
			for i, p := range signal {
				segs, err := f.Push(p)
				if err != nil {
					t.Fatalf("trial %d %s (%s): %v", trial, name, shape, err)
				}
				for _, s := range segs {
					finalPts += s.Points
				}
				pendPts := 0
				for _, s := range f.Pending() {
					pendPts += s.Points
				}
				if uncovered := (i + 1) - finalPts - pendPts; uncovered > m {
					t.Fatalf("trial %d %s (%s, m=%d): %d consumed points invisible after point %d",
						trial, name, shape, m, uncovered, i)
				}
			}
		}
	}
}

// TestOracleRejectionLeavesStateIntact drives the error paths the
// corpus cannot reach by construction — duplicate and regressing
// timestamps, NaN and Inf coordinates — and asserts the filter keeps
// working (and keeps its guarantee) after each rejection.
func TestOracleRejectionLeavesStateIntact(t *testing.T) {
	eps := []float64{0.5}
	mk := map[string]func() (core.Filter, error){
		"cache":  func() (core.Filter, error) { return core.NewCache(eps) },
		"linear": func() (core.Filter, error) { return core.NewLinear(eps) },
		"swing":  func() (core.Filter, error) { return core.NewSwing(eps) },
		"slide":  func() (core.Filter, error) { return core.NewSlide(eps) },
	}
	bad := []struct {
		name string
		p    core.Point
		want error
	}{
		{"duplicate-timestamp", core.Point{T: 4, X: []float64{1}}, core.ErrTimeOrder},
		{"regressing-timestamp", core.Point{T: 0.5, X: []float64{1}}, core.ErrTimeOrder},
		{"nan-value", core.Point{T: 4.5, X: []float64{math.NaN()}}, core.ErrNotFinite},
		{"inf-value", core.Point{T: 4.5, X: []float64{math.Inf(1)}}, core.ErrNotFinite},
		{"nan-time", core.Point{T: math.NaN(), X: []float64{1}}, core.ErrNotFinite},
		{"wrong-dim", core.Point{T: 4.5, X: []float64{1, 2}}, core.ErrDimension},
	}
	for name, mkFilter := range mk {
		f, err := mkFilter()
		if err != nil {
			t.Fatal(err)
		}
		signal := []core.Point{}
		var segs []core.Segment
		push := func(p core.Point) {
			out, err := f.Push(p)
			if err != nil {
				t.Fatalf("%s: valid point rejected after an error: %v", name, err)
			}
			signal = append(signal, p)
			segs = append(segs, out...)
		}
		for i := 0; i < 5; i++ {
			push(core.Point{T: float64(i), X: []float64{math.Sin(float64(i))}})
		}
		for _, b := range bad {
			if _, err := f.Push(b.p); !errors.Is(err, b.want) {
				t.Fatalf("%s: %s: err = %v, want %v", name, b.name, err, b.want)
			}
			// The rejection must not have consumed state: the next valid
			// point still flows.
			push(core.Point{T: signal[len(signal)-1].T + 1, X: []float64{math.Sin(signal[len(signal)-1].T + 1)}})
		}
		out, err := f.Finish()
		if err != nil {
			t.Fatalf("%s: finish: %v", name, err)
		}
		segs = append(segs, out...)
		checkReconstruction(t, name+"/after-rejections", signal, segs, eps[0])
	}
}
