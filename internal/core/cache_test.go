package core

import (
	"math"
	"testing"
)

func pts1(vals ...float64) []Point {
	ps := make([]Point, len(vals))
	for i, v := range vals {
		ps[i] = Point{T: float64(i), X: []float64{v}}
	}
	return ps
}

func TestCacheLastBasic(t *testing.T) {
	f, err := NewCache([]float64{1})
	if err != nil {
		t.Fatal(err)
	}
	// 0, 0.5, 0.9 fit around 0; 2.5 violates; 2.6 fits around 2.5.
	segs, err := Run(f, pts1(0, 0.5, 0.9, 2.5, 2.6))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 {
		t.Fatalf("got %d segments, want 2", len(segs))
	}
	if segs[0].X0[0] != 0 || segs[0].T0 != 0 || segs[0].T1 != 2 || segs[0].Points != 3 {
		t.Fatalf("segment 0 = %+v", segs[0])
	}
	if segs[1].X0[0] != 2.5 || segs[1].Points != 2 {
		t.Fatalf("segment 1 = %+v", segs[1])
	}
	if st := f.Stats(); st.Recordings != 2 || st.Intervals != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheLastPredictsLastRecording(t *testing.T) {
	// The prediction is the first point of the interval, not a running
	// value: 0, 0.9, 1.8 — the third point is 1.8 away from the cached 0,
	// so it must violate even though each step is only 0.9.
	f, _ := NewCache([]float64{1})
	segs, err := Run(f, pts1(0, 0.9, 1.8))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 {
		t.Fatalf("got %d segments, want 2 (drift must violate)", len(segs))
	}
}

func TestCacheMidrange(t *testing.T) {
	f, _ := NewCache([]float64{0.5}, WithCacheMode(CacheMidrange))
	// Range of {0, 0.6, 1.0} is 1.0 ≤ 2ε, so all three fit; 2.0 breaks it.
	segs, err := Run(f, pts1(0, 0.6, 1.0, 2.0))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 {
		t.Fatalf("got %d segments, want 2", len(segs))
	}
	if got := segs[0].X0[0]; got != 0.5 {
		t.Fatalf("midrange value = %v, want 0.5", got)
	}
	if f.Mode() != CacheMidrange {
		t.Fatalf("mode = %v", f.Mode())
	}
}

func TestCacheMidrangeBeatsLastOnOscillation(t *testing.T) {
	// Oscillation between 0 and 1.5 with ε = 0.8: last-value caches 0 and
	// rejects 1.6-distance jumps... here |1.5−0| = 1.5 > 0.8 so last-value
	// splits, while midrange holds the band [0, 1.5] (range 1.5 ≤ 1.6).
	signal := pts1(0, 1.5, 0, 1.5, 0, 1.5)
	last, _ := NewCache([]float64{0.8})
	mid, _ := NewCache([]float64{0.8}, WithCacheMode(CacheMidrange))
	segsLast, err := Run(last, signal)
	if err != nil {
		t.Fatal(err)
	}
	segsMid, err := Run(mid, signal)
	if err != nil {
		t.Fatal(err)
	}
	if len(segsMid) >= len(segsLast) {
		t.Fatalf("midrange (%d segs) should beat last-value (%d segs) here",
			len(segsMid), len(segsLast))
	}
	if len(segsMid) != 1 {
		t.Fatalf("midrange segments = %d, want 1", len(segsMid))
	}
}

func TestCacheMean(t *testing.T) {
	f, _ := NewCache([]float64{0.5}, WithCacheMode(CacheMean))
	// Mean of {0, 0.5, 1.0} is 0.5; max deviation 0.5 ≤ ε: one interval.
	segs, err := Run(f, pts1(0, 0.5, 1.0))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("got %d segments, want 1", len(segs))
	}
	if got := segs[0].X0[0]; got != 0.5 {
		t.Fatalf("mean value = %v, want 0.5", got)
	}
}

func TestCacheMeanRejectsSkew(t *testing.T) {
	f, _ := NewCache([]float64{0.5}, WithCacheMode(CacheMean))
	// {0, 0, 0, 1} has mean 0.25 but the 1 is 0.75 > ε from it.
	segs, err := Run(f, pts1(0, 0, 0, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 {
		t.Fatalf("got %d segments, want 2", len(segs))
	}
}

func TestCacheMultiDimAnyDimensionViolates(t *testing.T) {
	f, _ := NewCache([]float64{1, 1})
	signal := []Point{
		{T: 0, X: []float64{0, 0}},
		{T: 1, X: []float64{0.5, 0.5}}, // fits both
		{T: 2, X: []float64{0.5, 5}},   // dim 1 violates
	}
	segs, err := Run(f, signal)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 {
		t.Fatalf("got %d segments, want 2", len(segs))
	}
}

func TestCacheZeroEpsilon(t *testing.T) {
	f, _ := NewCache([]float64{0})
	segs, err := Run(f, pts1(1, 1, 1, 2, 2))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 2 {
		t.Fatalf("ε=0: got %d segments, want 2 (exact runs only)", len(segs))
	}
}

func TestCacheModeString(t *testing.T) {
	if CacheLast.String() != "cache-last" ||
		CacheMidrange.String() != "cache-midrange" ||
		CacheMean.String() != "cache-mean" ||
		CacheMode(42).String() != "cache-unknown" {
		t.Fatal("CacheMode.String mismatch")
	}
}

func TestCacheSinglePoint(t *testing.T) {
	f, _ := NewCache([]float64{1})
	segs, err := Run(f, pts1(3.25))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 || segs[0].T0 != 0 || segs[0].T1 != 0 || segs[0].X0[0] != 3.25 {
		t.Fatalf("segments = %+v", segs)
	}
	if st := f.Stats(); st.Recordings != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheGuaranteeTightBoundary(t *testing.T) {
	// A point exactly ε away must be absorbed (the bound is inclusive).
	f, _ := NewCache([]float64{1})
	segs, err := Run(f, pts1(0, 1, -1))
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 1 {
		t.Fatalf("got %d segments, want 1", len(segs))
	}
	if math.Abs(segs[0].X0[0]) > 1 {
		t.Fatalf("recorded value %v farther than ε from extremes", segs[0].X0[0])
	}
}
