package core

import "math"

// Decimator is the graceful-degradation pre-filter: under overload the
// sender drops every k-th point *before* the PLA filter, so the segment
// stream stays a valid piece-wise linear approximation — of a thinner
// point set — instead of losing whole intervals to queue drops. The
// precision cost is measured, not guessed: for every dropped point the
// decimator records its deviation from the chord between its kept
// neighbours, and the stream's honest error bound becomes
//
//	ε_eff = ε + max chord deviation
//
// (at a dropped point's time both the filter reconstruction and the
// chord are within ε of the kept endpoints they interpolate, so the
// reconstruction is within ε + deviation of the dropped sample).
//
// A stride of 0 or 1 passes everything through; k ≥ 2 drops every k-th
// offered point. Drops are never consecutive and the first point after
// a gap is always kept, so at most one dropped point is pending a right
// neighbour at a time. Not safe for concurrent use: Offer, SetStride
// and the accessors must run on the sender's goroutine.
type Decimator struct {
	dim    int
	stride int
	n      int       // points kept since the last drop
	shed   uint64    // total points dropped, lifetime
	dev    []float64 // per-dim max chord deviation of dropped points

	lastT float64 // last kept point (left chord endpoint)
	lastX []float64
	have  bool

	pendT float64 // dropped point awaiting its right neighbour
	pendX []float64
	pend  bool
}

// NewDecimator returns a pass-through decimator (stride 0) for a
// dim-dimensional stream. All buffers are allocated up front; Offer
// never allocates.
func NewDecimator(dim int) *Decimator {
	return &Decimator{
		dim:   dim,
		dev:   make([]float64, dim),
		lastX: make([]float64, dim),
		pendX: make([]float64, dim),
	}
}

// SetStride changes the decimation stride: 0 (or 1) stops decimating,
// k ≥ 2 drops every k-th offered point from now on. Negative strides
// are ignored.
func (d *Decimator) SetStride(k int) {
	if k < 0 || k == 1 {
		return
	}
	d.stride = k
}

// Stride returns the current decimation stride.
func (d *Decimator) Stride() int { return d.stride }

// Shed returns how many points have been dropped, lifetime.
func (d *Decimator) Shed() uint64 { return d.shed }

// Deviation returns the per-dimension maximum chord deviation observed
// over every dropped point so far (monotone; do not modify). Zero while
// nothing was dropped.
func (d *Decimator) Deviation() []float64 { return d.dev }

// Offer presents the next point. It returns true when the point must be
// pushed into the filter, false when the decimator dropped it (the
// caller skips the push). Points must arrive in increasing time order,
// as the downstream filter requires anyway.
func (d *Decimator) Offer(p Point) bool {
	if d.pend {
		d.settle(p)
	}
	k := d.stride
	if k < 2 {
		d.keep(p)
		return true
	}
	d.n++
	if d.n >= k && d.have {
		// Drop the k-th point — but never before a left neighbour
		// exists, so every dropped point sits between two kept ones.
		d.n = 0
		d.shed++
		d.pend = true
		d.pendT = p.T
		copy(d.pendX, p.X)
		return false
	}
	d.keep(p)
	return true
}

// TakePending returns and clears a dropped point still awaiting its
// right neighbour, un-counting it from the shed total. At stream end
// the sender pushes it back into the filter — the stream keeps its true
// last point instead of charging a flat-extrapolation deviation for it.
// Prefer this over Flush when re-pushing is possible.
func (d *Decimator) TakePending() (Point, bool) {
	if !d.pend {
		return Point{}, false
	}
	d.pend = false
	d.shed--
	p := Point{T: d.pendT, X: d.pendX}
	d.keep(p)
	return p, true
}

// Flush settles a pending dropped point that will never get a right
// neighbour (stream end): its deviation is measured against the last
// kept value held flat. Call before finishing the filter when the point
// cannot be re-pushed (see TakePending).
func (d *Decimator) Flush() {
	if !d.pend {
		return
	}
	for i := 0; i < d.dim && i < len(d.pendX); i++ {
		if dv := math.Abs(d.pendX[i] - d.lastX[i]); dv > d.dev[i] {
			d.dev[i] = dv
		}
	}
	d.pend = false
}

// keep records p as the newest kept point.
func (d *Decimator) keep(p Point) {
	d.lastT = p.T
	copy(d.lastX, p.X)
	d.have = true
}

// settle measures the pending dropped point against the chord from the
// last kept point to q (the next kept point) and folds the deviation
// into the running per-dimension maxima.
func (d *Decimator) settle(q Point) {
	span := q.T - d.lastT
	for i := 0; i < d.dim && i < len(q.X); i++ {
		c := d.lastX[i]
		if span > 0 {
			c += (d.pendT - d.lastT) / span * (q.X[i] - d.lastX[i])
		}
		if dv := math.Abs(d.pendX[i] - c); dv > d.dev[i] {
			d.dev[i] = dv
		}
	}
	d.pend = false
}
