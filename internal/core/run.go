package core

// Run pushes every point of signal through f in order, finishes the
// filter, and returns the complete approximation.
func Run(f Filter, signal []Point) ([]Segment, error) {
	var segs []Segment
	for _, p := range signal {
		out, err := f.Push(p)
		if err != nil {
			return nil, err
		}
		segs = append(segs, out...)
	}
	out, err := f.Finish()
	if err != nil {
		return nil, err
	}
	return append(segs, out...), nil
}
