package core

// CacheMode selects how the cache filter chooses the constant value it
// records for each filtering interval.
type CacheMode int

const (
	// CacheLast is the basic cache filter of the paper (Olston et al.):
	// it predicts that each incoming point equals the last recorded one
	// and records a violating point as the new prediction.
	CacheLast CacheMode = iota
	// CacheMidrange is the PMC-MR variant (Lazaridis & Mehrotra): an
	// interval absorbs points while its per-dimension range stays within
	// 2ε and records the midrange of each dimension.
	CacheMidrange
	// CacheMean is the PMC-MEAN variant: an interval absorbs points while
	// the running mean stays within ε of every absorbed point and records
	// the mean.
	CacheMean
)

// String returns the mode's name.
func (m CacheMode) String() string {
	switch m {
	case CacheLast:
		return "cache-last"
	case CacheMidrange:
		return "cache-midrange"
	case CacheMean:
		return "cache-mean"
	default:
		return "cache-unknown"
	}
}

// Cache is the piece-wise constant baseline filter (Section 2.2).
// Create one with NewCache; the zero value is not usable.
type Cache struct {
	base
	mode CacheMode

	haveInterval bool
	startT       float64
	endT         float64
	count        int
	val          []float64 // CacheLast: the recorded prediction
	min, max     []float64
	sum          []float64
}

// CacheOption customises a Cache at construction.
type CacheOption func(*Cache)

// WithCacheMode selects the constant-value rule; the default is CacheLast.
func WithCacheMode(m CacheMode) CacheOption {
	return func(c *Cache) { c.mode = m }
}

// NewCache returns a cache filter with per-dimension precision widths eps.
func NewCache(eps []float64, opts ...CacheOption) (*Cache, error) {
	b, err := newBase(eps)
	if err != nil {
		return nil, err
	}
	c := &Cache{
		base: b,
		val:  make([]float64, b.dim),
		min:  make([]float64, b.dim),
		max:  make([]float64, b.dim),
		sum:  make([]float64, b.dim),
	}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// Mode returns the filter's value-selection mode.
func (c *Cache) Mode() CacheMode { return c.mode }

// Push consumes one point. It returns the finished interval's segment
// when the point violates the current prediction.
func (c *Cache) Push(p Point) ([]Segment, error) {
	if err := c.admit(p); err != nil {
		return nil, err
	}
	if !c.haveInterval {
		c.open(p)
		return nil, nil
	}
	if c.fits(p) {
		c.absorb(p)
		return nil, nil
	}
	seg := c.close()
	c.open(p)
	return []Segment{seg}, nil
}

// Finish emits the last interval's segment.
func (c *Cache) Finish() ([]Segment, error) {
	if c.finished {
		return nil, ErrFinished
	}
	c.finished = true
	if !c.haveInterval {
		return nil, nil
	}
	seg := c.close()
	return []Segment{seg}, nil
}

// fits reports whether p can join the current interval in every dimension.
func (c *Cache) fits(p Point) bool {
	for i, x := range p.X {
		switch c.mode {
		case CacheLast:
			if x > c.val[i]+c.eps[i] || x < c.val[i]-c.eps[i] {
				return false
			}
		case CacheMidrange:
			lo, hi := c.min[i], c.max[i]
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
			if hi-lo > 2*c.eps[i] {
				return false
			}
		case CacheMean:
			lo, hi := c.min[i], c.max[i]
			if x < lo {
				lo = x
			}
			if x > hi {
				hi = x
			}
			mean := (c.sum[i] + x) / float64(c.count+1)
			if hi-mean > c.eps[i] || mean-lo > c.eps[i] {
				return false
			}
		}
	}
	return true
}

func (c *Cache) open(p Point) {
	c.haveInterval = true
	c.startT, c.endT = p.T, p.T
	c.count = 1
	for i, x := range p.X {
		c.val[i] = x
		c.min[i] = x
		c.max[i] = x
		c.sum[i] = x
	}
}

func (c *Cache) absorb(p Point) {
	c.endT = p.T
	c.count++
	for i, x := range p.X {
		if x < c.min[i] {
			c.min[i] = x
		}
		if x > c.max[i] {
			c.max[i] = x
		}
		c.sum[i] += x
	}
}

// close finalizes the current interval into a horizontal segment.
func (c *Cache) close() Segment {
	v := make([]float64, c.dim)
	for i := range v {
		switch c.mode {
		case CacheLast:
			v[i] = c.val[i]
		case CacheMidrange:
			v[i] = (c.min[i] + c.max[i]) / 2
		case CacheMean:
			v[i] = c.sum[i] / float64(c.count)
		}
	}
	seg := Segment{
		T0: c.startT, T1: c.endT,
		X0: v, X1: v,
		Connected: false,
		Points:    c.count,
	}
	c.haveInterval = false
	c.stats.Intervals++
	c.emit(seg, true)
	return seg
}
