// Package core implements the online piece-wise linear approximation
// filters of Elmeleegy, Elmagarmid, Cecchet, Aref and Zwaenepoel,
// "Online Piece-wise Linear Approximation of Numerical Streams with
// Precision Guarantees" (VLDB 2009):
//
//   - Swing filter (Section 3): connected line segments, O(1) time and
//     space per data point.
//   - Slide filter (Section 4): mostly disconnected line segments,
//     O(m_H) per point where m_H is the size of the convex hull of the
//     current filtering interval (empirically near-constant).
//
// plus the two earlier approaches the paper compares against
// (Section 2.2):
//
//   - Cache filter: piece-wise constant prediction, with the basic
//     last-value mode and the midrange / mean variants of Lazaridis &
//     Mehrotra (PMC-MR, PMC-MEAN).
//   - Linear filter: a single candidate line fixed by the first two
//     points of each segment, in connected and disconnected variants.
//
// All filters consume a stream of d-dimensional points with strictly
// increasing timestamps and guarantee, per dimension i, that every
// consumed point lies within ε_i (L∞) of the emitted approximation
// (Theorems 3.1 and 4.1 of the paper). A new segment starts as soon as
// any one dimension would violate its bound.
//
// Filters optionally enforce the paper's m_max_lag bound: once a
// filtering interval spans that many points, the candidate set is
// collapsed to the single mean-square-error-optimal line, the receiver
// is updated, and the filter degrades to a plain linear filter until the
// interval ends (Sections 3.3 and 4.3).
package core
