package core_test

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"github.com/pla-go/pla/internal/core"
	"github.com/pla-go/pla/internal/recon"
)

// genSignal produces a randomized test signal of the given dimensionality
// with one of several shapes, on strictly increasing (sometimes irregular)
// timestamps.
func genSignal(rng *rand.Rand, n, dim int) []core.Point {
	shape := rng.Intn(5)
	irregular := rng.Intn(2) == 1
	quantize := rng.Intn(3) == 0
	pts := make([]core.Point, n)
	tm := rng.Float64() * 10
	state := make([]float64, dim)
	for i := range state {
		state[i] = rng.NormFloat64() * 5
	}
	for j := 0; j < n; j++ {
		if irregular {
			tm += 0.05 + rng.Float64()*2
		} else {
			tm += 1
		}
		x := make([]float64, dim)
		for i := 0; i < dim; i++ {
			switch shape {
			case 0: // random walk
				state[i] += rng.NormFloat64()
				x[i] = state[i]
			case 1: // sine + noise
				x[i] = 8*math.Sin(tm/7+float64(i)) + 0.5*rng.NormFloat64()
			case 2: // steps
				x[i] = float64((j/17)%5) * 4
			case 3: // trend + spikes
				x[i] = 0.3 * tm
				if rng.Intn(23) == 0 {
					x[i] += rng.NormFloat64() * 30
				}
			default: // white noise
				x[i] = rng.NormFloat64() * 3
			}
			if quantize {
				x[i] = math.Round(x[i]*10) / 10
			}
		}
		pts[j] = core.Point{T: tm, X: x}
	}
	return pts
}

// allFilters returns one instance of every filter configuration under a
// common name, for the given dimensionality and ε.
func allFilters(t *testing.T, eps []float64) map[string]core.Filter {
	t.Helper()
	mk := map[string]func() (core.Filter, error){
		"cache-last":     func() (core.Filter, error) { return core.NewCache(eps) },
		"cache-midrange": func() (core.Filter, error) { return core.NewCache(eps, core.WithCacheMode(core.CacheMidrange)) },
		"cache-mean":     func() (core.Filter, error) { return core.NewCache(eps, core.WithCacheMode(core.CacheMean)) },
		"linear":         func() (core.Filter, error) { return core.NewLinear(eps) },
		"linear-disc":    func() (core.Filter, error) { return core.NewLinear(eps, core.WithDisconnectedSegments()) },
		"swing":          func() (core.Filter, error) { return core.NewSwing(eps) },
		"swing-lag16":    func() (core.Filter, error) { return core.NewSwing(eps, core.WithSwingMaxLag(16)) },
		"slide":          func() (core.Filter, error) { return core.NewSlide(eps) },
		"slide-nohull":   func() (core.Filter, error) { return core.NewSlide(eps, core.WithHullOptimization(false)) },
		"slide-lag16":    func() (core.Filter, error) { return core.NewSlide(eps, core.WithSlideMaxLag(16)) },
	}
	out := make(map[string]core.Filter, len(mk))
	for name, f := range mk {
		fl, err := f()
		if err != nil {
			t.Fatalf("constructing %s: %v", name, err)
		}
		out[name] = fl
	}
	return out
}

// TestPrecisionGuaranteeProperty mechanises Theorems 3.1 and 4.1 (and the
// analogous folklore results for the baselines): for every filter, every
// signal shape, every dimensionality and every ε, each original point is
// within ε of the reconstruction.
func TestPrecisionGuaranteeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(2009))
	const trials = 120
	for trial := 0; trial < trials; trial++ {
		dim := 1 + rng.Intn(3)
		n := 50 + rng.Intn(300)
		signal := genSignal(rng, n, dim)
		eps := make([]float64, dim)
		for i := range eps {
			eps[i] = 0.05 + rng.Float64()*math.Pow(10, float64(rng.Intn(3))-1)
		}
		for name, f := range allFilters(t, eps) {
			segs, err := core.Run(f, signal)
			if err != nil {
				t.Fatalf("trial %d %s: run: %v", trial, name, err)
			}
			model, err := recon.NewModel(segs)
			if err != nil {
				t.Fatalf("trial %d %s: model: %v", trial, name, err)
			}
			if err := recon.CheckPrecision(signal, model, eps, 1e-6); err != nil {
				t.Fatalf("trial %d %s (dim=%d, n=%d, ε=%v): %v", trial, name, dim, n, eps, err)
			}
		}
	}
}

// TestStatsConsistencyProperty checks the bookkeeping invariants shared by
// all filters: segment and point counts match, and the recording counter
// agrees with the paper's accounting formula applied to the emitted
// segments (plus one per lag flush).
func TestStatsConsistencyProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 60; trial++ {
		dim := 1 + rng.Intn(2)
		signal := genSignal(rng, 40+rng.Intn(200), dim)
		eps := core.UniformEpsilon(dim, 0.1+rng.Float64()*3)
		for name, f := range allFilters(t, eps) {
			segs, err := core.Run(f, signal)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			st := f.Stats()
			if st.Points != len(signal) {
				t.Fatalf("%s: Points = %d, want %d", name, st.Points, len(signal))
			}
			if st.Segments != len(segs) {
				t.Fatalf("%s: Segments = %d, want %d", name, st.Segments, len(segs))
			}
			constant := false
			if _, isCache := f.(*core.Cache); isCache {
				constant = true
			}
			want := core.CountRecordings(segs, constant) + st.LagFlushes
			if st.Recordings != want {
				t.Fatalf("%s: Recordings = %d, want %d (+%d lag flushes)",
					name, st.Recordings, want, st.LagFlushes)
			}
			covered := 0
			for _, s := range segs {
				covered += s.Points
			}
			if covered != len(signal) {
				t.Fatalf("%s: segments claim %d points, want %d", name, covered, len(signal))
			}
		}
	}
}

// TestConnectedFlagsConsistentProperty verifies that a Connected segment
// really starts at its predecessor's end, for every filter and workload.
func TestConnectedFlagsConsistentProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(4242))
	for trial := 0; trial < 40; trial++ {
		dim := 1 + rng.Intn(2)
		signal := genSignal(rng, 150, dim)
		eps := core.UniformEpsilon(dim, 0.2+rng.Float64())
		for name, f := range allFilters(t, eps) {
			segs, err := core.Run(f, signal)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			for i, s := range segs {
				if !s.Connected {
					continue
				}
				if i == 0 {
					t.Fatalf("%s: first segment marked connected", name)
				}
				prev := segs[i-1]
				if s.T0 != prev.T1 {
					t.Fatalf("%s: segment %d connected but starts at %v, prev ends at %v",
						name, i, s.T0, prev.T1)
				}
				for d := 0; d < dim; d++ {
					if math.Abs(s.X0[d]-prev.X1[d]) > 1e-9*(1+math.Abs(s.X0[d])) {
						t.Fatalf("%s: segment %d connected but knot values differ in dim %d", name, i, d)
					}
				}
			}
		}
	}
}

// TestSlideHullEquivalenceProperty re-checks Lemma 4.3 end-to-end on
// random workloads: with and without the hull optimization the slide
// filter emits the same approximation.
func TestSlideHullEquivalenceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 40; trial++ {
		dim := 1 + rng.Intn(2)
		signal := genSignal(rng, 100+rng.Intn(200), dim)
		eps := core.UniformEpsilon(dim, 0.1+rng.Float64()*4)
		a, _ := core.NewSlide(eps)
		b, _ := core.NewSlide(eps, core.WithHullOptimization(false))
		sa, err := core.Run(a, signal)
		if err != nil {
			t.Fatal(err)
		}
		sb, err := core.Run(b, signal)
		if err != nil {
			t.Fatal(err)
		}
		if len(sa) != len(sb) {
			t.Fatalf("trial %d: %d vs %d segments", trial, len(sa), len(sb))
		}
		for i := range sa {
			if sa[i].Connected != sb[i].Connected {
				t.Fatalf("trial %d: segment %d connectivity differs", trial, i)
			}
			if math.Abs(sa[i].T0-sb[i].T0) > 1e-9 || math.Abs(sa[i].T1-sb[i].T1) > 1e-9 {
				t.Fatalf("trial %d: segment %d spans differ", trial, i)
			}
		}
		if a.Stats().Recordings != b.Stats().Recordings {
			t.Fatalf("trial %d: recordings differ", trial)
		}
	}
}

// TestCompressionOrderingOnPaperWorkload is a soft sanity check of the
// paper's headline claim on its own workload family (random walks with
// moderate steps): the slide filter should need no more recordings than
// the linear filter, and the swing filter should generally sit between.
// The claim is checked in aggregate, not per trial, since no per-signal
// dominance is guaranteed.
func TestCompressionOrderingOnPaperWorkload(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var swingTotal, slideTotal, linearTotal, cacheTotal int
	for trial := 0; trial < 20; trial++ {
		n := 600
		pts := make([]core.Point, n)
		v := 0.0
		for j := 0; j < n; j++ {
			// p = 0.5, delta ~ U(0, 4ε) with ε = 1.
			d := rng.Float64() * 4
			if rng.Intn(2) == 0 {
				d = -d
			}
			v += d
			pts[j] = core.Point{T: float64(j), X: []float64{v}}
		}
		eps := []float64{1}
		for name, f := range map[string]core.Filter{
			"swing":  mustFilter(core.NewSwing(eps)),
			"slide":  mustFilter(core.NewSlide(eps)),
			"linear": mustFilter(core.NewLinear(eps)),
			"cache":  mustFilter(core.NewCache(eps)),
		} {
			if _, err := core.Run(f, pts); err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			switch name {
			case "swing":
				swingTotal += f.Stats().Recordings
			case "slide":
				slideTotal += f.Stats().Recordings
			case "linear":
				linearTotal += f.Stats().Recordings
			case "cache":
				cacheTotal += f.Stats().Recordings
			}
		}
	}
	if slideTotal > linearTotal {
		t.Fatalf("slide (%d recordings) worse than linear (%d) in aggregate", slideTotal, linearTotal)
	}
	if swingTotal > linearTotal {
		t.Fatalf("swing (%d recordings) worse than linear (%d) in aggregate", swingTotal, linearTotal)
	}
	if slideTotal > swingTotal {
		t.Fatalf("slide (%d recordings) worse than swing (%d) in aggregate", slideTotal, swingTotal)
	}
	t.Logf("aggregate recordings: slide=%d swing=%d linear=%d cache=%d",
		slideTotal, swingTotal, linearTotal, cacheTotal)
}

func mustFilter[F core.Filter](f F, err error) F {
	if err != nil {
		panic(fmt.Sprintf("filter construction: %v", err))
	}
	return f
}
