package core

import (
	"math"
	"math/rand"
	"testing"
)

// pendingSignal is a deterministic SST-like series: slow oscillation
// plus noise, so intervals of many lengths occur (internal/gen cannot be
// imported here — it depends on this package).
func pendingSignal(n int, seed int64) []Point {
	rng := rand.New(rand.NewSource(seed))
	out := make([]Point, n)
	for i := range out {
		t := float64(i)
		x := 12 + 3*math.Sin(t/40) + 0.5*math.Sin(t/7) + 0.05*rng.NormFloat64()
		out[i] = Point{T: t, X: []float64{x}}
	}
	return out
}

// pendingFilter is the provisional-update surface the transport layer
// relies on.
type pendingFilter interface {
	Filter
	Pending() []Segment
}

// checkPending verifies the two invariants provisional updates rest on,
// at one instant of a stream: the finalized and pending segments
// together account for every consumed point, and every raw point whose
// time a pending segment covers is within ε of that segment.
func checkPending(t *testing.T, f pendingFilter, finalPts int, seen []Point, eps []float64) {
	t.Helper()
	pend := f.Pending()
	got := finalPts
	for _, s := range pend {
		if !s.Provisional {
			t.Fatalf("Pending returned a non-provisional segment %+v", s)
		}
		got += s.Points
	}
	if got != len(seen) {
		t.Fatalf("finalized %d + pending cover %d of %d consumed points", finalPts, got-finalPts, len(seen))
	}
	for _, p := range seen {
		for _, s := range pend {
			if p.T < s.T0 || p.T > s.T1 {
				continue
			}
			for d := range eps {
				if diff := math.Abs(s.At(d, p.T) - p.X[d]); diff > eps[d]+1e-9 {
					t.Fatalf("pending segment strays %v from covered point at t=%v (ε=%v)", diff, p.T, eps[d])
				}
			}
		}
	}
}

func testPendingInvariants(t *testing.T, mk func() (pendingFilter, error), eps []float64) {
	t.Helper()
	signal := pendingSignal(900, 23)
	f, err := mk()
	if err != nil {
		t.Fatal(err)
	}
	finalPts := 0
	for i, p := range signal {
		segs, err := f.Push(p)
		if err != nil {
			t.Fatal(err)
		}
		for _, s := range segs {
			finalPts += s.Points
		}
		if i%7 == 0 {
			checkPending(t, f, finalPts, signal[:i+1], eps)
		}
	}
	checkPending(t, f, finalPts, signal, eps)
	final, err := f.Finish()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range final {
		finalPts += s.Points
	}
	if finalPts != len(signal) {
		t.Fatalf("finalized %d of %d points", finalPts, len(signal))
	}
	if pend := f.Pending(); pend != nil {
		t.Fatalf("Pending after Finish returned %d segments", len(pend))
	}
}

func TestSwingPendingInvariants(t *testing.T) {
	eps := []float64{0.08}
	testPendingInvariants(t, func() (pendingFilter, error) { return NewSwing(eps) }, eps)
}

func TestSwingPendingInvariantsMaxLag(t *testing.T) {
	eps := []float64{0.08}
	testPendingInvariants(t, func() (pendingFilter, error) { return NewSwing(eps, WithSwingMaxLag(12)) }, eps)
}

func TestSlidePendingInvariants(t *testing.T) {
	eps := []float64{0.08}
	testPendingInvariants(t, func() (pendingFilter, error) { return NewSlide(eps) }, eps)
}

func TestSlidePendingInvariantsMaxLag(t *testing.T) {
	eps := []float64{0.08}
	testPendingInvariants(t, func() (pendingFilter, error) { return NewSlide(eps, WithSlideMaxLag(12)) }, eps)
}

// TestPendingFirstPoint pins the degenerate shapes: one point pending,
// and nothing pending before the stream starts.
func TestPendingFirstPoint(t *testing.T) {
	for _, mk := range []func() (pendingFilter, error){
		func() (pendingFilter, error) { return NewSwing([]float64{1}) },
		func() (pendingFilter, error) { return NewSlide([]float64{1}) },
	} {
		f, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		if pend := f.Pending(); pend != nil {
			t.Fatalf("empty filter pending: %v", pend)
		}
		if _, err := f.Push(Point{T: 1, X: []float64{5}}); err != nil {
			t.Fatal(err)
		}
		pend := f.Pending()
		if len(pend) != 1 || pend[0].Points != 1 || pend[0].T0 != 1 || pend[0].T1 != 1 {
			t.Fatalf("single-point pending: %+v", pend)
		}
		if pend[0].X0[0] != 5 || !pend[0].Provisional {
			t.Fatalf("single-point pending: %+v", pend[0])
		}
	}
}
