package sketch

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Binary layout of one summary (little-endian, no framing — the caller
// checksums the enclosing file):
//
//	eps   float64
//	slack float64
//	n     float64
//	count uvarint
//	count × { v, w, rmin, rmax float64 }
//
// Parsing validates the invariants a well-formed summary maintains
// (finite fields, positive weights, ordered values, monotone
// nondecreasing rank bounds within total weight), so a torn or
// hand-crafted blob is rejected instead of poisoning query answers.

// ErrCorrupt reports a summary blob that fails validation.
var ErrCorrupt = errors.New("sketch: corrupt summary encoding")

// maxEntries bounds how many entries ParseSummary accepts; the largest
// legitimate summaries (an uncompressed query-edge build) stay well
// under it.
const maxEntries = 1 << 20

// AppendBinary appends s's encoding to dst and returns the result.
func (s *Summary) AppendBinary(dst []byte) []byte {
	dst = appendFloat(dst, s.eps)
	dst = appendFloat(dst, s.slack)
	dst = appendFloat(dst, s.n)
	dst = binary.AppendUvarint(dst, uint64(len(s.entries)))
	for _, e := range s.entries {
		dst = appendFloat(dst, e.V)
		dst = appendFloat(dst, e.W)
		dst = appendFloat(dst, e.Rmin)
		dst = appendFloat(dst, e.Rmax)
	}
	return dst
}

// ParseSummary decodes one summary from the front of buf, returning the
// rest. It fails with ErrCorrupt on any malformed or invariant-breaking
// input.
func ParseSummary(buf []byte) (*Summary, []byte, error) {
	var s Summary
	var err error
	if s.eps, buf, err = takeFloat(buf); err != nil {
		return nil, nil, err
	}
	if s.slack, buf, err = takeFloat(buf); err != nil {
		return nil, nil, err
	}
	if s.n, buf, err = takeFloat(buf); err != nil {
		return nil, nil, err
	}
	count, m := binary.Uvarint(buf)
	if m <= 0 || count > maxEntries {
		return nil, nil, fmt.Errorf("%w: entry count", ErrCorrupt)
	}
	buf = buf[m:]
	if !finite(s.eps) || s.eps < 0 || !finite(s.slack) || s.slack < 0 || !finite(s.n) || s.n < 0 {
		return nil, nil, fmt.Errorf("%w: header fields", ErrCorrupt)
	}
	if count == 0 {
		return &s, buf, nil
	}
	s.entries = make([]Entry, count)
	for i := range s.entries {
		e := &s.entries[i]
		if e.V, buf, err = takeFloat(buf); err != nil {
			return nil, nil, err
		}
		if e.W, buf, err = takeFloat(buf); err != nil {
			return nil, nil, err
		}
		if e.Rmin, buf, err = takeFloat(buf); err != nil {
			return nil, nil, err
		}
		if e.Rmax, buf, err = takeFloat(buf); err != nil {
			return nil, nil, err
		}
		if !finite(e.V) || !finite(e.W) || !finite(e.Rmin) || !finite(e.Rmax) {
			return nil, nil, fmt.Errorf("%w: non-finite entry", ErrCorrupt)
		}
		if e.W <= 0 || e.Rmin < 0 || e.Rmax < e.Rmin || e.Rmax > s.n {
			return nil, nil, fmt.Errorf("%w: rank bounds", ErrCorrupt)
		}
		if i > 0 {
			prev := s.entries[i-1]
			if e.V <= prev.V || e.Rmin < prev.Rmin || e.Rmax < prev.Rmax {
				return nil, nil, fmt.Errorf("%w: entry order", ErrCorrupt)
			}
		}
	}
	return &s, buf, nil
}

func appendFloat(dst []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
}

func takeFloat(buf []byte) (float64, []byte, error) {
	if len(buf) < 8 {
		return 0, nil, fmt.Errorf("%w: truncated", ErrCorrupt)
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(buf)), buf[8:], nil
}

func finite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }

// AppendAggBinary appends a's encoding (eight fixed fields) to dst.
func AppendAggBinary(dst []byte, a Agg) []byte {
	dst = appendFloat(dst, a.Min)
	dst = appendFloat(dst, a.Max)
	dst = appendFloat(dst, a.Sum)
	dst = appendFloat(dst, a.Count)
	dst = appendFloat(dst, a.Covered)
	dst = binary.AppendUvarint(dst, uint64(a.Segments))
	return dst
}

// ParseAgg decodes one Agg from the front of buf, returning the rest.
func ParseAgg(buf []byte) (Agg, []byte, error) {
	var a Agg
	var err error
	if a.Min, buf, err = takeFloat(buf); err != nil {
		return a, nil, err
	}
	if a.Max, buf, err = takeFloat(buf); err != nil {
		return a, nil, err
	}
	if a.Sum, buf, err = takeFloat(buf); err != nil {
		return a, nil, err
	}
	if a.Count, buf, err = takeFloat(buf); err != nil {
		return a, nil, err
	}
	if a.Covered, buf, err = takeFloat(buf); err != nil {
		return a, nil, err
	}
	segs, m := binary.Uvarint(buf)
	if m <= 0 || segs > maxEntries {
		return a, nil, fmt.Errorf("%w: segment count", ErrCorrupt)
	}
	a.Segments = int(segs)
	return a, buf[m:], nil
}
