// Package sketch provides the segment-native query primitives: an
// ε-approximate mergeable quantile summary in the Greenwald–Khanna
// family, and exact closed-form aggregates over the uniform sample
// reconstruction of a piece-wise linear segment.
//
// The summary follows the MERGE/COMPRESS design popularised by the
// mergeable-summaries line of work (Greenwald–Khanna 2001; Agarwal et
// al. 2012) and the weighted adaptation used by gradient-boosting
// quantile streams: entries carry explicit rank bounds, MERGE combines
// two summaries with epsNew = max(eps1, eps2), and COMPRESS reduces a
// summary to b+1 entries at the cost of epsNew = epsOld + 1/b. Error is
// measured in rank space as a fraction of the total weight.
//
// Quantiles of a PLA archive are quantiles of values, and a segment's
// chord quantizes values when a long segment is folded into a bounded
// number of sketch entries. That residual is tracked separately, in
// value space, as the summary's Slack: any reported quantile band is
// already widened by it. The caller composes the final answer band by
// adding the series' filter ε on top.
package sketch

import (
	"math"
	"sort"
)

// Eps is the rank-error budget a freshly built window summary is
// compressed to: COMPRESS to CompressEntries+1 entries of an exact
// summary yields eps = 1/CompressEntries.
const (
	// CompressEntries is the b in "compress to b+1 entries".
	CompressEntries = 128
	// Eps is the rank-error fraction of a compressed window summary.
	Eps = 1.0 / CompressEntries
	// maxSegEntries bounds how many entries one segment contributes
	// when its samples are folded into a builder; beyond it the chord
	// is chunked and the quantization becomes value-space Slack.
	maxSegEntries = 64
)

// Entry is one retained value with its exact rank bounds: the
// cumulative weight of all items ≤ V lies in [Rmin, Rmax], and W of
// that weight sits exactly at V.
type Entry struct {
	V, W, Rmin, Rmax float64
}

// Summary is an ε-approximate quantile summary over weighted values.
// The zero value is an empty summary. Summaries are immutable once
// built except through Compress; Merge returns a new Summary.
type Summary struct {
	eps     float64 // rank-error fraction of total weight
	slack   float64 // value-space quantization residual
	n       float64 // total inserted weight
	entries []Entry // sorted by V; Rmin, Rmax nondecreasing
}

// Eps returns the summary's rank-error fraction.
func (s *Summary) Eps() float64 { return s.eps }

// Slack returns the value-space quantization residual.
func (s *Summary) Slack() float64 { return s.slack }

// N returns the total inserted weight.
func (s *Summary) N() float64 { return s.n }

// Len returns the number of retained entries.
func (s *Summary) Len() int { return len(s.entries) }

// Builder accumulates weighted values and bakes them into a Summary.
// It is the write side of the sketch: cheap appends, one sort at Build.
type Builder struct {
	vals  []Entry // V, W used; ranks assigned at Build
	slack float64
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder { return &Builder{} }

// Add records one value with the given weight (w > 0).
func (b *Builder) Add(v, w float64) {
	if w <= 0 || math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	b.vals = append(b.vals, Entry{V: v, W: w})
}

// widenSlack raises the builder's value-space residual.
func (b *Builder) widenSlack(s float64) {
	if s > b.slack {
		b.slack = s
	}
}

// Empty reports whether nothing has been added.
func (b *Builder) Empty() bool { return len(b.vals) == 0 }

// Build sorts the accumulated values into an exact summary (eps 0) and,
// when it holds more than CompressEntries+1 entries, compresses it to
// CompressEntries+1 for eps = Eps. The builder is reset.
func (b *Builder) Build() *Summary {
	s := b.buildExact()
	s.Compress(CompressEntries)
	return s
}

// BuildExact bakes the accumulated values without compressing — the
// shape used for query-edge segments, whose handful of samples are kept
// rank-exact. The builder is reset.
func (b *Builder) BuildExact() *Summary { return b.buildExact() }

func (b *Builder) buildExact() *Summary {
	vals := b.vals
	b.vals = nil
	slack := b.slack
	b.slack = 0
	if len(vals) == 0 {
		return &Summary{slack: slack}
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i].V < vals[j].V })
	// Coalesce equal values, then assign exact cumulative ranks.
	out := vals[:1]
	for _, e := range vals[1:] {
		if e.V == out[len(out)-1].V {
			out[len(out)-1].W += e.W
			continue
		}
		out = append(out, e)
	}
	cum := 0.0
	for i := range out {
		cum += out[i].W
		out[i].Rmin = cum
		out[i].Rmax = cum
	}
	return &Summary{n: cum, slack: slack, entries: out}
}

// Compress reduces the summary to at most b+1 entries, adding 1/b to
// its rank-error fraction. The first and last entries (the data min and
// max) are always retained, so extremes survive any compression chain.
// A summary already within b+1 entries is left untouched.
func (s *Summary) Compress(b int) {
	if b <= 0 || len(s.entries) <= b+1 {
		return
	}
	kept := s.entries[:0:0]
	kept = append(kept, s.entries[0])
	for j := 1; j < b; j++ {
		target := float64(j) / float64(b) * s.n
		i := sort.Search(len(s.entries), func(i int) bool {
			return mid(s.entries[i]) >= target
		})
		if i == len(s.entries) {
			i--
		}
		if i > 0 && target-mid(s.entries[i-1]) < mid(s.entries[i])-target {
			i--
		}
		if e := s.entries[i]; e.V > kept[len(kept)-1].V {
			kept = append(kept, e)
		}
	}
	if last := s.entries[len(s.entries)-1]; last.V > kept[len(kept)-1].V {
		kept = append(kept, last)
	}
	s.entries = kept
	s.eps += 1.0 / float64(b)
}

func mid(e Entry) float64 { return (e.Rmin + e.Rmax) / 2 }

// Merge combines two summaries into a new one covering both inputs'
// data with epsNew = max(eps1, eps2): every merged entry's rank bounds
// are recomputed exactly from the other summary's bounds, so no rank
// information is lost beyond what the inputs had already given up.
// Slack, like eps, is a max. Either input may be nil or empty.
func Merge(a, b *Summary) *Summary {
	if a == nil || len(a.entries) == 0 {
		if b == nil {
			return &Summary{}
		}
		out := *b
		if a != nil {
			out.eps = math.Max(out.eps, a.eps)
			out.slack = math.Max(out.slack, a.slack)
		}
		out.entries = append([]Entry(nil), b.entries...)
		return &out
	}
	if len(b.entries) == 0 {
		out := *a
		out.eps = math.Max(out.eps, b.eps)
		out.slack = math.Max(out.slack, b.slack)
		out.entries = append([]Entry(nil), a.entries...)
		return &out
	}
	out := &Summary{
		eps:     math.Max(a.eps, b.eps),
		slack:   math.Max(a.slack, b.slack),
		n:       a.n + b.n,
		entries: make([]Entry, 0, len(a.entries)+len(b.entries)),
	}
	i, j := 0, 0
	for i < len(a.entries) || j < len(b.entries) {
		var e Entry
		var other *Summary
		if j == len(b.entries) || (i < len(a.entries) && a.entries[i].V <= b.entries[j].V) {
			e, other = a.entries[i], b
			i++
		} else {
			e, other = b.entries[j], a
			j++
		}
		// Weight of the other summary's items ≤ e.V: at least the Rmin of
		// its last entry with value ≤ e.V; at most the weight strictly
		// below its first entry with value > e.V.
		oe := other.entries
		k := sort.Search(len(oe), func(k int) bool { return oe[k].V > e.V })
		if k > 0 {
			e.Rmin += oe[k-1].Rmin
		}
		if k < len(oe) {
			e.Rmax += oe[k].Rmax - oe[k].W
		} else {
			e.Rmax += other.n
		}
		if m := len(out.entries); m > 0 && out.entries[m-1].V == e.V {
			// Both inputs retained this value: coalesce, intersecting the
			// two rank intervals (each contains the true cumulative
			// weight at V, so the intersection is non-empty and tighter).
			prev := &out.entries[m-1]
			prev.W += e.W
			prev.Rmin = math.Max(prev.Rmin, e.Rmin)
			prev.Rmax = math.Min(prev.Rmax, e.Rmax)
			continue
		}
		out.entries = append(out.entries, e)
	}
	// Repair pass: for summaries describing real data every invariant
	// below already holds and this is a no-op, but inputs that merely
	// parse (a fuzzer's crafted blob) can carry mutually inconsistent
	// bounds; widen them so the merged summary keeps the encoding's
	// invariants instead of poisoning downstream consumers.
	loMin, loMax := 0.0, 0.0
	for i := range out.entries {
		e := &out.entries[i]
		e.Rmin = math.Max(e.Rmin, loMin)
		e.Rmax = math.Max(math.Max(e.Rmax, loMax), e.Rmin)
		loMin, loMax = e.Rmin, e.Rmax
	}
	return out
}

// Quantile is one answered quantile: the sketch's estimate plus the
// band [Lo, Hi] the true q-quantile of the inserted data is guaranteed
// to lie in (rank uncertainty translated to values, widened by Slack).
type Quantile struct {
	Q, Value, Lo, Hi float64
}

// Query answers the q-quantile (0 ≤ q ≤ 1) with its guaranteed band.
// An empty summary answers all-NaN.
func (s *Summary) Query(q float64) Quantile {
	if len(s.entries) == 0 || s.n <= 0 {
		nan := math.NaN()
		return Quantile{Q: q, Value: nan, Lo: nan, Hi: nan}
	}
	q = math.Min(math.Max(q, 0), 1)
	r := q * s.n
	band := s.eps * s.n
	es := s.entries
	// Estimate: the entry whose mid-rank is nearest the target.
	i := sort.Search(len(es), func(i int) bool { return mid(es[i]) >= r })
	if i == len(es) {
		i--
	}
	if i > 0 && r-mid(es[i-1]) < mid(es[i])-r {
		i--
	}
	ans := Quantile{Q: q, Value: es[i].V, Lo: es[0].V, Hi: es[len(es)-1].V}
	// Lower bound: the last entry that provably sits below every
	// admissible rank; upper bound symmetric. The data min and max are
	// always entries, so the fallbacks above are sound.
	if j := sort.Search(len(es), func(j int) bool { return es[j].Rmax >= r-band }); j > 0 {
		ans.Lo = es[j-1].V
	}
	if j := sort.Search(len(es), func(j int) bool { return es[j].Rmin > r+band }); j < len(es) {
		ans.Hi = es[j].V
	}
	ans.Lo -= s.slack
	ans.Hi += s.slack
	return ans
}
