package sketch

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"github.com/pla-go/pla/internal/core"
)

// exactQuantile returns the value at rank q·n of a weighted multiset.
func exactQuantile(vals []Entry, q float64) float64 {
	sorted := append([]Entry(nil), vals...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].V < sorted[j].V })
	total := 0.0
	for _, e := range sorted {
		total += e.W
	}
	target := q * total
	cum := 0.0
	for _, e := range sorted {
		cum += e.W
		if cum >= target {
			return e.V
		}
	}
	return sorted[len(sorted)-1].V
}

func checkBands(t *testing.T, s *Summary, vals []Entry, label string) {
	t.Helper()
	for _, q := range []float64{0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		got := s.Query(q)
		want := exactQuantile(vals, q)
		if !(got.Lo <= want && want <= got.Hi) {
			t.Errorf("%s: q=%v: true %v outside band [%v, %v] (est %v)",
				label, q, want, got.Lo, got.Hi, got.Value)
		}
		if got.Lo > got.Value || got.Value > got.Hi {
			t.Errorf("%s: q=%v: estimate %v outside its own band [%v, %v]",
				label, q, got.Value, got.Lo, got.Hi)
		}
	}
}

func TestSummaryExactSmall(t *testing.T) {
	b := NewBuilder()
	for _, v := range []float64{5, 1, 3, 2, 4} {
		b.Add(v, 1)
	}
	s := b.BuildExact()
	if s.Eps() != 0 || s.N() != 5 || s.Len() != 5 {
		t.Fatalf("exact build: eps=%v n=%v len=%d", s.Eps(), s.N(), s.Len())
	}
	for q, want := range map[float64]float64{0: 1, 0.5: 3, 1: 5} {
		if got := s.Query(q); got.Value != want {
			t.Errorf("q=%v: got %v want %v", q, got.Value, want)
		}
	}
}

func TestSummaryCompressedBands(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var vals []Entry
	b := NewBuilder()
	for i := 0; i < 20000; i++ {
		v := rng.NormFloat64() * 10
		vals = append(vals, Entry{V: v, W: 1})
		b.Add(v, 1)
	}
	s := b.Build()
	if s.Len() > CompressEntries+1 {
		t.Fatalf("compressed summary holds %d entries, want ≤ %d", s.Len(), CompressEntries+1)
	}
	if s.Eps() != Eps {
		t.Fatalf("eps = %v, want %v", s.Eps(), Eps)
	}
	checkBands(t, s, vals, "compressed")
}

func TestSummaryWeighted(t *testing.T) {
	b := NewBuilder()
	vals := []Entry{{V: 1, W: 90}, {V: 100, W: 10}}
	for _, e := range vals {
		b.Add(e.V, e.W)
	}
	s := b.BuildExact()
	if got := s.Query(0.5); got.Value != 1 {
		t.Errorf("median of skewed weights: got %v want 1", got.Value)
	}
	if got := s.Query(0.95); got.Value != 100 {
		t.Errorf("p95 of skewed weights: got %v want 100", got.Value)
	}
}

func TestMergeEpsIsMax(t *testing.T) {
	mk := func(seed int64, n int) (*Summary, []Entry) {
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder()
		var vals []Entry
		for i := 0; i < n; i++ {
			v := rng.Float64() * 1000
			vals = append(vals, Entry{V: v, W: 1})
			b.Add(v, 1)
		}
		return b.Build(), vals
	}
	a, va := mk(1, 5000)
	c, vc := mk(2, 300)
	m := Merge(a, c)
	if want := math.Max(a.Eps(), c.Eps()); m.Eps() != want {
		t.Fatalf("merged eps = %v, want max %v", m.Eps(), want)
	}
	if m.N() != a.N()+c.N() {
		t.Fatalf("merged n = %v, want %v", m.N(), a.N()+c.N())
	}
	checkBands(t, m, append(va, vc...), "merged")
}

func TestMergeOrderKeepsBound(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var parts []*Summary
	var all []Entry
	for p := 0; p < 6; p++ {
		b := NewBuilder()
		n := 100 + rng.Intn(4000)
		for i := 0; i < n; i++ {
			v := rng.NormFloat64()*float64(p+1) + float64(p*3)
			all = append(all, Entry{V: v, W: 1})
			b.Add(v, 1)
		}
		parts = append(parts, b.Build())
	}
	fold := func(order []int) *Summary {
		m := &Summary{}
		for _, i := range order {
			m = Merge(m, parts[i])
		}
		return m
	}
	left := fold([]int{0, 1, 2, 3, 4, 5})
	rev := fold([]int{5, 4, 3, 2, 1, 0})
	shuf := fold([]int{3, 0, 5, 1, 4, 2})
	// Pairwise tree merge, a different association entirely.
	tree := Merge(Merge(Merge(parts[0], parts[1]), Merge(parts[2], parts[3])),
		Merge(parts[4], parts[5]))
	for _, m := range []*Summary{left, rev, shuf, tree} {
		if m.Eps() != left.Eps() {
			t.Fatalf("merge order changed the bound: %v vs %v", m.Eps(), left.Eps())
		}
		if m.N() != left.N() {
			t.Fatalf("merge order changed n: %v vs %v", m.N(), left.N())
		}
		checkBands(t, m, all, "order")
	}
}

func TestMergeEmpty(t *testing.T) {
	b := NewBuilder()
	b.Add(3, 1)
	s := b.BuildExact()
	for _, m := range []*Summary{Merge(nil, s), Merge(s, &Summary{}), Merge(&Summary{}, s)} {
		if m.N() != 1 || m.Query(0.5).Value != 3 {
			t.Fatalf("merge with empty lost data: n=%v", m.N())
		}
	}
	if m := Merge(nil, nil); m.N() != 0 || !math.IsNaN(m.Query(0.5).Value) {
		t.Fatalf("merge of nils should be empty")
	}
}

func seg(t0, t1, x0, x1 float64, points int) core.Segment {
	return core.Segment{T0: t0, T1: t1, X0: []float64{x0}, X1: []float64{x1}, Points: points}
}

// bruteAgg folds the canonical samples one by one.
func bruteAgg(s core.Segment, dim int, t0, t1 float64) (Agg, bool) {
	lo, hi, _, _, ok := SegRange(s, dim, t0, t1)
	if !ok {
		return Agg{}, false
	}
	a := Agg{Min: math.Inf(1), Max: math.Inf(-1), Segments: 1,
		Covered: math.Min(s.T1, t1) - math.Max(s.T0, t0)}
	for i := lo; i <= hi; i++ {
		v := segValue(s, dim, i)
		a.Min = math.Min(a.Min, v)
		a.Max = math.Max(a.Max, v)
		a.Sum += v
		a.Count++
	}
	return a, true
}

func TestSegAggMatchesBrute(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 500; trial++ {
		s := seg(rng.Float64()*10, 10+rng.Float64()*90,
			rng.NormFloat64()*5, rng.NormFloat64()*5, 1+rng.Intn(200))
		t0 := s.T0 + (rng.Float64()*1.4-0.2)*(s.T1-s.T0)
		t1 := t0 + rng.Float64()*(s.T1-s.T0)*1.2
		got, gok := SegAgg(s, 0, t0, t1)
		want, wok := bruteAgg(s, 0, t0, t1)
		if gok != wok {
			t.Fatalf("trial %d: ok mismatch %v vs %v", trial, gok, wok)
		}
		if !gok {
			continue
		}
		if got.Min != want.Min || got.Max != want.Max || got.Count != want.Count {
			t.Fatalf("trial %d: agg %+v vs brute %+v", trial, got, want)
		}
		if math.Abs(got.Sum-want.Sum) > 1e-9*math.Max(1, math.Abs(want.Sum)) {
			t.Fatalf("trial %d: sum %v vs brute %v", trial, got.Sum, want.Sum)
		}
	}
}

func TestSegAggDegenerate(t *testing.T) {
	s := seg(5, 5, 7, 7, 3)
	a, ok := SegAgg(s, 0, 0, 10)
	if !ok || a.Count != 3 || a.Min != 7 || a.Max != 7 || a.Sum != 21 {
		t.Fatalf("degenerate span: %+v ok=%v", a, ok)
	}
	if _, ok := SegAgg(s, 0, 6, 10); ok {
		t.Fatalf("degenerate span outside range should not contribute")
	}
	if _, ok := SegAgg(seg(0, 1, 0, 1, 0), 0, 0, 1); ok {
		t.Fatalf("zero-point segment should not contribute")
	}
}

func TestAddSegChunkedSlack(t *testing.T) {
	// A long steep segment must chunk, and the chunked sketch's band
	// (widened by slack) must still contain the exact quantiles.
	s := seg(0, 1000, 0, 1000, 5000)
	b := NewBuilder()
	if !AddSeg(b, s, 0, math.Inf(-1), math.Inf(1)) {
		t.Fatal("AddSeg rejected a live segment")
	}
	sum := b.Build()
	if sum.Slack() <= 0 {
		t.Fatalf("chunked build should carry slack, got %v", sum.Slack())
	}
	if sum.N() != 5000 {
		t.Fatalf("n = %v, want 5000", sum.N())
	}
	var vals []Entry
	for i := 0; i < 5000; i++ {
		vals = append(vals, Entry{V: segValue(s, 0, i), W: 1})
	}
	checkBands(t, sum, vals, "chunked")
}

func TestJoinIdentity(t *testing.T) {
	var a Agg
	b := Agg{Min: -1, Max: 2, Sum: 3, Count: 4, Covered: 5, Segments: 2}
	a.Join(b)
	if a != b {
		t.Fatalf("join onto zero: %+v", a)
	}
	a.Join(Agg{})
	if a != b {
		t.Fatalf("join of zero changed value: %+v", a)
	}
}

func TestBuildBlockDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	segs := make([]core.Segment, WindowSize)
	tcur := 0.0
	for i := range segs {
		dt := 1 + rng.Float64()*10
		segs[i] = seg(tcur, tcur+dt, rng.NormFloat64(), rng.NormFloat64(), 2+rng.Intn(50))
		tcur += dt
	}
	at := func(i int) core.Segment { return segs[i] }
	b1 := BuildBlock(0, 1, at)
	b2 := BuildBlock(0, 1, at)
	if !b1.Aligned() {
		t.Fatalf("block not aligned: [%d, %d)", b1.Lo, b1.Hi)
	}
	if b1.Aggs[0] != b2.Aggs[0] {
		t.Fatalf("agg not deterministic: %+v vs %+v", b1.Aggs[0], b2.Aggs[0])
	}
	e1 := b1.Sketches[0].AppendBinary(nil)
	e2 := b2.Sketches[0].AppendBinary(nil)
	if string(e1) != string(e2) {
		t.Fatalf("sketch encoding not deterministic")
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	b := NewBuilder()
	for i := 0; i < 10000; i++ {
		b.Add(rng.NormFloat64(), 1+rng.Float64())
	}
	s := b.Build()
	enc := s.AppendBinary(nil)
	got, rest, err := ParseSummary(enc)
	if err != nil || len(rest) != 0 {
		t.Fatalf("round trip: err=%v rest=%d", err, len(rest))
	}
	if got.Eps() != s.Eps() || got.N() != s.N() || got.Len() != s.Len() || got.Slack() != s.Slack() {
		t.Fatalf("round trip changed header: %v/%v %v/%v", got.Eps(), s.Eps(), got.N(), s.N())
	}
	if string(got.AppendBinary(nil)) != string(enc) {
		t.Fatalf("re-encoding differs")
	}
	// Truncations and bit flips must be rejected, never panic.
	for cut := 0; cut < len(enc); cut += 7 {
		if _, _, err := ParseSummary(enc[:cut]); err == nil && cut < len(enc)-1 {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestParseRejectsBrokenInvariants(t *testing.T) {
	b := NewBuilder()
	b.Add(1, 1)
	b.Add(2, 1)
	s := b.BuildExact()
	good := s.AppendBinary(nil)
	// Negative weight.
	bad := *s
	bad.entries = append([]Entry(nil), s.entries...)
	bad.entries[0].W = -1
	if _, _, err := ParseSummary(bad.AppendBinary(nil)); err == nil {
		t.Fatal("negative weight accepted")
	}
	// Out-of-order values.
	bad.entries = []Entry{s.entries[1], s.entries[0]}
	if _, _, err := ParseSummary(bad.AppendBinary(nil)); err == nil {
		t.Fatal("unordered values accepted")
	}
	if _, _, err := ParseSummary(good); err != nil {
		t.Fatalf("good encoding rejected: %v", err)
	}
}

func TestAggMarshalRoundTrip(t *testing.T) {
	a := Agg{Min: -2.5, Max: 9, Sum: 12.25, Count: 7, Covered: 3.5, Segments: 4}
	enc := AppendAggBinary(nil, a)
	got, rest, err := ParseAgg(enc)
	if err != nil || len(rest) != 0 || got != a {
		t.Fatalf("agg round trip: %+v err=%v", got, err)
	}
	if _, _, err := ParseAgg(enc[:len(enc)-2]); err == nil {
		t.Fatal("truncated agg accepted")
	}
}
