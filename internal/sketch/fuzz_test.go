package sketch

import (
	"math"
	"testing"
)

// FuzzSketchMerge hammers the decode → merge → query pipeline with
// arbitrary bytes: whatever parses must merge without panicking, keep
// the epsNew = max(eps1, eps2) contract, and answer queries inside its
// own band. Seeds cover empty, exact, compressed, and weighted shapes.
func FuzzSketchMerge(f *testing.F) {
	empty := (&Summary{}).AppendBinary(nil)
	b := NewBuilder()
	for i := 0; i < 300; i++ {
		b.Add(float64(i%17)-8, 1+float64(i%3))
	}
	small := b.Build()
	f.Add(empty, empty)
	f.Add(small.AppendBinary(nil), empty)
	f.Add(small.AppendBinary(nil), small.AppendBinary(nil))
	f.Fuzz(func(t *testing.T, abuf, bbuf []byte) {
		sa, _, errA := ParseSummary(abuf)
		sb, _, errB := ParseSummary(bbuf)
		if errA != nil || errB != nil {
			return
		}
		m := Merge(sa, sb)
		if want := math.Max(sa.Eps(), sb.Eps()); m.Eps() != want {
			t.Fatalf("merged eps %v, want max %v", m.Eps(), want)
		}
		if m.N() < 0 {
			t.Fatalf("merged n negative: %v", m.N())
		}
		for _, q := range []float64{0, 0.5, 1} {
			ans := m.Query(q)
			if m.Len() == 0 {
				if !math.IsNaN(ans.Value) {
					t.Fatalf("empty merge answered %v", ans.Value)
				}
				continue
			}
			if !(ans.Lo <= ans.Value && ans.Value <= ans.Hi) {
				t.Fatalf("q=%v: estimate %v outside band [%v, %v]", q, ans.Value, ans.Lo, ans.Hi)
			}
		}
		// A merged summary must survive its own round trip.
		enc := m.AppendBinary(nil)
		if _, _, err := ParseSummary(enc); err != nil {
			t.Fatalf("merged summary does not re-parse: %v", err)
		}
		m.Compress(16)
		if m.Len() > 17 {
			t.Fatalf("compress(16) left %d entries", m.Len())
		}
	})
}
