package sketch

import (
	"math"

	"github.com/pla-go/pla/internal/core"
)

// This file defines the canonical sample reconstruction of a segment
// and the closed-form aggregates over it. A segment approximating P
// points spanning [T0, T1] reconstructs its samples at the P uniformly
// spaced times t_i = T0 + i·(T1−T0)/(P−1); the values along the chord
// form an arithmetic sequence from X0 to X1, so every aggregate below
// is exact in closed form — including at query-range edges, where the
// covered sample indices and their partial arithmetic-series sum are
// still O(1). Every consumer (aggregate pushdown, sketch building, the
// SCAN-and-fold reference in tests and benches) uses this one
// definition, which is what makes pushdown answers reproducible to the
// byte across storage backends.

// Agg is the exact closed-form aggregate of a set of reconstructed
// samples. The zero value is the identity for Join.
type Agg struct {
	Min, Max float64
	// Sum is the sum of sample values; Count the number of samples
	// (integer-valued, so float64 accumulation stays exact).
	Sum, Count float64
	// Covered is the total covered time (gaps excluded).
	Covered float64
	// Segments is the number of contributing segments.
	Segments int
}

// Join folds b into a. Joining onto a zero Agg yields b.
func (a *Agg) Join(b Agg) {
	if b.Segments == 0 {
		return
	}
	if a.Segments == 0 {
		*a = b
		return
	}
	a.Min = math.Min(a.Min, b.Min)
	a.Max = math.Max(a.Max, b.Max)
	a.Sum += b.Sum
	a.Count += b.Count
	a.Covered += b.Covered
	a.Segments += b.Segments
}

// Mean returns Sum/Count (NaN for an empty Agg).
func (a Agg) Mean() float64 {
	if a.Count == 0 {
		return math.NaN()
	}
	return a.Sum / a.Count
}

// SegRange returns the inclusive range [lo, hi] of sample indices of
// seg that fall inside [t0, t1], with the chord values at the two ends.
// ok is false when no sample is covered (or Points is unset).
func SegRange(seg core.Segment, dim int, t0, t1 float64) (lo, hi int, vlo, vhi float64, ok bool) {
	p := seg.Points
	if p <= 0 || seg.T1 < t0 || seg.T0 > t1 {
		return 0, 0, 0, 0, false
	}
	if p == 1 || seg.T1 == seg.T0 {
		// All samples sit at T0 (a degenerate span reconstructs X0).
		if seg.T0 < t0 || seg.T0 > t1 {
			return 0, 0, 0, 0, false
		}
		v := seg.X0[dim]
		return 0, p - 1, v, v, true
	}
	dt := (seg.T1 - seg.T0) / float64(p-1)
	lo, hi = 0, p-1
	if t0 > seg.T0 {
		lo = int(math.Ceil((t0 - seg.T0) / dt))
	}
	if t1 < seg.T1 {
		hi = int(math.Floor((t1 - seg.T0) / dt))
	}
	if lo < 0 {
		lo = 0
	}
	if hi > p-1 {
		hi = p - 1
	}
	if lo > hi {
		return 0, 0, 0, 0, false
	}
	return lo, hi, segValue(seg, dim, lo), segValue(seg, dim, hi), true
}

// segValue returns the chord value of sample index i (0 ≤ i < Points).
func segValue(seg core.Segment, dim, i int) float64 {
	if seg.Points <= 1 {
		return seg.X0[dim]
	}
	f := float64(i) / float64(seg.Points-1)
	return seg.X0[dim] + f*(seg.X1[dim]-seg.X0[dim])
}

// SegAgg computes the exact aggregate of seg's samples inside [t0, t1].
// ok is false when the segment contributes nothing. The arithmetic
// series along the chord makes every field O(1): the partial sum of
// samples lo..hi is (hi−lo+1)·(v_lo+v_hi)/2, and the extrema of a
// monotone chord are its covered endpoints.
func SegAgg(seg core.Segment, dim int, t0, t1 float64) (Agg, bool) {
	lo, hi, vlo, vhi, ok := SegRange(seg, dim, t0, t1)
	if !ok {
		return Agg{}, false
	}
	n := float64(hi - lo + 1)
	a := Agg{
		Min:      math.Min(vlo, vhi),
		Max:      math.Max(vlo, vhi),
		Sum:      n * (vlo + vhi) / 2,
		Count:    n,
		Covered:  math.Min(seg.T1, t1) - math.Max(seg.T0, t0),
		Segments: 1,
	}
	return a, true
}

// AddSeg folds seg's samples inside [t0, t1] into the builder. Up to
// maxSegEntries samples are added exactly (weight 1 each); a longer
// range is chunked into maxSegEntries weighted midpoints, and the
// builder's Slack is widened by the worst half-chunk value span so the
// quantile band stays sound. Reports whether anything was added.
func AddSeg(b *Builder, seg core.Segment, dim int, t0, t1 float64) bool {
	lo, hi, vlo, vhi, ok := SegRange(seg, dim, t0, t1)
	if !ok {
		return false
	}
	n := hi - lo + 1
	if n <= maxSegEntries {
		for i := lo; i <= hi; i++ {
			b.Add(segValue(seg, dim, i), 1)
		}
		return true
	}
	step := (vhi - vlo) / float64(n-1)
	for j := 0; j < maxSegEntries; j++ {
		a := lo + j*n/maxSegEntries
		z := lo + (j+1)*n/maxSegEntries - 1
		va := vlo + float64(a-lo)*step
		vz := vlo + float64(z-lo)*step
		b.Add((va+vz)/2, float64(z-a+1))
		b.widenSlack(math.Abs(vz-va) / 2)
	}
	return true
}

// WindowSize is the canonical summary-block width: finalized segments
// are grouped into windows of this many, anchored at live index 0, and
// a Block always covers exactly one window. Both storage backends build
// (or persist and reload) bit-identical blocks for the same segment
// sequence, which is what lets a query mix cached and recomputed
// windows without changing its answer.
const WindowSize = 256

// Block is the precomputed summary of one canonical window of
// finalized segments: per-dimension exact aggregates and a compressed
// quantile summary over the window's reconstructed samples.
type Block struct {
	// Lo, Hi bound the window's live segment indices, [Lo, Hi); Lo is a
	// multiple of WindowSize and Hi−Lo == WindowSize.
	Lo, Hi int
	// Aggs and Sketches hold one entry per dimension.
	Aggs     []Agg
	Sketches []*Summary
}

// Aligned reports whether the block sits on the canonical window grid.
func (b Block) Aligned() bool {
	return b.Lo >= 0 && b.Lo%WindowSize == 0 && b.Hi == b.Lo+WindowSize
}

// BuildBlock computes the canonical block for segments [lo, lo+W) of
// the given dimensionality; seg returns the i-th live segment. This is
// the one definition of a window's summary — seal-time sidecar writes,
// the mem backend's incremental cache, and query-time fallback walks
// all call it, so a cache hit and a recompute are indistinguishable.
func BuildBlock(lo, dim int, seg func(i int) core.Segment) Block {
	blk := Block{
		Lo:       lo,
		Hi:       lo + WindowSize,
		Aggs:     make([]Agg, dim),
		Sketches: make([]*Summary, dim),
	}
	for d := 0; d < dim; d++ {
		b := NewBuilder()
		for i := blk.Lo; i < blk.Hi; i++ {
			s := seg(i)
			if a, ok := SegAgg(s, d, math.Inf(-1), math.Inf(1)); ok {
				blk.Aggs[d].Join(a)
			}
			AddSeg(b, s, d, math.Inf(-1), math.Inf(1))
		}
		blk.Sketches[d] = b.Build()
	}
	return blk
}
