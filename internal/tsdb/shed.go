package tsdb

import (
	"sort"
	"strings"

	"github.com/pla-go/pla/internal/core"
)

// Effective-ε control series: when graceful degradation coarsens a
// stream — sender-side decimation under the Sample overload policy, or
// a renegotiated wider ε — the archived data's honest precision is no
// longer the contract, and that fact must survive everything the data
// itself survives: WAL replay, snapshot compaction, and restarts on
// either backend. The record is kept the same way rollup tiers are: a
// reserved control-prefixed series, registered outside the visible
// namespace (Names, "*" fan-out and SERIES listings never show it),
// holding one degenerate segment per inflation step whose X vector is
// the effective ε at that step. Unlike tiers it is not derivable from
// the base data, so the server writes it through the ordinary
// write-ahead shard path and the WAL layer includes it in snapshots and
// seals, owned by its base series' shard.

// shedPrefix opens every effective-ε control series name. Like
// rollupPrefix it contains a control character, which ingest name
// validation rejects, so it can never collide with a user series.
const shedPrefix = "\x01e" + rollupSep

// ShedName returns the reserved name of the effective-ε control series
// of base.
func ShedName(base string) string { return shedPrefix + base }

// ParseShedName splits an effective-ε control series name into its base
// name; ok is false for ordinary series names.
func ParseShedName(name string) (base string, ok bool) {
	rest, found := strings.CutPrefix(name, shedPrefix)
	if !found || rest == "" {
		return "", false
	}
	return rest, true
}

// IsShedName reports whether name addresses an effective-ε control
// series.
func IsShedName(name string) bool {
	_, ok := ParseShedName(name)
	return ok
}

// ShedNames returns the sorted names of the attached effective-ε
// control series.
func (a *Archive) ShedNames() []string {
	a.mu.RLock()
	defer a.mu.RUnlock()
	var out []string
	for n := range a.tiers {
		if IsShedName(n) {
			out = append(out, n)
		}
	}
	sort.Strings(out)
	return out
}

// RecordEffectiveEpsilon widens the named base series' effective ε and
// returns the control-series segment that persists the step, or ok
// false when eff does not widen anything (so callers skip the write).
// The caller routes the returned segment through its write-ahead path —
// the same append pipeline user segments take — so a crash cannot
// forget that archived data went coarse while remembering the data.
func (a *Archive) RecordEffectiveEpsilon(base string, eff []float64) (ctrl *Series, seg core.Segment, ok bool) {
	s, err := a.Get(base)
	if err != nil {
		return nil, core.Segment{}, false
	}
	before := s.QueryEpsilon()
	widens := false
	for i, e := range eff {
		if i < len(before) && e > before[i]+1e-12 {
			widens = true
			break
		}
	}
	if !widens {
		return nil, core.Segment{}, false
	}
	s.NoteEffectiveEpsilon(eff)
	after := s.QueryEpsilon()
	ctrl, _, err = a.GetOrCreate(ShedName(base), make([]float64, s.Dim()), false)
	if err != nil {
		return nil, core.Segment{}, false
	}
	// One degenerate segment per step, at a monotone synthetic time: the
	// step index. Replay and snapshot loads reproduce the same sequence.
	t := 0.0
	if _, end, covered := ctrl.Span(); covered {
		t = end + 1
	}
	x := append([]float64(nil), after...)
	return ctrl, core.Segment{T0: t, T1: t, X0: x, X1: x, Points: 1}, true
}

// SeedEffectiveEpsilon re-applies persisted effective-ε records to
// their base series after recovery (replay and snapshot loads rebuild
// the control series; this folds their newest step back into the bases'
// reported bounds). Returns how many base series were seeded.
func (a *Archive) SeedEffectiveEpsilon() int {
	n := 0
	for _, name := range a.ShedNames() {
		base, _ := ParseShedName(name)
		ctrl, err := a.Get(name)
		if err != nil {
			continue
		}
		last, covered := ctrl.Last()
		if !covered {
			continue
		}
		s, err := a.Get(base)
		if err != nil {
			continue
		}
		s.NoteEffectiveEpsilon(last.X0)
		n++
	}
	return n
}
