package tsdb

import (
	"errors"
	"math"
	"testing"

	"github.com/pla-go/pla/internal/core"
	"github.com/pla-go/pla/internal/gen"
)

func TestRollupNameScheme(t *testing.T) {
	name := RollupName("cpu/load", 4)
	base, mult, ok := ParseRollupName(name)
	if !ok || base != "cpu/load" || mult != 4 {
		t.Fatalf("round trip: %q %d %v", base, mult, ok)
	}
	for _, s := range []string{"cpu/load", "", "r4", "\x01r", "\x01r4", "\x01rx\x01s", "\x01r1\x01s", "\x01r4\x01"} {
		if IsRollupName(s) {
			t.Fatalf("%q should not parse as a rollup name", s)
		}
	}
	if !IsRollupName(RollupName("s", 16)) {
		t.Fatal("rollup name did not parse")
	}
}

func TestEnableRollupsFiltersLadder(t *testing.T) {
	a := New()
	a.EnableRollups([]int{16, 1, 4, 0, -3})
	got := a.RollupMults()
	if len(got) != 2 || got[0] != 4 || got[1] != 16 {
		t.Fatalf("ladder = %v, want [4 16]", got)
	}
	a.EnableRollups(nil)
	if len(a.RollupMults()) != 0 {
		t.Fatal("ladder not cleared")
	}
}

// rollupWalk ingests a random-walk signal through Swing and builds the
// {4,16} ladder over it.
func rollupWalk(t *testing.T, seed uint64, n int) (*Archive, *Series) {
	t.Helper()
	a := New()
	a.EnableRollups([]int{4, 16})
	f, err := core.NewSwing([]float64{1})
	if err != nil {
		t.Fatal(err)
	}
	signal := gen.RandomWalk(gen.WalkConfig{N: n, P: 0.5, MaxDelta: 1.5, Seed: seed})
	s, err := a.Ingest("w", f, signal)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Rollup("w"); err != nil {
		t.Fatal(err)
	}
	return a, s
}

// checkTier asserts the two rollup invariants: the tier reconstruction
// stays within (mult−1)·ε of the base reconstruction at every
// base-covered time, and the sample count is conserved exactly.
func checkTier(t *testing.T, base, tier *Series, mult int) {
	t.Helper()
	slack := float64(mult-1)*base.Epsilon()[0] + 1e-9
	t0, t1, ok := base.Span()
	if !ok {
		t.Fatal("empty base")
	}
	for ts := t0; ts <= t1; ts += (t1 - t0) / 4096 {
		bv, ok := base.At(ts)
		if !ok {
			continue
		}
		tv, ok := tier.At(ts)
		if !ok {
			t.Fatalf("%d×: t=%v covered by base, not by tier", mult, ts)
		}
		if d := math.Abs(tv[0] - bv[0]); d > slack {
			t.Fatalf("%d×: |tier−base| = %v > %v at t=%v", mult, d, slack, ts)
		}
	}
	if bp, tp := base.FinalPoints(), tier.Points(); bp != tp {
		t.Fatalf("%d×: points %d, base %d", mult, tp, bp)
	}
}

func TestRollupBoundsAndPoints(t *testing.T) {
	a, s := rollupWalk(t, 7, 6000)
	tiers := a.Tiers("w")
	if len(tiers) != 2 {
		t.Fatalf("tiers = %d, want 2", len(tiers))
	}
	// Coarsest first.
	if tiers[0].Epsilon()[0] != 16 || tiers[1].Epsilon()[0] != 4 {
		t.Fatalf("tier eps: %v, %v", tiers[0].Epsilon(), tiers[1].Epsilon())
	}
	for i, mult := range []int{16, 4} {
		checkTier(t, s, tiers[i], mult)
	}
	// The coarse contract buys fewer segments on this signal shape.
	if c, b := tiers[0].Len(), s.Len(); c*2 >= b {
		t.Fatalf("16× tier has %d segments vs base %d — no reduction", c, b)
	}
}

func TestRollupTiersInvisible(t *testing.T) {
	a, _ := rollupWalk(t, 3, 1500)
	for _, n := range a.Names() {
		if IsRollupName(n) {
			t.Fatalf("tier %q leaked into Names", n)
		}
	}
	tn := a.TierNames()
	if len(tn) != 2 {
		t.Fatalf("TierNames = %v", tn)
	}
	for _, n := range tn {
		if _, err := a.Get(n); err != nil {
			t.Fatalf("tier %q not addressable: %v", n, err)
		}
	}
	if _, ok := a.Tier("w", 4); !ok {
		t.Fatal("Tier(w, 4) missing")
	}
	if _, ok := a.Tier("w", 8); ok {
		t.Fatal("Tier(w, 8) should not exist")
	}
}

func TestRollupIdempotentAndIncremental(t *testing.T) {
	a, s := rollupWalk(t, 11, 3000)
	tier, _ := a.Tier("w", 4)
	n := tier.Len()
	// A second pass over unchanged data is a no-op.
	st, err := a.Rollup("w")
	if err != nil {
		t.Fatal(err)
	}
	if st.Segments != 0 || tier.Len() != n {
		t.Fatalf("idempotent pass appended %d (len %d → %d)", st.Segments, n, tier.Len())
	}
	// New finalized coverage extends the tier without a rebuild.
	f, err := core.NewSwing([]float64{1})
	if err != nil {
		t.Fatal(err)
	}
	bt0, bt1, _ := s.Span()
	more := gen.RandomWalk(gen.WalkConfig{N: 2000, P: 0.5, MaxDelta: 1.5, Seed: 99})
	for i := range more {
		more[i].T += bt1 + 5 // leave a gap: a fresh disconnected run
	}
	segs, err := core.Run(f, more)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(segs...); err != nil {
		t.Fatal(err)
	}
	if st, err = a.Rollup("w"); err != nil {
		t.Fatal(err)
	}
	if st.Segments == 0 || tier.Len() <= n {
		t.Fatalf("incremental pass did not extend tier (appended %d)", st.Segments)
	}
	checkTier(t, s, tier, 4)
	_ = bt0
}

func TestRollupStaleTierReset(t *testing.T) {
	a, s := rollupWalk(t, 5, 2000)
	tier, _ := a.Tier("w", 4)
	// Push the tier's coverage past the base's finalized end — the shape
	// a reconciliation that replaced the base leaves behind.
	_, bt1, _ := s.Span()
	if err := tier.Append(core.Segment{
		T0: bt1 + 100, T1: bt1 + 200,
		X0: []float64{0}, X1: []float64{0}, Points: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Rollup("w"); err != nil {
		t.Fatal(err)
	}
	_, tt1, ok := tier.Span()
	if !ok || tt1 > bt1 {
		t.Fatalf("stale tier not reset: tier end %v, base end %v", tt1, bt1)
	}
	checkTier(t, s, tier, 4)
}

func TestRollupFollowsRetention(t *testing.T) {
	a, s := rollupWalk(t, 13, 3000)
	tier, _ := a.Tier("w", 4)
	t0, t1, _ := s.Span()
	cut := t0 + (t1-t0)/2
	s.DropBefore(cut)
	if _, err := a.Rollup("w"); err != nil {
		t.Fatal(err)
	}
	// Drops are segment-granular, so a coarse segment spanning the
	// base's new start survives — but nothing that ends before it may.
	nt0, _, ok := tier.Span()
	bt0, _, _ := s.Span()
	first, _ := firstSeg(tier)
	if !ok || first.T1 < bt0 {
		t.Fatalf("tier keeps coverage ending at %v, all before base start %v", first.T1, bt0)
	}
	if nt0 == t0 && bt0 != t0 {
		t.Fatal("tier retention never pruned")
	}
}

func firstSeg(s *Series) (core.Segment, bool) {
	segs := s.Segments()
	if len(segs) == 0 {
		return core.Segment{}, false
	}
	return segs[0], true
}

func TestRollupConstantSeries(t *testing.T) {
	a := New()
	a.EnableRollups([]int{4})
	f, err := core.NewCache([]float64{0.5}, core.WithCacheMode(core.CacheMidrange))
	if err != nil {
		t.Fatal(err)
	}
	signal := gen.RandomWalk(gen.WalkConfig{N: 4000, P: 0.5, MaxDelta: 0.6, Seed: 21})
	s, err := a.Ingest("c", f, signal)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := a.Rollup("c"); err != nil {
		t.Fatal(err)
	}
	tier, ok := a.Tier("c", 4)
	if !ok {
		t.Fatal("no tier")
	}
	if !tier.Constant() {
		t.Fatal("tier lost the constant flag")
	}
	checkTier(t, s, tier, 4)
	if c, b := tier.Len(), s.Len(); c >= b {
		t.Fatalf("4× constant tier has %d segments vs base %d", c, b)
	}
}

func TestRollupDropCascades(t *testing.T) {
	a, _ := rollupWalk(t, 17, 800)
	if err := a.Drop("w"); err != nil {
		t.Fatal(err)
	}
	if n := a.TierNames(); len(n) != 0 {
		t.Fatalf("tiers survived base drop: %v", n)
	}
}

func TestRollupCountersAdvance(t *testing.T) {
	a, _ := rollupWalk(t, 19, 1500)
	c := a.RollupCountersSnapshot()
	if c.Builds == 0 || c.Segments == 0 {
		t.Fatalf("counters did not advance: %+v", c)
	}
}

func TestRollupSkipsTierNamesAndDisabled(t *testing.T) {
	a := New()
	if st, err := a.Rollup("missing"); err != nil || st.Segments != 0 {
		t.Fatalf("disabled rollup: %+v %v", st, err)
	}
	a.EnableRollups([]int{4})
	if _, err := a.Rollup("missing"); !errors.Is(err, ErrUnknown) {
		t.Fatalf("missing base: %v", err)
	}
	if st, err := a.Rollup(RollupName("x", 4)); err != nil || st.Segments != 0 {
		t.Fatalf("rollup of a tier name must no-op: %+v %v", st, err)
	}
}
