package tsdb

import (
	"fmt"
	"sort"

	"github.com/pla-go/pla/internal/core"
	"github.com/pla-go/pla/internal/sketch"
)

// Segment-native pushdown: range aggregates and quantiles answered from
// the segments themselves — closed-form per segment, precomputed per
// window — instead of reconstructing and folding O(points) samples.
//
// A query over [t0, t1] is decomposed canonically: finalized segments
// are grouped into windows of sketch.WindowSize (anchored at live index
// 0), every window whose segments all lie inside the range contributes
// its summary Block, and everything else — the clipped segments at the
// range edges, segments in partial windows, the unsealed tail, the
// provisional tail — is folded per segment in index order. The
// decomposition depends only on the live segment sequence and the
// range, never on what happens to be cached: a Block served by the
// store (the mmap sidecar), one cached on the Series, and one rebuilt
// from the segments are bit-identical by construction (sketch.BuildBlock
// is the single definition), so answers are reproducible to the byte
// across storage backends and cache states. Fast path and fallback are
// the same computation; caches only change how much of it is reused.
//
// Like the rest of the archive's aggregate layer, the decomposition
// assumes segments do not overlap in time (T1 nondecreasing), which
// every filter in this repository guarantees.

// Summarizer is implemented by segment stores that can serve
// precomputed summary blocks for part of their sealed range — the mmap
// extent store's sketch sidecars. Blocks must sit on the canonical
// window grid and reproduce sketch.BuildBlock's output exactly;
// misaligned or stale blocks are simply not returned. Called under the
// series lock.
type Summarizer interface {
	SummaryBlocks() []sketch.Block
}

// PushdownStats reports how a pushdown query was answered: how many
// window blocks came from a cache (store sidecar or series memo), how
// many had to be built from segments, and how many segments were folded
// individually.
type PushdownStats struct {
	CachedWindows  int
	BuiltWindows   int
	WalkedSegments int
}

// Add accumulates another query's coverage counters.
func (p *PushdownStats) Add(q PushdownStats) {
	p.CachedWindows += q.CachedWindows
	p.BuiltWindows += q.BuiltWindows
	p.WalkedSegments += q.WalkedSegments
}

// AggAnswer is a pushdown aggregate: the exact closed-form statistics
// of the canonical sample reconstruction over the range, plus the
// series' precision width in the queried dimension. Min/Max/Mean of the
// original samples lie within ±Epsilon of the reconstruction's; Count
// is exact; Sum is within ±Epsilon·Count.
type AggAnswer struct {
	Agg     sketch.Agg
	Epsilon float64
	Stats   PushdownStats
}

// RangeAgg computes min/max/sum/count (and thereby avg) of the
// reconstruction's samples in dimension dim over [t0, t1], in
// O(windows + edge segments) instead of O(points).
func (s *Series) RangeAgg(dim int, t0, t1 float64) (AggAnswer, error) {
	if err := s.checkQuery(dim, t0, t1); err != nil {
		return AggAnswer{}, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	ans := AggAnswer{Epsilon: s.queryEps(dim)}
	err := s.decompose(dim, t0, t1, &ans.Stats,
		func(blk sketch.Block) { ans.Agg.Join(blk.Aggs[dim]) },
		func(seg core.Segment) {
			if a, ok := sketch.SegAgg(seg, dim, t0, t1); ok {
				ans.Agg.Join(a)
			}
		})
	if err != nil {
		return AggAnswer{}, err
	}
	if ans.Agg.Segments == 0 {
		return ans, fmt.Errorf("%w in [%v, %v]", ErrNoData, t0, t1)
	}
	return ans, nil
}

// RangeSummary merges the range's value distribution in dimension dim
// into one quantile summary: persisted or memoized window sketches
// where whole windows fit, freshly folded segment samples everywhere
// else. The summary's own Eps/Slack cover the sketch-side error; the
// caller still adds the series' filter ε when turning ranks into
// value guarantees (AnswerQuantiles does both).
func (s *Series) RangeSummary(dim int, t0, t1 float64) (*sketch.Summary, PushdownStats, error) {
	if err := s.checkQuery(dim, t0, t1); err != nil {
		return nil, PushdownStats{}, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	var stats PushdownStats
	merged := &sketch.Summary{}
	run := sketch.NewBuilder()
	flush := func() {
		if !run.Empty() {
			merged = sketch.Merge(merged, run.Build())
		}
	}
	err := s.decompose(dim, t0, t1, &stats,
		func(blk sketch.Block) {
			flush()
			merged = sketch.Merge(merged, blk.Sketches[dim])
		},
		func(seg core.Segment) { sketch.AddSeg(run, seg, dim, t0, t1) })
	if err != nil {
		return nil, stats, err
	}
	flush()
	if merged.N() == 0 {
		return nil, stats, fmt.Errorf("%w in [%v, %v]", ErrNoData, t0, t1)
	}
	return merged, stats, nil
}

// AnswerQuantiles evaluates qs against a merged range summary, widening
// each band by the filter precision eps so it composes every error
// source: rank uncertainty, chord-quantization slack, and the ±ε the
// ingest filter was allowed in the first place.
func AnswerQuantiles(merged *sketch.Summary, eps float64, qs []float64) []sketch.Quantile {
	out := make([]sketch.Quantile, len(qs))
	for i, q := range qs {
		ans := merged.Query(q)
		ans.Lo -= eps
		ans.Hi += eps
		out[i] = ans
	}
	return out
}

// RangeQuantiles answers the given quantiles (each in [0, 1]) of the
// reconstruction's samples in dimension dim over [t0, t1]. Each
// answer's [Lo, Hi] band is guaranteed to contain the true quantile of
// the original samples.
func (s *Series) RangeQuantiles(dim int, t0, t1 float64, qs []float64) ([]sketch.Quantile, PushdownStats, error) {
	merged, stats, err := s.RangeSummary(dim, t0, t1)
	if err != nil {
		return nil, stats, err
	}
	return AnswerQuantiles(merged, s.eps[dim], qs), stats, nil
}

// decompose walks the query range as window blocks plus individual
// segments, invoking the callbacks in strict index order. s.mu must be
// held (read suffices; the block memo has its own lock).
func (s *Series) decompose(dim int, t0, t1 float64, stats *PushdownStats,
	window func(sketch.Block), segment func(core.Segment)) error {
	n := s.store.Len()
	if n == 0 {
		return nil
	}
	finalLen := n - s.provisional
	i0 := s.searchT0(t0)
	// Back up over predecessors that still reach into the range (with
	// non-overlapping segments: at most one step).
	for i0 > 0 && s.store.Seg(i0-1).T1 >= t0 {
		i0--
	}
	i1 := s.searchT0(t1) - 1
	if i0 > i1 {
		return nil
	}
	var fromStore map[int]sketch.Block
	if sm, ok := s.store.(Summarizer); ok {
		fromStore = make(map[int]sketch.Block)
		for _, blk := range sm.SummaryBlocks() {
			if blk.Aligned() && len(blk.Aggs) == len(s.eps) && blk.Hi <= finalLen {
				fromStore[blk.Lo/sketch.WindowSize] = blk
			}
		}
	}
	const w = sketch.WindowSize
	for i := i0; i <= i1; {
		if wLo := i - i%w; i == wLo && wLo+w <= finalLen && wLo+w-1 <= i1 &&
			s.store.Seg(wLo).T0 >= t0 && s.store.Seg(wLo+w-1).T1 <= t1 {
			blk, cached := fromStore[wLo/w]
			if !cached {
				blk, cached = s.memoBlock(wLo)
			}
			if !cached {
				blk = sketch.BuildBlock(wLo, len(s.eps), s.store.Seg)
				s.memoPut(blk)
				stats.BuiltWindows++
			} else {
				stats.CachedWindows++
			}
			window(blk)
			i = wLo + w
			continue
		}
		segment(s.store.Seg(i))
		stats.WalkedSegments++
		i++
	}
	return nil
}

// searchT0 returns the least index whose segment starts after t, using
// the store's own index when it has one.
func (s *Series) searchT0(t float64) int {
	if ti, ok := s.store.(TimeIndex); ok {
		return ti.SearchT0(t)
	}
	return sort.Search(s.store.Len(), func(j int) bool { return s.store.Seg(j).T0 > t })
}

// memoBlock looks up the series' own block memo — the mem backend's
// incremental per-series summary, and the cache for windows the mmap
// sidecars do not (yet) cover.
func (s *Series) memoBlock(lo int) (sketch.Block, bool) {
	s.blkMu.Lock()
	defer s.blkMu.Unlock()
	blk, ok := s.blocks[lo/sketch.WindowSize]
	return blk, ok
}

// memoPut records a freshly built block. Windows cover only finalized
// segments, which are immutable except for head drops (which clear the
// memo), so an entry never goes stale.
func (s *Series) memoPut(blk sketch.Block) {
	s.blkMu.Lock()
	defer s.blkMu.Unlock()
	if s.blocks == nil {
		s.blocks = make(map[int]sketch.Block)
	}
	s.blocks[blk.Lo/sketch.WindowSize] = blk
}

// invalidateBlocks forgets every memoized block — called when head
// drops shift live indices and the window grid no longer lines up.
func (s *Series) invalidateBlocks() {
	s.blkMu.Lock()
	s.blocks = nil
	s.blkMu.Unlock()
}
