package tsdb

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"github.com/pla-go/pla/internal/core"
)

// Rollup tiers: each base series can carry derived series re-encoded at
// a coarser precision — the base segments' breakpoint stream run back
// through the same filter family at ε_rerun = (mult−1)·ε. Because both
// the base reconstruction and the tier are piece-wise linear, and every
// tier breakpoint sits at a base breakpoint time, the filter's per-point
// guarantee at the pushed breakpoints extends to a sup-norm bound over
// the whole covered span: |tier(t) − base(t)| ≤ (mult−1)·ε everywhere.
// Composed with the base contract, a tier honestly answers queries at
// ±mult·ε — which is exactly the ε vector the tier series is created
// with, so every downstream bound composition (aggregate bands, sketch
// merges with εNew = max(ε1, ε2), quantile widening) needs no special
// casing.
//
// Tier series are derived data: they are registered outside the
// archive's visible namespace (Names, "*" fan-out and SERIES listings
// never show them), never written ahead to the WAL, and always
// rebuildable from the base. Under the mmap backend they persist as
// ordinary extents + sketch sidecars in their own hashed series
// directory and are re-attached by LoadInto on recovery; under the
// in-memory backend they are rebuilt by the first rollup pass after a
// restart.

// rollupPrefix opens every tier series name. It contains a control
// character, which validateName-style ingest checks reject in user
// series names, so a tier name can never collide with one.
const rollupPrefix = "\x01r"

// rollupSep separates the multiplier from the base name.
const rollupSep = "\x01"

// RollupName returns the reserved series name of the mult× rollup tier
// of base.
func RollupName(base string, mult int) string {
	return rollupPrefix + strconv.Itoa(mult) + rollupSep + base
}

// ParseRollupName splits a tier series name into its base name and
// multiplier; ok is false for ordinary series names.
func ParseRollupName(name string) (base string, mult int, ok bool) {
	s, found := strings.CutPrefix(name, rollupPrefix)
	if !found {
		return "", 0, false
	}
	ms, rest, found := strings.Cut(s, rollupSep)
	if !found {
		return "", 0, false
	}
	m, err := strconv.Atoi(ms)
	if err != nil || m < 2 || rest == "" {
		return "", 0, false
	}
	return rest, m, true
}

// IsRollupName reports whether name addresses a rollup tier.
func IsRollupName(name string) bool {
	_, _, ok := ParseRollupName(name)
	return ok
}

// EnableRollups configures the archive's rollup ladder: the precision
// multipliers (each > 1, e.g. 4 and 16) that Rollup builds a tier for.
// An empty or nil ladder disables rollup builds; tiers already attached
// keep answering queries.
func (a *Archive) EnableRollups(mults []int) {
	ladder := make([]int, 0, len(mults))
	for _, m := range mults {
		if m > 1 {
			ladder = append(ladder, m)
		}
	}
	sort.Ints(ladder)
	a.mu.Lock()
	a.ladder = ladder
	a.mu.Unlock()
}

// RollupMults returns the configured ladder (ascending), nil when
// rollups are disabled.
func (a *Archive) RollupMults() []int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return append([]int(nil), a.ladder...)
}

// Tier returns the mult× rollup tier of the named base series, if one
// is attached.
func (a *Archive) Tier(base string, mult int) (*Series, bool) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	s, ok := a.tiers[RollupName(base, mult)]
	return s, ok
}

// Tiers returns the attached rollup tiers of the named base series,
// coarsest (largest multiplier) first — the probe order of bound-aware
// tier selection.
func (a *Archive) Tiers(base string) []*Series {
	a.mu.RLock()
	defer a.mu.RUnlock()
	type tier struct {
		mult int
		s    *Series
	}
	var out []tier
	for name, s := range a.tiers {
		if b, m, ok := ParseRollupName(name); ok && b == base {
			out = append(out, tier{m, s})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].mult > out[j].mult })
	ts := make([]*Series, len(out))
	for i, t := range out {
		ts[i] = t.s
	}
	return ts
}

// TierNames returns the names of every attached tier series, sorted —
// the persistence-layer view Names deliberately hides.
func (a *Archive) TierNames() []string {
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := make([]string, 0, len(a.tiers))
	for n := range a.tiers {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// RollupCounters is a snapshot of the archive's lifetime rollup
// accounting.
type RollupCounters struct {
	// Builds counts rollup passes that extended at least one tier.
	Builds int64
	// Segments counts tier segments appended over the archive lifetime.
	Segments int64
}

// RollupCountersSnapshot returns the archive's lifetime rollup
// accounting.
func (a *Archive) RollupCountersSnapshot() RollupCounters {
	return RollupCounters{
		Builds:   a.rollupBuilds.Load(),
		Segments: a.rollupSegments.Load(),
	}
}

// RollupStats reports what one Rollup call did.
type RollupStats struct {
	// Tiers is how many tier series were extended.
	Tiers int
	// Segments is how many coarse segments were appended across them.
	Segments int
}

// Rollup extends every configured tier of the named base series with
// the base's finalized segments the tier does not cover yet, creating
// missing tier series on the way. It is incremental: each pass
// re-encodes only the base breakpoints past the tier's covered end, and
// a pass over an up-to-date tier is a cheap no-op. Called from the WAL
// compaction sweep alongside sealing; safe to call concurrently with
// ingest on the base series (the pass reads a finalized-prefix snapshot
// and the next pass catches whatever lands in between).
func (a *Archive) Rollup(name string) (RollupStats, error) {
	var st RollupStats
	mults := a.RollupMults()
	if len(mults) == 0 || IsRollupName(name) {
		return st, nil
	}
	base, err := a.Get(name)
	if err != nil {
		return st, err
	}
	for _, mult := range mults {
		tier, err := a.ensureTier(base, mult)
		if err != nil {
			return st, err
		}
		n, err := a.extendTier(base, tier, mult)
		if err != nil {
			return st, fmt.Errorf("tsdb: rollup %d× of %q: %w", mult, name, err)
		}
		if n > 0 {
			st.Tiers++
			st.Segments += n
		}
	}
	if st.Segments > 0 {
		a.rollupBuilds.Add(1)
		a.rollupSegments.Add(int64(st.Segments))
	}
	return st, nil
}

// ensureTier returns the mult× tier series of base, creating (or, on a
// ladder change that altered its contract, resetting) it as needed.
func (a *Archive) ensureTier(base *Series, mult int) (*Series, error) {
	name := RollupName(base.Name(), mult)
	eps := make([]float64, base.Dim())
	for i, e := range base.Epsilon() {
		eps[i] = float64(mult) * e
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if t, ok := a.tiers[name]; ok {
		if t.matches(eps, base.Constant()) == nil {
			return t, nil
		}
		// A recovered tier built under a different base contract: derived
		// data, so drop and rebuild rather than refuse.
		delete(a.tiers, name)
	}
	return a.createLocked(name, eps, base.Constant()), nil
}

// extendTier re-encodes base's uncovered finalized breakpoints into
// tier. Returns how many coarse segments were appended.
func (a *Archive) extendTier(base, tier *Series, mult int) (int, error) {
	baseT0, baseT1, baseOK := base.finalSpan()
	tierT0, tierT1, tierOK := tier.Span()
	if tierOK {
		if !baseOK || tierT1 > baseT1 {
			// The tier claims coverage past the base's finalized end — the
			// base shrank underneath it (a reconciliation replaced it, or
			// retention emptied it). Stale derived data: reset and rebuild.
			tier.DropBefore(inf())
			tierOK = false
		} else if tierT0 < baseT0 {
			// Base retention moved on; the tier must never answer for time
			// the base has forgotten.
			tier.DropBefore(baseT0)
		}
	}
	resumeAfter := infNeg()
	if tierOK {
		resumeAfter = tierT1
	}
	segs := base.finalAfter(resumeAfter)
	if len(segs) == 0 {
		return 0, nil
	}
	coarse, err := rollupSegments(segs, base.Epsilon(), base.Constant(), mult)
	if err != nil {
		return 0, err
	}
	if len(coarse) == 0 {
		return 0, nil
	}
	if err := tier.Append(coarse...); err != nil {
		return 0, err
	}
	return len(coarse), nil
}

// rollupSegments re-encodes a batch of finalized base segments at
// mult× their precision contract: the segments' breakpoint stream is
// run through a fresh filter of the base's family at ε_rerun =
// (mult−1)·ε, runs are cut wherever the base chain breaks (a time gap,
// or a disconnected recording pair at a shared time), and each coarse
// segment's Points is the sum of the base segments it covers — so a
// tier's sample count over fully covered coarse segments matches the
// base exactly.
func rollupSegments(segs []core.Segment, eps []float64, constant bool, mult int) ([]core.Segment, error) {
	rerun := make([]float64, len(eps))
	for i, e := range eps {
		rerun[i] = float64(mult-1) * e
	}
	var out []core.Segment
	for lo := 0; lo < len(segs); {
		hi := lo + 1
		for hi < len(segs) && chains(segs[hi-1], segs[hi], constant) {
			hi++
		}
		coarse, err := rollupRun(segs[lo:hi], rerun, constant)
		if err != nil {
			return nil, err
		}
		out = append(out, coarse...)
		lo = hi
	}
	return out, nil
}

// chains reports whether next continues prev's breakpoint chain. Linear
// runs require a shared endpoint (same time, same values): bridging a
// coverage gap with an interpolating line would invent sample values
// where the base has none. Piece-wise constant runs may span the gap —
// the cache filter's prediction holds across it, and no base samples
// exist strictly inside it — so constant series chain unconditionally.
func chains(prev, next core.Segment, constant bool) bool {
	if constant {
		return next.T0 > prev.T1 || (next.T0 == prev.T1 && next.T1 > prev.T1)
	}
	if next.T0 != prev.T1 {
		return false
	}
	for d := range next.X0 {
		if next.X0[d] != prev.X1[d] {
			return false
		}
	}
	return true
}

// rollupRun re-encodes one unbroken run of base segments. A single
// segment passes through as a copy (re-filtering two breakpoints could
// only reproduce it); longer runs push the shared breakpoints through a
// fresh filter and redistribute Points onto the coarse segments by
// coverage.
func rollupRun(run []core.Segment, rerun []float64, constant bool) ([]core.Segment, error) {
	if len(run) == 1 {
		seg := run[0]
		seg.X0 = append([]float64(nil), seg.X0...)
		seg.X1 = append([]float64(nil), seg.X1...)
		seg.Connected = false
		seg.Provisional = false
		return []core.Segment{seg}, nil
	}
	pts := breakpoints(run, constant)
	var f core.Filter
	var err error
	if constant {
		f, err = core.NewCache(rerun, core.WithCacheMode(core.CacheMidrange))
	} else {
		f, err = core.NewSwing(rerun)
	}
	if err != nil {
		return nil, err
	}
	coarse, err := core.Run(f, pts)
	if err != nil {
		return nil, err
	}
	assignPoints(coarse, run)
	return coarse, nil
}

// breakpoints flattens a run into its breakpoint stream: the first
// segment's start, then every segment's end, skipping zero-duration
// steps so the times stay strictly increasing (as filters require).
func breakpoints(run []core.Segment, constant bool) []core.Point {
	pts := make([]core.Point, 0, len(run)+1)
	push := func(t float64, x []float64) {
		if len(pts) > 0 && t <= pts[len(pts)-1].T {
			return
		}
		pts = append(pts, core.Point{T: t, X: append([]float64(nil), x...)})
	}
	push(run[0].T0, run[0].X0)
	for _, seg := range run {
		if constant && seg.T0 != run[0].T0 {
			// Constant runs chain across value steps: each segment's start
			// is its own breakpoint (the step), not shared with the
			// predecessor's end.
			push(seg.T0, seg.X0)
		}
		push(seg.T1, seg.X1)
	}
	return pts
}

// assignPoints conserves the sample count: each coarse segment's Points
// becomes the sum over the base segments its span covers. Coarse
// breakpoints are base breakpoints, and both sequences tile the run, so
// a simple two-pointer sweep assigns every base segment exactly once
// (ties — a base segment ending exactly at a coarse boundary — go
// left, matching the base's own interval accounting). It also rewrites
// the Connected flags: a run's first coarse segment stands alone, the
// rest chain.
func assignPoints(coarse, run []core.Segment) {
	j := 0
	for k := range coarse {
		pts := 0
		for j < len(run) && run[j].T1 <= coarse[k].T1 {
			pts += run[j].Points
			j++
		}
		if k == len(coarse)-1 {
			// Whatever remains belongs to the last coarse segment (guards
			// against float asymmetries at the final boundary).
			for ; j < len(run); j++ {
				pts += run[j].Points
			}
		}
		coarse[k].Points = pts
		coarse[k].Connected = k > 0
		coarse[k].Provisional = false
	}
}

// finalSpan returns the time span of the series' finalized segments.
func (s *Series) finalSpan() (t0, t1 float64, ok bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := s.store.Len() - s.provisional
	if n == 0 {
		return 0, 0, false
	}
	return s.store.Seg(0).T0, s.store.Seg(n - 1).T1, true
}

// finalAfter snapshots the finalized segments whose coverage extends
// past t — the increment a rollup pass still has to encode.
func (s *Series) finalAfter(t float64) []core.Segment {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := s.store.Len() - s.provisional
	i := s.searchT0(t)
	for i > 0 && s.store.Seg(i-1).T1 > t {
		i--
	}
	if i >= n {
		return nil
	}
	out := make([]core.Segment, 0, n-i)
	for ; i < n; i++ {
		out = append(out, s.store.Seg(i))
	}
	return out
}

// RangeEdges returns the stored segments that only partially overlap
// [t0, t1] — at most one on each side, given non-overlapping segments.
// Bound-aware tier answers use them to compose an honest slack for the
// sample-count redistribution a partially covered coarse segment can
// introduce.
func (s *Series) RangeEdges(t0, t1 float64) []core.Segment {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := s.store.Len()
	// Leftmost overlapping segment, and rightmost starting inside the
	// range — two index probes; the covered interior never matters here.
	lo := s.searchT0(t0)
	for lo > 0 && s.store.Seg(lo-1).T1 >= t0 {
		lo--
	}
	hi := s.searchT0(t1) - 1
	var out []core.Segment
	add := func(i int) {
		if i < 0 || i >= n {
			return
		}
		seg := s.store.Seg(i)
		if seg.T1 < t0 || seg.T0 > t1 {
			return
		}
		if seg.T0 < t0 || seg.T1 > t1 {
			out = append(out, seg)
		}
	}
	add(lo)
	if hi > lo {
		add(hi)
	}
	return out
}

func inf() float64    { return math.Inf(1) }
func infNeg() float64 { return math.Inf(-1) }
