package tsdb_test

// The PR 5 audit of SegmentStore implementations: retention (DropHead)
// interleaved with provisional (max-lag) tails is the corner where a
// store can silently diverge — a prune that reaches the provisional
// suffix, a snapshot taken while only provisional coverage remains, a
// finalized append landing after the whole finalized head was pruned.
// The test drives the same operation script through a Series on the
// in-memory store and one on the mmap store (sealing mid-script, so
// fences and the append tail both participate), compares every
// observable after every step, and round-trips both through
// WriteSeriesTo/ReadInto at the end.

import (
	"bytes"
	"fmt"
	"testing"

	"github.com/pla-go/pla/internal/core"
	"github.com/pla-go/pla/internal/tsdb"
	"github.com/pla-go/pla/internal/tsdb/mmapstore"
)

func seg1d(t0, t1, x0, x1 float64, pts int, connected bool) core.Segment {
	return core.Segment{T0: t0, T1: t1, X0: []float64{x0}, X1: []float64{x1}, Points: pts, Connected: connected}
}

// seriesState compares every observable the query layer reads.
func seriesState(s *tsdb.Series) string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "len=%d final=%d pts=%d finalPts=%d pend=%d consumed=%d stale=%d\n",
		s.Len(), s.FinalLen(), s.Points(), s.FinalPoints(), s.PendingPoints(), s.Consumed(), s.Staleness())
	for i, seg := range s.Segments() {
		fmt.Fprintf(&b, "%d: %+v\n", i, seg)
	}
	if t0, t1, ok := s.Span(); ok {
		fmt.Fprintf(&b, "span [%v %v]\n", t0, t1)
	}
	for _, t := range []float64{-1, 0.5, 2, 3.5, 5, 7.5, 9, 11, 20} {
		if x, ok := s.At(t); ok {
			fmt.Fprintf(&b, "at(%v)=%v\n", t, x)
		}
	}
	return b.String()
}

// TestRetentionProvisionalInterleaving is the regression for the
// DropHead + AppendProvisional audit. Steps marked "seal" fold the mmap
// store's tail mid-script, so later drops cross the sealed/unsealed
// boundary.
func TestRetentionProvisionalInterleaving(t *testing.T) {
	eps := []float64{0.5}
	memDB := tsdb.New()
	mm, err := mmapstore.Open(t.TempDir(), t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	defer mm.Close()
	mmapDB := tsdb.NewWithNamedStore(mm.Store)

	mkSeries := func(db *tsdb.Archive) *tsdb.Series {
		s, err := db.Create("audit", eps, false)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	pair := []*tsdb.Series{mkSeries(memDB), mkSeries(mmapDB)}

	type step struct {
		name string
		do   func(s *tsdb.Series) error
	}
	prov := func(t0, t1, x0, x1 float64, pts int) func(*tsdb.Series) error {
		return func(s *tsdb.Series) error {
			seg := seg1d(t0, t1, x0, x1, pts, false)
			seg.Provisional = true
			return s.AppendProvisional(seg)
		}
	}
	final := func(segs ...core.Segment) func(*tsdb.Series) error {
		return func(s *tsdb.Series) error { return s.Append(segs...) }
	}
	steps := []step{
		{"final 0-2, 2-4 connected", final(seg1d(0, 2, 1, 2, 5, false), seg1d(2, 4, 2, 3, 5, true))},
		{"provisional 4-6", prov(4, 6, 3, 3.5, 4)},
		{"seal", func(s *tsdb.Series) error { return s.Seal() }},
		{"provisional extends 4-7", prov(4, 7, 3, 3.75, 6)},
		{"final 4-7 supersedes", final(seg1d(4, 7, 3, 3.8, 7, false))},
		{"provisional 7-9", prov(7, 9, 3.8, 4, 3)},
		// Prune the whole finalized head; the provisional tail survives.
		{"retention drops all finalized", func(s *tsdb.Series) error { s.DropBefore(7.5); return nil }},
		{"provisional 7-10 re-announce", prov(7, 10, 3.8, 4.5, 5)},
		{"final lands after full prune", final(seg1d(7, 10, 3.8, 4.4, 6, false))},
		{"seal again", func(s *tsdb.Series) error { return s.Seal() }},
		{"provisional 10-11", prov(10, 11, 4.4, 4.6, 2)},
		// Prune reaching into the sealed extent with a provisional live.
		{"retention into sealed", func(s *tsdb.Series) error { s.DropBefore(10.5); return nil }},
	}
	for _, st := range steps {
		var errs [2]error
		for i, s := range pair {
			errs[i] = st.do(s)
		}
		if (errs[0] == nil) != (errs[1] == nil) {
			t.Fatalf("step %q: mem err %v, mmap err %v", st.name, errs[0], errs[1])
		}
		memState, mmapState := seriesState(pair[0]), seriesState(pair[1])
		if memState != mmapState {
			t.Fatalf("step %q: stores diverged\nmem:\n%s\nmmap:\n%s", st.name, memState, mmapState)
		}
	}

	// Persistence round trip from both: snapshots carry the finalized
	// prefix only, and both reload into identical series.
	var snaps [2][]byte
	for i, db := range []*tsdb.Archive{memDB, mmapDB} {
		var buf bytes.Buffer
		if _, err := db.WriteSeriesTo(&buf, []string{"audit"}); err != nil {
			t.Fatalf("snapshot %d: %v", i, err)
		}
		snaps[i] = buf.Bytes()
	}
	if !bytes.Equal(snaps[0], snaps[1]) {
		t.Fatal("the two stores serialised different snapshots")
	}
	back := tsdb.New()
	if err := tsdb.ReadInto(back, bytes.NewReader(snaps[0])); err != nil {
		t.Fatalf("ReadInto: %v", err)
	}
	rs, err := back.Get("audit")
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != pair[0].FinalLen() || rs.Points() != pair[0].FinalPoints() {
		t.Fatalf("recovered %d segments / %d points, want the finalized %d / %d",
			rs.Len(), rs.Points(), pair[0].FinalLen(), pair[0].FinalPoints())
	}
	for _, seg := range rs.Segments() {
		if seg.Provisional {
			t.Fatalf("a provisional segment leaked into the snapshot: %+v", seg)
		}
	}
}

// TestSnapshotOfProvisionalOnlySeries pins the edge the audit was
// really about: retention prunes every finalized segment while a
// provisional tail is live, and a snapshot taken in that state must
// serialise an empty (but valid) series that reloads cleanly — not a
// negative point count, not a leaked announcement.
func TestSnapshotOfProvisionalOnlySeries(t *testing.T) {
	for _, backend := range []string{"mem", "mmap"} {
		t.Run(backend, func(t *testing.T) {
			var db *tsdb.Archive
			if backend == "mem" {
				db = tsdb.New()
			} else {
				mm, err := mmapstore.Open(t.TempDir(), t.Logf)
				if err != nil {
					t.Fatal(err)
				}
				defer mm.Close()
				db = tsdb.NewWithNamedStore(mm.Store)
			}
			s, err := db.Create("p-only", []float64{1}, false)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Append(seg1d(0, 2, 1, 2, 5, false)); err != nil {
				t.Fatal(err)
			}
			if backend == "mmap" {
				if err := s.Seal(); err != nil {
					t.Fatal(err)
				}
			}
			prov := seg1d(2, 5, 2, 3, 4, false)
			prov.Provisional = true
			if err := s.AppendProvisional(prov); err != nil {
				t.Fatal(err)
			}
			if n := s.DropBefore(4); n != 1 {
				t.Fatalf("DropBefore dropped %d segments, want the 1 finalized", n)
			}
			if s.FinalLen() != 0 || s.PendingPoints() != 4 || s.FinalPoints() != 0 {
				t.Fatalf("after prune: finalLen=%d pend=%d finalPts=%d", s.FinalLen(), s.PendingPoints(), s.FinalPoints())
			}

			var buf bytes.Buffer
			if _, err := db.WriteSeriesTo(&buf, []string{"p-only"}); err != nil {
				t.Fatalf("snapshot of a provisional-only series: %v", err)
			}
			back := tsdb.New()
			if err := tsdb.ReadInto(back, bytes.NewReader(buf.Bytes())); err != nil {
				t.Fatalf("reload: %v", err)
			}
			rs, err := back.Get("p-only")
			if err != nil {
				t.Fatal(err)
			}
			if rs.Len() != 0 || rs.Points() != 0 {
				t.Fatalf("reloaded series has %d segments / %d points, want 0 / 0", rs.Len(), rs.Points())
			}

			// The pruned series keeps working: a final append supersedes
			// the surviving announcement and lands as the new head.
			if err := s.Append(seg1d(2, 6, 2, 3.2, 6, false)); err != nil {
				t.Fatalf("append after full prune: %v", err)
			}
			if s.Len() != 1 || s.PendingPoints() != 0 {
				t.Fatalf("after supersede: len=%d pend=%d", s.Len(), s.PendingPoints())
			}
		})
	}
}
