// Package tsdb is a compact time-series archive built directly on
// piece-wise linear segments — the "repository" half of the paper's
// motivation (Section 1): monitoring data is filtered at the edge and
// stored as segments, not samples, for later offline analysis.
//
// Because every original sample is guaranteed to lie within ε of the
// stored approximation, the archive can answer range queries and
// aggregates with deterministic error bounds instead of exact values:
// AggregateResult carries both the estimate (computed analytically over
// the line segments) and the ±ε band that is guaranteed to contain the
// corresponding statistic of the reconstruction evaluated at any sample
// times.
package tsdb

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/pla-go/pla/internal/core"
	"github.com/pla-go/pla/internal/sketch"
)

// Errors returned by the archive.
var (
	// ErrExists reports a series created twice.
	ErrExists = errors.New("tsdb: series already exists")
	// ErrUnknown reports an operation on a missing series.
	ErrUnknown = errors.New("tsdb: unknown series")
	// ErrOrder reports segments appended out of time order.
	ErrOrder = errors.New("tsdb: segments out of time order")
	// ErrDim reports mismatched dimensionality.
	ErrDim = errors.New("tsdb: dimensionality mismatch")
	// ErrRange reports an invalid query range.
	ErrRange = errors.New("tsdb: invalid time range")
	// ErrFormat reports a malformed archive file.
	ErrFormat = errors.New("tsdb: malformed archive")
	// ErrContract reports a series opened with a precision contract that
	// does not match the stored one.
	ErrContract = errors.New("tsdb: precision contract mismatch")
	// ErrNoData reports a valid query range with no coverage. It wraps
	// ErrRange, so existing Is(ErrRange) checks keep matching, while
	// callers that must distinguish "nothing there" from "bad request"
	// (the network query layer) can test for it specifically.
	ErrNoData = fmt.Errorf("%w: no data", ErrRange)
)

// Archive holds many named series. It is safe for concurrent use.
// Create one with New.
type Archive struct {
	mu       sync.RWMutex
	series   map[string]*Series
	newStore func(name string, eps []float64, constant bool) SegmentStore

	// tiers holds rollup tier series (see rollup.go), registered apart
	// from the user namespace: Names, "*" fan-out, snapshots and WAL
	// ownership never see them, while Get and persistence recovery (which
	// address them by their reserved names) do.
	tiers  map[string]*Series
	ladder []int // rollup precision multipliers, ascending; nil = disabled

	rollupBuilds   atomic.Int64 // rollup passes that extended a tier
	rollupSegments atomic.Int64 // tier segments appended, lifetime
}

// New returns an empty archive backed by in-memory segment stores.
func New() *Archive {
	return NewWithStore(NewMemStore)
}

// NewWithStore returns an empty archive whose series keep their segments
// in stores built by factory (one store per series).
func NewWithStore(factory func() SegmentStore) *Archive {
	return NewWithNamedStore(func(string, []float64, bool) SegmentStore { return factory() })
}

// NewWithNamedStore returns an empty archive whose series keep their
// segments in stores built per series from its name and precision
// contract — the constructor for stores with per-series on-disk state
// (the mmap extent store), which may come up already holding the
// segments a previous run sealed. A pre-populated store's series starts
// with those segments; the caller restores its sample counter with
// SetPoints.
func NewWithNamedStore(factory func(name string, eps []float64, constant bool) SegmentStore) *Archive {
	return &Archive{
		series:   make(map[string]*Series),
		tiers:    make(map[string]*Series),
		newStore: factory,
	}
}

// Series is one stored stream: ordered segments plus the precision
// contract they were produced under.
//
// A series may end in a short run of provisional segments — max-lag
// receiver updates (Sections 3.3, 4.3) announcing the sender's current
// line for still-open filtering intervals. Provisional segments answer
// queries like any other (they keep the ±ε guarantee for the points
// they cover) but are transient: finalized segments supersede them, and
// snapshots never persist them. The series additionally tracks a
// consumed high-water mark — the most points (final + provisional) it
// has ever represented — so staleness (how far finalized coverage
// trails what the sender has consumed) is observable even while
// provisional tails come and go.
type Series struct {
	mu          sync.RWMutex
	name        string
	eps         []float64
	constant    bool
	store       SegmentStore
	points      int // original samples represented, provisional included
	provisional int // trailing provisional segments in the store
	provPoints  int // samples those provisional segments represent
	consumed    int // high-water of points: most samples ever represented
	lagHint     int // last advertised m_max_lag bound (0 = none/unbounded)
	shed        int // samples consumed from senders but shed before landing

	// effEps, when non-nil, is the effective per-dimension precision of
	// the archived data: the contract ε inflated by whatever degradation
	// the data passed through (sender-side decimation under the Sample
	// overload policy, a coarser renegotiated ε). It only ever widens —
	// once coarse data is in the archive, every answer over it must say
	// so — and query bounds report it in place of the contract.
	effEps []float64

	// blkMu guards blocks, the memoized pushdown summary windows (see
	// pushdown.go). A separate lock: queries memoize while holding only
	// the read half of mu.
	blkMu  sync.Mutex
	blocks map[int]sketch.Block
}

// Create adds an empty series with the given precision contract.
// constant marks piece-wise constant (cache filter) data.
func (a *Archive) Create(name string, eps []float64, constant bool) (*Series, error) {
	if len(eps) == 0 {
		return nil, fmt.Errorf("%w: empty epsilon", ErrDim)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.registry(name)[name]; ok {
		return nil, fmt.Errorf("%w: %q", ErrExists, name)
	}
	return a.createLocked(name, eps, constant), nil
}

// registry returns the map a series name registers in: rollup tier and
// effective-ε control names live apart from the user namespace. a.mu
// must be held.
func (a *Archive) registry(name string) map[string]*Series {
	if IsRollupName(name) || IsShedName(name) {
		return a.tiers
	}
	return a.series
}

// createLocked builds and registers a series; a.mu must be held.
func (a *Archive) createLocked(name string, eps []float64, constant bool) *Series {
	s := &Series{name: name, eps: append([]float64(nil), eps...), constant: constant}
	s.store = a.newStore(name, s.eps, constant)
	a.registry(name)[name] = s
	return s
}

// GetOrCreate returns the named series, creating it atomically if absent —
// the handshake path for concurrent network ingestion, where many
// connections may race to open the same series. An existing series is only
// returned when its precision contract (ε vector and constant flag)
// matches the declared one; a mismatch is ErrContract.
func (a *Archive) GetOrCreate(name string, eps []float64, constant bool) (s *Series, created bool, err error) {
	if len(eps) == 0 {
		return nil, false, fmt.Errorf("%w: empty epsilon", ErrDim)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if s, ok := a.registry(name)[name]; ok {
		if err := s.matches(eps, constant); err != nil {
			return nil, false, err
		}
		return s, false, nil
	}
	return a.createLocked(name, eps, constant), true, nil
}

// matches checks a declared precision contract against the series'.
func (s *Series) matches(eps []float64, constant bool) error {
	if len(eps) != len(s.eps) {
		return fmt.Errorf("%w: %q has dim %d, declared %d", ErrContract, s.name, len(s.eps), len(eps))
	}
	for i, e := range eps {
		if e != s.eps[i] {
			return fmt.Errorf("%w: %q has ε_%d = %v, declared %v", ErrContract, s.name, i, s.eps[i], e)
		}
	}
	if constant != s.constant {
		return fmt.Errorf("%w: %q constant=%v, declared %v", ErrContract, s.name, s.constant, constant)
	}
	return nil
}

// Get returns a series by name; rollup tier names resolve too.
func (a *Archive) Get(name string) (*Series, error) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	s, ok := a.registry(name)[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknown, name)
	}
	return s, nil
}

// Drop removes a series; dropping a base series takes its rollup tiers
// with it (derived data never outlives its source).
func (a *Archive) Drop(name string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	reg := a.registry(name)
	if _, ok := reg[name]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknown, name)
	}
	delete(reg, name)
	if !IsRollupName(name) && !IsShedName(name) {
		for tn := range a.tiers {
			if b, _, ok := ParseRollupName(tn); ok && b == name {
				delete(a.tiers, tn)
			}
			if b, ok := ParseShedName(tn); ok && b == name {
				delete(a.tiers, tn)
			}
		}
	}
	return nil
}

// Names returns the sorted series names.
func (a *Archive) Names() []string {
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := make([]string, 0, len(a.series))
	for n := range a.series {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Ingest filters a signal with f and stores the resulting segments under
// name (creating the series with f's precision contract). It returns the
// stored series.
func (a *Archive) Ingest(name string, f core.Filter, signal []core.Point) (*Series, error) {
	_, constant := f.(*core.Cache)
	s, err := a.Create(name, f.Epsilon(), constant)
	if err != nil {
		return nil, err
	}
	segs, err := core.Run(f, signal)
	if err != nil {
		return nil, err
	}
	if err := s.Append(segs...); err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.points = f.Stats().Points
	s.consumed = s.points
	s.mu.Unlock()
	return s, nil
}

// Name returns the series name.
func (s *Series) Name() string { return s.name }

// Epsilon returns the series' precision contract (do not modify).
func (s *Series) Epsilon() []float64 { return s.eps }

// Constant reports whether the series holds piece-wise constant data.
func (s *Series) Constant() bool { return s.constant }

// Dim returns the series dimensionality.
func (s *Series) Dim() int { return len(s.eps) }

// Append stores finalized segments, which must arrive in time order and
// match the series dimensionality. Any provisional tail is dropped:
// finalized segments supersede the announcements that preceded them
// (the sender re-covers the same interval, possibly with a different
// end point). The whole batch is validated against the post-supersede
// state before anything mutates, so a rejected segment never costs the
// series its still-valid provisional coverage.
func (s *Series) Append(segs ...core.Segment) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(segs) > 0 {
		// The first segment must follow the last surviving (finalized)
		// segment; the rest chain among themselves.
		if err := s.validateLocked(segs[0], s.store.Len()-s.provisional-1); err != nil {
			return err
		}
		for i := 1; i < len(segs); i++ {
			if err := validateSeg(segs[i], len(s.eps), segs[i-1].T0, true); err != nil {
				return err
			}
		}
	}
	if s.provisional > 0 {
		s.dropProvisionalLocked(s.provisional)
	}
	for _, seg := range segs {
		seg.Provisional = false
		s.storeLocked(seg)
	}
	return nil
}

// AppendProvisional stores one provisional receiver update. Trailing
// provisional segments it supersedes are dropped — any that overlap
// it, or start at or after its start (a degenerate single-point
// announcement re-announced from the same pivot) — so provisional
// segments always form a disjoint suffix behind the finalized ones,
// while a contiguous announcement batch (slide ships previous +
// current interval back to back) is kept whole. Validation runs before
// the drop, so a rejected update leaves the existing tail untouched.
func (s *Series) AppendProvisional(seg core.Segment) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	drop := 0
	for drop < s.provisional {
		tail := s.store.Seg(s.store.Len() - 1 - drop)
		if tail.T1 <= seg.T0 && tail.T0 < seg.T0 {
			break
		}
		drop++
	}
	if err := s.validateLocked(seg, s.store.Len()-1-drop); err != nil {
		return err
	}
	s.dropProvisionalLocked(drop)
	seg.Provisional = true
	s.storeLocked(seg)
	return nil
}

// validateLocked checks seg against the series contract and against the
// segment at index prev (the one it would follow; prev < 0 means it
// would be first). s.mu must be held.
func (s *Series) validateLocked(seg core.Segment, prev int) error {
	prevT0 := 0.0
	havePrev := prev >= 0
	if havePrev {
		prevT0 = s.store.Seg(prev).T0
	}
	return validateSeg(seg, len(s.eps), prevT0, havePrev)
}

// validateSeg is the segment-acceptance rule: matching dimensionality,
// a forward span, and a start no earlier than its predecessor's.
func validateSeg(seg core.Segment, dim int, prevT0 float64, havePrev bool) error {
	if seg.Dim() != dim || len(seg.X1) != dim {
		return fmt.Errorf("%w: segment dim %d, series dim %d", ErrDim, seg.Dim(), dim)
	}
	if seg.T1 < seg.T0 {
		return fmt.Errorf("%w: segment ends before it starts", ErrOrder)
	}
	if havePrev && seg.T0 < prevT0 {
		return fmt.Errorf("%w: segment at %v after segment at %v", ErrOrder, seg.T0, prevT0)
	}
	return nil
}

// storeLocked appends a validated segment and advances the counters;
// s.mu must be held.
func (s *Series) storeLocked(seg core.Segment) {
	s.store.Append(seg)
	s.points += seg.Points
	if seg.Provisional {
		s.provisional++
		s.provPoints += seg.Points
	}
	// The consumed high-water floors at stored plus shed: samples the
	// overload policy dropped were still consumed from the sender, so a
	// later append must not hide that the stream got further than the
	// archive did.
	if s.points+s.shed > s.consumed {
		s.consumed = s.points + s.shed
	}
}

// dropProvisionalLocked removes the n newest provisional segments;
// s.mu must be held and n ≤ s.provisional.
func (s *Series) dropProvisionalLocked(n int) {
	for i := 0; i < n; i++ {
		pts := s.store.Seg(s.store.Len() - 1 - i).Points
		s.points -= pts
		s.provPoints -= pts
	}
	s.store.DropTail(n)
	s.provisional -= n
}

// DropBefore removes the oldest stored segments whose coverage ends
// before t, returning how many were dropped — the retention primitive.
// It stops at the first segment that reaches t, so a long segment
// spanning the cutoff (and anything after it) survives, and the series
// keeps serving a contiguous, time-ordered suffix.
func (s *Series) DropBefore(t float64) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n, dropped := 0, 0
	for n < s.store.Len() && s.store.Seg(n).T1 < t {
		seg := s.store.Seg(n)
		s.points -= seg.Points
		dropped += seg.Points
		if seg.Provisional {
			s.provisional--
			s.provPoints -= seg.Points
		}
		n++
	}
	if n > 0 {
		s.store.DropHead(n)
		// Retention forgets the dropped samples entirely; shrink the
		// consumed high-water in step so staleness keeps measuring the
		// recent uncovered window, not the whole retired history.
		if s.consumed -= dropped; s.consumed < s.points {
			s.consumed = s.points
		}
		// Live indices shifted: the memoized pushdown windows no longer
		// sit on the grid. Queries rebuild them lazily.
		s.invalidateBlocks()
	}
	return n
}

// Seal folds the store's append tail into its read-optimized sealed
// form when the backing store supports it (the mmap extent store); a
// no-op for plain in-memory stores. Compaction calls it where it would
// write the series into a snapshot. The extent write and fsync run
// outside the series lock, so queries never stall on the disk; if the
// store mutates while the write is in flight (a retention prune from
// another goroutine), the install is refused and the next compaction
// retries — nothing is lost either way, the WAL still covers the tail.
func (s *Series) Seal() error {
	sl, ok := s.store.(Sealer)
	if !ok {
		return nil
	}
	s.mu.Lock()
	prep, ok := sl.PrepareSeal(s.points - s.provPoints)
	s.mu.Unlock()
	if !ok {
		return nil
	}
	if err := prep.Write(); err != nil {
		return err
	}
	s.mu.Lock()
	prep.Commit()
	s.mu.Unlock()
	return nil
}

// CompactStore asks a Compactor-backed store to merge one run of
// small sealed extents, mirroring Seal's lock choreography: capture
// under the lock, write with queries flowing, splice in under the lock
// again. Reports whether a merge committed — callers loop until false.
func (s *Series) CompactStore() (bool, error) {
	c, ok := s.store.(Compactor)
	if !ok {
		return false, nil
	}
	s.mu.Lock()
	prep, ok := c.PrepareCompact()
	s.mu.Unlock()
	if !ok {
		return false, nil
	}
	if err := prep.Write(); err != nil {
		return false, err
	}
	s.mu.Lock()
	done := prep.Commit()
	s.mu.Unlock()
	return done, nil
}

// Last returns the newest stored segment.
func (s *Series) Last() (core.Segment, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := s.store.Len()
	if n == 0 {
		return core.Segment{}, false
	}
	return s.store.Seg(n - 1), true
}

// Segments returns a copy of the stored segments.
func (s *Series) Segments() []core.Segment {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.store.Snapshot()
}

// Len returns the number of stored segments.
func (s *Series) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.store.Len()
}

// SetPoints overrides the original-sample counter. Recovery uses it to
// carry the count across archive rebuilds, where the segments alone
// cannot reproduce it (each knows its own Points, but drops and merges
// shift the total). The consumed high-water restarts from the same
// count: recovery never restores provisional tails, so there is nothing
// outstanding to measure staleness against.
func (s *Series) SetPoints(n int) {
	s.mu.Lock()
	s.points = n
	s.consumed = n
	s.shed = 0
	s.mu.Unlock()
}

// Points returns the number of original samples the series represents,
// provisional coverage included.
func (s *Series) Points() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.points
}

// FinalPoints returns the samples represented by finalized segments
// only.
func (s *Series) FinalPoints() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.points - s.provPoints
}

// PendingPoints returns the samples covered only provisionally — the
// receiver's current max-lag window.
func (s *Series) PendingPoints() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.provPoints
}

// FinalLen returns the number of finalized stored segments (the index
// space durable logs record positions in; provisional tails are never
// logged).
func (s *Series) FinalLen() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.store.Len() - s.provisional
}

// Consumed returns the consumed high-water mark: the most samples this
// series has ever represented, final or provisional. It only moves
// forward (retention aside), so a finalized segment that supersedes a
// longer provisional announcement does not hide that the sender got
// further.
func (s *Series) Consumed() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.consumed
}

// Staleness returns how many consumed samples finalized coverage
// trails: Consumed() − FinalPoints(). For a session honouring an
// m_max_lag bound this stays ≤ m; for an unbounded session it is the
// sender's current filtering-interval length (unknowable here, so 0
// until segments arrive). It distinguishes "flat signal" (large
// segments, staleness bounded) from "lagging filter" only when the
// sender announces provisional updates.
func (s *Series) Staleness() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.consumed - (s.points - s.provPoints)
}

// NoteShed records that an overload policy dropped a segment carrying
// pts consumed samples before it could land in the archive. The samples
// crossed the wire, so the consumed high-water mark must advance past
// them — a drop can only grow the series' reported staleness, never
// shrink it (in particular, shedding a provisional receiver update must
// not roll the provisional high-water back). Finalized drops count into
// the permanent shed offset, since no later append will re-cover them;
// a provisional drop only bumps the high-water, because the final
// segment that closes its interval will still arrive and re-carry its
// points.
func (s *Series) NoteShed(pts int, provisional bool) {
	if pts <= 0 {
		return
	}
	s.mu.Lock()
	if !provisional {
		s.shed += pts
	}
	c := s.points - s.provPoints + s.shed
	if provisional {
		c += pts
	}
	if c > s.consumed {
		s.consumed = c
	}
	s.mu.Unlock()
}

// Shed returns how many consumed samples overload policies dropped from
// this series' stream, lifetime.
func (s *Series) Shed() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.shed
}

// NoteEffectiveEpsilon widens the series' effective precision to at
// least eff in every dimension. It is monotone: the effective ε reports
// the coarsest data ever archived under the contract, so it never
// narrows while that data may still be served. Dimensions beyond the
// series' are ignored; components below the contract are clamped to it.
func (s *Series) NoteEffectiveEpsilon(eff []float64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.eps {
		if i >= len(eff) {
			break
		}
		e := eff[i]
		if math.IsNaN(e) || math.IsInf(e, 0) || e <= s.eps[i] {
			continue
		}
		if s.effEps == nil {
			s.effEps = append([]float64(nil), s.eps...)
		}
		if e > s.effEps[i] {
			s.effEps[i] = e
		}
	}
}

// QueryEpsilon returns the per-dimension precision query bounds must
// report: the contract ε, inflated by any degradation the archived data
// passed through (do not modify). Equal to Epsilon when nothing was ever
// shed or renegotiated.
func (s *Series) QueryEpsilon() []float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.effEps == nil {
		return s.eps
	}
	return s.effEps
}

// EffExtra returns the effective-ε inflation above contract in dim —
// the extra band width every answer over this series must absorb, even
// when served from a rollup tier (the tier re-encodes data that was
// already coarse).
func (s *Series) EffExtra(dim int) float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.effEps == nil || dim < 0 || dim >= len(s.eps) {
		return 0
	}
	return s.effEps[dim] - s.eps[dim]
}

// queryEps returns the reported precision in one dimension; the
// pushdown and aggregate paths use it where they used the contract.
func (s *Series) queryEps(dim int) float64 {
	if s.effEps != nil && dim < len(s.effEps) {
		return s.effEps[dim]
	}
	return s.eps[dim]
}

// SetLagHint records the m_max_lag bound the most recent ingest session
// advertised for this series (informational, surfaced by LAG queries).
func (s *Series) SetLagHint(m int) {
	s.mu.Lock()
	s.lagHint = m
	s.mu.Unlock()
}

// LagHint returns the last advertised m_max_lag bound (0 = none).
func (s *Series) LagHint() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.lagHint
}

// Span returns the covered time span.
func (s *Series) Span() (t0, t1 float64, ok bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	n := s.store.Len()
	if n == 0 {
		return 0, 0, false
	}
	// Appends are validated time-ordered and non-overlapping, so the
	// last segment carries the covered end.
	return s.store.Seg(0).T0, s.store.Seg(n - 1).T1, true
}

// locate returns the index of a segment covering t, or -1.
func (s *Series) locate(t float64) int {
	var i int
	if ti, ok := s.store.(TimeIndex); ok {
		// The store can binary-search its own layout (for the mmap store,
		// directly over the mapping) without materializing a segment per
		// probe.
		i = ti.SearchT0(t) - 1
	} else {
		i = sort.Search(s.store.Len(), func(j int) bool { return s.store.Seg(j).T0 > t }) - 1
	}
	if i < 0 {
		return -1
	}
	if t <= s.store.Seg(i).T1 {
		return i
	}
	if i > 0 {
		if prev := s.store.Seg(i - 1); t >= prev.T0 && t <= prev.T1 {
			return i - 1
		}
	}
	return -1
}

// At evaluates the series at time t, reporting whether t is covered.
func (s *Series) At(t float64) ([]float64, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	i := s.locate(t)
	if i < 0 {
		return nil, false
	}
	seg := s.store.Seg(i)
	out := make([]float64, len(s.eps))
	for d := range out {
		out[d] = seg.At(d, t)
	}
	return out, true
}

// Scan returns the stored segments overlapping [t0, t1].
func (s *Series) Scan(t0, t1 float64) ([]core.Segment, error) {
	if t1 < t0 || math.IsNaN(t0) || math.IsNaN(t1) {
		return nil, ErrRange
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	var out []core.Segment
	for i, n := 0, s.store.Len(); i < n; i++ {
		seg := s.store.Seg(i)
		if seg.T1 >= t0 && seg.T0 <= t1 {
			out = append(out, seg)
		}
		if seg.T0 > t1 {
			break
		}
	}
	return out, nil
}

// Sample reconstructs points at times t0, t0+dt, … up to t1 (inclusive),
// skipping uncovered times.
func (s *Series) Sample(t0, t1, dt float64) ([]core.Point, error) {
	if t1 < t0 || dt <= 0 || math.IsNaN(t0) || math.IsNaN(t1) || math.IsNaN(dt) {
		return nil, ErrRange
	}
	var out []core.Point
	for t := t0; t <= t1+1e-12; t += dt {
		if x, ok := s.At(t); ok {
			out = append(out, core.Point{T: t, X: x})
		}
	}
	return out, nil
}
