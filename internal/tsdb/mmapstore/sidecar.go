package mmapstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"strconv"
	"strings"

	"github.com/pla-go/pla/internal/core"
	"github.com/pla-go/pla/internal/sketch"
)

// Sketch sidecar: one optional `ext-%08d.sum` file next to each sealed
// extent, holding the canonical pushdown summary blocks (exact
// aggregates + compressed quantile sketch per dimension) for every
// window of sketch.WindowSize live segments that lies entirely inside
// the extent. Queries over sealed ranges then read sketch bytes instead
// of decoding records.
//
// The sidecar rides the existing two-phase seal crash protocol: it is
// written and fsynced by PreparedSeal.Write, before the meta moves, so
// a crash leaves either no sidecar (fallback) or a sidecar whose extent
// the next open discards as out-of-window (both files are removed
// together). The file is a pure cache of sketch.BuildBlock output: an
// absent, torn, or corrupt sidecar — or one whose window anchors no
// longer line up because retention fenced records out — never changes a
// query's answer, only how much of it is recomputed, so old data dirs
// keep working untouched.
//
// Layout (little endian):
//
//	offset 0: magic "PLAS" (4)
//	       4: version (1)
//	       5: 3 pad bytes
//	       8: crc32c (uint32) over the payload (offset 12…)
//	payload:
//	       absStart uvarint   live sealed index of the extent's first
//	                          record at seal time
//	       count    uvarint   extent record count (cross-checked)
//	       dim      uvarint
//	       nblocks  uvarint
//	       nblocks × { lo uvarint; dim × Agg; dim × Summary }
const (
	sidecarSuffix  = ".sum"
	sidecarMagic   = "PLAS"
	sidecarVersion = 1
	// sidecarMaxBlocks bounds what a corrupt header can make us
	// allocate; real sidecars hold count/WindowSize blocks.
	sidecarMaxBlocks = 1 << 20
)

// sidecar is a decoded sidecar file: the window blocks it carries and
// the anchor they are valid against.
type sidecar struct {
	absStart int
	count    int
	blocks   []sketch.Block
}

// sidecarPath derives the sidecar name from its extent's path.
func sidecarPath(extPath string) string {
	return strings.TrimSuffix(extPath, ".seg") + sidecarSuffix
}

// matchSumName parses an extent sequence number out of a sidecar file
// name, mirroring matchExtName.
func matchSumName(name string, seq *uint64) bool {
	digits, ok := strings.CutPrefix(name, "ext-")
	if !ok {
		return false
	}
	digits, ok = strings.CutSuffix(digits, sidecarSuffix)
	if !ok || len(digits) < 8 {
		return false
	}
	v, err := strconv.ParseUint(digits, 10, 64)
	if err != nil {
		return false
	}
	*seq = v
	return true
}

// buildSidecar computes the canonical blocks for an extent holding segs
// at live indices [absStart, absStart+len(segs)). Returns nil when no
// complete window fits.
func buildSidecar(absStart, dim int, segs []core.Segment) *sidecar {
	const w = sketch.WindowSize
	first := absStart + (w-absStart%w)%w
	sc := &sidecar{absStart: absStart, count: len(segs)}
	for lo := first; lo+w <= absStart+len(segs); lo += w {
		sc.blocks = append(sc.blocks, sketch.BuildBlock(lo, dim, func(i int) core.Segment {
			return segs[i-absStart]
		}))
	}
	if len(sc.blocks) == 0 {
		return nil
	}
	return sc
}

// writeSidecar persists sc next to its extent, fsynced, removing any
// partial file on failure. Like the extent write it runs before the
// meta moves; unlike it, failure is not fatal to the seal — the caller
// logs and continues, queries fall back to the segment walk.
func writeSidecar(path string, sc *sidecar) error {
	payload := binary.AppendUvarint(nil, uint64(sc.absStart))
	payload = binary.AppendUvarint(payload, uint64(sc.count))
	dim := len(sc.blocks[0].Aggs)
	payload = binary.AppendUvarint(payload, uint64(dim))
	payload = binary.AppendUvarint(payload, uint64(len(sc.blocks)))
	for _, blk := range sc.blocks {
		payload = binary.AppendUvarint(payload, uint64(blk.Lo))
		for d := 0; d < dim; d++ {
			payload = sketch.AppendAggBinary(payload, blk.Aggs[d])
		}
		for d := 0; d < dim; d++ {
			payload = blk.Sketches[d].AppendBinary(payload)
		}
	}
	hdr := make([]byte, 12)
	copy(hdr, sidecarMagic)
	hdr[4] = sidecarVersion
	binary.LittleEndian.PutUint32(hdr[8:], crc32.Checksum(payload, castagnoli))

	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	fail := func(err error) error {
		f.Close()
		os.Remove(path)
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<16)
	if _, err := bw.Write(hdr); err != nil {
		return fail(err)
	}
	if _, err := bw.Write(payload); err != nil {
		return fail(err)
	}
	if err := bw.Flush(); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	return f.Close()
}

// readSidecar loads and fully validates a sidecar file: checksum first,
// then structure, then that every block sits on the canonical window
// grid inside the extent it annotates. Any failure rejects the whole
// file — it is a cache, so rejection costs a recompute, never data.
func readSidecar(path string, wantDim int) (*sidecar, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(raw) < 12 || string(raw[:4]) != sidecarMagic {
		return nil, fmt.Errorf("mstore: bad sidecar magic")
	}
	if raw[4] != sidecarVersion {
		return nil, fmt.Errorf("mstore: unknown sidecar version %d", raw[4])
	}
	payload := raw[12:]
	if got, hdr := crc32.Checksum(payload, castagnoli), binary.LittleEndian.Uint32(raw[8:]); got != hdr {
		return nil, fmt.Errorf("mstore: sidecar checksum %#x, header says %#x", got, hdr)
	}
	var sc sidecar
	absStart, payload, err := takeUvarint(payload)
	if err != nil {
		return nil, err
	}
	count, payload, err := takeUvarint(payload)
	if err != nil {
		return nil, err
	}
	dim, payload, err := takeUvarint(payload)
	if err != nil {
		return nil, err
	}
	nblocks, payload, err := takeUvarint(payload)
	if err != nil {
		return nil, err
	}
	if absStart > 1<<40 || count > 1<<32 || dim == 0 || dim > extMaxDim || nblocks > sidecarMaxBlocks {
		return nil, fmt.Errorf("mstore: implausible sidecar header")
	}
	if int(dim) != wantDim {
		return nil, fmt.Errorf("mstore: sidecar dim %d, series dim %d", dim, wantDim)
	}
	sc.absStart, sc.count = int(absStart), int(count)
	for b := uint64(0); b < nblocks; b++ {
		var lo uint64
		if lo, payload, err = takeUvarint(payload); err != nil {
			return nil, err
		}
		blk := sketch.Block{Lo: int(lo), Hi: int(lo) + sketch.WindowSize,
			Aggs: make([]sketch.Agg, dim), Sketches: make([]*sketch.Summary, dim)}
		for d := range blk.Aggs {
			if blk.Aggs[d], payload, err = sketch.ParseAgg(payload); err != nil {
				return nil, err
			}
		}
		for d := range blk.Sketches {
			if blk.Sketches[d], payload, err = sketch.ParseSummary(payload); err != nil {
				return nil, err
			}
		}
		if !blk.Aligned() || blk.Lo < sc.absStart || blk.Hi > sc.absStart+sc.count {
			return nil, fmt.Errorf("mstore: sidecar block [%d, %d) outside extent window", blk.Lo, blk.Hi)
		}
		sc.blocks = append(sc.blocks, blk)
	}
	if len(payload) != 0 {
		return nil, fmt.Errorf("mstore: %d trailing sidecar bytes", len(payload))
	}
	return &sc, nil
}
