//go:build !unix

package mmapstore

import "os"

// mapFile falls back to reading the whole file on platforms without a
// usable mmap: the store keeps its sealed-format, checksum and fencing
// semantics, just without the shared-page residency win.
func mapFile(path string) ([]byte, error) {
	return os.ReadFile(path)
}

// unmapFile releases a mapping returned by mapFile (a no-op for the
// read fallback; the garbage collector owns the bytes).
func unmapFile(data []byte) {}
