package mmapstore

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
)

// Column codecs for the v2 extent format. A column is one field across
// every record of a block (t0, t1, points, one dimension of x0 or x1),
// carried as uint64 lanes: float columns store math.Float64bits, the
// points column stores the counter value. Each column picks, by
// measured encoded size, one of four encodings:
//
//	colRaw    the lanes verbatim, 8 bytes each — the incompressible case
//	colDoD    integer delta-of-delta: first value raw, first delta as a
//	          zig-zag uvarint, then the remaining delta-of-deltas
//	          bit-packed at the block's measured width. Timestamps on a
//	          regular grid and near-constant point counts collapse to
//	          ~0 bits per record. Float lanes qualify only when every
//	          value round-trips bit-exactly through int64.
//	colXOR    Gorilla-style: first lane raw, then each lane XORed with
//	          its predecessor, bit-packed at the block-wide significant
//	          width (shared leading/trailing-zero bounds). Always
//	          bit-exact, the slowly-moving-float workhorse.
//	colDirect bit-packed lane values at the width of the largest —
//	          small non-negative integers (point counts).
//
// Every encoding is deterministic, so re-encoding a decoded column
// reproduces the bytes — the property the fuzz round trip pins.
const (
	colRaw    = 0
	colDoD    = 1
	colXOR    = 2
	colDirect = 3
)

// bitWriter packs MSB-first fixed-width bit groups into a byte buffer.
type bitWriter struct {
	buf []byte
	acc uint64
	n   uint
}

func (w *bitWriter) writeBits(v uint64, width uint) {
	if width == 0 {
		return
	}
	if width > 32 {
		w.writeBits(v>>32, width-32)
		w.writeBits(v&0xffffffff, 32)
		return
	}
	w.acc = w.acc<<width | (v & (1<<width - 1))
	w.n += width
	for w.n >= 8 {
		w.n -= 8
		w.buf = append(w.buf, byte(w.acc>>w.n))
	}
}

// flush pads the pending bits to a byte boundary (zeros on the right).
func (w *bitWriter) flush() {
	if w.n > 0 {
		w.buf = append(w.buf, byte(w.acc<<(8-w.n)))
		w.n = 0
	}
	w.acc = 0
}

// bitReader mirrors bitWriter over a byte slice.
type bitReader struct {
	buf []byte
	pos int
	acc uint64
	n   uint
}

func (r *bitReader) readBits(width uint) (uint64, bool) {
	if width == 0 {
		return 0, true
	}
	if width > 32 {
		hi, ok := r.readBits(width - 32)
		if !ok {
			return 0, false
		}
		lo, ok := r.readBits(32)
		if !ok {
			return 0, false
		}
		return hi<<32 | lo, true
	}
	for r.n < width {
		if r.pos >= len(r.buf) {
			return 0, false
		}
		r.acc = r.acc<<8 | uint64(r.buf[r.pos])
		r.pos++
		r.n += 8
	}
	r.n -= width
	return (r.acc >> r.n) & (1<<width - 1), true
}

// bytesRead returns how many bytes the reader has consumed (partially
// read bytes count whole — the writer pads the same way).
func (r *bitReader) bytesRead() int { return r.pos }

func zigzag(v int64) uint64   { return uint64(v<<1) ^ uint64(v>>63) }
func unzigzag(u uint64) int64 { return int64(u>>1) ^ -int64(u&1) }

// dodInts reinterprets lanes as int64 values for delta-of-delta
// encoding. Float lanes qualify only when the value is bit-exactly an
// integer (the common timestamps-on-a-grid case); -0.0 and NaN fail the
// round-trip check and fall through to XOR or raw.
func dodInts(lanes []uint64, floatKind bool, dst []int64) ([]int64, bool) {
	dst = dst[:0]
	for _, l := range lanes {
		if !floatKind {
			dst = append(dst, int64(l))
			continue
		}
		f := math.Float64frombits(l)
		if math.Abs(f) > 1<<53 {
			return dst, false
		}
		i := int64(f)
		if math.Float64bits(float64(i)) != l {
			return dst, false
		}
		dst = append(dst, i)
	}
	return dst, true
}

// dodWidth measures the bit-pack width the delta-of-delta residuals of
// vals need (the residual stream starts at the third value; the first
// delta is carried separately so a linear column costs zero bits).
func dodWidth(vals []int64) int {
	w := 0
	if len(vals) < 3 {
		return 0
	}
	prevD := vals[1] - vals[0]
	for i := 2; i < len(vals); i++ {
		d := vals[i] - vals[i-1]
		if n := bits.Len64(zigzag(d - prevD)); n > w {
			w = n
		}
		prevD = d
	}
	return w
}

// xorPlan measures the XOR encoding of lanes: the block-wide trailing
// shift and significant width of the xor-vs-previous stream.
func xorPlan(lanes []uint64) (shift, width int) {
	var or uint64
	for i := 1; i < len(lanes); i++ {
		or |= lanes[i] ^ lanes[i-1]
	}
	if or == 0 {
		return 0, 0
	}
	shift = bits.TrailingZeros64(or)
	width = 64 - bits.LeadingZeros64(or) - shift
	return shift, width
}

// directWidth measures the bit-pack width of the lane values verbatim.
func directWidth(lanes []uint64) int {
	w := 0
	for _, l := range lanes {
		if n := bits.Len64(l); n > w {
			w = n
		}
	}
	return w
}

func packedLen(groups, width int) int { return (groups*width + 7) / 8 }

// appendColumn encodes one column, choosing the smallest candidate
// encoding (ties prefer the cheaper decoder). floatKind selects the
// candidate set: float columns try DoD (when integral), XOR and raw;
// integer columns try DoD, direct and raw. scratch is reused across
// calls to keep sealing allocation-flat.
func appendColumn(dst []byte, lanes []uint64, floatKind bool, scratch []int64) ([]byte, []int64) {
	n := len(lanes)
	rawSize := 1 + 8*n

	ints, intsOK := dodInts(lanes, floatKind, scratch)
	scratch = ints
	dodSize := -1
	dodW := 0
	if intsOK {
		dodW = dodWidth(ints)
		dodSize = 1 + 8
		if n >= 2 {
			dodSize += len(binary.AppendUvarint(nil, zigzag(ints[1]-ints[0]))) + 1 + packedLen(n-2, dodW)
		}
	}

	best, bestSize := colRaw, rawSize
	var xorShift, xorW, dirW int
	if floatKind {
		xorShift, xorW = xorPlan(lanes)
		if s := 1 + 8 + 2 + packedLen(n-1, xorW); s < bestSize {
			best, bestSize = colXOR, s
		}
	} else {
		dirW = directWidth(lanes)
		if s := 1 + 1 + packedLen(n, dirW); s < bestSize {
			best, bestSize = colDirect, s
		}
	}
	if dodSize >= 0 && dodSize <= bestSize {
		best = colDoD
	}

	switch best {
	case colDoD:
		dst = append(dst, colDoD)
		dst = binary.LittleEndian.AppendUint64(dst, uint64(ints[0]))
		if n >= 2 {
			dst = binary.AppendUvarint(dst, zigzag(ints[1]-ints[0]))
			dst = append(dst, byte(dodW))
			bw := bitWriter{buf: dst}
			prevD := ints[1] - ints[0]
			for i := 2; i < n; i++ {
				d := ints[i] - ints[i-1]
				bw.writeBits(zigzag(d-prevD), uint(dodW))
				prevD = d
			}
			bw.flush()
			dst = bw.buf
		}
	case colXOR:
		dst = append(dst, colXOR)
		dst = binary.LittleEndian.AppendUint64(dst, lanes[0])
		dst = append(dst, byte(xorShift), byte(xorW))
		bw := bitWriter{buf: dst}
		for i := 1; i < n; i++ {
			bw.writeBits((lanes[i]^lanes[i-1])>>xorShift, uint(xorW))
		}
		bw.flush()
		dst = bw.buf
	case colDirect:
		dst = append(dst, colDirect)
		dst = append(dst, byte(dirW))
		bw := bitWriter{buf: dst}
		for _, l := range lanes {
			bw.writeBits(l, uint(dirW))
		}
		bw.flush()
		dst = bw.buf
	default:
		dst = append(dst, colRaw)
		for _, l := range lanes {
			dst = binary.LittleEndian.AppendUint64(dst, l)
		}
	}
	return dst, scratch
}

// decodeColumn decodes one column of n lanes from p into dst,
// returning the remaining bytes. It validates every structural claim
// (tags, widths, available bytes) — openExtent runs it over every block
// once, so post-validation decodes cannot fail. The hot path allocates
// nothing.
func decodeColumn(p []byte, n int, floatKind bool, dst []uint64) ([]byte, error) {
	if len(p) < 1 {
		return nil, fmt.Errorf("mstore: truncated column")
	}
	tag := p[0]
	p = p[1:]
	switch tag {
	case colRaw:
		if len(p) < 8*n {
			return nil, fmt.Errorf("mstore: truncated raw column")
		}
		for i := 0; i < n; i++ {
			dst[i] = binary.LittleEndian.Uint64(p[8*i:])
		}
		return p[8*n:], nil

	case colDoD:
		if len(p) < 8 {
			return nil, fmt.Errorf("mstore: truncated dod column")
		}
		x := int64(binary.LittleEndian.Uint64(p))
		p = p[8:]
		dst[0] = dodLane(x, floatKind)
		if n < 2 {
			return p, nil
		}
		zz, used := binary.Uvarint(p)
		if used <= 0 {
			return nil, fmt.Errorf("mstore: bad dod first delta")
		}
		p = p[used:]
		if len(p) < 1 {
			return nil, fmt.Errorf("mstore: truncated dod width")
		}
		w := int(p[0])
		p = p[1:]
		if w > 64 {
			return nil, fmt.Errorf("mstore: dod width %d", w)
		}
		d := unzigzag(zz)
		x += d
		dst[1] = dodLane(x, floatKind)
		br := bitReader{buf: p}
		for i := 2; i < n; i++ {
			g, ok := br.readBits(uint(w))
			if !ok {
				return nil, fmt.Errorf("mstore: truncated dod payload")
			}
			d += unzigzag(g)
			x += d
			dst[i] = dodLane(x, floatKind)
		}
		need := packedLen(n-2, w)
		if br.bytesRead() > need || len(p) < need {
			return nil, fmt.Errorf("mstore: short dod payload")
		}
		return p[need:], nil

	case colXOR:
		if len(p) < 10 {
			return nil, fmt.Errorf("mstore: truncated xor column")
		}
		x := binary.LittleEndian.Uint64(p)
		shift, w := int(p[8]), int(p[9])
		p = p[10:]
		if shift > 63 || w > 64 || shift+w > 64 {
			return nil, fmt.Errorf("mstore: xor shift %d width %d", shift, w)
		}
		dst[0] = x
		br := bitReader{buf: p}
		for i := 1; i < n; i++ {
			g, ok := br.readBits(uint(w))
			if !ok {
				return nil, fmt.Errorf("mstore: truncated xor payload")
			}
			x ^= g << shift
			dst[i] = x
		}
		need := packedLen(n-1, w)
		if br.bytesRead() > need || len(p) < need {
			return nil, fmt.Errorf("mstore: short xor payload")
		}
		return p[need:], nil

	case colDirect:
		if len(p) < 1 {
			return nil, fmt.Errorf("mstore: truncated direct column")
		}
		w := int(p[0])
		p = p[1:]
		if w > 64 {
			return nil, fmt.Errorf("mstore: direct width %d", w)
		}
		br := bitReader{buf: p}
		for i := 0; i < n; i++ {
			g, ok := br.readBits(uint(w))
			if !ok {
				return nil, fmt.Errorf("mstore: truncated direct payload")
			}
			dst[i] = g
		}
		need := packedLen(n, w)
		if br.bytesRead() > need || len(p) < need {
			return nil, fmt.Errorf("mstore: short direct payload")
		}
		return p[need:], nil
	}
	return nil, fmt.Errorf("mstore: unknown column encoding %d", tag)
}

// dodLane converts a decoded delta-of-delta integer back into its lane
// representation.
func dodLane(x int64, floatKind bool) uint64 {
	if floatKind {
		return math.Float64bits(float64(x))
	}
	return uint64(x)
}
