// Package mmapstore is the read-optimized tsdb.SegmentStore: each
// series keeps its finalized segments in immutable, checksummed,
// memory-mapped extent files of fixed-width records, plus an in-memory
// append tail for segments that have not been sealed yet. The layout
// follows Ferragina & Lari's observation that PLA segment sequences
// admit compact, directly-searchable encodings: records are sorted by
// start time and fixed width, so locating a query time is a binary
// search over the mapping — no decode pass, no per-segment heap
// allocation for data at rest.
//
// A data directory holds one subdirectory per series:
//
//	mstore/
//	  <hash>-<name>/
//	    meta               contract, sample count, live-record fences
//	    ext-00000001.seg   sealed extent (header + fixed-width records)
//	    ext-00000002.seg
//
// Extents are written once, fsynced, and never modified; the meta file
// (rewritten atomically) carries the live window, so retention
// (DropHead) fences records out without touching extent bytes and
// deletes an extent file only once nothing in it is live. Sealing —
// folding the append tail into a new extent — happens at WAL
// compaction time; crash recovery maps the sealed extents as-is and
// replays only the WAL tail into the append buffer, which is what
// turns a cold start from O(decode archive) into O(map + replay tail).
//
// Stores are not safe for concurrent use on their own: tsdb.Series
// serialises every access under its lock, exactly as it does for the
// in-memory store.
package mmapstore

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/pla-go/pla/internal/core"
	"github.com/pla-go/pla/internal/fsutil"
	"github.com/pla-go/pla/internal/sketch"
	"github.com/pla-go/pla/internal/tsdb"
)

// Dir is the root of an extent store: one subdirectory per series,
// shared by every series of one archive. It is safe for concurrent use
// (per-series stores are still serialised by their Series lock).
type Dir struct {
	root string
	cfg  Config
	logf func(format string, args ...any)

	// Observability counters; atomic because stores mutate under their
	// own series locks while /metrics scrapes concurrently.
	extents        atomic.Int64
	rollupExtents  atomic.Int64
	compactions    atomic.Uint64
	compactedBytes atomic.Uint64
	indexJumps     atomic.Uint64

	mu     sync.Mutex
	stores map[string]*Store
}

// Config tunes a Dir's write format, compaction policy and lookup
// path. The zero value is the production default: v2 extents, fence
// index on, compaction at 8 extents merging toward 64Ki records.
type Config struct {
	// CompactMinExtents is how many sealed extents a series
	// accumulates before PrepareCompact offers a merge. 0 means the
	// default (8); negative disables background compaction.
	CompactMinExtents int

	// TargetRecords is the merged-extent size goal: only extents
	// smaller than this are merge candidates, and a merge run stops
	// growing once it reaches it. 0 means the default (65536).
	TargetRecords int

	// NoFenceIndex disables the learned fence index and restores the
	// global per-record binary search — the benchmarking baseline.
	NoFenceIndex bool

	// WriteV1 makes seals and compactions emit fixed-width v1 extents
	// instead of column-block v2 — the format-comparison baseline.
	// Either version stays readable regardless.
	WriteV1 bool
}

// DirMetrics is a point-in-time snapshot of the Dir's observability
// counters.
type DirMetrics struct {
	Extents        int64  // mapped live extents across open stores
	RollupExtents  int64  // subset of Extents belonging to rollup tier series
	Compactions    uint64 // committed background merges
	CompactedBytes uint64 // bytes of retired extent files merged away
	IndexJumps     uint64 // sealed lookups served via the fence index
}

// Open creates (if needed) and opens an extent-store root directory
// with the default Config.
func Open(root string, logf func(format string, args ...any)) (*Dir, error) {
	return OpenWith(root, Config{}, logf)
}

// OpenWith is Open with an explicit Config.
func OpenWith(root string, cfg Config, logf func(format string, args ...any)) (*Dir, error) {
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, err
	}
	if logf == nil {
		logf = func(string, ...any) {}
	}
	return &Dir{root: root, cfg: cfg, logf: logf, stores: make(map[string]*Store)}, nil
}

// Metrics snapshots the Dir's counters.
func (d *Dir) Metrics() DirMetrics {
	return DirMetrics{
		Extents:        d.extents.Load(),
		RollupExtents:  d.rollupExtents.Load(),
		Compactions:    d.compactions.Load(),
		CompactedBytes: d.compactedBytes.Load(),
		IndexJumps:     d.indexJumps.Load(),
	}
}

// compactPolicy resolves the configured compaction knobs to their
// effective values; enabled is false when compaction is switched off.
func (d *Dir) compactPolicy() (minExtents, targetRecords int, enabled bool) {
	minExtents = d.cfg.CompactMinExtents
	if minExtents < 0 {
		return 0, 0, false
	}
	if minExtents == 0 {
		minExtents = defaultCompactMinExtents
	}
	targetRecords = d.cfg.TargetRecords
	if targetRecords <= 0 {
		targetRecords = defaultCompactTargetRecords
	}
	return minExtents, targetRecords, true
}

// writeExtentFile writes segs in the configured extent format.
func (d *Dir) writeExtentFile(path string, eps []float64, constant bool, segs []core.Segment) error {
	if d.cfg.WriteV1 {
		return writeExtent(path, eps, constant, segs)
	}
	return writeExtentV2(path, eps, constant, segs)
}

// Exists reports whether root holds (or held) an extent store — the
// signal that a previous run used the mmap backend and a differently
// configured boot must migrate its contents.
func Exists(root string) bool {
	info, err := os.Stat(root)
	return err == nil && info.IsDir()
}

// Root returns the store's root directory.
func (d *Dir) Root() string { return d.root }

// Store returns the segment store for the named series, opening (and
// mapping) any state a previous run left on disk. It is the factory
// tsdb.NewWithNamedStore expects; unreadable leftovers are logged and
// reset rather than failing series creation.
func (d *Dir) Store(name string, eps []float64, constant bool) tsdb.SegmentStore {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.openLocked(name, eps, constant)
}

func (d *Dir) openLocked(name string, eps []float64, constant bool) *Store {
	if st, ok := d.stores[name]; ok {
		return st
	}
	st := &Store{
		d:        d,
		name:     name,
		dir:      filepath.Join(d.root, seriesDirName(name)),
		eps:      append([]float64(nil), eps...),
		constant: constant,
		rollup:   tsdb.IsRollupName(name),
	}
	if err := st.open(); err != nil {
		// The factory cannot fail; a series whose on-disk leftovers do
		// not load starts fresh (the write-ahead log still holds
		// anything that mattered and was not yet sealed).
		d.logf("mstore: %s: resetting unreadable series state: %v", name, err)
		st.reset()
	}
	st.addExtents(int64(len(st.exts)))
	d.stores[name] = st
	return st
}

// Remove deletes every trace of the named series — the replace path of
// duplicate-series reconciliation, where a newer copy is about to be
// rebuilt from scratch.
func (d *Dir) Remove(name string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if st, ok := d.stores[name]; ok {
		st.unmapAll()
		st.addExtents(-int64(len(st.exts)))
		delete(d.stores, name)
	}
	dir := filepath.Join(d.root, seriesDirName(name))
	if err := os.RemoveAll(dir); err != nil {
		return err
	}
	syncDir(d.root, d.logf)
	return nil
}

// LoadInto pre-populates db with every series the directory holds —
// the recovery step that replaces decoding a snapshot. Series whose
// archive uses this Dir as its store factory self-populate from the
// mapped extents when created; with any other factory (a migration
// back to the in-memory store) the sealed segments are appended
// explicitly. Returns the number of series loaded.
func (d *Dir) LoadInto(db *tsdb.Archive) (int, error) {
	entries, err := os.ReadDir(d.root)
	if err != nil {
		return 0, err
	}
	n := 0
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		meta, err := readMeta(filepath.Join(d.root, e.Name(), metaName))
		if err != nil {
			if os.IsNotExist(err) {
				// A crash before the series' first meta write: whatever
				// extents exist are not yet covered by any meta, so the
				// WAL still holds their records. Drop the directory.
				d.logf("mstore: removing pre-meta series dir %s", e.Name())
				os.RemoveAll(filepath.Join(d.root, e.Name()))
				continue
			}
			return n, fmt.Errorf("mstore: %s: %w", e.Name(), err)
		}
		s, err := db.Create(meta.name, meta.eps, meta.constant)
		if err != nil {
			return n, fmt.Errorf("mstore: load %q: %w", meta.name, err)
		}
		if s.Len() > 0 {
			// The archive's factory is this Dir: the store came up
			// already mapped. Only the sample counter needs carrying.
			s.SetPoints(d.points(meta.name))
		} else {
			d.mu.Lock()
			st := d.openLocked(meta.name, meta.eps, meta.constant)
			d.mu.Unlock()
			if err := s.Append(st.Snapshot()...); err != nil {
				return n, fmt.Errorf("mstore: load %q: %w", meta.name, err)
			}
			s.SetPoints(st.metaPoints)
		}
		n++
	}
	return n, nil
}

// points returns the persisted sample count of an open store.
func (d *Dir) points(name string) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	if st, ok := d.stores[name]; ok {
		return st.metaPoints
	}
	return 0
}

// Close unmaps every open extent. The stores are unusable afterwards;
// call only once nothing references the archive any more.
func (d *Dir) Close() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, st := range d.stores {
		st.unmapAll()
		st.addExtents(-int64(len(st.exts)))
	}
	d.stores = make(map[string]*Store)
	return nil
}

// seriesDirName builds a filesystem-safe, collision-resistant directory
// name: an FNV-1a hash of the full name plus a sanitised prefix for
// debuggability (the meta file carries the authoritative name).
func seriesDirName(name string) string {
	h := fnv.New64a()
	h.Write([]byte(name))
	safe := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '.', r == '_', r == '-':
			return r
		default:
			return '_'
		}
	}, name)
	if len(safe) > 40 {
		safe = safe[:40]
	}
	return fmt.Sprintf("%016x-%s", h.Sum64(), safe)
}

// Store is one series' segment store: sealed extents plus the append
// tail. It implements tsdb.SegmentStore, tsdb.Sealer and
// tsdb.TimeIndex.
type Store struct {
	d        *Dir
	name     string
	dir      string
	eps      []float64
	constant bool
	rollup   bool // the series is a rollup tier (tracked separately in metrics)

	exts       []*extent
	cumLive    []int     // cumLive[i] = live records in exts[:i]
	liveT0s    []float64 // liveT0s[i] = first live start time of exts[i]
	fence      *fenceIndex
	headDisc   bool // the surviving sealed head lost its predecessor
	metaPoints int  // persisted finalized sample count
	lastSeq    uint64
	sums       map[uint64]*sidecar // loaded sketch sidecars, by extent seq

	// gen counts destructive mutations (fence drops). An in-flight
	// two-phase seal compares it between prepare and commit: a changed
	// generation means the captured tail may no longer be the store's
	// prefix, so the install is refused and the next compaction retries.
	gen uint64

	tail []core.Segment
}

// addExtents adjusts the Dir's live-extent gauges by delta, keeping
// the rollup-tier sub-gauge in step for tier stores. Every site that
// changes a store's extent count goes through here.
func (st *Store) addExtents(delta int64) {
	st.d.extents.Add(delta)
	if st.rollup {
		st.d.rollupExtents.Add(delta)
	}
}

// open maps whatever state the series directory holds.
func (st *Store) open() error {
	meta, err := readMeta(filepath.Join(st.dir, metaName))
	if os.IsNotExist(err) {
		return nil // fresh series
	}
	if err != nil {
		return err
	}
	if meta.name != st.name || !floatsEq(meta.eps, st.eps) || meta.constant != st.constant {
		return fmt.Errorf("mstore: series dir holds %q (dim %d), want %q (dim %d)",
			meta.name, len(meta.eps), st.name, len(st.eps))
	}
	st.headDisc = meta.headDisc
	st.metaPoints = meta.points
	st.lastSeq = meta.lastSeq

	// v2 metas list the live extents explicitly, in time order —
	// compaction makes sequence order and time order diverge. v1 metas
	// imply the list from the [firstSeq, lastSeq] window, where the two
	// orders still coincide.
	pos := make(map[uint64]int, len(meta.exts))
	for i, seq := range meta.exts {
		pos[seq] = i
	}

	entries, err := os.ReadDir(st.dir)
	if err != nil {
		return err
	}
	var files []struct {
		seq  uint64
		path string
	}
	sumFiles := make(map[uint64]string)
	for _, e := range entries {
		var seq uint64
		if e.IsDir() {
			continue
		}
		if matchSumName(e.Name(), &seq) {
			// Sidecars are claimed by their extent below; whatever is
			// left over (out-of-window, corrupt extent, orphan) is junk.
			sumFiles[seq] = filepath.Join(st.dir, e.Name())
			continue
		}
		if !matchExtName(e.Name(), &seq) {
			continue
		}
		path := filepath.Join(st.dir, e.Name())
		dead := false
		if meta.haveList {
			_, live := pos[seq]
			dead = !live
		} else {
			dead = seq < meta.firstSeq || seq > meta.lastSeq
		}
		if dead {
			// Already retired by a fence or compaction, or newer than
			// the last meta write (a crash mid-seal or mid-compaction:
			// the WAL tail or the still-listed source extents hold
			// these records). Either way the file is dead.
			st.d.logf("mstore: %s: removing out-of-window extent %s", st.name, e.Name())
			os.Remove(path)
			continue
		}
		files = append(files, struct {
			seq  uint64
			path string
		}{seq, path})
	}
	if meta.haveList {
		sort.Slice(files, func(i, j int) bool { return pos[files[i].seq] < pos[files[j].seq] })
	} else {
		sort.Slice(files, func(i, j int) bool { return files[i].seq < files[j].seq })
	}

	truncated := false
	for _, f := range files {
		ext, err := openExtent(f.path, f.seq, len(st.eps))
		if err != nil {
			// A sealed extent that no longer reads back is real
			// corruption (it was fsynced before the meta that points at
			// it). Keep the consistent prefix, quarantine the bad file
			// for inspection, and say so loudly. The truncation is made
			// durable below — otherwise anything sealed after the hole
			// would be silently re-discarded on every future boot while
			// the server keeps acking, a progressive loss instead of a
			// one-time, logged one.
			st.d.logf("mstore: %s: extent %s unreadable, keeping the %d extents before it: %v",
				st.name, filepath.Base(f.path), len(st.exts), err)
			if rerr := os.Rename(f.path, f.path+".corrupt"); rerr != nil {
				st.d.logf("mstore: %s: quarantine %s: %v", st.name, filepath.Base(f.path), rerr)
			}
			truncated = true
			break
		}
		st.exts = append(st.exts, ext)
	}
	if len(st.exts) > 0 {
		// The meta has no checksum of its own, so its fences are trusted
		// only after validating them against the (checksummed) extents: a
		// fence outside [0, count] means a corrupt meta, and serving
		// through it would index past the mapping.
		firstLive, lastLive := meta.firstSeq, meta.lastSeq
		if meta.haveList {
			firstLive, lastLive = meta.exts[0], meta.exts[len(meta.exts)-1]
		}
		if st.exts[0].seq == firstLive {
			if meta.headLo < 0 || meta.headLo > st.exts[0].count {
				return fmt.Errorf("mstore: meta head fence %d outside extent of %d records", meta.headLo, st.exts[0].count)
			}
			st.exts[0].lo = meta.headLo
		}
		last := st.exts[len(st.exts)-1]
		if last.seq == lastLive {
			if meta.tailDrop < 0 || meta.tailDrop > last.count-last.lo {
				return fmt.Errorf("mstore: meta tail fence %d outside extent of %d live records", meta.tailDrop, last.count-last.lo)
			}
			last.hi = last.count - meta.tailDrop
		}
		if len(st.exts) < len(files) {
			// The dropped suffix makes the persisted count unverifiable;
			// fall back to what the surviving records say.
			st.metaPoints = st.sumSealedPoints()
		}
	} else if len(files) > 0 {
		st.metaPoints = 0
	}
	// A fully-fenced extent holds nothing live (persist retires them
	// eagerly, so only a corrupt meta produces one); drop it now so the
	// lookup path and fence index can assume every extent has a first
	// live record. Its sidecar, left unclaimed, is removed below.
	var dead []*extent
	liveN := 0
	for _, e := range st.exts {
		if e.live() > 0 {
			st.exts[liveN] = e
			liveN++
		} else {
			dead = append(dead, e)
		}
	}
	st.exts = st.exts[:liveN]
	st.recount()
	st.adoptFence(meta.fence)
	for _, e := range st.exts {
		path, ok := sumFiles[e.seq]
		if !ok {
			continue
		}
		delete(sumFiles, e.seq)
		sc, err := readSidecar(path, len(st.eps))
		if err == nil && sc.count != e.count {
			err = fmt.Errorf("mstore: sidecar covers %d records, extent holds %d", sc.count, e.count)
		}
		if err != nil {
			st.d.logf("mstore: %s: dropping sketch sidecar %s: %v", st.name, filepath.Base(path), err)
			os.Remove(path)
			continue
		}
		if st.sums == nil {
			st.sums = make(map[uint64]*sidecar)
		}
		st.sums[e.seq] = sc
	}
	for _, path := range sumFiles {
		st.d.logf("mstore: %s: removing stray sketch sidecar %s", st.name, filepath.Base(path))
		os.Remove(path)
	}
	if truncated || len(dead) > 0 {
		// Persist the change: the meta's live list shrinks to what
		// survived, so extents after a corruption hole are removed on
		// the next boot. The sequence watermark is untouched — new
		// seals never reuse a dead extent's number. Meta first, then
		// file deletes, as everywhere.
		st.writeMeta()
		for _, e := range dead {
			e.retire(st.d.logf)
		}
		syncDir(st.dir, st.d.logf)
	}
	return nil
}

// reset drops all mapped state, leaving an empty store (the unreadable-
// leftovers escape hatch of the factory).
func (st *Store) reset() {
	st.unmapAll()
	st.exts, st.cumLive, st.tail = nil, nil, nil
	st.liveT0s, st.fence = nil, nil
	st.sums = nil
	st.headDisc = false
	st.metaPoints = 0
	st.lastSeq = 0
}

func (st *Store) unmapAll() {
	for _, e := range st.exts {
		e.close()
	}
}

// recount rebuilds the cumulative live-record index and the per-extent
// first live start times after the extent set or its fences change.
func (st *Store) recount() {
	st.cumLive = st.cumLive[:0]
	st.liveT0s = st.liveT0s[:0]
	n := 0
	for _, e := range st.exts {
		st.cumLive = append(st.cumLive, n)
		st.liveT0s = append(st.liveT0s, e.t0(e.lo))
		n += e.live()
	}
	st.cumLive = append(st.cumLive, n)
}

// adoptFence installs the fence index loaded from the meta if it still
// measures sound against the live extents, else rebuilds one.
func (st *Store) adoptFence(pending *fenceIndex) {
	if st.d.cfg.NoFenceIndex {
		st.fence = nil
		return
	}
	if pending != nil && pending.verify(st.liveT0s) {
		st.fence = pending
		return
	}
	st.fence = buildFence(st.liveT0s)
}

// sealedLen returns the number of live sealed records.
func (st *Store) sealedLen() int {
	if len(st.cumLive) == 0 {
		return 0
	}
	return st.cumLive[len(st.cumLive)-1]
}

func (st *Store) sumSealedPoints() int {
	n := 0
	for _, e := range st.exts {
		for i := e.lo; i < e.hi; i++ {
			n += e.points(i)
		}
	}
	return n
}

// locateSealed maps a live sealed index onto (extent, record index).
func (st *Store) locateSealed(i int) (*extent, int) {
	k := sort.Search(len(st.exts), func(j int) bool { return st.cumLive[j+1] > i })
	e := st.exts[k]
	return e, e.lo + (i - st.cumLive[k])
}

// Append implements tsdb.SegmentStore: new segments land in the tail
// until the next seal.
func (st *Store) Append(seg core.Segment) { st.tail = append(st.tail, seg) }

// Len implements tsdb.SegmentStore.
func (st *Store) Len() int { return st.sealedLen() + len(st.tail) }

// Seg implements tsdb.SegmentStore. Sealed records are decoded from the
// mapping into fresh slices, so the returned segment stays valid after
// the extent is fenced away or unmapped.
func (st *Store) Seg(i int) core.Segment {
	sl := st.sealedLen()
	if i >= sl {
		return st.tail[i-sl]
	}
	e, rec := st.locateSealed(i)
	seg := e.segment(rec)
	if i == 0 && st.headDisc {
		seg.Connected = false
	}
	return seg
}

// segT0 reads just a record's start time — the binary-search accessor,
// no allocation.
func (st *Store) segT0(i int) float64 {
	sl := st.sealedLen()
	if i >= sl {
		return st.tail[i-sl].T0
	}
	e, rec := st.locateSealed(i)
	return e.t0(rec)
}

// SearchT0 implements tsdb.TimeIndex: the least index whose segment
// starts after t. Sealed lookup is fence-jump → one extent → one block
// (or one in-extent binary search on v1 files) instead of a global
// binary search probing O(log N) extents; Config.NoFenceIndex restores
// the global search as the benchmarking baseline.
func (st *Store) SearchT0(t float64) int {
	if st.d.cfg.NoFenceIndex {
		return sort.Search(st.Len(), func(j int) bool { return st.segT0(j) > t })
	}
	ans := 0
	if sl := st.sealedLen(); sl > 0 {
		if k := st.findExtent(t); k >= 0 {
			e := st.exts[k]
			ans = st.cumLive[k] + (e.searchLive(t) - e.lo)
		}
		if ans < sl {
			return ans
		}
	}
	return st.sealedLen() + sort.Search(len(st.tail), func(j int) bool { return st.tail[j].T0 > t })
}

// findExtent returns the index of the last extent whose first live
// record starts at or before t, or -1 when t precedes the whole sealed
// archive. The fence index predicts a position and a window of its
// verified bound is searched around it; the geometric widening loops
// make correctness independent of prediction quality (NaN, adversarial
// t between measured start times), the bound just keeps them idle.
func (st *Store) findExtent(t float64) int {
	n := len(st.exts)
	if n == 0 || t < st.liveT0s[0] {
		return -1
	}
	if math.IsNaN(t) {
		// Every ordering comparison against NaN is false, so the global
		// binary search resolves to the last extent. The widening loops
		// below cannot reproduce that (their comparisons are just as
		// false), so answer it directly and keep NaN probes byte-equal
		// with the mem backend.
		return n - 1
	}
	lo, hi := 0, n
	if f := st.fence; f != nil {
		st.d.indexJumps.Add(1)
		k := f.predict(t)
		if k < 0 {
			k = 0
		}
		if k >= n {
			k = n - 1
		}
		step := f.bound + 1
		lo, hi = k-step, k+step+1
		if lo < 0 {
			lo = 0
		}
		if hi > n {
			hi = n
		}
		for s := step; lo > 0 && st.liveT0s[lo] > t; s *= 2 {
			lo -= s
			if lo < 0 {
				lo = 0
			}
		}
		for s := step; hi < n && st.liveT0s[hi] <= t; s *= 2 {
			hi += s
			if hi > n {
				hi = n
			}
		}
	}
	return lo + sort.Search(hi-lo, func(j int) bool { return st.liveT0s[lo+j] > t }) - 1
}

// Snapshot implements tsdb.SegmentStore.
func (st *Store) Snapshot() []core.Segment {
	out := make([]core.Segment, 0, st.Len())
	for i, n := 0, st.Len(); i < n; i++ {
		out = append(out, st.Seg(i))
	}
	return out
}

// DropHead implements tsdb.SegmentStore: the retention fence. Sealed
// records are fenced out of the live window (meta first, then dead
// extent files deleted, so a crash in between only resurrects segments
// the next retention pass re-drops); a drop reaching into the tail
// shifts the slice as the in-memory store does.
func (st *Store) DropHead(n int) {
	if n <= 0 {
		return
	}
	st.gen++
	sealed := st.sealedLen()
	fromSealed := n
	if fromSealed > sealed {
		fromSealed = sealed
	}
	if fromSealed > 0 {
		st.metaPoints -= st.livePointsPrefix(fromSealed)
		dead := 0
		remaining := fromSealed
		for _, e := range st.exts {
			take := e.live()
			if take > remaining {
				take = remaining
			}
			e.lo += take
			remaining -= take
			if e.live() == 0 {
				dead++
			} else {
				break
			}
		}
		st.headDisc = dead < len(st.exts)
		st.persist(st.exts[dead:], st.exts[:dead])
	}
	if rest := n - fromSealed; rest > 0 {
		if rest >= len(st.tail) {
			st.tail = st.tail[:0]
		} else {
			st.tail = append(st.tail[:0], st.tail[rest:]...)
			st.tail[0].Connected = false
		}
	}
	if st.sealedLen() == 0 {
		st.headDisc = false
		if len(st.tail) > 0 {
			st.tail[0].Connected = false
		}
	}
}

// livePointsPrefix sums the sample counts of the first n live sealed
// records.
func (st *Store) livePointsPrefix(n int) int {
	pts := 0
	for i := 0; i < n; i++ {
		e, rec := st.locateSealed(i)
		pts += e.points(rec)
	}
	return pts
}

// DropTail implements tsdb.SegmentStore — the provisional-supersede
// primitive. Provisional segments only ever live in the tail (Seal
// skips them), so in practice this never reaches sealed records; if it
// ever does, the same fence mechanism retires them from the back.
func (st *Store) DropTail(n int) {
	if n <= 0 {
		return
	}
	fromTail := n
	if fromTail > len(st.tail) {
		fromTail = len(st.tail)
	}
	st.tail = st.tail[:len(st.tail)-fromTail]
	rest := n - fromTail
	if rest == 0 {
		return
	}
	st.d.logf("mstore: %s: DropTail reached %d sealed records", st.name, rest)
	st.gen++
	if sealed := st.sealedLen(); rest > sealed {
		rest = sealed
	}
	st.metaPoints -= st.livePointsSuffix(rest)
	dead := 0
	for i := len(st.exts) - 1; i >= 0 && rest > 0; i-- {
		e := st.exts[i]
		take := e.live()
		if take > rest {
			take = rest
		}
		e.hi -= take
		rest -= take
		if e.live() == 0 {
			dead++
		}
	}
	if dead == len(st.exts) {
		st.headDisc = false
	}
	st.persist(st.exts[:len(st.exts)-dead], st.exts[len(st.exts)-dead:])
}

// livePointsSuffix sums the sample counts of the last n live sealed
// records.
func (st *Store) livePointsSuffix(n int) int {
	pts := 0
	sealed := st.sealedLen()
	for i := sealed - n; i < sealed; i++ {
		e, rec := st.locateSealed(i)
		pts += e.points(rec)
	}
	return pts
}

// persist is the one mutation-durability path: write the meta for the
// surviving extents, then delete the retired files, then fsync the
// directory, then install survivors as the live set. Meta first: a
// crash before the deletes leaves dead files the next open removes,
// never a meta pointing at missing live data.
//
// It also bumps the store generation — persist is exactly the set of
// mutations an in-flight two-phase seal or compaction must observe —
// refreshes the fence index over the survivors, and advances the
// sequence watermark (lastSeq only ever grows, so retired numbers are
// never reissued).
func (st *Store) persist(survivors, retired []*extent) {
	st.gen++
	for _, e := range survivors {
		if e.seq > st.lastSeq {
			st.lastSeq = e.seq
		}
	}
	fence := st.newFence(liveT0sOf(survivors))
	st.writeMetaFor(survivors, fence)
	for _, e := range retired {
		delete(st.sums, e.seq)
		os.Remove(sidecarPath(e.path))
		e.retire(st.d.logf)
	}
	syncDir(st.dir, st.d.logf)
	st.addExtents(int64(len(survivors) - len(st.exts)))
	st.exts = append(st.exts[:0:0], survivors...)
	st.recount()
	st.fence = fence
}

// liveT0sOf collects each extent's first live start time.
func liveT0sOf(exts []*extent) []float64 {
	out := make([]float64, len(exts))
	for i, e := range exts {
		out[i] = e.t0(e.lo)
	}
	return out
}

// newFence builds a fence index unless the Dir disabled them.
func (st *Store) newFence(t0s []float64) *fenceIndex {
	if st.d.cfg.NoFenceIndex {
		return nil
	}
	return buildFence(t0s)
}

// writeMeta persists the store's current fence state.
func (st *Store) writeMeta() { st.writeMetaFor(st.exts, st.fence) }

// writeMetaFor persists the meta describing the given extent set as the
// live list (failures log; the files on disk still reconstruct the
// pre-mutation state, so correctness degrades to replay time).
func (st *Store) writeMetaFor(survivors []*extent, fence *fenceIndex) {
	m := metaState{
		name: st.name, eps: st.eps, constant: st.constant,
		points: st.metaPoints, headDisc: st.headDisc && len(survivors) > 0,
		lastSeq: st.lastSeq, haveList: true, fence: fence,
	}
	if len(survivors) > 0 {
		m.exts = make([]uint64, len(survivors))
		for i, e := range survivors {
			m.exts[i] = e.seq
		}
		m.headLo = survivors[0].lo
		last := survivors[len(survivors)-1]
		m.tailDrop = last.count - last.hi
	}
	if err := writeMeta(st.dir, m, st.d.logf); err != nil {
		st.d.logf("mstore: %s: meta write: %v", st.name, err)
	}
}

// PrepareSeal implements tsdb.Sealer (phase one, under the series
// lock): it captures the finalized prefix of the append tail — and,
// when the newest extent carries a tail fence the meta could not
// express under a successor, the whole live sealed state for a rewrite —
// so the expensive extent write can run without the lock. Provisional
// segments never seal; they stay in the tail until finalized segments
// supersede them. points is the series' finalized sample count as of
// this seal.
func (st *Store) PrepareSeal(points int) (tsdb.PreparedSeal, bool) {
	final := len(st.tail)
	for final > 0 && st.tail[final-1].Provisional {
		final--
	}
	if final == 0 && st.lastSeq > 0 && points == st.metaPoints {
		return nil, false // nothing new since the last seal
	}
	p := &preparedSeal{st: st, points: points, finalCount: final, gen: st.gen, absStart: st.sealedLen()}
	if final > 0 {
		p.segs = append(p.segs, st.tail[:final]...)
		// The meta can only express a tail fence on the newest extent; if
		// the current last extent carries one (a DropTail that reached
		// sealed records — possible through the interface, never on the
		// provisional-supersede path), rewrite the whole live sealed
		// state into the new extent. firstSeq then jumps past every old
		// extent, so a crash at any point leaves either the old window or
		// the new one — never both.
		if n := len(st.exts); n > 0 && st.exts[n-1].hi < st.exts[n-1].count {
			merged := make([]core.Segment, 0, st.sealedLen()+final)
			for i, sl := 0, st.sealedLen(); i < sl; i++ {
				merged = append(merged, st.Seg(i))
			}
			p.segs = append(merged, p.segs...)
			p.rewrite = true
			p.absStart = 0
		}
		p.seq = st.lastSeq + 1
		p.path = filepath.Join(st.dir, fmt.Sprintf(extPattern, p.seq))
	}
	return p, true
}

// Seal runs a full seal in one call — the convenience the two-phase
// API collapses to when the caller owns the store outright (tests,
// offline tooling). tsdb.Series drives the phases itself so the extent
// write and fsync run outside the series lock.
func (st *Store) Seal(points int) error {
	prep, ok := st.PrepareSeal(points)
	if !ok {
		return nil
	}
	if err := prep.Write(); err != nil {
		return err
	}
	prep.Commit()
	return nil
}

// preparedSeal is one in-flight two-phase seal: the captured sealable
// segments, the chosen extent sequence, and the store generation the
// capture is valid against.
type preparedSeal struct {
	st         *Store
	points     int
	segs       []core.Segment
	finalCount int
	rewrite    bool
	gen        uint64
	seq        uint64
	path       string
	ext        *extent
	absStart   int      // live sealed index of segs[0] at prepare time
	sum        *sidecar // sketch sidecar written alongside the extent
}

// Write implements tsdb.PreparedSeal: the new extent is written and
// fsynced with no lock held, so queries keep flowing while the disk
// works. The meta does not move yet — a crash here leaves an extent
// newer than the meta, which the next open discards in favour of the
// WAL tail that still covers it.
func (p *preparedSeal) Write() error {
	st := p.st
	if err := os.MkdirAll(st.dir, 0o755); err != nil {
		return err
	}
	if p.finalCount == 0 {
		return nil // meta-only seal (an empty series' first persistence)
	}
	if err := st.d.writeExtentFile(p.path, st.eps, st.constant, p.segs); err != nil {
		return err
	}
	ext, err := openExtent(p.path, p.seq, len(st.eps))
	if err != nil {
		os.Remove(p.path)
		return fmt.Errorf("mstore: %s: sealed extent does not read back: %w", st.name, err)
	}
	p.ext = ext
	// The sketch sidecar follows the extent inside the same crash
	// window: both exist before the meta moves, both are discarded
	// together if the seal never commits. It is an optimisation, not
	// data — a failed write degrades queries to the segment walk.
	if sc := buildSidecar(p.absStart, len(st.eps), p.segs); sc != nil {
		if err := writeSidecar(sidecarPath(p.path), sc); err != nil {
			st.d.logf("mstore: %s: sketch sidecar write (queries fall back to segment walk): %v", st.name, err)
		} else {
			p.sum = sc
		}
	}
	return nil
}

// Commit implements tsdb.PreparedSeal (under the series lock again):
// install the written extent, retire the sealed tail prefix, and move
// the meta forward. If the store mutated since PrepareSeal (a fence
// drop from retention), the captured prefix may be stale — the written
// file is discarded and the seal reports false; the WAL still covers
// everything, so the next compaction simply seals the current state.
func (p *preparedSeal) Commit() bool {
	st := p.st
	if st.gen != p.gen || len(st.tail) < p.finalCount {
		if p.ext != nil {
			p.ext.close()
			os.Remove(p.path)
			os.Remove(sidecarPath(p.path))
			syncDir(st.dir, st.d.logf)
		}
		st.d.logf("mstore: %s: store changed during seal; retrying at the next compaction", st.name)
		return false
	}
	survivors := st.exts
	var retired []*extent
	if p.ext != nil {
		if p.rewrite {
			retired, survivors = st.exts, nil
		}
		survivors = append(append([]*extent(nil), survivors...), p.ext)
		st.tail = append(st.tail[:0], st.tail[p.finalCount:]...)
	}
	st.metaPoints = p.points
	st.persist(survivors, retired)
	if p.sum != nil {
		if st.sums == nil {
			st.sums = make(map[uint64]*sidecar)
		}
		st.sums[p.seq] = p.sum
	}
	return true
}

// SummaryBlocks implements tsdb.Summarizer: the window blocks persisted
// by past seals that are still valid against the current live window.
// A sidecar's blocks are anchored at the live index its extent's first
// record had at seal time; they are served only while that anchor still
// holds — nothing fenced off the extent's front and nothing dropped
// before it — and only for windows whose records survived any tail
// fence. Everything else the query layer recomputes from the segments.
func (st *Store) SummaryBlocks() []sketch.Block {
	if len(st.sums) == 0 {
		return nil
	}
	var out []sketch.Block
	for i, e := range st.exts {
		sc := st.sums[e.seq]
		if sc == nil || e.lo != 0 || st.cumLive[i] != sc.absStart {
			continue
		}
		for _, blk := range sc.blocks {
			if blk.Hi-sc.absStart <= e.hi {
				out = append(out, blk)
			}
		}
	}
	return out
}

func floatsEq(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}

// syncDir fsyncs a directory so creates, renames and removes inside it
// are durable (see fsutil.SyncDir for why failures only log).
func syncDir(dir string, logf func(string, ...any)) {
	fsutil.SyncDir(dir, func(format string, args ...any) {
		logf("mstore: "+format, args...)
	})
}

// metaState is the decoded meta file: the series contract, the
// persisted sample count, the live extent list with its end fences,
// and the persisted fence index.
//
// Version 1 metas expressed the live extents as the window [firstSeq,
// lastSeq]; compaction breaks the premise behind that (a merged extent
// takes a fresh, highest sequence number but sits at its records' time
// position), so version 2 lists the live sequences explicitly in time
// order and redefines lastSeq as the allocation watermark. Version 1
// files stay readable forever; every write emits version 2.
type metaState struct {
	name     string
	eps      []float64
	constant bool
	points   int
	headDisc bool

	firstSeq uint64 // v1 only: first live extent sequence
	headLo   int    // records fenced off the front of the first live extent
	lastSeq  uint64 // sequence watermark (v1: also the last live extent)
	tailDrop int    // records fenced off the back of the last live extent

	haveList bool        // v2: exts is authoritative (even when empty)
	exts     []uint64    // v2: live extent sequences in time order
	fence    *fenceIndex // v2: persisted fence index (nil = none)
}

const (
	metaName     = "meta"
	metaMagic    = "PLAM"
	metaVersion  = 1
	metaVersion2 = 2

	metaFlagConstant = 1 << 0
	metaFlagHeadDisc = 1 << 1

	// metaMaxExts bounds the extent list a meta may claim, so a corrupt
	// length prefix cannot drive a huge allocation.
	metaMaxExts = 1 << 24
)

// writeMeta atomically replaces the series meta file (fsutil's
// tmp-write/fsync/rename protocol; callers sync the directory). Always
// writes version 2.
func writeMeta(dir string, m metaState, logf func(string, ...any)) error {
	buf := make([]byte, 0, 64+len(m.name)+8*len(m.eps)+2*len(m.exts))
	buf = append(buf, metaMagic...)
	buf = append(buf, metaVersion2)
	var flags byte
	if m.constant {
		flags |= metaFlagConstant
	}
	if m.headDisc {
		flags |= metaFlagHeadDisc
	}
	buf = append(buf, flags)
	buf = binary.AppendUvarint(buf, uint64(len(m.eps)))
	for _, e := range m.eps {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(e))
	}
	buf = binary.AppendUvarint(buf, uint64(len(m.name)))
	buf = append(buf, m.name...)
	buf = binary.AppendUvarint(buf, uint64(m.points))
	buf = binary.AppendUvarint(buf, m.lastSeq)
	buf = binary.AppendUvarint(buf, uint64(m.headLo))
	buf = binary.AppendUvarint(buf, uint64(m.tailDrop))
	buf = binary.AppendUvarint(buf, uint64(len(m.exts)))
	for _, seq := range m.exts {
		buf = binary.AppendUvarint(buf, seq)
	}
	if m.fence == nil {
		buf = binary.AppendUvarint(buf, 0)
	} else {
		buf = binary.AppendUvarint(buf, uint64(len(m.fence.segs)))
		buf = binary.AppendUvarint(buf, uint64(m.fence.bound))
		for _, s := range m.fence.segs {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.t0))
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.t1))
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.x0))
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(s.x1))
		}
	}

	return fsutil.WriteFileAtomic(filepath.Join(dir, metaName), func(w io.Writer) error {
		_, err := w.Write(buf)
		return err
	})
}

// readMeta decodes a series meta file, either version.
func readMeta(path string) (metaState, error) {
	var m metaState
	raw, err := os.ReadFile(path)
	if err != nil {
		return m, err
	}
	p := raw
	if len(p) < len(metaMagic)+2 || string(p[:len(metaMagic)]) != metaMagic {
		return m, fmt.Errorf("mstore: bad meta magic")
	}
	p = p[len(metaMagic):]
	version := p[0]
	if version != metaVersion && version != metaVersion2 {
		return m, fmt.Errorf("mstore: unknown meta version %d", version)
	}
	flags := p[1]
	m.constant = flags&metaFlagConstant != 0
	m.headDisc = flags&metaFlagHeadDisc != 0
	p = p[2:]
	dim, p, err := takeUvarint(p)
	if err != nil || dim == 0 || dim > 1<<20 {
		return m, fmt.Errorf("mstore: bad meta dimensionality")
	}
	if uint64(len(p)) < 8*dim {
		return m, fmt.Errorf("mstore: truncated meta epsilon")
	}
	m.eps = make([]float64, dim)
	for i := range m.eps {
		m.eps[i] = math.Float64frombits(binary.LittleEndian.Uint64(p[8*i:]))
	}
	p = p[8*dim:]
	nameLen, p, err := takeUvarint(p)
	if err != nil || nameLen > 1<<16 || uint64(len(p)) < nameLen {
		return m, fmt.Errorf("mstore: bad meta name")
	}
	m.name = string(p[:nameLen])
	p = p[nameLen:]

	var points, headLo, tailDrop uint64
	var fields []*uint64
	if version == metaVersion {
		fields = []*uint64{&points, &m.firstSeq, &headLo, &m.lastSeq, &tailDrop}
	} else {
		fields = []*uint64{&points, &m.lastSeq, &headLo, &tailDrop}
	}
	for _, dst := range fields {
		v, rest, err := takeUvarint(p)
		if err != nil {
			return m, fmt.Errorf("mstore: truncated meta")
		}
		*dst, p = v, rest
	}
	if points > 1<<40 || headLo > 1<<32 || tailDrop > 1<<32 {
		return m, fmt.Errorf("mstore: implausible meta counters")
	}
	m.points, m.headLo, m.tailDrop = int(points), int(headLo), int(tailDrop)
	if version == metaVersion {
		return m, nil
	}

	nExts, p, err := takeUvarint(p)
	if err != nil || nExts > metaMaxExts || nExts > uint64(len(p)) {
		return m, fmt.Errorf("mstore: bad meta extent list")
	}
	m.haveList = true
	m.exts = make([]uint64, nExts)
	for i := range m.exts {
		if m.exts[i], p, err = takeUvarint(p); err != nil {
			return m, fmt.Errorf("mstore: truncated meta extent list")
		}
	}

	nFence, p, err := takeUvarint(p)
	if err != nil || nFence > fenceMaxSegs {
		return m, fmt.Errorf("mstore: bad meta fence index")
	}
	if nFence > 0 {
		bound, rest, err := takeUvarint(p)
		if err != nil || bound > fenceMaxBound {
			return m, fmt.Errorf("mstore: bad meta fence bound")
		}
		p = rest
		if uint64(len(p)) < 32*nFence {
			return m, fmt.Errorf("mstore: truncated meta fence index")
		}
		f := &fenceIndex{segs: make([]fenceSeg, nFence), bound: int(bound)}
		for i := range f.segs {
			f.segs[i] = fenceSeg{
				t0: math.Float64frombits(binary.LittleEndian.Uint64(p[0:])),
				t1: math.Float64frombits(binary.LittleEndian.Uint64(p[8:])),
				x0: math.Float64frombits(binary.LittleEndian.Uint64(p[16:])),
				x1: math.Float64frombits(binary.LittleEndian.Uint64(p[24:])),
			}
			p = p[32:]
		}
		m.fence = f
	}
	return m, nil
}

func takeUvarint(p []byte) (uint64, []byte, error) {
	v, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, p, fmt.Errorf("mstore: bad uvarint")
	}
	return v, p[n:], nil
}
