package mmapstore

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"github.com/pla-go/pla/internal/sketch"
)

// encodeBlock flattens a block to its canonical bytes so tests can
// assert bit-identity between sidecar-served and rebuilt blocks.
func encodeBlock(blk sketch.Block) []byte {
	var buf []byte
	for _, a := range blk.Aggs {
		buf = sketch.AppendAggBinary(buf, a)
	}
	for _, s := range blk.Sketches {
		buf = s.AppendBinary(buf)
	}
	return buf
}

// wantBlocks recomputes the canonical blocks for the given window
// anchors straight from the store's segments.
func wantBlocks(st *Store, los ...int) []sketch.Block {
	out := make([]sketch.Block, 0, len(los))
	for _, lo := range los {
		out = append(out, sketch.BuildBlock(lo, len(st.eps), st.Seg))
	}
	return out
}

func mustServeBlocks(t *testing.T, st *Store, los ...int) {
	t.Helper()
	got := st.SummaryBlocks()
	want := wantBlocks(st, los...)
	if len(got) != len(want) {
		t.Fatalf("SummaryBlocks: %d blocks, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Lo != want[i].Lo || got[i].Hi != want[i].Hi {
			t.Fatalf("block %d covers [%d, %d), want [%d, %d)", i, got[i].Lo, got[i].Hi, want[i].Lo, want[i].Hi)
		}
		if !bytes.Equal(encodeBlock(got[i]), encodeBlock(want[i])) {
			t.Fatalf("block [%d, %d): sidecar bytes differ from rebuilt block", got[i].Lo, got[i].Hi)
		}
	}
}

// testPoints is the finalized sample count after segments [0, n) of
// testSeg (each carries 10+i points).
func testPoints(n int) int { return 10*n + n*(n-1)/2 }

func sealN(t *testing.T, st *Store, lo, n int) {
	t.Helper()
	for i := lo; i < lo+n; i++ {
		st.Append(testSeg(i))
	}
	if err := st.Seal(testPoints(lo + n)); err != nil {
		t.Fatal(err)
	}
}

// TestSidecarServesSealedWindows seals across several extents and
// checks the persisted blocks are bit-identical to freshly built ones,
// both right after sealing and after a reopen. A window only lands in a
// sidecar when it fits entirely inside one extent; the straddling
// window here stays uncovered (the query layer rebuilds it on demand).
func TestSidecarServesSealedWindows(t *testing.T) {
	const w = sketch.WindowSize
	root := t.TempDir()
	d := openDir(t, root)
	st := d.Store("sums", testEps, false).(*Store)

	sealN(t, st, 0, w+10)        // extent 1: covers window [0, w)
	sealN(t, st, w+10, w)        // extent 2: straddles, covers none
	sealN(t, st, 2*w+10, w)      // extent 3: straddles, covers none
	sealN(t, st, 3*w+10, 2*w-10) // extent 4: covers window [4w, 5w)
	mustServeBlocks(t, st, 0, 4*w)

	d.Close()
	d2 := openDir(t, root)
	st2 := d2.Store("sums", testEps, false).(*Store)
	if st2.Len() != 5*w {
		t.Fatalf("reopened Len = %d, want %d", st2.Len(), 5*w)
	}
	mustServeBlocks(t, st2, 0, 4*w)
}

// TestSidecarAbsentOrCorruptFallsBack removes or mangles sidecar files
// and checks the store still opens, serves no stale blocks, and answers
// queries identically through the rebuild path.
func TestSidecarAbsentOrCorruptFallsBack(t *testing.T) {
	const w = sketch.WindowSize
	for _, mode := range []string{"absent", "corrupt", "truncated"} {
		t.Run(mode, func(t *testing.T) {
			root := t.TempDir()
			d := openDir(t, root)
			st := d.Store("s", testEps, false).(*Store)
			sealN(t, st, 0, w)
			want := wantBlocks(st, 0)
			sum := sidecarPath(st.exts[0].path)
			d.Close()

			switch mode {
			case "absent":
				if err := os.Remove(sum); err != nil {
					t.Fatal(err)
				}
			case "corrupt":
				raw, err := os.ReadFile(sum)
				if err != nil {
					t.Fatal(err)
				}
				raw[len(raw)/2] ^= 0xff
				if err := os.WriteFile(sum, raw, 0o644); err != nil {
					t.Fatal(err)
				}
			case "truncated":
				if err := os.Truncate(sum, 20); err != nil {
					t.Fatal(err)
				}
			}

			d2 := openDir(t, root)
			st2 := d2.Store("s", testEps, false).(*Store)
			if got := st2.SummaryBlocks(); len(got) != 0 {
				t.Fatalf("SummaryBlocks after %s sidecar = %d blocks, want 0", mode, len(got))
			}
			if mode != "absent" {
				if _, err := os.Stat(sum); !os.IsNotExist(err) {
					t.Fatalf("%s sidecar not removed at open", mode)
				}
			}
			// The fallback rebuild must produce the identical block.
			got := wantBlocks(st2, 0)
			if !bytes.Equal(encodeBlock(got[0]), encodeBlock(want[0])) {
				t.Fatal("rebuilt block differs from the one computed before reopen")
			}
		})
	}
}

// TestSidecarFenceInvalidation checks that head drops stop sidecar
// blocks from being served: a partial fence breaks the extent's anchor,
// and a drop retiring a whole extent shifts every successor's indices.
func TestSidecarFenceInvalidation(t *testing.T) {
	const w = sketch.WindowSize
	root := t.TempDir()
	d := openDir(t, root)
	st := d.Store("f", testEps, false).(*Store)
	sealN(t, st, 0, w)
	sealN(t, st, w, w)
	mustServeBlocks(t, st, 0, w)

	// Fence 3 records off the first extent: its own anchor is gone, and
	// every successor's live indices shift by 3, off the window grid.
	st.DropHead(3)
	if got := st.SummaryBlocks(); len(got) != 0 {
		t.Fatalf("after partial head fence: %d blocks, want 0", len(got))
	}

	// Reopen: the sidecars load but the fences still invalidate them.
	d.Close()
	d2 := openDir(t, root)
	st2 := d2.Store("f", testEps, false).(*Store)
	if got := st2.SummaryBlocks(); len(got) != 0 {
		t.Fatalf("after reopen with fences: %d blocks, want 0", len(got))
	}

	// Retire the rest of the first extent: the second is whole, but its
	// records now live at [0, w) while its sidecar says [w, 2w).
	st2.DropHead(w - 3)
	if st2.sealedLen() != w {
		t.Fatalf("sealedLen = %d, want %d", st2.sealedLen(), w)
	}
	if got := st2.SummaryBlocks(); len(got) != 0 {
		t.Fatalf("after retiring first extent: %d blocks, want 0", len(got))
	}
	if _, err := os.Stat(sidecarPath(filepath.Join(st2.dir, "ext-00000001.seg"))); !os.IsNotExist(err) {
		t.Fatal("retired extent's sidecar file not removed")
	}
}

// TestSidecarCrashBeforeCommit simulates a crash between the two seal
// phases: extent and sidecar are on disk but the meta never moved. The
// next open must remove both.
func TestSidecarCrashBeforeCommit(t *testing.T) {
	const w = sketch.WindowSize
	root := t.TempDir()
	d := openDir(t, root)
	st := d.Store("c", testEps, false).(*Store)
	sealN(t, st, 0, 10) // a committed seal so the meta exists

	// Enough to complete window [w, 2w) inside the new extent, so a
	// sidecar is actually written.
	for i := 10; i < 2*w; i++ {
		st.Append(testSeg(i))
	}
	prep, ok := st.PrepareSeal(testPoints(2 * w))
	if !ok {
		t.Fatal("PrepareSeal refused")
	}
	if err := prep.Write(); err != nil {
		t.Fatal(err)
	}
	// Crash: no Commit. Both files exist now.
	extPath := filepath.Join(st.dir, "ext-00000002.seg")
	if _, err := os.Stat(extPath); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(sidecarPath(extPath)); err != nil {
		t.Fatal(err)
	}
	d.Close()

	d2 := openDir(t, root)
	st2 := d2.Store("c", testEps, false).(*Store)
	if st2.Len() != 10 {
		t.Fatalf("recovered Len = %d, want 10", st2.Len())
	}
	if _, err := os.Stat(extPath); !os.IsNotExist(err) {
		t.Fatal("uncommitted extent survived reopen")
	}
	if _, err := os.Stat(sidecarPath(extPath)); !os.IsNotExist(err) {
		t.Fatal("uncommitted sidecar survived reopen")
	}
}

// TestSidecarCountMismatchRejected rejects a sidecar whose record count
// disagrees with its extent (a stale file after manual surgery).
func TestSidecarCountMismatchRejected(t *testing.T) {
	const w = sketch.WindowSize
	root := t.TempDir()
	d := openDir(t, root)
	st := d.Store("m", testEps, false).(*Store)
	sealN(t, st, 0, w)
	sum := sidecarPath(st.exts[0].path)
	sc, err := readSidecar(sum, len(testEps))
	if err != nil {
		t.Fatal(err)
	}
	d.Close()

	sc.count = w + 7
	if err := writeSidecar(sum, sc); err != nil {
		t.Fatal(err)
	}
	d2 := openDir(t, root)
	st2 := d2.Store("m", testEps, false).(*Store)
	if got := st2.SummaryBlocks(); len(got) != 0 {
		t.Fatalf("count-mismatched sidecar served %d blocks", len(got))
	}
	if _, err := os.Stat(sum); !os.IsNotExist(err) {
		t.Fatal("count-mismatched sidecar not removed")
	}
}
