package mmapstore

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"github.com/pla-go/pla/internal/core"
	"github.com/pla-go/pla/internal/tsdb"
)

func openDirCfg(t *testing.T, root string, cfg Config) *Dir {
	t.Helper()
	d, err := OpenWith(root, cfg, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

// sealChunks appends testSeg(0..n) to both stores in chunks, sealing
// the mmap store after each chunk — one extent per chunk, the
// fragmented shape compaction exists to clean up.
func sealChunks(t *testing.T, st *Store, mem tsdb.SegmentStore, n, chunk int) {
	t.Helper()
	pts := 0
	for i := 0; i < n; i++ {
		st.Append(testSeg(i))
		mem.Append(testSeg(i))
		pts += testSeg(i).Points
		if (i+1)%chunk == 0 || i == n-1 {
			if err := st.Seal(pts); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// compactAll drives PrepareCompact/Write/Commit to quiescence.
func compactAll(t *testing.T, st *Store) int {
	t.Helper()
	merges := 0
	for {
		p, ok := st.PrepareCompact()
		if !ok {
			return merges
		}
		if err := p.Write(); err != nil {
			t.Fatal(err)
		}
		if !p.Commit() {
			t.Fatal("commit refused with no concurrent mutation")
		}
		merges++
	}
}

// TestCompactMergesSmallExtents is the happy path: ten one-chunk
// extents merge into one, answers stay identical to the in-memory
// reference live, and again after a reopen, and the directory loses
// the retired files.
func TestCompactMergesSmallExtents(t *testing.T) {
	root := t.TempDir()
	d := openDirCfg(t, root, Config{})
	st := d.Store("c", testEps, false).(*Store)
	mem := tsdb.NewMemStore()
	sealChunks(t, st, mem, 60, 6)

	if got := len(st.exts); got != 10 {
		t.Fatalf("built %d extents, want 10", got)
	}
	if merges := compactAll(t, st); merges != 1 {
		t.Fatalf("compaction took %d merges, want 1", merges)
	}
	if got := len(st.exts); got != 1 {
		t.Fatalf("%d extents after compaction, want 1", got)
	}
	if st.exts[0].v2 == nil {
		t.Fatal("merged extent is not v2")
	}
	mustMatchMem(t, st, mem)

	m := d.Metrics()
	if m.Compactions != 1 || m.CompactedBytes == 0 || m.Extents != 1 {
		t.Fatalf("metrics after merge: %+v", m)
	}
	exts, _ := filepath.Glob(filepath.Join(st.dir, "ext-*.seg"))
	if len(exts) != 1 {
		t.Fatalf("%d extent files on disk, want 1: %v", len(exts), exts)
	}

	d.Close()
	d2 := openDirCfg(t, root, Config{})
	st2 := d2.Store("c", testEps, false).(*Store)
	mustMatchMem(t, st2, mem)
}

// TestCompactPolicyKnobs: a negative CompactMinExtents disables the
// policy outright; a large TargetRecords bound is respected (extents
// at or above it are never rewritten).
func TestCompactPolicyKnobs(t *testing.T) {
	root := t.TempDir()
	d := openDirCfg(t, root, Config{CompactMinExtents: -1})
	st := d.Store("off", testEps, false).(*Store)
	sealChunks(t, st, tsdb.NewMemStore(), 60, 6)
	if _, ok := st.PrepareCompact(); ok {
		t.Fatal("disabled policy still offered a compaction")
	}
	d.Close()

	// TargetRecords 6: every 6-record extent is already at target, so
	// nothing qualifies even though there are plenty of extents.
	d2 := openDirCfg(t, root, Config{TargetRecords: 6})
	st2 := d2.Store("off", testEps, false).(*Store)
	if _, ok := st2.PrepareCompact(); ok {
		t.Fatal("at-target extents offered for compaction")
	}
}

// TestCompactAbortsOnConcurrentMutation: a seal that lands between
// PrepareCompact and Commit must make the commit refuse, leave no
// stray files, and let the next attempt succeed.
func TestCompactAbortsOnConcurrentMutation(t *testing.T) {
	root := t.TempDir()
	d := openDirCfg(t, root, Config{})
	st := d.Store("abort", testEps, false).(*Store)
	mem := tsdb.NewMemStore()
	sealChunks(t, st, mem, 60, 6)

	p, ok := st.PrepareCompact()
	if !ok {
		t.Fatal("no compaction offered")
	}
	st.Append(testSeg(60))
	mem.Append(testSeg(60))
	if err := st.Seal(0); err != nil {
		t.Fatal(err)
	}
	if err := p.Write(); err != nil {
		t.Fatal(err)
	}
	if p.Commit() {
		t.Fatal("commit accepted a stale generation")
	}
	if got := len(st.exts); got != 11 {
		t.Fatalf("%d extents after aborted commit, want 11", got)
	}
	mustMatchMem(t, st, mem)
	if m := d.Metrics(); m.Compactions != 0 {
		t.Fatalf("aborted merge counted: %+v", m)
	}

	if merges := compactAll(t, st); merges == 0 {
		t.Fatal("retry after abort found nothing to merge")
	}
	mustMatchMem(t, st, mem)
}

// copyStoreDir clones one series' store directory byte for byte.
func copyStoreDir(t *testing.T, src, dst string) {
	t.Helper()
	if err := os.MkdirAll(dst, 0o755); err != nil {
		t.Fatal(err)
	}
	ents, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range ents {
		b, err := os.ReadFile(filepath.Join(src, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, ent.Name()), b, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// TestCrashMidCompaction reassembles every kill-9 point of the
// two-phase compaction protocol from real directory states — merged
// extent written but meta not moved, meta moved but retired files not
// deleted, merged extent torn, sidecar lost — and requires each to
// recover to answers identical to the in-memory reference.
func TestCrashMidCompaction(t *testing.T) {
	mem := tsdb.NewMemStore()
	build := t.TempDir()
	d := openDirCfg(t, build, Config{})
	st := d.Store("c", testEps, false).(*Store)
	sealChunks(t, st, mem, 60, 6)
	d.Close()
	preDir := filepath.Join(t.TempDir(), "pre")
	copyStoreDir(t, filepath.Join(build, seriesDirName("c")), preDir)

	d = openDirCfg(t, build, Config{})
	st = d.Store("c", testEps, false).(*Store)
	if merges := compactAll(t, st); merges != 1 {
		t.Fatalf("%d merges, want 1", merges)
	}
	d.Close()
	doneDir := filepath.Join(build, seriesDirName("c"))

	names := func(dir string) map[string]bool {
		out := map[string]bool{}
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ents {
			out[e.Name()] = true
		}
		return out
	}
	pre, done := names(preDir), names(doneDir)
	var mergedFiles, retiredFiles []string
	for n := range done {
		if !pre[n] && n != "meta" {
			mergedFiles = append(mergedFiles, n) // the merged .seg and its .sum
		}
	}
	for n := range pre {
		if !done[n] && n != "meta" {
			retiredFiles = append(retiredFiles, n)
		}
	}
	if len(mergedFiles) == 0 || len(retiredFiles) == 0 {
		t.Fatalf("compaction left no file delta (merged %v, retired %v)", mergedFiles, retiredFiles)
	}

	copyFiles := func(t *testing.T, src, dst string, names []string) {
		for _, n := range names {
			b, err := os.ReadFile(filepath.Join(src, n))
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dst, n), b, 0o644); err != nil {
				t.Fatal(err)
			}
		}
	}

	cases := []struct {
		name     string
		assemble func(t *testing.T, crash string)
	}{
		// Crash after the merged extent (and sidecar) hit disk, before
		// the meta moved: the old extents are still authoritative and
		// the orphaned merge must be swept.
		{"merged-no-meta", func(t *testing.T, crash string) {
			copyStoreDir(t, preDir, crash)
			copyFiles(t, doneDir, crash, mergedFiles)
		}},
		// Same instant, merged extent torn mid-write.
		{"torn-merged-no-meta", func(t *testing.T, crash string) {
			copyStoreDir(t, preDir, crash)
			copyFiles(t, doneDir, crash, mergedFiles)
			for _, n := range mergedFiles {
				if filepath.Ext(n) == ".seg" {
					info, err := os.Stat(filepath.Join(crash, n))
					if err != nil {
						t.Fatal(err)
					}
					if err := os.Truncate(filepath.Join(crash, n), info.Size()-9); err != nil {
						t.Fatal(err)
					}
				}
			}
		}},
		// Crash after the meta moved, before the retired files were
		// deleted: the merged extent is authoritative, the stale files
		// must be swept.
		{"meta-retired-remain", func(t *testing.T, crash string) {
			copyStoreDir(t, doneDir, crash)
			copyFiles(t, preDir, crash, retiredFiles)
		}},
		// The merged extent's sketch sidecar lost after commit: queries
		// fall back to building windows from the records.
		{"merged-no-sidecar", func(t *testing.T, crash string) {
			copyStoreDir(t, doneDir, crash)
			for _, n := range mergedFiles {
				if filepath.Ext(n) == ".sum" {
					if err := os.Remove(filepath.Join(crash, n)); err != nil {
						t.Fatal(err)
					}
				}
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			root := t.TempDir()
			tc.assemble(t, filepath.Join(root, seriesDirName("c")))
			d := openDirCfg(t, root, Config{})
			st := d.Store("c", testEps, false).(*Store)
			mustMatchMem(t, st, mem)

			// Whatever the crash left behind, recovery must converge to
			// a directory with no orphans: every live extent file is in
			// the meta's list and vice versa.
			d.Close()
			d2 := openDirCfg(t, root, Config{})
			st2 := d2.Store("c", testEps, false).(*Store)
			mustMatchMem(t, st2, mem)
			exts, _ := filepath.Glob(filepath.Join(st2.dir, "ext-*.seg"))
			if len(exts) != len(st2.exts) {
				t.Fatalf("%d extent files on disk, %d live", len(exts), len(st2.exts))
			}
		})
	}
}

// TestV1TestdataCompactionDifferential replays the frozen v1 extent
// fixtures through the full migration path: fixture → v1-written store
// (live parity vs MemStore) → reopened under the v2-writing config →
// compacted to v2 → restarted, with identical answers at every stage.
// The fixtures pin the v1 format forever — regenerate (only if the
// fixture set itself must change) with:
//
//	PLA_REGEN_TESTDATA=1 go test -run TestV1TestdataCompactionDifferential ./internal/tsdb/mmapstore/
func TestV1TestdataCompactionDifferential(t *testing.T) {
	fixtures := []struct {
		name     string
		eps      []float64
		constant bool
		n        int
	}{
		{"dim1.seg", []float64{0.25}, false, 37},
		{"dim2.seg", []float64{0.25, 0.5}, false, 64},
		{"dim1-const.seg", []float64{0.1}, true, 16},
	}
	fixSeg := func(i, dim int) core.Segment {
		x0, x1 := make([]float64, dim), make([]float64, dim)
		for d := range x0 {
			x0[d] = math.Sin(float64(3*i+d)) * 100
			x1[d] = math.Cos(float64(2*i+d)) * 100
		}
		return core.Segment{
			T0: float64(i) * 1.75, T1: float64(i)*1.75 + 1.5,
			X0: x0, X1: x1, Connected: i%4 == 2, Points: 5 + i%7,
		}
	}
	if os.Getenv("PLA_REGEN_TESTDATA") != "" {
		if err := os.MkdirAll(filepath.Join("testdata", "v1"), 0o755); err != nil {
			t.Fatal(err)
		}
		for _, fx := range fixtures {
			segs := make([]core.Segment, fx.n)
			for i := range segs {
				segs[i] = fixSeg(i, len(fx.eps))
			}
			if err := writeExtent(filepath.Join("testdata", "v1", fx.name), fx.eps, fx.constant, segs); err != nil {
				t.Fatal(err)
			}
		}
		t.Log("regenerated testdata/v1 fixtures")
	}

	for _, fx := range fixtures {
		t.Run(fx.name, func(t *testing.T) {
			path := filepath.Join("testdata", "v1", fx.name)
			e, err := openExtent(path, 1, len(fx.eps))
			if err != nil {
				t.Fatalf("v1 fixture no longer opens: %v", err)
			}
			if v := e.data[4]; v != extVersion {
				e.close()
				t.Fatalf("fixture is version %d, want v1", v)
			}
			segs := make([]core.Segment, e.count)
			for i := range segs {
				segs[i] = e.segment(i)
				if !segsEqual(segs[i], fixSeg(i, len(fx.eps))) {
					e.close()
					t.Fatalf("fixture record %d drifted: %+v", i, segs[i])
				}
			}
			e.close()

			mem := tsdb.NewMemStore()
			for _, s := range segs {
				mem.Append(s)
			}
			root := t.TempDir()

			// Stage 1: the archive as a v1 deployment left it — four
			// small v1 extents.
			d1 := openDirCfg(t, root, Config{WriteV1: true, CompactMinExtents: -1, NoFenceIndex: true})
			st1 := d1.Store("fx", fx.eps, fx.constant).(*Store)
			pts := 0
			chunk := (len(segs) + 3) / 4
			for lo := 0; lo < len(segs); lo += chunk {
				hi := lo + chunk
				if hi > len(segs) {
					hi = len(segs)
				}
				for _, s := range segs[lo:hi] {
					st1.Append(s)
					pts += s.Points
				}
				if err := st1.Seal(pts); err != nil {
					t.Fatal(err)
				}
			}
			mustMatchMem(t, st1, mem)
			d1.Close()

			// Stage 2: reopened by the v2-writing config; the v1
			// extents serve as-is, then compaction migrates them.
			d2 := openDirCfg(t, root, Config{CompactMinExtents: 2})
			st2 := d2.Store("fx", fx.eps, fx.constant).(*Store)
			mustMatchMem(t, st2, mem)
			if merges := compactAll(t, st2); merges == 0 {
				t.Fatal("nothing compacted")
			}
			if st2.exts[len(st2.exts)-1].v2 == nil {
				t.Fatal("merged extent is not v2")
			}
			mustMatchMem(t, st2, mem)
			d2.Close()

			// Stage 3: restart onto the migrated archive.
			d3 := openDirCfg(t, root, Config{})
			st3 := d3.Store("fx", fx.eps, fx.constant).(*Store)
			mustMatchMem(t, st3, mem)
		})
	}
}

// BenchmarkV2DecodeZeroAlloc is the alloc-check ratchet for the v2
// read path: decoding a block through the cache — the unit every cold
// query pays — must not allocate.
func BenchmarkV2DecodeZeroAlloc(b *testing.B) {
	dir := b.TempDir()
	path := filepath.Join(dir, "bench.seg")
	const n = 3 * v2BlockSize / 2
	eps := []float64{0.25, 0.5}
	segs := make([]core.Segment, n)
	for i := range segs {
		segs[i] = testSeg(i)
	}
	if err := writeExtentV2(path, eps, false, segs); err != nil {
		b.Fatal(err)
	}
	e, err := openExtent(path, 1, len(eps))
	if err != nil {
		b.Fatal(err)
	}
	defer e.close()
	if e.v2 == nil {
		b.Fatal("not a v2 extent")
	}
	// Touch both blocks once so the t0 scratch buffer exists before
	// measurement starts.
	e.searchLive(segs[0].T0)
	e.searchLive(segs[n-1].T0)

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Alternate blocks so every iteration is a cache miss: a full
		// block decode plus a t0-column decode and search.
		r := (i % 2) * v2BlockSize
		if e.v2Points(r) != segs[r].Points {
			b.Fatal("wrong record")
		}
		if e.searchLive(segs[r].T0) != r+1 {
			b.Fatal("wrong search result")
		}
	}
}
