package mmapstore

import (
	"math"
	"testing"

	"github.com/pla-go/pla/internal/tsdb"
)

// fenceProbeParity checks SearchT0 against the in-memory reference at
// every extent boundary, between boundaries, before the archive, past
// its end, and at NaN — the full findExtent surface.
func fenceProbeParity(t *testing.T, st *Store, mem tsdb.SegmentStore) {
	t.Helper()
	memIdx := mem.(tsdb.TimeIndex)
	probes := []float64{math.Inf(-1), -1, math.NaN(), 1e12}
	for i := 0; i < mem.Len(); i++ {
		t0 := mem.Seg(i).T0
		probes = append(probes, t0, t0-0.5, t0+0.5)
	}
	for _, p := range probes {
		if got, want := st.SearchT0(p), memIdx.SearchT0(p); got != want {
			t.Fatalf("SearchT0(%v) = %d, want %d", p, got, want)
		}
	}
}

// TestFenceIndexLookup builds enough extents for the learned fence to
// engage, checks every lookup against the in-memory reference, then
// re-runs the probes with deliberately misleading fences installed:
// the widening search must recover full correctness from a prediction
// pinned to either end of the extent list.
func TestFenceIndexLookup(t *testing.T) {
	root := t.TempDir()
	cfg := Config{CompactMinExtents: -1} // keep the extents fragmented
	d := openDirCfg(t, root, cfg)
	st := d.Store("f", testEps, false).(*Store)
	mem := tsdb.NewMemStore()
	sealChunks(t, st, mem, 120, 6) // 20 extents ≥ fenceMinExtents

	if st.fence == nil {
		t.Fatalf("no fence index over %d extents", len(st.exts))
	}
	// A few records stay unsealed so the tail branch of SearchT0 runs.
	for i := 120; i < 124; i++ {
		st.Append(testSeg(i))
		mem.Append(testSeg(i))
	}
	fenceProbeParity(t, st, mem)
	if got := d.Metrics().IndexJumps; got == 0 {
		t.Fatal("fence lookups recorded no index jumps")
	}

	// Adversarial fences: correctness must never depend on prediction
	// quality. Pin every prediction to extent 0 (exercises the upward
	// widening loop) and to the last extent (the downward loop).
	n := float64(len(st.exts) - 1)
	for _, f := range []*fenceIndex{
		{segs: []fenceSeg{{t0: st.liveT0s[0], t1: st.liveT0s[0]}}, bound: 0},
		{segs: []fenceSeg{{t0: st.liveT0s[0], t1: st.liveT0s[0], x0: n, x1: n}}, bound: 0},
	} {
		st.fence = f
		fenceProbeParity(t, st, mem)
	}

	// Reopen: the persisted fence must verify and serve identically.
	d.Close()
	d2 := openDirCfg(t, root, cfg)
	st2 := d2.Store("f", testEps, false).(*Store)
	if st2.fence == nil {
		t.Fatal("reopen adopted no fence index")
	}
	memSealed := tsdb.NewMemStore()
	for i := 0; i < 120; i++ {
		memSealed.Append(testSeg(i))
	}
	fenceProbeParity(t, st2, memSealed)
	d2.Close()

	// And with the index disabled the global binary search answers the
	// same probes from the same files.
	d3 := openDirCfg(t, root, Config{CompactMinExtents: -1, NoFenceIndex: true})
	st3 := d3.Store("f", testEps, false).(*Store)
	if st3.fence != nil {
		t.Fatal("NoFenceIndex still built a fence")
	}
	fenceProbeParity(t, st3, memSealed)
}

// TestFenceBuildAndVerify covers the trust boundary directly: when an
// index is not worth having, when a persisted one must be rejected,
// and what the measured bound looks like on clean input.
func TestFenceBuildAndVerify(t *testing.T) {
	if buildFence(nil) != nil {
		t.Fatal("built a fence over no extents")
	}
	few := make([]float64, fenceMinExtents-1)
	for i := range few {
		few[i] = float64(i)
	}
	if buildFence(few) != nil {
		t.Fatal("built a fence below fenceMinExtents")
	}

	t0s := make([]float64, 64)
	for i := range t0s {
		t0s[i] = 10 * float64(i)
	}
	t0s[20] = t0s[19] // duplicate: builder must skip, verify must absorb
	f := buildFence(t0s)
	if f == nil {
		t.Fatal("no fence over 64 linear start times")
	}
	if f.bound > int(fenceEps)+1 {
		t.Fatalf("bound %d on linear input, want ≤ %d", f.bound, int(fenceEps)+1)
	}
	for _, probe := range []float64{-5, 0, 315, 631, 1e9} {
		k := f.predict(probe)
		if k < 0 || k >= len(t0s)+f.bound+1 {
			t.Fatalf("predict(%v) = %d, outside any plausible window", probe, k)
		}
	}

	// Corrupt persisted indexes the meta reader may hand adoptFence.
	for name, bad := range map[string]*fenceIndex{
		"empty":        {},
		"nan-range":    {segs: []fenceSeg{{t0: math.NaN(), t1: 1}}},
		"reversed":     {segs: []fenceSeg{{t0: 5, t1: 1}}},
		"overstuffed":  {segs: make([]fenceSeg, len(t0s)+1)},
		"out-of-bound": {segs: []fenceSeg{{t0: t0s[0], t1: t0s[len(t0s)-1], x0: 1e6, x1: 1e6}}},
	} {
		if bad.verify(t0s) {
			t.Fatalf("%s fence verified", name)
		}
	}

	// A prediction stuck at zero over a long archive exceeds
	// fenceMaxBound: verify must measure and refuse it.
	long := make([]float64, fenceMaxBound+2)
	for i := range long {
		long[i] = float64(i)
	}
	stuck := &fenceIndex{segs: []fenceSeg{{t0: long[0], t1: long[0]}}}
	if stuck.verify(long) {
		t.Fatalf("bound %d fence verified, max is %d", stuck.bound, fenceMaxBound)
	}
}
