package mmapstore

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"sort"
	"sync"

	"github.com/pla-go/pla/internal/core"
)

// Extent format v2: column blocks instead of fixed-width records. The
// fixed header (magic, version=2, flags, dim, count, crc, ε) is shared
// with v1; after it, at extHeaderSize(dim):
//
//	+0: block size (uint32)   records per block (last block may be short)
//	+4: nblocks (uint32)
//	directory, nblocks × 12 bytes:
//	    +0: off (uint32)      block payload offset from file start
//	    +4: first t0 (float64 bits) of the block — binary-searchable
//	        without touching the payload
//	block payloads back to back, each the column sequence
//	    t0 | t1 | points | connected bitmap (⌈k/8⌉ raw bytes) |
//	    x0[0..dim) | x1[0..dim)
//	with each column encoded per packed.go.
//
// The crc32c in the fixed header covers everything after the ε block —
// layout words, directory and payloads — so a torn compaction write is
// caught exactly like a torn v1 seal. openExtent decodes every block
// once at open time; after that the read path trusts offsets and
// widths unconditionally, which is what keeps the per-query decode
// loop allocation-free and panic-safe on fuzzed inputs.
const (
	extVersion2 = 2

	// v2BlockSize is the writer's records-per-block. 512 keeps a
	// decoded block around 20 KiB for dim-2 series (cache-friendly)
	// while amortizing the per-column headers to well under a bit per
	// record.
	v2BlockSize = 512

	// v2MaxBlockSize bounds what a header may claim, so scratch-buffer
	// sizing from untrusted bytes stays small.
	v2MaxBlockSize = 1 << 20
)

// extV2 is the v2-specific state of a mapped extent: the block layout
// plus a one-block decode cache. Queries run concurrently under the
// series RLock, so the cache carries its own mutex.
type extV2 struct {
	bs      int // records per block
	nblocks int
	dirOff  int // directory offset from file start

	mu    sync.Mutex
	cache v2Block

	// The t0 column is the only lane a time search touches, so it gets
	// its own one-block cache: a probe that misses the full-block cache
	// decodes one column, not all 3+2·dim of them.
	tIdx int // block whose t0 column is decoded in tT0s; -1 = none
	tT0s []uint64
}

// v2Block is one decoded block: column lanes sized for a full block
// (short last blocks fill a prefix). x0/x1 hold dim lanes of bs values
// each, dimension d record r at [d*bs+r].
type v2Block struct {
	idx    int // block index held; -1 when empty
	t0     []uint64
	t1     []uint64
	pts    []uint64
	conn   []byte
	x0, x1 []uint64
}

func newV2Block(dim, bs int) v2Block {
	return v2Block{
		idx:  -1,
		t0:   make([]uint64, bs),
		t1:   make([]uint64, bs),
		pts:  make([]uint64, bs),
		conn: make([]byte, (bs+7)/8),
		x0:   make([]uint64, dim*bs),
		x1:   make([]uint64, dim*bs),
	}
}

// decodeV2Block decodes one block payload of k records into dst,
// requiring exact consumption of payload. Structural validation lives
// in decodeColumn; this cannot fail on bytes openExtent accepted.
func decodeV2Block(payload []byte, dim, k, bs int, dst *v2Block) error {
	p, err := decodeColumn(payload, k, true, dst.t0)
	if err != nil {
		return err
	}
	if p, err = decodeColumn(p, k, true, dst.t1); err != nil {
		return err
	}
	if p, err = decodeColumn(p, k, false, dst.pts); err != nil {
		return err
	}
	nb := (k + 7) / 8
	if len(p) < nb {
		return fmt.Errorf("mstore: truncated connected bitmap")
	}
	copy(dst.conn, p[:nb])
	p = p[nb:]
	for d := 0; d < dim; d++ {
		if p, err = decodeColumn(p, k, true, dst.x0[d*bs:d*bs+k]); err != nil {
			return err
		}
	}
	for d := 0; d < dim; d++ {
		if p, err = decodeColumn(p, k, true, dst.x1[d*bs:d*bs+k]); err != nil {
			return err
		}
	}
	if len(p) != 0 {
		return fmt.Errorf("mstore: %d trailing bytes in block", len(p))
	}
	return nil
}

// validateV2 checks the block layout and decodes every block once, so
// access-time decodes can never read out of bounds. Called by validate
// after the shared header and checksum pass.
func (e *extent) validateV2(dim, count int) error {
	p := extHeaderSize(dim)
	if len(e.data) < p+8 {
		return fmt.Errorf("mstore: v2 extent missing block layout")
	}
	bs := int(binary.LittleEndian.Uint32(e.data[p:]))
	nb := int(binary.LittleEndian.Uint32(e.data[p+4:]))
	if bs < 1 || bs > v2MaxBlockSize {
		return fmt.Errorf("mstore: v2 block size %d", bs)
	}
	if want := (count + bs - 1) / bs; nb != want {
		return fmt.Errorf("mstore: v2 extent claims %d blocks, %d records at block size %d imply %d", nb, count, bs, want)
	}
	dirOff := p + 8
	blocksOff := dirOff + 12*nb
	if blocksOff > len(e.data) {
		return fmt.Errorf("mstore: v2 directory overruns the file")
	}
	e.dim, e.count, e.lo, e.hi = dim, count, 0, count
	e.v2 = &extV2{bs: bs, nblocks: nb, dirOff: dirOff, tIdx: -1}
	e.v2.cache = newV2Block(dim, bs)

	prev := blocksOff
	for b := 0; b < nb; b++ {
		off := e.blockOff(b)
		if off != prev {
			return fmt.Errorf("mstore: v2 block %d starts at %d, previous ended at %d", b, off, prev)
		}
		end := e.blockOff(b + 1)
		if end < off || end > len(e.data) {
			return fmt.Errorf("mstore: v2 block %d overruns the file", b)
		}
		if err := decodeV2Block(e.data[off:end], dim, e.blockLen(b), bs, &e.v2.cache); err != nil {
			return fmt.Errorf("mstore: v2 block %d: %w", b, err)
		}
		if e.v2.cache.t0[0] != binary.LittleEndian.Uint64(e.data[dirOff+12*b+4:]) {
			return fmt.Errorf("mstore: v2 block %d directory t0 mismatch", b)
		}
		prev = end
	}
	if prev != len(e.data) {
		return fmt.Errorf("mstore: v2 extent has %d trailing bytes", len(e.data)-prev)
	}
	if nb > 0 {
		e.v2.cache.idx = nb - 1 // the validation loop left the last block decoded
	}
	return nil
}

// blockOff returns where block b's payload starts; blockOff(nblocks)
// is the end of the file.
func (e *extent) blockOff(b int) int {
	if b == e.v2.nblocks {
		return len(e.data)
	}
	return int(binary.LittleEndian.Uint32(e.data[e.v2.dirOff+12*b:]))
}

// blockLen returns the record count of block b (the last may be short).
func (e *extent) blockLen(b int) int {
	k := e.count - b*e.v2.bs
	if k > e.v2.bs {
		k = e.v2.bs
	}
	return k
}

// dirFirstT0 reads block b's first record t0 from the directory —
// no payload decode (verified bit-equal to the payload at open).
func (e *extent) dirFirstT0(b int) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(e.data[e.v2.dirOff+12*b+4:]))
}

// loadBlock returns block b decoded, via the cache. Caller holds v2.mu.
func (e *extent) loadBlock(b int) *v2Block {
	v := e.v2
	if v.cache.idx == b {
		return &v.cache
	}
	if err := decodeV2Block(e.data[e.blockOff(b):e.blockOff(b+1)], e.dim, e.blockLen(b), v.bs, &v.cache); err != nil {
		// Every block decoded clean at open; the mapping cannot have
		// produced new bytes.
		panic(fmt.Sprintf("mstore: validated block %d of %s failed to decode: %v", b, e.path, err))
	}
	v.cache.idx = b
	return &v.cache
}

// blockT0s returns block b's decoded t0 column, reusing the full-block
// cache when it already holds b and paying a one-column decode into the
// dedicated t0 cache otherwise. Caller holds v2.mu.
func (e *extent) blockT0s(b int) []uint64 {
	v := e.v2
	if v.cache.idx == b {
		return v.cache.t0
	}
	if v.tIdx != b {
		if v.tT0s == nil {
			v.tT0s = make([]uint64, v.bs)
		}
		if _, err := decodeColumn(e.data[e.blockOff(b):e.blockOff(b+1)], e.blockLen(b), true, v.tT0s); err != nil {
			panic(fmt.Sprintf("mstore: validated block %d of %s failed to decode: %v", b, e.path, err))
		}
		v.tIdx = b
	}
	return v.tT0s
}

func (e *extent) v2T0(i int) float64 {
	v := e.v2
	b, r := i/v.bs, i%v.bs
	if r == 0 {
		return e.dirFirstT0(b)
	}
	v.mu.Lock()
	t := math.Float64frombits(e.blockT0s(b)[r])
	v.mu.Unlock()
	return t
}

func (e *extent) v2Points(i int) int {
	v := e.v2
	b, r := i/v.bs, i%v.bs
	v.mu.Lock()
	pts := int(e.loadBlock(b).pts[r])
	v.mu.Unlock()
	return pts
}

func (e *extent) v2Segment(i int) core.Segment {
	v := e.v2
	b, r := i/v.bs, i%v.bs
	seg := core.Segment{
		X0: make([]float64, e.dim),
		X1: make([]float64, e.dim),
	}
	v.mu.Lock()
	blk := e.loadBlock(b)
	seg.T0 = math.Float64frombits(blk.t0[r])
	seg.T1 = math.Float64frombits(blk.t1[r])
	seg.Points = int(blk.pts[r])
	seg.Connected = blk.conn[r/8]&(1<<(r%8)) != 0
	for d := 0; d < e.dim; d++ {
		seg.X0[d] = math.Float64frombits(blk.x0[d*v.bs+r])
		seg.X1[d] = math.Float64frombits(blk.x1[d*v.bs+r])
	}
	v.mu.Unlock()
	return seg
}

// searchLive returns the least live record index with t0(i) > t. For
// v2 extents it binary-searches the block directory first, then one
// decoded t0 column — at most one single-column decode per call —
// instead of log(count) record probes.
func (e *extent) searchLive(t float64) int {
	if e.v2 == nil {
		return e.lo + sort.Search(e.hi-e.lo, func(j int) bool { return e.t0(e.lo+j) > t })
	}
	v := e.v2
	b0 := e.lo / v.bs
	b1 := (e.hi - 1) / v.bs
	// Last block in [b0, b1] whose first t0 is ≤ t; if even b0's first
	// live record exceeds t the in-block search below lands on it.
	b := b0 + sort.Search(b1-b0, func(j int) bool { return e.dirFirstT0(b0+1+j) > t })
	blo := b * v.bs
	if blo < e.lo {
		blo = e.lo
	}
	bhi := b*v.bs + e.blockLen(b)
	if bhi > e.hi {
		bhi = e.hi
	}
	v.mu.Lock()
	t0s := e.blockT0s(b)
	j := sort.Search(bhi-blo, func(j int) bool {
		return math.Float64frombits(t0s[blo-b*v.bs+j]) > t
	})
	v.mu.Unlock()
	// All of block b ≤ t means the answer is the next block's first
	// record, whose directory t0 the block search already proved > t.
	return blo + j
}

// appendV2Block encodes segs (one block's worth) onto dst. lanes and
// scratch are reused across blocks.
func appendV2Block(dst []byte, segs []core.Segment, dim int, lanes []uint64, scratch []int64) ([]byte, []int64) {
	k := len(segs)
	lanes = lanes[:k]
	for i, s := range segs {
		lanes[i] = math.Float64bits(s.T0)
	}
	dst, scratch = appendColumn(dst, lanes, true, scratch)
	for i, s := range segs {
		lanes[i] = math.Float64bits(s.T1)
	}
	dst, scratch = appendColumn(dst, lanes, true, scratch)
	for i, s := range segs {
		pts := s.Points
		if pts < 0 {
			pts = 0
		}
		lanes[i] = uint64(uint32(pts))
	}
	dst, scratch = appendColumn(dst, lanes, false, scratch)
	flagsOff := len(dst)
	for i := 0; i < (k+7)/8; i++ {
		dst = append(dst, 0)
	}
	for i, s := range segs {
		if s.Connected {
			dst[flagsOff+i/8] |= 1 << (i % 8)
		}
	}
	for d := 0; d < dim; d++ {
		for i, s := range segs {
			lanes[i] = math.Float64bits(s.X0[d])
		}
		dst, scratch = appendColumn(dst, lanes, true, scratch)
	}
	for d := 0; d < dim; d++ {
		for i, s := range segs {
			lanes[i] = math.Float64bits(s.X1[d])
		}
		dst, scratch = appendColumn(dst, lanes, true, scratch)
	}
	return dst, scratch
}

// writeExtentV2 seals segs as one v2 extent file with the same
// durability contract as writeExtent: flushed and fsynced before
// returning, removed on failure.
func writeExtentV2(path string, eps []float64, constant bool, segs []core.Segment) error {
	dim := len(eps)
	n := len(segs)
	bs := v2BlockSize
	nb := (n + bs - 1) / bs

	hdrSize := extHeaderSize(dim) + 8 + 12*nb
	hdr := make([]byte, hdrSize)
	copy(hdr, extMagic)
	hdr[4] = extVersion2
	if constant {
		hdr[5] = extFlagConstant
	}
	binary.LittleEndian.PutUint16(hdr[6:], uint16(dim))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(n))
	for d, e := range eps {
		binary.LittleEndian.PutUint64(hdr[16+8*d:], math.Float64bits(e))
	}
	p := extHeaderSize(dim)
	binary.LittleEndian.PutUint32(hdr[p:], uint32(bs))
	binary.LittleEndian.PutUint32(hdr[p+4:], uint32(nb))

	var blocks []byte
	lanes := make([]uint64, bs)
	var scratch []int64
	for b := 0; b < nb; b++ {
		lo, hi := b*bs, (b+1)*bs
		if hi > n {
			hi = n
		}
		binary.LittleEndian.PutUint32(hdr[p+8+12*b:], uint32(hdrSize+len(blocks)))
		binary.LittleEndian.PutUint64(hdr[p+8+12*b+4:], math.Float64bits(segs[lo].T0))
		blocks, scratch = appendV2Block(blocks, segs[lo:hi], dim, lanes, scratch)
	}
	crc := crc32.New(castagnoli)
	crc.Write(hdr[extHeaderSize(dim):])
	crc.Write(blocks)
	binary.LittleEndian.PutUint32(hdr[12:], crc.Sum32())

	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	fail := func(err error) error {
		f.Close()
		os.Remove(path)
		return err
	}
	if _, err := f.Write(hdr); err != nil {
		return fail(err)
	}
	if _, err := f.Write(blocks); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	return f.Close()
}
