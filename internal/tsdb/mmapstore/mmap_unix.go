//go:build unix

package mmapstore

import (
	"os"
	"syscall"
)

// mapFile maps the whole of path read-only. A zero-length file returns
// an empty (unmapped) slice, since mmap rejects length 0.
func mapFile(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := info.Size()
	if size == 0 {
		return []byte{}, nil
	}
	if size != int64(int(size)) {
		return nil, syscall.EFBIG
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

// unmapFile releases a mapping returned by mapFile.
func unmapFile(data []byte) {
	if len(data) > 0 {
		syscall.Munmap(data)
	}
}
