package mmapstore

import (
	"fmt"
	"os"
	"path/filepath"

	"github.com/pla-go/pla/internal/core"
	"github.com/pla-go/pla/internal/tsdb"
)

// Background extent compaction. Every seal emits one extent, so a
// long-lived series accumulates hundreds of small mapped files — each
// a page-cache entry, an mmap region and a lookup probe. Compaction
// merges an adjacent run of small extents into one large, time-sorted
// extent (in the configured write format, so v1 archives migrate to v2
// as a side effect), reusing the two-phase seal machinery: prepare
// captures under the series lock, the write and fsync run unlocked,
// commit re-checks the store generation and installs via persist —
// meta (with the new live list) first, retired files deleted after, so
// a crash at any boundary leaves either the old extents or the merged
// one, never neither. Retention fences are garbage-collected by the
// merge (only live records are copied) and the merged extent gets a
// fresh sketch sidecar anchored at the run's live offset.
const (
	defaultCompactMinExtents    = 8
	defaultCompactTargetRecords = 1 << 16
)

// PrepareCompact implements tsdb.Compactor (phase one, under the
// series lock): pick one run of adjacent small extents and capture its
// live records. Returns false when the policy is off, the store is
// small, or no run qualifies. Callers loop — one merge per call keeps
// the lock hold and the unlocked write bounded near TargetRecords.
func (st *Store) PrepareCompact() (tsdb.PreparedSeal, bool) {
	minExts, target, enabled := st.d.compactPolicy()
	if !enabled || len(st.exts) < minExts {
		return nil, false
	}
	i, j := compactRun(st.exts, target)
	if j-i < 2 {
		return nil, false
	}
	p := &preparedCompact{st: st, gen: st.gen, i: i, j: j, absStart: st.cumLive[i]}
	for k := i; k < j; k++ {
		e := st.exts[k]
		p.bytesIn += uint64(len(e.data))
		for r := e.lo; r < e.hi; r++ {
			p.segs = append(p.segs, e.segment(r))
		}
	}
	p.seq = st.lastSeq + 1
	p.path = filepath.Join(st.dir, fmt.Sprintf(extPattern, p.seq))
	return p, true
}

// compactRun returns the first run [i, j) of at least two adjacent
// extents that are each smaller than target, growing until the run
// reaches target live records. Returns an empty run when nothing
// qualifies (large extents are never rewritten — v1 ones included;
// they stay readable as they are).
func compactRun(exts []*extent, target int) (int, int) {
	i := 0
	for i < len(exts) {
		if exts[i].live() >= target {
			i++
			continue
		}
		j, total := i, 0
		for j < len(exts) && exts[j].live() < target && total < target {
			total += exts[j].live()
			j++
		}
		if j-i >= 2 {
			return i, j
		}
		i = j // a lone small extent; no neighbour to merge with
	}
	return 0, 0
}

// preparedCompact is one in-flight merge: the captured run, its
// decoded live records, and the generation the capture is valid
// against.
type preparedCompact struct {
	st       *Store
	gen      uint64
	i, j     int // the captured extent run [i, j)
	segs     []core.Segment
	absStart int // live sealed index of segs[0] at prepare time
	bytesIn  uint64
	seq      uint64
	path     string
	ext      *extent
	sum      *sidecar
}

// Write implements tsdb.PreparedSeal: the merged extent is written,
// read back and fsynced with no lock held.
func (p *preparedCompact) Write() error {
	st := p.st
	if err := st.d.writeExtentFile(p.path, st.eps, st.constant, p.segs); err != nil {
		return err
	}
	ext, err := openExtent(p.path, p.seq, len(st.eps))
	if err != nil {
		os.Remove(p.path)
		return fmt.Errorf("mstore: %s: compacted extent does not read back: %w", st.name, err)
	}
	p.ext = ext
	// The merged sidecar replaces the retired extents' sidecars inside
	// the same crash window as the extent itself; like theirs, it is a
	// cache — a failed write just degrades queries to the segment walk.
	if sc := buildSidecar(p.absStart, len(st.eps), p.segs); sc != nil {
		if err := writeSidecar(sidecarPath(p.path), sc); err != nil {
			st.d.logf("mstore: %s: compacted sketch sidecar write (queries fall back to segment walk): %v", st.name, err)
		} else {
			p.sum = sc
		}
	}
	return nil
}

// Commit implements tsdb.PreparedSeal (under the series lock again):
// splice the merged extent over its source run and move the meta's
// live list. Any interleaved mutation — a seal, a retention fence,
// another compaction — bumped the generation via persist, so a stale
// capture is discarded and reports false; the source extents are still
// live, nothing is lost, and the next trigger retries.
func (p *preparedCompact) Commit() bool {
	st := p.st
	if st.gen != p.gen {
		p.ext.close()
		os.Remove(p.path)
		os.Remove(sidecarPath(p.path))
		syncDir(st.dir, st.d.logf)
		st.d.logf("mstore: %s: store changed during compaction; retrying at the next trigger", st.name)
		return false
	}
	survivors := make([]*extent, 0, len(st.exts)-(p.j-p.i)+1)
	survivors = append(survivors, st.exts[:p.i]...)
	survivors = append(survivors, p.ext)
	survivors = append(survivors, st.exts[p.j:]...)
	retired := append([]*extent(nil), st.exts[p.i:p.j]...)
	st.persist(survivors, retired)
	if p.sum != nil {
		if st.sums == nil {
			st.sums = make(map[uint64]*sidecar)
		}
		st.sums[p.seq] = p.sum
	}
	st.d.compactions.Add(1)
	st.d.compactedBytes.Add(p.bytesIn)
	return true
}
