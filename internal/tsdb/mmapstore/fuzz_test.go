package mmapstore

import (
	"encoding/binary"
	"math"
	"os"
	"path/filepath"
	"testing"

	"github.com/pla-go/pla/internal/core"
)

// buildExtentBytes seals a deterministic segment run and returns the
// file's bytes — the fuzz seed shape.
func buildExtentBytes(t testing.TB, dim, n int) []byte {
	dir := t.TempDir()
	path := filepath.Join(dir, "seed.seg")
	eps := make([]float64, dim)
	segs := make([]core.Segment, n)
	for d := range eps {
		eps[d] = 0.5 * float64(d+1)
	}
	for i := range segs {
		x0, x1 := make([]float64, dim), make([]float64, dim)
		for d := range x0 {
			x0[d] = math.Sin(float64(i + d))
			x1[d] = math.Cos(float64(i + d))
		}
		segs[i] = core.Segment{
			T0: float64(2 * i), T1: float64(2*i + 1),
			X0: x0, X1: x1, Connected: i%2 == 1, Points: i + 1,
		}
	}
	if err := writeExtent(path, eps, false, segs); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// buildExtentV2Bytes is buildExtentBytes for the bit-packed v2 format.
func buildExtentV2Bytes(t testing.TB, dim, n int) []byte {
	dir := t.TempDir()
	path := filepath.Join(dir, "seed2.seg")
	eps := make([]float64, dim)
	segs := make([]core.Segment, n)
	for d := range eps {
		eps[d] = 0.5 * float64(d+1)
	}
	for i := range segs {
		x0, x1 := make([]float64, dim), make([]float64, dim)
		for d := range x0 {
			x0[d] = math.Sin(float64(i + d))
			x1[d] = math.Cos(float64(i + d))
		}
		segs[i] = core.Segment{
			T0: float64(2 * i), T1: float64(2*i + 1),
			X0: x0, X1: x1, Connected: i%2 == 1, Points: i + 1,
		}
	}
	if err := writeExtentV2(path, eps, false, segs); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// FuzzExtentV2 is FuzzMmapExtent for the v2 column-block format: no
// input may panic the reader or the post-validation decode path, and
// any accepted file must survive a v2 re-seal bit-identically. The
// extra seeds lie about the block layout — size, count, directory
// offsets — the surface v1 did not have.
func FuzzExtentV2(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("PLAE\x02"))
	for _, shape := range []struct{ dim, n int }{{1, 5}, {3, 5}, {1, 1200}} {
		raw := buildExtentV2Bytes(f, shape.dim, shape.n)
		f.Add(raw)
		f.Add(raw[:len(raw)-9])        // torn tail
		f.Add(append(raw, 0xAA, 0xBB)) // trailing garbage
		flipped := append([]byte(nil), raw...)
		flipped[len(flipped)/2] ^= 0x40 // checksum mismatch
		f.Add(flipped)
		big := append([]byte(nil), raw...)
		binary.LittleEndian.PutUint32(big[8:], 1<<31-1) // lying record count
		f.Add(big)
		hs := extHeaderSize(shape.dim)
		if len(raw) >= hs+8 {
			bs := append([]byte(nil), raw...)
			binary.LittleEndian.PutUint32(bs[hs:], 3) // lying block size
			f.Add(bs)
			dirlie := append([]byte(nil), raw...)
			binary.LittleEndian.PutUint32(dirlie[hs+8:], uint32(len(raw))) // directory points past EOF
			f.Add(dirlie)
		}
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "fuzz.seg")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		e, err := openExtent(path, 1, -1)
		if err != nil {
			return // rejected cleanly
		}
		defer e.close()

		segs := make([]core.Segment, e.count)
		for i := range segs {
			if got := e.t0(i); got != e.segment(i).T0 {
				t.Fatalf("t0(%d) = %v, segment says %v", i, got, e.segment(i).T0)
			}
			if e.points(i) != e.segment(i).Points {
				t.Fatalf("points(%d) mismatch", i)
			}
			segs[i] = e.segment(i)
		}
		// searchLive must agree with a linear scan over the decoded
		// records for any probe — the fence index's correctness floor.
		if e.count > 0 {
			for _, probe := range []float64{segs[0].T0 - 1, segs[0].T0, segs[e.count/2].T0, segs[e.count-1].T0 + 1} {
				want := 0
				for want < e.count && !(segs[want].T0 > probe) {
					want++
				}
				if got := e.searchLive(probe); got != want {
					t.Fatalf("searchLive(%v) = %d, linear scan says %d", probe, got, want)
				}
			}
		}
		eps := make([]float64, e.dim)
		for d := range eps {
			eps[d] = math.Float64frombits(binary.LittleEndian.Uint64(e.data[16+8*d:]))
		}
		out := filepath.Join(dir, "reseal.seg")
		if err := writeExtentV2(out, eps, e.data[5]&extFlagConstant != 0, segs); err != nil {
			t.Fatalf("re-seal of an accepted extent failed: %v", err)
		}
		e2, err := openExtent(out, 1, e.dim)
		if err != nil {
			t.Fatalf("re-sealed extent does not open: %v", err)
		}
		defer e2.close()
		if e2.count != e.count {
			t.Fatalf("re-seal kept %d of %d records", e2.count, e.count)
		}
		for i := 0; i < e.count; i++ {
			a, b := e.segment(i), e2.segment(i)
			if a.T0 != b.T0 || a.T1 != b.T1 || a.Connected != b.Connected || a.Points != b.Points {
				t.Fatalf("record %d changed across re-seal: %+v vs %+v", i, a, b)
			}
			for d := range a.X0 {
				if math.Float64bits(a.X0[d]) != math.Float64bits(b.X0[d]) ||
					math.Float64bits(a.X1[d]) != math.Float64bits(b.X1[d]) {
					t.Fatalf("record %d dim %d changed across re-seal", i, d)
				}
			}
		}
	})
}

// FuzzMmapExtent feeds arbitrary bytes to the extent reader: it must
// never panic, never over-allocate on a lying header, and any file it
// does accept must decode into segments that re-seal to a semantically
// identical extent.
func FuzzMmapExtent(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte("PLAE"))
	for _, dim := range []int{1, 3} {
		raw := buildExtentBytes(f, dim, 5)
		f.Add(raw)
		f.Add(raw[:len(raw)-9])        // torn tail
		f.Add(append(raw, 0xAA, 0xBB)) // trailing garbage
		flipped := append([]byte(nil), raw...)
		flipped[len(flipped)/2] ^= 0x40 // checksum mismatch
		f.Add(flipped)
		big := append([]byte(nil), raw...)
		binary.LittleEndian.PutUint32(big[8:], 1<<31-1) // lying record count
		f.Add(big)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "fuzz.seg")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		e, err := openExtent(path, 1, -1)
		if err != nil {
			return // rejected cleanly
		}
		defer e.close()

		// The reader vouched for the bytes; every accessor must work and
		// the decode must survive a re-seal round trip.
		segs := make([]core.Segment, e.count)
		for i := range segs {
			if got := e.t0(i); got != e.segment(i).T0 {
				t.Fatalf("t0(%d) = %v, segment says %v", i, got, e.segment(i).T0)
			}
			if e.points(i) != e.segment(i).Points {
				t.Fatalf("points(%d) mismatch", i)
			}
			segs[i] = e.segment(i)
		}
		eps := make([]float64, e.dim)
		for d := range eps {
			eps[d] = math.Float64frombits(binary.LittleEndian.Uint64(e.data[16+8*d:]))
		}
		out := filepath.Join(dir, "reseal.seg")
		if err := writeExtent(out, eps, e.data[5]&extFlagConstant != 0, segs); err != nil {
			t.Fatalf("re-seal of an accepted extent failed: %v", err)
		}
		e2, err := openExtent(out, 1, e.dim)
		if err != nil {
			t.Fatalf("re-sealed extent does not open: %v", err)
		}
		defer e2.close()
		if e2.count != e.count {
			t.Fatalf("re-seal kept %d of %d records", e2.count, e.count)
		}
		for i := 0; i < e.count; i++ {
			a, b := e.segment(i), e2.segment(i)
			if a.T0 != b.T0 || a.T1 != b.T1 || a.Connected != b.Connected || a.Points != b.Points {
				t.Fatalf("record %d changed across re-seal: %+v vs %+v", i, a, b)
			}
			for d := range a.X0 {
				if math.Float64bits(a.X0[d]) != math.Float64bits(b.X0[d]) ||
					math.Float64bits(a.X1[d]) != math.Float64bits(b.X1[d]) {
					t.Fatalf("record %d dim %d changed across re-seal", i, d)
				}
			}
		}
	})
}
