package mmapstore

import (
	"math"
	"sort"

	"github.com/pla-go/pla/internal/core"
)

// The learned fence index: a PLA over the PLA's timestamps, PGM-style.
// The store runs Swing — the paper's own filter — over the points
// (extent first live t0, extent position), so predicting a query time's
// extent becomes evaluating a handful of line segments instead of
// binary-searching the whole extent list. The prediction error is not
// trusted from ε: after building (and after loading a persisted index),
// verify measures the true worst-case error against the actual extent
// start times and the index is rejected outright if it exceeds
// fenceMaxBound. Lookup correctness therefore never depends on index
// quality — the widening search in findExtent recovers from any
// prediction — only lookup speed does.
const (
	// fenceEps is the Swing tolerance in index space: predictions land
	// within ±2 extents of the truth wherever the start-time
	// distribution is locally linear.
	fenceEps = 2.0

	// fenceMinExtents is the extent count below which a plain binary
	// search beats maintaining an index.
	fenceMinExtents = 16

	// fenceMaxBound rejects an index whose measured error got so wide
	// (wildly irregular seal cadence) that jumping is pointless.
	fenceMaxBound = 256

	// fenceMaxSegs caps what a meta file may claim, bounding the
	// allocation a corrupt meta can cause.
	fenceMaxSegs = 1 << 20
)

type fenceSeg struct {
	t0, t1 float64 // covered start-time range
	x0, x1 float64 // predicted extent position at t0 and t1
}

type fenceIndex struct {
	segs  []fenceSeg
	bound int // measured worst-case |prediction − truth|, in extents
}

// buildFence fits the index over the per-extent first live start
// times. Returns nil when an index is not worth having (few extents)
// or cannot be trusted (verification exceeded fenceMaxBound).
func buildFence(liveT0s []float64) *fenceIndex {
	if len(liveT0s) < fenceMinExtents {
		return nil
	}
	sw, err := core.NewSwing([]float64{fenceEps})
	if err != nil {
		return nil
	}
	var out []core.Segment
	pt := core.Point{X: make([]float64, 1)}
	prev := math.Inf(-1)
	for k, t := range liveT0s {
		if !(t > prev) {
			continue // duplicate or disordered t0; verify absorbs the gap
		}
		prev = t
		pt.T, pt.X[0] = t, float64(k)
		segs, err := sw.Push(pt)
		if err != nil {
			return nil
		}
		out = append(out, segs...)
	}
	segs, err := sw.Finish()
	if err != nil {
		return nil
	}
	out = append(out, segs...)
	if len(out) == 0 {
		return nil
	}
	f := &fenceIndex{segs: make([]fenceSeg, len(out))}
	for i, s := range out {
		f.segs[i] = fenceSeg{t0: s.T0, t1: s.T1, x0: s.X0[0], x1: s.X1[0]}
	}
	if !f.verify(liveT0s) {
		return nil
	}
	return f
}

// predict estimates the position of the extent covering t. The result
// is a hint: findExtent corrects it within the verified bound.
func (f *fenceIndex) predict(t float64) int {
	n := len(f.segs)
	// Last fence segment starting at or before t (clamped to the ends).
	i := sort.Search(n, func(j int) bool { return f.segs[j].t0 > t }) - 1
	if i < 0 {
		i = 0
	}
	s := f.segs[i]
	ct := t
	if ct < s.t0 {
		ct = s.t0
	}
	if ct > s.t1 {
		ct = s.t1
	}
	x := s.x0
	if s.t1 > s.t0 {
		x += (s.x1 - s.x0) * (ct - s.t0) / (s.t1 - s.t0)
	}
	if math.IsNaN(x) {
		return 0
	}
	return int(math.Round(x))
}

// verify measures the worst-case prediction error over the true start
// times, records it as the bound, and reports whether the index is
// usable. Run after building and after loading from a meta — the meta
// has no checksum, so a persisted index is never trusted unmeasured.
func (f *fenceIndex) verify(liveT0s []float64) bool {
	if len(f.segs) == 0 || len(f.segs) > len(liveT0s) {
		return false
	}
	for _, s := range f.segs {
		if math.IsNaN(s.t0) || math.IsNaN(s.t1) || s.t1 < s.t0 {
			return false
		}
	}
	bound := 0
	for k, t := range liveT0s {
		d := f.predict(t) - k
		if d < 0 {
			d = -d
		}
		if d > bound {
			bound = d
		}
	}
	f.bound = bound
	return bound <= fenceMaxBound
}
