package mmapstore

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"github.com/pla-go/pla/internal/core"
	"github.com/pla-go/pla/internal/tsdb"
)

func testSeg(i int) core.Segment {
	t0 := float64(2 * i)
	return core.Segment{
		T0: t0, T1: t0 + 1,
		X0:        []float64{math.Sin(t0), math.Cos(t0)},
		X1:        []float64{math.Sin(t0) + 0.5, math.Cos(t0) - 0.25},
		Connected: i%3 == 1,
		Points:    10 + i,
	}
}

var testEps = []float64{0.25, 0.5}

func openDir(t *testing.T, root string) *Dir {
	t.Helper()
	d, err := Open(root, t.Logf)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

func segsEqual(a, b core.Segment) bool {
	if a.T0 != b.T0 || a.T1 != b.T1 || a.Connected != b.Connected ||
		a.Points != b.Points || a.Provisional != b.Provisional ||
		len(a.X0) != len(b.X0) || len(a.X1) != len(b.X1) {
		return false
	}
	for d := range a.X0 {
		if a.X0[d] != b.X0[d] || a.X1[d] != b.X1[d] {
			return false
		}
	}
	return true
}

// mustMatchMem drives the mmap store and a MemStore through the same
// operation sequence and asserts identical observable state.
func mustMatchMem(t *testing.T, got tsdb.SegmentStore, want tsdb.SegmentStore) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("Len = %d, want %d", got.Len(), want.Len())
	}
	for i := 0; i < want.Len(); i++ {
		if g, w := got.Seg(i), want.Seg(i); !segsEqual(g, w) {
			t.Fatalf("Seg(%d) = %+v, want %+v", i, g, w)
		}
	}
	gs, ws := got.Snapshot(), want.Snapshot()
	for i := range ws {
		if !segsEqual(gs[i], ws[i]) {
			t.Fatalf("Snapshot[%d] = %+v, want %+v", i, gs[i], ws[i])
		}
	}
	gt, wt := got.(tsdb.TimeIndex), want.(tsdb.TimeIndex)
	for _, probe := range []float64{-5, 0, 0.5, 1, 3, 7.2, 100} {
		if g, w := gt.SearchT0(probe), wt.SearchT0(probe); g != w {
			t.Fatalf("SearchT0(%v) = %d, want %d", probe, g, w)
		}
	}
}

// TestStoreParityAcrossSeals runs appends, seals, drops and reopens,
// comparing against the in-memory reference at every step.
func TestStoreParityAcrossSeals(t *testing.T) {
	root := t.TempDir()
	d := openDir(t, root)
	st := d.Store("parity", testEps, false).(*Store)
	mem := tsdb.NewMemStore()

	add := func(lo, n int) {
		for i := lo; i < lo+n; i++ {
			st.Append(testSeg(i))
			mem.Append(testSeg(i))
		}
	}
	points := func(n int) int {
		pts := 0
		for i := 0; i < n; i++ {
			pts += mem.Seg(i).Points
		}
		return pts
	}

	add(0, 5)
	mustMatchMem(t, st, mem)
	if err := st.Seal(points(5)); err != nil {
		t.Fatal(err)
	}
	mustMatchMem(t, st, mem)
	add(5, 4)
	mustMatchMem(t, st, mem)
	if err := st.Seal(points(9)); err != nil {
		t.Fatal(err)
	}
	add(9, 3)
	mustMatchMem(t, st, mem)

	// Reopen from disk: the sealed records come back, the unsealed tail
	// is the WAL's job (mirror by re-appending it).
	d.Close()
	d2 := openDir(t, root)
	st2 := d2.Store("parity", testEps, false).(*Store)
	if st2.Len() != 9 {
		t.Fatalf("reopened Len = %d, want 9 sealed", st2.Len())
	}
	for i := 9; i < 12; i++ {
		st2.Append(testSeg(i))
	}
	mustMatchMem(t, st2, mem)
	if st2.metaPoints != points(9) {
		t.Fatalf("reopened points = %d, want %d", st2.metaPoints, points(9))
	}
}

// TestDropHeadFencing drops across extent boundaries, checking the
// Connected flag on the surviving head, file deletion, and persistence
// of the fences across a reopen.
func TestDropHeadFencing(t *testing.T) {
	for _, drop := range []int{1, 3, 5, 7, 9, 11, 12} {
		t.Run(fmt.Sprintf("drop-%d", drop), func(t *testing.T) {
			root := t.TempDir()
			d := openDir(t, root)
			st := d.Store("s", testEps, false).(*Store)
			mem := tsdb.NewMemStore()
			pts := 0
			for i := 0; i < 12; i++ {
				st.Append(testSeg(i))
				mem.Append(testSeg(i))
				if i < 9 {
					pts += testSeg(i).Points
				}
				if i == 4 || i == 8 {
					if err := st.Seal(pts); err != nil {
						t.Fatal(err)
					}
				}
			}
			// 2 extents (5 + 4 records) + 3 tail segments.
			st.DropHead(drop)
			mem.DropHead(drop)
			mustMatchMem(t, st, mem)

			d.Close()
			d2 := openDir(t, root)
			st2 := d2.Store("s", testEps, false).(*Store)
			wantSealed := 9 - drop
			if wantSealed < 0 {
				wantSealed = 0
			}
			if st2.Len() != wantSealed {
				t.Fatalf("reopened Len = %d, want %d", st2.Len(), wantSealed)
			}
			for i := 0; i < st2.Len(); i++ {
				want := mem.Seg(i)
				if i >= wantSealed {
					break
				}
				if got := st2.Seg(i); !segsEqual(got, want) {
					t.Fatalf("after reopen Seg(%d) = %+v, want %+v", i, got, want)
				}
			}
		})
	}
}

// TestDropTailProvisional exercises the supersede path: provisional
// segments never seal and drop from the tail.
func TestDropTailProvisional(t *testing.T) {
	root := t.TempDir()
	d := openDir(t, root)
	st := d.Store("p", testEps, false).(*Store)
	for i := 0; i < 3; i++ {
		st.Append(testSeg(i))
	}
	if err := st.Seal(30); err != nil {
		t.Fatal(err)
	}
	prov := testSeg(3)
	prov.Provisional = true
	st.Append(prov)
	if err := st.Seal(30); err != nil {
		t.Fatal(err)
	}
	if got := st.sealedLen(); got != 3 {
		t.Fatalf("provisional segment sealed: sealedLen = %d, want 3", got)
	}
	st.DropTail(1)
	if st.Len() != 3 {
		t.Fatalf("Len after DropTail = %d, want 3", st.Len())
	}
	final := testSeg(3)
	st.Append(final)
	if got := st.Seg(3); !segsEqual(got, final) {
		t.Fatalf("Seg(3) = %+v, want %+v", got, final)
	}
}

// TestDropTailReachesSealed covers the interface-complete path where a
// tail drop reaches sealed records, including a later seal over the
// fence (which rewrites) and a reopen.
func TestDropTailReachesSealed(t *testing.T) {
	root := t.TempDir()
	d := openDir(t, root)
	st := d.Store("dt", testEps, false).(*Store)
	mem := tsdb.NewMemStore()
	for i := 0; i < 6; i++ {
		st.Append(testSeg(i))
		mem.Append(testSeg(i))
	}
	if err := st.Seal(100); err != nil {
		t.Fatal(err)
	}
	st.DropTail(2)
	mem.DropTail(2)
	mustMatchMem(t, st, mem)

	// Reopen: the fence must persist.
	d.Close()
	d2 := openDir(t, root)
	st2 := d2.Store("dt", testEps, false).(*Store)
	mustMatchMem(t, st2, mem)

	// Seal on top of the fenced extent: rewrite path.
	st2.Append(testSeg(6))
	mem.Append(testSeg(6))
	if err := st2.Seal(101); err != nil {
		t.Fatal(err)
	}
	mustMatchMem(t, st2, mem)
	d2.Close()
	d3 := openDir(t, root)
	mustMatchMem(t, d3.Store("dt", testEps, false), mem)
}

// TestTornExtentDiscarded truncates the newest extent (the crash-mid-
// seal shape) and expects the prefix to survive and the torn file to
// be discarded.
func TestTornExtentDiscarded(t *testing.T) {
	root := t.TempDir()
	d := openDir(t, root)
	st := d.Store("torn", testEps, false).(*Store)
	for i := 0; i < 4; i++ {
		st.Append(testSeg(i))
	}
	if err := st.Seal(40); err != nil {
		t.Fatal(err)
	}
	dir := st.dir
	d.Close()

	// A crash mid-seal leaves an extent the meta does not cover yet:
	// fake it by bumping a copied extent's name past the meta window and
	// truncating it.
	src := filepath.Join(dir, fmt.Sprintf(extPattern, 1))
	raw, err := os.ReadFile(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf(extPattern, 2)), raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}

	d2 := openDir(t, root)
	st2 := d2.Store("torn", testEps, false).(*Store)
	if st2.Len() != 4 {
		t.Fatalf("Len = %d, want the 4 covered records", st2.Len())
	}
	if _, err := os.Stat(filepath.Join(dir, fmt.Sprintf(extPattern, 2))); !os.IsNotExist(err) {
		t.Fatalf("torn out-of-window extent survived open: %v", err)
	}

	// A corrupted in-window extent keeps the consistent prefix (here:
	// nothing) rather than serving bad bytes.
	d2.Close()
	if err := os.WriteFile(src, raw[:len(raw)-7], 0o644); err != nil {
		t.Fatal(err)
	}
	d3 := openDir(t, root)
	st3 := d3.Store("torn", testEps, false).(*Store)
	if st3.Len() != 0 {
		t.Fatalf("Len = %d over a corrupt extent, want 0", st3.Len())
	}
}

// TestLoadIntoBothFactories loads a sealed directory into an archive
// backed by the Dir itself and into a plain in-memory archive (the
// migration path), expecting identical series.
func TestLoadIntoBothFactories(t *testing.T) {
	root := t.TempDir()
	d := openDir(t, root)
	st := d.Store("load", testEps, false).(*Store)
	pts := 0
	for i := 0; i < 6; i++ {
		st.Append(testSeg(i))
		pts += testSeg(i).Points
	}
	if err := st.Seal(pts); err != nil {
		t.Fatal(err)
	}
	// An empty-but-sealed series must survive too.
	empty := d.Store("empty", []float64{1}, true).(*Store)
	if err := empty.Seal(0); err != nil {
		t.Fatal(err)
	}
	d.Close()

	dm := openDir(t, root)
	dbm := tsdb.NewWithNamedStore(dm.Store)
	n, err := dm.LoadInto(dbm)
	if err != nil || n != 2 {
		t.Fatalf("LoadInto (mmap factory) = %d, %v; want 2 series", n, err)
	}
	dmem := openDir(t, root)
	dbmem := tsdb.New()
	if n, err := dmem.LoadInto(dbmem); err != nil || n != 2 {
		t.Fatalf("LoadInto (mem factory) = %d, %v; want 2 series", n, err)
	}

	for _, db := range []*tsdb.Archive{dbm, dbmem} {
		s, err := db.Get("load")
		if err != nil {
			t.Fatal(err)
		}
		if s.Points() != pts {
			t.Fatalf("points = %d, want %d", s.Points(), pts)
		}
		segs := s.Segments()
		if len(segs) != 6 {
			t.Fatalf("%d segments, want 6", len(segs))
		}
		for i := range segs {
			if !segsEqual(segs[i], testSeg(i)) {
				t.Fatalf("segment %d = %+v, want %+v", i, segs[i], testSeg(i))
			}
		}
		if es, err := db.Get("empty"); err != nil || es.Len() != 0 || !es.Constant() {
			t.Fatalf("empty series: %v (len %d)", err, es.Len())
		}
	}
}

// TestRemoveResets verifies Remove deletes all series state so a
// recreate starts empty.
func TestRemoveResets(t *testing.T) {
	root := t.TempDir()
	d := openDir(t, root)
	st := d.Store("rm", testEps, false).(*Store)
	st.Append(testSeg(0))
	if err := st.Seal(10); err != nil {
		t.Fatal(err)
	}
	if err := d.Remove("rm"); err != nil {
		t.Fatal(err)
	}
	st2 := d.Store("rm", testEps, false).(*Store)
	if st2.Len() != 0 {
		t.Fatalf("recreated store has %d segments", st2.Len())
	}
	if Exists(filepath.Join(root, seriesDirName("rm"))) {
		t.Fatal("series dir survived Remove")
	}
}

// TestCorruptMiddleExtentLossIsTerminal rots an extent in the middle of
// the chain: open must keep the consistent prefix, quarantine the bad
// file, and — crucially — persist the truncation, so segments sealed
// AFTER the recovery are not re-discarded by the same hole on the next
// boot (progressive loss). The loss is one-time and logged.
func TestCorruptMiddleExtentLossIsTerminal(t *testing.T) {
	root := t.TempDir()
	d := openDir(t, root)
	st := d.Store("rot", testEps, false).(*Store)
	pts := 0
	for gen := 0; gen < 3; gen++ {
		for i := gen * 3; i < gen*3+3; i++ {
			st.Append(testSeg(i))
			pts += testSeg(i).Points
		}
		if err := st.Seal(pts); err != nil {
			t.Fatal(err)
		}
	}
	dir := st.dir
	d.Close()

	// Rot the middle extent.
	mid := filepath.Join(dir, fmt.Sprintf(extPattern, 2))
	raw, err := os.ReadFile(mid)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x20
	if err := os.WriteFile(mid, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	d2 := openDir(t, root)
	st2 := d2.Store("rot", testEps, false).(*Store)
	if st2.Len() != 3 {
		t.Fatalf("kept %d records, want the 3 before the rotted extent", st2.Len())
	}
	if _, err := os.Stat(mid + ".corrupt"); err != nil {
		t.Fatalf("rotted extent not quarantined: %v", err)
	}
	// Seal fresh data on the truncated store…
	for i := 20; i < 23; i++ {
		st2.Append(testSeg(i))
	}
	if err := st2.Seal(st2.metaPoints + 63); err != nil {
		t.Fatal(err)
	}
	want := st2.Snapshot()
	d2.Close()

	// …and the next boot must serve exactly that: the hole never eats
	// the new seal.
	d3 := openDir(t, root)
	st3 := d3.Store("rot", testEps, false).(*Store)
	if st3.Len() != len(want) {
		t.Fatalf("after the second boot: %d records, want %d", st3.Len(), len(want))
	}
	for i, w := range want {
		if got := st3.Seg(i); !segsEqual(got, w) {
			t.Fatalf("record %d = %+v, want %+v", i, got, w)
		}
	}
}

// TestCorruptMetaFencesReset corrupts the meta's live-window fences
// (the meta has no checksum, so a bit-flip there must be caught by
// validation against the checksummed extents): the store must take the
// loud reset path, not index past the mapping.
func TestCorruptMetaFencesReset(t *testing.T) {
	build := func(t *testing.T) string {
		root := t.TempDir()
		d := openDir(t, root)
		st := d.Store("m", testEps, false).(*Store)
		for i := 0; i < 4; i++ {
			st.Append(testSeg(i))
		}
		if err := st.Seal(40); err != nil {
			t.Fatal(err)
		}
		d.Close()
		return root
	}
	corrupt := func(t *testing.T, root string, headLo, tailDrop int) {
		dir := filepath.Join(root, seriesDirName("m"))
		m, err := readMeta(filepath.Join(dir, metaName))
		if err != nil {
			t.Fatal(err)
		}
		m.headLo, m.tailDrop = headLo, tailDrop
		if err := writeMeta(dir, m, t.Logf); err != nil {
			t.Fatal(err)
		}
	}
	for _, tc := range []struct{ headLo, tailDrop int }{{99, 0}, {0, 99}, {3, 2}} {
		root := build(t)
		corrupt(t, root, tc.headLo, tc.tailDrop)
		d := openDir(t, root)
		st := d.Store("m", testEps, false).(*Store)
		// The reset path: no panic, and the store behaves as empty (the
		// WAL, when there is one, re-covers what matters).
		if st.Len() != 0 {
			t.Fatalf("fences %+v: store served %d segments through a corrupt meta", tc, st.Len())
		}
		st.Append(testSeg(0))
		if got := st.Seg(0); !segsEqual(got, testSeg(0)) {
			t.Fatalf("store unusable after meta reset: %+v", got)
		}
		d.Close()
	}
}

// TestContractMismatchResets gives a leftover directory a different
// contract; the factory must start the series fresh rather than serve
// segments under the wrong ε.
func TestContractMismatchResets(t *testing.T) {
	root := t.TempDir()
	d := openDir(t, root)
	st := d.Store("c", testEps, false).(*Store)
	st.Append(testSeg(0))
	if err := st.Seal(10); err != nil {
		t.Fatal(err)
	}
	d.Close()
	d2 := openDir(t, root)
	st2 := d2.Store("c", []float64{9, 9}, false).(*Store)
	if st2.Len() != 0 {
		t.Fatalf("contract-mismatched store served %d segments", st2.Len())
	}
}
