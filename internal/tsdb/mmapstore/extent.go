package mmapstore

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"strconv"
	"strings"

	"github.com/pla-go/pla/internal/core"
)

// Extent file layout (little endian). Records are fixed width and
// sorted by start time, so a mapped extent is directly binary-
// searchable; every multi-byte field sits at an 8-byte-aligned offset.
//
//	offset  0: magic "PLAE" (4)
//	        4: version (1)
//	        5: flags (1)        bit0 constant
//	        6: dim (uint16)
//	        8: count (uint32)   number of records
//	       12: crc32c (uint32)  over the record bytes
//	       16: ε (dim × float64)
//	records at 16+8·dim, each 24+16·dim bytes:
//	        0: t0 (float64)
//	        8: t1 (float64)
//	       16: points (uint32)
//	       20: flags (uint8)    bit0 connected
//	       21: 3 pad bytes
//	       24: x0 (dim × float64)
//	 24+8·dim: x1 (dim × float64)

const (
	extPattern = "ext-%08d.seg"
	extMagic   = "PLAE"
	extVersion = 1

	extFlagConstant  = 1 << 0
	recFlagConnected = 1 << 0

	// extMaxDim bounds the dimensionality an extent header may claim —
	// far above any real stream, low enough that a corrupt header
	// cannot make size arithmetic overflow.
	extMaxDim = 1 << 16
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

func extHeaderSize(dim int) int { return 16 + 8*dim }
func extRecordSize(dim int) int { return 24 + 16*dim }

// extent is one mapped sealed file plus its live-record window
// [lo, hi) — retention fences records out without rewriting the
// immutable bytes. v2 is nil for fixed-width v1 files and carries the
// block layout plus decode cache for column-block files (extentv2.go);
// every accessor dispatches on it, so the two formats coexist in one
// store forever.
type extent struct {
	seq    uint64
	path   string
	data   []byte // whole file, mapped (or read, on platforms without mmap)
	dim    int
	count  int
	lo, hi int
	v2     *extV2
}

func (e *extent) live() int { return e.hi - e.lo }

// close unmaps the extent.
func (e *extent) close() {
	if e.data != nil {
		unmapFile(e.data)
		e.data = nil
	}
}

// retire unmaps the extent and deletes its file (nothing in it is live
// any more).
func (e *extent) retire(logf func(string, ...any)) {
	e.close()
	if err := os.Remove(e.path); err != nil {
		logf("mstore: remove %s: %v", e.path, err)
	}
}

func (e *extent) recOff(i int) int { return extHeaderSize(e.dim) + i*extRecordSize(e.dim) }

func (e *extent) t0(i int) float64 {
	if e.v2 != nil {
		return e.v2T0(i)
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(e.data[e.recOff(i):]))
}

func (e *extent) points(i int) int {
	if e.v2 != nil {
		return e.v2Points(i)
	}
	return int(binary.LittleEndian.Uint32(e.data[e.recOff(i)+16:]))
}

// segment decodes record i into fresh slices, so the result outlives
// the mapping.
func (e *extent) segment(i int) core.Segment {
	if e.v2 != nil {
		return e.v2Segment(i)
	}
	p := e.data[e.recOff(i):]
	seg := core.Segment{
		T0:        math.Float64frombits(binary.LittleEndian.Uint64(p)),
		T1:        math.Float64frombits(binary.LittleEndian.Uint64(p[8:])),
		Points:    int(binary.LittleEndian.Uint32(p[16:])),
		Connected: p[20]&recFlagConnected != 0,
		X0:        make([]float64, e.dim),
		X1:        make([]float64, e.dim),
	}
	for d := 0; d < e.dim; d++ {
		seg.X0[d] = math.Float64frombits(binary.LittleEndian.Uint64(p[24+8*d:]))
		seg.X1[d] = math.Float64frombits(binary.LittleEndian.Uint64(p[24+8*e.dim+8*d:]))
	}
	return seg
}

// writeExtent seals segs as one extent file: written, flushed and
// fsynced before returning, so a caller updating its meta afterwards
// never points at bytes the disk does not hold.
func writeExtent(path string, eps []float64, constant bool, segs []core.Segment) error {
	dim := len(eps)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	bw := bufio.NewWriterSize(f, 1<<16)

	rec := make([]byte, extRecordSize(dim))
	crc := crc32.New(castagnoli)
	hdr := make([]byte, extHeaderSize(dim))
	copy(hdr, extMagic)
	hdr[4] = extVersion
	if constant {
		hdr[5] = extFlagConstant
	}
	binary.LittleEndian.PutUint16(hdr[6:], uint16(dim))
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(segs)))
	for d, e := range eps {
		binary.LittleEndian.PutUint64(hdr[16+8*d:], math.Float64bits(e))
	}
	// The crc slot is filled after the records are known; buffer the
	// records through the hash on the way out.
	encodeRec := func(seg core.Segment) []byte {
		binary.LittleEndian.PutUint64(rec, math.Float64bits(seg.T0))
		binary.LittleEndian.PutUint64(rec[8:], math.Float64bits(seg.T1))
		pts := seg.Points
		if pts < 0 {
			pts = 0
		}
		binary.LittleEndian.PutUint32(rec[16:], uint32(pts))
		var flags byte
		if seg.Connected {
			flags |= recFlagConnected
		}
		rec[20] = flags
		rec[21], rec[22], rec[23] = 0, 0, 0
		for d := 0; d < dim; d++ {
			binary.LittleEndian.PutUint64(rec[24+8*d:], math.Float64bits(seg.X0[d]))
			binary.LittleEndian.PutUint64(rec[24+8*dim+8*d:], math.Float64bits(seg.X1[d]))
		}
		return rec
	}
	for _, seg := range segs {
		crc.Write(encodeRec(seg))
	}
	binary.LittleEndian.PutUint32(hdr[12:], crc.Sum32())

	fail := func(err error) error {
		f.Close()
		os.Remove(path)
		return err
	}
	if _, err := bw.Write(hdr); err != nil {
		return fail(err)
	}
	for _, seg := range segs {
		if _, err := bw.Write(encodeRec(seg)); err != nil {
			return fail(err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	return f.Close()
}

// openExtent maps path and validates it completely: header fields, the
// exact file size the record count implies, and the record checksum.
// Validation reads the mapping once, sequentially — far cheaper than
// decoding segments onto the heap, and it is what catches a torn seal
// or bit rot before any query trusts the bytes.
func openExtent(path string, seq uint64, wantDim int) (*extent, error) {
	data, err := mapFile(path)
	if err != nil {
		return nil, err
	}
	e := &extent{seq: seq, path: path, data: data}
	if err := e.validate(wantDim); err != nil {
		e.close()
		return nil, err
	}
	return e, nil
}

// validate checks the mapped bytes against the format; wantDim < 0
// accepts any dimensionality (the fuzz target's mode).
func (e *extent) validate(wantDim int) error {
	if len(e.data) < extHeaderSize(0) {
		return fmt.Errorf("mstore: extent shorter than its header")
	}
	if string(e.data[:4]) != extMagic {
		return fmt.Errorf("mstore: bad extent magic %q", e.data[:4])
	}
	version := e.data[4]
	if version != extVersion && version != extVersion2 {
		return fmt.Errorf("mstore: unknown extent version %d", version)
	}
	dim := int(binary.LittleEndian.Uint16(e.data[6:]))
	if dim == 0 || dim > extMaxDim {
		return fmt.Errorf("mstore: bad extent dimensionality %d", dim)
	}
	if wantDim >= 0 && dim != wantDim {
		return fmt.Errorf("mstore: extent dim %d, series dim %d", dim, wantDim)
	}
	if len(e.data) < extHeaderSize(dim) {
		return fmt.Errorf("mstore: extent shorter than its header")
	}
	count := int(binary.LittleEndian.Uint32(e.data[8:]))
	if version == extVersion {
		want := extHeaderSize(dim) + count*extRecordSize(dim)
		if len(e.data) != want {
			return fmt.Errorf("mstore: extent is %d bytes, %d records imply %d", len(e.data), count, want)
		}
	}
	// Both versions checksum everything after the ε block: the v1
	// records, or the v2 layout words, directory and block payloads.
	recs := e.data[extHeaderSize(dim):]
	if got, hdr := crc32.Checksum(recs, castagnoli), binary.LittleEndian.Uint32(e.data[12:]); got != hdr {
		return fmt.Errorf("mstore: extent checksum %#x, header says %#x", got, hdr)
	}
	if version == extVersion2 {
		return e.validateV2(dim, count)
	}
	e.dim, e.count, e.lo, e.hi = dim, count, 0, count
	return nil
}

// matchExtName parses an extent file name. The digits are parsed
// directly (Sscanf's %08d would stop at eight digits and reject
// sequences that outgrew the zero padding).
func matchExtName(name string, seq *uint64) bool {
	const prefix, suffix = "ext-", ".seg"
	digits, ok := strings.CutPrefix(name, prefix)
	if !ok {
		return false
	}
	digits, ok = strings.CutSuffix(digits, suffix)
	if !ok || len(digits) < 8 {
		return false
	}
	v, err := strconv.ParseUint(digits, 10, 64)
	if err != nil {
		return false
	}
	*seq = v
	return true
}
