package tsdb

import (
	"errors"
	"math"
	"math/rand"
	"strconv"
	"testing"

	"github.com/pla-go/pla/internal/core"
	"github.com/pla-go/pla/internal/sketch"
)

// buildSeries appends n synthetic time-ordered segments.
func buildSeries(t *testing.T, a *Archive, name string, n int, seed int64) *Series {
	t.Helper()
	s, err := a.Create(name, []float64{0.5}, false)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	tcur, v := 0.0, 0.0
	for i := 0; i < n; i++ {
		dt := 1 + rng.Float64()*4
		v2 := v + rng.NormFloat64()*3
		seg := core.Segment{T0: tcur, T1: tcur + dt,
			X0: []float64{v}, X1: []float64{v2}, Points: 2 + rng.Intn(40)}
		if err := s.Append(seg); err != nil {
			t.Fatal(err)
		}
		tcur += dt + rng.Float64()*0.5 // occasional gaps
		v = v2
	}
	return s
}

// foldReference folds every stored segment's canonical samples — the
// SCAN-and-fold shape pushdown must agree with.
func foldReference(s *Series, dim int, t0, t1 float64) (agg sketch.Agg, vals []float64) {
	for _, seg := range s.Segments() {
		lo, hi, _, _, ok := sketch.SegRange(seg, dim, t0, t1)
		if !ok {
			continue
		}
		a := sketch.Agg{Min: math.Inf(1), Max: math.Inf(-1), Segments: 1,
			Covered: math.Min(seg.T1, t1) - math.Max(seg.T0, t0)}
		for i := lo; i <= hi; i++ {
			var f float64
			if seg.Points > 1 {
				f = float64(i) / float64(seg.Points-1)
			}
			v := seg.X0[dim] + f*(seg.X1[dim]-seg.X0[dim])
			a.Min = math.Min(a.Min, v)
			a.Max = math.Max(a.Max, v)
			a.Sum += v
			a.Count++
			vals = append(vals, v)
		}
		agg.Join(a)
	}
	return agg, vals
}

func TestRangeAggMatchesFold(t *testing.T) {
	a := New()
	s := buildSeries(t, a, "walk", 3*sketch.WindowSize+37, 1)
	end, _, _ := func() (float64, float64, bool) { t0, t1, ok := s.Span(); return t1, t0, ok }()
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 60; trial++ {
		t0 := rng.Float64() * end
		t1 := t0 + rng.Float64()*(end-t0)
		got, err := s.RangeAgg(0, t0, t1)
		want, _ := foldReference(s, 0, t0, t1)
		if want.Segments == 0 {
			if !errors.Is(err, ErrNoData) {
				t.Fatalf("trial %d: expected ErrNoData, got %v (%+v)", trial, err, got.Agg)
			}
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		g := got.Agg
		if g.Min != want.Min || g.Max != want.Max || g.Count != want.Count || g.Segments != want.Segments {
			t.Fatalf("trial %d [%v,%v]: got %+v want %+v", trial, t0, t1, g, want)
		}
		if math.Abs(g.Sum-want.Sum) > 1e-6*math.Max(1, math.Abs(want.Sum)) {
			t.Fatalf("trial %d: sum %v vs %v", trial, g.Sum, want.Sum)
		}
	}
	// A full-range query must use the window path.
	full, err := s.RangeAgg(0, math.Inf(-1), math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if full.Stats.CachedWindows+full.Stats.BuiltWindows < 3 {
		t.Fatalf("full-range query did not use windows: %+v", full.Stats)
	}
	// Second run hits the memo.
	again, _ := s.RangeAgg(0, math.Inf(-1), math.Inf(1))
	if again.Stats.BuiltWindows != 0 || again.Stats.CachedWindows < 3 {
		t.Fatalf("memo not used: %+v", again.Stats)
	}
	if again.Agg != full.Agg {
		t.Fatalf("memoized answer differs: %+v vs %+v", again.Agg, full.Agg)
	}
}

func TestRangeQuantilesBandContainsTruth(t *testing.T) {
	a := New()
	s := buildSeries(t, a, "walk", 2*sketch.WindowSize+51, 2)
	_, end, _ := s.Span()
	rng := rand.New(rand.NewSource(17))
	qs := []float64{0, 0.1, 0.5, 0.9, 0.99, 1}
	for trial := 0; trial < 30; trial++ {
		t0 := rng.Float64() * end / 2
		t1 := t0 + rng.Float64()*(end-t0)
		ans, _, err := s.RangeQuantiles(0, t0, t1, qs)
		_, vals := foldReference(s, 0, t0, t1)
		if len(vals) == 0 {
			if !errors.Is(err, ErrNoData) {
				t.Fatalf("trial %d: expected ErrNoData, got %v", trial, err)
			}
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		sorted := append([]float64(nil), vals...)
		for i := range sorted {
			for j := i + 1; j < len(sorted); j++ {
				if sorted[j] < sorted[i] {
					sorted[i], sorted[j] = sorted[j], sorted[i]
				}
			}
		}
		for i, q := range qs {
			idx := int(q*float64(len(sorted))) - 1
			if idx < 0 {
				idx = 0
			}
			truth := sorted[idx]
			if !(ans[i].Lo <= truth && truth <= ans[i].Hi) {
				t.Fatalf("trial %d q=%v: truth %v outside [%v, %v]",
					trial, q, truth, ans[i].Lo, ans[i].Hi)
			}
		}
	}
}

// TestPushdownIgnoresCacheState proves the central determinism claim:
// answers are identical whether windows come from the memo, from a
// store Summarizer, or are rebuilt — here by comparing a cold series
// against a warmed one, and against a store that serves sidecar-style
// blocks.
func TestPushdownIgnoresCacheState(t *testing.T) {
	build := func() *Series {
		a := New()
		return buildSeries(t, a, "s", 2*sketch.WindowSize+13, 3)
	}
	cold := build()
	warm := build()
	if _, err := warm.RangeAgg(0, math.Inf(-1), math.Inf(1)); err != nil {
		t.Fatal(err)
	}
	_, end, _ := cold.Span()
	for trial := 0; trial < 10; trial++ {
		t0, t1 := float64(trial)*end/10, end
		ga, ea := cold.RangeAgg(0, t0, t1)
		gb, eb := warm.RangeAgg(0, t0, t1)
		if (ea == nil) != (eb == nil) || (ea == nil && ga.Agg != gb.Agg) {
			t.Fatalf("trial %d: cold %+v (%v) vs warm %+v (%v)", trial, ga.Agg, ea, gb.Agg, eb)
		}
		qa, _, ea := cold.RangeQuantiles(0, t0, t1, []float64{0.5, 0.95})
		qb, _, eb := warm.RangeQuantiles(0, t0, t1, []float64{0.5, 0.95})
		if (ea == nil) != (eb == nil) {
			t.Fatalf("trial %d: quantile err mismatch %v vs %v", trial, ea, eb)
		}
		for i := range qa {
			if qa[i] != qb[i] {
				t.Fatalf("trial %d: quantile %d differs: %+v vs %+v", trial, i, qa[i], qb[i])
			}
		}
	}
}

// summarizedStore wraps MemStore with a Summarizer serving the
// canonical blocks — the mmap sidecar shape, minus the disk.
type summarizedStore struct {
	*MemStore
	dim int
}

func (ss *summarizedStore) SummaryBlocks() []sketch.Block {
	var out []sketch.Block
	for lo := 0; lo+sketch.WindowSize <= ss.Len(); lo += sketch.WindowSize {
		out = append(out, sketch.BuildBlock(lo, ss.dim, ss.Seg))
	}
	return out
}

func TestPushdownUsesStoreSummarizer(t *testing.T) {
	a := NewWithStore(func() SegmentStore { return &summarizedStore{MemStore: &MemStore{}, dim: 1} })
	s := buildSeries(t, a, "s", 2*sketch.WindowSize, 4)
	plain := New()
	ref := buildSeries(t, plain, "s", 2*sketch.WindowSize, 4)
	got, err := s.RangeAgg(0, math.Inf(-1), math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if got.Stats.CachedWindows != 2 || got.Stats.BuiltWindows != 0 {
		t.Fatalf("store blocks not used: %+v", got.Stats)
	}
	want, err := ref.RangeAgg(0, math.Inf(-1), math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	if got.Agg != want.Agg {
		t.Fatalf("summarizer answer differs from rebuilt: %+v vs %+v", got.Agg, want.Agg)
	}
	gq, _, _ := s.RangeQuantiles(0, math.Inf(-1), math.Inf(1), []float64{0.5})
	wq, _, _ := ref.RangeQuantiles(0, math.Inf(-1), math.Inf(1), []float64{0.5})
	if gq[0] != wq[0] {
		t.Fatalf("summarizer quantile differs: %+v vs %+v", gq[0], wq[0])
	}
}

func TestPushdownAfterHeadDrop(t *testing.T) {
	a := New()
	s := buildSeries(t, a, "s", 2*sketch.WindowSize, 5)
	if _, err := s.RangeAgg(0, math.Inf(-1), math.Inf(1)); err != nil {
		t.Fatal(err) // warm the memo
	}
	segs := s.Segments()
	cut := segs[100].T1 + 0.01
	if n := s.DropBefore(cut); n == 0 {
		t.Fatal("expected drops")
	}
	got, err := s.RangeAgg(0, math.Inf(-1), math.Inf(1))
	if err != nil {
		t.Fatal(err)
	}
	want, _ := foldReference(s, 0, math.Inf(-1), math.Inf(1))
	if got.Agg.Count != want.Count || got.Agg.Min != want.Min || got.Agg.Max != want.Max {
		t.Fatalf("post-drop pushdown %+v vs fold %+v", got.Agg, want)
	}
}

func TestPushdownIncludesProvisionalTail(t *testing.T) {
	a := New()
	s, err := a.Create("s", []float64{0.5}, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(core.Segment{T0: 0, T1: 10, X0: []float64{1}, X1: []float64{2}, Points: 11}); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendProvisional(core.Segment{T0: 10.5, T1: 20, X0: []float64{50}, X1: []float64{50}, Points: 10}); err != nil {
		t.Fatal(err)
	}
	got, err := s.RangeAgg(0, 0, 20)
	if err != nil {
		t.Fatal(err)
	}
	if got.Agg.Max != 50 || got.Agg.Count != 21 {
		t.Fatalf("provisional tail missing from pushdown: %+v", got.Agg)
	}
}

func TestRangeAggErrors(t *testing.T) {
	a := New()
	s := buildSeries(t, a, "s", 4, 6)
	if _, err := s.RangeAgg(1, 0, 1); !errors.Is(err, ErrDim) {
		t.Fatalf("bad dim: %v", err)
	}
	if _, err := s.RangeAgg(0, 5, 1); !errors.Is(err, ErrRange) {
		t.Fatalf("inverted range: %v", err)
	}
	if _, err := s.RangeAgg(0, 1e9, 2e9); !errors.Is(err, ErrNoData) {
		t.Fatalf("empty coverage: %v", err)
	}
	if _, _, err := s.RangeQuantiles(0, 1e9, 2e9, []float64{0.5}); !errors.Is(err, ErrNoData) {
		t.Fatalf("quantile empty coverage: %v", err)
	}
}

func BenchmarkRangeAggPushdown(b *testing.B) {
	a := New()
	s := mustBuildBench(b, a, 20*sketch.WindowSize)
	_, end, _ := s.Span()
	if _, err := s.RangeAgg(0, 0, end); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.RangeAgg(0, 0, end); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRangeAggFold(b *testing.B) {
	a := New()
	s := mustBuildBench(b, a, 20*sketch.WindowSize)
	_, end, _ := s.Span()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg, _ := foldReference(s, 0, 0, end)
		if agg.Segments == 0 {
			b.Fatal("no data")
		}
	}
}

func mustBuildBench(b *testing.B, a *Archive, n int) *Series {
	b.Helper()
	s, err := a.Create("bench"+strconv.Itoa(n), []float64{0.5}, false)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(8))
	tcur, v := 0.0, 0.0
	for i := 0; i < n; i++ {
		v2 := v + rng.NormFloat64()
		if err := s.Append(core.Segment{T0: tcur, T1: tcur + 2,
			X0: []float64{v}, X1: []float64{v2}, Points: 30}); err != nil {
			b.Fatal(err)
		}
		tcur += 2
		v = v2
	}
	return s
}
