package tsdb

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"testing"

	"github.com/pla-go/pla/internal/core"
	"github.com/pla-go/pla/internal/gen"
)

func ingestSST(t *testing.T, a *Archive, name string, eps float64) (*Series, []core.Point) {
	t.Helper()
	signal := gen.SeaSurfaceTemperature()
	f, err := core.NewSlide([]float64{eps})
	if err != nil {
		t.Fatal(err)
	}
	s, err := a.Ingest(name, f, signal)
	if err != nil {
		t.Fatal(err)
	}
	return s, signal
}

func TestCreateGetDrop(t *testing.T) {
	a := New()
	if _, err := a.Create("x", nil, false); !errors.Is(err, ErrDim) {
		t.Fatalf("empty eps: %v", err)
	}
	if _, err := a.Create("x", []float64{1}, false); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Create("x", []float64{1}, false); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate: %v", err)
	}
	if _, err := a.Get("y"); !errors.Is(err, ErrUnknown) {
		t.Fatalf("missing get: %v", err)
	}
	if err := a.Drop("y"); !errors.Is(err, ErrUnknown) {
		t.Fatalf("missing drop: %v", err)
	}
	if err := a.Drop("x"); err != nil {
		t.Fatal(err)
	}
	if len(a.Names()) != 0 {
		t.Fatal("drop did not remove")
	}
}

func TestAppendValidation(t *testing.T) {
	a := New()
	s, _ := a.Create("s", []float64{1}, false)
	x := []float64{0}
	if err := s.Append(core.Segment{T0: 0, T1: 1, X0: []float64{0, 0}, X1: []float64{0, 0}}); !errors.Is(err, ErrDim) {
		t.Fatalf("dim: %v", err)
	}
	if err := s.Append(core.Segment{T0: 2, T1: 1, X0: x, X1: x}); !errors.Is(err, ErrOrder) {
		t.Fatalf("backwards: %v", err)
	}
	if err := s.Append(
		core.Segment{T0: 0, T1: 1, X0: x, X1: x},
		core.Segment{T0: 2, T1: 3, X0: x, X1: x},
	); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(core.Segment{T0: 1, T1: 5, X0: x, X1: x}); !errors.Is(err, ErrOrder) {
		t.Fatalf("out of order: %v", err)
	}
	if s.Len() != 2 {
		t.Fatalf("len = %d", s.Len())
	}
}

func TestIngestAndAt(t *testing.T) {
	a := New()
	s, signal := ingestSST(t, a, "sst", 0.05)
	if s.Dim() != 1 || s.Constant() {
		t.Fatalf("series meta wrong: dim=%d constant=%v", s.Dim(), s.Constant())
	}
	// Every original sample is within ε of the archived reconstruction.
	for _, p := range signal {
		x, ok := s.At(p.T)
		if !ok {
			t.Fatalf("t=%v uncovered", p.T)
		}
		if math.Abs(x[0]-p.X[0]) > 0.05+1e-9 {
			t.Fatalf("archive strayed at t=%v: %v vs %v", p.T, x[0], p.X[0])
		}
	}
	if _, ok := s.At(-5); ok {
		t.Fatal("covered before start?")
	}
	st := s.Stats()
	if st.Points != len(signal) || st.Ratio <= 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestScan(t *testing.T) {
	a := New()
	s, _ := ingestSST(t, a, "sst", 0.05)
	t0, t1, ok := s.Span()
	if !ok || t1 <= t0 {
		t.Fatalf("span = %v %v %v", t0, t1, ok)
	}
	mid0, mid1 := t0+(t1-t0)/4, t0+(t1-t0)/2
	segs, err := s.Scan(mid0, mid1)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) == 0 {
		t.Fatal("empty scan of a covered range")
	}
	for _, seg := range segs {
		if seg.T1 < mid0 || seg.T0 > mid1 {
			t.Fatalf("scan returned non-overlapping segment %+v", seg)
		}
	}
	all, err := s.Scan(t0, t1)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != s.Len() {
		t.Fatalf("full scan returned %d of %d", len(all), s.Len())
	}
	if _, err := s.Scan(5, 1); !errors.Is(err, ErrRange) {
		t.Fatalf("bad range: %v", err)
	}
}

func TestSample(t *testing.T) {
	a := New()
	s, _ := a.Create("lin", []float64{1}, false)
	if err := s.Append(core.Segment{T0: 0, T1: 10, X0: []float64{0}, X1: []float64{10}}); err != nil {
		t.Fatal(err)
	}
	pts, err := s.Sample(0, 10, 2.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 || pts[2].X[0] != 5 {
		t.Fatalf("sample = %+v", pts)
	}
	if _, err := s.Sample(0, 10, 0); !errors.Is(err, ErrRange) {
		t.Fatalf("zero dt: %v", err)
	}
}

func TestAggregatesAgainstOriginalSamples(t *testing.T) {
	a := New()
	s, signal := ingestSST(t, a, "sst", 0.05)
	t0, t1, _ := s.Span()

	mn, err := s.Min(0, t0, t1)
	if err != nil {
		t.Fatal(err)
	}
	mx, err := s.Max(0, t0, t1)
	if err != nil {
		t.Fatal(err)
	}
	mean, err := s.Mean(0, t0, t1)
	if err != nil {
		t.Fatal(err)
	}

	// Ground truth from the original samples.
	trueMin, trueMax, sum := math.Inf(1), math.Inf(-1), 0.0
	for _, p := range signal {
		trueMin = math.Min(trueMin, p.X[0])
		trueMax = math.Max(trueMax, p.X[0])
		sum += p.X[0]
	}
	trueMean := sum / float64(len(signal))

	if trueMin < mn.Value-mn.Epsilon-1e-9 {
		t.Fatalf("min bound broken: true %v < %v − %v", trueMin, mn.Value, mn.Epsilon)
	}
	if trueMax > mx.Value+mx.Epsilon+1e-9 {
		t.Fatalf("max bound broken: true %v > %v + %v", trueMax, mx.Value, mx.Epsilon)
	}
	// The time-weighted mean of the reconstruction tracks the sample mean
	// within ε plus discretisation slack on this uniformly sampled signal.
	if math.Abs(mean.Value-trueMean) > mean.Epsilon+0.02 {
		t.Fatalf("mean off: %v vs true %v (ε=%v)", mean.Value, trueMean, mean.Epsilon)
	}
	if mean.Covered <= 0 || mean.Segments != s.Len() {
		t.Fatalf("mean meta: %+v (segments %d)", mean, s.Len())
	}
}

func TestAggregateSubrangeAndErrors(t *testing.T) {
	a := New()
	s, _ := a.Create("v", []float64{0.5}, false)
	if err := s.Append(
		core.Segment{T0: 0, T1: 10, X0: []float64{0}, X1: []float64{10}},
		core.Segment{T0: 20, T1: 30, X0: []float64{10}, X1: []float64{0}},
	); err != nil {
		t.Fatal(err)
	}
	mx, err := s.Max(0, 0, 30)
	if err != nil || mx.Value != 10 {
		t.Fatalf("max = %+v, %v", mx, err)
	}
	if mx.Covered != 20 {
		t.Fatalf("covered = %v, want 20 (the gap is excluded)", mx.Covered)
	}
	mean, err := s.Mean(0, 0, 30)
	if err != nil || mean.Value != 5 {
		t.Fatalf("mean = %+v, %v", mean, err)
	}
	sub, err := s.Min(0, 5, 8)
	if err != nil || sub.Value != 5 {
		t.Fatalf("sub min = %+v, %v", sub, err)
	}
	if _, err := s.Min(2, 0, 1); !errors.Is(err, ErrDim) {
		t.Fatalf("bad dim: %v", err)
	}
	// A range touching only a degenerate (instant) segment averages the
	// instants instead of fabricating zero.
	inst, err := New().Create("inst", []float64{0.25}, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := inst.Append(core.Segment{T0: 5, T1: 5, X0: []float64{42}, X1: []float64{42}, Points: 1}); err != nil {
		t.Fatal(err)
	}
	res, err := inst.Mean(0, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != 42 || res.Covered != 0 || res.Segments != 1 {
		t.Errorf("instant-only Mean = %+v, want Value 42, Covered 0, 1 segment", res)
	}

	if _, err := s.Mean(0, 5, 1); !errors.Is(err, ErrRange) {
		t.Fatalf("bad range: %v", err)
	}
	if _, err := s.Max(0, 12, 18); !errors.Is(err, ErrRange) {
		t.Fatalf("gap-only query: %v", err)
	}
}

func TestPersistRoundTrip(t *testing.T) {
	a := New()
	_, signal := ingestSST(t, a, "sst", 0.05)
	walk := gen.RandomWalk(gen.WalkConfig{N: 500, P: 0.5, MaxDelta: 2, Seed: 4})
	cf, _ := core.NewCache([]float64{1})
	if _, err := a.Ingest("walk-cache", cf, walk); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	n, err := a.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo returned %d, wrote %d", n, buf.Len())
	}

	back, err := ReadArchive(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := back.Names(); len(got) != 2 || got[0] != "sst" || got[1] != "walk-cache" {
		t.Fatalf("names = %v", got)
	}
	s2, err := back.Get("sst")
	if err != nil {
		t.Fatal(err)
	}
	orig, _ := a.Get("sst")
	if s2.Len() != orig.Len() || s2.Stats().Points != len(signal) {
		t.Fatalf("series meta lost: %+v vs %+v", s2.Stats(), orig.Stats())
	}
	for _, p := range signal {
		x, ok := s2.At(p.T)
		if !ok || math.Abs(x[0]-p.X[0]) > 0.05+1e-9 {
			t.Fatalf("reloaded archive strayed at t=%v", p.T)
		}
	}
	wc, err := back.Get("walk-cache")
	if err != nil {
		t.Fatal(err)
	}
	if !wc.Constant() {
		t.Fatal("constant flag lost through persistence")
	}
}

func TestPersistFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "arch.plaa")
	a := New()
	ingestSST(t, a, "sst", 0.1)
	if err := a.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if info.Size() == 0 {
		t.Fatal("empty archive file")
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Names()) != 1 {
		t.Fatalf("names = %v", back.Names())
	}
	if _, err := LoadFile(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestReadArchiveRejectsGarbage(t *testing.T) {
	if _, err := ReadArchive(bytes.NewReader([]byte("XXXX"))); !errors.Is(err, ErrFormat) {
		t.Fatalf("bad magic: %v", err)
	}
	if _, err := ReadArchive(bytes.NewReader(nil)); !errors.Is(err, ErrFormat) {
		t.Fatalf("empty: %v", err)
	}
	// Systematic truncation: no offset may panic, every one must error.
	a := New()
	ingestSST(t, a, "sst", 0.2)
	var buf bytes.Buffer
	if _, err := a.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for cut := 0; cut < len(raw)-1; cut += 7 {
		if _, err := ReadArchive(bytes.NewReader(raw[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestSpanEmpty(t *testing.T) {
	a := New()
	s, _ := a.Create("e", []float64{1}, false)
	if _, _, ok := s.Span(); ok {
		t.Fatal("empty series has a span")
	}
	if _, err := s.Min(0, 0, 1); err == nil {
		t.Fatal("aggregate over empty series succeeded")
	}
}
