package tsdb

import "github.com/pla-go/pla/internal/core"

// SegmentStore is the container a Series keeps its ordered segments in.
// Pulling it out as an interface separates the archive's query semantics
// (time-order validation, locate, aggregate bands) from the physical
// layout of the segments, so alternative layouts — a memory-mapped
// region, a succinct packed encoding, a tiered hot/cold split — can slot
// in without touching the query layer.
//
// Implementations need not be safe for concurrent use: Series serialises
// every access under its own lock. Append is only called with segments
// the Series has already validated (dimensionality and time order), in
// non-decreasing T0 order.
type SegmentStore interface {
	// Append adds one validated segment after all existing ones.
	Append(seg core.Segment)
	// Len returns the number of stored segments.
	Len() int
	// Seg returns the i-th segment, 0 ≤ i < Len().
	Seg(i int) core.Segment
	// Snapshot returns a copy of all segments in order.
	Snapshot() []core.Segment
	// DropHead removes the n oldest segments (retention), n ≤ Len().
	// Implementations must clear the Connected flag on the surviving
	// head: its predecessor is gone, and the wire format refuses a
	// connected segment with nothing to chain to.
	DropHead(n int)
	// DropTail removes the n newest segments, n ≤ Len() — the
	// supersede primitive behind provisional (max-lag) tails, which are
	// replaced wholesale when the finalized segments arrive.
	DropTail(n int)
}

// MemStore is the default SegmentStore: a plain in-memory slice.
type MemStore struct {
	segs []core.Segment
}

// NewMemStore returns an empty in-memory segment store.
func NewMemStore() SegmentStore { return &MemStore{} }

// Append implements SegmentStore.
func (m *MemStore) Append(seg core.Segment) { m.segs = append(m.segs, seg) }

// Len implements SegmentStore.
func (m *MemStore) Len() int { return len(m.segs) }

// Seg implements SegmentStore.
func (m *MemStore) Seg(i int) core.Segment { return m.segs[i] }

// Snapshot implements SegmentStore.
func (m *MemStore) Snapshot() []core.Segment {
	return append([]core.Segment(nil), m.segs...)
}

// DropHead implements SegmentStore. The survivors are copied down so the
// dropped segments do not pin the backing array.
func (m *MemStore) DropHead(n int) {
	if n <= 0 {
		return
	}
	if n >= len(m.segs) {
		m.segs = m.segs[:0]
		return
	}
	m.segs = append(m.segs[:0], m.segs[n:]...)
	m.segs[0].Connected = false
}

// DropTail implements SegmentStore.
func (m *MemStore) DropTail(n int) {
	if n <= 0 {
		return
	}
	if n >= len(m.segs) {
		m.segs = m.segs[:0]
		return
	}
	m.segs = m.segs[:len(m.segs)-n]
}
