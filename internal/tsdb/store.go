package tsdb

import (
	"sort"

	"github.com/pla-go/pla/internal/core"
)

// SegmentStore is the container a Series keeps its ordered segments in.
// Pulling it out as an interface separates the archive's query semantics
// (time-order validation, locate, aggregate bands) from the physical
// layout of the segments, so alternative layouts — a memory-mapped
// region, a succinct packed encoding, a tiered hot/cold split — can slot
// in without touching the query layer.
//
// Implementations need not be safe for concurrent use: Series serialises
// every access under its own lock. Append is only called with segments
// the Series has already validated (dimensionality and time order), in
// non-decreasing T0 order.
type SegmentStore interface {
	// Append adds one validated segment after all existing ones.
	Append(seg core.Segment)
	// Len returns the number of stored segments.
	Len() int
	// Seg returns the i-th segment, 0 ≤ i < Len().
	Seg(i int) core.Segment
	// Snapshot returns a copy of all segments in order.
	Snapshot() []core.Segment
	// DropHead removes the n oldest segments (retention), n ≤ Len().
	// Implementations must clear the Connected flag on the surviving
	// head: its predecessor is gone, and the wire format refuses a
	// connected segment with nothing to chain to.
	DropHead(n int)
	// DropTail removes the n newest segments, n ≤ Len() — the
	// supersede primitive behind provisional (max-lag) tails, which are
	// replaced wholesale when the finalized segments arrive.
	DropTail(n int)
}

// TimeIndex is implemented by stores that can answer start-time
// location queries without materializing segments — the binary-search
// fast path over a memory-mapped layout, where building a Segment per
// probe would cost two allocations each. Series.locate uses it when
// available.
type TimeIndex interface {
	// SearchT0 returns the least index i with Seg(i).T0 > t (sort.Search
	// semantics over the store's Len).
	SearchT0(t float64) int
}

// Sealer is implemented by stores that keep a write-optimized append
// tail which can be folded into a read-optimized sealed form (mmap
// extents). Compaction calls it through Series.Seal; points is the
// series' finalized sample count, persisted alongside the sealed
// segments so recovery can restore it without replaying anything.
//
// Sealing is two-phase so the expensive part runs without the series
// lock: PrepareSeal (called under the lock) captures the sealable
// state, the returned PreparedSeal's Write (called with no lock held)
// writes and fsyncs the new extent while queries keep flowing, and
// Commit (under the lock again) installs it — or refuses, if the store
// mutated underneath, in which case the next compaction simply retries.
type Sealer interface {
	PrepareSeal(points int) (PreparedSeal, bool)
}

// Compactor is implemented by stores whose sealed form fragments over
// time (one extent per seal) and can be merged back into larger units.
// It reuses the two-phase seal choreography: PrepareCompact (under the
// series lock) captures one merge unit, the PreparedSeal writes it
// unlocked, Commit splices it in or refuses if the store moved.
// Returning false means nothing currently warrants a merge; callers
// loop until then.
type Compactor interface {
	PrepareCompact() (PreparedSeal, bool)
}

// PreparedSeal is one in-flight seal. Exactly one of Write/Commit's
// failure paths may leave a discarded temporary extent file behind;
// never both phases' effects.
type PreparedSeal interface {
	// Write persists the captured tail as a new extent (fsynced). No
	// lock is held; the store must not be read through this object.
	Write() error
	// Commit installs the written extent and retires the sealed tail
	// prefix; called under the series lock. It reports false (cleaning
	// up the written file) when the store changed since PrepareSeal.
	Commit() bool
}

// MemStore is the default SegmentStore: a plain in-memory slice.
type MemStore struct {
	segs []core.Segment
}

// NewMemStore returns an empty in-memory segment store.
func NewMemStore() SegmentStore { return &MemStore{} }

// Append implements SegmentStore.
func (m *MemStore) Append(seg core.Segment) { m.segs = append(m.segs, seg) }

// Len implements SegmentStore.
func (m *MemStore) Len() int { return len(m.segs) }

// Seg implements SegmentStore.
func (m *MemStore) Seg(i int) core.Segment { return m.segs[i] }

// Snapshot implements SegmentStore.
func (m *MemStore) Snapshot() []core.Segment {
	return append([]core.Segment(nil), m.segs...)
}

// DropHead implements SegmentStore. The survivors are copied down so the
// dropped segments do not pin the backing array.
func (m *MemStore) DropHead(n int) {
	if n <= 0 {
		return
	}
	if n >= len(m.segs) {
		m.segs = m.segs[:0]
		return
	}
	m.segs = append(m.segs[:0], m.segs[n:]...)
	m.segs[0].Connected = false
}

// SearchT0 implements TimeIndex.
func (m *MemStore) SearchT0(t float64) int {
	return sort.Search(len(m.segs), func(j int) bool { return m.segs[j].T0 > t })
}

// DropTail implements SegmentStore.
func (m *MemStore) DropTail(n int) {
	if n <= 0 {
		return
	}
	if n >= len(m.segs) {
		m.segs = m.segs[:0]
		return
	}
	m.segs = m.segs[:len(m.segs)-n]
}
