package tsdb

import (
	"testing"

	"github.com/pla-go/pla/internal/core"
)

func shedSeries(t *testing.T) (*Archive, *Series) {
	t.Helper()
	a := New()
	s, _, err := a.GetOrCreate("s", []float64{0.5}, false)
	if err != nil {
		t.Fatal(err)
	}
	return a, s
}

// shedSeg builds a finalized one-dim segment for the shed tests; the
// shared seg helper in provisional_test.go also carries the endpoints.
func shedSeg(t0, t1 float64, pts int) core.Segment {
	return seg(t0, t1, 0, 1, pts)
}

// TestNoteShedFinalGrowsStaleness is the drop-bookkeeping regression: a
// finalized segment shed by an overload policy advances the consumed
// high-water permanently — later appends never make the series claim it
// is fresher than the dropped data allows.
func TestNoteShedFinalGrowsStaleness(t *testing.T) {
	_, s := shedSeries(t)
	if err := s.Append(shedSeg(0, 1, 10)); err != nil {
		t.Fatal(err)
	}
	if got := s.Staleness(); got != 0 {
		t.Fatalf("staleness %d before any shed", got)
	}
	s.NoteShed(5, false)
	if got := s.Staleness(); got != 5 {
		t.Fatalf("staleness %d after shedding 5 finalized points, want 5", got)
	}
	if got := s.Shed(); got != 5 {
		t.Fatalf("Shed() = %d, want 5", got)
	}
	// A later append re-covers nothing of the hole: staleness must not
	// fall below the shed offset.
	if err := s.Append(shedSeg(2, 3, 10)); err != nil {
		t.Fatal(err)
	}
	if got := s.Staleness(); got != 5 {
		t.Fatalf("staleness %d after a later append, want the permanent 5", got)
	}
}

// TestNoteShedProvisionalNeverShrinksLag is the PR's high-water
// regression: dropping a provisional update bumps the consumed mark but
// leaves no permanent offset — and critically, the reported lag can
// never shrink because of a drop.
func TestNoteShedProvisionalNeverShrinksLag(t *testing.T) {
	_, s := shedSeries(t)
	if err := s.Append(shedSeg(0, 1, 10)); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendProvisional(shedSeg(1, 2, 8)); err != nil {
		t.Fatal(err)
	}
	before := s.Staleness()
	if before != 8 {
		t.Fatalf("staleness %d with an 8-point provisional tail, want 8", before)
	}
	// A bigger provisional update (12 points) is shed: the sender got
	// 12 points past the finalized coverage, so lag grows to 12.
	s.NoteShed(12, true)
	if got := s.Staleness(); got != 12 {
		t.Fatalf("staleness %d after shedding a 12-point provisional, want 12", got)
	}
	if got := s.Shed(); got != 0 {
		t.Fatalf("Shed() = %d after a provisional drop, want 0 (no permanent offset)", got)
	}
	// A SMALLER shed update must not roll the mark back.
	s.NoteShed(3, true)
	if got := s.Staleness(); got != 12 {
		t.Fatalf("staleness %d after a smaller shed update, want the high-water 12", got)
	}
	// The final segment closing the interval re-carries its points: the
	// permanent picture stays consistent.
	if err := s.Append(shedSeg(1.5, 2.5, 12)); err != nil {
		t.Fatal(err)
	}
	if got := s.Staleness(); got != 0 {
		t.Fatalf("staleness %d after the closing final segment, want 0", got)
	}
}

func TestNoteEffectiveEpsilonMonotoneClamped(t *testing.T) {
	_, s := shedSeries(t)
	if got := s.QueryEpsilon()[0]; got != 0.5 {
		t.Fatalf("pristine query bound %g, want the contract", got)
	}
	s.NoteEffectiveEpsilon([]float64{0.2}) // below contract: ignored
	if got := s.QueryEpsilon()[0]; got != 0.5 {
		t.Fatalf("bound %g after a below-contract note", got)
	}
	s.NoteEffectiveEpsilon([]float64{1.5})
	if got := s.QueryEpsilon()[0]; got != 1.5 {
		t.Fatalf("bound %g, want 1.5", got)
	}
	s.NoteEffectiveEpsilon([]float64{0.9}) // narrower than current: ignored
	if got := s.QueryEpsilon()[0]; got != 1.5 {
		t.Fatalf("bound narrowed to %g", got)
	}
	if got := s.EffExtra(0); got != 1.0 {
		t.Fatalf("EffExtra %g, want 1.0", got)
	}
}

// TestShedNames pins the control-series namespace helpers.
func TestShedNames(t *testing.T) {
	name := ShedName("cpu")
	if !IsShedName(name) {
		t.Fatalf("IsShedName(%q) = false", name)
	}
	base, ok := ParseShedName(name)
	if !ok || base != "cpu" {
		t.Fatalf("ParseShedName(%q) = %q %v", name, base, ok)
	}
	if IsShedName("cpu") {
		t.Fatal("plain name classified as a shed control series")
	}
	if _, ok := ParseShedName(shedPrefix); ok {
		t.Fatal("bare prefix parsed as a shed name")
	}
}

// TestRecordEffectiveEpsilonSteps drives the persistence path: each
// widening step appends one degenerate control segment at a monotone
// synthetic time, and non-widening reports are skipped.
func TestRecordEffectiveEpsilonSteps(t *testing.T) {
	a, s := shedSeries(t)
	if err := s.Append(shedSeg(0, 1, 4)); err != nil {
		t.Fatal(err)
	}
	if _, _, ok := a.RecordEffectiveEpsilon("s", []float64{0.5}); ok {
		t.Fatal("contract-equal report claimed to widen")
	}
	ctrl, st, ok := a.RecordEffectiveEpsilon("s", []float64{0.8})
	if !ok {
		t.Fatal("widening report was skipped")
	}
	if err := ctrl.Append(st); err != nil {
		t.Fatal(err)
	}
	if st.T0 != 0 || st.X0[0] != 0.8 {
		t.Fatalf("first step %+v, want t=0 x=0.8", st)
	}
	ctrl2, st2, ok := a.RecordEffectiveEpsilon("s", []float64{1.2})
	if !ok || ctrl2 != ctrl {
		t.Fatal("second widening step skipped or re-homed")
	}
	if err := ctrl2.Append(st2); err != nil {
		t.Fatal(err)
	}
	if st2.T0 != 1 || st2.X0[0] != 1.2 {
		t.Fatalf("second step %+v, want t=1 x=1.2", st2)
	}
	// Visible namespace stays clean; ShedNames sees the control series.
	for _, n := range a.Names() {
		if IsShedName(n) {
			t.Fatalf("control series %q leaked into Names()", n)
		}
	}
	if names := a.ShedNames(); len(names) != 1 || names[0] != ShedName("s") {
		t.Fatalf("ShedNames() = %v", names)
	}
	if got := s.QueryEpsilon()[0]; got != 1.2 {
		t.Fatalf("base bound %g after two steps, want 1.2", got)
	}
}

// TestSeedEffectiveEpsilon rebuilds the post-recovery state: a fresh
// archive holding only the replayed control series folds the newest
// step back into the base's reported bound.
func TestSeedEffectiveEpsilon(t *testing.T) {
	a, s := shedSeries(t)
	if err := s.Append(shedSeg(0, 1, 4)); err != nil {
		t.Fatal(err)
	}
	ctrl, _, err := a.GetOrCreate(ShedName("s"), []float64{0}, false)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range []float64{0.8, 1.3} {
		st := core.Segment{T0: float64(i), T1: float64(i), X0: []float64{e}, X1: []float64{e}, Points: 1}
		if err := ctrl.Append(st); err != nil {
			t.Fatal(err)
		}
	}
	if n := a.SeedEffectiveEpsilon(); n != 1 {
		t.Fatalf("seeded %d series, want 1", n)
	}
	if got := s.QueryEpsilon()[0]; got != 1.3 {
		t.Fatalf("seeded bound %g, want the newest step 1.3", got)
	}
	// Seeding an archive with no control series is a no-op.
	b := New()
	if n := b.SeedEffectiveEpsilon(); n != 0 {
		t.Fatalf("empty archive seeded %d", n)
	}
}

// TestQueryEpsilonFlowsIntoAggregates checks the inflated bound reaches
// the pushdown and fold answers, not just the accessor.
func TestQueryEpsilonFlowsIntoAggregates(t *testing.T) {
	_, s := shedSeries(t)
	if err := s.Append(shedSeg(0, 10, 11)); err != nil {
		t.Fatal(err)
	}
	res, err := s.Mean(0, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epsilon != 0.5 {
		t.Fatalf("pristine aggregate ε %g, want the contract", res.Epsilon)
	}
	s.NoteEffectiveEpsilon([]float64{2})
	res, err = s.Mean(0, 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Epsilon != 2 {
		t.Fatalf("degraded aggregate ε %g, want 2", res.Epsilon)
	}
}
