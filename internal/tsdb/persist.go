package tsdb

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"github.com/pla-go/pla/internal/encode"
)

// Archive container format (little endian):
//
//	magic "PLAA" | uvarint seriesCount
//	per series: uvarint nameLen | name bytes | uvarint points |
//	            uvarint blobLen | blob (the encode wire format, which
//	            already carries dim, ε and the constant flag)

const archiveMagic = "PLAA"

// WriteTo serialises the whole archive. It returns the number of bytes
// written.
func (a *Archive) WriteTo(w io.Writer) (int64, error) {
	return a.WriteSeriesTo(w, a.Names())
}

// WriteSeriesTo serialises just the named series, in the given order —
// the subset writer behind per-shard snapshots, where each partition
// persists only the series it owns. Names that no longer exist (dropped
// since the caller listed them) are skipped, so a snapshot cannot fail
// on a racing delete.
func (a *Archive) WriteSeriesTo(w io.Writer, names []string) (int64, error) {
	series := make([]*Series, 0, len(names))
	for _, name := range names {
		if s, err := a.Get(name); err == nil {
			series = append(series, s)
		}
	}
	bw := bufio.NewWriter(w)
	var n int64
	count := func(k int, err error) error {
		n += int64(k)
		return err
	}
	if err := count(bw.WriteString(archiveMagic)); err != nil {
		return n, err
	}
	var tmp [binary.MaxVarintLen64]byte
	putUvarint := func(v uint64) error {
		k := binary.PutUvarint(tmp[:], v)
		return count(bw.Write(tmp[:k]))
	}
	if err := putUvarint(uint64(len(series))); err != nil {
		return n, err
	}
	for _, s := range series {
		name := s.name
		s.mu.RLock()
		segs := s.store.Snapshot()
		// A provisional (max-lag) tail is transient wire state: the
		// sender supersedes it with finalized segments, so persisting it
		// would freeze an announcement as fact. Snapshots carry only the
		// finalized prefix and its point count.
		segs = segs[:len(segs)-s.provisional]
		eps := s.eps
		constant := s.constant
		points := s.points - s.provPoints
		s.mu.RUnlock()

		var blob writeCounter
		if _, err := encode.EncodeAll(&blob, eps, constant, segs); err != nil {
			return n, err
		}
		if err := putUvarint(uint64(len(name))); err != nil {
			return n, err
		}
		if err := count(bw.WriteString(name)); err != nil {
			return n, err
		}
		if err := putUvarint(uint64(points)); err != nil {
			return n, err
		}
		if err := putUvarint(uint64(len(blob.buf))); err != nil {
			return n, err
		}
		if err := count(bw.Write(blob.buf)); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

type writeCounter struct{ buf []byte }

func (w *writeCounter) Write(p []byte) (int, error) {
	w.buf = append(w.buf, p...)
	return len(p), nil
}

// ReadArchive deserialises an archive written by WriteTo.
func ReadArchive(r io.Reader) (*Archive, error) {
	a := New()
	if err := ReadInto(a, r); err != nil {
		return nil, err
	}
	return a, nil
}

// ReadInto deserialises an archive written by WriteTo into a, which keeps
// its own segment-store factory — the recovery path for durable storage,
// where the caller owns the (empty) archive the server will serve from.
// A series that already exists in a is an error.
func ReadInto(a *Archive, r io.Reader) error {
	_, err := readArchiveInto(a, r, false)
	return err
}

// MergeInto deserialises an archive stream like ReadInto but skips
// series that already exist in a instead of failing — the reader for
// incremental snapshot chains, which apply newest file first so the
// first copy seen of each series wins. A skipped series' blob is
// discarded without decoding. It returns the names it created, so a
// caller hitting a decode error mid-file can roll back exactly this
// file's contribution and fall through to an older generation.
func MergeInto(a *Archive, r io.Reader) ([]string, error) {
	return readArchiveInto(a, r, true)
}

func readArchiveInto(a *Archive, r io.Reader, skipExisting bool) (created []string, err error) {
	br := bufio.NewReader(r)
	head := make([]byte, len(archiveMagic))
	if _, err := io.ReadFull(br, head); err != nil {
		return created, fmt.Errorf("%w: missing magic: %v", ErrFormat, err)
	}
	if string(head) != archiveMagic {
		return created, fmt.Errorf("%w: bad magic %q", ErrFormat, head)
	}
	nSeries, err := binary.ReadUvarint(br)
	if err != nil || nSeries > 1<<24 {
		return created, fmt.Errorf("%w: bad series count", ErrFormat)
	}
	for i := uint64(0); i < nSeries; i++ {
		nameLen, err := binary.ReadUvarint(br)
		if err != nil || nameLen > 1<<16 {
			return created, fmt.Errorf("%w: bad name length", ErrFormat)
		}
		name := make([]byte, nameLen)
		if _, err := io.ReadFull(br, name); err != nil {
			return created, fmt.Errorf("%w: truncated name: %v", ErrFormat, err)
		}
		points, err := binary.ReadUvarint(br)
		if err != nil {
			return created, fmt.Errorf("%w: bad point count", ErrFormat)
		}
		blobLen, err := binary.ReadUvarint(br)
		if err != nil || blobLen > 1<<34 {
			return created, fmt.Errorf("%w: bad blob length", ErrFormat)
		}
		if skipExisting {
			if _, gerr := a.Get(string(name)); gerr == nil {
				// A newer file in the chain already provided this series.
				if _, err := io.CopyN(io.Discard, br, int64(blobLen)); err != nil {
					return created, fmt.Errorf("%w: truncated blob: %v", ErrFormat, err)
				}
				continue
			}
		}
		// Grow with the stream rather than trusting the declared length: a
		// corrupt header claiming a huge blob must fail on the missing
		// bytes, not allocate them up front.
		var blob bytes.Buffer
		if _, err := io.CopyN(&blob, br, int64(blobLen)); err != nil {
			return created, fmt.Errorf("%w: truncated blob: %v", ErrFormat, err)
		}
		dec, err := encode.NewDecoder(bytes.NewReader(blob.Bytes()))
		if err != nil {
			return created, fmt.Errorf("%w: series %q: %v", ErrFormat, name, err)
		}
		segs, err := encode.ReadAll(dec)
		if err != nil {
			return created, fmt.Errorf("%w: series %q: %v", ErrFormat, name, err)
		}
		s, err := a.Create(string(name), dec.Epsilon(), dec.Constant())
		if err != nil {
			return created, err
		}
		created = append(created, string(name))
		if err := s.Append(segs...); err != nil {
			return created, fmt.Errorf("%w: series %q: %v", ErrFormat, name, err)
		}
		s.mu.Lock()
		s.points = int(points)
		s.consumed = s.points
		s.mu.Unlock()
	}
	return created, nil
}

// SaveFile writes the archive to path, replacing any existing file.
func (a *Archive) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := a.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads an archive from path.
func LoadFile(path string) (*Archive, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadArchive(f)
}
