package tsdb

import (
	"fmt"
	"math"

	"github.com/pla-go/pla/internal/core"
)

// AggregateResult is a statistic of the reconstructed signal over a time
// range, with the deterministic band implied by the series' precision
// contract: because every original sample lies within ε of the
// reconstruction at its timestamp, the same statistic computed over the
// original samples in the range is guaranteed to lie within
// [Value−Epsilon, Value+Epsilon] — up to the difference between the
// continuous reconstruction and its values at the (unstored) sample
// times, which is zero for Min/Max bounds of covered samples and for
// Mean when sampling was uniform and dense relative to the segments.
type AggregateResult struct {
	// Value is the statistic of the continuous reconstruction.
	Value float64
	// Epsilon is the series' precision width in the queried dimension.
	Epsilon float64
	// Covered is the total time the statistic integrates over (gaps
	// between disconnected segments are excluded).
	Covered float64
	// Segments is the number of segments that contributed.
	Segments int
}

// Min returns the minimum of the reconstruction in dimension dim over
// [t0, t1]. Any original sample in the range is ≥ Value − Epsilon.
func (s *Series) Min(dim int, t0, t1 float64) (AggregateResult, error) {
	return s.extremum(dim, t0, t1, false)
}

// Max returns the maximum of the reconstruction in dimension dim over
// [t0, t1]. Any original sample in the range is ≤ Value + Epsilon.
func (s *Series) Max(dim int, t0, t1 float64) (AggregateResult, error) {
	return s.extremum(dim, t0, t1, true)
}

func (s *Series) extremum(dim int, t0, t1 float64, max bool) (AggregateResult, error) {
	if err := s.checkQuery(dim, t0, t1); err != nil {
		return AggregateResult{}, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	res := AggregateResult{Epsilon: s.queryEps(dim)}
	best := math.Inf(1)
	if max {
		best = math.Inf(-1)
	}
	for i, n := 0, s.store.Len(); i < n; i++ {
		seg := s.store.Seg(i)
		if seg.T1 < t0 {
			continue
		}
		if seg.T0 > t1 {
			break
		}
		lo, hi := math.Max(seg.T0, t0), math.Min(seg.T1, t1)
		if hi < lo {
			continue
		}
		// A line's extremum over an interval is at an endpoint.
		a, b := seg.At(dim, lo), seg.At(dim, hi)
		res.Covered += hi - lo
		res.Segments++
		if max {
			best = math.Max(best, math.Max(a, b))
		} else {
			best = math.Min(best, math.Min(a, b))
		}
	}
	if res.Segments == 0 {
		return res, fmt.Errorf("%w in [%v, %v]", ErrNoData, t0, t1)
	}
	res.Value = best
	return res, nil
}

// Mean returns the time-weighted mean of the reconstruction in dimension
// dim over [t0, t1] (the integral of the piece-wise linear function over
// the covered time, divided by the covered time).
func (s *Series) Mean(dim int, t0, t1 float64) (AggregateResult, error) {
	if err := s.checkQuery(dim, t0, t1); err != nil {
		return AggregateResult{}, err
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	res := AggregateResult{Epsilon: s.queryEps(dim)}
	integral := 0.0
	instSum, instN := 0.0, 0
	for i, n := 0, s.store.Len(); i < n; i++ {
		seg := s.store.Seg(i)
		if seg.T1 < t0 {
			continue
		}
		if seg.T0 > t1 {
			break
		}
		lo, hi := math.Max(seg.T0, t0), math.Min(seg.T1, t1)
		if hi < lo {
			continue
		}
		span := hi - lo
		res.Segments++
		if span == 0 {
			// Zero-measure overlap — a degenerate single-point segment,
			// or a range grazing (or equalling) a single instant of a
			// longer one. It cannot move a time-weighted mean, but if
			// instants are all the range holds, their plain average is
			// the mean (not a fabricated zero, and not ErrNoData: At
			// and Min/Max answer at the same point).
			instSum += seg.At(dim, lo)
			instN++
			continue
		}
		// ∫ of a line over [lo, hi] = trapezoid.
		integral += span * (seg.At(dim, lo) + seg.At(dim, hi)) / 2
		res.Covered += span
	}
	if res.Segments == 0 {
		return res, fmt.Errorf("%w in [%v, %v]", ErrNoData, t0, t1)
	}
	switch {
	case res.Covered > 0:
		res.Value = integral / res.Covered
	case instN > 0:
		res.Value = instSum / float64(instN)
	}
	return res, nil
}

func (s *Series) checkQuery(dim int, t0, t1 float64) error {
	if dim < 0 || dim >= len(s.eps) {
		return fmt.Errorf("%w: dim %d of %d", ErrDim, dim, len(s.eps))
	}
	if t1 < t0 || math.IsNaN(t0) || math.IsNaN(t1) {
		return ErrRange
	}
	return nil
}

// SeriesStats summarises a stored series.
type SeriesStats struct {
	Name       string
	Dim        int
	Segments   int
	Recordings int
	Points     int
	Ratio      float64 // points per recording
}

// Stats returns the series' storage summary.
func (s *Series) Stats() SeriesStats {
	s.mu.RLock()
	defer s.mu.RUnlock()
	rec := 0
	for i, n := 0, s.store.Len(); i < n; i++ {
		rec += core.Recordings(s.store.Seg(i), s.constant)
	}
	ratio := 0.0
	if rec > 0 {
		ratio = float64(s.points) / float64(rec)
	}
	return SeriesStats{
		Name:       s.name,
		Dim:        len(s.eps),
		Segments:   s.store.Len(),
		Recordings: rec,
		Points:     s.points,
		Ratio:      ratio,
	}
}
