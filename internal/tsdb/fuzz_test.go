package tsdb

import (
	"bytes"
	"testing"

	"github.com/pla-go/pla/internal/core"
)

// fuzzSeedArchive builds a small valid archive's bytes for the seed
// corpus.
func fuzzSeedArchive(tb testing.TB) []byte {
	a := New()
	s, err := a.Create("seed", []float64{0.5, 0.25}, false)
	if err != nil {
		tb.Fatal(err)
	}
	segs := []core.Segment{
		{T0: 0, T1: 1, X0: []float64{0, 1}, X1: []float64{1, 2}, Points: 5},
		{T0: 1, T1: 3, X0: []float64{1, 2}, X1: []float64{0, 0}, Connected: true, Points: 8},
		{T0: 5, T1: 5, X0: []float64{2, 2}, X1: []float64{2, 2}, Points: 1},
	}
	if err := s.Append(segs...); err != nil {
		tb.Fatal(err)
	}
	c, err := a.Create("const", []float64{1}, true)
	if err != nil {
		tb.Fatal(err)
	}
	if err := c.Append(core.Segment{T0: 0, T1: 4, X0: []float64{7}, X1: []float64{7}, Points: 9}); err != nil {
		tb.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := a.WriteTo(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// FuzzReadArchive feeds arbitrary bytes to the PLAA container decoder —
// the snapshot half of the durable storage engine. It must never panic,
// and anything it accepts must survive a re-encode/re-decode round trip.
func FuzzReadArchive(f *testing.F) {
	seed := fuzzSeedArchive(f)
	f.Add(seed)
	f.Add(seed[:len(seed)/2]) // truncated
	f.Add([]byte("PLAA"))
	f.Add([]byte("PLAA\x00"))
	f.Add([]byte("NOPE\x01junk"))
	corrupted := append([]byte(nil), seed...)
	corrupted[len(corrupted)/3] ^= 0x80
	f.Add(corrupted)

	f.Fuzz(func(t *testing.T, raw []byte) {
		a, err := ReadArchive(bytes.NewReader(raw))
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if _, err := a.WriteTo(&buf); err != nil {
			t.Fatalf("accepted archive failed to re-encode: %v", err)
		}
		b, err := ReadArchive(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-encoded archive failed to decode: %v", err)
		}
		an, bn := a.Names(), b.Names()
		if len(an) != len(bn) {
			t.Fatalf("round trip changed series count: %d vs %d", len(an), len(bn))
		}
		for i, name := range an {
			if bn[i] != name {
				t.Fatalf("round trip changed series names: %v vs %v", an, bn)
			}
			as, _ := a.Get(name)
			bs, _ := b.Get(name)
			if as.Len() != bs.Len() || as.Points() != bs.Points() {
				t.Fatalf("%s: round trip changed shape: %d/%d vs %d/%d",
					name, as.Len(), as.Points(), bs.Len(), bs.Points())
			}
		}
	})
}
