package tsdb

import (
	"bytes"
	"errors"
	"testing"

	"github.com/pla-go/pla/internal/core"
)

func seg(t0, t1, x0, x1 float64, pts int) core.Segment {
	return core.Segment{T0: t0, T1: t1, X0: []float64{x0}, X1: []float64{x1}, Points: pts}
}

func prov(t0, t1, x0, x1 float64, pts int) core.Segment {
	s := seg(t0, t1, x0, x1, pts)
	s.Provisional = true
	return s
}

func newSeries(t *testing.T) *Series {
	t.Helper()
	a := New()
	s, err := a.Create("s", []float64{0.5}, false)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestProvisionalSupersede drives the replace rules: a re-announcement
// replaces the provisional segments it overlaps, a finalized append
// replaces the whole provisional tail, and the freshness counters track
// every step.
func TestProvisionalSupersede(t *testing.T) {
	s := newSeries(t)
	if err := s.Append(seg(0, 10, 0, 1, 20)); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendProvisional(prov(10, 15, 1, 2, 8)); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 || s.FinalLen() != 1 || s.Points() != 28 || s.PendingPoints() != 8 {
		t.Fatalf("after announce: len=%d final=%d points=%d pending=%d", s.Len(), s.FinalLen(), s.Points(), s.PendingPoints())
	}
	if s.Consumed() != 28 || s.Staleness() != 8 {
		t.Fatalf("after announce: consumed=%d stale=%d", s.Consumed(), s.Staleness())
	}

	// A wider re-announcement of the same interval replaces the old one.
	if err := s.AppendProvisional(prov(10, 18, 1, 2.5, 12)); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 || s.PendingPoints() != 12 || s.Points() != 32 || s.Consumed() != 32 {
		t.Fatalf("after re-announce: len=%d pending=%d points=%d consumed=%d", s.Len(), s.PendingPoints(), s.Points(), s.Consumed())
	}

	// A contiguous provisional (slide ships prev + current) is kept.
	if err := s.AppendProvisional(prov(18, 22, 2.5, 3, 5)); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 || s.PendingPoints() != 17 {
		t.Fatalf("after contiguous announce: len=%d pending=%d", s.Len(), s.PendingPoints())
	}

	// The finalized segment supersedes the whole provisional tail — even
	// where it ends earlier than the announcement did.
	if err := s.Append(seg(10, 16, 1, 2.2, 14)); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 || s.FinalLen() != 2 || s.PendingPoints() != 0 {
		t.Fatalf("after final: len=%d final=%d pending=%d", s.Len(), s.FinalLen(), s.PendingPoints())
	}
	if s.Points() != 34 || s.FinalPoints() != 34 {
		t.Fatalf("after final: points=%d final=%d", s.Points(), s.FinalPoints())
	}
	// The high-water remembers the sender got to 37 (20+12+5); the
	// finals so far cover 34 of those.
	if s.Consumed() != 37 || s.Staleness() != 3 {
		t.Fatalf("after final: consumed=%d stale=%d", s.Consumed(), s.Staleness())
	}

	// Queries see provisional coverage while it lasts.
	if err := s.AppendProvisional(prov(16, 30, 2.2, 4, 9)); err != nil {
		t.Fatal(err)
	}
	if x, ok := s.At(25); !ok || x[0] < 2.2 || x[0] > 4 {
		t.Fatalf("At over provisional tail: %v %v", x, ok)
	}
	segs, err := s.Scan(0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) != 3 || !segs[2].Provisional || segs[0].Provisional {
		t.Fatalf("scan provisional flags: %+v", segs)
	}
}

// TestProvisionalDegenerateSupersede pins the single-point announcement
// case: a first-point heartbeat ships a degenerate [t, t] update, and
// the next announcement from the same pivot must replace it, not stack
// on it (stacking would double-count consumed points and inflate
// staleness past the advertised bound forever).
func TestProvisionalDegenerateSupersede(t *testing.T) {
	s := newSeries(t)
	if err := s.AppendProvisional(prov(0, 0, 1, 1, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendProvisional(prov(0, 5, 1, 2, 6)); err != nil {
		t.Fatal(err)
	}
	if s.Len() != 1 || s.PendingPoints() != 6 || s.Consumed() != 6 {
		t.Fatalf("degenerate announcement stacked: len=%d pending=%d consumed=%d",
			s.Len(), s.PendingPoints(), s.Consumed())
	}
	if err := s.Append(seg(0, 5, 1, 2, 6)); err != nil {
		t.Fatal(err)
	}
	if s.Staleness() != 0 || s.Points() != 6 {
		t.Fatalf("after finalize: stale=%d points=%d", s.Staleness(), s.Points())
	}
}

// TestRejectedAppendKeepsProvisionalTail pins the validate-before-
// mutate rule: a final segment the series refuses (an interleaving
// writer out of time order) must not cost the still-valid provisional
// coverage, and a refused provisional update must not disturb the
// existing tail either.
func TestRejectedAppendKeepsProvisionalTail(t *testing.T) {
	s := newSeries(t)
	if err := s.Append(seg(0, 10, 0, 1, 5)); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendProvisional(prov(10, 15, 1, 2, 4)); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(seg(-5, -1, 0, 0, 2)); !errors.Is(err, ErrOrder) {
		t.Fatalf("out-of-order final accepted: %v", err)
	}
	if s.PendingPoints() != 4 || s.Len() != 2 {
		t.Fatalf("rejected final destroyed the provisional tail: pending=%d len=%d", s.PendingPoints(), s.Len())
	}
	bad := prov(12, 20, 0, 0, 3)
	bad.X0 = []float64{0, 0} // wrong dimensionality
	bad.X1 = []float64{0, 0}
	if err := s.AppendProvisional(bad); !errors.Is(err, ErrDim) {
		t.Fatalf("bad-dim provisional accepted: %v", err)
	}
	if s.PendingPoints() != 4 || s.Len() != 2 {
		t.Fatalf("rejected update disturbed the tail: pending=%d len=%d", s.PendingPoints(), s.Len())
	}
}

// TestProvisionalOrderStillEnforced verifies provisional appends keep
// the series' time-order invariant.
func TestProvisionalOrderStillEnforced(t *testing.T) {
	s := newSeries(t)
	if err := s.Append(seg(0, 10, 0, 1, 5)); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendProvisional(prov(-5, 8, 0, 0, 2)); !errors.Is(err, ErrOrder) {
		t.Fatalf("out-of-order provisional accepted: %v", err)
	}
	if err := s.AppendProvisional(prov(12, 9, 0, 0, 2)); !errors.Is(err, ErrOrder) {
		t.Fatalf("backwards provisional accepted: %v", err)
	}
}

// TestSnapshotExcludesProvisional pins persistence: a snapshot carries
// only the finalized prefix, and a recovered series restarts with a
// settled freshness high-water.
func TestSnapshotExcludesProvisional(t *testing.T) {
	a := New()
	s, err := a.Create("s", []float64{0.5}, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(seg(0, 10, 0, 1, 20)); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendProvisional(prov(10, 15, 1, 2, 8)); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := a.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	b, err := ReadArchive(&buf)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := b.Get("s")
	if err != nil {
		t.Fatal(err)
	}
	if rs.Len() != 1 || rs.Points() != 20 || rs.PendingPoints() != 0 {
		t.Fatalf("recovered: len=%d points=%d pending=%d", rs.Len(), rs.Points(), rs.PendingPoints())
	}
	if rs.Consumed() != 20 || rs.Staleness() != 0 {
		t.Fatalf("recovered freshness: consumed=%d stale=%d", rs.Consumed(), rs.Staleness())
	}
	// The live series still holds its provisional tail.
	if s.Len() != 2 || s.PendingPoints() != 8 {
		t.Fatalf("snapshot disturbed the live series: len=%d pending=%d", s.Len(), s.PendingPoints())
	}
}

// TestDropBeforeThroughProvisionalTail exercises retention reaching into
// a provisional suffix.
func TestDropBeforeThroughProvisionalTail(t *testing.T) {
	s := newSeries(t)
	if err := s.Append(seg(0, 10, 0, 1, 5)); err != nil {
		t.Fatal(err)
	}
	if err := s.AppendProvisional(prov(10, 12, 1, 1.5, 3)); err != nil {
		t.Fatal(err)
	}
	if n := s.DropBefore(11); n != 1 {
		t.Fatalf("dropped %d, want the finalized head only", n)
	}
	if s.Len() != 1 || s.PendingPoints() != 3 || s.Points() != 3 {
		t.Fatalf("after head drop: len=%d pending=%d points=%d", s.Len(), s.PendingPoints(), s.Points())
	}
	if n := s.DropBefore(100); n != 1 {
		t.Fatalf("dropped %d, want the provisional tail", n)
	}
	if s.Len() != 0 || s.PendingPoints() != 0 || s.Points() != 0 || s.Staleness() != 0 {
		t.Fatalf("after full drop: len=%d pending=%d points=%d stale=%d", s.Len(), s.PendingPoints(), s.Points(), s.Staleness())
	}
}

// TestLagHint round-trips the advertised bound.
func TestLagHint(t *testing.T) {
	s := newSeries(t)
	if s.LagHint() != 0 {
		t.Fatalf("fresh series lag hint %d", s.LagHint())
	}
	s.SetLagHint(25)
	if s.LagHint() != 25 {
		t.Fatalf("lag hint %d, want 25", s.LagHint())
	}
}
