package experiments

import (
	"fmt"

	"github.com/pla-go/pla/internal/core"
	"github.com/pla-go/pla/internal/gen"
	"github.com/pla-go/pla/internal/recon"
)

// Ablations quantifies the design choices DESIGN.md calls out, beyond the
// paper's own figures:
//
//   - swing recording placement (Section 3.2's MSE argument): compression
//     and residual error per mode;
//   - slide connection search (Section 4.2): recordings saved per grid
//     density, including the all-disconnected grid-0 variant;
//   - slide hull optimization (Lemma 4.3): per-point cost with and
//     without, at a wide precision setting where intervals get long.
func Ablations(cfg Config) (*Table, error) {
	signal := gen.RandomWalk(gen.WalkConfig{
		N: cfg.walkN(), P: 0.5, MaxDelta: 3, Seed: 7000 + cfg.Seed,
	})
	eps := []float64{1}

	t := &Table{
		ID:      "ablation",
		Title:   "design-choice ablations (random walk, p = 0.5, x = 300% of ε)",
		XLabel:  "variant",
		Columns: []string{"recordings", "ratio", "mean abs err"},
	}

	// Swing recording placement.
	for _, mode := range []core.SwingRecording{core.RecordMSE, core.RecordMidline, core.RecordLast} {
		f, err := core.NewSwing(eps, core.WithSwingRecording(mode))
		if err != nil {
			return nil, err
		}
		row, err := ablationRow("swing/"+mode.String(), f, signal, eps)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, row)
	}

	// Slide connection grid density.
	for _, grid := range []int{0, 5, 17, 65} {
		f, err := core.NewSlide(eps, core.WithConnectionGrid(grid))
		if err != nil {
			return nil, err
		}
		row, err := ablationRow(fmt.Sprintf("slide/grid-%d", grid), f, signal, eps)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, row)
	}

	// Hull optimization cost at a wide precision width (long intervals).
	sst := gen.SeaSurfaceTemperature()
	lo, hi := gen.Range(sst, 0)
	wideEps := []float64{0.316 * (hi - lo)}
	repeats := 8
	if cfg.Quick {
		repeats = 2
	}
	for _, name := range []string{"slide", "slide-nonopt"} {
		us, err := MeasureOverhead(name, sst, wideEps, repeats)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, Row{
			X:      "hull/" + name + " (µs/pt)",
			Values: []float64{us},
		})
	}
	t.Notes = append(t.Notes,
		"swing: MSE recording minimizes residual error; RecordLast often compresses slightly better by re-anchoring on real data",
		"slide: grid 0 disables connections (2 recordings per segment); savings saturate by grid ~17",
		"hull rows report µs per point at a 31.6%-of-range precision width instead of recordings/ratio/error")
	return t, nil
}

func ablationRow(name string, f core.Filter, signal []core.Point, eps []float64) (Row, error) {
	segs, err := core.Run(f, signal)
	if err != nil {
		return Row{}, err
	}
	model, err := recon.NewModel(segs)
	if err != nil {
		return Row{}, err
	}
	if err := recon.CheckPrecision(signal, model, eps, 1e-6); err != nil {
		return Row{}, fmt.Errorf("experiments: %s broke the guarantee: %w", name, err)
	}
	st := f.Stats()
	m := recon.Measure(signal, model)
	return Row{
		X:      name,
		Values: []float64{float64(st.Recordings), st.CompressionRatio(), m.MeanAbs[0]},
	}, nil
}
