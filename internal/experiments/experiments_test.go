package experiments

import (
	"bytes"
	"io"
	"strings"
	"testing"
)

// col returns the column index of a filter in a table.
func col(t *testing.T, tb *Table, name string) int {
	t.Helper()
	for i, c := range tb.Columns {
		if c == name {
			return i
		}
	}
	t.Fatalf("column %q not in %v", name, tb.Columns)
	return -1
}

func TestFig6Summary(t *testing.T) {
	tb, err := Fig6(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	get := func(stat string) float64 {
		for _, r := range tb.Rows {
			if r.X == stat {
				return r.Values[0]
			}
		}
		t.Fatalf("row %q missing", stat)
		return 0
	}
	if get("points") != 1285 {
		t.Fatalf("points = %v", get("points"))
	}
	if get("sampling interval (min)") != 10 {
		t.Fatalf("interval = %v", get("sampling interval (min)"))
	}
	if r := get("range (°C)"); r < 2.5 || r > 6 {
		t.Fatalf("range = %v", r)
	}
	if get("repeated consecutive values") < 20 {
		t.Fatal("expected plateaus in the SST signal")
	}
}

func TestDumpSST(t *testing.T) {
	var buf bytes.Buffer
	if err := DumpSST(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(buf.String(), "\n")
	if lines != 1285 {
		t.Fatalf("dumped %d lines, want 1285", lines)
	}
}

// TestFig7Shape asserts the claims of Section 5.2: the slide and swing
// filters dominate cache and linear once the precision width is
// non-trivial, and every filter's ratio grows with the width.
func TestFig7Shape(t *testing.T) {
	tb, err := Fig7(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	cache, linear := col(t, tb, "cache"), col(t, tb, "linear")
	swing, slide := col(t, tb, "swing"), col(t, tb, "slide")
	for _, name := range tb.Columns {
		i := col(t, tb, name)
		first, last := tb.Rows[0].Values[i], tb.Rows[len(tb.Rows)-1].Values[i]
		if last <= first {
			t.Fatalf("%s ratio did not grow with precision width (%v → %v)", name, first, last)
		}
	}
	for _, r := range tb.Rows[3:] { // widths ≥ 1 % of range
		newBest := r.Values[swing]
		if r.Values[slide] > newBest {
			newBest = r.Values[slide]
		}
		oldBest := r.Values[cache]
		if r.Values[linear] > oldBest {
			oldBest = r.Values[linear]
		}
		if newBest <= oldBest {
			t.Fatalf("at width %s the new filters (%v) do not beat the old (%v)",
				r.X, newBest, oldBest)
		}
	}
	// Section 5.2: the cache filter beats the linear filter on this signal
	// at the widest setting (plateaus favour piece-wise constants).
	last := tb.Rows[len(tb.Rows)-1]
	if last.Values[cache] <= last.Values[linear] {
		t.Fatalf("cache (%v) should beat linear (%v) on the plateaued SST signal",
			last.Values[cache], last.Values[linear])
	}
}

// TestFig8Shape asserts Section 5.2's error observations: every filter's
// average error stays well below the precision width.
func TestFig8Shape(t *testing.T) {
	tb, err := Fig8(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range tb.Rows {
		width, err := parseX(r.X)
		if err != nil {
			t.Fatal(err)
		}
		for j, v := range r.Values {
			if v < 0 || v > width {
				t.Fatalf("%s avg error %v exceeds width %v%%", tb.Columns[j], v, width)
			}
		}
	}
}

// TestFig9Shape asserts Section 5.3: ratios fall as the signal loses
// monotonicity, and slide ≥ swing ≥ linear throughout.
func TestFig9Shape(t *testing.T) {
	tb, err := Fig9(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	linear, swing, slide := col(t, tb, "linear"), col(t, tb, "swing"), col(t, tb, "slide")
	for _, r := range tb.Rows {
		if !(r.Values[slide] >= r.Values[swing] && r.Values[swing] >= r.Values[linear]) {
			t.Fatalf("ordering broken at p=%s: slide=%v swing=%v linear=%v",
				r.X, r.Values[slide], r.Values[swing], r.Values[linear])
		}
	}
	first, last := tb.Rows[0], tb.Rows[len(tb.Rows)-1]
	if first.Values[slide] <= last.Values[slide] {
		t.Fatalf("slide ratio should fall from p=0 (%v) to p=0.5 (%v)",
			first.Values[slide], last.Values[slide])
	}
}

// TestFig10Shape asserts Section 5.3: ratios fall as the step magnitude
// grows; the cache filter beats the linear filter when steps are smaller
// than the precision width; slide dominates everywhere.
func TestFig10Shape(t *testing.T) {
	tb, err := Fig10(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	cache, linear := col(t, tb, "cache"), col(t, tb, "linear")
	swing, slide := col(t, tb, "swing"), col(t, tb, "slide")
	for _, name := range tb.Columns {
		i := col(t, tb, name)
		if tb.Rows[0].Values[i] <= tb.Rows[len(tb.Rows)-1].Values[i] {
			t.Fatalf("%s ratio should fall as the step magnitude grows", name)
		}
	}
	if tb.Rows[0].Values[cache] <= tb.Rows[0].Values[linear] {
		t.Fatal("cache should beat linear when steps are below ε")
	}
	for _, r := range tb.Rows {
		if r.Values[slide] < r.Values[swing] || r.Values[slide] < r.Values[linear] {
			t.Fatalf("slide not dominant at x=%s: %v", r.X, r.Values)
		}
	}
}

// TestFig11Shape asserts Section 5.4: more independent dimensions mean
// lower ratios, with slide and swing still on top.
func TestFig11Shape(t *testing.T) {
	tb, err := Fig11(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	slide, cache := col(t, tb, "slide"), col(t, tb, "cache")
	if tb.Rows[0].Values[slide] <= tb.Rows[len(tb.Rows)-1].Values[slide] {
		t.Fatal("slide ratio should fall with dimensionality")
	}
	for _, r := range tb.Rows {
		if r.Values[slide] < r.Values[cache] {
			t.Fatalf("slide below cache at d=%s", r.X)
		}
	}
}

// TestFig12Shape asserts Section 5.4: ratios grow with correlation, and
// the break-even analysis against independent per-dimension compression
// is reported.
func TestFig12Shape(t *testing.T) {
	tb, err := Fig12(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	slide := col(t, tb, "slide")
	if tb.Rows[len(tb.Rows)-1].Values[slide] <= tb.Rows[0].Values[slide] {
		t.Fatal("slide ratio should grow with correlation")
	}
	if len(tb.Notes) < 2 {
		t.Fatalf("expected break-even notes, got %v", tb.Notes)
	}
}

// TestFig13Shape only sanity-checks the timing harness (absolute times
// are machine- and load-dependent): positive values everywhere, and the
// non-optimized slide is present as the fifth series.
func TestFig13Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("timing harness skipped in -short mode")
	}
	tb, err := Fig13(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Columns) != 5 || tb.Columns[4] != "slide-nonopt" {
		t.Fatalf("columns = %v", tb.Columns)
	}
	for _, r := range tb.Rows {
		for j, v := range r.Values {
			if v <= 0 {
				t.Fatalf("%s at %s: non-positive time %v", tb.Columns[j], r.X, v)
			}
		}
	}
}

func TestAllRunsEveryFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the full quick sweep")
	}
	tables, err := All(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 8 {
		t.Fatalf("got %d tables, want 8", len(tables))
	}
	ids := []string{"fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13"}
	for i, tb := range tables {
		if tb.ID != ids[i] {
			t.Fatalf("table %d id = %s, want %s", i, tb.ID, ids[i])
		}
		var buf bytes.Buffer
		tb.Render(&buf)
		if !strings.Contains(buf.String(), tb.ID) {
			t.Fatal("render lost the figure id")
		}
	}
}

func TestNewFilterNames(t *testing.T) {
	eps := []float64{1}
	for _, name := range []string{
		"cache", "cache-midrange", "cache-mean",
		"linear", "linear-disc", "swing", "slide", "slide-nonopt",
	} {
		f, err := NewFilter(name, eps)
		if err != nil || f == nil {
			t.Fatalf("NewFilter(%q): %v", name, err)
		}
	}
	if _, err := NewFilter("bogus", eps); err == nil {
		t.Fatal("unknown filter accepted")
	}
}

func TestMeasureOverheadErrors(t *testing.T) {
	if _, err := MeasureOverhead("bogus", nil, []float64{1}, 1); err == nil {
		t.Fatal("unknown filter accepted")
	}
}

func TestTableRenderAlignment(t *testing.T) {
	tb := &Table{
		ID: "x", Title: "t", XLabel: "param",
		Columns: []string{"a", "bb"},
		Rows: []Row{
			{X: "row1", Values: []float64{1, 22.5}},
			{X: "longer-row", Values: []float64{3.25, 4}},
		},
		Notes: []string{"hello"},
	}
	var buf bytes.Buffer
	tb.Render(&buf)
	out := buf.String()
	if !strings.Contains(out, "note: hello") {
		t.Fatal("note missing")
	}
	lines := strings.Split(out, "\n")
	if !strings.HasPrefix(lines[1], "param") {
		t.Fatalf("header line = %q", lines[1])
	}
}

var _ io.Writer = (*bytes.Buffer)(nil)
