// Package experiments regenerates every figure of the paper's evaluation
// (Section 5, Figures 6–13). Each FigN function runs the corresponding
// workload sweep and returns a Table whose rows mirror the series the
// paper plots; cmd/plabench renders them, and EXPERIMENTS.md records the
// measured values next to the paper's. Absolute numbers differ (the sea
// surface temperature data is synthetic, the hardware is not a 2009
// Pentium 4), but the comparisons the paper draws — which filter wins,
// by roughly what factor, where the curves cross — are what these
// harnesses reproduce.
package experiments

import (
	"fmt"
	"io"
	"strings"

	"github.com/pla-go/pla/internal/core"
	"github.com/pla-go/pla/internal/recon"
)

// Config tunes the harnesses.
type Config struct {
	// Quick shrinks the synthetic workloads (for tests and smoke runs).
	Quick bool
	// Seed offsets the generator seeds, for sensitivity checks. Zero is
	// the canonical setting reported in EXPERIMENTS.md.
	Seed uint64
}

func (c Config) walkN() int {
	if c.Quick {
		return 2000
	}
	return 10000
}

// Table is one regenerated figure: a labelled x column plus one series
// per filter.
type Table struct {
	ID      string
	Title   string
	XLabel  string
	Columns []string
	Rows    []Row
	// Notes carries figure-specific commentary (e.g. derived thresholds).
	Notes []string
}

// Row is one x position of a figure.
type Row struct {
	X      string
	Values []float64
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns)+1)
	widths[0] = len(t.XLabel)
	for _, r := range t.Rows {
		if len(r.X) > widths[0] {
			widths[0] = len(r.X)
		}
	}
	cells := make([][]string, len(t.Rows))
	for i, r := range t.Rows {
		cells[i] = make([]string, len(r.Values))
		for j, v := range r.Values {
			cells[i][j] = formatValue(v)
		}
	}
	for j, c := range t.Columns {
		widths[j+1] = len(c)
		for i := range cells {
			if j < len(cells[i]) && len(cells[i][j]) > widths[j+1] {
				widths[j+1] = len(cells[i][j])
			}
		}
	}
	head := make([]string, 0, len(widths))
	head = append(head, pad(t.XLabel, widths[0]))
	for j, c := range t.Columns {
		head = append(head, pad(c, widths[j+1]))
	}
	fmt.Fprintln(w, strings.Join(head, "  "))
	fmt.Fprintln(w, strings.Repeat("-", len(strings.Join(head, "  "))))
	for i, r := range t.Rows {
		row := make([]string, 0, len(widths))
		row = append(row, pad(r.X, widths[0]))
		for j := range t.Columns {
			cell := ""
			if j < len(cells[i]) {
				cell = cells[i][j]
			}
			row = append(row, pad(cell, widths[j+1]))
		}
		fmt.Fprintln(w, strings.Join(row, "  "))
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
	fmt.Fprintln(w)
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

func formatValue(v float64) string {
	switch {
	case v == float64(int64(v)) && v < 1e6:
		return fmt.Sprintf("%d", int64(v))
	case v >= 100:
		return fmt.Sprintf("%.1f", v)
	default:
		return fmt.Sprintf("%.3f", v)
	}
}

// FilterNames lists the four filters of the paper's evaluation, in its
// plotting order.
var FilterNames = []string{"cache", "linear", "swing", "slide"}

// NewFilter constructs one of the evaluation's filters by name;
// "slide-nonopt" is the non-optimized slide of Figure 13.
func NewFilter(name string, eps []float64) (core.Filter, error) {
	switch name {
	case "cache":
		return core.NewCache(eps)
	case "cache-midrange":
		return core.NewCache(eps, core.WithCacheMode(core.CacheMidrange))
	case "cache-mean":
		return core.NewCache(eps, core.WithCacheMode(core.CacheMean))
	case "linear":
		return core.NewLinear(eps)
	case "linear-disc":
		return core.NewLinear(eps, core.WithDisconnectedSegments())
	case "swing":
		return core.NewSwing(eps)
	case "slide":
		return core.NewSlide(eps)
	case "slide-nonopt":
		return core.NewSlide(eps, core.WithHullOptimization(false))
	default:
		return nil, fmt.Errorf("experiments: unknown filter %q", name)
	}
}

// run filters signal and returns the segments plus the filter's stats.
func run(name string, signal []core.Point, eps []float64) ([]core.Segment, core.Stats, error) {
	f, err := NewFilter(name, eps)
	if err != nil {
		return nil, core.Stats{}, err
	}
	segs, err := core.Run(f, signal)
	if err != nil {
		return nil, core.Stats{}, fmt.Errorf("experiments: %s: %w", name, err)
	}
	return segs, f.Stats(), nil
}

// CompressionRatio runs the named filter and returns the paper's §5.1
// compression ratio.
func CompressionRatio(name string, signal []core.Point, eps []float64) (float64, error) {
	_, st, err := run(name, signal, eps)
	if err != nil {
		return 0, err
	}
	return st.CompressionRatio(), nil
}

// AverageError runs the named filter and returns the mean absolute
// reconstruction error of dimension 0 (the paper's Figure 8 metric).
func AverageError(name string, signal []core.Point, eps []float64) (float64, error) {
	segs, _, err := run(name, signal, eps)
	if err != nil {
		return 0, err
	}
	model, err := recon.NewModel(segs)
	if err != nil {
		return 0, err
	}
	st := recon.Measure(signal, model)
	return st.MeanAbs[0], nil
}

// sstEpsSweep returns the precision widths (as fraction of the SST range)
// used by Figures 7 and 8.
var sstEpsSweep = []float64{0.00032, 0.001, 0.00316, 0.01, 0.0316, 0.1}

// All runs every figure and returns the tables in order.
func All(cfg Config) ([]*Table, error) {
	figs := []func(Config) (*Table, error){
		Fig6, Fig7, Fig8, Fig9, Fig10, Fig11, Fig12, Fig13,
	}
	out := make([]*Table, 0, len(figs))
	for _, f := range figs {
		t, err := f(cfg)
		if err != nil {
			return out, err
		}
		out = append(out, t)
	}
	return out, nil
}
