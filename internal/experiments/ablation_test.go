package experiments

import "testing"

func TestAblationsTable(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the timing harness")
	}
	tb, err := Ablations(Config{Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if tb.ID != "ablation" {
		t.Fatalf("id = %s", tb.ID)
	}
	byName := map[string]Row{}
	for _, r := range tb.Rows {
		byName[r.X] = r
	}
	for _, name := range []string{
		"swing/record-mse", "swing/record-midline", "swing/record-last",
		"slide/grid-0", "slide/grid-5", "slide/grid-17", "slide/grid-65",
		"hull/slide (µs/pt)", "hull/slide-nonopt (µs/pt)",
	} {
		if _, ok := byName[name]; !ok {
			t.Fatalf("row %q missing (have %v)", name, tb.Rows)
		}
	}
	// The connection search must save recordings against grid 0.
	if byName["slide/grid-17"].Values[0] >= byName["slide/grid-0"].Values[0] {
		t.Fatalf("connections saved nothing: %v vs %v",
			byName["slide/grid-17"].Values[0], byName["slide/grid-0"].Values[0])
	}
	// MSE recording must not lose its own objective to midline.
	if byName["swing/record-mse"].Values[2] > byName["swing/record-midline"].Values[2]*1.05 {
		t.Fatalf("MSE recording error %v above midline %v",
			byName["swing/record-mse"].Values[2], byName["swing/record-midline"].Values[2])
	}
	if len(tb.Notes) < 3 {
		t.Fatalf("notes missing: %v", tb.Notes)
	}
}
