package experiments

import (
	"fmt"
	"time"

	"github.com/pla-go/pla/internal/core"
	"github.com/pla-go/pla/internal/gen"
)

// fig13Filters adds the non-optimized slide to the usual four (the fifth
// series of Figure 13).
var fig13Filters = []string{"cache", "linear", "swing", "slide", "slide-nonopt"}

// fig13EpsSweep extends the Figure 7 sweep up to 100 % of the range, as
// in the paper's overhead study.
var fig13EpsSweep = []float64{0.00032, 0.001, 0.00316, 0.01, 0.0316, 0.1, 0.316, 1.0}

// Fig13 regenerates Figure 13: processing time per data point (in
// microseconds) for each filter on the sea-surface-temperature signal, as
// the precision width — and with it the average filtering-interval length
// — grows. The non-optimized slide demonstrates why the convex-hull
// optimization matters: its cost grows with the interval length while the
// optimized filters stay flat.
func Fig13(cfg Config) (*Table, error) {
	signal := gen.SeaSurfaceTemperature()
	lo, hi := gen.Range(signal, 0)
	rng := hi - lo
	repeats := 12
	if cfg.Quick {
		repeats = 2
	}
	t := &Table{
		ID:      "fig13",
		Title:   "filtering overhead (µs per data point), sea surface temperature",
		XLabel:  "precision width (% of range)",
		Columns: append([]string(nil), fig13Filters...),
		Notes:   []string{"wall-clock on this machine; the paper's absolute values are from a 2009-era 3 GHz Pentium 4"},
	}
	for _, frac := range fig13EpsSweep {
		eps := []float64{frac * rng}
		row := Row{X: fmt.Sprintf("%.3f", 100*frac)}
		for _, name := range fig13Filters {
			us, err := MeasureOverhead(name, signal, eps, repeats)
			if err != nil {
				return nil, err
			}
			row.Values = append(row.Values, us)
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// MeasureOverhead times the named filter over the signal `repeats` times
// and returns the mean processing cost per data point in microseconds.
// The first pass is a warm-up and is not measured.
func MeasureOverhead(name string, signal []core.Point, eps []float64, repeats int) (float64, error) {
	runOnce := func() (time.Duration, error) {
		f, err := NewFilter(name, eps)
		if err != nil {
			return 0, err
		}
		start := time.Now()
		for _, p := range signal {
			if _, err := f.Push(p); err != nil {
				return 0, err
			}
		}
		if _, err := f.Finish(); err != nil {
			return 0, err
		}
		return time.Since(start), nil
	}
	if _, err := runOnce(); err != nil { // warm-up
		return 0, err
	}
	var total time.Duration
	for r := 0; r < repeats; r++ {
		d, err := runOnce()
		if err != nil {
			return 0, err
		}
		total += d
	}
	perPoint := total / time.Duration(repeats*len(signal))
	return float64(perPoint.Nanoseconds()) / 1e3, nil
}
